//go:build !race

// Pinned allocation ceilings for the zero-allocation wire path. These are
// assertions, not benchmarks: a hot-path change that reintroduces
// steady-state allocations fails `go test` outright instead of silently
// shifting a benchmark number. They are excluded under the race detector,
// whose runtime instrumentation allocates on its own account.

package sdsm_test

import (
	"testing"

	"sdsm/internal/wire"
)

// TestNetBarrierFlurryAllocs pins the machine-wide allocation rate of one
// steady-state barrier epoch on the net backend (4 nodes: twin/diff
// creation, write notices, the departure flurry, one diff RPC per node).
// Before the pooled wire path this cost ~636 allocations per epoch; the
// ceiling pins the ≥80% reduction (measured ~107) with headroom for
// runtime noise, so a regression on the encode buffers, decode arena,
// frame reuse, or protocol scratch paths fails loudly.
func TestNetBarrierFlurryAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation pinning needs the long flurry run")
	}
	const ceiling = 127
	per := flurryAllocsPerEpoch(t, 4, 40, 160)
	if per > ceiling {
		t.Fatalf("net barrier flurry allocates %.1f/epoch, ceiling %d (was ~636 before pooling; the wire path regressed)", per, ceiling)
	}
	t.Logf("net barrier flurry: %.1f allocs/epoch (ceiling %d)", per, ceiling)
}

// TestWireEncodePooledAllocs pins the encode path proper at zero
// steady-state allocations: encoding the dominant net-backend payload
// into a pooled buffer must reuse the freelist storage outright once the
// buffer has grown to size.
func TestWireEncodePooledAllocs(t *testing.T) {
	f := benchDiffReply()
	per := testing.AllocsPerRun(200, func() {
		buf := wire.GetBuf()
		enc, err := wire.AppendFrame(buf[:0], f)
		if err != nil {
			panic(err)
		}
		wire.PutBuf(enc)
	})
	if per > 0 {
		t.Fatalf("pooled encode allocates %.1f/op, want 0", per)
	}
}
