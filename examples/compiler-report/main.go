// Compiler-report prints the Section 4 analysis for every evaluation
// program: the run-time calls inserted at each optimization level and the
// Push opportunities rejected, showing where each application sits in the
// paper's applicability matrix (Shallow's call boundaries, Gauss/MGS's
// owner conditionals, IS's locks).
//
//	go run ./examples/compiler-report
package main

import (
	"fmt"

	"sdsm/internal/apps"
	"sdsm/internal/compiler"
	"sdsm/internal/harness"
)

func main() {
	const procs = 8
	for _, a := range apps.Registry() {
		fmt.Printf("==== %s ====\n", a.Name)
		prog := a.Build(procs)
		params := prog.Prepare(a.Sets[apps.Large], procs)
		levels := compiler.Levels(procs, params, true)
		for li := 1; li < len(levels); li++ {
			_, rep := compiler.Compile(prog, levels[li])
			fmt.Printf("-- level %d (%s): %d validates, %d merged, %d pushes\n",
				li, harness.LevelNames[li], len(rep.Validates), len(rep.WSyncs), len(rep.Pushes))
			if li == len(levels)-1 {
				fmt.Print(rep.String())
			}
		}
		fmt.Println()
	}
}
