// Quickstart: build a tiny shared-memory program by hand, run it on the
// simulated DSM cluster, and watch the augmented run-time interface at
// work.
//
// Four processors share eight pages. Each writes its own two pages, a
// barrier propagates write notices, and everyone then reads everything —
// first the base TreadMarks way (one page fault and one diff fetch per
// page), then with a Validate that fetches all of a writer's pages in a
// single exchange.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"sdsm/internal/cluster"
	"sdsm/internal/model"
	"sdsm/internal/shm"
	"sdsm/internal/sim"
	"sdsm/internal/tmk"
)

func main() {
	const n = 4
	run := func(useValidate bool) {
		e := sim.NewEngine(n)
		nw := cluster.New(e, model.SP2())
		layout := shm.NewLayout()
		arr := layout.Alloc("counters", 8*shm.PageWords)
		sys := tmk.New(e, nw, layout)

		err := sys.Run(func(nd *tmk.Node) {
			mine := shm.Region{Lo: nd.ID * 2 * shm.PageWords, Hi: (nd.ID + 1) * 2 * shm.PageWords}

			// Phase 1: every processor writes its own quarter of the page.
			nd.Mem.EnsureWrite(nd.Proc(), mine)
			data := nd.Mem.Data()
			for w := mine.Lo; w < mine.Hi; w++ {
				data[w] = float64(nd.ID + 1)
			}

			// Lazy release consistency: the modifications become visible to
			// the others at the barrier (as write notices; data moves only
			// on demand).
			nd.Barrier(1)

			// Phase 2: read the whole page.
			if useValidate {
				// The compiler-inserted call: fetch all outstanding diffs
				// in one exchange per writer.
				nd.Validate(tmk.AccRead, []shm.Region{arr.Whole()}, false)
			}
			nd.Mem.EnsureRead(nd.Proc(), arr.Whole())
			sum := 0.0
			for w := 0; w < 8*shm.PageWords; w++ {
				sum += nd.Mem.Data()[w]
			}
			if nd.ID == 0 {
				fmt.Printf("  sum on processor 0: %v (want %v)\n",
					sum, float64(2*shm.PageWords*(1+2+3+4)))
			}
			nd.Barrier(2)
		})
		if err != nil {
			panic(err)
		}

		vc, _ := sys.Stats()
		st := nw.Stats()
		mode := "base TreadMarks (fault-driven)"
		if useValidate {
			mode = "with Validate (aggregated)  "
		}
		fmt.Printf("%s: %3d messages, %4d bytes payload, %d page faults, time %v\n",
			mode, st.Msgs, st.Bytes, vc.ReadFaults+vc.WriteFaults, sys.MaxTime())
	}

	fmt.Println("quickstart: 4 processors, 8 shared pages, all-to-all reads")
	run(false)
	run(true)
	fmt.Println("\nthe Validate version fetches the same data in fewer exchanges —")
	fmt.Println("communication aggregation, the paper's most effective optimization.")
}
