// Jacobi walks the paper's running example end to end: it builds the
// Figure 1 program, shows the access analysis and the Figure 2
// transformation, then runs the four systems of the evaluation and prints
// their speedups side by side.
//
//	go run ./examples/jacobi
//	go run ./examples/jacobi -m 256 -iters 8 -procs 4
package main

import (
	"flag"
	"fmt"
	"os"

	"sdsm/internal/apps"
	"sdsm/internal/compiler"
	"sdsm/internal/harness"
	"sdsm/internal/model"
	"sdsm/internal/rsd"
)

func main() {
	var (
		m     = flag.Int("m", 512, "grid dimension")
		iters = flag.Int("iters", 12, "iterations")
		procs = flag.Int("procs", 8, "processors")
	)
	flag.Parse()

	a, _ := apps.ByName("jacobi")
	a.Sets["demo"] = rsd.Env{"m": *m, "iters": *iters, "cscale": 8}
	set := apps.DataSet("demo")

	fmt.Printf("Jacobi %dx%d, %d iterations, %d processors\n\n", *m, *m, *iters, *procs)

	// The compile-time side: what the analysis finds and inserts.
	prog := a.Build(*procs)
	params := prog.Prepare(a.Sets[set], *procs)
	_, rep := compiler.Compile(prog, a.BestOptions(*procs, params))
	fmt.Println("compiler transformation (the paper's Figure 2):")
	fmt.Print(rep.String())
	fmt.Println()

	// The run-time side: the four systems of Figure 5.
	uni, err := harness.UniTime(a, set, model.SP2())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%-28s %12s %8s %6s %10s\n", "system", "time", "speedup", "msgs", "data")
	for _, sys := range []harness.SystemKind{harness.Base, harness.Opt, harness.XHPF, harness.PVMe} {
		res, err := harness.Run(harness.Config{App: a, Set: set, System: sys, Procs: *procs, Verify: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		want := harness.SeqChecksum(a, set)
		ok := "verified"
		if !apps.Close(res.Checksum, want) {
			ok = "MISMATCH"
		}
		fmt.Printf("%-28s %12v %8.2f %6d %8.2fMB  %s\n",
			sys, res.Time, harness.Speedup(uni, res.Time), res.Msgs, float64(res.Bytes)/1e6, ok)
	}
	fmt.Println("\nthe optimized DSM closes most of the gap to hand-coded message")
	fmt.Println("passing while keeping the shared-memory programming model.")
}
