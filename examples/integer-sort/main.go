// Integer-sort demonstrates the paper's "partial analysis" story: IS
// cannot be handled by a parallelizing compiler at all (the XHPF stand-in
// rejects it), yet the combined compile-time/run-time system still
// optimizes its lock-protected bucket phases with READ&WRITE_ALL,
// avoiding the diff accumulation that plagues base TreadMarks on
// migratory data.
//
//	go run ./examples/integer-sort
package main

import (
	"fmt"
	"os"

	"sdsm/internal/apps"
	"sdsm/internal/harness"
	"sdsm/internal/model"
)

func main() {
	a, _ := apps.ByName("is")
	const procs = 8
	set := apps.Large

	fmt.Println("NAS Integer Sort: bucket counts merged under staggered locks")
	fmt.Println()

	// A data-parallel compiler cannot touch this program.
	if _, err := harness.Run(harness.Config{App: a, Set: set, System: harness.XHPF, Procs: procs}); err != nil {
		fmt.Printf("XHPF stand-in: %v\n\n", err)
	}

	uni, err := harness.UniTime(a, set, model.SP2())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	type out struct {
		name string
		sys  harness.SystemKind
	}
	for _, o := range []out{{"base TreadMarks", harness.Base}, {"compiler-optimized", harness.Opt}, {"hand-coded (pipelined)", harness.PVMe}} {
		res, err := harness.Run(harness.Config{App: a, Set: set, System: o.sys, Procs: procs, Verify: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		want := harness.SeqChecksum(a, set)
		ok := "verified"
		if !apps.Close(res.Checksum, want) {
			ok = "MISMATCH"
		}
		fmt.Printf("%-24s speedup %5.2f  msgs %6d  data %7.2fMB", o.name, harness.Speedup(uni, res.Time), res.Msgs, float64(res.Bytes)/1e6)
		if o.sys != harness.PVMe {
			fmt.Printf("  diffs applied %5d", res.Protocol.DiffsApplied)
		}
		fmt.Printf("  %s\n", ok)
	}
	fmt.Println("\nbase TreadMarks ships every writer's overlapping diff (accumulation);")
	fmt.Println("READ&WRITE_ALL lets the run-time ship each bucket section once.")
}
