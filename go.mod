module sdsm

go 1.24
