// Command sdsm-node is the worker process of the distributed
// message-passing deployment: one OS process per rank, connected to a
// coordinator's switch over a loopback socket, exchanging wire-format
// frames (see internal/mpnet).
//
// It is normally spawned by the coordinator (sdsm-run -system pvme
// -backend net -node-bin sdsm-node) with its configuration in the
// SDSM_MP_WORKER environment variable, but can also be pointed at a
// coordinator explicitly:
//
//	sdsm-node -network unix -addr /tmp/sdsm123/mp.sock -rank 2
//
// With -pool it instead becomes a long-lived DSM-as-a-service node
// daemon (internal/svc): it attaches a warm pool of -slots rank slots
// to a service coordinator and executes dispatched jobs until the
// coordinator goes away, keeping page frames, arenas, and wire buffers
// warm across jobs:
//
//	sdsm-node -pool -network unix -addr /tmp/sdsm456/switch.sock -slots 8
package main

import (
	"flag"
	"fmt"
	"os"

	"sdsm/internal/mpnet"
	"sdsm/internal/svc"
)

func main() {
	mpnet.MaybeWorker() // coordinator-spawned path; does not return if set

	var (
		network = flag.String("network", "unix", "coordinator socket network: unix, tcp")
		addr    = flag.String("addr", "", "coordinator socket address")
		rank    = flag.Int("rank", -1, "this worker's rank")
		metrics = flag.String("metrics", "", "serve metrics snapshots on this address (e.g. 127.0.0.1:0; sets "+mpnet.MetricsEnv+")")
		pool    = flag.Bool("pool", false, "run as a long-lived warm-pool daemon attached to a service coordinator")
		slots   = flag.Int("slots", 8, "warm pool slots to offer in -pool mode")
	)
	flag.Parse()
	if *pool {
		if *addr == "" {
			fmt.Fprintln(os.Stderr, "sdsm-node: -pool requires -addr (the service coordinator's socket)")
			os.Exit(2)
		}
		if err := svc.RunPoolDaemon(*network, *addr, *slots, nil); err != nil {
			fmt.Fprintf(os.Stderr, "sdsm-node: pool daemon: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *addr == "" || *rank < 0 {
		fmt.Fprintln(os.Stderr, "sdsm-node: -addr and -rank are required (or spawn via the coordinator)")
		os.Exit(2)
	}
	if *metrics != "" {
		os.Setenv(mpnet.MetricsEnv, *metrics)
	}
	if err := mpnet.RunWorker(*network, *addr, *rank); err != nil {
		fmt.Fprintf(os.Stderr, "sdsm-node: rank %d: %v\n", *rank, err)
		os.Exit(1)
	}
}
