// Command sdsm-node is the worker process of the distributed
// message-passing deployment: one OS process per rank, connected to a
// coordinator's switch over a loopback socket, exchanging wire-format
// frames (see internal/mpnet).
//
// It is normally spawned by the coordinator (sdsm-run -system pvme
// -backend net -node-bin sdsm-node) with its configuration in the
// SDSM_MP_WORKER environment variable, but can also be pointed at a
// coordinator explicitly:
//
//	sdsm-node -network unix -addr /tmp/sdsm123/mp.sock -rank 2
package main

import (
	"flag"
	"fmt"
	"os"

	"sdsm/internal/mpnet"
)

func main() {
	mpnet.MaybeWorker() // coordinator-spawned path; does not return if set

	var (
		network = flag.String("network", "unix", "coordinator socket network: unix, tcp")
		addr    = flag.String("addr", "", "coordinator socket address")
		rank    = flag.Int("rank", -1, "this worker's rank")
		metrics = flag.String("metrics", "", "serve metrics snapshots on this address (e.g. 127.0.0.1:0; sets "+mpnet.MetricsEnv+")")
	)
	flag.Parse()
	if *addr == "" || *rank < 0 {
		fmt.Fprintln(os.Stderr, "sdsm-node: -addr and -rank are required (or spawn via the coordinator)")
		os.Exit(2)
	}
	if *metrics != "" {
		os.Setenv(mpnet.MetricsEnv, *metrics)
	}
	if err := mpnet.RunWorker(*network, *addr, *rank); err != nil {
		fmt.Fprintf(os.Stderr, "sdsm-node: rank %d: %v\n", *rank, err)
		os.Exit(1)
	}
}
