// Command sdsm-compile runs the compile-time analysis on one of the
// evaluation programs and prints the transformation report: the Validate,
// Validate_w_sync, and Push calls the compiler inserts, plus the Push
// opportunities it had to reject and why — the Section 4 algorithm made
// visible.
//
//	sdsm-compile -app jacobi -procs 8
//	sdsm-compile -app gauss -level 3
package main

import (
	"flag"
	"fmt"
	"os"

	"sdsm/internal/apps"
	"sdsm/internal/compiler"
	"sdsm/internal/harness"
	"sdsm/internal/obs"
)

func main() {
	var (
		app   = flag.String("app", "jacobi", "application: jacobi, fft, is, shallow, gauss, mgs")
		set   = flag.String("set", "large", "data set: large, small")
		procs = flag.Int("procs", harness.DefaultProcs, "processor count")
		level = flag.Int("level", 4, "optimization level 1-4 (aggregation, +cons-elim, +sync-merge, +push)")
	)
	flag.Parse()

	a, err := apps.ByName(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdsm-compile:", err)
		os.Exit(1)
	}
	prog := a.Build(*procs)
	params := prog.Prepare(a.Sets[apps.DataSet(*set)], *procs)
	levels := compiler.Levels(*procs, params, true)
	if *level < 1 || *level >= len(levels) {
		fmt.Fprintf(os.Stderr, "sdsm-compile: level must be 1-%d\n", len(levels)-1)
		os.Exit(1)
	}
	_, rep := compiler.Compile(prog, levels[*level])

	fmt.Printf("%s at %d processors, %s set, optimization level %d (%s)\n\n",
		a.Name, *procs, *set, *level, harness.LevelNames[*level])
	fmt.Print(rep.String())
	if len(rep.Validates)+len(rep.WSyncs)+len(rep.Pushes) == 0 {
		fmt.Println("(no run-time calls inserted)")
	}
	// Summary footer in the unified metrics vocabulary (zero counters are
	// omitted, matching the run-time snapshot's convention).
	s := obs.NewSnapshot()
	s.Set("compile.validates", int64(len(rep.Validates)))
	s.Set("compile.wsyncs", int64(len(rep.WSyncs)))
	s.Set("compile.pushes", int64(len(rep.Pushes)))
	s.Set("compile.pushes.rejected", int64(len(rep.Skipped)))
	fmt.Printf("\nsummary:\n%s", obs.FormatSnapshot(s, "  "))
}
