// Command sdsm-client submits jobs to a DSM-as-a-service coordinator
// (sdsm-experiments -serve, or any program embedding internal/svc) and
// streams their results. One invocation submits -n copies of one job
// shape and prints each result as it lands:
//
//	sdsm-client -addr /tmp/sdsm123/switch.sock -app jacobi -set small -procs 4 -n 10
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sdsm/internal/svc"
	"sdsm/internal/wire"
)

func main() {
	var (
		network = flag.String("network", "unix", "coordinator socket network: unix, tcp")
		addr    = flag.String("addr", "", "coordinator socket address")
		app     = flag.String("app", "jacobi", "application to run")
		set     = flag.String("set", "small", "data set: small, large, bound")
		system  = flag.String("system", "tmk", "DSM system: tmk, opt-tmk")
		backend = flag.String("backend", "", "job backend: sim (default), real, net")
		procs   = flag.Int("procs", 4, "ranks per job")
		n       = flag.Int("n", 1, "number of copies to submit")
		adapt   = flag.Bool("adapt", false, "enable the adaptive update protocol")
		scale   = flag.Bool("scale", false, "enable the large-machine scale mode")
		verify  = flag.Bool("verify", true, "verify against the sequential reference checksum")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "sdsm-client: -addr is required")
		os.Exit(2)
	}
	cl, err := svc.Dial(*network, *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdsm-client: %v\n", err)
		os.Exit(1)
	}
	defer cl.Close()

	spec := wire.JobSpec{
		App: *app, Set: *set, System: *system, Backend: *backend,
		Procs: int32(*procs), Adapt: *adapt, Scale: *scale, Verify: *verify,
	}
	jobs := make([]*svc.Job, 0, *n)
	for i := 0; i < *n; i++ {
		j, err := cl.Submit(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdsm-client: submit %d: %v\n", i, err)
			os.Exit(1)
		}
		fmt.Printf("job %d accepted\n", j.ID)
		jobs = append(jobs, j)
	}
	failed := 0
	for _, j := range jobs {
		res := j.Wait()
		if res.Err != "" {
			failed++
			fmt.Printf("job %d FAILED: %s\n", res.ID, res.Err)
			continue
		}
		fmt.Printf("job %d done: checksum %.6f  virtual %v  wall %v  %d msgs  %d bytes  %d segv  %d barriers  %d acquires\n",
			res.ID, res.Checksum, time.Duration(res.VirtualNS), time.Duration(res.WallNS).Round(time.Microsecond),
			res.Msgs, res.Bytes, res.Segv, res.Barriers, res.LockAcquires)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
