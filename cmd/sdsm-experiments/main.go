// Command sdsm-experiments regenerates every table and figure of the
// paper's evaluation on the simulated platform:
//
//	sdsm-experiments -all
//	sdsm-experiments -table1 -fig5 -procs 8
//	sdsm-experiments -all -parallel 8
//	sdsm-experiments -fig7 -backend net
//
// Every experiment is a self-contained simulation, so -parallel N fans
// independent runs across N workers: virtual-time numbers are unchanged,
// only wall-clock time drops (see EXPERIMENTS.md for a reference run).
// -backend real/net runs the underlying machines on the concurrent
// backends instead; results stay verified but times become
// scheduling-dependent, so the deterministic tables require the default
// sim backend.
//
// -serve runs the DSM-as-a-service load experiment instead: it starts
// an in-process coordinator with a warm pool, drives a mixed job load
// through the client API, and prints Table D (per-mix deterministic
// columns plus service latency/throughput). -serve-jobs sizes the load,
// -serve-json writes the machine-readable report, and -serve-p99-max
// turns the run into a latency gate.
//
// The output prints measured values next to the paper's where applicable;
// EXPERIMENTS.md discusses the comparisons.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"sdsm/internal/apps"
	"sdsm/internal/harness"
	"sdsm/internal/mpnet"
	"sdsm/internal/svc"
	"sdsm/internal/wire"
)

func main() {
	mpnet.MaybeWorker() // worker re-exec path; does not return if spawned
	var (
		all       = flag.Bool("all", false, "run every experiment")
		table1    = flag.Bool("table1", false, "uniprocessor execution times")
		table2    = flag.Bool("table2", false, "reduction in page faults, messages, data")
		fig5      = flag.Bool("fig5", false, "speedups: Tmk, Opt-Tmk, XHPF, PVMe")
		fig6      = flag.Bool("fig6", false, "speedups under optimization levels")
		fig7      = flag.Bool("fig7", false, "synchronous vs asynchronous fetching")
		adaptT    = flag.Bool("adapt", false, "adaptive update protocol vs invalidate baseline and compiler push")
		scaleT    = flag.Bool("scale", false, "large-machine scaling matrix: ownership directory + compressed relay at 8..128 nodes")
		micro     = flag.Bool("micro", false, "Section 5 primitive costs")
		trOvh     = flag.Bool("trace-overhead", false, "run jacobi/large traced and untraced; verify virtual times are identical and report the wall cost of tracing")
		bench     = flag.String("bench-json", "", "write machine-readable benchmark output (protocol stats + wall times) to this file")
		benchCmp  = flag.String("bench-compare", "", "compare a baseline BENCH json (this flag) against a new one (next argument): usage `-bench-compare old.json new.json`; exits 1 on a tracked regression beyond the per-metric tolerances")
		benchTol  = flag.Float64("bench-tolerance", harness.DefaultBenchTolerancePct, "allowed virtual-time regression percentage for -bench-compare")
		benchWTol = flag.Float64("bench-wall-tolerance", harness.DefaultBenchWallTolerancePct, "allowed wall-time regression percentage for -bench-compare (generous: wall times are hardware-dependent; <= 0 disables)")
		benchATol = flag.Float64("bench-alloc-tolerance", harness.DefaultBenchAllocTolerancePct, "allowed allocation-count regression percentage for -bench-compare (tight: allocs are near-deterministic; <= 0 disables)")
		serve     = flag.Bool("serve", false, "run the DSM-as-a-service load experiment and print Table D")
		srvListen = flag.Bool("serve-listen", false, "with -serve: skip the load run, print the coordinator address, and serve sdsm-client/sdsm-node -pool peers until interrupted")
		srvJobs   = flag.Int("serve-jobs", 200, "total jobs for the -serve load run")
		srvConc   = flag.Int("serve-conc", 8, "concurrent in-flight submissions for -serve")
		srvSlots  = flag.Int("serve-slots", 8, "warm pool slots for the -serve coordinator")
		srvJSON   = flag.String("serve-json", "", "write the -serve load report as JSON to this file")
		srvP99    = flag.Duration("serve-p99-max", 0, "fail -serve if p99 job latency exceeds this bound (0 disables)")
		procs     = flag.Int("procs", harness.DefaultProcs, "processor count")
		par       = flag.Int("parallel", 1, "worker pool size for independent experiment runs (0 = GOMAXPROCS)")
		backend   = flag.String("backend", "sim", "host backend for the runs: sim (deterministic paper numbers), real, net (times become scheduling-dependent)")
	)
	flag.Parse()
	workers := *par
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	switch harness.Backend(*backend) {
	case harness.BackendSim, harness.BackendReal, harness.BackendNet:
		harness.DefaultBackend = harness.Backend(*backend)
	default:
		fmt.Fprintf(os.Stderr, "sdsm-experiments: unknown backend %q\n", *backend)
		os.Exit(2)
	}
	if harness.DefaultBackend != harness.BackendSim {
		fmt.Printf("note: %s backend — virtual times are scheduling-dependent; the paper's\n"+
			"deterministic numbers require the sim backend (the default).\n\n", *backend)
	}
	if !(*all || *table1 || *table2 || *fig5 || *fig6 || *fig7 || *adaptT || *scaleT || *micro || *trOvh || *serve || *bench != "" || *benchCmp != "") {
		flag.Usage()
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sdsm-experiments:", err)
		os.Exit(1)
	}

	if *benchCmp != "" {
		// The trajectory gate: `-bench-compare old.json new.json`. Virtual
		// times are deterministic, so comparing a fresh report against a
		// checked-in baseline catches perf regressions that the exact
		// golden tables would only report as opaque byte diffs.
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "sdsm-experiments: -bench-compare needs the new report as its argument: -bench-compare old.json new.json")
			os.Exit(2)
		}
		old, err := harness.LoadBenchReport(*benchCmp)
		if err != nil {
			fail(err)
		}
		fresh, err := harness.LoadBenchReport(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		tols := harness.BenchTolerances{VirtualPct: *benchTol, WallPct: *benchWTol, AllocPct: *benchATol}
		regs, compared := harness.CompareBench(old, fresh, tols)
		if compared == 0 {
			// Zero overlap means the baseline no longer tracks anything the
			// fresh report measures (renamed apps, changed procs, stale
			// baseline) — exactly the no-coverage case the gate exists to
			// prevent, so it must fail loudly, not pass vacuously.
			fmt.Fprintf(os.Stderr, "sdsm-experiments: bench compare matched 0 of %d entries against %s — regenerate the baseline\n",
				len(fresh.Entries), *benchCmp)
			os.Exit(1)
		}
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "sdsm-experiments: %d regression(s) beyond tolerance (virtual %.0f%%, wall %.0f%%, alloc %.0f%%):\n",
				len(regs), tols.VirtualPct, tols.WallPct, tols.AllocPct)
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(1)
		}
		fmt.Printf("bench compare: %d of %d tracked entries compared, all within tolerance (virtual %.0f%%, wall %.0f%%, alloc %.0f%%) of %s\n",
			compared, len(fresh.Entries), tols.VirtualPct, tols.WallPct, tols.AllocPct, *benchCmp)
		if compared < len(fresh.Entries) {
			fmt.Printf("note: %d entries have no baseline — regenerate %s to track them\n",
				len(fresh.Entries)-compared, *benchCmp)
		}
	}

	if *serve {
		// The service experiment: a warm-pool coordinator, a mixed load
		// (regular and irregular apps, protocol modes on and off, mixed rank
		// counts), and Table D from the aggregate. The deterministic columns
		// are golden-pinned in internal/svc; here the wall-clock half — p50,
		// p99, throughput — is the measurement, and -serve-p99-max makes it
		// a CI gate.
		co, err := svc.Start(svc.Config{Slots: *srvSlots})
		if err != nil {
			fail(err)
		}
		if *srvListen {
			// Interactive service mode: no load run, just a live coordinator
			// for sdsm-client submissions and sdsm-node -pool attachments.
			network, address := co.Addr()
			fmt.Printf("service listening: -network %s -addr %s  (%d local slots; ctrl-c to stop)\n",
				network, address, *srvSlots)
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
			<-sig
			snap := co.Snapshot()
			co.Close()
			fmt.Printf("service stopped: %d accepted, %d rejected, %d completed, %d failed\n",
				snap.Accepted, snap.Rejected, snap.Completed, snap.Failed)
			return
		}
		cl, err := svc.Dial(co.Addr())
		if err != nil {
			co.Close()
			fail(err)
		}
		rep, err := svc.RunLoad(cl, svc.LoadConfig{
			Jobs:        *srvJobs,
			Concurrency: *srvConc,
			Mix: []wire.JobSpec{
				{App: "jacobi", Set: "small", Procs: 2, Verify: true},
				{App: "spmv", Set: "small", Procs: 4, Verify: true, Scale: true},
				{App: "tsp", Set: "small", Procs: 2, Verify: true},
				{App: "jacobi", Set: "bound", Procs: 2, Verify: true, Adapt: true},
			},
		})
		snap := co.Snapshot()
		cl.Close()
		co.Close()
		if err != nil {
			fail(err)
		}
		rep.Accepted, rep.Rejected = snap.Accepted, snap.Rejected
		fmt.Println(svc.FormatTableD(rep))
		if *srvJSON != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*srvJSON, append(data, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote load report to %s\n", *srvJSON)
		}
		bad := false
		for _, r := range rep.Rows {
			if !r.Consistent {
				fmt.Fprintf(os.Stderr, "sdsm-experiments: %s/%s jobs disagree on checksum or virtual time\n", r.App, r.Set)
				bad = true
			}
		}
		if rep.Errors > 0 {
			fmt.Fprintf(os.Stderr, "sdsm-experiments: %d job(s) failed under load\n", rep.Errors)
			bad = true
		}
		if *srvP99 > 0 && rep.P99NS > int64(*srvP99) {
			fmt.Fprintf(os.Stderr, "sdsm-experiments: p99 job latency %v exceeds bound %v\n",
				time.Duration(rep.P99NS), *srvP99)
			bad = true
		}
		if bad {
			os.Exit(1)
		}
	}

	if *trOvh {
		// The observability contract made measurable: tracing must not
		// perturb the simulation. Both runs execute jacobi/large on the sim
		// backend; their virtual times must match to the nanosecond, and
		// the wall-clock delta is the entire cost of recording the trace.
		a, err := apps.ByName("jacobi")
		if err != nil {
			fail(err)
		}
		cfg := harness.Config{App: a, Set: harness.Large, System: harness.Base, Procs: *procs}
		w0 := time.Now()
		plain, err := harness.Run(cfg)
		if err != nil {
			fail(err)
		}
		plainWall := time.Since(w0)
		cfg.Trace = true
		w1 := time.Now()
		traced, err := harness.Run(cfg)
		if err != nil {
			fail(err)
		}
		tracedWall := time.Since(w1)
		events, dropped := 0, int64(0)
		for _, nt := range traced.Trace.Nodes {
			events += nt.Len()
			dropped += nt.Dropped()
		}
		fmt.Printf("tracing overhead (%s, %s set, %d processors, sim backend)\n", a.Name, harness.Large, *procs)
		fmt.Printf("  virtual time untraced:  %v\n", plain.Time)
		fmt.Printf("  virtual time traced:    %v\n", traced.Time)
		fmt.Printf("  events recorded:        %d (%d dropped)\n", events, dropped)
		fmt.Printf("  wall untraced / traced: %v / %v\n", plainWall.Round(time.Millisecond), tracedWall.Round(time.Millisecond))
		if plain.Time != traced.Time {
			fmt.Fprintln(os.Stderr, "sdsm-experiments: VIRTUAL TIME PERTURBED — tracing leaked into the cost model")
			os.Exit(1)
		}
		fmt.Println("  virtual times identical: tracing is invisible to the cost model")
		fmt.Println()
	}
	if *all || *micro {
		m, err := harness.Micro()
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatMicro(m))
	}
	if *all || *table1 {
		rows, err := harness.Table1(workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatTable1(rows))
	}
	if *all || *table2 {
		rows, err := harness.Table2(*procs, workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatTable2(rows))
	}
	if *all || *fig5 {
		rows, err := harness.Fig5(*procs, workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatFig5(rows, *procs))
	}
	if *all || *fig6 {
		rows, err := harness.Fig6(*procs, workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatFig6(rows, *procs))
	}
	if *all || *fig7 {
		rows, err := harness.Fig7(*procs, workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatFig7(rows, *procs))
	}
	if *all || *adaptT {
		rows, err := harness.AdaptTable(*procs, workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatAdaptTable(rows, *procs))
		lrows, err := harness.AdaptLockTable(*procs, workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatAdaptLockTable(lrows, *procs))
	}
	if *all || *scaleT {
		// The scaling matrix ignores -procs: its node-count axis is the
		// experiment (8 through 128 on the sim backend, every run verified
		// against the sequential reference).
		rows, err := harness.ScaleTable(workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatScaleTable(rows))
	}
	if *bench != "" {
		if err := harness.WriteBenchJSON(*bench, *procs, workers); err != nil {
			fail(err)
		}
		fmt.Printf("wrote benchmark report to %s\n", *bench)
	}
}
