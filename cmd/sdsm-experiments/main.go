// Command sdsm-experiments regenerates every table and figure of the
// paper's evaluation on the simulated platform:
//
//	sdsm-experiments -all
//	sdsm-experiments -table1 -fig5 -procs 8
//	sdsm-experiments -all -parallel 8
//	sdsm-experiments -fig7 -backend net
//
// Every experiment is a self-contained simulation, so -parallel N fans
// independent runs across N workers: virtual-time numbers are unchanged,
// only wall-clock time drops (see EXPERIMENTS.md for a reference run).
// -backend real/net runs the underlying machines on the concurrent
// backends instead; results stay verified but times become
// scheduling-dependent, so the deterministic tables require the default
// sim backend.
//
// The output prints measured values next to the paper's where applicable;
// EXPERIMENTS.md discusses the comparisons.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"sdsm/internal/apps"
	"sdsm/internal/harness"
	"sdsm/internal/mpnet"
)

func main() {
	mpnet.MaybeWorker() // worker re-exec path; does not return if spawned
	var (
		all       = flag.Bool("all", false, "run every experiment")
		table1    = flag.Bool("table1", false, "uniprocessor execution times")
		table2    = flag.Bool("table2", false, "reduction in page faults, messages, data")
		fig5      = flag.Bool("fig5", false, "speedups: Tmk, Opt-Tmk, XHPF, PVMe")
		fig6      = flag.Bool("fig6", false, "speedups under optimization levels")
		fig7      = flag.Bool("fig7", false, "synchronous vs asynchronous fetching")
		adaptT    = flag.Bool("adapt", false, "adaptive update protocol vs invalidate baseline and compiler push")
		scaleT    = flag.Bool("scale", false, "large-machine scaling matrix: ownership directory + compressed relay at 8..128 nodes")
		micro     = flag.Bool("micro", false, "Section 5 primitive costs")
		trOvh     = flag.Bool("trace-overhead", false, "run jacobi/large traced and untraced; verify virtual times are identical and report the wall cost of tracing")
		bench     = flag.String("bench-json", "", "write machine-readable benchmark output (protocol stats + wall times) to this file")
		benchCmp  = flag.String("bench-compare", "", "compare a baseline BENCH json (this flag) against a new one (next argument): usage `-bench-compare old.json new.json`; exits 1 on a tracked regression beyond the per-metric tolerances")
		benchTol  = flag.Float64("bench-tolerance", harness.DefaultBenchTolerancePct, "allowed virtual-time regression percentage for -bench-compare")
		benchWTol = flag.Float64("bench-wall-tolerance", harness.DefaultBenchWallTolerancePct, "allowed wall-time regression percentage for -bench-compare (generous: wall times are hardware-dependent; <= 0 disables)")
		benchATol = flag.Float64("bench-alloc-tolerance", harness.DefaultBenchAllocTolerancePct, "allowed allocation-count regression percentage for -bench-compare (tight: allocs are near-deterministic; <= 0 disables)")
		procs     = flag.Int("procs", harness.DefaultProcs, "processor count")
		par       = flag.Int("parallel", 1, "worker pool size for independent experiment runs (0 = GOMAXPROCS)")
		backend   = flag.String("backend", "sim", "host backend for the runs: sim (deterministic paper numbers), real, net (times become scheduling-dependent)")
	)
	flag.Parse()
	workers := *par
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	switch harness.Backend(*backend) {
	case harness.BackendSim, harness.BackendReal, harness.BackendNet:
		harness.DefaultBackend = harness.Backend(*backend)
	default:
		fmt.Fprintf(os.Stderr, "sdsm-experiments: unknown backend %q\n", *backend)
		os.Exit(2)
	}
	if harness.DefaultBackend != harness.BackendSim {
		fmt.Printf("note: %s backend — virtual times are scheduling-dependent; the paper's\n"+
			"deterministic numbers require the sim backend (the default).\n\n", *backend)
	}
	if !(*all || *table1 || *table2 || *fig5 || *fig6 || *fig7 || *adaptT || *scaleT || *micro || *trOvh || *bench != "" || *benchCmp != "") {
		flag.Usage()
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sdsm-experiments:", err)
		os.Exit(1)
	}

	if *benchCmp != "" {
		// The trajectory gate: `-bench-compare old.json new.json`. Virtual
		// times are deterministic, so comparing a fresh report against a
		// checked-in baseline catches perf regressions that the exact
		// golden tables would only report as opaque byte diffs.
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "sdsm-experiments: -bench-compare needs the new report as its argument: -bench-compare old.json new.json")
			os.Exit(2)
		}
		old, err := harness.LoadBenchReport(*benchCmp)
		if err != nil {
			fail(err)
		}
		fresh, err := harness.LoadBenchReport(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		tols := harness.BenchTolerances{VirtualPct: *benchTol, WallPct: *benchWTol, AllocPct: *benchATol}
		regs, compared := harness.CompareBench(old, fresh, tols)
		if compared == 0 {
			// Zero overlap means the baseline no longer tracks anything the
			// fresh report measures (renamed apps, changed procs, stale
			// baseline) — exactly the no-coverage case the gate exists to
			// prevent, so it must fail loudly, not pass vacuously.
			fmt.Fprintf(os.Stderr, "sdsm-experiments: bench compare matched 0 of %d entries against %s — regenerate the baseline\n",
				len(fresh.Entries), *benchCmp)
			os.Exit(1)
		}
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "sdsm-experiments: %d regression(s) beyond tolerance (virtual %.0f%%, wall %.0f%%, alloc %.0f%%):\n",
				len(regs), tols.VirtualPct, tols.WallPct, tols.AllocPct)
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(1)
		}
		fmt.Printf("bench compare: %d of %d tracked entries compared, all within tolerance (virtual %.0f%%, wall %.0f%%, alloc %.0f%%) of %s\n",
			compared, len(fresh.Entries), tols.VirtualPct, tols.WallPct, tols.AllocPct, *benchCmp)
		if compared < len(fresh.Entries) {
			fmt.Printf("note: %d entries have no baseline — regenerate %s to track them\n",
				len(fresh.Entries)-compared, *benchCmp)
		}
	}

	if *trOvh {
		// The observability contract made measurable: tracing must not
		// perturb the simulation. Both runs execute jacobi/large on the sim
		// backend; their virtual times must match to the nanosecond, and
		// the wall-clock delta is the entire cost of recording the trace.
		a, err := apps.ByName("jacobi")
		if err != nil {
			fail(err)
		}
		cfg := harness.Config{App: a, Set: harness.Large, System: harness.Base, Procs: *procs}
		w0 := time.Now()
		plain, err := harness.Run(cfg)
		if err != nil {
			fail(err)
		}
		plainWall := time.Since(w0)
		cfg.Trace = true
		w1 := time.Now()
		traced, err := harness.Run(cfg)
		if err != nil {
			fail(err)
		}
		tracedWall := time.Since(w1)
		events, dropped := 0, int64(0)
		for _, nt := range traced.Trace.Nodes {
			events += nt.Len()
			dropped += nt.Dropped()
		}
		fmt.Printf("tracing overhead (%s, %s set, %d processors, sim backend)\n", a.Name, harness.Large, *procs)
		fmt.Printf("  virtual time untraced:  %v\n", plain.Time)
		fmt.Printf("  virtual time traced:    %v\n", traced.Time)
		fmt.Printf("  events recorded:        %d (%d dropped)\n", events, dropped)
		fmt.Printf("  wall untraced / traced: %v / %v\n", plainWall.Round(time.Millisecond), tracedWall.Round(time.Millisecond))
		if plain.Time != traced.Time {
			fmt.Fprintln(os.Stderr, "sdsm-experiments: VIRTUAL TIME PERTURBED — tracing leaked into the cost model")
			os.Exit(1)
		}
		fmt.Println("  virtual times identical: tracing is invisible to the cost model")
		fmt.Println()
	}
	if *all || *micro {
		m, err := harness.Micro()
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatMicro(m))
	}
	if *all || *table1 {
		rows, err := harness.Table1(workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatTable1(rows))
	}
	if *all || *table2 {
		rows, err := harness.Table2(*procs, workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatTable2(rows))
	}
	if *all || *fig5 {
		rows, err := harness.Fig5(*procs, workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatFig5(rows, *procs))
	}
	if *all || *fig6 {
		rows, err := harness.Fig6(*procs, workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatFig6(rows, *procs))
	}
	if *all || *fig7 {
		rows, err := harness.Fig7(*procs, workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatFig7(rows, *procs))
	}
	if *all || *adaptT {
		rows, err := harness.AdaptTable(*procs, workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatAdaptTable(rows, *procs))
		lrows, err := harness.AdaptLockTable(*procs, workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatAdaptLockTable(lrows, *procs))
	}
	if *all || *scaleT {
		// The scaling matrix ignores -procs: its node-count axis is the
		// experiment (8 through 128 on the sim backend, every run verified
		// against the sequential reference).
		rows, err := harness.ScaleTable(workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatScaleTable(rows))
	}
	if *bench != "" {
		if err := harness.WriteBenchJSON(*bench, *procs, workers); err != nil {
			fail(err)
		}
		fmt.Printf("wrote benchmark report to %s\n", *bench)
	}
}
