// Command sdsm-trace analyzes a protocol event trace exported by
// sdsm-run -trace-out (or the harness): Chrome trace-event JSON as
// loaded by Perfetto. It prints four reports — the per-epoch critical
// path (which node the barrier waited on, and where that node's time
// went), the top pages by fault count, false-sharing suspects
// (multi-writer pages whose write extents are disjoint), and the
// lock-contention table:
//
//	sdsm-run -app jacobi -trace-out trace.json
//	sdsm-trace trace.json
//	sdsm-trace -top 20 trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"sdsm/internal/obs"
)

func main() {
	var (
		topN = flag.Int("top", 10, "rows in the top-pages report")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sdsm-trace [-top N] <trace.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdsm-trace:", err)
		os.Exit(1)
	}
	out, err := obs.Analyze(data, *topN)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdsm-trace:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
