// Command sdsm-run executes one application on one system configuration
// and prints execution time, speedup, and protocol statistics:
//
//	sdsm-run -app jacobi -system opt-tmk -set large -procs 8
//	sdsm-run -app is -system tmk -set small -procs 4 -verify
//	sdsm-run -app fft -backend real -verify
//	sdsm-run -app gauss -backend net -procs 5 -verify
//	sdsm-run -app is -system pvme -backend net -verify
//	sdsm-run -app jacobi -recover -checkpoint-every 4 -verify
//	sdsm-run -app gauss -recover -fail-rank 1 -fail-epoch 2 -verify
//
// -backend real runs the DSM nodes as goroutines genuinely in parallel
// (results are identical to the deterministic sim backend; virtual times
// become scheduling-dependent). -backend net additionally carries every
// protocol payload over loopback sockets in the wire format; for the
// message-passing systems (pvme, xhpf) it spawns one OS process per rank
// (the sdsm-node worker, or a re-exec of this binary).
package main

import (
	"flag"
	"fmt"
	"os"

	"sdsm/internal/apps"
	"sdsm/internal/harness"
	"sdsm/internal/model"
	"sdsm/internal/mpnet"
	"sdsm/internal/obs"
)

func main() {
	mpnet.MaybeWorker() // worker re-exec path; does not return if spawned
	var (
		app     = flag.String("app", "jacobi", "application: jacobi, fft, is, shallow, gauss, mgs, spmv, tsp, tsps")
		system  = flag.String("system", "opt-tmk", "system: tmk, opt-tmk, xhpf, pvme")
		set     = flag.String("set", "large", "data set: large, small (jacobi adds bound)")
		procs   = flag.Int("procs", harness.DefaultProcs, "processor count")
		verify  = flag.Bool("verify", false, "verify the result against the sequential reference")
		sync    = flag.Bool("sync", false, "force synchronous data fetching (opt-tmk only)")
		adaptOn = flag.Bool("adapt", false, "enable the run-time adaptive update protocol, barrier- and lock-scope (tmk/opt-tmk)")
		adaptK  = flag.Int("adapt-k", 0, "adaptive promotion hysteresis in production cycles (0 = default)")
		adaptM  = flag.Int("adapt-m", 0, "lock-binding re-probe period: piggybacked grants between staleness probes (0 = default)")
		scaleOn = flag.Bool("scale", false, "enable scale mode: per-page ownership directory + span-compressed barrier relay (tmk/opt-tmk)")
		backend = flag.String("backend", "sim", "host backend: sim (deterministic), real (goroutine per node), net (wire transport over loopback sockets; process per rank for pvme/xhpf)")
		nodeBin = flag.String("node-bin", "", "worker binary for -backend net message-passing runs (default: re-exec this binary)")
		recov   = flag.Bool("recover", false, "arm checkpoint/restore: DSM nodes checkpoint at every barrier, net message-passing runs log frames for replay")
		ckEvery = flag.Int("checkpoint-every", 0, "full-checkpoint period in barriers; records in between are incremental (<=1: every record full; with -recover)")
		ckDir   = flag.String("checkpoint-dir", "", "spill checkpoint records to this directory instead of holding them in memory (with -recover)")
		failAt  = flag.Int("fail-rank", -1, "inject a failure: kill this rank (-1 = no fault; implies -recover)")
		failEp  = flag.Int("fail-epoch", 1, "barrier epoch at which -fail-rank dies (DSM systems)")
		failAfr = flag.Int("fail-after", 0, "routed-frame count after which -fail-rank's process is killed (pvme/xhpf on -backend net)")
		trace   = flag.Bool("trace", false, "record a protocol event trace and the full metrics registry (tmk/opt-tmk)")
		trOut   = flag.String("trace-out", "", "write the trace as Chrome trace-event JSON, loadable in Perfetto (implies -trace)")
		trCap   = flag.Int("trace-cap", 0, "per-node trace ring capacity in events (0 = default; oldest events drop on overflow)")
	)
	flag.Parse()
	harness.NodeBin = *nodeBin

	a, err := apps.ByName(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdsm-run:", err)
		os.Exit(1)
	}
	ds := apps.DataSet(*set)
	if _, ok := a.Sets[ds]; !ok {
		fmt.Fprintf(os.Stderr, "sdsm-run: unknown data set %q\n", *set)
		os.Exit(1)
	}

	cfg := harness.Config{
		App: a, Set: ds, System: harness.SystemKind(*system),
		Procs: *procs, Verify: *verify, SyncFetch: *sync,
		Backend: harness.Backend(*backend),
		Adapt:   *adaptOn, AdaptK: *adaptK, AdaptM: *adaptM, Scale: *scaleOn,
		Recover: *recov, CheckpointEvery: *ckEvery, CheckpointDir: *ckDir,
		Trace: *trace || *trOut != "", TraceCap: *trCap,
	}
	if *failAt >= 0 {
		cfg.Fault = &harness.FaultPlan{Rank: *failAt, Epoch: *failEp, AfterFrames: *failAfr}
	}
	res, err := harness.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdsm-run:", err)
		os.Exit(1)
	}

	uni, err := harness.UniTime(a, ds, model.SP2())
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdsm-run:", err)
		os.Exit(1)
	}

	fmt.Printf("application:   %s (%s set)\n", a.Name, ds)
	shownBackend := *backend
	mpSystem := harness.SystemKind(*system) == harness.PVMe || harness.SystemKind(*system) == harness.XHPF
	if mpSystem && harness.Backend(*backend) != harness.BackendNet {
		shownBackend = string(harness.BackendSim) // in-process message passing runs on sim
	}
	if mpSystem && harness.Backend(*backend) == harness.BackendNet {
		shownBackend = "net (process per rank)"
	}
	fmt.Printf("system:        %s on %d processors (%s backend)\n", *system, *procs, shownBackend)
	fmt.Printf("time:          %v (uniprocessor %v, speedup %.2f)\n", res.Time, uni, harness.Speedup(uni, res.Time))
	// One unified metrics dump replaces the former per-subsystem stat
	// lines: every counter of the run — traffic, vm, protocol, adaptive,
	// recovery, and (when traced) the registry's histograms and backend
	// counters — through a single formatter. Zero counters are omitted,
	// so the adaptive and recovery sections appear only when armed.
	fmt.Printf("metrics:\n%s", obs.FormatSnapshot(harness.Snapshot(res), "  "))
	if *trOut != "" {
		f, err := os.Create(*trOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdsm-run:", err)
			os.Exit(1)
		}
		if err := obs.WriteTrace(f, res.Trace); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdsm-run: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace:         %s\n", *trOut)
	}
	if *verify {
		want := harness.SeqChecksum(a, ds)
		status := "OK"
		if !apps.Close(res.Checksum, want) {
			status = "MISMATCH"
		}
		fmt.Printf("verification:  %s (checksum %.6g, sequential %.6g)\n", status, res.Checksum, want)
		if status != "OK" {
			os.Exit(1)
		}
	}
}
