package cluster

import (
	"testing"
	"time"

	"sdsm/internal/host"
	"sdsm/internal/model"
	"sdsm/internal/sim"
)

const tagData Tag = 1

func TestSendRecvTiming(t *testing.T) {
	e := sim.NewEngine(2)
	nw := New(e, model.SP2())
	c := model.SP2()
	var recvAt time.Duration
	err := e.Run(func(p host.Proc) {
		if p.ID() == 0 {
			nw.Send(p, 1, tagData, "hello", 0)
		} else {
			m := nw.Recv(p, 0, tagData)
			if m.Payload.(string) != "hello" {
				t.Errorf("payload = %v", m.Payload)
			}
			recvAt = p.Now()
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := c.SendOverhead + c.WireLatency + c.RecvOverhead
	if recvAt != want {
		t.Fatalf("recv completed at %v, want %v", recvAt, want)
	}
}

func TestMinRoundTripMatchesPaper(t *testing.T) {
	// The paper: minimum roundtrip using send and receive for the smallest
	// message, including an interrupt, is 365 µs.
	e := sim.NewEngine(2)
	nw := New(e, model.SP2())
	var rt time.Duration
	err := e.Run(func(p host.Proc) {
		if p.ID() == 0 {
			start := p.Now()
			nw.Send(p, 1, tagData, nil, 0)
			nw.Recv(p, 1, tagData)
			rt = p.Now() - start
		} else {
			nw.Recv(p, 0, tagData)
			nw.Send(p, 0, tagData, nil, 0)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rt != 365*time.Microsecond {
		t.Fatalf("roundtrip = %v, want 365µs", rt)
	}
}

func TestBandwidthCharge(t *testing.T) {
	e := sim.NewEngine(2)
	costs := model.SP2()
	nw := New(e, costs)
	var recvAt time.Duration
	const bytes = 1 << 20
	err := e.Run(func(p host.Proc) {
		if p.ID() == 0 {
			nw.Send(p, 1, tagData, nil, bytes)
		} else {
			nw.Recv(p, 0, tagData)
			recvAt = p.Now()
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := costs.SendOverhead + costs.OneWay(bytes) + costs.RecvOverhead
	if recvAt != want {
		t.Fatalf("recv at %v, want %v", recvAt, want)
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	e := sim.NewEngine(2)
	nw := New(e, model.SP2())
	var recvAt time.Duration
	err := e.Run(func(p host.Proc) {
		if p.ID() == 0 {
			p.Advance(10 * time.Millisecond)
			nw.Send(p, 1, tagData, nil, 0)
		} else {
			nw.Recv(p, 0, tagData)
			recvAt = p.Now()
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if recvAt < 10*time.Millisecond {
		t.Fatalf("receiver completed at %v before sender sent", recvAt)
	}
}

func TestStatsCount(t *testing.T) {
	e := sim.NewEngine(3)
	nw := New(e, model.SP2())
	err := e.Run(func(p host.Proc) {
		if p.ID() == 0 {
			nw.Broadcast(p, tagData, nil, 100)
		} else {
			nw.Recv(p, 0, tagData)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	s := nw.Stats()
	if s.Msgs != 2 {
		t.Fatalf("msgs = %d, want 2", s.Msgs)
	}
	if s.Bytes != 200 {
		t.Fatalf("bytes = %d, want 200", s.Bytes)
	}
	if s.Node[0].MsgsSent != 2 || s.Node[1].MsgsRecv != 1 {
		t.Fatalf("per-node stats wrong: %+v", s.Node)
	}
}

func TestRequestChargesBothSides(t *testing.T) {
	e := sim.NewEngine(2)
	costs := model.SP2()
	nw := New(e, costs)
	nw.Serve(func(p host.Proc, at int, req any) (any, int) {
		e.Proc(at).Charge(5 * time.Microsecond)
		return req, 64
	})
	var reqDone, targetClock time.Duration
	err := e.Run(func(p host.Proc) {
		if p.ID() == 0 {
			pd := nw.StartRequest(p, 1, nil, 16)
			nw.Await(p, pd)
			reqDone = p.Now()
		} else {
			p.Advance(50 * time.Millisecond) // busy computing
			targetClock = p.Now()
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	targetCPU := costs.RecvOverhead + costs.RequestService + 5*time.Microsecond + costs.SendOverhead
	want := costs.SendOverhead + costs.OneWay(16) + targetCPU + costs.OneWay(64) + costs.RecvOverhead
	if reqDone != want {
		t.Fatalf("rpc completed at %v, want %v", reqDone, want)
	}
	if targetClock != 50*time.Millisecond+targetCPU {
		t.Fatalf("target clock = %v, want %v", targetClock, 50*time.Millisecond+targetCPU)
	}
}

func TestAwaitAllSerializesReceives(t *testing.T) {
	e := sim.NewEngine(3)
	costs := model.SP2()
	nw := New(e, costs)
	nw.Serve(func(p host.Proc, at int, req any) (any, int) { return nil, 0 })
	var done time.Duration
	err := e.Run(func(p host.Proc) {
		switch p.ID() {
		case 0:
			c1 := nw.StartRequest(p, 1, nil, 0)
			c2 := nw.StartRequest(p, 2, nil, 0)
			nw.AwaitAll(p, []*Pending{c1, c2})
			done = p.Now()
		default:
			p.Advance(time.Millisecond)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if done == 0 {
		t.Fatal("AwaitAll did not advance requester clock")
	}
	// The two replies arrive staggered by one SendOverhead (requests were
	// injected serially); the later reply dominates and its receive
	// overhead is charged on top.
	targetCPU := costs.RecvOverhead + costs.RequestService + costs.SendOverhead
	resp2 := 2*costs.SendOverhead + costs.OneWay(0) + targetCPU + costs.OneWay(0)
	want := resp2 + costs.RecvOverhead
	if done != want {
		t.Fatalf("AwaitAll completed at %v, want %v", done, want)
	}
}

func TestAsyncOverlapsComputation(t *testing.T) {
	// A requester that computes between StartRPC and Await should finish
	// earlier relative to its work than one that blocks immediately.
	costs := model.SP2()
	run := func(async bool) time.Duration {
		e := sim.NewEngine(2)
		nw := New(e, costs)
		nw.Serve(func(p host.Proc, at int, req any) (any, int) { return nil, 4096 })
		var done time.Duration
		err := e.Run(func(p host.Proc) {
			if p.ID() == 0 {
				if async {
					c := nw.StartRequest(p, 1, nil, 0)
					p.Advance(300 * time.Microsecond) // overlapped compute
					nw.Await(p, c)
				} else {
					c := nw.StartRequest(p, 1, nil, 0)
					nw.Await(p, c)
					p.Advance(300 * time.Microsecond)
				}
				done = p.Now()
			}
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return done
	}
	if a, s := run(true), run(false); a >= s {
		t.Fatalf("async (%v) not faster than sync (%v)", a, s)
	}
}

func TestPerSenderOrderingByArrival(t *testing.T) {
	// Messages from one sender are received in arrival (send) order.
	e := sim.NewEngine(2)
	nw := New(e, model.SP2())
	err := e.Run(func(p host.Proc) {
		if p.ID() == 0 {
			for i := 0; i < 5; i++ {
				nw.Send(p, 1, tagData, i, 0)
			}
		} else {
			for i := 0; i < 5; i++ {
				if got := nw.Recv(p, 0, tagData).Payload.(int); got != i {
					t.Errorf("message %d received out of order: %d", i, got)
				}
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRecvByTagSelectsCorrectly(t *testing.T) {
	const tagA, tagB Tag = 10, 11
	e := sim.NewEngine(2)
	nw := New(e, model.SP2())
	err := e.Run(func(p host.Proc) {
		if p.ID() == 0 {
			nw.Send(p, 1, tagA, "a", 0)
			nw.Send(p, 1, tagB, "b", 0)
		} else {
			if got := nw.Recv(p, 0, tagB).Payload.(string); got != "b" {
				t.Errorf("tagB recv = %q", got)
			}
			if got := nw.Recv(p, 0, tagA).Payload.(string); got != "a" {
				t.Errorf("tagA recv = %q", got)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
