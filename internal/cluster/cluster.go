// Package cluster simulates the interconnect of a distributed-memory
// machine on top of the sim engine: point-to-point messages with latency
// and bandwidth charges, broadcast, synchronous request/reply (RPC), and
// message/byte accounting.
//
// Two communication styles are offered:
//
//   - Mailbox Send/Recv, used by the message-passing programming layer
//     (the PVMe and XHPF stand-ins) and by barrier implementations.
//   - RPC, used by the DSM protocol for request/reply interactions such as
//     diff fetches and lock acquisition. RPC handlers execute immediately
//     against the target's current state while virtual time is charged as
//     if the request had traveled the wire; see DESIGN.md for why this is
//     both deterministic and faithful for LRC workloads.
package cluster

import (
	"fmt"
	"time"

	"sdsm/internal/host"
	"sdsm/internal/model"
)

// Tag distinguishes message classes within a mailbox.
type Tag = host.Tag

// AnySender matches messages from every sender in Recv.
const AnySender = host.AnySender

// Msg is a delivered message.
type Msg = host.Msg

// NodeStats counts traffic at one node.
type NodeStats = host.NodeStats

// Stats aggregates network traffic. The DSM statistics the paper reports
// ("msg" and "data" in Table 2) are derived from these counters.
type Stats = host.Stats

// Pending is an in-flight request/reply exchange.
type Pending = host.Pending

type waiter struct {
	p    host.Proc
	from int
	tag  Tag
}

type handKey struct {
	to   int
	slot Tag
}

// Network implements host.Transport over any host backend: the mailbox and
// RPC state is shared, so all methods must be called inside a protocol
// section (the sim host makes every instant one; the real host's run-time
// layers bracket their entry points).
type Network struct {
	h      host.Host
	costs  model.Costs
	boxes  [][]Msg // pending messages per destination
	waits  []*waiter
	hands  map[handKey]any // staged protocol payloads (grants, departures)
	server host.Server
	stats  Stats
}

// New creates a network for every processor of h.
func New(h host.Host, costs model.Costs) *Network {
	n := h.N()
	return &Network{
		h:     h,
		costs: costs,
		boxes: make([][]Msg, n),
		waits: make([]*waiter, n),
		hands: map[handKey]any{},
		stats: Stats{Node: make([]NodeStats, n)},
	}
}

// Costs returns the cost model in force.
func (nw *Network) Costs() model.Costs { return nw.costs }

// Stats returns a snapshot of the traffic counters.
func (nw *Network) Stats() Stats {
	s := nw.stats
	s.Node = append([]NodeStats(nil), nw.stats.Node...)
	return s
}

// ResetStats zeroes all counters (used between experiment phases).
func (nw *Network) ResetStats() {
	nw.stats = Stats{Node: make([]NodeStats, nw.h.N())}
}

func (nw *Network) account(from, to, bytes int) { nw.stats.Account(from, to, bytes) }

// Send transmits payload from p to node `to`. The sender is charged send
// overhead; the message arrives after wire latency plus bandwidth time.
func (nw *Network) Send(p host.Proc, to int, tag Tag, payload any, bytes int) {
	if to == p.ID() {
		panic("cluster: send to self")
	}
	p.Charge(nw.costs.SendOverhead)
	m := Msg{
		From:    p.ID(),
		To:      to,
		Tag:     tag,
		Payload: payload,
		Bytes:   bytes,
		Arrival: p.Now() + nw.costs.OneWay(bytes),
	}
	nw.account(p.ID(), to, bytes)
	nw.boxes[to] = append(nw.boxes[to], m)
	if w := nw.waits[to]; w != nil && (w.from == AnySender || w.from == m.From) && w.tag == m.Tag {
		nw.waits[to] = nil
		p.Wake(w.p, m.Arrival)
	}
}

// Broadcast sends payload to every other node, serializing the per-message
// send overhead at the sender (how MPL broadcast behaves for small n).
func (nw *Network) Broadcast(p host.Proc, tag Tag, payload any, bytes int) {
	for to := 0; to < nw.h.N(); to++ {
		if to != p.ID() {
			nw.Send(p, to, tag, payload, bytes)
		}
	}
}

// Recv blocks p until a message with the given tag (and sender, unless
// AnySender) is available, then delivers the earliest-arriving match.
// Receiving charges the interrupt/dispatch overhead.
func (nw *Network) Recv(p host.Proc, from int, tag Tag) Msg {
	for {
		if m, ok := nw.take(p.ID(), from, tag); ok {
			p.SetClock(m.Arrival)
			p.Charge(nw.costs.RecvOverhead)
			return m
		}
		if nw.waits[p.ID()] != nil {
			panic(fmt.Sprintf("cluster: node %d has two concurrent receivers", p.ID()))
		}
		nw.waits[p.ID()] = &waiter{p: p, from: from, tag: tag}
		p.Block("cluster recv")
	}
}

// take removes the earliest matching message from to's mailbox.
func (nw *Network) take(to, from int, tag Tag) (Msg, bool) {
	m, rest, ok := host.TakeMatch(nw.boxes[to], from, tag)
	nw.boxes[to] = rest
	return m, ok
}

// Message accounts for a protocol message from node `from` departing at
// `depart` and returns the time at which the receiver has fielded it
// (arrival plus interrupt). Sender and receiver CPU overheads are charged
// to the respective processors. It is the building block for multi-hop
// protocol exchanges (lock forwarding) whose intermediate legs do not
// involve the calling processor.
func (nw *Network) Message(from, to int, depart time.Duration, bytes int) time.Duration {
	if from == to {
		panic("cluster: message to self")
	}
	nw.h.Proc(from).Charge(nw.costs.SendOverhead)
	nw.h.Proc(to).Charge(nw.costs.RecvOverhead)
	nw.account(from, to, bytes)
	return depart + nw.costs.SendOverhead + nw.costs.OneWay(bytes) + nw.costs.RecvOverhead
}

// Serve registers the request handler invoked at the target of
// StartRequest exchanges.
func (nw *Network) Serve(fn host.Server) {
	if nw.server != nil {
		panic("cluster: server already registered")
	}
	nw.server = fn
}

// StartRequest issues a request/reply exchange and returns without
// waiting. The server still runs immediately against the target's current
// state (the protocol state transition is deterministic; see DESIGN.md
// S3); only the requester's time accounting is deferred, which models
// asynchronous data fetching (Section 3.2.3 of the paper). Any CPU time
// the server charges to the target (for example creating diffs) extends
// the reply's arrival; the target is additionally charged interrupt,
// service, and reply-injection overheads.
func (nw *Network) StartRequest(p host.Proc, to int, req any, reqBytes int) *Pending {
	if to == p.ID() {
		panic("cluster: request to self")
	}
	p.Charge(nw.costs.SendOverhead)
	reqArrival := p.Now() + nw.costs.OneWay(reqBytes)
	nw.account(p.ID(), to, reqBytes)

	target := nw.h.Proc(to)
	before := target.Now()
	resp, respBytes := nw.server(p, to, req)
	target.Charge(nw.costs.RecvOverhead + nw.costs.RequestService + nw.costs.SendOverhead)
	service := target.Now() - before
	nw.account(to, p.ID(), respBytes)

	return &Pending{
		Reply:   resp,
		Arrival: reqArrival + service + nw.costs.OneWay(respBytes),
		Bytes:   respBytes,
	}
}

// SendShared transmits the same payload from p to several recipients,
// charging the sender's injection overhead only once (modeling the
// switch-assisted broadcast the augmented run-time uses at barriers when a
// processor sends identical data to everyone). Each delivery is still
// accounted as a message.
func (nw *Network) SendShared(p host.Proc, tos []int, tag Tag, payload any, bytes int) {
	p.Charge(nw.costs.SendOverhead)
	for _, to := range tos {
		if to == p.ID() {
			panic("cluster: send to self")
		}
		m := Msg{
			From:    p.ID(),
			To:      to,
			Tag:     tag,
			Payload: payload,
			Bytes:   bytes,
			Arrival: p.Now() + nw.costs.OneWay(bytes),
		}
		nw.account(p.ID(), to, bytes)
		nw.boxes[to] = append(nw.boxes[to], m)
		if w := nw.waits[to]; w != nil && (w.from == AnySender || w.from == m.From) && w.tag == m.Tag {
			nw.waits[to] = nil
			p.Wake(w.p, m.Arrival)
		}
	}
}

// Await advances p to the completion of one in-flight exchange and charges
// the receive overhead.
func (nw *Network) Await(p host.Proc, pd *Pending) {
	pd.Resolve(p)
	p.SetClock(pd.Arrival)
	p.Charge(nw.costs.RecvOverhead)
}

// AwaitAll completes a set of in-flight exchanges, processing replies in
// arrival order (the receive overheads serialize at the requester).
func (nw *Network) AwaitAll(p host.Proc, pds []*Pending) {
	host.AwaitInArrivalOrder(p, pds, nw.Await)
}

// Hand stages a protocol payload for node to (lock grants, barrier
// departures); the recipient consumes it with TakeHand after being woken.
// Delivery is immediate in-process; cost accounting is the caller's
// affair, via Message.
func (nw *Network) Hand(p host.Proc, to int, slot Tag, payload any) {
	k := handKey{to: to, slot: slot}
	if _, dup := nw.hands[k]; dup {
		panic(fmt.Sprintf("cluster: hand slot %d for node %d already staged", slot, to))
	}
	nw.hands[k] = payload
}

// TakeHand retrieves the payload staged for the caller in slot. The
// protocol stages hands before waking their consumers, so in-process the
// payload is always present.
func (nw *Network) TakeHand(p host.Proc, slot Tag) any {
	k := handKey{to: p.ID(), slot: slot}
	payload, ok := nw.hands[k]
	if !ok {
		panic(fmt.Sprintf("cluster: node %d took empty hand slot %d", p.ID(), slot))
	}
	delete(nw.hands, k)
	return payload
}
