package sim

import (
	"sdsm/internal/host"

	"sync/atomic"
	"testing"
	"time"
)

func TestSingleProcAdvance(t *testing.T) {
	e := NewEngine(1)
	var end time.Duration
	err := e.Run(func(p host.Proc) {
		p.Advance(5 * time.Microsecond)
		p.Advance(7 * time.Microsecond)
		end = p.Now()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end != 12*time.Microsecond {
		t.Fatalf("clock = %v, want 12µs", end)
	}
}

func TestMinClockOrdering(t *testing.T) {
	// Processor 1 advances in small steps, processor 0 in one big step.
	// The order of observed steps must interleave by virtual time.
	e := NewEngine(2)
	var order []int64
	err := e.Run(func(p host.Proc) {
		if p.ID() == 0 {
			p.Advance(100 * time.Microsecond)
			order = append(order, 1000+int64(p.Now()/time.Microsecond))
		} else {
			for i := 0; i < 5; i++ {
				p.Advance(10 * time.Microsecond)
				order = append(order, 2000+int64(p.Now()/time.Microsecond))
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int64{2010, 2020, 2030, 2040, 2050, 1100}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestBlockWake(t *testing.T) {
	e := NewEngine(2)
	var wakeTime time.Duration
	err := e.Run(func(p host.Proc) {
		if p.ID() == 0 {
			p.Block("waiting for p1")
			wakeTime = p.Now()
		} else {
			p.Advance(50 * time.Microsecond)
			p.Wake(e.Proc(0), 60*time.Microsecond)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wakeTime != 60*time.Microsecond {
		t.Fatalf("wake time = %v, want 60µs", wakeTime)
	}
}

func TestWakeDoesNotRewindClock(t *testing.T) {
	e := NewEngine(2)
	var wakeTime time.Duration
	err := e.Run(func(p host.Proc) {
		if p.ID() == 0 {
			p.Advance(100 * time.Microsecond)
			p.Block("wait")
			wakeTime = p.Now()
		} else {
			p.Advance(200 * time.Microsecond)
			p.Wake(e.Proc(0), 10*time.Microsecond) // earlier than p0's clock
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wakeTime != 100*time.Microsecond {
		t.Fatalf("wake time = %v, want 100µs (clock must not rewind)", wakeTime)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(2)
	err := e.Run(func(p host.Proc) {
		p.Block("forever")
	})
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestChargeAccumulates(t *testing.T) {
	e := NewEngine(2)
	var end time.Duration
	err := e.Run(func(p host.Proc) {
		if p.ID() == 0 {
			p.Advance(10 * time.Microsecond)
			p.Charge(3 * time.Microsecond)
			p.Advance(1 * time.Microsecond)
			end = p.Now()
		} else {
			p.Advance(500 * time.Microsecond)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if end != 14*time.Microsecond {
		t.Fatalf("clock = %v, want 14µs", end)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		e := NewEngine(4)
		var seq []int
		err := e.Run(func(p host.Proc) {
			for i := 0; i < 3; i++ {
				p.Advance(time.Duration(1+p.ID()) * time.Microsecond)
				seq = append(seq, p.ID())
			}
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return seq
	}
	first := run()
	for trial := 0; trial < 10; trial++ {
		got := run()
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("trial %d: sequence %v != %v", trial, got, first)
			}
		}
	}
}

func TestPanicPropagates(t *testing.T) {
	e := NewEngine(2)
	err := e.Run(func(p host.Proc) {
		if p.ID() == 1 {
			panic("boom")
		}
		p.Advance(time.Microsecond)
	})
	if err == nil {
		t.Fatal("expected error from panicking processor")
	}
}

func TestManyProcsAllFinish(t *testing.T) {
	const n = 16
	e := NewEngine(n)
	var count int64
	err := e.Run(func(p host.Proc) {
		for i := 0; i < 100; i++ {
			p.Advance(time.Microsecond)
		}
		atomic.AddInt64(&count, 1)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != n {
		t.Fatalf("finished = %d, want %d", count, n)
	}
}

func TestWakeNonBlockedPanics(t *testing.T) {
	e := NewEngine(2)
	err := e.Run(func(p host.Proc) {
		if p.ID() == 0 {
			defer func() {
				if recover() == nil {
					t.Error("Wake on a runnable processor must panic")
				}
			}()
			p.Wake(e.Proc(1), time.Microsecond) // p1 is runnable, not blocked
		}
	})
	// The panic is converted to a run error for the engine.
	_ = err
}

func TestNegativeAdvancePanics(t *testing.T) {
	e := NewEngine(1)
	err := e.Run(func(p host.Proc) {
		defer func() { recover() }()
		p.Advance(-time.Second)
		t.Error("negative advance must panic")
	})
	_ = err
}
