// Package sim provides a deterministic, sequential discrete-event
// simulation engine for a collection of virtual processors.
//
// Each processor runs as a goroutine, but the engine admits exactly one
// runnable processor at a time and always resumes the runnable processor
// with the smallest virtual clock (ties broken by processor id). This makes
// every simulation deterministic regardless of the Go scheduler.
//
// Processors advance their own clocks with Advance, block with Block, and
// are woken by other processors with Wake. Higher layers (network,
// synchronization, DSM protocol) are built from these three primitives.
package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sdsm/internal/host"
	"sdsm/internal/obs"
)

// state of a processor within the scheduler.
type procState int

const (
	stateRunnable procState = iota
	stateRunning
	stateBlocked
	stateDone
)

// Proc is a simulated processor, implementing host.Proc. All methods
// except Wake and Charge must be called from the goroutine running this
// processor's body.
type Proc struct {
	id int

	e      *Engine
	clock  time.Duration
	state  procState
	resume chan struct{}
	reason string // why the processor is blocked, for deadlock reports
}

// Engine coordinates a fixed set of processors.
type Engine struct {
	mu    sync.Mutex
	procs []*Proc
	live  int
	done  chan struct{}
	err   error

	// dispatches, when non-nil, counts scheduler hand-offs (one per
	// processor resume) for the observability layer. Nil on untraced
	// runs; it never affects the schedule.
	dispatches *obs.Counter
}

// EnableObs registers the engine's dispatch counter with the unified
// metrics registry. Observability only; never called on untraced runs.
func (e *Engine) EnableObs(reg *obs.Registry) {
	e.dispatches = reg.Counter("sim.dispatches")
}

// NewEngine creates an engine with n processors whose clocks start at zero.
func NewEngine(n int) *Engine {
	if n <= 0 {
		panic("sim: engine needs at least one processor")
	}
	e := &Engine{done: make(chan struct{})}
	for i := 0; i < n; i++ {
		e.procs = append(e.procs, &Proc{id: i, e: e, resume: make(chan struct{}, 1)})
	}
	return e
}

// N returns the number of processors.
func (e *Engine) N() int { return len(e.procs) }

// Proc returns processor i.
func (e *Engine) Proc(i int) host.Proc { return e.procs[i] }

// Run executes body once per processor and returns when all processors have
// finished. It returns an error if the simulation deadlocks (every live
// processor blocked) or if a body panics.
func (e *Engine) Run(body func(p host.Proc)) error {
	e.mu.Lock()
	e.live = len(e.procs)
	for _, p := range e.procs {
		p.state = stateRunnable
		p.clock = 0
	}
	e.mu.Unlock()

	for _, p := range e.procs {
		p := p
		go func() {
			defer func() {
				if r := recover(); r != nil {
					e.mu.Lock()
					if e.err == nil {
						e.err = fmt.Errorf("sim: processor %d panicked: %v", p.id, r)
					}
					p.state = stateDone
					e.live--
					e.scheduleNextLocked()
					e.mu.Unlock()
					return
				}
				e.finish(p)
			}()
			<-p.resume // wait until scheduled for the first time
			body(p)
		}()
	}

	e.mu.Lock()
	e.scheduleNextLocked()
	e.mu.Unlock()

	<-e.done
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// finish marks p done and hands the token to the next runnable processor.
func (e *Engine) finish(p *Proc) {
	e.mu.Lock()
	p.state = stateDone
	e.live--
	e.scheduleNextLocked()
	e.mu.Unlock()
}

// scheduleNextLocked picks the runnable processor with the smallest
// (clock, id) and signals it. Caller holds e.mu.
func (e *Engine) scheduleNextLocked() {
	if e.live == 0 {
		select {
		case <-e.done:
		default:
			close(e.done)
		}
		return
	}
	var next *Proc
	for _, q := range e.procs {
		if q.state != stateRunnable {
			continue
		}
		if next == nil || q.clock < next.clock || (q.clock == next.clock && q.id < next.id) {
			next = q
		}
	}
	if next == nil {
		// Every live processor is blocked: deadlock.
		if e.err == nil {
			e.err = fmt.Errorf("sim: deadlock: %s", e.blockReportLocked())
		}
		select {
		case <-e.done:
		default:
			close(e.done)
		}
		return
	}
	next.state = stateRunning
	if e.dispatches != nil {
		e.dispatches.Inc()
	}
	next.resume <- struct{}{}
}

func (e *Engine) blockReportLocked() string {
	var parts []string
	for _, q := range e.procs {
		if q.state == stateBlocked {
			parts = append(parts, fmt.Sprintf("p%d@%v(%s)", q.id, q.clock, q.reason))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

// ID returns the processor number, 0..N-1.
func (p *Proc) ID() int { return p.id }

// Now returns the processor's current virtual time.
func (p *Proc) Now() time.Duration { return p.clock }

// Advance charges d of virtual time to the processor and yields, letting
// any processor with a smaller clock run first.
func (p *Proc) Advance(d time.Duration) {
	if d < 0 {
		panic("sim: negative advance")
	}
	p.clock += d
	p.Yield()
}

// Charge adds d to the processor's clock without yielding. It may be called
// by the currently running processor on any processor (including a blocked
// one) to account for overhead imposed remotely, such as servicing an
// interrupt.
func (p *Proc) Charge(d time.Duration) {
	if d < 0 {
		panic("sim: negative charge")
	}
	p.clock += d
}

// Yield gives other processors with smaller clocks a chance to run.
func (p *Proc) Yield() {
	e := p.e
	e.mu.Lock()
	p.state = stateRunnable
	e.scheduleNextLocked()
	e.mu.Unlock()
	<-p.resume
}

// Block suspends the processor until another processor calls Wake on it.
// reason appears in deadlock reports.
func (p *Proc) Block(reason string) {
	e := p.e
	e.mu.Lock()
	p.state = stateBlocked
	p.reason = reason
	e.scheduleNextLocked()
	e.mu.Unlock()
	<-p.resume
}

// Wake makes a blocked processor runnable again, moving its clock forward
// to at if at is later than the processor's clock. Wake must be called by
// the currently running processor. Waking a non-blocked processor panics:
// wakes are direct handoffs, never broadcasts.
func (p *Proc) Wake(target host.Proc, at time.Duration) {
	q := target.(*Proc)
	e := p.e
	e.mu.Lock()
	defer e.mu.Unlock()
	if q.state != stateBlocked {
		panic(fmt.Sprintf("sim: Wake on non-blocked processor %d", q.id))
	}
	if at > q.clock {
		q.clock = at
	}
	q.state = stateRunnable
	q.reason = ""
}

// SetClock forces the processor's clock to at if at is later. It is used by
// synchronization objects that compute a common departure time.
func (p *Proc) SetClock(at time.Duration) {
	if at > p.clock {
		p.clock = at
	}
}

// Begin is a no-op: the engine already admits one processor at a time, so
// every instant is a protocol section.
func (p *Proc) Begin() {}

// End is a no-op (see Begin).
func (p *Proc) End() {}

// BeginCompute is a no-op (see Begin).
func (p *Proc) BeginCompute() {}

// EndCompute is a no-op (see Begin).
func (p *Proc) EndCompute() {}

// Hold runs fn directly: no processor computes while another runs.
func (p *Proc) Hold(q host.Proc, fn func()) { fn() }
