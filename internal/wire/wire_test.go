package wire

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// sampleFrames covers every frame kind and every payload type, including
// empty and nil slices (which decode as nil — the canonical form). The
// Fetched relay lists appear both sparse (raw mode of the version-7
// page-set encoding) and dense (span mode), so the corpus seeds exercise
// both branches of the codec.
func sampleFrames() []*Frame {
	return []*Frame{
		{Kind: FHello, From: 3},
		{Kind: FMsg, From: 1, To: 2, Tag: 7, Bytes: 128, Time: 123456, Payload: Float64s{1.5, -2.25, 0}},
		{Kind: FMsg, From: 0, To: 4, Tag: 2, Bytes: 0, Time: 1},
		{Kind: FMsg, From: 2, To: 0, Tag: 101, Bytes: 4112, Time: 99, Payload: Push{
			Ivl:    9,
			Chunks: []Chunk{{Lo: 512, Vals: []float64{3.5, 4.5}}, {Lo: 1024, Vals: []float64{-1}}},
		}},
		{Kind: FReq, From: 1, To: 0, Tag: 44, Bytes: 32, Payload: DiffRequest{
			Req:     1,
			Pages:   []int32{3, 9},
			Applied: [][]int32{{1, 0, 2}, {0, 0, 5}},
		}},
		{Kind: FReq, From: 2, To: 0, Tag: 45, Bytes: 24, Payload: DiffRequest{
			Req:     2,
			Pages:   []int32{14},
			Applied: [][]int32{{0, 1, 0}},
			Direct:  true,
		}},
		{Kind: FReply, From: 0, To: 1, Tag: 44, Bytes: 4128, Time: 5555, Payload: DiffReply{
			Diffs: []Diff{
				{Page: 3, Creator: 0, From: 1, To: 4, Covers: []int32{4, 0, 2},
					Runs: []Run{{Off: 16, Vals: []float64{7, 8, 9}}}},
				{Page: 9, Creator: 2, From: 0, To: 5, Whole: true, Covers: []int32{1, 0, 5},
					Runs: []Run{{Off: 0, Vals: []float64{1, 2}}}},
			},
		}},
		{Kind: FReply, From: 2, To: 1, Tag: 45, Bytes: 24, Time: 500, Payload: DiffReply{
			Diffs:     []Diff{{Page: 7, Creator: 2, From: 2, To: 3, Covers: []int32{0, 1, 3}}},
			Redirects: []PageOwner{{Page: 8, Owner: 0}, {Page: 14, Owner: 1}},
		}},
		{Kind: FHand, From: 2, To: 1, Tag: 1, Payload: Grant{
			Intervals: []OwnedInterval{{Owner: 2, Idx: 5, IV: Interval{
				Pages: []PageRef{{Page: 3, ExtLo: 12, ExtHi: 200}, {Page: 4, Whole: true, ExtLo: 0, ExtHi: 512}},
				VC:    []int32{1, 2, 5},
			}}},
			Served: []Diff{{Page: 4, Creator: 2, From: 4, To: 5, Covers: []int32{0, 0, 5}}},
			Bytes:  60,
		}},
		{Kind: FHand, From: 1, To: 2, Tag: 1, Payload: Grant{
			Intervals: []OwnedInterval{{Owner: 1, Idx: 6, IV: Interval{
				Pages: []PageRef{{Page: 9}},
				VC:    []int32{2, 6, 5},
				Split: true,
			}}},
			Pushed: []DiffSpan{
				{Page: 9, Creator: 1, From: 5, To: 6, Covers: []int32{2, 6, 5},
					Pages: [][]Run{
						{{Off: 8, Vals: []float64{1.25, -3}}},
						{{Off: 0, Vals: []float64{4.5}}, {Off: 64, Vals: []float64{2}}},
					}},
				{Page: 12, Creator: 0, From: 1, To: 2, Whole: true, Covers: []int32{2, 0, 0},
					Pages: [][]Run{{{Off: 0, Vals: []float64{7}}}}},
			},
			Bytes: 96,
		}},
		{Kind: FHand, From: 0, To: 2, Tag: 2, Payload: Depart{
			Time:      987654321,
			Intervals: []OwnedInterval{{Owner: 1, Idx: 2, IV: Interval{VC: []int32{0, 2, 0}}}},
			Fetched:   []NodePages{{Node: 0, Pages: []int32{7, 8}}, {Node: 2, Pages: []int32{7}}},
		}},
		{Kind: FHand, From: 0, To: 1, Tag: 2, Payload: Depart{
			Time:      123123123,
			Intervals: []OwnedInterval{{Owner: 2, Idx: 3, IV: Interval{VC: []int32{0, 0, 3}}}},
			Fetched: []NodePages{
				// Dense list: span mode (two runs beat seven raw words).
				{Node: 1, Pages: []int32{4, 5, 6, 7, 20, 21, 22}},
				{Node: 2, Pages: []int32{3, 30}},
			},
		}},
		{Kind: FMsg, From: 0, To: 1, Tag: 5, Payload: Arrival{
			VC:        []int32{4, 5, 6},
			Intervals: []OwnedInterval{{Owner: 0, Idx: 4, IV: Interval{Pages: []PageRef{{Page: 11}}, VC: []int32{4, 0, 0}}}},
			Needs:     []WSyncNeed{{Pages: []int32{11}, Applied: [][]int32{{1, 2, 3}}}},
			Fetched:   []int32{11, 12},
		}},
		{Kind: FMsg, From: 1, To: 0, Tag: 5, Payload: Arrival{
			VC: []int32{7, 8, 9},
			// Dense fetch set: one run, span mode.
			Fetched: []int32{40, 41, 42, 43, 44, 45, 46, 47},
		}},
		{Kind: FMsg, From: 2, To: 1, Tag: 102, Bytes: 4144, Time: 777, Payload: Update{
			Epoch: 6,
			Spans: []DiffSpan{
				{Page: 7, Creator: 2, From: 5, To: 6, Covers: []int32{1, 3, 6},
					Pages: [][]Run{
						{{Off: 4, Vals: []float64{2.5}}, {Off: 100, Vals: []float64{-4, 0.5}}},
						nil,
						{{Off: 0, Vals: []float64{9.75}}},
					}},
			},
		}},
		{Kind: FMsg, From: 1, To: 0, Tag: 6, Payload: SyncInfo{VC: []int32{9, 9, 9}}},
		{Kind: FMsg, From: 2, To: 1, Tag: 6, Payload: SyncInfo{
			VC:     []int32{3, 7, 2},
			Needs:  []WSyncNeed{{Pages: []int32{4}, Applied: [][]int32{{1, 0, 2}}}},
			Floors: []WSyncNeed{{Pages: []int32{8, 9}, Applied: [][]int32{{3, 1, 0}, {0, 1, 2}}}},
		}},
		{Kind: FStart, To: 3, Payload: Start{App: "jacobi", Set: "small", N: 8, Overhead: 1500, Verify: true}},
		{Kind: FDone, From: 3, Time: 42424242, Payload: Done{Checksum: 40399.25, Err: ""}},
		{Kind: FDone, From: 1, Payload: Done{Err: "rank 1 panicked: boom"}},
		{Kind: FCkpt, From: 2, Tag: 4, Payload: Checkpoint{
			Node: 2, Epoch: 4, Full: true,
			VC: []int32{3, 1, 4}, LastBar: []int32{3, 1, 3},
			Intervals: []OwnedInterval{
				{Owner: 2, Idx: 4, IV: Interval{Pages: []PageRef{{Page: 5, ExtLo: 0, ExtHi: 512}}, VC: []int32{3, 1, 4}}},
				{Owner: 0, Idx: 3, IV: Interval{Pages: []PageRef{{Page: 5}, {Page: 6, Whole: true}}, VC: []int32{3, 0, 2}}},
			},
			Frames: []PageFrame{
				{Page: 5, Prot: 2, Dirty: true, LastDiffed: 4, Applied: []int32{3, 0, 4},
					Words: []float64{1.5, 0, -2}, Twin: []float64{1.5, 0, -3}},
				{Page: 6, Prot: 0, LastDiffed: 0, Applied: []int32{2, 0, 0}, Words: []float64{7}},
			},
			Diffs: []Diff{
				{Page: 5, Creator: 2, From: 2, To: 4, Covers: []int32{3, 0, 4},
					Runs: []Run{{Off: 2, Vals: []float64{-2}}}},
				{Page: 6, Creator: 0, From: 0, To: 2, Whole: true, Covers: []int32{2, 0, 0},
					Runs: []Run{{Off: 0, Vals: []float64{7}}}},
			},
			Fetched: []int32{5, 6},
			Adapt:   []byte{1, 0, 9, 255},
			Owners:  []PageOwner{{Page: 5, Owner: 2}, {Page: 6, Owner: 0}},
		}},
		{Kind: FCkpt, From: 1, Tag: 5, Payload: Checkpoint{
			Node: 1, Epoch: 5,
			VC: []int32{4, 6, 4}, LastBar: []int32{4, 5, 4},
		}},
		{Kind: FJob, Tag: 17, Payload: JobSpec{
			App: "jacobi", Set: "small", System: "tmk", Procs: 4,
			Adapt: true, AdaptK: 3, AdaptM: 2, Verify: true,
		}},
		{Kind: FJob, To: 1, Tag: 9, Payload: JobSpec{
			ID: 42, App: "spmv", Set: "bound", Backend: "net", Procs: 8, Scale: true,
		}},
		{Kind: FJobAccept, Tag: 17, Payload: JobDecision{ID: 42}},
		{Kind: FJobReject, Tag: 18, Payload: JobDecision{Reason: "queue full"}},
		{Kind: FJobState, Tag: 17, Payload: JobProgress{ID: 42, State: JobRunning}},
		{Kind: FJobResult, From: 1, Tag: 17, Payload: JobResult{
			ID: 42, Checksum: 40399.25, VirtualNS: 123456789, WallNS: 987654,
			Msgs: 320, Bytes: 81920, Segv: 12, DiffFetches: 7,
			Barriers: 33, LockAcquires: 5,
		}},
		{Kind: FJobResult, From: 2, Tag: 3, Payload: JobResult{
			ID: 43, Err: "unknown app \"nope\"",
		}},
		{Kind: FPoolHello, From: 1, Tag: 8},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for i, f := range sampleFrames() {
		b, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatalf("frame %d: encode: %v", i, err)
		}
		got, n, err := ParseFrame(b)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if n != len(b) {
			t.Fatalf("frame %d: consumed %d of %d bytes", i, n, len(b))
		}
		if !reflect.DeepEqual(got, f) {
			t.Fatalf("frame %d: roundtrip mismatch:\n got %#v\nwant %#v", i, got, f)
		}
	}
}

func TestFrameStream(t *testing.T) {
	var buf bytes.Buffer
	frames := sampleFrames()
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: stream mismatch", i)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected EOF at stream end, got %v", err)
	}
}

func TestRawRouting(t *testing.T) {
	f := &Frame{Kind: FMsg, From: 5, To: 9, Tag: 1, Payload: Float64s{1}}
	b, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ReadRawFrame(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, b) {
		t.Fatal("ReadRawFrame did not return the exact frame bytes")
	}
	kind, from, to, bytes, err := RawFields(raw)
	if err != nil || kind != FMsg || from != 5 || to != 9 || bytes != 0 {
		t.Fatalf("RawFields = (%d, %d, %d, %d, %v)", kind, from, to, bytes, err)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	good, err := AppendFrame(nil, sampleFrames()[4])
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         {},
		"short header":  good[:3],
		"truncated":     good[:len(good)-2],
		"bad version":   append([]byte{good[0], good[1], good[2], good[3], 99}, good[5:]...),
		"bad kind":      append([]byte{good[0], good[1], good[2], good[3], good[4], 200}, good[6:]...),
		"huge length":   {0xff, 0xff, 0xff, 0xff},
		"trailing junk": append(appendLen(good), 1, 2, 3),
	}
	for name, b := range cases {
		if _, _, err := ParseFrame(b); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}

// appendLen rewrites the length prefix to claim three extra bytes exist
// inside the frame body.
func appendLen(good []byte) []byte {
	b := append([]byte(nil), good...)
	n := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	n += 3
	b[0], b[1], b[2], b[3] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
	return b
}

// TestCountOverflowRejected crafts a frame whose payload claims 2^61
// float64s: the element-size bound must reject it by division — a
// multiplied bound overflows and the decoder would panic in makeslice.
func TestCountOverflowRejected(t *testing.T) {
	e := &enc{}
	e.i32(0) // length, patched below
	e.u8(Version)
	e.u8(FMsg)
	e.i32(1) // from
	e.i32(2) // to
	e.i32(3) // tag
	e.i32(4) // bytes
	e.i64(5) // time
	e.u8(pFloat64s)
	e.b = append(e.b, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20) // uvarint 2^61
	body := len(e.b) - 4
	e.b[0], e.b[1], e.b[2], e.b[3] = byte(body), byte(body>>8), byte(body>>16), byte(body>>24)
	if _, _, err := ParseFrame(e.b); err == nil {
		t.Fatal("decoder accepted a 2^61-element count")
	}
}

func TestUnencodablePayload(t *testing.T) {
	if _, err := AppendFrame(nil, &Frame{Kind: FMsg, Payload: struct{ X int }{1}}); err == nil {
		t.Fatal("encode accepted an unencodable payload")
	}
}
