package wire

import (
	"bytes"
	"io"
	"testing"
)

// aliasFrames builds a deterministic set of frames whose payloads draw on
// every decode-arena slice class (int32, float64, PageRef, Run, Diff,
// OwnedInterval, and the [][]int32 rows): diff replies, grants with
// piggybacked spans, sync infos with needs and floors, and diff requests.
func aliasFrames() []*Frame {
	mkDiff := func(page, seed int32) Diff {
		d := Diff{
			Page: page, Creator: seed % 4, From: seed, To: seed + 1,
			Covers: []int32{seed, seed + 2, seed + 5},
		}
		for off := int32(0); off < 64; off += 16 {
			d.Runs = append(d.Runs, Run{Off: off + seed%8, Vals: []float64{float64(seed), float64(off), 3.5}})
		}
		return d
	}
	var frames []*Frame
	for seed := int32(0); seed < 8; seed++ {
		frames = append(frames,
			&Frame{Kind: FReply, From: seed % 4, To: (seed + 1) % 4, Tag: 100 + seed, Bytes: 512, Time: int64(seed) * 1000,
				Payload: DiffReply{Diffs: []Diff{mkDiff(3+seed, seed), mkDiff(11+seed, seed+1)}}},
			&Frame{Kind: FReq, From: seed % 4, To: (seed + 2) % 4, Tag: 200 + seed, Bytes: 24,
				Payload: DiffRequest{Req: seed % 4, Pages: []int32{seed, seed + 7},
					Applied: [][]int32{{seed, 1, 2, 3}, {0, seed, 0, 1}}}},
			&Frame{Kind: FMsg, From: seed % 4, To: (seed + 3) % 4, Tag: 7, Bytes: 96, Time: int64(seed),
				Payload: SyncInfo{VC: []int32{seed, seed + 1, 0, 9},
					Needs:  []WSyncNeed{{Pages: []int32{seed + 2}, Applied: [][]int32{{1, seed, 0, 0}}}},
					Floors: []WSyncNeed{{Pages: []int32{seed, seed + 1}, Applied: [][]int32{{seed, 0, 1, 2}, {0, 0, seed, 4}}}}}},
			&Frame{Kind: FHand, From: (seed + 1) % 4, To: seed % 4, Tag: 1,
				Payload: Grant{Bytes: 300 + seed,
					Intervals: []OwnedInterval{{Owner: seed % 4, Idx: seed + 1,
						IV: Interval{Pages: []PageRef{{Page: seed}, {Page: seed + 1, Whole: seed%2 == 0}},
							VC: []int32{seed, 2, 3, 4}}}},
					Served: []Diff{mkDiff(20+seed, seed+2)},
					Pushed: CoalesceDiffs([]Diff{mkDiff(30+seed, seed+3), mkDiff(31+seed, seed+3)})}},
		)
	}
	return frames
}

// TestFrameReaderAliasing pins the decode arena's ownership contract:
// frames decoded by one FrameReader own disjoint storage, so a payload
// held across later ReadInto calls — which reuse the reader's Frame,
// arena tails, and (on the encode side) the pooled buffers — is never
// clobbered. The writer runs concurrently over a pipe and encodes through
// GetBuf/PutBuf, so under -race this also checks the pool and pipe
// happens-before edges. Every held frame must re-encode byte-identical to
// what was sent.
func TestFrameReaderAliasing(t *testing.T) {
	frames := aliasFrames()
	const rounds = 50
	var want [][]byte
	for r := 0; r < rounds; r++ {
		for _, f := range frames {
			enc, err := AppendFrame(nil, f)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, enc)
		}
	}
	pr, pw := io.Pipe()
	writeErr := make(chan error, 1)
	go func() {
		defer pw.Close()
		for r := 0; r < rounds; r++ {
			for _, f := range frames {
				buf := GetBuf()
				enc, err := AppendFrame(buf[:0], f)
				if err != nil {
					writeErr <- err
					return
				}
				if _, err := pw.Write(enc); err != nil {
					writeErr <- err
					return
				}
				PutBuf(enc)
			}
		}
		writeErr <- nil
	}()

	fr := NewFrameReader(pr)
	var f Frame
	held := make([]Frame, 0, len(want))
	for range want {
		if err := fr.ReadInto(&f); err != nil {
			t.Fatal(err)
		}
		held = append(held, f) // shallow copy: payload slices stay in arena storage
	}
	if err := <-writeErr; err != nil {
		t.Fatal(err)
	}
	for i := range held {
		enc, err := AppendFrame(nil, &held[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, want[i]) {
			t.Fatalf("held frame %d re-encodes differently after later decodes reused the arena", i)
		}
	}
}
