package wire

import (
	"reflect"
	"testing"
)

// TestSinglePageSpanRoundTrip pins the compatibility contract of the
// version-4 section encoding: a single-page section coalesces into a
// one-page span and expands back to exactly the version-3 per-page Diff
// it came from — same header, same coverage, same runs — and its
// accounted size is the version-3 size (16-byte header + runs).
func TestSinglePageSpanRoundTrip(t *testing.T) {
	d := Diff{
		Page: 42, Creator: 3, From: 7, To: 9, Covers: []int32{1, 0, 9, 2},
		Runs: []Run{{Off: 16, Vals: []float64{1, 2, 3}}, {Off: 200, Vals: []float64{-4}}},
	}
	spans := CoalesceDiffs([]Diff{d})
	if len(spans) != 1 || len(spans[0].Pages) != 1 {
		t.Fatalf("single diff coalesced to %+v", spans)
	}
	back := ExpandSpans(spans)
	if len(back) != 1 || !reflect.DeepEqual(back[0], d) {
		t.Fatalf("round trip: got %+v, want %+v", back, d)
	}
	// Accounted size: 16-byte header + one word per run header + data words.
	if got, want := spans[0].WireBytes(), 16+8*(1+3)+8*(1+1); got != want {
		t.Errorf("single-page span WireBytes = %d, want %d", got, want)
	}
}

// TestCoalesceDiffsSpans checks the section-coalescing rules: adjacent
// pages with identical headers merge; a page gap, a different creator, a
// different interval range, or a different coverage vector all split; and
// per-page chains coalesce link-wise (one span per chain link).
func TestCoalesceDiffsSpans(t *testing.T) {
	covA := []int32{4, 0}
	covB := []int32{0, 7}
	mk := func(pg, creator, from, to int32, cov []int32) Diff {
		return Diff{Page: pg, Creator: creator, From: from, To: to, Covers: cov,
			Runs: []Run{{Off: 0, Vals: []float64{float64(pg)}}}}
	}
	ds := []Diff{
		// Chain link 1 on pages 3,4,5 (creator 0) — one span.
		mk(3, 0, 1, 2, covA), mk(3, 0, 2, 4, covA),
		mk(4, 0, 1, 2, covA), mk(4, 0, 2, 4, covA),
		mk(5, 0, 1, 2, covA), mk(5, 0, 2, 4, covA),
		// Page 6: different creator — must not join creator 0's spans.
		mk(6, 1, 1, 2, covB),
		// Page 8: gap after 6 — new span.
		mk(8, 1, 1, 2, covB),
		// Page 9: same creator/range as 8 but different coverage — split.
		mk(9, 1, 1, 2, covA),
	}
	spans := CoalesceDiffs(ds)
	type key struct {
		pg, n   int32
		creator int32
		from    int32
	}
	var got []key
	for _, s := range spans {
		got = append(got, key{s.Page, int32(len(s.Pages)), s.Creator, s.From})
	}
	want := []key{
		{3, 3, 0, 1}, {3, 3, 0, 2}, // the two chain links, 3 pages each
		{6, 1, 1, 1}, {8, 1, 1, 1}, {9, 1, 1, 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("spans = %+v, want %+v", got, want)
	}
	// Lossless: expansion yields the same diff set.
	back := ExpandSpans(spans)
	if len(back) != len(ds) {
		t.Fatalf("expanded %d diffs, want %d", len(back), len(ds))
	}
	seen := map[string]bool{}
	for _, d := range ds {
		seen[diffKey(d)] = true
	}
	for _, d := range back {
		if !seen[diffKey(d)] {
			t.Fatalf("expansion produced unexpected diff %+v", d)
		}
	}
	// Header economy: the 3-page spans cost one header plus page-map
	// entries, less than three separate version-3 headers.
	if got, want := spans[0].WireBytes(), 16+2*4+3*8*2; got != want {
		t.Errorf("3-page span WireBytes = %d, want %d", got, want)
	}
}

func diffKey(d Diff) string {
	b, err := AppendFrame(nil, &Frame{Kind: FMsg, Payload: DiffReply{Diffs: []Diff{d}}})
	if err != nil {
		panic(err)
	}
	return string(b)
}
