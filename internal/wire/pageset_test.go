package wire

import (
	"reflect"
	"testing"
)

// pageSetCases spans the regimes the raw-or-span heuristic switches
// between: empty, singleton, sparse isolated pages (raw mode), one dense
// block (span mode), several adjacent runs (span mode), and a mix where
// raw narrowly wins.
var pageSetCases = [][]int32{
	nil,
	{0},
	{5},
	{3, 9, 40},                          // sparse: raw
	{7, 8},                              // one run of two: tie, raw
	{7, 8, 9},                           // one run of three: spans
	{0, 1, 2, 3, 4, 5, 6, 7},            // dense block: spans
	{4, 5, 6, 7, 20, 21, 22},            // two runs: spans
	{1, 3, 5, 7, 9, 11},                 // alternating: raw
	{10, 11, 30, 41, 52, 63},            // one short run + isolated: raw
	{100, 101, 102, 103, 200, 300, 301}, // mixed: spans
}

func encodePageSet(t *testing.T, mode byte, pages []int32) []byte {
	t.Helper()
	e := &enc{}
	switch mode {
	case 0:
		e.u8(0)
		e.i32s(pages)
	case 1:
		e.u8(1)
		spans := 0
		for i, p := range pages {
			if i == 0 || p != pages[i-1]+1 {
				spans++
			}
		}
		e.count(spans)
		for i := 0; i < len(pages); {
			j := i + 1
			for j < len(pages) && pages[j] == pages[j-1]+1 {
				j++
			}
			e.i32(pages[i])
			e.i32(pages[i] + int32(j-i))
			i = j
		}
	}
	return e.b
}

func decodePageSet(t *testing.T, b []byte) []int32 {
	t.Helper()
	var ar decArena
	d := dec{b: b, ar: &ar}
	out := d.pageSet()
	if d.err != nil {
		t.Fatalf("pageSet decode failed: %v", d.err)
	}
	if len(d.b) != 0 {
		t.Fatalf("pageSet left %d trailing bytes", len(d.b))
	}
	return out
}

// TestPageSetModesDecodeIdentically is the compression-transparency
// property: for every page list, the raw encoding and the span encoding
// decode to the same list, and the encoder's heuristic choice also
// round-trips to the input. Decoders therefore cannot tell which mode a
// peer chose — the heuristic is free to change without a version bump.
func TestPageSetModesDecodeIdentically(t *testing.T) {
	for _, pages := range pageSetCases {
		raw := decodePageSet(t, encodePageSet(t, 0, pages))
		spanned := decodePageSet(t, encodePageSet(t, 1, pages))
		if !reflect.DeepEqual(raw, spanned) {
			t.Errorf("%v: raw decode %v != span decode %v", pages, raw, spanned)
		}
		e := &enc{}
		e.pageSet(pages)
		chosen := decodePageSet(t, e.b)
		if len(pages) == 0 {
			if chosen != nil {
				t.Errorf("empty list decoded as %v, want nil", chosen)
			}
			continue
		}
		if !reflect.DeepEqual(chosen, pages) {
			t.Errorf("%v: heuristic encoding decoded as %v", pages, chosen)
		}
	}
}

// TestPageSetHeuristicMatchesAccounting pins that the encoder's mode
// choice and FetchedBytes price the same structure: the accounted size is
// the 8-byte header plus exactly the cheaper payload, and the chosen
// encoding is never larger than the alternative.
func TestPageSetHeuristicMatchesAccounting(t *testing.T) {
	for _, pages := range pageSetCases {
		raw, span := 4*len(pages), 8*countRuns(pages)
		want := 8 + raw
		if span < raw {
			want = 8 + span
		}
		if got := FetchedBytes(pages); got != want {
			t.Errorf("%v: FetchedBytes = %d, want %d", pages, got, want)
		}
		e := &enc{}
		e.pageSet(pages)
		alt := len(encodePageSet(t, 0, pages))
		if s := encodePageSet(t, 1, pages); len(s) < alt {
			alt = len(s)
		}
		if len(e.b) > alt {
			t.Errorf("%v: heuristic chose %d bytes, cheaper mode has %d", pages, len(e.b), alt)
		}
	}
}

// TestPageSetRejectsMalformedSpans pins the decoder's span validation:
// empty and inverted spans, unknown modes, and spans whose expansion
// would exceed the frame bound must all fail cleanly.
func TestPageSetRejectsMalformedSpans(t *testing.T) {
	cases := map[string]func(e *enc){
		"empty span":    func(e *enc) { e.u8(1); e.count(1); e.i32(5); e.i32(5) },
		"inverted span": func(e *enc) { e.u8(1); e.count(1); e.i32(9); e.i32(3) },
		"unknown mode":  func(e *enc) { e.u8(7); e.count(0) },
		"huge expansion": func(e *enc) {
			e.u8(1)
			e.count(2)
			e.i32(0)
			e.i32(1 << 30)
			e.i32(1 << 30)
			e.i32(1<<30 + 1<<29)
		},
	}
	for name, build := range cases {
		e := &enc{}
		build(e)
		var ar decArena
		d := dec{b: e.b, ar: &ar}
		d.pageSet()
		if d.err == nil {
			t.Errorf("%s: decoder accepted malformed page set", name)
		}
	}
}
