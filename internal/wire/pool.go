package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Buffer pooling for the hot wire path. Every frame a socket transport
// moves needs byte storage twice — once to encode it at the sender, once
// to read its raw bytes off a connection — and allocating that storage
// per frame dominated the allocation profile of the net backend's
// steady-state barrier path. The pool amortizes both: encoders append
// into a pooled buffer and the transport returns it after the write
// syscall; readers either own a pooled buffer per frame (when the raw
// bytes outlive the read call, e.g. queued for routing) or reuse one
// buffer across frames (FrameReader, safe because decoding copies).
//
// The codec itself is untouched: pooling changes where bytes live, never
// what they are — encodings stay canonical and byte-identical
// (FuzzWireRoundTrip).

// bufMu guards bufFree, a freelist of frame-sized byte buffers. A plain
// slice of headers beats sync.Pool here: Put into a sync.Pool must box
// the slice header behind a pointer, which itself allocates — one heap
// object per recycled frame, exactly what the pool exists to avoid. The
// freelist push/pop moves only headers within a retained backing array,
// so the steady state allocates nothing in either direction. The list is
// capped so an exceptional burst (a huge barrier flurry) does not pin its
// high-water mark of buffers forever.
var (
	bufMu   sync.Mutex
	bufFree [][]byte
)

// maxPooledBufs bounds the freelist; beyond it PutBuf drops the buffer
// for the garbage collector.
const maxPooledBufs = 1024

// GetBuf returns an empty buffer with pooled capacity. Append to it
// (AppendFrame, ReadRawFrameInto) and return the result with PutBuf when
// the bytes are dead.
func GetBuf() []byte {
	bufMu.Lock()
	if n := len(bufFree); n > 0 {
		b := bufFree[n-1]
		bufFree[n-1] = nil
		bufFree = bufFree[:n-1]
		bufMu.Unlock()
		return b
	}
	bufMu.Unlock()
	return make([]byte, 0, 4096)
}

// PutBuf recycles a buffer obtained from GetBuf (or grown from one).
// The caller must not touch b afterwards.
func PutBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	bufMu.Lock()
	if len(bufFree) < maxPooledBufs {
		bufFree = append(bufFree, b[:0])
	}
	bufMu.Unlock()
}

// ReadRawFrameInto reads one length-prefixed frame from r without
// decoding it, appending onto buf (which may be nil) and returning the
// full encoded bytes, length prefix included. The result aliases buf's
// storage when capacity suffices — callers own the returned slice and
// may recycle it with PutBuf.
func ReadRawFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	buf = append(buf[:0], 0, 0, 0, 0)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	body := binary.LittleEndian.Uint32(buf)
	if body > MaxFrame {
		return nil, fmt.Errorf("wire: frame length %d exceeds MaxFrame", body)
	}
	if cap(buf) < 4+int(body) {
		grown := make([]byte, 4+int(body))
		copy(grown, buf)
		buf = grown
	} else {
		buf = buf[:4+body]
	}
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("wire: reading frame body: %w", err)
	}
	return buf, nil
}

// FrameReader reads frames from one stream reusing a single raw buffer
// across calls: the steady-state read path allocates nothing for frame
// storage. Reuse is safe for decoded frames — the decoder copies every
// slice, so a *Frame fully owns its storage and stays valid across any
// number of later reads (TestFrameReaderAliasing) — but the raw bytes
// returned by ReadRaw are valid only until the next call on the reader.
type FrameReader struct {
	r   io.Reader
	buf []byte
	ar  decArena // persists across frames, amortizing chunk refills
}

// NewFrameReader returns a FrameReader over r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r, buf: GetBuf()}
}

// ReadRaw reads one frame and returns its raw encoded bytes. The slice
// aliases the reader's internal buffer: it is invalidated by the next
// ReadRaw or Read call.
func (fr *FrameReader) ReadRaw() ([]byte, error) {
	raw, err := ReadRawFrameInto(fr.r, fr.buf)
	if err != nil {
		return nil, err
	}
	fr.buf = raw
	return raw, nil
}

// Read reads and decodes one frame. The returned frame owns all its
// storage (decoding copies), so it remains valid indefinitely. On a
// cleanly closed stream it returns io.EOF.
func (fr *FrameReader) Read() (*Frame, error) {
	f := new(Frame)
	if err := fr.ReadInto(f); err != nil {
		return nil, err
	}
	return f, nil
}

// ReadInto reads and decodes one frame into *f, reusing the struct. The
// decoded contents own their storage (slices come from arena chunks that
// are never handed out twice), so anything extracted from a previous
// decode stays valid; only *f itself is overwritten. On a cleanly closed
// stream it returns io.EOF.
func (fr *FrameReader) ReadInto(f *Frame) error {
	raw, err := fr.ReadRaw()
	if err != nil {
		return err
	}
	_, err = parseFrameInto(f, raw, &fr.ar)
	return err
}

// PatchRawTime rewrites the virtual-time field of an encoded frame in
// place (broadcasts encode a shared payload once and restamp the header
// per recipient, whose arrival times differ by the serialized send
// overheads).
func PatchRawTime(raw []byte, t int64) {
	// layout: len(4) version(1) kind(1) from(4) to(4) tag(4) bytes(4) time(8)
	binary.LittleEndian.PutUint64(raw[22:], uint64(t))
}
