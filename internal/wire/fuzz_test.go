package wire

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWireRoundTrip feeds arbitrary bytes to the frame decoder. The
// properties enforced:
//
//   - decoding never panics and never allocates beyond the input length
//     (the count guards),
//   - any frame that decodes re-encodes, and
//   - decode∘encode is the identity on decoded frames (the decoded form
//     is canonical: non-minimal varints in the input normalize away).
//
// The seed corpus under testdata/fuzz covers every frame kind and payload
// type (regenerate with -write-corpus after a format change).
func FuzzWireRoundTrip(f *testing.F) {
	for _, fr := range sampleFrames() {
		b, err := AppendFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := ParseFrame(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("decoder consumed %d of %d bytes", n, len(data))
		}
		enc, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		back, m, err := ParseFrame(enc)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if m != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", m, len(enc))
		}
		// Compare via the canonical encoding: bit-exact, and NaN-proof
		// where reflect.DeepEqual is not.
		enc2, err := AppendFrame(nil, back)
		if err != nil {
			t.Fatalf("re-decoded frame does not encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("decode/encode/decode not canonical:\n first %x\nsecond %x", enc, enc2)
		}
	})
}

var writeCorpus = flag.Bool("write-corpus", false, "regenerate the checked-in fuzz seed corpus")

// TestWriteFuzzCorpus regenerates testdata/fuzz/FuzzWireRoundTrip from
// sampleFrames when run with -write-corpus (after a wire-format change).
func TestWriteFuzzCorpus(t *testing.T) {
	if !*writeCorpus {
		t.Skip("pass -write-corpus to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWireRoundTrip")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	old, _ := filepath.Glob(filepath.Join(dir, "seed-*"))
	for _, f := range old {
		os.Remove(f)
	}
	for i, fr := range sampleFrames() {
		b, err := AppendFrame(nil, fr)
		if err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%02d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
