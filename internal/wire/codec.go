package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrTruncated reports input that ended inside a frame or field.
var ErrTruncated = errors.New("wire: truncated input")

// enc is an append-based encoder.
type enc struct{ b []byte }

func (e *enc) u8(v byte)     { e.b = append(e.b, v) }
func (e *enc) bool(v bool)   { e.b = append(e.b, b2u(v)) }
func (e *enc) i32(v int32)   { e.b = binary.LittleEndian.AppendUint32(e.b, uint32(v)) }
func (e *enc) i64(v int64)   { e.b = binary.LittleEndian.AppendUint64(e.b, uint64(v)) }
func (e *enc) f64(v float64) { e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v)) }
func (e *enc) count(n int)   { e.b = binary.AppendUvarint(e.b, uint64(n)) }

func (e *enc) i32s(vs []int32) {
	e.count(len(vs))
	for _, v := range vs {
		e.i32(v)
	}
}

func (e *enc) f64s(vs []float64) {
	e.count(len(vs))
	for _, v := range vs {
		e.f64(v)
	}
}

// pageSet encodes a sorted page list in the version-7 raw-or-span form:
// a one-byte mode — 0 for the raw i32 list, 1 for run-length spans (a
// count of runs, then (lo, hi) half-open i32 pairs) — chosen per list by
// the same size heuristic FetchedBytes prices with, so sparse sets stay
// one word per page and dense sets collapse to two words per run. The
// run count pass is allocation-free; mode 1 is only chosen for strictly
// ascending run structure, which sorted deduplicated input (the protocol
// invariant) always has.
func (e *enc) pageSet(vs []int32) {
	runs := countRuns(vs)
	if 2*runs >= len(vs) {
		e.u8(0)
		e.i32s(vs)
		return
	}
	e.u8(1)
	e.count(runs)
	for i := 0; i < len(vs); {
		j := i + 1
		for j < len(vs) && vs[j] == vs[j-1]+1 {
			j++
		}
		e.i32(vs[i])
		e.i32(vs[i] + int32(j-i))
		i = j
	}
}

func (e *enc) rows(vs [][]int32) {
	e.count(len(vs))
	for _, row := range vs {
		e.i32s(row)
	}
}

func (e *enc) str(s string) {
	e.count(len(s))
	e.b = append(e.b, s...)
}

func (e *enc) bytes(b []byte) {
	e.count(len(b))
	e.b = append(e.b, b...)
}

func b2u(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// decArena is the chunked allocation state behind a decoder. Composite
// decode results (vector times, covers rows, run lists, diff lists, page
// refs) are carved out of per-type chunks rather than allocated one make
// per field: a departure or diff-reply frame carries dozens of tiny
// slices, and the arena collapses them into a handful of allocations.
// Every handed-out slice is capacity-capped (three-index), so each
// decoded frame still fully owns disjoint storage — nothing aliases, and
// appending to a decoded slice cannot clobber a neighbour. An arena may
// therefore also persist across frames (FrameReader holds one), which
// amortizes chunk refills over an entire connection.
type decArena struct {
	i32 []int32
	f64 []float64
	ref []PageRef
	run []Run
	df  []Diff
	iv  []OwnedInterval
	row [][]int32
}

// dec is a bounds-checked decoder over one frame body, drawing slice
// storage from ar.
type dec struct {
	b   []byte
	err error
	ar  *decArena
}

// arenaMin is the chunk size (in elements) of the decode arenas: small
// enough that a long-retained slice (a learned interval's vector time)
// pins little dead space, large enough to absorb a whole payload's worth
// of short slices in one allocation.
const arenaMin = 128

// arenaAlloc carves an owned n-element slice off the chunk *a, refilling
// the chunk when it runs dry.
func arenaAlloc[T any](a *[]T, n int) []T {
	if n > len(*a) {
		c := n
		if c < arenaMin {
			c = arenaMin
		}
		*a = make([]T, c)
	}
	out := (*a)[:n:n]
	*a = (*a)[n:]
	return out
}

func (d *dec) allocI32(n int) []int32   { return arenaAlloc(&d.ar.i32, n) }
func (d *dec) allocF64(n int) []float64 { return arenaAlloc(&d.ar.f64, n) }
func (d *dec) allocRef(n int) []PageRef { return arenaAlloc(&d.ar.ref, n) }

func (d *dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.b) {
		d.fail(ErrTruncated)
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *dec) u8() byte {
	if b := d.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (d *dec) bool() bool { return d.u8() != 0 }

func (d *dec) i32() int32 {
	if b := d.take(4); b != nil {
		return int32(binary.LittleEndian.Uint32(b))
	}
	return 0
}

func (d *dec) i64() int64 {
	if b := d.take(8); b != nil {
		return int64(binary.LittleEndian.Uint64(b))
	}
	return 0
}

func (d *dec) f64() float64 {
	if b := d.take(8); b != nil {
		return math.Float64frombits(binary.LittleEndian.Uint64(b))
	}
	return 0
}

// count reads an element count and bounds it by the bytes remaining, given
// each element occupies at least min bytes, so corrupt counts cannot force
// huge allocations. The bound is computed by division: multiplying the
// attacker-controlled count would overflow and defeat the guard.
func (d *dec) count(min int) int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail(ErrTruncated)
		return 0
	}
	d.b = d.b[n:]
	if v > uint64(len(d.b))/uint64(min) {
		d.fail(fmt.Errorf("wire: count %d exceeds remaining input", v))
		return 0
	}
	return int(v)
}

func (d *dec) i32s() []int32 {
	n := d.count(4)
	if n == 0 {
		return nil
	}
	out := d.allocI32(n)
	for i := range out {
		out[i] = d.i32()
	}
	return out
}

func (d *dec) f64s() []float64 {
	n := d.count(8)
	if n == 0 {
		return nil
	}
	out := d.allocF64(n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

// pageSet decodes the raw-or-span page-list form of enc.pageSet. Mode-1
// spans are validated (hi > lo) and their total expansion is bounded
// before any allocation, so a corrupt span list cannot force a huge
// decoded slice; expansion lands in the arena like every other i32
// field.
func (d *dec) pageSet() []int32 {
	switch mode := d.u8(); mode {
	case 0:
		return d.i32s()
	case 1:
		n := d.count(8)
		if n == 0 {
			return nil
		}
		spans := d.take(8 * n)
		if spans == nil {
			return nil
		}
		total := 0
		for i := 0; i < n; i++ {
			lo := int32(binary.LittleEndian.Uint32(spans[8*i:]))
			hi := int32(binary.LittleEndian.Uint32(spans[8*i+4:]))
			if hi <= lo {
				d.fail(fmt.Errorf("wire: page span [%d, %d) is empty or inverted", lo, hi))
				return nil
			}
			total += int(hi - lo)
			if total > MaxFrame/4 {
				d.fail(fmt.Errorf("wire: page spans expand to %d pages", total))
				return nil
			}
		}
		out := d.allocI32(total)[:0]
		for i := 0; i < n; i++ {
			lo := int32(binary.LittleEndian.Uint32(spans[8*i:]))
			hi := int32(binary.LittleEndian.Uint32(spans[8*i+4:]))
			for p := lo; p < hi; p++ {
				out = append(out, p)
			}
		}
		return out
	default:
		d.fail(fmt.Errorf("wire: unknown page-set mode %d", mode))
		return nil
	}
}

func (d *dec) rows() [][]int32 {
	n := d.count(1)
	if n == 0 {
		return nil
	}
	out := arenaAlloc(&d.ar.row, n)
	for i := range out {
		out[i] = d.i32s()
	}
	return out
}

func (d *dec) str() string {
	n := d.count(1)
	if n == 0 {
		return ""
	}
	return string(d.take(n))
}

func (d *dec) bytesv() []byte {
	n := d.count(1)
	if n == 0 {
		return nil
	}
	return append([]byte(nil), d.take(n)...)
}

// ---- payload codec ----

func (e *enc) payload(p any) error {
	switch v := p.(type) {
	case nil:
		e.u8(pNil)
	case Float64s:
		e.u8(pFloat64s)
		e.f64s(v)
	case []float64:
		// The mp layer's native payload type; decodes as Float64s.
		e.u8(pFloat64s)
		e.f64s(v)
	case DiffRequest:
		e.u8(pDiffRequest)
		e.i32(v.Req)
		e.i32s(v.Pages)
		e.rows(v.Applied)
		e.bool(v.Direct)
	case DiffReply:
		e.u8(pDiffReply)
		e.diffs(v.Diffs)
		e.pageOwners(v.Redirects)
	case Grant:
		e.u8(pGrant)
		e.intervals(v.Intervals)
		e.diffs(v.Served)
		e.spans(v.Pushed)
		e.i32(v.Bytes)
	case Arrival:
		e.u8(pArrival)
		e.i32s(v.VC)
		e.intervals(v.Intervals)
		e.needs(v.Needs)
		e.pageSet(v.Fetched)
	case Depart:
		e.u8(pDepart)
		e.i64(v.Time)
		e.intervals(v.Intervals)
		e.diffs(v.Served)
		e.nodePages(v.Fetched)
	case Push:
		e.u8(pPush)
		e.i32(v.Ivl)
		e.count(len(v.Chunks))
		for _, ch := range v.Chunks {
			e.i32(ch.Lo)
			e.f64s(ch.Vals)
		}
	case SyncInfo:
		e.u8(pSyncInfo)
		e.i32s(v.VC)
		e.needs(v.Needs)
		e.needs(v.Floors)
	case Start:
		e.u8(pStart)
		e.str(v.App)
		e.str(v.Set)
		e.i32(v.N)
		e.i64(v.Overhead)
		e.bool(v.Verify)
	case Done:
		e.u8(pDone)
		e.f64(v.Checksum)
		e.str(v.Err)
	case Update:
		e.u8(pUpdate)
		e.i32(v.Epoch)
		e.spans(v.Spans)
	case Checkpoint:
		e.u8(pCheckpoint)
		e.i32(v.Node)
		e.i32(v.Epoch)
		e.bool(v.Full)
		e.i32s(v.VC)
		e.i32s(v.LastBar)
		e.intervals(v.Intervals)
		e.count(len(v.Frames))
		for _, fr := range v.Frames {
			e.i32(fr.Page)
			e.u8(fr.Prot)
			e.bool(fr.Dirty)
			e.i32(fr.LastDiffed)
			e.i32s(fr.Applied)
			e.f64s(fr.Words)
			e.f64s(fr.Twin)
		}
		e.diffs(v.Diffs)
		e.pageSet(v.Fetched)
		e.bytes(v.Adapt)
		e.pageOwners(v.Owners)
	case JobSpec:
		e.u8(pJobSpec)
		e.i64(v.ID)
		e.str(v.App)
		e.str(v.Set)
		e.str(v.System)
		e.str(v.Backend)
		e.i32(v.Procs)
		e.bool(v.Adapt)
		e.i32(v.AdaptK)
		e.i32(v.AdaptM)
		e.bool(v.Scale)
		e.bool(v.Verify)
	case JobDecision:
		e.u8(pJobDecision)
		e.i64(v.ID)
		e.str(v.Reason)
	case JobProgress:
		e.u8(pJobProgress)
		e.i64(v.ID)
		e.u8(v.State)
	case JobResult:
		e.u8(pJobResult)
		e.i64(v.ID)
		e.f64(v.Checksum)
		e.i64(v.VirtualNS)
		e.i64(v.WallNS)
		e.i64(v.Msgs)
		e.i64(v.Bytes)
		e.i64(v.Segv)
		e.i64(v.DiffFetches)
		e.i64(v.Barriers)
		e.i64(v.LockAcquires)
		e.str(v.Err)
	default:
		return fmt.Errorf("wire: unencodable payload type %T", p)
	}
	return nil
}

func (e *enc) runs(rs []Run) {
	e.count(len(rs))
	for _, r := range rs {
		e.i32(r.Off)
		e.f64s(r.Vals)
	}
}

func (e *enc) spans(ss []DiffSpan) {
	e.count(len(ss))
	for _, s := range ss {
		e.i32(s.Page)
		e.i32(s.Creator)
		e.i32(s.From)
		e.i32(s.To)
		e.bool(s.Whole)
		e.i32s(s.Covers)
		e.count(len(s.Pages))
		for _, rs := range s.Pages {
			e.runs(rs)
		}
	}
}

func (e *enc) diffs(ds []Diff) {
	e.count(len(ds))
	for _, d := range ds {
		e.i32(d.Page)
		e.i32(d.Creator)
		e.i32(d.From)
		e.i32(d.To)
		e.bool(d.Whole)
		e.i32s(d.Covers)
		e.runs(d.Runs)
	}
}

func (e *enc) intervals(ivs []OwnedInterval) {
	e.count(len(ivs))
	for _, oi := range ivs {
		e.i32(oi.Owner)
		e.i32(oi.Idx)
		e.count(len(oi.IV.Pages))
		for _, pr := range oi.IV.Pages {
			e.i32(pr.Page)
			e.bool(pr.Whole)
			e.i32(pr.ExtLo)
			e.i32(pr.ExtHi)
		}
		e.i32s(oi.IV.VC)
		e.bool(oi.IV.Split)
	}
}

func (e *enc) nodePages(ns []NodePages) {
	e.count(len(ns))
	for _, n := range ns {
		e.i32(n.Node)
		e.pageSet(n.Pages)
	}
}

func (e *enc) pageOwners(ps []PageOwner) {
	e.count(len(ps))
	for _, p := range ps {
		e.i32(p.Page)
		e.i32(p.Owner)
	}
}

func (e *enc) needs(ns []WSyncNeed) {
	e.count(len(ns))
	for _, n := range ns {
		e.i32s(n.Pages)
		e.rows(n.Applied)
	}
}

func (d *dec) payload() any {
	switch k := d.u8(); k {
	case pNil:
		return nil
	case pFloat64s:
		return Float64s(d.f64s())
	case pDiffRequest:
		return DiffRequest{Req: d.i32(), Pages: d.i32s(), Applied: d.rows(), Direct: d.bool()}
	case pDiffReply:
		return DiffReply{Diffs: d.diffs(), Redirects: d.pageOwners()}
	case pGrant:
		return Grant{Intervals: d.intervals(), Served: d.diffs(), Pushed: d.spans(), Bytes: d.i32()}
	case pArrival:
		return Arrival{VC: d.i32s(), Intervals: d.intervals(), Needs: d.needs(), Fetched: d.pageSet()}
	case pDepart:
		return Depart{Time: d.i64(), Intervals: d.intervals(), Served: d.diffs(), Fetched: d.nodePages()}
	case pPush:
		p := Push{Ivl: d.i32()}
		n := d.count(5)
		for i := 0; i < n; i++ {
			p.Chunks = append(p.Chunks, Chunk{Lo: d.i32(), Vals: d.f64s()})
		}
		return p
	case pSyncInfo:
		return SyncInfo{VC: d.i32s(), Needs: d.needs(), Floors: d.needs()}
	case pStart:
		return Start{App: d.str(), Set: d.str(), N: d.i32(), Overhead: d.i64(), Verify: d.bool()}
	case pDone:
		return Done{Checksum: d.f64(), Err: d.str()}
	case pUpdate:
		return Update{Epoch: d.i32(), Spans: d.spans()}
	case pCheckpoint:
		ck := Checkpoint{
			Node: d.i32(), Epoch: d.i32(), Full: d.bool(),
			VC: d.i32s(), LastBar: d.i32s(),
			Intervals: d.intervals(),
		}
		n := d.count(12)
		for i := 0; i < n; i++ {
			fr := PageFrame{
				Page: d.i32(), Prot: d.u8(), Dirty: d.bool(),
				LastDiffed: d.i32(), Applied: d.i32s(), Words: d.f64s(),
				Twin: d.f64s(),
			}
			ck.Frames = append(ck.Frames, fr)
			if d.err != nil {
				return ck
			}
		}
		ck.Diffs = d.diffs()
		ck.Fetched = d.pageSet()
		ck.Adapt = d.bytesv()
		ck.Owners = d.pageOwners()
		return ck
	case pJobSpec:
		return JobSpec{
			ID: d.i64(), App: d.str(), Set: d.str(), System: d.str(),
			Backend: d.str(), Procs: d.i32(),
			Adapt: d.bool(), AdaptK: d.i32(), AdaptM: d.i32(),
			Scale: d.bool(), Verify: d.bool(),
		}
	case pJobDecision:
		return JobDecision{ID: d.i64(), Reason: d.str()}
	case pJobProgress:
		return JobProgress{ID: d.i64(), State: d.u8()}
	case pJobResult:
		return JobResult{
			ID: d.i64(), Checksum: d.f64(), VirtualNS: d.i64(),
			WallNS: d.i64(), Msgs: d.i64(), Bytes: d.i64(), Segv: d.i64(),
			DiffFetches: d.i64(), Barriers: d.i64(), LockAcquires: d.i64(),
			Err: d.str(),
		}
	default:
		d.fail(fmt.Errorf("wire: unknown payload kind %d", k))
		return nil
	}
}

func (d *dec) runs() []Run {
	n := d.count(5)
	if n == 0 {
		return nil
	}
	out := arenaAlloc(&d.ar.run, n)[:0]
	for i := 0; i < n; i++ {
		out = append(out, Run{Off: d.i32(), Vals: d.f64s()})
		if d.err != nil {
			return out
		}
	}
	return out
}

func (d *dec) diffs() []Diff {
	n := d.count(18)
	if n == 0 {
		return nil
	}
	out := arenaAlloc(&d.ar.df, n)[:0]
	for i := 0; i < n; i++ {
		df := Diff{
			Page: d.i32(), Creator: d.i32(), From: d.i32(), To: d.i32(),
			Whole: d.bool(), Covers: d.i32s(),
		}
		df.Runs = d.runs()
		out = append(out, df)
		if d.err != nil {
			return out
		}
	}
	return out
}

func (d *dec) spans() []DiffSpan {
	n := d.count(19)
	var out []DiffSpan
	for i := 0; i < n; i++ {
		s := DiffSpan{
			Page: d.i32(), Creator: d.i32(), From: d.i32(), To: d.i32(),
			Whole: d.bool(), Covers: d.i32s(),
		}
		pn := d.count(1)
		for j := 0; j < pn; j++ {
			s.Pages = append(s.Pages, d.runs())
			if d.err != nil {
				break
			}
		}
		out = append(out, s)
		if d.err != nil {
			return out
		}
	}
	return out
}

func (d *dec) intervals() []OwnedInterval {
	n := d.count(10)
	if n == 0 {
		return nil
	}
	out := arenaAlloc(&d.ar.iv, n)[:0]
	for i := 0; i < n; i++ {
		oi := OwnedInterval{Owner: d.i32(), Idx: d.i32()}
		pn := d.count(13)
		if pn > 0 {
			refs := d.allocRef(pn)
			for j := range refs {
				refs[j] = PageRef{Page: d.i32(), Whole: d.bool(), ExtLo: d.i32(), ExtHi: d.i32()}
			}
			oi.IV.Pages = refs
		}
		oi.IV.VC = d.i32s()
		oi.IV.Split = d.bool()
		out = append(out, oi)
		if d.err != nil {
			return out
		}
	}
	return out
}

func (d *dec) nodePages() []NodePages {
	n := d.count(5)
	var out []NodePages
	for i := 0; i < n; i++ {
		out = append(out, NodePages{Node: d.i32(), Pages: d.pageSet()})
		if d.err != nil {
			return out
		}
	}
	return out
}

func (d *dec) pageOwners() []PageOwner {
	n := d.count(8)
	var out []PageOwner
	for i := 0; i < n; i++ {
		out = append(out, PageOwner{Page: d.i32(), Owner: d.i32()})
		if d.err != nil {
			return out
		}
	}
	return out
}

func (d *dec) needs() []WSyncNeed {
	n := d.count(2)
	var out []WSyncNeed
	for i := 0; i < n; i++ {
		out = append(out, WSyncNeed{Pages: d.i32s(), Applied: d.rows()})
		if d.err != nil {
			return out
		}
	}
	return out
}

// ---- framing ----

// AppendFrame encodes f (length prefix included) onto dst and returns the
// extended slice. It fails only on an unencodable payload type or an
// oversized frame.
func AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	e := &enc{b: dst}
	start := len(e.b)
	e.i32(0) // length, patched below
	e.u8(Version)
	e.u8(f.Kind)
	e.i32(f.From)
	e.i32(f.To)
	e.i32(f.Tag)
	e.i32(f.Bytes)
	e.i64(f.Time)
	if err := e.payload(f.Payload); err != nil {
		return dst, err
	}
	body := len(e.b) - start - 4
	if body > MaxFrame {
		return dst, fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame", body)
	}
	binary.LittleEndian.PutUint32(e.b[start:], uint32(body))
	return e.b, nil
}

// ParseFrame decodes one frame from b, returning the frame and the number
// of bytes consumed.
func ParseFrame(b []byte) (*Frame, int, error) {
	f := new(Frame)
	var ar decArena
	n, err := parseFrameInto(f, b, &ar)
	if err != nil {
		return nil, 0, err
	}
	return f, n, nil
}

// parseFrameInto decodes one frame from b into *f, drawing slice storage
// from ar. The decoded frame fully owns its storage (the arena never
// reuses handed-out chunks), so ar may be shared across frames and f may
// be reused once its previous contents are dead.
func parseFrameInto(f *Frame, b []byte, ar *decArena) (int, error) {
	if len(b) < 4 {
		return 0, ErrTruncated
	}
	body := binary.LittleEndian.Uint32(b)
	if body > MaxFrame {
		return 0, fmt.Errorf("wire: frame length %d exceeds MaxFrame", body)
	}
	if uint64(len(b)-4) < uint64(body) {
		return 0, ErrTruncated
	}
	d := dec{b: b[4 : 4+body], ar: ar}
	if v := d.u8(); d.err == nil && v != Version {
		return 0, fmt.Errorf("wire: version %d, want %d", v, Version)
	}
	*f = Frame{
		Kind: d.u8(),
		From: d.i32(), To: d.i32(),
		Tag: d.i32(), Bytes: d.i32(), Time: d.i64(),
	}
	f.Payload = d.payload()
	if d.err != nil {
		return 0, d.err
	}
	if len(d.b) != 0 {
		return 0, fmt.Errorf("wire: %d trailing bytes in frame", len(d.b))
	}
	switch f.Kind {
	case FHello, FMsg, FHand, FReq, FReply, FStart, FDone, FCkpt,
		FJob, FJobAccept, FJobReject, FJobState, FJobResult, FPoolHello:
	default:
		return 0, fmt.Errorf("wire: unknown frame kind %d", f.Kind)
	}
	return 4 + int(body), nil
}

// ReadRawFrame reads one length-prefixed frame from r without decoding
// it, returning the full encoded bytes (length prefix included) in fresh
// storage. Switches use it to route frames by destination without
// re-encoding payloads; hot paths use ReadRawFrameInto with a pooled
// buffer instead.
func ReadRawFrame(r io.Reader) ([]byte, error) {
	return ReadRawFrameInto(r, nil)
}

// RawFields returns the kind, source, destination, and accounted byte
// count of a raw frame read by ReadRawFrame, without decoding the
// payload (switches route and account from these alone).
func RawFields(raw []byte) (kind byte, from, to, bytes int32, err error) {
	// layout: len(4) version(1) kind(1) from(4) to(4) tag(4) bytes(4) ...
	if len(raw) < 22 {
		return 0, 0, 0, 0, ErrTruncated
	}
	if raw[4] != Version {
		return 0, 0, 0, 0, fmt.Errorf("wire: version %d, want %d", raw[4], Version)
	}
	return raw[5],
		int32(binary.LittleEndian.Uint32(raw[6:])),
		int32(binary.LittleEndian.Uint32(raw[10:])),
		int32(binary.LittleEndian.Uint32(raw[18:])),
		nil
}

// PatchRawTo rewrites the destination field of an encoded frame in place
// (broadcasts encode a shared payload once and retarget the header per
// recipient).
func PatchRawTo(raw []byte, to int32) {
	binary.LittleEndian.PutUint32(raw[10:], uint32(to))
}

// WriteFrame encodes f and writes it to w in one call.
func WriteFrame(w io.Writer, f *Frame) error {
	b, err := AppendFrame(nil, f)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadFrame reads exactly one frame from r. On a cleanly closed stream it
// returns io.EOF.
func ReadFrame(r io.Reader) (*Frame, error) {
	raw, err := ReadRawFrame(r)
	if err != nil {
		return nil, err
	}
	f, _, err := ParseFrame(raw)
	return f, err
}
