// Package wire defines the versioned wire format of the DSM machine: the
// message vocabulary the protocol layers exchange (mp sends, lock grants
// with write notices, barrier arrivals and departures with interval
// metadata, diff requests and diff payloads, Push sections), and a binary
// codec with length-prefixed framing for carrying them over a byte stream.
//
// The types here are pure values — plain structs of integers, flags, and
// float slices, with no pointers into any node's protocol state. That is
// the package's contract and the reason it exists: the in-process backends
// historically passed Go pointers through the Transport seam (a diff
// cached at one node was the same object at every node), which made a
// process-per-node deployment impossible. Everything that crosses the seam
// is now expressible as a wire value; the in-process transports pass the
// values directly, the socket transports encode them.
//
// Encoding rules: frames are length-prefixed (u32 little-endian) and carry
// a one-byte format version, a one-byte frame kind, fixed-width routing
// fields, and a payload introduced by a one-byte payload kind. Counts are
// unsigned varints, scalars are fixed-width little-endian. Decoding is
// total: malformed input yields an error, never a panic, and allocations
// are bounded by the input length (FuzzWireRoundTrip enforces both, plus
// decode/encode/decode identity).
package wire

import "fmt"

// Version is the wire-format version carried by every frame. Peers reject
// frames with any other version (the format has no negotiation; both ends
// of a machine are the same build). Version 2 added the adaptive
// protocol's Update payload and the Fetched relay fields on barrier
// arrivals and departures; version 3 added the Pushed field on lock
// grants (lock-scope adaptive updates piggybacked on the grant); version 4
// added write extents on page references and switched the adaptive push
// payloads (Update, Grant.Pushed) to run-length section encoding
// (DiffSpan): one header per contiguous page span instead of one per
// page; version 5 added the Floors field on SyncInfo — the acquirer's
// applied timestamps for the pages its hand-off edge is bound to, which
// let the releaser trim the piggybacked diff chains to what the acquirer
// actually lacks; version 6 added the FCkpt frame and Checkpoint payload
// (barrier-epoch recovery records streamed to a SnapshotSink); version 7
// switched the Fetched relay page lists (Arrival, Depart, Checkpoint) to
// a per-list raw-or-span encoding (dense sets cost two words per
// contiguous run instead of one per page), added ownership-directory
// redirects on DiffReply, the Direct flag on DiffRequest (chain-exhausted
// requesters forcing a payload serve), and the owner map on Checkpoint;
// version 8 added the service control plane — the job frames (FJob,
// FJobAccept, FJobReject, FJobState, FJobResult, FPoolHello) and their
// payloads (JobSpec, JobDecision, JobProgress, JobResult) that carry
// multi-job traffic between clients, the coordinator, and warm pool
// daemons (internal/svc, DESIGN.md §13).
const Version = 8

// MaxFrame bounds the encoded size of one frame (64 MiB), a sanity limit
// protecting the decoder from corrupt length prefixes.
const MaxFrame = 64 << 20

// Frame kinds: the transport-level envelope types.
const (
	// FHello identifies a node to the switch (From = node id).
	FHello byte = 1 + iota
	// FMsg is a mailbox message (host.Transport.Send/SendShared): Tag is
	// the mailbox tag, Bytes the accounted size, Time the virtual arrival.
	FMsg
	// FHand is a staged protocol payload (lock grant, barrier departure)
	// delivered out of band of the mailbox; Tag is the slot.
	FHand
	// FReq is a request/reply exchange's request; Tag is the request id,
	// Bytes the accounted request size.
	FReq
	// FReply answers an FReq: Tag echoes the request id, Bytes is the
	// accounted reply size, Time the service time charged at the target.
	FReply
	// FStart configures a spawned worker process (coordinator → worker).
	FStart
	// FDone reports a worker's final state (worker → coordinator): Time is
	// the worker's virtual clock.
	FDone
	// FCkpt carries a Checkpoint recovery record (node → SnapshotSink).
	// Checkpoint frames never travel between peers mid-protocol; they are
	// streamed to a coordinator or spooled to disk at barrier arrivals.
	FCkpt
	// FJob submits one job (payload JobSpec). Client → coordinator, where
	// Tag is the client's correlation nonce echoed on the admission
	// decision; coordinator → pool daemon, where the spec carries the
	// assigned job id and no decision is sent back.
	FJob
	// FJobAccept admits a submitted job (coordinator → client): Tag echoes
	// the submit nonce, the JobDecision payload carries the assigned id.
	FJobAccept
	// FJobReject refuses a submitted job (coordinator → client): Tag
	// echoes the submit nonce, the JobDecision payload carries the reason.
	// Rejection is a per-job verdict, never a connection error — the
	// coordinator keeps serving the connection and the pool.
	FJobReject
	// FJobState reports a job's lifecycle transition (payload JobProgress),
	// coordinator → client.
	FJobState
	// FJobResult reports a finished job (payload JobResult): pool daemon →
	// coordinator → client.
	FJobResult
	// FPoolHello attaches a warm pool daemon to the coordinator
	// (daemon → coordinator): From is unused, Tag carries the daemon's
	// rank-slot capacity, and there is no payload.
	FPoolHello
)

func frameKindName(k byte) string {
	switch k {
	case FHello:
		return "hello"
	case FMsg:
		return "msg"
	case FHand:
		return "hand"
	case FReq:
		return "req"
	case FReply:
		return "reply"
	case FStart:
		return "start"
	case FDone:
		return "done"
	case FCkpt:
		return "ckpt"
	case FJob:
		return "job"
	case FJobAccept:
		return "job-accept"
	case FJobReject:
		return "job-reject"
	case FJobState:
		return "job-state"
	case FJobResult:
		return "job-result"
	case FPoolHello:
		return "pool-hello"
	}
	return fmt.Sprintf("frame(%d)", k)
}

// Frame is one wire exchange: the envelope plus a decoded payload.
type Frame struct {
	Kind     byte
	From, To int32
	// Tag is the mailbox tag (FMsg), hand slot (FHand), or request id
	// (FReq/FReply).
	Tag int32
	// Bytes is the accounted payload size in the cost model, not the
	// encoded size (headers the paper's platform would send are accounted
	// even though this codec does not materialize them).
	Bytes int32
	// Time carries virtual nanoseconds: arrival (FMsg), service (FReply),
	// final clock (FDone).
	Time int64
	// Payload is one of the payload types below, or nil.
	Payload any
}

// Payload kinds.
const (
	pNil byte = iota
	pFloat64s
	pDiffRequest
	pDiffReply
	pGrant
	pArrival
	pDepart
	pPush
	pSyncInfo
	pStart
	pDone
	pUpdate
	pCheckpoint
	pJobSpec
	pJobDecision
	pJobProgress
	pJobResult
)

// Run is a contiguous span of modified words within a page, the unit a
// diff is made of (the vm package's Run, expressed as a wire value).
type Run struct {
	Off  int32
	Vals []float64
}

// Diff is one unit of modification data: a twin-based diff covering the
// creator's intervals (From, To], or a whole-page snapshot (Whole).
// Covers is the creator's per-owner applied timestamps for the page at
// creation (own entry raised to To) — the ordering timestamp receivers
// apply overlapping diffs by, and the subsumption set for whole snapshots.
type Diff struct {
	Page    int32
	Creator int32
	From    int32 // exclusive
	To      int32 // inclusive
	Whole   bool
	Covers  []int32
	Runs    []Run
}

// DiffRequest asks a responder for the outstanding modifications of a set
// of pages. Req is the requesting node (its own diffs are never returned);
// Applied[i] is the requester's per-owner applied timestamps for Pages[i]
// — carried explicitly so the responder decides what the requester lacks
// from the request alone, never from the requester's in-memory state.
type DiffRequest struct {
	Req     int32
	Pages   []int32
	Applied [][]int32
	// Direct forbids directory redirects: the responder must serve from
	// its own cache even when its ownership hint says another node holds
	// the chain head. Requesters set it after exhausting a forwarding
	// chain (hop cap or cycle), making the noticed owner — who can always
	// serve its own diffs — the unconditional backstop.
	Direct bool
}

// DiffReply returns the diffs a responder served for a DiffRequest.
// Redirects carry the ownership directory's probable-owner forwarding
// hints for requested pages the responder could not serve (it no longer
// holds the page's chain head): "ask Owner". The requester — never the
// responder — follows the chain, so serve handlers stay request-free and
// deadlock-free; each hop rewrites the requester's hint, shortening the
// chain for every later fault (IVY path compression). Empty except in
// scale mode.
type DiffReply struct {
	Diffs     []Diff
	Redirects []PageOwner
}

// PageOwner is one ownership-directory fact: the probable owner (last
// known writer, the node to ask for the page's diff-chain head) of one
// page. The unit of DiffReply redirects and of the Checkpoint owner map.
type PageOwner struct {
	Page  int32
	Owner int32
}

// PageRef names a page within an interval record; Whole marks pages the
// interval overwrote entirely without twinning (WRITE_ALL). ExtLo/ExtHi
// carry the owner's write extent within the page — the [lo, hi) word
// range its established write regions covered — which the adaptive
// protocol's sub-page split detection reads to tell spatial false sharing
// (two writers, disjoint extents) from a genuine write conflict. ExtHi ==
// 0 means the extent is unknown and readers must assume the whole page.
// The extents exist for the adaptive protocol, so their cost follows the
// adaptive convention: ExtentBytes is charged on top of NoticeBytes only
// when adaptation is enabled — adapt-off notice accounting is unchanged
// from version 3.
type PageRef struct {
	Page         int32
	Whole        bool
	ExtLo, ExtHi int32
}

// Interval records the pages one owner modified in one interval, plus the
// owner's vector time when the interval closed. Split marks a mid-epoch
// serve-path split (tmk.splitInterval): such intervals exist at
// schedule-dependent positions in a creator's chain, so replicated
// decisions — the ownership directory's post-barrier reset — must skip
// them and count only closing intervals, which every backend produces at
// the same synchronization points.
type Interval struct {
	Pages []PageRef
	VC    []int32
	Split bool
}

// NoticeBytes is the accounted size of a write notice covering n pages —
// the single size formula every leg (grants, barrier arrivals and
// departures) charges with.
func NoticeBytes(n int) int { return 8 + 4*n }

// FetchedBytes is the accounted size of a Fetched relay page list under
// the version-7 raw-or-span encoding: an 8-byte header plus the cheaper
// of one word per page (raw) or two words per contiguous run (spans) —
// the same heuristic the codec's pageSet encoder applies, so accounting
// and encoding cannot diverge. Sorted input is the protocol invariant
// (fetchedSorted); an unsorted list degenerates to raw pricing.
func FetchedBytes(pages []int32) int {
	raw := 4 * len(pages)
	spans := 8 * countRuns(pages)
	if spans < raw {
		return 8 + spans
	}
	return 8 + raw
}

// countRuns counts the maximal contiguous ascending runs of a sorted
// page list (allocation-free; the span encoder and FetchedBytes share
// it).
func countRuns(pages []int32) int {
	runs := 0
	for i, p := range pages {
		if i == 0 || p != pages[i-1]+1 {
			runs++
		}
	}
	return runs
}

// ExtentBytes is the additional accounted size of the write extents a
// notice carries for the adaptive protocol, given how many of its page
// references carry a *partial* extent. Full-page and unknown extents —
// the overwhelmingly common cases — are flag states in the per-page
// slot NoticeBytes already charges; only a partial extent (a write that
// covered part of the page, the false-sharing evidence) appends one
// 4-byte word holding its two 16-bit offsets. Charged only when
// adaptation is enabled, like the Fetched relay lists — with adaptation
// off the accounted protocol is byte-for-byte the version-2 one.
func ExtentBytes(partial int) int { return 4 * partial }

// PartialExtent reports whether a write extent [lo, hi) is known and
// covers less than a whole page of pageWords words — the single
// definition of "partial" both the sender-side and relay-side extent
// accounting charge by.
func PartialExtent(lo, hi int32, pageWords int) bool {
	return hi != 0 && !(lo == 0 && int(hi) == pageWords)
}

// PartialExtents counts the page references whose extent is partial —
// the refs ExtentBytes charges for.
func (iv Interval) PartialExtents(pageWords int) int {
	n := 0
	for _, pr := range iv.Pages {
		if PartialExtent(pr.ExtLo, pr.ExtHi, pageWords) {
			n++
		}
	}
	return n
}

// WireBytes is the accounted size of the interval's write notice,
// without the adaptive extent surcharge (see ExtentBytes).
func (iv Interval) WireBytes() int { return NoticeBytes(len(iv.Pages)) }

// AccountedBytes is the accounted size of the interval's write notice,
// with the adaptive extent surcharge folded in when extents is true —
// the single definition every charging site (grants, barrier arrivals
// and departures) uses, so sender-side and relay-side accounting cannot
// diverge.
func (iv Interval) AccountedBytes(extents bool, pageWords int) int {
	b := iv.WireBytes()
	if extents {
		b += ExtentBytes(iv.PartialExtents(pageWords))
	}
	return b
}

// OwnedInterval is an interval tagged with its owner and index, the unit
// of a write notice.
type OwnedInterval struct {
	Owner int32
	Idx   int32
	IV    Interval
}

// WSyncNeed is one registered Validate_w_sync carried on a synchronization
// message: the pages whose data should piggyback on the response, with the
// requester's applied timestamps per page.
type WSyncNeed struct {
	Pages   []int32
	Applied [][]int32
}

// SyncInfo is what an acquirer presents at a lock acquire: its vector time
// (so the releaser can compute the write notices it lacks) and its pending
// Validate_w_sync registrations. Floors carries the acquirer's per-page
// applied timestamps for the pages its predicted hand-off edge is bound
// to (the lock-scope adaptive piggyback): without them the releaser must
// ship its full cached chain per bound page — the diff-accumulation cost
// the paper reports for IS — while a floor lets it trim the chain to the
// suffix the acquirer lacks. Floors are exact, not advisory: they are
// snapshotted when the acquire is presented, and the acquirer's applied
// timestamps cannot advance before the grant is built (it blocks, and the
// remote serve path never touches another node's applied state). Empty
// when adaptation is off or the predicted edge is unbound, and accounted
// (FloorBytes) only when adaptation is on — adapt-off request accounting
// is unchanged from version 4.
type SyncInfo struct {
	VC     []int32
	Needs  []WSyncNeed
	Floors []WSyncNeed
}

// FloorBytes is the accounted size of the applied floors an acquire
// request carries for pages of bound hand-off edges: a 4-byte page id
// plus a 4-byte timestamp per owner, for each of pages pages on an
// n-node machine. Charged on the acquire request legs only when
// adaptation is enabled, like every other adaptive surcharge.
func FloorBytes(pages, n int) int { return pages * (4 + 4*n) }

// Grant carries what a releaser hands to an acquirer: the write notices
// the acquirer lacks plus any diffs piggybacked for a Validate_w_sync.
// Pushed carries the lock-scope adaptive updates: diffs for the pages the
// per-lock detector predicts the acquirer will fault on in its critical
// section, piggybacked the same way Validate_w_sync piggybacks
// compiler-known data (empty when adaptation is disabled or the hand-off
// edge is not bound), and coalesced into section spans — the releaser's
// chains repeat the same header across a critical section's contiguous
// pages, so a span costs one header where version 3 paid one per page.
// Receivers expand the spans and apply Served and Pushed through the same
// diff path. Bytes is the accounted size of the grant message.
type Grant struct {
	Intervals []OwnedInterval
	Served    []Diff
	Pushed    []DiffSpan
	Bytes     int32
}

// Arrival is a barrier arrival message: the arriver's vector time and
// every interval closed since its last barrier departure (the master
// deduplicates against what it already learned through lock transfers),
// plus its Validate_w_sync registrations. Fetched lists the pages the
// arriver demand-fetched remote data for during the ending epoch — the
// access-pattern observation the adaptive protocol aggregates (empty when
// adaptation is disabled).
type Arrival struct {
	VC        []int32
	Intervals []OwnedInterval
	Needs     []WSyncNeed
	Fetched   []int32
}

// NodePages attributes a sorted page list to one node; the unit in which
// barrier departures relay the per-node fetch observations.
type NodePages struct {
	Node  int32
	Pages []int32
}

// Depart is a barrier departure message for one node: the common departure
// time, the write notices the node lacks, and the diffs answering its
// Validate_w_sync registrations. Fetched relays every arriver's fetch
// observation (sorted by node) so each node can advance the same adaptive
// pattern detector on the same global input; empty when adaptation is
// disabled.
type Depart struct {
	Time      int64
	Intervals []OwnedInterval
	Served    []Diff
	Fetched   []NodePages
}

// Chunk is a contiguous span of words sent by Push, received in place.
type Chunk struct {
	Lo   int32
	Vals []float64
}

// Push is a point-to-point section exchange replacing a barrier: raw data
// chunks plus the sender's newest closed interval (so receivers record the
// sections as applied).
type Push struct {
	Ivl    int32
	Chunks []Chunk
}

// Update is the adaptive protocol's piggybacked push: the diffs a producer
// sends to a bound consumer right after a barrier departure, replacing the
// consumer's invalidate-and-fault fetch for pages whose producer→consumer
// pattern has stabilized — run-length section encoded, one DiffSpan per
// contiguous page span the binding covers (a 16-page producer span costs
// one header and is applied receiver-side through a single ApplySpan
// call). Epoch is the producer's barrier count when the update was sent
// (diagnostic; the diffs carry their own ordering timestamps and
// receivers apply them through the normal diff path).
type Update struct {
	Epoch int32
	Spans []DiffSpan
}

// DiffSpan is the run-length section encoding of per-page diffs: the
// diffs of the contiguous page range [Page, Page+len(Pages)) that share
// one creator, interval range, whole flag, and coverage vector, each page
// contributing only its runs. It exists purely as a header economy — a
// span expands losslessly into the per-page Diff values of the version-3
// format (Expand), and a single-page span round-trips to exactly the Diff
// it was coalesced from — so nothing downstream of the codec changes
// semantics.
type DiffSpan struct {
	Page    int32 // first page of the span
	Creator int32
	From    int32 // exclusive
	To      int32 // inclusive
	Whole   bool
	Covers  []int32
	Pages   [][]Run // runs per page, offsets page-relative
}

// WireBytes is the accounted size of the span: the 16-byte diff header
// once, a 4-byte page-map entry per additional page, plus the run
// payloads (one word of header per run plus its data words) — the
// version-3 form charged the full 16-byte header per page.
func (s DiffSpan) WireBytes() int {
	n := 16 + 4*(len(s.Pages)-1)
	for _, runs := range s.Pages {
		for _, r := range runs {
			n += 8 * (1 + len(r.Vals))
		}
	}
	return n
}

// Expand converts the span back into the per-page diffs it encodes.
// Covers is copied per page: expanded diffs are independent values, and
// receivers cache them separately.
func (s DiffSpan) Expand() []Diff {
	out := make([]Diff, len(s.Pages))
	for i, runs := range s.Pages {
		out[i] = Diff{
			Page: s.Page + int32(i), Creator: s.Creator,
			From: s.From, To: s.To, Whole: s.Whole,
			Covers: append([]int32(nil), s.Covers...),
			Runs:   runs,
		}
	}
	return out
}

// ExpandSpans expands a span list into the flat diff list of the
// version-3 per-page form.
func ExpandSpans(spans []DiffSpan) []Diff {
	var out []Diff
	for _, s := range spans {
		out = append(out, s.Expand()...)
	}
	return out
}

// CoalesceDiffs groups a diff list into maximal section spans: a diff
// joins the span of the preceding page when everything but its page and
// runs matches (creator, interval range, whole flag, coverage). Diffs
// that share a page with different headers — a chain — start parallel
// spans, so chains of adjacent pages coalesce link-wise. The encoding is
// lossless: ExpandSpans(CoalesceDiffs(ds)) contains exactly the diffs of
// ds (order may interleave across chains; receivers order by coverage).
//
// The join search indexes the newest span per header key: callers emit a
// header group's diffs in ascending page order (diff caches are walked
// page-major), so the newest span of a key is the only one a later diff
// of that key could ever be contiguous with.
func CoalesceDiffs(ds []Diff) []DiffSpan {
	var out []DiffSpan
	last := map[spanKey]int{} // header key -> index of its newest span in out
	for _, d := range ds {
		k := keyOfSpan(d)
		if i, ok := last[k]; ok {
			s := &out[i]
			if s.Page+int32(len(s.Pages)) == d.Page {
				s.Pages = append(s.Pages, d.Runs)
				continue
			}
		}
		last[k] = len(out)
		out = append(out, DiffSpan{
			Page: d.Page, Creator: d.Creator, From: d.From, To: d.To,
			Whole: d.Whole, Covers: d.Covers, Pages: [][]Run{d.Runs},
		})
	}
	return out
}

// spanKey identifies a span header for the coalescing join search; the
// coverage vector is folded into a comparable string.
type spanKey struct {
	creator, from, to int32
	whole             bool
	covers            string
}

func keyOfSpan(d Diff) spanKey {
	var b []byte
	for _, c := range d.Covers {
		b = append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
	}
	return spanKey{creator: d.Creator, from: d.From, to: d.To, whole: d.Whole, covers: string(b)}
}

// Float64s is a message-passing data payload ([]float64 sends of the mp
// layer).
type Float64s []float64

// Start configures a spawned worker process: which application to run on
// which rank of how many, with the harness's distribution overhead and
// verification switch. Workers re-derive problem parameters from
// (App, Set, N) deterministically.
type Start struct {
	App      string
	Set      string
	N        int32
	Overhead int64 // per-phase distribution overhead, nanoseconds
	Verify   bool
}

// Done reports a worker's terminal state: its checksum contribution (rank
// 0 only, when verifying) and an error description, empty on success. The
// final virtual clock travels in the frame's Time field.
type Done struct {
	Checksum float64
	Err      string
}

// PageFrame is one page's recovery image inside a Checkpoint: its
// contents, protection, dirty flag, the newest own interval its
// modifications are published through (LastDiffed), and the per-owner
// applied timestamps the contents reflect. Contents plus applied floor
// travel together so a restored node can refetch exactly the diff
// suffix it lacks — the redo argument of DESIGN.md §10.
type PageFrame struct {
	Page       int32
	Prot       uint8 // vm.Prot
	Dirty      bool
	LastDiffed int32
	Applied    []int32
	Words      []float64
	// Twin is the write-detection twin image for a dirty page (empty
	// otherwise). It is checkpointed verbatim: restoring the twin as a
	// copy of the current contents instead would erase the undiffed
	// epoch's writes from the next twin comparison.
	Twin []float64
}

// Checkpoint is one node's recovery record for one barrier epoch,
// written at barrier arrival (after the epoch's write interval closed,
// before the arrival is presented — log-before-send). A Full record
// carries the node's complete interval log and every resident page
// frame; an incremental record carries only the intervals learned and
// the frames touched since the previous record. A node's state at a
// barrier is reconstructed from its newest full record plus the
// incremental records after it.
type Checkpoint struct {
	Node  int32
	Epoch int32 // the node's barrier count when the record was written
	Full  bool
	// VC and LastBar are the node's vector time and last global barrier
	// time at the record point.
	VC      []int32
	LastBar []int32
	// Intervals are the write notices learned since the previous record
	// (all of them for a Full record), per owner in ascending index
	// order — the restored interval log must be gap-free.
	Intervals []OwnedInterval
	// Frames are the page images touched since the previous record
	// (every resident or ever-owned page for a Full record).
	Frames []PageFrame
	// Diffs is the node's cached diff chain for every framed page, in
	// cache order. The cache must be checkpointed, not resynthesized:
	// peers direct requests by the node's advertised coverage, and a
	// whole-page stand-in would overwrite words that concurrent writers
	// of the same page own (the multiple-writer protocol never ships a
	// whole page unless the WRITE_ALL exactness contract holds).
	Diffs []Diff
	// Fetched is the node's demand-fetch observation set for the ending
	// epoch and Adapt the serialized pattern detector (adapt.Snapshot),
	// present only when the adaptive protocol is enabled — the restored
	// replica must agree with the survivors without negotiation.
	Fetched []int32
	Adapt   []byte
	// Owners is the node's ownership-directory hint map (page → probable
	// owner) at the record point, present only in scale mode. Without it
	// a restored victim would fall back to "ask the creator" while the
	// survivors' directories still point at migrated owners — correct
	// (the retry path always recovers) but a recovery-time hot spot the
	// directory exists to avoid.
	Owners []PageOwner
}

// JobSpec describes one job submitted to the DSM service (internal/svc):
// which application/data-set/system to run on how many pool ranks, with
// the protocol switches of harness.Config that are meaningful per job.
// Everything a job needs is derivable from the spec — like Start, the
// frame is the worker's whole configuration, which is what lets a dead
// coordinator or daemon be replaced without shared state.
type JobSpec struct {
	// ID is the coordinator-assigned job id: zero on the client's submit
	// frame, set on the frame the coordinator dispatches to a pool daemon.
	ID int64
	// App, Set and System name the run (apps.ByName, harness.SystemKind
	// "tmk"/"opt-tmk"). Backend names the host backend per job ("" = sim —
	// the deterministic choice the service's latency tables rely on).
	App, Set, System, Backend string
	// Procs is the rank-subset size the job claims from the pool.
	Procs int32
	// Adapt/AdaptK/AdaptM and Scale arm the adaptive protocol and scale
	// mode for the job, exactly as the same-named harness.Config fields.
	Adapt          bool
	AdaptK, AdaptM int32
	Scale          bool
	// Verify computes the job's checksum against its layout (the field
	// every service equivalence test pins).
	Verify bool
}

// JobDecision is the coordinator's admission verdict for one submitted
// job: the assigned id on acceptance, the refusal reason on rejection
// (queue full, malformed spec, oversized rank request).
type JobDecision struct {
	ID     int64
	Reason string
}

// Job lifecycle states carried by JobProgress.
const (
	// JobQueued: admitted and waiting in the bounded job queue.
	JobQueued byte = 1 + iota
	// JobRunning: claimed its rank subset and executing.
	JobRunning
)

// JobProgress reports a job lifecycle transition to the submitting
// client.
type JobProgress struct {
	ID    int64
	State byte
}

// JobResult is a finished job's report: the checksum and deterministic
// virtual time (the golden-pinned columns of the service table), the
// headline traffic and protocol counters, the run's wall-clock duration
// as measured by the executing pool, and an error description, empty on
// success.
type JobResult struct {
	ID           int64
	Checksum     float64
	VirtualNS    int64
	WallNS       int64
	Msgs, Bytes  int64
	Segv         int64
	DiffFetches  int64
	Barriers     int64
	LockAcquires int64
	Err          string
}
