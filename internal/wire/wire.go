// Package wire defines the versioned wire format of the DSM machine: the
// message vocabulary the protocol layers exchange (mp sends, lock grants
// with write notices, barrier arrivals and departures with interval
// metadata, diff requests and diff payloads, Push sections), and a binary
// codec with length-prefixed framing for carrying them over a byte stream.
//
// The types here are pure values — plain structs of integers, flags, and
// float slices, with no pointers into any node's protocol state. That is
// the package's contract and the reason it exists: the in-process backends
// historically passed Go pointers through the Transport seam (a diff
// cached at one node was the same object at every node), which made a
// process-per-node deployment impossible. Everything that crosses the seam
// is now expressible as a wire value; the in-process transports pass the
// values directly, the socket transports encode them.
//
// Encoding rules: frames are length-prefixed (u32 little-endian) and carry
// a one-byte format version, a one-byte frame kind, fixed-width routing
// fields, and a payload introduced by a one-byte payload kind. Counts are
// unsigned varints, scalars are fixed-width little-endian. Decoding is
// total: malformed input yields an error, never a panic, and allocations
// are bounded by the input length (FuzzWireRoundTrip enforces both, plus
// decode/encode/decode identity).
package wire

import "fmt"

// Version is the wire-format version carried by every frame. Peers reject
// frames with any other version (the format has no negotiation; both ends
// of a machine are the same build). Version 2 added the adaptive
// protocol's Update payload and the Fetched relay fields on barrier
// arrivals and departures; version 3 added the Pushed field on lock
// grants (lock-scope adaptive updates piggybacked on the grant).
const Version = 3

// MaxFrame bounds the encoded size of one frame (64 MiB), a sanity limit
// protecting the decoder from corrupt length prefixes.
const MaxFrame = 64 << 20

// Frame kinds: the transport-level envelope types.
const (
	// FHello identifies a node to the switch (From = node id).
	FHello byte = 1 + iota
	// FMsg is a mailbox message (host.Transport.Send/SendShared): Tag is
	// the mailbox tag, Bytes the accounted size, Time the virtual arrival.
	FMsg
	// FHand is a staged protocol payload (lock grant, barrier departure)
	// delivered out of band of the mailbox; Tag is the slot.
	FHand
	// FReq is a request/reply exchange's request; Tag is the request id,
	// Bytes the accounted request size.
	FReq
	// FReply answers an FReq: Tag echoes the request id, Bytes is the
	// accounted reply size, Time the service time charged at the target.
	FReply
	// FStart configures a spawned worker process (coordinator → worker).
	FStart
	// FDone reports a worker's final state (worker → coordinator): Time is
	// the worker's virtual clock.
	FDone
)

func frameKindName(k byte) string {
	switch k {
	case FHello:
		return "hello"
	case FMsg:
		return "msg"
	case FHand:
		return "hand"
	case FReq:
		return "req"
	case FReply:
		return "reply"
	case FStart:
		return "start"
	case FDone:
		return "done"
	}
	return fmt.Sprintf("frame(%d)", k)
}

// Frame is one wire exchange: the envelope plus a decoded payload.
type Frame struct {
	Kind     byte
	From, To int32
	// Tag is the mailbox tag (FMsg), hand slot (FHand), or request id
	// (FReq/FReply).
	Tag int32
	// Bytes is the accounted payload size in the cost model, not the
	// encoded size (headers the paper's platform would send are accounted
	// even though this codec does not materialize them).
	Bytes int32
	// Time carries virtual nanoseconds: arrival (FMsg), service (FReply),
	// final clock (FDone).
	Time int64
	// Payload is one of the payload types below, or nil.
	Payload any
}

// Payload kinds.
const (
	pNil byte = iota
	pFloat64s
	pDiffRequest
	pDiffReply
	pGrant
	pArrival
	pDepart
	pPush
	pSyncInfo
	pStart
	pDone
	pUpdate
)

// Run is a contiguous span of modified words within a page, the unit a
// diff is made of (the vm package's Run, expressed as a wire value).
type Run struct {
	Off  int32
	Vals []float64
}

// Diff is one unit of modification data: a twin-based diff covering the
// creator's intervals (From, To], or a whole-page snapshot (Whole).
// Covers is the creator's per-owner applied timestamps for the page at
// creation (own entry raised to To) — the ordering timestamp receivers
// apply overlapping diffs by, and the subsumption set for whole snapshots.
type Diff struct {
	Page    int32
	Creator int32
	From    int32 // exclusive
	To      int32 // inclusive
	Whole   bool
	Covers  []int32
	Runs    []Run
}

// DiffRequest asks a responder for the outstanding modifications of a set
// of pages. Req is the requesting node (its own diffs are never returned);
// Applied[i] is the requester's per-owner applied timestamps for Pages[i]
// — carried explicitly so the responder decides what the requester lacks
// from the request alone, never from the requester's in-memory state.
type DiffRequest struct {
	Req     int32
	Pages   []int32
	Applied [][]int32
}

// DiffReply returns the diffs a responder served for a DiffRequest.
type DiffReply struct {
	Diffs []Diff
}

// PageRef names a page within an interval record; Whole marks pages the
// interval overwrote entirely without twinning (WRITE_ALL).
type PageRef struct {
	Page  int32
	Whole bool
}

// Interval records the pages one owner modified in one interval, plus the
// owner's vector time when the interval closed.
type Interval struct {
	Pages []PageRef
	VC    []int32
}

// NoticeBytes is the accounted size of a write notice covering n pages —
// the single size formula every leg (grants, barrier arrivals and
// departures) charges with.
func NoticeBytes(n int) int { return 8 + 4*n }

// WireBytes is the accounted size of the interval's write notice.
func (iv Interval) WireBytes() int { return NoticeBytes(len(iv.Pages)) }

// OwnedInterval is an interval tagged with its owner and index, the unit
// of a write notice.
type OwnedInterval struct {
	Owner int32
	Idx   int32
	IV    Interval
}

// WSyncNeed is one registered Validate_w_sync carried on a synchronization
// message: the pages whose data should piggyback on the response, with the
// requester's applied timestamps per page.
type WSyncNeed struct {
	Pages   []int32
	Applied [][]int32
}

// SyncInfo is what an acquirer presents at a lock acquire: its vector time
// (so the releaser can compute the write notices it lacks) and its pending
// Validate_w_sync registrations.
type SyncInfo struct {
	VC    []int32
	Needs []WSyncNeed
}

// Grant carries what a releaser hands to an acquirer: the write notices
// the acquirer lacks plus any diffs piggybacked for a Validate_w_sync.
// Pushed carries the lock-scope adaptive updates: diffs for the pages the
// per-lock detector predicts the acquirer will fault on in its critical
// section, piggybacked the same way Validate_w_sync piggybacks
// compiler-known data (empty when adaptation is disabled or the hand-off
// edge is not bound). Receivers apply Served and Pushed through the same
// diff path. Bytes is the accounted size of the grant message.
type Grant struct {
	Intervals []OwnedInterval
	Served    []Diff
	Pushed    []Diff
	Bytes     int32
}

// Arrival is a barrier arrival message: the arriver's vector time and
// every interval closed since its last barrier departure (the master
// deduplicates against what it already learned through lock transfers),
// plus its Validate_w_sync registrations. Fetched lists the pages the
// arriver demand-fetched remote data for during the ending epoch — the
// access-pattern observation the adaptive protocol aggregates (empty when
// adaptation is disabled).
type Arrival struct {
	VC        []int32
	Intervals []OwnedInterval
	Needs     []WSyncNeed
	Fetched   []int32
}

// NodePages attributes a sorted page list to one node; the unit in which
// barrier departures relay the per-node fetch observations.
type NodePages struct {
	Node  int32
	Pages []int32
}

// Depart is a barrier departure message for one node: the common departure
// time, the write notices the node lacks, and the diffs answering its
// Validate_w_sync registrations. Fetched relays every arriver's fetch
// observation (sorted by node) so each node can advance the same adaptive
// pattern detector on the same global input; empty when adaptation is
// disabled.
type Depart struct {
	Time      int64
	Intervals []OwnedInterval
	Served    []Diff
	Fetched   []NodePages
}

// Chunk is a contiguous span of words sent by Push, received in place.
type Chunk struct {
	Lo   int32
	Vals []float64
}

// Push is a point-to-point section exchange replacing a barrier: raw data
// chunks plus the sender's newest closed interval (so receivers record the
// sections as applied).
type Push struct {
	Ivl    int32
	Chunks []Chunk
}

// Update is the adaptive protocol's piggybacked push: the diffs a producer
// sends to a bound consumer right after a barrier departure, replacing the
// consumer's invalidate-and-fault fetch for pages whose producer→consumer
// pattern has stabilized. Epoch is the producer's barrier count when the
// update was sent (diagnostic; the diffs carry their own ordering
// timestamps and receivers apply them through the normal diff path).
type Update struct {
	Epoch int32
	Diffs []Diff
}

// Float64s is a message-passing data payload ([]float64 sends of the mp
// layer).
type Float64s []float64

// Start configures a spawned worker process: which application to run on
// which rank of how many, with the harness's distribution overhead and
// verification switch. Workers re-derive problem parameters from
// (App, Set, N) deterministically.
type Start struct {
	App      string
	Set      string
	N        int32
	Overhead int64 // per-phase distribution overhead, nanoseconds
	Verify   bool
}

// Done reports a worker's terminal state: its checksum contribution (rank
// 0 only, when verifying) and an error description, empty on success. The
// final virtual clock travels in the frame's Time field.
type Done struct {
	Checksum float64
	Err      string
}
