package svc

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"

	"sdsm/internal/host"
	"sdsm/internal/wire"
)

// DefaultQueueCap bounds the coordinator's job queue when Config leaves
// it zero: submits beyond the bound are rejected immediately ("queue
// full"), the admission-control half of the service contract.
const DefaultQueueCap = 64

// Config shapes one coordinator.
type Config struct {
	// Slots is the local warm pool size; 0 runs a pure control plane
	// that only dispatches to attached daemons.
	Slots int
	// QueueCap bounds the pending-job queue (0 = DefaultQueueCap).
	QueueCap int
}

// ServiceStats counts control-plane outcomes. All fields are atomics;
// Snapshot returns a plain copy.
type ServiceStats struct {
	Accepted  atomic.Int64
	Rejected  atomic.Int64
	Completed atomic.Int64 // results delivered, including jobs whose Err is set
	Failed    atomic.Int64 // of Completed: results carrying Err
}

// StatsSnapshot is a point-in-time copy of ServiceStats.
type StatsSnapshot struct {
	Accepted, Rejected, Completed, Failed int64
}

// job is one accepted submission in flight through the queue.
type job struct {
	spec wire.JobSpec
	tag  int32 // the client's correlation nonce, echoed on every frame about the job
	cl   *clientConn
}

// clientConn serializes all coordinator→client writes on one
// connection. The mutex also sequences admission: accept/reject frames
// are written under the same lock the enqueue decision is made under,
// so a worker's progress or result frames can never overtake the accept
// that announced the job.
type clientConn struct {
	mu sync.Mutex
	c  net.Conn
}

func (cl *clientConn) send(f *wire.Frame) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	// A write error means the client went away; its jobs still run and
	// their results are dropped here. The pool must survive its clients.
	_ = wire.WriteFrame(cl.c, f)
}

// Coordinator is the multi-job control plane: it owns the bounded job
// queue, admits or rejects submissions, and dispatches accepted jobs to
// the local warm pool and any attached pool daemons.
type Coordinator struct {
	pool   *Pool
	ln     net.Listener
	dir    string // temp dir of the unix socket, "" for tcp
	jobs   chan *job
	nextID atomic.Int64
	maxCap atomic.Int64 // largest executor capacity seen (admission bound)

	Stats ServiceStats

	quit chan struct{} // closed by Close; workers and forwarders watch it

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// Start launches a coordinator on a fresh loopback listener (unix
// socket with TCP fallback, like every socket deployment in this repo).
func Start(cfg Config) (*Coordinator, error) {
	ln, dir, err := host.ListenLoopback()
	if err != nil {
		return nil, fmt.Errorf("svc: listen: %w", err)
	}
	qc := cfg.QueueCap
	if qc <= 0 {
		qc = DefaultQueueCap
	}
	co := &Coordinator{
		ln:    ln,
		dir:   dir,
		jobs:  make(chan *job, qc),
		quit:  make(chan struct{}),
		conns: map[net.Conn]bool{},
	}
	if cfg.Slots > 0 {
		co.pool = NewPool(cfg.Slots)
		co.maxCap.Store(int64(cfg.Slots))
		for w := 0; w < cfg.Slots; w++ {
			co.wg.Add(1)
			go co.localWorker()
		}
	}
	co.wg.Add(1)
	go co.acceptLoop()
	return co, nil
}

// Addr returns the network and address clients and daemons dial.
func (co *Coordinator) Addr() (network, addr string) {
	return co.ln.Addr().Network(), co.ln.Addr().String()
}

// LocalPool exposes the coordinator's warm pool (nil when Slots was 0),
// for tests that inspect or poison warm slot state.
func (co *Coordinator) LocalPool() *Pool { return co.pool }

// Snapshot copies the service counters.
func (co *Coordinator) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Accepted:  co.Stats.Accepted.Load(),
		Rejected:  co.Stats.Rejected.Load(),
		Completed: co.Stats.Completed.Load(),
		Failed:    co.Stats.Failed.Load(),
	}
}

// Close shuts the control plane down: stop accepting, sever every
// connection, and wait for workers to drain. Jobs still queued are
// dropped (their clients are gone with the connections).
func (co *Coordinator) Close() {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return
	}
	co.closed = true
	co.ln.Close()
	for c := range co.conns {
		c.Close()
	}
	co.mu.Unlock()
	// The jobs channel is never closed: a racing submit may still try a
	// non-blocking send. Workers leave via quit instead; queued jobs are
	// dropped with their clients' connections.
	close(co.quit)
	co.wg.Wait()
	if co.dir != "" {
		os.RemoveAll(co.dir)
	}
}

func (co *Coordinator) acceptLoop() {
	defer co.wg.Done()
	for {
		c, err := co.ln.Accept()
		if err != nil {
			return // listener closed
		}
		co.mu.Lock()
		if co.closed {
			co.mu.Unlock()
			c.Close()
			return
		}
		co.conns[c] = true
		co.wg.Add(1)
		co.mu.Unlock()
		go co.serveConn(c)
	}
}

func (co *Coordinator) dropConn(c net.Conn) {
	co.mu.Lock()
	delete(co.conns, c)
	co.mu.Unlock()
	c.Close()
}

// serveConn handles one inbound connection. The first frame declares
// the peer: FPoolHello attaches a daemon (Tag carries its slot count),
// FJob begins a client session. Anything else — including bytes that do
// not decode as a frame at all — closes the connection; the pool and
// every other session are untouched.
func (co *Coordinator) serveConn(c net.Conn) {
	defer co.wg.Done()
	defer co.dropConn(c)
	f, err := wire.ReadFrame(c)
	if err != nil {
		return
	}
	switch f.Kind {
	case wire.FPoolHello:
		co.serveDaemon(c, int(f.Tag))
	case wire.FJob:
		cl := &clientConn{c: c}
		co.submit(cl, f)
		for {
			f, err := wire.ReadFrame(c)
			if err != nil {
				return
			}
			if f.Kind != wire.FJob {
				return
			}
			co.submit(cl, f)
		}
	}
}

// submit admits or rejects one job submission. The enqueue decision and
// its announcement happen under the client's write lock, so accept and
// reject frames are ordered before any worker traffic for the job.
func (co *Coordinator) submit(cl *clientConn, f *wire.Frame) {
	spec, ok := f.Payload.(wire.JobSpec)
	reject := func(reason string) {
		co.Stats.Rejected.Add(1)
		cl.mu.Lock()
		defer cl.mu.Unlock()
		_ = wire.WriteFrame(cl.c, &wire.Frame{
			Kind: wire.FJobReject, Tag: f.Tag,
			Payload: wire.JobDecision{Reason: reason},
		})
	}
	if !ok {
		reject("svc: job frame carries no spec")
		return
	}
	if _, err := JobConfig(spec); err != nil {
		reject(err.Error())
		return
	}
	if c := co.maxCap.Load(); int64(spec.Procs) > c {
		reject(fmt.Sprintf("svc: no executor with %d ranks (max capacity %d)", spec.Procs, c))
		return
	}
	spec.ID = co.nextID.Add(1)
	j := &job{spec: spec, tag: f.Tag, cl: cl}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	select {
	case co.jobs <- j:
		co.Stats.Accepted.Add(1)
		_ = wire.WriteFrame(cl.c, &wire.Frame{
			Kind: wire.FJobAccept, Tag: f.Tag,
			Payload: wire.JobDecision{ID: spec.ID},
		})
		_ = wire.WriteFrame(cl.c, &wire.Frame{
			Kind: wire.FJobState, Tag: f.Tag,
			Payload: wire.JobProgress{ID: spec.ID, State: wire.JobQueued},
		})
	default:
		co.Stats.Rejected.Add(1)
		_ = wire.WriteFrame(cl.c, &wire.Frame{
			Kind: wire.FJobReject, Tag: f.Tag,
			Payload: wire.JobDecision{Reason: "svc: queue full"},
		})
	}
}

// finish delivers a job's result to its client and counts it.
func (co *Coordinator) finish(j *job, res wire.JobResult) {
	co.Stats.Completed.Add(1)
	if res.Err != "" {
		co.Stats.Failed.Add(1)
	}
	j.cl.send(&wire.Frame{Kind: wire.FJobResult, Tag: j.tag, Payload: res})
}

// localWorker drains the queue onto the local warm pool. One worker per
// slot: at most Slots jobs run concurrently, and slot acquisition
// inside Pool.Run enforces the per-rank exclusivity below that.
func (co *Coordinator) localWorker() {
	defer co.wg.Done()
	for {
		select {
		case <-co.quit:
			return
		case j := <-co.jobs:
			j.cl.send(&wire.Frame{Kind: wire.FJobState, Tag: j.tag,
				Payload: wire.JobProgress{ID: j.spec.ID, State: wire.JobRunning}})
			co.finish(j, co.pool.Run(j.spec))
		}
	}
}

// serveDaemon runs the coordinator side of an attached pool daemon:
// slots forwarder goroutines pull jobs and ship them over the
// connection; one reader routes results back to the waiting forwarder,
// which relays to the job's client. In-flight jobs are bounded by the
// daemon's declared slot count.
func (co *Coordinator) serveDaemon(c net.Conn, slots int) {
	if slots < 1 {
		return
	}
	if prev := co.maxCap.Load(); int64(slots) > prev {
		co.maxCap.Store(int64(slots))
	}
	var wmu sync.Mutex
	var pmu sync.Mutex
	pending := map[int64]chan wire.JobResult{}
	readerGone := make(chan struct{})

	var fwg sync.WaitGroup
	for i := 0; i < slots; i++ {
		fwg.Add(1)
		go func() {
			defer fwg.Done()
			for {
				var j *job
				select {
				case <-co.quit:
					return
				case <-readerGone:
					return
				case j = <-co.jobs:
				}
				done := make(chan wire.JobResult, 1)
				pmu.Lock()
				pending[j.spec.ID] = done
				pmu.Unlock()
				wmu.Lock()
				err := wire.WriteFrame(c, &wire.Frame{Kind: wire.FJob, Payload: j.spec})
				wmu.Unlock()
				if err != nil {
					co.finish(j, wire.JobResult{ID: j.spec.ID, Err: "svc: pool daemon unreachable"})
					return
				}
				j.cl.send(&wire.Frame{Kind: wire.FJobState, Tag: j.tag,
					Payload: wire.JobProgress{ID: j.spec.ID, State: wire.JobRunning}})
				select {
				case res := <-done:
					co.finish(j, res)
				case <-readerGone:
					co.finish(j, wire.JobResult{ID: j.spec.ID, Err: "svc: pool daemon died"})
					return
				}
				pmu.Lock()
				delete(pending, j.spec.ID)
				pmu.Unlock()
			}
		}()
	}
	for {
		f, err := wire.ReadFrame(c)
		if err != nil {
			if !errors.Is(err, io.EOF) && !co.isClosed() {
				// Daemon death mid-run: forwarders holding jobs fail them
				// via readerGone; queued jobs stay queued for other
				// executors. The pool survives its daemons.
				_ = err
			}
			close(readerGone)
			fwg.Wait()
			return
		}
		res, ok := f.Payload.(wire.JobResult)
		if f.Kind != wire.FJobResult || !ok {
			continue
		}
		pmu.Lock()
		done := pending[res.ID]
		pmu.Unlock()
		if done != nil {
			done <- res
		}
	}
}

func (co *Coordinator) isClosed() bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.closed
}
