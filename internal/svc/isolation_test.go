package svc

import (
	"sync"
	"testing"

	"sdsm/internal/harness"
	"sdsm/internal/wire"
)

// TestCrossJobIsolation interleaves many concurrent jobs of different
// shapes — different apps, rank counts, protocol modes — over one warm
// pool and demands every result match its solo run bit for bit. The
// per-job canary guard words in the arenas turn any cross-job memory
// bleed into a loud job failure (harness audits them after every run),
// and the checksum/virtual-time comparison catches logical bleed the
// guards cannot see. Run under -race in CI, this is also the service
// layer's race workout: slots are handed between concurrent jobs
// constantly.
func TestCrossJobIsolation(t *testing.T) {
	mix := []wire.JobSpec{
		{App: "jacobi", Set: "small", Procs: 4, Verify: true},
		{App: "spmv", Set: "small", Procs: 2, Verify: true, Scale: true},
		{App: "tsp", Set: "small", Procs: 3, Verify: true},
		{App: "jacobi", Set: "bound", Procs: 2, Verify: true, Adapt: true},
		{App: "gauss", Set: "small", Procs: 1, Verify: true},
	}
	// Solo references, computed on throwaway machines.
	solo := make([]*harness.Result, len(mix))
	for i, spec := range mix {
		cfg, err := JobConfig(spec)
		if err != nil {
			t.Fatal(err)
		}
		r, err := harness.Run(cfg)
		if err != nil {
			t.Fatalf("%s/%s solo: %v", spec.App, spec.Set, err)
		}
		solo[i] = r
	}

	_, cl := startService(t, Config{Slots: 8, QueueCap: 128})
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan string, rounds*len(mix))
	for r := 0; r < rounds; r++ {
		for i, spec := range mix {
			wg.Add(1)
			go func(i int, spec wire.JobSpec) {
				defer wg.Done()
				res, err := cl.Do(spec)
				if err != nil {
					errs <- spec.App + ": " + err.Error()
					return
				}
				if res.Err != "" {
					errs <- spec.App + ": " + res.Err
					return
				}
				if res.Checksum != solo[i].Checksum {
					errs <- spec.App + ": interleaved checksum differs from solo run"
				}
				if res.VirtualNS != int64(solo[i].Time) {
					errs <- spec.App + ": interleaved virtual time differs from solo run"
				}
			}(i, spec)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
