package svc

import (
	"fmt"
	"testing"

	"sdsm/internal/apps"
	"sdsm/internal/harness"
	"sdsm/internal/wire"
)

// startService spins up a coordinator with a local warm pool and a
// client connected to it, torn down with the test.
func startService(t *testing.T, cfg Config) (*Coordinator, *Client) {
	t.Helper()
	co, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	cl, err := Dial(co.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return co, cl
}

// mustDo submits one job and fails the test on rejection or job error.
func mustDo(t *testing.T, cl *Client, spec wire.JobSpec) wire.JobResult {
	t.Helper()
	res, err := cl.Do(spec)
	if err != nil {
		t.Fatalf("submit %s/%s: %v", spec.App, spec.Set, err)
	}
	if res.Err != "" {
		t.Fatalf("job %s/%s failed: %s", spec.App, spec.Set, res.Err)
	}
	return res
}

// checkBitIdentical asserts a pool job's result equals a fresh run's,
// field by field — the pool-vs-fresh equivalence discipline on the
// deterministic sim backend, where protocol stats and virtual time must
// match bit for bit, not just checksums.
func checkBitIdentical(t *testing.T, label string, got wire.JobResult, want *harness.Result) {
	t.Helper()
	if got.Checksum != want.Checksum {
		t.Errorf("%s: pool checksum %v != fresh %v", label, got.Checksum, want.Checksum)
	}
	if got.VirtualNS != int64(want.Time) {
		t.Errorf("%s: pool virtual time %d != fresh %d", label, got.VirtualNS, int64(want.Time))
	}
	if got.Msgs != want.Msgs || got.Bytes != want.Bytes {
		t.Errorf("%s: pool traffic %d msgs/%d bytes != fresh %d/%d", label, got.Msgs, got.Bytes, want.Msgs, want.Bytes)
	}
	if got.Segv != want.Segv {
		t.Errorf("%s: pool segv %d != fresh %d", label, got.Segv, want.Segv)
	}
	if got.DiffFetches != want.Protocol.DiffFetches {
		t.Errorf("%s: pool diff fetches %d != fresh %d", label, got.DiffFetches, want.Protocol.DiffFetches)
	}
	if got.Barriers != want.Protocol.Barriers || got.LockAcquires != want.Protocol.LockAcquires {
		t.Errorf("%s: pool sync counts %d barriers/%d acquires != fresh %d/%d",
			label, got.Barriers, got.LockAcquires, want.Protocol.Barriers, want.Protocol.LockAcquires)
	}
}

// TestPoolVsFreshEquivalence runs every registry application through
// the warm pool and demands the same answers a throwaway machine gives:
// on the sim backend, bit-identical checksums, protocol stats, and
// virtual times; through a one-shot `-backend=net` run, identical
// checksums (net scheduling makes stats and times wall-dependent, the
// same split TestBackendEquivalence draws). The pool is shared across
// the whole sweep, so each app also inherits the previous apps' warm
// state — reuse under changing layouts is part of the claim.
func TestPoolVsFreshEquivalence(t *testing.T) {
	_, cl := startService(t, Config{Slots: 4})
	for _, a := range apps.Registry() {
		spec := wire.JobSpec{App: a.Name, Set: "small", Procs: 4, Verify: true}
		fresh, err := harness.Run(harness.Config{App: a, Set: apps.Small, System: harness.Base, Procs: 4, Verify: true})
		if err != nil {
			t.Fatalf("%s: fresh sim run: %v", a.Name, err)
		}
		checkBitIdentical(t, a.Name+"/sim", mustDo(t, cl, spec), fresh)

		netSpec := spec
		netSpec.Backend = "net"
		freshNet, err := harness.Run(harness.Config{App: a, Set: apps.Small, System: harness.Base, Procs: 4, Verify: true, Backend: harness.BackendNet})
		if err != nil {
			t.Fatalf("%s: fresh net run: %v", a.Name, err)
		}
		poolNet := mustDo(t, cl, netSpec)
		if poolNet.Checksum != freshNet.Checksum {
			t.Errorf("%s/net: pool checksum %v != fresh %v", a.Name, poolNet.Checksum, freshNet.Checksum)
		}
	}
}

// TestPoolReuseResets is the back-to-back case: the same job run twice
// on the same warm slots must produce bit-identical results — arena,
// detector, and directory state fully reset between jobs — and the
// second run must actually reuse warm storage, not quietly reallocate.
// Adaptive and scale modes ride along: their detectors and directory
// arrays are exactly the state that would leak if reset were partial.
func TestPoolReuseResets(t *testing.T) {
	co, cl := startService(t, Config{Slots: 4})
	specs := []wire.JobSpec{
		{App: "jacobi", Set: "small", Procs: 4, Verify: true},
		{App: "jacobi", Set: "bound", Procs: 4, Verify: true, Adapt: true},
		{App: "spmv", Set: "small", Procs: 4, Verify: true, Scale: true},
	}
	for _, spec := range specs {
		cfg, err := JobConfig(spec)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := harness.Run(cfg)
		if err != nil {
			t.Fatalf("%s/%s: fresh run: %v", spec.App, spec.Set, err)
		}
		label := fmt.Sprintf("%s/%s", spec.App, spec.Set)
		checkBitIdentical(t, label+"/first", mustDo(t, cl, spec), fresh)
		checkBitIdentical(t, label+"/reused", mustDo(t, cl, spec), fresh)
	}
	// Warm inventory must exist after the jobs released their storage:
	// at least the data stores are back in the arenas' idle lists.
	warm := 0
	pool := co.LocalPool()
	for i := 0; i < pool.Slots(); i++ {
		data, pages, ints := pool.Arena(i).Idle()
		warm += data + pages + ints
		if loans := pool.Arena(i).Loans(); loans != 0 {
			t.Errorf("slot %d: %d data loans still outstanding after all jobs finished", i, loans)
		}
	}
	if warm == 0 {
		t.Fatal("no warm storage in any arena after the jobs — the pool is not actually reusing memory")
	}
}

// TestWarmDirectoryRankSubset pins the rank-subset fix: a pool job
// using fewer ranks than the previous tenant must not inherit stale
// owner hints. An 8-rank scale job seeds the slots' directory arrays
// with owners up to 7; the arrays are then additionally poisoned with
// an absurd rank so any missed re-initialization routes a fetch off the
// machine (a panic or a wrong result, not a quiet pass). A following
// 4-rank scale job must be bit-identical to a fresh 4-rank run.
func TestWarmDirectoryRankSubset(t *testing.T) {
	co, cl := startService(t, Config{Slots: 8})
	wide := wire.JobSpec{App: "spmv", Set: "small", Procs: 8, Verify: true, Scale: true}
	mustDo(t, cl, wide)

	// Poison every arena's idle int32 arrays with an out-of-range rank,
	// simulating a much wider previous tenant. TakeInt32 hands these
	// back raw; only EnableScale's mandatory -1 sweep stands between
	// this value and the fetch router.
	pool := co.LocalPool()
	for i := 0; i < pool.Slots(); i++ {
		ar := pool.Arena(i)
		var taken [][]int32
		for {
			_, _, ints := ar.Idle()
			if ints == 0 {
				break
			}
			s := ar.TakeInt32(1)
			s = s[:cap(s)]
			for k := range s {
				s[k] = 113 // rank 113 of a 4-rank machine
			}
			taken = append(taken, s)
		}
		for _, s := range taken {
			ar.RecycleInt32(s)
		}
	}

	narrow := wire.JobSpec{App: "spmv", Set: "small", Procs: 4, Verify: true, Scale: true}
	cfg, err := JobConfig(narrow)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := harness.Run(cfg)
	if err != nil {
		t.Fatalf("fresh 4-rank scale run: %v", err)
	}
	checkBitIdentical(t, "spmv/rank-subset", mustDo(t, cl, narrow), fresh)
}
