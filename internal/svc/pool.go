// Package svc is the DSM-as-a-service control plane: a warm pool of
// node slots that survives job completion, a coordinator that
// multiplexes many concurrent jobs over the pool, daemons that attach
// remote pools over the wire, and a client API to submit jobs and
// stream results.
//
// The serving story (DESIGN.md §13) sits strictly ON TOP of the DSM
// machine: a job is one harness.Config run, executed bit-identically to
// a one-shot run. What the pool adds is reuse and multiplexing, never
// protocol change:
//
//   - Each pool slot owns a vm.Arena of warm storage — address-space
//     backing stores, page buffers, directory arrays, all kept across
//     jobs. A job borrows the arenas of the slots it is scheduled on;
//     data stores are zeroed on loan (results stay bit-identical), page
//     buffers and int32 arrays are recycled raw under the vm package's
//     overwrite-before-read rules.
//
//   - Per-job isolation is enforced three ways: slots are exclusively
//     held for the job's duration (no shared mutable storage), every
//     data loan carries guard words filled with a per-job canary that
//     harness audits after the run (cross-job bleed fails the job, not
//     the pool), and the directory arrays are re-initialized per job so
//     a rank-subset job cannot inherit a wider job's stale owner hints.
//
//   - Admission control is a bounded queue: a submit either enters the
//     queue (FJobAccept) or is rejected immediately (FJobReject,
//     "queue full"); malformed specs are rejected per-job without
//     disturbing the connection or the pool.
//
// The wire protocol (frames FJob, FJobAccept, FJobReject, FJobState,
// FJobResult, FPoolHello) is versioned with the rest of package wire
// and fuzz-covered by the same corpus.
package svc

import (
	"fmt"
	"math"
	"sync"
	"time"

	"sdsm/internal/apps"
	"sdsm/internal/harness"
	"sdsm/internal/vm"
	"sdsm/internal/wire"
)

// Pool is a warm set of node slots living in one process. Slot i owns
// one vm.Arena; a job of p ranks exclusively holds p slots while it
// runs, then releases them warm for the next job. The pool never runs
// protocol code itself — it schedules harness runs onto its slots.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	free   []bool // slot i currently unowned
	nfree  int
	arenas []*vm.Arena // slot i's warm storage, owned by at most one job at a time
	n      int
}

// NewPool creates a pool of n warm slots.
func NewPool(n int) *Pool {
	p := &Pool{
		free:   make([]bool, n),
		nfree:  n,
		arenas: make([]*vm.Arena, n),
		n:      n,
	}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < n; i++ {
		p.arenas[i] = vm.NewArena()
		p.free[i] = true
	}
	return p
}

// Slots returns the pool size.
func (p *Pool) Slots() int { return p.n }

// Arena exposes slot i's arena, for tests that poison or inspect warm
// state between jobs.
func (p *Pool) Arena(i int) *vm.Arena { return p.arenas[i] }

// acquire takes n exclusive slots, blocking until n are free at once.
// All-or-nothing: a waiter holds no slots while it waits, so concurrent
// multi-slot jobs cannot deadlock on partially collected sets (each
// would otherwise grab a few slots and starve the rest forever). Taken
// slots are the lowest-numbered free ones, so rank→slot assignment is
// deterministic for a given free set.
func (p *Pool) acquire(n int) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.nfree < n {
		p.cond.Wait()
	}
	taken := make([]int, 0, n)
	for i := 0; i < p.n && len(taken) < n; i++ {
		if p.free[i] {
			p.free[i] = false
			taken = append(taken, i)
		}
	}
	p.nfree -= n
	return taken
}

// release returns slots to the free set and wakes every waiter: the
// freed capacity may complete any waiter's demand, and the all-or-
// nothing check is cheap to re-run.
func (p *Pool) release(taken []int) {
	p.mu.Lock()
	for _, s := range taken {
		p.free[s] = true
	}
	p.nfree += len(taken)
	p.mu.Unlock()
	p.cond.Broadcast()
}

// canaryFor derives a distinct, non-NaN guard canary for a job: a guard
// violation report names which job's loan was overrun. NaN is excluded
// by construction (high bits are a normal-range exponent) — a NaN
// canary would fail every audit, NaN never comparing equal.
func canaryFor(id int64) float64 {
	return math.Float64frombits(0x40C0FFEE00000000 | uint64(id)&0xFFFFFFFF)
}

// JobConfig validates a job spec and maps it to the harness
// configuration it denotes. Validation is the coordinator's admission
// check: an error here is a per-job rejection, never a pool fault.
func JobConfig(spec wire.JobSpec) (harness.Config, error) {
	var cfg harness.Config
	app, err := apps.ByName(spec.App)
	if err != nil {
		return cfg, err
	}
	set := apps.DataSet(spec.Set)
	if _, ok := app.Sets[set]; !ok {
		return cfg, fmt.Errorf("svc: app %q has no data set %q", spec.App, spec.Set)
	}
	sys := harness.SystemKind(spec.System)
	if sys == "" {
		sys = harness.Base
	}
	switch sys {
	case harness.Base, harness.Opt:
	default:
		return cfg, fmt.Errorf("svc: system %q is not a DSM system (pool jobs run tmk or opt-tmk)", spec.System)
	}
	be := harness.Backend(spec.Backend)
	switch be {
	case "", harness.BackendSim, harness.BackendReal, harness.BackendNet:
	default:
		return cfg, fmt.Errorf("svc: unknown backend %q", spec.Backend)
	}
	if spec.Procs < 1 || spec.Procs > 1024 {
		return cfg, fmt.Errorf("svc: procs %d out of range [1, 1024]", spec.Procs)
	}
	return harness.Config{
		App:     app,
		Set:     set,
		System:  sys,
		Procs:   int(spec.Procs),
		Backend: be,
		Verify:  spec.Verify,
		Adapt:   spec.Adapt,
		AdaptK:  int(spec.AdaptK),
		AdaptM:  int(spec.AdaptM),
		Scale:   spec.Scale,
	}, nil
}

// Run executes one job on the pool and reports its outcome as the wire
// result frame payload. Spec errors and run errors are carried in the
// result's Err — a job can fail; the pool cannot.
func (p *Pool) Run(spec wire.JobSpec) wire.JobResult {
	res := wire.JobResult{ID: spec.ID}
	cfg, err := JobConfig(spec)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if int(spec.Procs) > p.n {
		res.Err = fmt.Sprintf("svc: job wants %d ranks, pool has %d slots", spec.Procs, p.n)
		return res
	}
	taken := p.acquire(int(spec.Procs))
	defer p.release(taken)
	arenas := make([]*vm.Arena, len(taken))
	canary := canaryFor(spec.ID)
	for i, s := range taken {
		arenas[i] = p.arenas[s]
		arenas[i].SetCanary(canary)
	}
	cfg.Arenas = arenas
	start := time.Now()
	r, err := harness.Run(cfg)
	res.WallNS = int64(time.Since(start))
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Checksum = r.Checksum
	res.VirtualNS = int64(r.Time)
	res.Msgs = r.Msgs
	res.Bytes = r.Bytes
	res.Segv = r.Segv
	res.DiffFetches = r.Protocol.DiffFetches
	res.Barriers = r.Protocol.Barriers
	res.LockAcquires = r.Protocol.LockAcquires
	return res
}
