package svc

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"sdsm/internal/wire"
)

// RunPoolDaemon is the body of `sdsm-node -pool`: a long-lived node
// daemon that attaches a warm pool of the given slot count to a
// coordinator and executes the jobs dispatched to it until the
// connection closes or stop fires. The pool — its arenas and everything
// warm in them — survives every job; only daemon death discards it.
//
// The attach handshake is one FPoolHello frame with the slot count in
// Tag. After it, traffic is FJob in (spec with ID assigned) and
// FJobResult out, up to `slots` jobs in flight — the coordinator
// enforces the bound, the daemon just runs what arrives.
func RunPoolDaemon(network, addr string, slots int, stop <-chan struct{}) error {
	if slots < 1 {
		return fmt.Errorf("svc: pool daemon needs at least 1 slot, got %d", slots)
	}
	c, err := net.Dial(network, addr)
	if err != nil {
		return fmt.Errorf("svc: pool daemon dial: %w", err)
	}
	defer c.Close()
	if err := wire.WriteFrame(c, &wire.Frame{Kind: wire.FPoolHello, Tag: int32(slots)}); err != nil {
		return fmt.Errorf("svc: pool daemon hello: %w", err)
	}
	if stop != nil {
		go func() {
			<-stop
			c.Close() // unblocks the read loop
		}()
	}
	pool := NewPool(slots)
	var wmu sync.Mutex
	var wg sync.WaitGroup
	for {
		f, err := wire.ReadFrame(c)
		if err != nil {
			// Coordinator gone (or stop fired): drain in-flight jobs —
			// their results have nowhere to go, but the runs complete and
			// release their slots cleanly — then decide how we left. A
			// clean coordinator shutdown (EOF) is the daemon's documented
			// end of life, not an error.
			wg.Wait()
			select {
			case <-stop:
				return nil
			default:
			}
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("svc: pool daemon: coordinator connection lost: %w", err)
		}
		spec, ok := f.Payload.(wire.JobSpec)
		if f.Kind != wire.FJob || !ok {
			continue // not job traffic; ignore rather than die
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := pool.Run(spec)
			wmu.Lock()
			defer wmu.Unlock()
			_ = wire.WriteFrame(c, &wire.Frame{Kind: wire.FJobResult, Payload: res})
		}()
	}
}
