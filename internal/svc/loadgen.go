package svc

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sdsm/internal/wire"
)

// LoadConfig shapes one load-generator run against a coordinator.
type LoadConfig struct {
	// Jobs is the total number of jobs to complete.
	Jobs int
	// Concurrency is the number of in-flight submissions (client-side
	// open-loop width). <=0 means 8.
	Concurrency int
	// Mix is the set of job shapes, assigned round-robin by job index:
	// job i runs Mix[i%len(Mix)]. Spec IDs are assigned by the service.
	Mix []wire.JobSpec
}

// MixRow aggregates every completed job of one mix entry. The
// deterministic columns — Jobs, Checksum, VirtualNS, and their
// consistency across the entry's jobs — are what the Table D golden
// pins; wall-clock latency lives only in the report totals.
type MixRow struct {
	App       string
	Set       string
	System    string
	Procs     int32
	Jobs      int
	Errs      int
	Checksum  float64 // the entry's common checksum (first seen)
	VirtualNS int64   // the entry's common virtual time (first seen)
	// Consistent reports that every successful job of this entry returned
	// the same checksum and virtual time — the service-level statement of
	// the repo's equivalence discipline. Only meaningful for entries whose
	// backend is deterministic (sim); net entries pin checksum alone.
	Consistent bool
	// ChecksumOnly marks entries on a concurrency-dependent backend whose
	// virtual time is not expected to be reproducible; Consistent then
	// covers checksums only.
	ChecksumOnly bool
}

// LoadReport is the outcome of one load run: Table D's data.
type LoadReport struct {
	Jobs       int
	Errors     int   // jobs whose result carried Err
	Retries    int   // submissions re-tried after a queue-full rejection
	WallNS     int64 // whole-run wall clock
	P50NS      int64 // per-job submit→result latency percentiles
	P99NS      int64
	MeanNS     int64
	Throughput float64 // completed jobs per wall second
	Rows       []MixRow
	Accepted   int64 // coordinator counters, when available
	Rejected   int64
}

// RunLoad drives cfg.Jobs jobs through the client and aggregates
// Table D. Queue-full rejections back off and retry (the load generator
// is a patient client); any other rejection fails the run — it means
// the mix itself is invalid.
func RunLoad(cl *Client, cfg LoadConfig) (*LoadReport, error) {
	if len(cfg.Mix) == 0 {
		return nil, fmt.Errorf("svc: load mix is empty")
	}
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = 8
	}
	if conc > cfg.Jobs {
		conc = cfg.Jobs
	}
	type outcome struct {
		mix     int
		res     wire.JobResult
		wall    time.Duration
		retries int
	}
	outcomes := make([]outcome, cfg.Jobs)
	var firstErr error
	var errMu sync.Mutex
	idx := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errMu.Lock()
				failed := firstErr != nil
				errMu.Unlock()
				if failed {
					continue // drain the channel so the dispatcher never blocks
				}
				mi := i % len(cfg.Mix)
				t0 := time.Now()
				retries := 0
				var res wire.JobResult
				ok := true
				for {
					j, err := cl.Submit(cfg.Mix[mi])
					if err != nil {
						if strings.Contains(err.Error(), "queue full") {
							retries++
							time.Sleep(time.Duration(1+retries) * time.Millisecond)
							continue
						}
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						ok = false
						break
					}
					res = j.Wait()
					break
				}
				if ok {
					outcomes[i] = outcome{mix: mi, res: res, wall: time.Since(t0), retries: retries}
				}
			}
		}()
	}
	for i := 0; i < cfg.Jobs; i++ {
		errMu.Lock()
		failed := firstErr != nil
		errMu.Unlock()
		if failed {
			break
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	wall := time.Since(start)

	rep := &LoadReport{Jobs: cfg.Jobs, WallNS: int64(wall)}
	rows := make([]MixRow, len(cfg.Mix))
	for mi, spec := range cfg.Mix {
		sys := spec.System
		if sys == "" {
			sys = "tmk"
		}
		rows[mi] = MixRow{
			App: spec.App, Set: spec.Set, System: sys, Procs: spec.Procs,
			Consistent:   true,
			ChecksumOnly: spec.Backend != "" && spec.Backend != "sim",
		}
	}
	lats := make([]time.Duration, 0, cfg.Jobs)
	var latSum time.Duration
	for _, o := range outcomes {
		r := &rows[o.mix]
		r.Jobs++
		rep.Retries += o.retries
		lats = append(lats, o.wall)
		latSum += o.wall
		if o.res.Err != "" {
			rep.Errors++
			r.Errs++
			continue
		}
		if r.Jobs-r.Errs == 1 { // first success defines the entry's expected values
			r.Checksum, r.VirtualNS = o.res.Checksum, o.res.VirtualNS
			continue
		}
		if o.res.Checksum != r.Checksum {
			r.Consistent = false
		}
		if !r.ChecksumOnly && o.res.VirtualNS != r.VirtualNS {
			r.Consistent = false
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) int64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return int64(lats[i])
	}
	rep.P50NS, rep.P99NS = pct(0.50), pct(0.99)
	if len(lats) > 0 {
		rep.MeanNS = int64(latSum) / int64(len(lats))
	}
	if wall > 0 {
		rep.Throughput = float64(cfg.Jobs) / wall.Seconds()
	}
	rep.Rows = rows
	return rep, nil
}

// FormatTableD renders the service load table: the deterministic
// per-mix columns first, then the wall-clock service metrics. The
// deterministic half is also available alone (FormatTableDGolden) for
// golden pinning — wall latency is real time and never golden-pinned.
func FormatTableD(rep *LoadReport) string {
	var b strings.Builder
	b.WriteString(FormatTableDGolden(rep))
	fmt.Fprintf(&b, "\nservice: %d jobs in %v  p50 %v  p99 %v  mean %v  %.1f jobs/s  %d retries  %d errors\n",
		rep.Jobs, time.Duration(rep.WallNS).Round(time.Millisecond),
		time.Duration(rep.P50NS).Round(time.Microsecond),
		time.Duration(rep.P99NS).Round(time.Microsecond),
		time.Duration(rep.MeanNS).Round(time.Microsecond),
		rep.Throughput, rep.Retries, rep.Errors)
	return b.String()
}

// FormatTableDGolden renders only Table D's deterministic columns: mix
// shape, completed job count, per-entry checksum, per-entry virtual
// time (sim entries), and the consistency verdict. Byte-stable across
// runs, machines, and pool topologies — the svc golden test pins it.
func FormatTableDGolden(rep *LoadReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table D: DSM-as-a-service load mix (deterministic columns)\n")
	fmt.Fprintf(&b, "%-8s %-6s %-8s %5s %6s %6s %18s %14s %s\n",
		"app", "set", "system", "procs", "jobs", "errs", "checksum", "virtual", "consistent")
	for _, r := range rep.Rows {
		virt := fmt.Sprintf("%d", r.VirtualNS)
		if r.ChecksumOnly {
			virt = "-" // wall-scheduled backend: virtual time not reproducible
		}
		fmt.Fprintf(&b, "%-8s %-6s %-8s %5d %6d %6d %18.6f %14s %t\n",
			r.App, r.Set, r.System, r.Procs, r.Jobs, r.Errs, r.Checksum, virt, r.Consistent)
	}
	return b.String()
}
