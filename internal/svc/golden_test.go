package svc

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sdsm/internal/wire"
)

var updateGolden = flag.Bool("update", false, "rewrite the Table D golden")

// TestTableDGolden pins Table D's deterministic columns: a fixed load
// mix through the warm pool must aggregate to byte-identical job
// counts, checksums, and virtual times on every machine and every pool
// topology (wall-clock latency is reported by FormatTableD but never
// pinned). The mix doubles as a miniature of the CI load smoke: mixed
// apps, mixed rank counts, protocol modes on and off.
func TestTableDGolden(t *testing.T) {
	_, cl := startService(t, Config{Slots: 8, QueueCap: 64})
	rep, err := RunLoad(cl, LoadConfig{
		Jobs:        24,
		Concurrency: 6,
		Mix: []wire.JobSpec{
			{App: "jacobi", Set: "small", Procs: 2, Verify: true},
			{App: "spmv", Set: "small", Procs: 4, Verify: true, Scale: true},
			{App: "tsp", Set: "small", Procs: 2, Verify: true},
			{App: "jacobi", Set: "bound", Procs: 2, Verify: true, Adapt: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		if !r.Consistent {
			t.Errorf("%s/%s: jobs disagree on checksum or virtual time", r.App, r.Set)
		}
	}
	if rep.Errors != 0 {
		t.Fatalf("%d job errors in the golden mix", rep.Errors)
	}
	got := FormatTableDGolden(rep)
	path := filepath.Join("testdata", "tabled.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("Table D deterministic columns drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}
