package svc

import (
	"net"
	"strings"
	"testing"
	"time"

	"sdsm/internal/wire"
)

// TestMalformedSubmitRejected pins the admission contract: a
// well-formed frame carrying a nonsense job is rejected per-job — the
// connection stays usable and the pool keeps serving — and raw garbage
// that does not decode as a frame costs only that connection.
func TestMalformedSubmitRejected(t *testing.T) {
	co, cl := startService(t, Config{Slots: 2})

	bad := []struct {
		spec   wire.JobSpec
		reason string
	}{
		{wire.JobSpec{App: "nope", Set: "small", Procs: 2}, "unknown application"},
		{wire.JobSpec{App: "jacobi", Set: "galactic", Procs: 2}, "no data set"},
		{wire.JobSpec{App: "jacobi", Set: "small", Procs: 0}, "out of range"},
		{wire.JobSpec{App: "jacobi", Set: "small", Procs: 2, System: "pvme"}, "not a DSM system"},
		{wire.JobSpec{App: "jacobi", Set: "small", Procs: 2, Backend: "carrier-pigeon"}, "unknown backend"},
		{wire.JobSpec{App: "jacobi", Set: "small", Procs: 64}, "no executor"},
	}
	for _, c := range bad {
		_, err := cl.Submit(c.spec)
		if err == nil {
			t.Fatalf("spec %+v: accepted, want rejection", c.spec)
		}
		if !strings.Contains(err.Error(), c.reason) {
			t.Errorf("spec %+v: rejection %q does not mention %q", c.spec, err, c.reason)
		}
	}
	// The same connection must still run real work after every rejection.
	mustDo(t, cl, wire.JobSpec{App: "jacobi", Set: "small", Procs: 2, Verify: true})

	// Raw garbage: not a frame at all. The coordinator closes the
	// connection and nothing else.
	network, addr := co.Addr()
	raw, err := net.Dial(network, addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Error("garbage connection still open, want close")
	}
	raw.Close()

	// And the pool survived: a fresh client still gets service.
	cl2, err := Dial(co.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	mustDo(t, cl2, wire.JobSpec{App: "jacobi", Set: "small", Procs: 2, Verify: true})

	if rej := co.Stats.Rejected.Load(); rej != int64(len(bad)) {
		t.Errorf("rejected counter %d, want %d", rej, len(bad))
	}
}

// TestQueueFullRejected pins the bounded queue: with the only executor
// wedged mid-job and the one queue slot filled, the next submit is
// rejected immediately with "queue full" — admission control, not
// unbounded buffering. A fake daemon plays the wedged executor so the
// sequencing is deterministic.
func TestQueueFullRejected(t *testing.T) {
	co, err := Start(Config{Slots: 0, QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	network, addr := co.Addr()

	// Attach a 1-slot daemon that accepts a dispatch and sits on it.
	dc, err := net.Dial(network, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	if err := wire.WriteFrame(dc, &wire.Frame{Kind: wire.FPoolHello, Tag: 1}); err != nil {
		t.Fatal(err)
	}

	cl, err := Dial(network, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	spec := wire.JobSpec{App: "jacobi", Set: "small", Procs: 1}

	// Job 1: accepted and dispatched to the wedged daemon. The hello is
	// in flight when we first submit, so capacity rejections retry until
	// the attach lands. Reading the dispatch frame synchronizes: after
	// it, the queue is empty and the daemon's only slot is busy.
	var j1 *Job
	for i := 0; ; i++ {
		j1, err = cl.Submit(spec)
		if err == nil {
			break
		}
		if i > 500 || !strings.Contains(err.Error(), "no executor") {
			t.Fatalf("job 1: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	df, err := wire.ReadFrame(dc)
	if err != nil || df.Kind != wire.FJob {
		t.Fatalf("daemon dispatch: frame %v err %v", df, err)
	}
	// Job 2: accepted into the single queue slot.
	if _, err := cl.Submit(spec); err != nil {
		t.Fatalf("job 2: %v", err)
	}
	// Job 3: queue full, rejected.
	if _, err := cl.Submit(spec); err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("job 3: err %v, want queue-full rejection", err)
	}
	// Unwedge: answer job 1 so shutdown is clean.
	ds := df.Payload.(wire.JobSpec)
	if err := wire.WriteFrame(dc, &wire.Frame{Kind: wire.FJobResult, Payload: wire.JobResult{ID: ds.ID}}); err != nil {
		t.Fatal(err)
	}
	j1.Wait()
}

// TestPoolDaemonE2E runs jobs through a real daemon: coordinator with
// no local pool, RunPoolDaemon attached over the wire, results
// bit-identical to local-pool runs of the same specs.
func TestPoolDaemonE2E(t *testing.T) {
	co, err := Start(Config{Slots: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	network, addr := co.Addr()
	stop := make(chan struct{})
	derr := make(chan error, 1)
	go func() { derr <- RunPoolDaemon(network, addr, 4, stop) }()

	cl, err := Dial(network, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Daemon attach races the first submit; capacity-based rejection
	// retries briefly until the hello lands.
	spec := wire.JobSpec{App: "jacobi", Set: "small", Procs: 4, Verify: true}
	var res wire.JobResult
	for i := 0; ; i++ {
		res, err = cl.Do(spec)
		if err == nil {
			break
		}
		if i > 100 || !strings.Contains(err.Error(), "no executor") {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if res.Err != "" {
		t.Fatalf("daemon job failed: %s", res.Err)
	}

	// Same spec through a local pool for the reference.
	co2, cl2 := startService(t, Config{Slots: 4})
	_ = co2
	ref := mustDo(t, cl2, spec)
	if res.Checksum != ref.Checksum || res.VirtualNS != ref.VirtualNS {
		t.Errorf("daemon result (%v, %d) != local pool result (%v, %d)",
			res.Checksum, res.VirtualNS, ref.Checksum, ref.VirtualNS)
	}

	// Back-to-back on the daemon's warm pool: still bit-identical.
	res2, err := cl.Do(spec)
	if err != nil || res2.Err != "" {
		t.Fatalf("daemon reuse job: %v %s", err, res2.Err)
	}
	if res2.Checksum != ref.Checksum || res2.VirtualNS != ref.VirtualNS {
		t.Errorf("daemon warm rerun (%v, %d) != reference (%v, %d)",
			res2.Checksum, res2.VirtualNS, ref.Checksum, ref.VirtualNS)
	}

	close(stop)
	if err := <-derr; err != nil {
		t.Errorf("daemon exit: %v", err)
	}
}
