package svc

import (
	"fmt"
	"net"
	"sync"

	"sdsm/internal/wire"
)

// Client is one connection to a coordinator. It multiplexes any number
// of concurrent submissions: each submit carries a connection-local
// nonce the coordinator echoes on the accept/reject verdict, and every
// later frame about the job carries both the nonce and the job ID.
// Safe for concurrent use.
type Client struct {
	c   net.Conn
	wmu sync.Mutex // serializes submit frames

	mu      sync.Mutex
	nextTag int32
	pending map[int32]*Job // submitted, verdict not yet read
	active  map[int64]*Job // accepted, result not yet read
	err     error          // sticky: the reader's exit cause
	done    chan struct{}  // closed when the reader exits
}

// Job is one accepted submission.
type Job struct {
	ID   int64
	Spec wire.JobSpec

	decided chan struct{} // accept or reject read
	reason  string        // non-empty: rejected
	state   chan byte     // progress updates, latest-wins
	result  chan wire.JobResult
}

// Dial connects to a coordinator (address from Coordinator.Addr).
func Dial(network, addr string) (*Client, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("svc: dial coordinator: %w", err)
	}
	cl := &Client{
		c:       c,
		pending: map[int32]*Job{},
		active:  map[int64]*Job{},
		done:    make(chan struct{}),
	}
	go cl.reader()
	return cl, nil
}

// Close severs the connection. In-flight jobs fail with the close.
func (cl *Client) Close() error {
	err := cl.c.Close()
	<-cl.done
	return err
}

// reader demultiplexes coordinator frames: verdicts route by nonce,
// progress and results by job ID. It owns the pending/active maps'
// mutations past submission, so verdict routing can atomically promote
// a pending job to active before any later frame about it is read —
// frames for one job are ordered on the wire.
func (cl *Client) reader() {
	defer close(cl.done)
	for {
		f, err := wire.ReadFrame(cl.c)
		if err != nil {
			cl.mu.Lock()
			cl.err = fmt.Errorf("svc: coordinator connection lost: %w", err)
			for tag, j := range cl.pending {
				delete(cl.pending, tag)
				j.reason = cl.err.Error()
				close(j.decided)
			}
			for id, j := range cl.active {
				delete(cl.active, id)
				j.result <- wire.JobResult{ID: j.ID, Err: cl.err.Error()}
			}
			cl.mu.Unlock()
			return
		}
		switch f.Kind {
		case wire.FJobAccept:
			d, ok := f.Payload.(wire.JobDecision)
			if !ok {
				continue
			}
			cl.mu.Lock()
			if j := cl.pending[f.Tag]; j != nil {
				delete(cl.pending, f.Tag)
				j.ID = d.ID
				cl.active[d.ID] = j
				close(j.decided)
			}
			cl.mu.Unlock()
		case wire.FJobReject:
			d, ok := f.Payload.(wire.JobDecision)
			if !ok {
				continue
			}
			cl.mu.Lock()
			if j := cl.pending[f.Tag]; j != nil {
				delete(cl.pending, f.Tag)
				j.reason = d.Reason
				close(j.decided)
			}
			cl.mu.Unlock()
		case wire.FJobState:
			p, ok := f.Payload.(wire.JobProgress)
			if !ok {
				continue
			}
			cl.mu.Lock()
			j := cl.active[p.ID]
			cl.mu.Unlock()
			if j != nil {
				// Latest-wins: drop the stale update if the consumer lags.
				select {
				case j.state <- p.State:
				default:
					select {
					case <-j.state:
					default:
					}
					select {
					case j.state <- p.State:
					default:
					}
				}
			}
		case wire.FJobResult:
			r, ok := f.Payload.(wire.JobResult)
			if !ok {
				continue
			}
			cl.mu.Lock()
			j := cl.active[r.ID]
			delete(cl.active, r.ID)
			cl.mu.Unlock()
			if j != nil {
				j.result <- r
			}
		}
	}
}

// Submit sends one job and waits for the coordinator's admission
// verdict: an accepted *Job to wait on, or the rejection reason as an
// error. Rejection is a per-job verdict — the client stays usable.
func (cl *Client) Submit(spec wire.JobSpec) (*Job, error) {
	j := &Job{
		Spec:    spec,
		decided: make(chan struct{}),
		state:   make(chan byte, 1),
		result:  make(chan wire.JobResult, 1),
	}
	cl.mu.Lock()
	if cl.err != nil {
		err := cl.err
		cl.mu.Unlock()
		return nil, err
	}
	cl.nextTag++
	tag := cl.nextTag
	cl.pending[tag] = j
	cl.mu.Unlock()

	cl.wmu.Lock()
	err := wire.WriteFrame(cl.c, &wire.Frame{Kind: wire.FJob, Tag: tag, Payload: spec})
	cl.wmu.Unlock()
	if err != nil {
		cl.mu.Lock()
		delete(cl.pending, tag)
		cl.mu.Unlock()
		return nil, fmt.Errorf("svc: submit: %w", err)
	}
	<-j.decided
	if j.reason != "" {
		return nil, fmt.Errorf("svc: job rejected: %s", j.reason)
	}
	return j, nil
}

// State drains the latest progress update, if any (wire.JobQueued,
// wire.JobRunning), without blocking.
func (j *Job) State() (byte, bool) {
	select {
	case s := <-j.state:
		return s, true
	default:
		return 0, false
	}
}

// Wait blocks until the job's result frame arrives. A job that failed
// (or whose coordinator vanished) reports through the result's Err.
func (j *Job) Wait() wire.JobResult {
	return <-j.result
}

// Do submits a job and waits for its result.
func (cl *Client) Do(spec wire.JobSpec) (wire.JobResult, error) {
	j, err := cl.Submit(spec)
	if err != nil {
		return wire.JobResult{}, err
	}
	return j.Wait(), nil
}
