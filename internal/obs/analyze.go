package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Trace analyzer: reads a Chrome trace-event JSON produced by WriteTrace
// and derives the reports the sdsm-trace command prints — per-epoch
// critical path, top-N pages by faults, false-sharing suspects, and a
// lock-contention table. It works from the exported JSON (not the in-memory
// rings) so it can run on artifacts from other machines and CI runs.

type rawEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat"`
	Ph   string                 `json:"ph"`
	Tid  int                    `json:"tid"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur"`
	Args map[string]interface{} `json:"args"`
}

type rawTrace struct {
	TraceEvents []rawEvent             `json:"traceEvents"`
	OtherData   map[string]interface{} `json:"otherData"`
}

func argInt(e rawEvent, key string) int {
	if v, ok := e.Args[key].(float64); ok {
		return int(v)
	}
	return 0
}

// Analyze parses trace JSON and renders the full text report. topN bounds
// the pages-by-faults table.
func Analyze(data []byte, topN int) (string, error) {
	var tr rawTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		return "", fmt.Errorf("obs: parse trace: %w", err)
	}
	if topN <= 0 {
		topN = 10
	}
	var b strings.Builder
	if t, ok := tr.OtherData["timeline"].(string); ok {
		fmt.Fprintf(&b, "timeline: %s\n", t)
	}
	criticalPath(&b, tr.TraceEvents)
	topPages(&b, tr.TraceEvents, topN)
	falseSharing(&b, tr.TraceEvents)
	lockContention(&b, tr.TraceEvents)
	return b.String(), nil
}

// criticalPath reports, for every barrier epoch, the last-arriving node
// (the epoch's critical path runs through it), the arrival spread, the
// maximum wait, and what the critical node spent its pre-arrival window on
// (fault service and lock waiting), read off its slices.
func criticalPath(b *strings.Builder, evs []rawEvent) {
	type arr struct {
		tid int
		ts  float64 // arrive
		dur float64 // wait
	}
	byEpoch := map[int][]arr{}
	prevDepart := map[int]map[int]float64{} // epoch → tid → depart ts
	for _, e := range evs {
		if e.Ph == "X" && e.Name == "barrier" {
			ep := argInt(e, "epoch")
			byEpoch[ep] = append(byEpoch[ep], arr{e.Tid, e.Ts, e.Dur})
			if prevDepart[ep] == nil {
				prevDepart[ep] = map[int]float64{}
			}
			prevDepart[ep][e.Tid] = e.Ts + e.Dur
		}
	}
	if len(byEpoch) == 0 {
		fmt.Fprintf(b, "\ncritical path: no barrier epochs in trace\n")
		return
	}
	epochs := make([]int, 0, len(byEpoch))
	for ep := range byEpoch {
		epochs = append(epochs, ep)
	}
	sort.Ints(epochs)
	fmt.Fprintf(b, "\ncritical path (per barrier epoch):\n")
	fmt.Fprintf(b, "  %-6s %-5s %12s %12s %12s %12s %7s\n",
		"epoch", "crit", "wait-us", "spread-us", "fault-us", "lockwait-us", "serves")
	for _, ep := range epochs {
		as := byEpoch[ep]
		sort.Slice(as, func(i, j int) bool { return as[i].tid < as[j].tid })
		crit, minTs, maxTs := as[0], as[0].ts, as[0].ts
		for _, a := range as[1:] {
			if a.ts > maxTs {
				maxTs = a.ts
				crit = a
			}
			if a.ts < minTs {
				minTs = a.ts
			}
		}
		// The critical node's window: from its previous-epoch departure (or
		// trace start) to this arrival. Sum what it did there.
		wstart := 0.0
		if d, ok := prevDepart[ep-1][crit.tid]; ok {
			wstart = d
		}
		var faultUS, lockUS float64
		serves := 0
		for _, e := range evs {
			if e.Tid != crit.tid || e.Ph != "X" || e.Ts < wstart || e.Ts >= crit.ts {
				continue
			}
			switch e.Name {
			case "fault":
				faultUS += e.Dur
			case "lock wait":
				lockUS += e.Dur
			case "serve":
				serves++
			}
		}
		fmt.Fprintf(b, "  %-6d %-5d %12.3f %12.3f %12.3f %12.3f %7d\n",
			ep, crit.tid, crit.dur, maxTs-minTs, faultUS, lockUS, serves)
	}
}

// topPages reports the pages with the most fault slices and their total
// service time.
func topPages(b *strings.Builder, evs []rawEvent, topN int) {
	type pstat struct {
		page   int
		faults int
		us     float64
	}
	m := map[int]*pstat{}
	for _, e := range evs {
		if e.Ph == "X" && e.Name == "fault" {
			p := argInt(e, "page")
			s := m[p]
			if s == nil {
				s = &pstat{page: p}
				m[p] = s
			}
			s.faults++
			s.us += e.Dur
		}
	}
	fmt.Fprintf(b, "\ntop pages by faults:\n")
	if len(m) == 0 {
		fmt.Fprintf(b, "  (no fault events in trace)\n")
		return
	}
	ps := make([]*pstat, 0, len(m))
	for _, s := range m {
		ps = append(ps, s)
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].faults != ps[j].faults {
			return ps[i].faults > ps[j].faults
		}
		return ps[i].page < ps[j].page
	})
	if len(ps) > topN {
		ps = ps[:topN]
	}
	fmt.Fprintf(b, "  %-8s %8s %14s\n", "page", "faults", "service-us")
	for _, s := range ps {
		fmt.Fprintf(b, "  %-8d %8d %14.3f\n", s.page, s.faults, s.us)
	}
}

// falseSharing flags pages written by two or more nodes whose write extents
// (from write-notice events) are pairwise disjoint: the writers never touch
// the same bytes, so the coherence traffic on the page is pure false
// sharing — a k-writer stripe or sub-page binding candidate.
func falseSharing(b *strings.Builder, evs []rawEvent) {
	type ext struct{ lo, hi, n int }
	pages := map[int]map[int]*ext{} // page → tid → extent union
	for _, e := range evs {
		if e.Ph != "i" || e.Name != "notice" {
			continue
		}
		p, lo, hi := argInt(e, "page"), argInt(e, "lo"), argInt(e, "hi")
		if pages[p] == nil {
			pages[p] = map[int]*ext{}
		}
		x := pages[p][e.Tid]
		if x == nil {
			pages[p][e.Tid] = &ext{lo, hi, 1}
			continue
		}
		if lo < x.lo {
			x.lo = lo
		}
		if hi > x.hi {
			x.hi = hi
		}
		x.n++
	}
	fmt.Fprintf(b, "\nfalse-sharing suspects (multi-writer pages, disjoint extents):\n")
	var suspects []int
	for p, writers := range pages {
		if len(writers) < 2 {
			continue
		}
		tids := make([]int, 0, len(writers))
		for tid := range writers {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		disjoint := true
		for i := 0; i < len(tids) && disjoint; i++ {
			for j := i + 1; j < len(tids); j++ {
				a, c := writers[tids[i]], writers[tids[j]]
				if a.lo < c.hi && c.lo < a.hi {
					disjoint = false
					break
				}
			}
		}
		if disjoint {
			suspects = append(suspects, p)
		}
	}
	if len(suspects) == 0 {
		fmt.Fprintf(b, "  (none)\n")
		return
	}
	sort.Ints(suspects)
	for _, p := range suspects {
		writers := pages[p]
		tids := make([]int, 0, len(writers))
		for tid := range writers {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		fmt.Fprintf(b, "  page %d:", p)
		for _, tid := range tids {
			x := writers[tid]
			fmt.Fprintf(b, " node%d[%d,%d)x%d", tid, x.lo, x.hi, x.n)
		}
		fmt.Fprintf(b, "\n")
	}
}

// lockContention tabulates per-lock wait and grant activity.
func lockContention(b *strings.Builder, evs []rawEvent) {
	type lstat struct {
		lock                 int
		waits                int
		waitUS, maxUS        float64
		grants, piggy, bytes int
	}
	m := map[int]*lstat{}
	get := func(l int) *lstat {
		s := m[l]
		if s == nil {
			s = &lstat{lock: l}
			m[l] = s
		}
		return s
	}
	for _, e := range evs {
		switch {
		case e.Ph == "X" && e.Name == "lock wait":
			s := get(argInt(e, "lock"))
			s.waits++
			s.waitUS += e.Dur
			if e.Dur > s.maxUS {
				s.maxUS = e.Dur
			}
		case e.Ph == "X" && e.Name == "lock grant":
			s := get(argInt(e, "lock"))
			s.grants++
			s.bytes += argInt(e, "bytes")
			if argInt(e, "pushed") > 0 {
				s.piggy++
			}
		}
	}
	fmt.Fprintf(b, "\nlock contention:\n")
	if len(m) == 0 {
		fmt.Fprintf(b, "  (no lock events in trace)\n")
		return
	}
	ls := make([]*lstat, 0, len(m))
	for _, s := range m {
		ls = append(ls, s)
	}
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].waitUS != ls[j].waitUS {
			return ls[i].waitUS > ls[j].waitUS
		}
		return ls[i].lock < ls[j].lock
	})
	fmt.Fprintf(b, "  %-8s %7s %12s %12s %7s %10s %10s\n",
		"lock", "waits", "wait-us", "max-us", "grants", "piggyback", "bytes")
	for _, s := range ls {
		fmt.Fprintf(b, "  %-8d %7d %12.3f %12.3f %7d %10d %10d\n",
			s.lock, s.waits, s.waitUS, s.maxUS, s.grants, s.piggy, s.bytes)
	}
}
