package obs

import (
	"bufio"
	"fmt"
	"io"
)

// Chrome trace-event JSON export (Perfetto-loadable). One track (tid) per
// DSM node under a single process; span events (fault service, barrier
// wait, lock wait, serve) become complete ("X") slices, point events become
// instants ("i"), and cross-node causality is drawn with flow arrows
// ("s"/"f") linking fetch request→serve and lock grant→acquire.
//
// The writer is hand-rolled with a fixed field order and integer-only
// timestamp formatting (µs with three fraction digits), so a sim-backend
// trace — whose wall clocks are pinned to zero and whose virtual clocks are
// deterministic — exports byte-identically run to run and can be pinned as
// a golden.
//
// Flow-arrow IDs are derived, not transmitted (the wire format is
// untouched): a fetch flow is "F<requester>.<responder>.<seq>" where seq is
// a per-direction pair counter — valid because the host contract delivers a
// pair's requests in order and tmk's diff server is the only Server, so the
// k-th request from q to r is answered by the k-th serve r performs for q.
// A lock flow is "L<lock>.<grantSeq>" where grantSeq counts grants of that
// lock on the machine-shared lock structure; the acquirer reads the
// sequence after waking, before any later grant of the same lock can exist.

// WriteTrace exports the machine's rings as Chrome trace-event JSON.
func WriteTrace(w io.Writer, m *Machine) error {
	bw := bufio.NewWriter(w)
	timeline := "virtual"
	if !m.Virtual() {
		timeline = "wall"
	}
	fmt.Fprintf(bw, "{\"traceEvents\":[\n")
	fmt.Fprintf(bw, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"sdsm (%s timeline)\"}}", timeline)
	for i := range m.Nodes {
		fmt.Fprintf(bw, ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"node %d\"}}", i, i)
	}
	for i, t := range m.Nodes {
		for _, e := range t.Events() {
			writeEvent(bw, i, e, m.Virtual())
		}
	}
	fmt.Fprintf(bw, "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{\"timeline\":%q,\"dropped\":[", timeline)
	for i, t := range m.Nodes {
		if i > 0 {
			fmt.Fprintf(bw, ",")
		}
		fmt.Fprintf(bw, "%d", t.Dropped())
	}
	fmt.Fprintf(bw, "]}}\n")
	return bw.Flush()
}

// usec renders a nanosecond stamp as microseconds with fixed 3-digit
// fraction, using integer math only (float formatting would not be
// byte-stable across inputs).
func usec(ns int64) string {
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

func writeEvent(w *bufio.Writer, tid int, e Event, virtual bool) {
	ts, dur := e.VT, e.Dur
	if !virtual {
		ts, dur = e.WT, e.WDur
	}
	name := evNames[e.Kind]
	switch e.Kind {
	case EvFault:
		acc := "r"
		if e.A != 0 {
			acc = "w"
		}
		slice(w, tid, name, "mem", ts, dur, fmt.Sprintf("{\"page\":%d,\"acc\":%q}", e.Page, acc))
	case EvFetchReq:
		slice(w, tid, name, "diff", ts, 0, fmt.Sprintf("{\"page\":%d,\"to\":%d,\"pages\":%d}", e.Page, e.Peer, e.A))
		if e.Seq > 0 {
			flow(w, tid, "fetch", "s", fmt.Sprintf("F%d.%d.%d", tid, e.Peer, e.Seq), ts)
		}
	case EvServe:
		slice(w, tid, name, "diff", ts, dur, fmt.Sprintf("{\"page\":%d,\"req\":%d,\"diffs\":%d,\"bytes\":%d}", e.Page, e.Peer, e.A, e.B))
		if e.Seq > 0 {
			flow(w, tid, "fetch", "f", fmt.Sprintf("F%d.%d.%d", e.Peer, tid, e.Seq), ts)
		}
	case EvTwin:
		instant(w, tid, name, "mem", ts, fmt.Sprintf("{\"page\":%d}", e.Page))
	case EvDiff:
		instant(w, tid, name, "mem", ts, fmt.Sprintf("{\"page\":%d,\"words\":%d}", e.Page, e.A))
	case EvNotice:
		instant(w, tid, name, "sync", ts, fmt.Sprintf("{\"page\":%d,\"lo\":%d,\"hi\":%d,\"ivl\":%d}", e.Page, e.A, e.B, e.C))
	case EvBarArrive:
		instant(w, tid, name, "sync", ts, fmt.Sprintf("{\"bar\":%d,\"epoch\":%d}", e.A, e.B))
	case EvBarDepart:
		slice(w, tid, name, "sync", ts, dur, fmt.Sprintf("{\"bar\":%d,\"epoch\":%d}", e.A, e.B))
	case EvWSync:
		instant(w, tid, name, "sync", ts, fmt.Sprintf("{\"page\":%d,\"req\":%d,\"diffs\":%d}", e.Page, e.Peer, e.A))
	case EvLockAcq:
		slice(w, tid, name, "lock", ts, dur, fmt.Sprintf("{\"lock\":%d}", e.A))
		if e.Seq > 0 {
			flow(w, tid, "lock", "f", fmt.Sprintf("L%d.%d", e.A, e.Seq), ts+dur)
		}
	case EvLockGrant:
		slice(w, tid, name, "lock", ts, 0, fmt.Sprintf("{\"lock\":%d,\"to\":%d,\"bytes\":%d,\"pushed\":%d}", e.A, e.Peer, e.B, e.C))
		if e.Seq > 0 {
			flow(w, tid, "lock", "s", fmt.Sprintf("L%d.%d", e.A, e.Seq), ts)
		}
	case EvLockRel:
		instant(w, tid, name, "lock", ts, fmt.Sprintf("{\"lock\":%d}", e.A))
	case EvAdapt:
		what := [...]string{"promote", "split", "join", "decay"}[e.A]
		instant(w, tid, name, "adapt", ts, fmt.Sprintf("{\"page\":%d,\"what\":%q}", e.Page, what))
	case EvCkpt:
		instant(w, tid, name, "recovery", ts, fmt.Sprintf("{\"bytes\":%d,\"full\":%d,\"epoch\":%d}", e.A, e.B, e.C))
	case EvRecover:
		if e.A == 0 {
			instant(w, tid, name, "recovery", ts, fmt.Sprintf("{\"phase\":\"fail\",\"rank\":%d}", e.Peer))
		} else {
			slice(w, tid, name, "recovery", ts, dur, fmt.Sprintf("{\"phase\":\"restore\",\"rank\":%d}", e.Peer))
		}
	}
}

func slice(w *bufio.Writer, tid int, name, cat string, ts, dur int64, args string) {
	fmt.Fprintf(w, ",\n{\"name\":%q,\"cat\":%q,\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":%s}",
		name, cat, tid, usec(ts), usec(dur), args)
}

func instant(w *bufio.Writer, tid int, name, cat string, ts int64, args string) {
	fmt.Fprintf(w, ",\n{\"name\":%q,\"cat\":%q,\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"args\":%s}",
		name, cat, tid, usec(ts), args)
}

func flow(w *bufio.Writer, tid int, name, ph, id string, ts int64) {
	extra := ""
	if ph == "f" {
		extra = ",\"bp\":\"e\""
	}
	fmt.Fprintf(w, ",\n{\"name\":%q,\"cat\":\"flow\",\"ph\":%q,\"id\":%q%s,\"pid\":0,\"tid\":%d,\"ts\":%s}",
		name, ph, id, extra, tid, usec(ts))
}
