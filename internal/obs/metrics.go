package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// The unified metrics registry. Counters are atomic int64s; histograms have
// fixed bucket bounds chosen at registration, so observation never
// allocates. A Snapshot is the single reporting surface: the harness folds
// the protocol/VM/host/recovery aggregates into it after a run, commands
// print it through FormatSnapshot, and sdsm-node serves it as JSON.

// Counter is a monotonically increasing metric.
type Counter struct {
	v int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { atomic.AddInt64(&c.v, d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { atomic.AddInt64(&c.v, 1) }

// Value reads the counter.
func (c *Counter) Value() int64 { return atomic.LoadInt64(&c.v) }

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper limits ("le"); an implicit overflow bucket catches everything above
// the last bound. Observe is safe for concurrent use.
type Histogram struct {
	bounds []int64
	mu     sync.Mutex
	counts []int64 // len(bounds)+1; last is overflow
	sum    int64
	max    int64
	n      int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Standard bucket bounds. Shared by the pre-registered protocol histograms
// and documented in DESIGN.md §11 so trace consumers can rely on them.
var (
	// LatencyBounds covers virtual-time latencies in nanoseconds, 1µs–50ms.
	LatencyBounds = []int64{
		1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000,
		500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000, 50_000_000,
	}
	// ChainBounds covers diff chain lengths (diffs applied per fetched page).
	ChainBounds = []int64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}
	// ByteBounds covers message/grant sizes in bytes.
	ByteBounds = []int64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
)

// Registry holds named counters and histograms.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ctrs: map[string]*Counter{}, hists: map[string]*Histogram{}}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	c := r.ctrs[name]
	if c == nil {
		c = &Counter{}
		r.ctrs[name] = c
	}
	r.mu.Unlock()
	return c
}

// NewHistogram registers a histogram with the given bucket bounds, which
// must be sorted ascending. Registering an existing name returns the
// existing histogram.
func (r *Registry) NewHistogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
		r.hists[name] = h
	}
	r.mu.Unlock()
	return h
}

// HistSnap is a histogram's state in a Snapshot.
type HistSnap struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // len(Bounds)+1; last is overflow
	Sum    int64   `json:"sum"`
	Max    int64   `json:"max"`
	N      int64   `json:"n"`
}

// Quantile returns an upper-bound estimate for quantile q in [0,1]: the
// bucket bound at which the cumulative count reaches q·N (the recorded
// maximum for the overflow bucket). Returns 0 for an empty histogram.
func (h HistSnap) Quantile(q float64) int64 {
	if h.N == 0 {
		return 0
	}
	want := int64(q * float64(h.N))
	if want < 1 {
		want = 1
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= want {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Max
		}
	}
	return h.Max
}

// Snapshot is a point-in-time copy of a registry plus the folded run
// aggregates. Counters with value zero are omitted: a counter that never
// fired (adapt disabled, recovery off) should not clutter the dump, which
// reproduces the old conditional stat lines through data instead of code.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters"`
	Histograms map[string]HistSnap `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{Counters: map[string]int64{}, Histograms: map[string]HistSnap{}}
	r.mu.Lock()
	for name, c := range r.ctrs {
		if v := c.Value(); v != 0 {
			s.Counters[name] = v
		}
	}
	for name, h := range r.hists {
		h.mu.Lock()
		if h.n != 0 {
			s.Histograms[name] = HistSnap{
				Bounds: append([]int64(nil), h.bounds...),
				Counts: append([]int64(nil), h.counts...),
				Sum:    h.sum, Max: h.max, N: h.n,
			}
		}
		h.mu.Unlock()
	}
	r.mu.Unlock()
	return s
}

// Set stores a counter value into the snapshot (zero values are dropped,
// matching Registry.Snapshot's convention).
func (s *Snapshot) Set(name string, v int64) {
	if v != 0 {
		s.Counters[name] = v
	}
}

// NewSnapshot returns an empty snapshot for callers that fold aggregates
// without a live registry (untraced runs).
func NewSnapshot() *Snapshot {
	return &Snapshot{Counters: map[string]int64{}, Histograms: map[string]HistSnap{}}
}

// FormatSnapshot renders the snapshot as aligned "name value" lines,
// counters first (sorted), then one summary line per histogram. The output
// is deterministic; every command's stats dump goes through this one path.
func FormatSnapshot(s *Snapshot, indent string) string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	width := 0
	for name := range s.Counters {
		names = append(names, name)
		if len(name) > width {
			width = len(name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%s%-*s %d\n", indent, width+2, name, s.Counters[name])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "%s%s: n=%d sum=%d max=%d p50<=%d p90<=%d p99<=%d\n",
			indent, name, h.N, h.Sum, h.Max,
			h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99))
	}
	return b.String()
}
