// Package obs is the observability layer: a per-node, allocation-conscious
// protocol event tracer plus a unified metrics registry (counters and
// fixed-bucket histograms). It subsumes the formerly scattered reporting
// paths (tmk.ProtocolStats, adapt.Stats, host.Stats, tmk.RecoveryStats) with
// one snapshot type that every command prints through a single formatter.
//
// The tracer is a fixed-capacity ring of typed event records per node. When
// the ring fills, the oldest record is dropped and the drop is counted, so a
// bounded trace of the most recent protocol activity always survives. Every
// record carries both a virtual-clock stamp (the cost model's nanoseconds —
// deterministic on the sim backend) and a wall-clock stamp (zero on sim, so
// exported sim traces are byte-identical run to run).
//
// The whole layer is zero-cost when off: emit sites in the protocol are
// nil-pointer checks on a per-node tracer, no event storage is allocated,
// and no cost-model charges are issued by instrumentation (accounted bytes
// and virtual times are byte-identical with tracing on or off). DESIGN.md
// §11 states the contract.
package obs

import (
	"sync"
	"time"
)

// Kind identifies the protocol event a record describes.
type Kind uint8

// Event vocabulary (DESIGN.md §11). The comment after each kind names the
// emitting node and the meaning of the per-kind payload fields.
const (
	EvNone      Kind = iota
	EvFault          // faulting node: Page, A=access (0 read, 1 write); Dur = fault service time
	EvFetchReq       // requester: Page (first page), Peer = responder, A = pages requested, Seq = per-pair flow seq
	EvServe          // responder: Page, Peer = requester, A = diff chain length, B = reply bytes, Seq = per-pair flow seq
	EvTwin           // writing node: Page (twin created on first write)
	EvDiff           // diffing node: Page, A = non-zero words in the diff
	EvNotice         // releasing node: Page, A/B = write extent [lo,hi) in words, C = interval index
	EvBarArrive      // arriving node: A = barrier id, B = epoch
	EvBarDepart      // departing node: A = barrier id, B = epoch; Dur = wait (arrive→depart)
	EvWSync          // responder: Page, Peer = requester, A = diffs served on the wsync fetch
	EvLockAcq        // acquiring node: A = lock id; Dur = wait (request→grant applied); Seq links to the grant
	EvLockGrant      // granting node: A = lock id, Peer = new holder, B = grant bytes, C = piggybacked page spans, Seq = grant seq
	EvLockRel        // releasing node: A = lock id
	EvAdapt          // node 0 (transitions are machine-global): Page, A = transition (0 promote, 1 split, 2 join, 3 decay)
	EvCkpt           // checkpointing node: A = record bytes, B = 1 if a full record, C = epoch
	EvRecover        // surviving node: A = phase (0 fail detected, 1 restore done), Peer = failed rank; Dur = restore span
	evKinds          // count; keep last
)

// evNames maps kinds to the slice/instant names used in exported traces and
// parsed back by the analyzer.
var evNames = [evKinds]string{
	EvNone:      "none",
	EvFault:     "fault",
	EvFetchReq:  "fetch",
	EvServe:     "serve",
	EvTwin:      "twin",
	EvDiff:      "diff",
	EvNotice:    "notice",
	EvBarArrive: "barrier arrive",
	EvBarDepart: "barrier",
	EvWSync:     "wsync serve",
	EvLockAcq:   "lock wait",
	EvLockGrant: "lock grant",
	EvLockRel:   "lock release",
	EvAdapt:     "adapt",
	EvCkpt:      "checkpoint",
	EvRecover:   "recover",
}

// Adapt transition codes carried in EvAdapt's A field.
const (
	AdaptPromote = 0
	AdaptSplit   = 1
	AdaptJoin    = 2
	AdaptDecay   = 3
)

// Event is one fixed-size trace record. VT is the virtual clock in
// nanoseconds (the cost model's time; deterministic on sim) and WT the wall
// clock in nanoseconds since the machine's trace epoch (always zero on the
// sim backend). Dur/WDur are durations in the respective domains for span
// events (fault service, serve, barrier wait, lock wait, restore), whose
// VT/WT stamp the span *start*. The meaning of
// Page, Peer, A, B, C, and Seq is per-kind; see the Kind constants.
type Event struct {
	VT   int64
	WT   int64
	Dur  int64
	WDur int64
	Page int32
	Peer int32
	A    int32
	B    int32
	C    int32
	Seq  int32
	Kind Kind
}

// NodeTracer collects events for one DSM node into a fixed ring. Emit is
// safe for concurrent use (protocol sections serialize emits on every
// backend, but wsync serves on the real backend run on the responder's
// behalf from another goroutine, and the -race suite hammers exactly that).
type NodeTracer struct {
	m  *Machine
	id int32

	mu      sync.Mutex
	ring    []Event
	start   int
	n       int
	dropped int64

	// Flow sequence counters for fetch request→serve arrows, one per peer
	// pair direction. fetchSeq[r] numbers requests this node sent to
	// responder r; serveSeq[q] numbers serves this node answered for
	// requester q. Serves are FIFO per pair (the host contract delivers a
	// pair's requests in order and tmk's diff server is the only Server),
	// so the k-th request from q to r matches the k-th serve by r for q.
	fetchSeq []int32
	serveSeq []int32
}

// Machine is the per-run trace context: one NodeTracer per node, the wall
// clock source (nil on the sim backend, which pins WT to zero and makes the
// exported JSON deterministic), and the unified metrics registry with the
// core protocol histograms pre-registered so emit sites never allocate.
type Machine struct {
	Nodes []*NodeTracer
	Reg   *Registry

	// Core protocol histograms (fixed buckets; see DESIGN.md §11).
	FaultNS    *Histogram // fault service latency, virtual ns
	ChainLen   *Histogram // diff chain length per served page
	GrantBytes *Histogram // lock grant reply bytes
	BarrierNS  *Histogram // barrier wait (arrive→depart), virtual ns

	wall  func() int64 // nil ⇒ virtual timeline (sim)
	epoch time.Time
}

// NewMachine builds a trace context for n nodes with the given per-node
// ring capacity. wall=true selects the wall-clock timeline (real and net
// backends); wall=false pins WT to zero for deterministic sim traces.
func NewMachine(n, cap int, wall bool) *Machine {
	if cap <= 0 {
		cap = DefaultRingCap
	}
	m := &Machine{Reg: NewRegistry()}
	m.FaultNS = m.Reg.NewHistogram("fault.service.ns", LatencyBounds)
	m.ChainLen = m.Reg.NewHistogram("serve.chain.len", ChainBounds)
	m.GrantBytes = m.Reg.NewHistogram("grant.bytes", ByteBounds)
	m.BarrierNS = m.Reg.NewHistogram("barrier.wait.ns", LatencyBounds)
	if wall {
		m.epoch = time.Now()
		m.wall = func() int64 { return int64(time.Since(m.epoch)) }
	}
	m.Nodes = make([]*NodeTracer, n)
	for i := range m.Nodes {
		m.Nodes[i] = &NodeTracer{
			m:        m,
			id:       int32(i),
			ring:     make([]Event, cap),
			fetchSeq: make([]int32, n),
			serveSeq: make([]int32, n),
		}
	}
	return m
}

// DefaultRingCap is the per-node event capacity when none is configured:
// large enough to hold every event of the experiment-table runs, small
// enough that an 8-node machine stays under a few MB.
const DefaultRingCap = 1 << 16

// Virtual reports whether the machine records on the virtual timeline
// (WT pinned to zero; sim backend).
func (m *Machine) Virtual() bool { return m.wall == nil }

// WallNow returns the wall stamp for an event emitted now: nanoseconds
// since the trace epoch, or 0 on the virtual timeline.
func (t *NodeTracer) WallNow() int64 {
	if t.m.wall == nil {
		return 0
	}
	return t.m.wall()
}

// Emit appends e to the ring, dropping (and counting) the oldest record on
// overflow. It never allocates.
func (t *NodeTracer) Emit(e Event) {
	t.mu.Lock()
	if t.n < len(t.ring) {
		t.ring[(t.start+t.n)%len(t.ring)] = e
		t.n++
	} else {
		t.ring[t.start] = e
		t.start = (t.start + 1) % len(t.ring)
		t.dropped++
	}
	t.mu.Unlock()
}

// NextFetchSeq returns the flow sequence number for this node's next fetch
// request to responder r (1-based; 0 means "no flow").
func (t *NodeTracer) NextFetchSeq(r int) int32 {
	t.mu.Lock()
	t.fetchSeq[r]++
	s := t.fetchSeq[r]
	t.mu.Unlock()
	return s
}

// NextServeSeq returns the flow sequence number for this node's next serve
// answered for requester q. Because serves are FIFO per pair, this equals
// the requester's NextFetchSeq for the matching request.
func (t *NodeTracer) NextServeSeq(q int) int32 {
	t.mu.Lock()
	t.serveSeq[q]++
	s := t.serveSeq[q]
	t.mu.Unlock()
	return s
}

// Dropped reports how many records this node's ring has discarded.
func (t *NodeTracer) Dropped() int64 {
	t.mu.Lock()
	d := t.dropped
	t.mu.Unlock()
	return d
}

// Len reports how many records the ring currently holds.
func (t *NodeTracer) Len() int {
	t.mu.Lock()
	n := t.n
	t.mu.Unlock()
	return n
}

// Events copies the ring's records oldest-first into a fresh slice.
func (t *NodeTracer) Events() []Event {
	t.mu.Lock()
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.ring[(t.start+i)%len(t.ring)]
	}
	t.mu.Unlock()
	return out
}
