package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// Ring wraparound must drop the oldest records and count every drop.
func TestRingWraparoundDropsOldest(t *testing.T) {
	m := NewMachine(1, 4, false)
	tr := m.Nodes[0]
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: EvFault, VT: int64(i)})
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("ring len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	evs := tr.Events()
	for i, e := range evs {
		if want := int64(6 + i); e.VT != want {
			t.Fatalf("event %d has VT %d, want %d (oldest must go first)", i, e.VT, want)
		}
	}
}

// Histogram boundaries are inclusive upper bounds; values above the last
// bound land in the overflow bucket; sum/max/n track exactly.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 101, 1000, 1001, 5000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	wantCounts := []int64{2, 2, 2, 2} // (..10], (10..100], (100..1000], overflow
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d count = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.N != 8 || s.Max != 5000 || s.Sum != 1+10+11+100+101+1000+1001+5000 {
		t.Fatalf("n=%d max=%d sum=%d", s.N, s.Max, s.Sum)
	}
	if q := s.Quantile(0.50); q != 100 {
		t.Fatalf("p50 = %d, want 100", q)
	}
	if q := s.Quantile(1.0); q != 5000 {
		t.Fatalf("p100 = %d, want max 5000", q)
	}
}

// Concurrent emits, counter adds, and histogram observes must be safe: the
// real backend serves wsync fetches from other nodes' goroutines, so the
// tracer sees genuine concurrency. Run under -race.
func TestConcurrentEmit(t *testing.T) {
	m := NewMachine(4, 64, true)
	c := m.Reg.Counter("c")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr := m.Nodes[g%4]
			for i := 0; i < 1000; i++ {
				tr.Emit(Event{Kind: EvServe, VT: int64(i), WT: tr.WallNow()})
				tr.NextServeSeq(g % 4)
				c.Inc()
				m.ChainLen.Observe(int64(i % 7))
			}
		}(g)
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	total := int64(0)
	for _, tr := range m.Nodes {
		total += int64(tr.Len()) + tr.Dropped()
	}
	if total != 8000 {
		t.Fatalf("kept+dropped = %d, want 8000", total)
	}
	s := m.Reg.Snapshot()
	if s.Histograms["serve.chain.len"].N != 8000 {
		t.Fatalf("hist n = %d, want 8000", s.Histograms["serve.chain.len"].N)
	}
}

// The exported JSON must be valid and carry every emitted record plus the
// per-node metadata; the analyzer must accept its own exporter's output.
func TestWriteTraceRoundTrip(t *testing.T) {
	m := NewMachine(2, 16, false)
	m.Nodes[0].Emit(Event{Kind: EvFault, VT: 1000, Dur: 500, Page: 3, A: 1})
	seq := m.Nodes[0].NextFetchSeq(1)
	m.Nodes[0].Emit(Event{Kind: EvFetchReq, VT: 1100, Page: 3, Peer: 1, A: 1, Seq: seq})
	m.Nodes[1].Emit(Event{Kind: EvServe, VT: 1200, Dur: 300, Page: 3, Peer: 0, A: 2, B: 128, Seq: m.Nodes[1].NextServeSeq(0)})
	m.Nodes[0].Emit(Event{Kind: EvBarArrive, VT: 2000, A: 9, B: 1})
	m.Nodes[0].Emit(Event{Kind: EvBarDepart, VT: 2000, Dur: 700, A: 9, B: 1})
	m.Nodes[1].Emit(Event{Kind: EvNotice, VT: 1900, Page: 3, A: 0, B: 64, C: 2})
	m.Nodes[0].Emit(Event{Kind: EvNotice, VT: 1900, Page: 3, A: 2048, B: 4096, C: 2})

	var buf bytes.Buffer
	if err := WriteTrace(&buf, m); err != nil {
		t.Fatal(err)
	}
	var parsed rawTrace
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 thread_name + 1 process_name metadata, 7 events, 2 flow events.
	if len(parsed.TraceEvents) != 12 {
		t.Fatalf("trace has %d events, want 12", len(parsed.TraceEvents))
	}

	rep, err := Analyze(buf.Bytes(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"critical path", "top pages by faults", "false-sharing suspects", "lock contention", "page 3:"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("analyzer report missing %q:\n%s", want, rep)
		}
	}
}

// FormatSnapshot output is sorted and stable.
func TestFormatSnapshot(t *testing.T) {
	s := NewSnapshot()
	s.Set("b.two", 2)
	s.Set("a.one", 1)
	s.Set("zero", 0) // dropped
	got := FormatSnapshot(s, "  ")
	want := "  a.one   1\n  b.two   2\n"
	if got != want {
		t.Fatalf("FormatSnapshot = %q, want %q", got, want)
	}
}
