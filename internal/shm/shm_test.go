package shm

import (
	"testing"
	"testing/quick"
)

func TestRegionBasics(t *testing.T) {
	r := Region{10, 20}
	if r.Words() != 10 || r.Bytes() != 80 || r.Empty() {
		t.Fatalf("region basics wrong: %+v", r)
	}
	if !(Region{5, 5}).Empty() {
		t.Fatal("zero-width region should be empty")
	}
}

func TestRegionIntersect(t *testing.T) {
	cases := []struct{ a, b, want Region }{
		{Region{0, 10}, Region{5, 15}, Region{5, 10}},
		{Region{0, 10}, Region{10, 20}, Region{10, 10}},
		{Region{0, 10}, Region{20, 30}, Region{20, 20}},
		{Region{5, 6}, Region{0, 100}, Region{5, 6}},
	}
	for _, c := range cases {
		got := c.a.Intersect(c.b)
		if got.Empty() != c.want.Empty() || (!got.Empty() && got != c.want) {
			t.Errorf("%v ∩ %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRegionPages(t *testing.T) {
	p0, p1 := (Region{0, PageWords}).Pages()
	if p0 != 0 || p1 != 1 {
		t.Fatalf("pages = %d..%d, want 0..1", p0, p1)
	}
	p0, p1 = (Region{PageWords - 1, PageWords + 1}).Pages()
	if p0 != 0 || p1 != 2 {
		t.Fatalf("pages = %d..%d, want 0..2", p0, p1)
	}
	p0, p1 = (Region{3, 3}).Pages()
	if p0 != p1 {
		t.Fatalf("empty region spans pages %d..%d", p0, p1)
	}
}

func TestNormalizeMerges(t *testing.T) {
	got := Normalize([]Region{{10, 20}, {0, 5}, {5, 10}, {30, 30}, {15, 25}})
	want := []Region{{0, 25}}
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("Normalize = %v, want %v", got, want)
	}
}

func TestIntersectSets(t *testing.T) {
	a := []Region{{0, 10}, {20, 30}}
	b := []Region{{5, 25}}
	got := IntersectSets(a, b)
	want := []Region{{5, 10}, {20, 25}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("IntersectSets = %v, want %v", got, want)
	}
}

func TestNormalizeProperties(t *testing.T) {
	// Property: after Normalize, regions are sorted, non-empty, and
	// non-adjacent, and the total word count covers exactly the union.
	f := func(raw []struct{ Lo, Len uint8 }) bool {
		var rs []Region
		covered := map[int]bool{}
		for _, x := range raw {
			r := Region{int(x.Lo), int(x.Lo) + int(x.Len%32)}
			rs = append(rs, r)
			for w := r.Lo; w < r.Hi; w++ {
				covered[w] = true
			}
		}
		norm := Normalize(rs)
		total := 0
		for i, r := range norm {
			if r.Empty() {
				return false
			}
			if i > 0 && norm[i-1].Hi >= r.Lo {
				return false
			}
			total += r.Words()
		}
		return total == len(covered)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectSetsProperty(t *testing.T) {
	// Property: word w is in IntersectSets(a, b) iff it is in both a and b.
	inSet := func(rs []Region, w int) bool {
		for _, r := range rs {
			if w >= r.Lo && w < r.Hi {
				return true
			}
		}
		return false
	}
	f := func(la, lb [4]struct{ Lo, Len uint8 }) bool {
		mk := func(l [4]struct{ Lo, Len uint8 }) []Region {
			var rs []Region
			for _, x := range l {
				rs = append(rs, Region{int(x.Lo), int(x.Lo) + int(x.Len%24)})
			}
			return Normalize(rs)
		}
		a, b := mk(la), mk(lb)
		x := IntersectSets(a, b)
		for w := 0; w < 300; w++ {
			if inSet(x, w) != (inSet(a, w) && inSet(b, w)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArrayIndexColumnMajor(t *testing.T) {
	l := NewLayout()
	a := l.Alloc("a", 100, 50)
	if a.Index(1, 1) != a.Base {
		t.Fatal("Index(1,1) must be Base")
	}
	if a.Index(2, 1) != a.Base+1 {
		t.Fatal("first dimension must be contiguous (column-major)")
	}
	if a.Index(1, 2) != a.Base+100 {
		t.Fatal("column stride must equal Dims[0]")
	}
	if got := a.Col(3, 2, 99); got.Words() != 98 {
		t.Fatalf("Col words = %d, want 98", got.Words())
	}
}

func TestLayoutPageAligned(t *testing.T) {
	l := NewLayout()
	a := l.Alloc("a", 10)
	b := l.Alloc("b", PageWords+1)
	c := l.Alloc("c", 7)
	if a.Base%PageWords != 0 || b.Base%PageWords != 0 || c.Base%PageWords != 0 {
		t.Fatalf("bases not page aligned: %d %d %d", a.Base, b.Base, c.Base)
	}
	if b.Base != PageWords {
		t.Fatalf("b.Base = %d, want %d", b.Base, PageWords)
	}
	if c.Base != 3*PageWords {
		t.Fatalf("c.Base = %d, want %d", c.Base, 3*PageWords)
	}
	if l.Pages() != 4 {
		t.Fatalf("layout pages = %d, want 4", l.Pages())
	}
}

func TestArrayWholeAndStride(t *testing.T) {
	l := NewLayout()
	a := l.Alloc("x", 8, 4, 3)
	if a.Words() != 96 {
		t.Fatalf("words = %d", a.Words())
	}
	if a.Stride(0) != 1 || a.Stride(1) != 8 || a.Stride(2) != 32 {
		t.Fatalf("strides = %d %d %d", a.Stride(0), a.Stride(1), a.Stride(2))
	}
	if a.Whole().Words() != 96 {
		t.Fatalf("whole = %v", a.Whole())
	}
	if a.Index(8, 4, 3) != a.Base+95 {
		t.Fatalf("last index = %d", a.Index(8, 4, 3))
	}
}

func TestIndexPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l := NewLayout()
	l.Alloc("a", 4, 4).Index(5, 1)
}
