// Package shm defines the shared address space layout used by the DSM:
// word-addressed memory (one word = one float64 = 8 bytes), 4 KB pages,
// and column-major (Fortran) arrays allocated page-aligned, mirroring the
// paper's shared_common block. Regions are half-open word ranges and are
// the currency in which sections, validates, pushes and protocol traffic
// are expressed.
package shm

import (
	"fmt"
	"sort"
)

const (
	// PageWords is the number of 8-byte words per page (4 KB pages).
	PageWords = 512
	// WordBytes is the size of one word in bytes.
	WordBytes = 8
)

// Region is a half-open range [Lo, Hi) of word addresses.
type Region struct {
	Lo, Hi int
}

// Words returns the number of words in r.
func (r Region) Words() int {
	if r.Hi <= r.Lo {
		return 0
	}
	return r.Hi - r.Lo
}

// Bytes returns the size of r in bytes.
func (r Region) Bytes() int { return r.Words() * WordBytes }

// Empty reports whether r contains no words.
func (r Region) Empty() bool { return r.Hi <= r.Lo }

// Intersect returns the overlap of r and s (possibly empty).
func (r Region) Intersect(s Region) Region {
	lo, hi := max(r.Lo, s.Lo), min(r.Hi, s.Hi)
	if hi < lo {
		hi = lo
	}
	return Region{lo, hi}
}

// Contains reports whether r fully covers s.
func (r Region) Contains(s Region) bool {
	return s.Empty() || (r.Lo <= s.Lo && s.Hi <= r.Hi)
}

// Pages returns the page index range [p0, p1) overlapped by r.
func (r Region) Pages() (p0, p1 int) {
	if r.Empty() {
		return 0, 0
	}
	return r.Lo / PageWords, (r.Hi + PageWords - 1) / PageWords
}

func (r Region) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// Normalize sorts regions, drops empties, and merges overlapping or
// adjacent ranges.
func Normalize(rs []Region) []Region {
	var out []Region
	for _, r := range rs {
		if !r.Empty() {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	merged := out[:0]
	for _, r := range out {
		if n := len(merged); n > 0 && r.Lo <= merged[n-1].Hi {
			if r.Hi > merged[n-1].Hi {
				merged[n-1].Hi = r.Hi
			}
			continue
		}
		merged = append(merged, r)
	}
	return merged
}

// IntersectSets returns the intersection of two normalized region sets.
func IntersectSets(a, b []Region) []Region {
	var out []Region
	for _, ra := range a {
		for _, rb := range b {
			if x := ra.Intersect(rb); !x.Empty() {
				out = append(out, x)
			}
		}
	}
	return Normalize(out)
}

// TotalWords sums the sizes of a region set.
func TotalWords(rs []Region) int {
	n := 0
	for _, r := range rs {
		n += r.Words()
	}
	return n
}

// Array is a column-major array in the shared address space. Indices are
// 1-based, following the Fortran programs in the paper.
type Array struct {
	Name string
	Base int   // word address of element (1,1,...)
	Dims []int // extent per dimension
}

// Words returns the total number of words in the array.
func (a *Array) Words() int {
	n := 1
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// Stride returns the distance in words between consecutive elements along
// dimension d (column-major: dimension 0 is contiguous).
func (a *Array) Stride(d int) int {
	s := 1
	for i := 0; i < d; i++ {
		s *= a.Dims[i]
	}
	return s
}

// Index returns the word address of the element with the given 1-based
// indices.
func (a *Array) Index(idx ...int) int {
	if len(idx) != len(a.Dims) {
		panic(fmt.Sprintf("shm: array %s has %d dims, got %d indices", a.Name, len(a.Dims), len(idx)))
	}
	addr := a.Base
	for d, i := range idx {
		if i < 1 || i > a.Dims[d] {
			panic(fmt.Sprintf("shm: index %d out of range [1,%d] in dim %d of %s", i, a.Dims[d], d, a.Name))
		}
		addr += (i - 1) * a.Stride(d)
	}
	return addr
}

// Col returns the region holding elements (lo..hi, j) of a 2-D array:
// a contiguous span within column j.
func (a *Array) Col(j, lo, hi int) Region {
	return Region{a.Index(lo, j), a.Index(hi, j) + 1}
}

// Whole returns the region covering the entire array.
func (a *Array) Whole() Region { return Region{a.Base, a.Base + a.Words()} }

// Layout allocates arrays in a single shared address space.
type Layout struct {
	arrays map[string]*Array
	order  []*Array
	words  int
}

// NewLayout returns an empty layout.
func NewLayout() *Layout { return &Layout{arrays: map[string]*Array{}} }

// Alloc adds a page-aligned array with the given dimensions.
func (l *Layout) Alloc(name string, dims ...int) *Array {
	if _, dup := l.arrays[name]; dup {
		panic("shm: duplicate array " + name)
	}
	a := &Array{Name: name, Base: l.words, Dims: append([]int(nil), dims...)}
	l.arrays[name] = a
	l.order = append(l.order, a)
	w := a.Words()
	w = (w + PageWords - 1) / PageWords * PageWords
	l.words += w
	return a
}

// Array looks up an array by name, panicking if absent.
func (l *Layout) Array(name string) *Array {
	a, ok := l.arrays[name]
	if !ok {
		panic("shm: unknown array " + name)
	}
	return a
}

// Arrays returns all arrays in allocation order.
func (l *Layout) Arrays() []*Array { return l.order }

// Words returns the total size of the address space in words.
func (l *Layout) Words() int { return l.words }

// Pages returns the total number of pages in the address space.
func (l *Layout) Pages() int { return (l.words + PageWords - 1) / PageWords }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
