package tmk

import (
	"math/bits"

	"sdsm/internal/wire"
)

// Distributed per-page ownership directory (DESIGN.md §12).
//
// The base protocol routes every diff fetch by write notices alone: the
// requester asks the noticed owners, so a page written by one node and
// read by many turns its writer into a serve hot spot — at 64 or 128
// nodes the writer answers one request per reader per epoch while
// everyone else answers none. Scale mode (EnableScale) adds an IVY-style
// dynamic manager per page, adapted to this protocol's "anyone who
// applied the chain can serve it" property:
//
//   - dirOwner[pg] is the requester-side probable owner — the last
//     writer as this node learned it (learnInterval), itself after a
//     local write (closeInterval/splitInterval), or whatever a
//     forwarding chain taught it (chaseRedirects).
//
//   - dirNext[pg] is the responder-side delegation: the node this
//     responder most recently shipped pg's chain to. A later request for
//     the page is answered with a redirect to that delegate instead of a
//     payload, and the delegation moves to the new requester — so the
//     k-th reader of a hot page is served by the (k-1)-th, spreading the
//     serve load across the reader chain while the writer answers one
//     payload plus cheap redirects. Every new write or learned notice
//     clears the delegation (the delegate's copy is stale for the new
//     interval).
//
// Forwarding is requester-driven: serve handlers run under the
// machine-wide protocol token and must never issue requests of their own
// (an in-handler forward would deadlock), so the responder only returns
// the hint and the requester follows the chain (chaseRedirects), hop
// capped and cycle checked. A chain that exhausts falls back to a Direct
// fetch from the noticed owner — who can always serve its own diffs —
// through completeInflight's retry, so directory staleness can delay but
// never lose an update; the retry's unresolved-notice panic stays the
// backstop.
//
// Determinism: mid-epoch hints depend on serve order, which the
// concurrent backends do not reproduce. At every barrier departure
// resetDirectory rebuilds both arrays from the merged notice set alone —
// identical at every node and on every backend — so the post-barrier
// directory state is a pure function of relayed observations, the same
// replicated-decision rule the adaptive layer follows (package-comment
// invariant four). Memory content never depends on the directory at all;
// routing only picks who serves an identical chain.

// EnableScale switches the machine to scale mode: the per-page ownership
// directory above, plus span-compressed, broadcast-once accounting for
// the barrier fetch-list relay (see relayFetchedBytes and runBarrier).
// Must be called after New and before Run. Off, the protocol and its
// accounting are bit-identical to a machine without the directory — the
// paper tables and the adapt goldens pin that.
func (s *System) EnableScale() {
	s.scale = true
	for _, nd := range s.Nodes {
		pages := nd.Mem.Pages()
		if ar := nd.Mem.Arena(); ar != nil {
			// Warm pool slot: the arrays are recycled from whatever job ran
			// here last, contents unspecified (vm.Arena.TakeInt32). The -1
			// sweep below is therefore load-bearing, not belt-and-braces:
			// a previous job may have run with MORE ranks than this one,
			// and a stale hint naming rank >= N would route a fetch off
			// the machine. The rank-subset regression test poisons these
			// arrays to pin the sweep.
			nd.dirOwner = ar.TakeInt32(pages)
			nd.dirNext = ar.TakeInt32(pages)
		} else {
			nd.dirOwner = make([]int32, pages)
			nd.dirNext = make([]int32, pages)
		}
		for pg := 0; pg < pages; pg++ {
			nd.dirOwner[pg] = -1
			nd.dirNext[pg] = -1
		}
	}
}

// ScaleOn reports whether the machine runs with the ownership directory.
func (s *System) ScaleOn() bool { return s.scale }

// OwnerHint returns a node's current probable-owner hint for a page (-1
// unknown). Deterministic across backends only at barrier points, where
// resetDirectory has rebuilt the directory from the merged notice set.
func (nd *Node) OwnerHint(pg int) int {
	if nd.dirOwner == nil {
		return -1
	}
	return int(nd.dirOwner[pg])
}

// noteWritten records a local write: this node is the page's probable
// owner and any previous delegation is stale.
func (nd *Node) noteWritten(pg int) {
	if nd.dirOwner == nil {
		return
	}
	nd.dirOwner[pg] = int32(nd.ID)
	nd.dirNext[pg] = -1
}

// noteRemoteWrite records a learned write notice: the writer becomes the
// probable owner and this node's delegation for the page is stale.
func (nd *Node) noteRemoteWrite(pg, owner int) {
	if nd.dirOwner == nil {
		return
	}
	nd.dirOwner[pg] = int32(owner)
	nd.dirNext[pg] = -1
}

// dirHopCap bounds a forwarding chase. IVY's probable-owner graph gives
// chains logarithmic in machine size under path compression; the +2
// absorbs the mid-epoch staleness this weaker (hint, not invariant)
// directory allows before the Direct fallback takes over.
func (nd *Node) dirHopCap() int {
	return 2 + bits.Len(uint(nd.sys.N()))
}

// chaseRedirects follows the forwarding hints a fetch round returned
// instead of payloads: pages still pending are re-requested from their
// hinted owners, hop by hop, until served, cycled, or hop capped. Each
// hop rewrites dirOwner, so the chain shortens for this node's next
// fault. Pages a chase cannot resolve are left pending for the caller's
// Direct retry (completeInflight), counted as fallbacks.
func (nd *Node) chaseRedirects(redirs []wire.PageOwner) {
	hopCap := nd.dirHopCap()
	visited := map[int]map[int]bool{} // page -> responders already asked
	for hop := 0; hop < hopCap && len(redirs) > 0; hop++ {
		reqs := map[int][]int{} // responder -> pages
		for _, po := range redirs {
			pg, owner := int(po.Page), int(po.Owner)
			if len(nd.pending[pg]) == 0 || owner == nd.ID {
				continue
			}
			if owner < 0 || owner >= nd.sys.N() {
				// A hint naming a rank outside this job's set — possible
				// only from stale directory state (a warm slot's previous
				// job ran wider) — must not become a request to a rank
				// that does not exist. Leave the page to the Direct
				// fallback, which asks the noticed owner.
				nd.Stats.DirFallbacks++
				continue
			}
			if visited[pg][owner] {
				continue // cycle: leave the page to the Direct fallback
			}
			if visited[pg] == nil {
				visited[pg] = map[int]bool{}
			}
			visited[pg][owner] = true
			nd.dirOwner[pg] = po.Owner
			reqs[owner] = append(reqs[owner], pg)
		}
		if len(reqs) == 0 {
			break
		}
		redirs = redirs[:0]
		var round []wire.Diff
		for _, r := range sortedKeys(reqs) {
			pgs := dedupInts(reqs[r])
			if nd.tr != nil {
				nd.traceFetchReq(pgs[0], r, len(pgs))
			}
			pd := nd.sys.NW.StartRequest(nd.p, r, nd.diffRequest(pgs), 16+8*len(pgs))
			nd.sys.NW.Await(nd.p, pd)
			nd.Stats.DiffFetches++
			nd.Stats.DirHops++
			rep := pd.Reply.(wire.DiffReply)
			round = append(round, rep.Diffs...)
			redirs = append(redirs, rep.Redirects...)
		}
		nd.applyDiffs(round)
	}
	for pg := range visited {
		if len(nd.pending[pg]) > 0 {
			nd.Stats.DirFallbacks++
		}
	}
}

// resetDirectory rebuilds the node's directory at a barrier departure as
// a pure function of the merged notice set: every hint is cleared, then
// each page written in any interval the machine now knows about points
// at the interval with the causally latest closing time. All nodes hold
// identical notice sets after a departure, so every replica computes the
// same directory. Called before lastBar advances; it walks the full log,
// not just the epoch's delta, so pages untouched this epoch still get
// deterministic hints rather than retaining schedule-dependent mid-epoch
// values.
//
// The decision must also be identical across BACKENDS, and the raw
// interval log is not: serve-path splits (splitInterval) appear at
// schedule-dependent chain positions, and a twin-based page that stays
// dirty across a close is re-noticed with an empty extent — whether that
// happens depends on when the invalidate-path flush raced the close. Two
// filters restore determinism. Candidates are only the refs that carry a
// fresh write extent (Whole or extHi > 0) in non-split intervals: split
// refs peek the extent the next close records anyway, and empty-extent
// re-notices carry no write fact at all, so what survives is exactly one
// ref per genuine (writer, epoch, page) write — the same set on every
// backend. The winner among a page's candidates is the causally latest:
// each candidate is keyed by how many of the page's candidates its
// closing time knows (iv.vc[c] ≥ candidate index — a comparison whose
// outcome only depends on the barrier structure, not on how splits and
// re-notices inflate either side's chain). Ties — concurrent writers of
// a falsely shared page — break on the larger creator id.
func (nd *Node) resetDirectory() {
	for pg := range nd.dirOwner {
		nd.dirOwner[pg] = -1
		nd.dirNext[pg] = -1
	}
	type cand struct {
		owner int
		idx   int32
		vc    []int32
	}
	// Candidate order is (owner asc, epoch asc) — identical everywhere.
	cands := map[int][]cand{}
	for o := range nd.vc {
		for idx := int32(1); idx <= nd.vc[o]; idx++ {
			iv := nd.know[o][idx-1]
			if iv.split {
				continue
			}
			for _, ref := range iv.pages {
				if !ref.Whole && ref.ExtHi == 0 {
					continue // dirty-persist re-notice: no new write fact
				}
				pg := int(ref.Page)
				cands[pg] = append(cands[pg], cand{owner: o, idx: idx, vc: iv.vc})
			}
		}
	}
	for pg, cs := range cands {
		best, bestKey := 0, -1
		for i, c := range cs {
			key := 0
			for _, d := range cs {
				if c.vc[d.owner] >= d.idx {
					key++
				}
			}
			if key > bestKey || (key == bestKey && c.owner > cs[best].owner) {
				best, bestKey = i, key
			}
		}
		nd.dirOwner[pg] = int32(cs[best].owner)
	}
}

// relayFetchedBytes is the accounted wire size of one relayed barrier
// fetch list under the active mode: the flat version-2 formula off scale
// (8 + 4 per page, pinned by the paper-era goldens), the version-7
// raw-or-span size under scale — dense epoch working sets cost two words
// per contiguous run instead of one per page.
func (s *System) relayFetchedBytes(pages []int32) int {
	if s.scale {
		return wire.FetchedBytes(pages)
	}
	return adaptFetchedBytes(len(pages))
}

// ServeBalance summarizes how evenly diff-serve load spread across the
// machine: the maximum and mean per-node count of diff requests answered
// with payload. The scaling table reports max/mean; the directory's job
// is keeping it near 1 on single-writer many-reader pages.
func (s *System) ServeBalance() (max int64, mean float64) {
	var total int64
	for _, nd := range s.Nodes {
		c := nd.Stats.DiffServes
		total += c
		if c > max {
			max = c
		}
	}
	if n := len(s.Nodes); n > 0 {
		mean = float64(total) / float64(n)
	}
	return max, mean
}
