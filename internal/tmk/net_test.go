package tmk

import (
	"testing"
	"time"

	"sdsm/internal/host"
	"sdsm/internal/model"
	"sdsm/internal/shm"
)

// TestNetMigratoryCounter hammers the migratory-data pattern (IS's
// accumulate phase) on the net backend: every node repeatedly increments
// counters on a shared page under a lock. Any lost update is a protocol
// bug in the wire transport's serve/grant paths.
func TestNetMigratoryCounter(t *testing.T) {
	const procs = 3
	const iters = 50
	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	for round := 0; round < rounds; round++ {
		nw, err := host.NewNet(procs, model.SP2())
		if err != nil {
			t.Fatal(err)
		}
		layout := shm.NewLayout()
		arr := layout.Alloc("x", 2*shm.PageWords)
		sys := New(nw, nw, layout)
		err = sys.Run(func(nd *Node) {
			for it := 0; it < iters; it++ {
				nd.Acquire(7)
				r := shm.Region{Lo: arr.Base + nd.ID*3, Hi: arr.Base + nd.ID*3 + 3}
				all := shm.Region{Lo: arr.Base, Hi: arr.Base + 9}
				nd.Mem.EnsureRead(nd.Proc(), all)
				nd.Mem.EnsureWrite(nd.Proc(), r)
				nd.Proc().BeginCompute()
				for w := r.Lo; w < r.Hi; w++ {
					nd.Mem.Data()[w]++
				}
				nd.Proc().EndCompute()
				nd.Release(7)
			}
			nd.Barrier(1)
			if nd.ID == 0 {
				nd.Validate(AccRead, []shm.Region{arr.Whole()}, false)
				nd.Mem.EnsureRead(nd.Proc(), arr.Whole())
				for i := 0; i < procs*3; i++ {
					if got := nd.Mem.Data()[arr.Base+i]; got != iters {
						t.Errorf("round %d word %d = %v, want %d", round, i, got, iters)
					}
				}
			}
		})
		nw.Close()
		if err != nil {
			t.Fatal(err)
		}
		if t.Failed() {
			break
		}
	}
}

// TestNetStaggeredLockChains is the IS merge pattern — staggered section
// locks over false-shared pages, then a global read phase — on the net
// backend. It regression-tests the coverage-based diff ordering: with
// genuinely asynchronous serves, a lazily flushed diff can span epochs and
// carry a closing time that postdates a fresher concurrent diff, so
// applying by closing time regressed accumulated sections (lost updates)
// until diffs were ordered by their applied-coverage instead.
func TestNetStaggeredLockChains(t *testing.T) {
	const n = 3
	sectionWords := shm.PageWords / 2
	iters := 3
	total := n * sectionWords
	rounds := 10
	if testing.Short() {
		rounds = 3
	}
	for round := 0; round < rounds; round++ {
		nw, err := host.NewNet(n, model.SP2())
		if err != nil {
			t.Fatal(err)
		}
		layout := shm.NewLayout()
		layout.Alloc("mem", total)
		s := New(nw, nw, layout)
		err = s.Run(func(nd *Node) {
			for it := 0; it < iters; it++ {
				lo := nd.ID * sectionWords
				nd.Acquire(nd.ID)
				nd.Mem.EnsureWrite(nd.p, shm.Region{Lo: lo, Hi: lo + sectionWords})
				nd.p.BeginCompute()
				d := nd.Mem.Data()
				for w := lo; w < lo+sectionWords; w++ {
					d[w] = 0
				}
				nd.p.EndCompute()
				nd.Release(nd.ID)
				nd.p.Advance(time.Duration(nd.ID+1) * 37 * time.Microsecond)
				nd.Barrier(3)
				for ph := 0; ph < n; ph++ {
					sec := (nd.ID + ph) % n
					slo := sec * sectionWords
					nd.Acquire(sec)
					nd.Mem.EnsureWrite(nd.p, shm.Region{Lo: slo, Hi: slo + sectionWords})
					nd.Mem.EnsureRead(nd.p, shm.Region{Lo: slo, Hi: slo + sectionWords})
					nd.p.BeginCompute()
					d := nd.Mem.Data()
					for w := slo; w < slo+sectionWords; w++ {
						d[w] += float64(nd.ID + 1)
					}
					nd.p.EndCompute()
					nd.p.Advance(time.Duration(sectionWords) * 100 * time.Nanosecond)
					nd.Release(sec)
				}
				nd.Barrier(1)
				nd.Mem.EnsureRead(nd.p, shm.Region{Lo: 0, Hi: total})
				want := 0.0
				for w := 1; w <= n; w++ {
					want += float64(w)
				}
				for w := 0; w < total; w++ {
					if d := nd.Mem.Data()[w]; d != want {
						t.Errorf("round %d node %d iter %d word %d: got %v want %v", round, nd.ID, it, w, d, want)
						return
					}
				}
				nd.Barrier(2)
			}
		})
		nw.Close()
		if err != nil {
			t.Fatal(err)
		}
		if t.Failed() {
			return
		}
	}
}
