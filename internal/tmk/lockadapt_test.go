package tmk

import (
	"testing"
	"time"

	"sdsm/internal/adapt"
	"sdsm/internal/host"
	"sdsm/internal/model"
	"sdsm/internal/shm"
)

// migratoryRotation runs the canonical migratory-data shape on the sim
// backend: n nodes repeatedly increment every word of a shared page under
// one lock, in a naturally stable rotation. Returns the system for stats
// inspection; the final page content is verified inside.
func migratoryRotation(t *testing.T, adaptOn bool, iters int) *System {
	t.Helper()
	const n = 3
	const words = 8
	s := testSystem(n, shm.PageWords)
	if adaptOn {
		s.EnableAdapt(adapt.Config{K: 2})
	}
	run(t, s, func(nd *Node) {
		for it := 0; it < iters; it++ {
			nd.Acquire(5)
			reg := shm.Region{Lo: 0, Hi: words}
			nd.Mem.EnsureRead(nd.p, reg)
			nd.Mem.EnsureWrite(nd.p, reg)
			nd.p.BeginCompute()
			d := nd.Mem.Data()
			for w := 0; w < words; w++ {
				d[w]++
			}
			nd.p.EndCompute()
			nd.p.Advance(50 * time.Microsecond)
			nd.Release(5)
		}
		nd.Barrier(1)
		nd.Mem.EnsureRead(nd.p, shm.Region{Lo: 0, Hi: words})
		for w := 0; w < words; w++ {
			if got := nd.Mem.Data()[w]; got != float64(n*iters) {
				t.Errorf("adapt=%v node %d word %d = %v, want %d", adaptOn, nd.ID, w, got, n*iters)
			}
		}
	})
	return s
}

// TestLockAdaptMigratoryRotation pins the tentpole's effect at the
// protocol level: under a stable lock rotation the per-lock detector
// binds the hand-off edges, grants start piggybacking the page's diffs,
// and the in-critical-section demand fetches (lock faults) drop — with
// the final memory image identical to the adapt-off run.
func TestLockAdaptMigratoryRotation(t *testing.T) {
	const iters = 12
	base := migratoryRotation(t, false, iters)
	ad := migratoryRotation(t, true, iters)
	_, bps := base.Stats()
	_, aps := ad.Stats()
	if aps.AdaptLockPromotions == 0 {
		t.Fatalf("no hand-off edges promoted: %+v", aps)
	}
	if aps.AdaptLockGrants == 0 {
		t.Fatalf("no grants carried piggybacked diffs: %+v", aps)
	}
	if aps.LockFetches >= bps.LockFetches {
		t.Errorf("lock faults %d not below baseline %d", aps.LockFetches, bps.LockFetches)
	}
	if bps.AdaptLockGrants != 0 || bps.AdaptLockPromotions != 0 {
		t.Errorf("baseline run counted adaptive lock stats: %+v", bps)
	}
}

// TestLockAdaptDecayOnOutsideWriter: a writer that modifies a bound page
// outside the lock chain makes the piggyback insufficient — the acquirer
// faults anyway, and the detector must decay the binding rather than keep
// pushing stale predictions. Correctness is never at stake (the fault
// path fills the gap); this pins the decay rule end to end.
func TestLockAdaptDecayOnOutsideWriter(t *testing.T) {
	const n = 3
	const words = 8
	const iters = 14
	s := testSystem(n, 2*shm.PageWords)
	s.EnableAdapt(adapt.Config{K: 2})
	run(t, s, func(nd *Node) {
		for it := 0; it < iters; it++ {
			nd.Acquire(5)
			reg := shm.Region{Lo: 0, Hi: words}
			nd.Mem.EnsureRead(nd.p, reg)
			nd.Mem.EnsureWrite(nd.p, reg)
			nd.p.BeginCompute()
			d := nd.Mem.Data()
			for w := 0; w < words; w++ {
				d[w]++
			}
			nd.p.EndCompute()
			nd.p.Advance(50 * time.Microsecond)
			nd.Release(5)
			if it == iters/2 {
				// Mid-run, every node writes the page OUTSIDE the lock in
				// its own disjoint slot, separated by barriers (data-race
				// free, but invisible to the lock chain).
				nd.Barrier(2)
				nd.Mem.EnsureWrite(nd.p, shm.Region{Lo: words + nd.ID, Hi: words + nd.ID + 1})
				nd.p.BeginCompute()
				nd.Mem.Data()[words+nd.ID] = float64(100 + nd.ID)
				nd.p.EndCompute()
				nd.Barrier(3)
			}
		}
		nd.Barrier(1)
		nd.Mem.EnsureRead(nd.p, shm.Region{Lo: 0, Hi: words + n})
		for w := 0; w < words; w++ {
			if got := nd.Mem.Data()[w]; got != float64(n*iters) {
				t.Errorf("node %d word %d = %v, want %d", nd.ID, w, got, n*iters)
			}
		}
		for w := 0; w < n; w++ {
			if got := nd.Mem.Data()[words+w]; got != float64(100+w) {
				t.Errorf("node %d outside word %d = %v, want %d", nd.ID, w, got, 100+w)
			}
		}
	})
	_, ps := s.Stats()
	if ps.AdaptLockPromotions == 0 {
		t.Fatalf("rotation never promoted: %+v", ps)
	}
	if ps.AdaptLockDecays == 0 {
		t.Fatalf("outside write never decayed a binding: %+v", ps)
	}
}

// TestNetStaggeredLockChainsAdapt is the staggered-lock-chain stress
// (TestNetStaggeredLockChains) with the adaptive protocol on: genuinely
// concurrent nodes over the wire backend, migratory sections under
// rotating locks, grants carrying piggybacked diffs. Any lost update or
// race in the piggyback path fails the content checks; CI runs this under
// -race.
func TestNetStaggeredLockChainsAdapt(t *testing.T) {
	const n = 3
	sectionWords := shm.PageWords / 2
	iters := 4
	total := n * sectionWords
	rounds := 10
	if testing.Short() {
		rounds = 3
	}
	for round := 0; round < rounds; round++ {
		nw, err := host.NewNet(n, model.SP2())
		if err != nil {
			t.Fatal(err)
		}
		layout := shm.NewLayout()
		layout.Alloc("mem", total)
		s := New(nw, nw, layout)
		s.EnableAdapt(adapt.Config{K: 2})
		err = s.Run(func(nd *Node) {
			for it := 0; it < iters; it++ {
				lo := nd.ID * sectionWords
				nd.Acquire(nd.ID)
				nd.Mem.EnsureWrite(nd.p, shm.Region{Lo: lo, Hi: lo + sectionWords})
				nd.p.BeginCompute()
				d := nd.Mem.Data()
				for w := lo; w < lo+sectionWords; w++ {
					d[w] = 0
				}
				nd.p.EndCompute()
				nd.Release(nd.ID)
				nd.p.Advance(time.Duration(nd.ID+1) * 37 * time.Microsecond)
				nd.Barrier(3)
				for ph := 0; ph < n; ph++ {
					sec := (nd.ID + ph) % n
					slo := sec * sectionWords
					nd.Acquire(sec)
					nd.Mem.EnsureWrite(nd.p, shm.Region{Lo: slo, Hi: slo + sectionWords})
					nd.Mem.EnsureRead(nd.p, shm.Region{Lo: slo, Hi: slo + sectionWords})
					nd.p.BeginCompute()
					d := nd.Mem.Data()
					for w := slo; w < slo+sectionWords; w++ {
						d[w] += float64(nd.ID + 1)
					}
					nd.p.EndCompute()
					nd.p.Advance(time.Duration(sectionWords) * 100 * time.Nanosecond)
					nd.Release(sec)
				}
				nd.Barrier(1)
				nd.Mem.EnsureRead(nd.p, shm.Region{Lo: 0, Hi: total})
				want := 0.0
				for w := 1; w <= n; w++ {
					want += float64(w)
				}
				for w := 0; w < total; w++ {
					if d := nd.Mem.Data()[w]; d != want {
						t.Errorf("round %d node %d iter %d word %d: got %v want %v", round, nd.ID, it, w, d, want)
						return
					}
				}
				nd.Barrier(2)
			}
		})
		nw.Close()
		if err != nil {
			t.Fatal(err)
		}
		if t.Failed() {
			return
		}
	}
}
