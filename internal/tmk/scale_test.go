package tmk

import (
	"fmt"
	"testing"
	"time"

	"sdsm/internal/cluster"
	"sdsm/internal/host"
	"sdsm/internal/model"
	"sdsm/internal/shm"
)

// TestScaleHotPageServeBalance pins the ownership directory's reason to
// exist: a page written by one node and read by 63 turns the writer into
// a serve hot spot under the base protocol, while scale mode spreads the
// serving across the reader chain (each reader is served by the previous
// one and the writer answers one payload plus cheap redirects). The
// acceptance bound is the scaling experiment's: no node answers more
// than twice the machine-mean number of diff requests.
func TestScaleHotPageServeBalance(t *testing.T) {
	const n = 64
	const epochs = 4
	runCase := func(scale bool) *System {
		s := testSystem(n, shm.PageWords)
		if scale {
			s.EnableScale()
		}
		run(t, s, func(nd *Node) {
			for e := 0; e < epochs; e++ {
				if nd.ID == e%8 { // rotate the writer: ownership must migrate
					w(nd, 8*e, float64(100*e+1))
				}
				nd.Barrier(1)
				if got := r(nd, 8*e); got != float64(100*e+1) {
					t.Errorf("epoch %d node %d: read %v, want %v", e, nd.ID, got, float64(100*e+1))
				}
				nd.Barrier(2)
			}
		})
		return s
	}

	base := runCase(false)
	bmax, bmean := base.ServeBalance()
	if float64(bmax) < 4*bmean {
		t.Fatalf("base protocol is not a hot spot (max %d, mean %.1f); workload no longer tests the directory", bmax, bmean)
	}

	sc := runCase(true)
	smax, smean := sc.ServeBalance()
	if smean == 0 {
		t.Fatal("scale run served no diffs")
	}
	if float64(smax) > 2*smean {
		t.Fatalf("scale mode serve balance %d/%.1f = %.2f exceeds the 2x bound", smax, smean, float64(smax)/smean)
	}
	_, ps := sc.Stats()
	if ps.DirRedirects == 0 {
		t.Fatal("scale run issued no directory redirects; the hot page was not delegated")
	}
}

// scaleHintProgram is the rotating-writer workload of the determinism
// tests: each round every node writes its rotated page, the machine
// barriers, every node reads a word of the next page, and the machine
// barriers again. Ownership of every page migrates every round.
func scaleHintProgram(n, pages, rounds int) func(nd *Node) {
	return func(nd *Node) {
		for rd := 0; rd < rounds; rd++ {
			pg := (nd.ID + rd) % pages
			w(nd, pg*shm.PageWords+rd, float64(rd*1000+nd.ID))
			nd.Barrier(1)
			rpg := (nd.ID + rd + 1) % pages
			owner := ((rpg-rd)%pages + pages) % pages
			if got := r(nd, rpg*shm.PageWords+rd); got != float64(rd*1000+owner) {
				panic(fmt.Sprintf("round %d node %d page %d: read %v, want %v",
					rd, nd.ID, rpg, got, float64(rd*1000+owner)))
			}
			nd.Barrier(2)
		}
	}
}

// ownerHints snapshots every node's post-run probable-owner hints.
func ownerHints(s *System) [][]int {
	out := make([][]int, len(s.Nodes))
	for i, nd := range s.Nodes {
		hints := make([]int, nd.Mem.Pages())
		for pg := range hints {
			hints[pg] = nd.OwnerHint(pg)
		}
		out[i] = hints
	}
	return out
}

// TestScaleDirectoryDeterminism asserts the replicated-decision rule of
// DESIGN.md's invariant four for the directory: after a barrier,
// resetDirectory has rebuilt every node's hints from the merged notice
// set alone, so (a) all nodes agree, (b) a rerun agrees bit for bit, and
// (c) the concurrent real backend — whose mid-epoch serve order differs
// freely — lands on the same post-barrier directory as the sim backend.
func TestScaleDirectoryDeterminism(t *testing.T) {
	const n, pages, rounds = 8, 8, 5
	words := pages * shm.PageWords

	runSim := func() [][]int {
		s := testSystem(n, words)
		s.EnableScale()
		run(t, s, scaleHintProgram(n, pages, rounds))
		return ownerHints(s)
	}
	simHints := runSim()
	for id, hints := range simHints {
		for pg, h := range hints {
			if h != simHints[0][pg] {
				t.Fatalf("sim: node %d hint for page %d = %d, node 0 says %d", id, pg, h, simHints[0][pg])
			}
			// Every page was written every round, so no hint may be unset.
			// (The winner need not be the literal last writer: chain
			// continuity lets later intervals cover a page without new
			// content, and any holder of the full chain can serve it —
			// the invariant under test is agreement, not identity.)
			if h < 0 || h >= n {
				t.Fatalf("sim: page %d hint = %d, want a node id", pg, h)
			}
		}
	}
	if again := runSim(); fmt.Sprint(again) != fmt.Sprint(simHints) {
		t.Fatalf("sim rerun produced different hints:\n%v\n%v", again, simHints)
	}

	for trial := 0; trial < 3; trial++ {
		h := host.NewReal(n)
		nw := cluster.New(h, model.SP2())
		layout := shm.NewLayout()
		layout.Alloc("mem", words)
		s := New(h, nw, layout)
		s.EnableScale()
		run(t, s, scaleHintProgram(n, pages, rounds))
		if got := ownerHints(s); fmt.Sprint(got) != fmt.Sprint(simHints) {
			t.Fatalf("real backend trial %d: post-barrier hints differ from sim:\n%v\n%v", trial, got, simHints)
		}
	}
}

// TestScaleRandomMigrationNet is the randomized ownership-migration
// stress: 16 ranks on the wire backend under scale mode, with a seeded
// random schedule whose per-round disjoint write partitions rotate so
// page ownership keeps moving. Every node's reads are checked against a
// golden replay, and the directory's chase accounting must stay bounded
// (every forwarding hop consumes at least one issued redirect). Run
// under -race in CI.
func TestScaleRandomMigrationNet(t *testing.T) {
	const (
		n      = 16
		pages  = 8
		rounds = 5
	)
	words := pages * shm.PageWords
	trials := 3
	if testing.Short() {
		trials = 1
	}
	for seed := 1; seed <= trials; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := xorshift(seed * 968665207)
			var schedule [rounds][]randWrite
			chunk := words / n
			for rd := 0; rd < rounds; rd++ {
				rot := rng.intn(n)
				for node := 0; node < n; node++ {
					base := ((node + rot) % n) * chunk
					for k := 0; k < 1+rng.intn(2); k++ {
						lo := base + rng.intn(chunk-1)
						hi := lo + 1 + rng.intn(minI(chunk-(lo-base)-1, 300))
						schedule[rd] = append(schedule[rd], randWrite{
							node: node, lo: lo, hi: hi,
							val: float64(rd*1000 + node*10 + k),
						})
					}
				}
			}

			body := func(nd *Node) {
				for rd := 0; rd < rounds; rd++ {
					for _, wr := range schedule[rd] {
						if wr.node != nd.ID {
							continue
						}
						reg := shm.Region{Lo: wr.lo, Hi: wr.hi}
						nd.Mem.EnsureWrite(nd.Proc(), reg)
						d := nd.Mem.Data()
						for a := wr.lo; a < wr.hi; a++ {
							d[a] = wr.val
						}
					}
					nd.Proc().Advance(time.Duration(nd.ID+1) * 31 * time.Microsecond)
					nd.Barrier(1)
					probe := xorshift(uint64(seed*7_368_787 + rd*104_729 + nd.ID))
					goldenAt := goldenAfter(schedule[:rd+1], words)
					for k := 0; k < 24; k++ {
						a := probe.intn(words)
						nd.Mem.EnsureRead(nd.Proc(), shm.Region{Lo: a, Hi: a + 1})
						if got := nd.Mem.Data()[a]; got != goldenAt[a] {
							t.Errorf("round %d node %d word %d: got %v want %v", rd, nd.ID, a, got, goldenAt[a])
							return
						}
					}
					nd.Barrier(2)
				}
			}

			nw, err := host.NewNet(n, model.SP2())
			if err != nil {
				t.Fatal(err)
			}
			layout := shm.NewLayout()
			layout.Alloc("mem", words)
			s := New(nw, nw, layout)
			s.EnableScale()
			err = s.Run(body)
			nw.Close()
			if err != nil {
				t.Fatal(err)
			}
			_, ps := s.Stats()
			if ps.DirHops > ps.DirRedirects {
				t.Fatalf("chase accounting out of bounds: %d hops > %d redirects issued", ps.DirHops, ps.DirRedirects)
			}
		})
	}
}
