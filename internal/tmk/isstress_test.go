package tmk

import (
	"testing"
	"time"

	"sdsm/internal/shm"
)

// TestStaggeredLockChains reproduces the IS merge pattern: B buckets in
// sections of B/n words, each section visited by every node under its
// lock in staggered order, accumulating +1 per visit, with a zero phase
// per iteration. Checks the final sums.
func staggeredRun(t *testing.T, n, sectionWords, iters int) {
	t.Helper()
	total := n * sectionWords
	s := testSystem(n, total)
	run(t, s, func(nd *Node) {
		for it := 0; it < iters; it++ {
			// zero own section under own lock
			lo := nd.ID * sectionWords
			nd.Acquire(nd.ID)
			nd.Mem.EnsureWrite(nd.p, shm.Region{Lo: lo, Hi: lo + sectionWords})
			d := nd.Mem.Data()
			for t := lo; t < lo+sectionWords; t++ {
				d[t] = 0
			}
			nd.Release(nd.ID)
			nd.p.Advance(time.Duration(nd.ID+1) * 37 * time.Microsecond) // skewed compute
			nd.Barrier(3)
			for ph := 0; ph < n; ph++ {
				sec := (nd.ID + ph) % n
				slo := sec * sectionWords
				nd.Acquire(sec)
				nd.Mem.EnsureWrite(nd.p, shm.Region{Lo: slo, Hi: slo + sectionWords})
				nd.Mem.EnsureRead(nd.p, shm.Region{Lo: slo, Hi: slo + sectionWords})
				d := nd.Mem.Data()
				for t := slo; t < slo+sectionWords; t++ {
					d[t] += float64(nd.ID + 1)
				}
				nd.p.Advance(time.Duration(sectionWords) * 100 * time.Nanosecond)
				nd.Release(sec)
			}
			nd.Barrier(1)
			// read everything (rank phase)
			nd.Mem.EnsureRead(nd.p, shm.Region{Lo: 0, Hi: total})
			want := 0.0
			for w := 1; w <= n; w++ {
				want += float64(w)
			}
			for t := 0; t < total; t++ {
				if d := nd.Mem.Data()[t]; d != want {
					nd.Mem.Data()[t] = d // keep
					if testing.Verbose() {
						// limited reporting
					}
					// report through testing
					if t < 10000 {
						// record first few
					}
					// fail
					panic2(nd.ID, it, t, d, want)
				}
			}
			nd.Barrier(2)
		}
	})
}

var failf func(format string, args ...any)

func panic2(id, it, w int, got, want float64) {
	if failf != nil {
		failf("node %d iter %d word %d: got %v want %v", id, it, w, got, want)
	}
}

func TestStaggeredAligned(t *testing.T) {
	failf = t.Errorf
	defer func() { failf = nil }()
	staggeredRun(t, 4, shm.PageWords, 3) // page-aligned sections
}

func TestStaggeredFalseShared(t *testing.T) {
	failf = t.Errorf
	defer func() { failf = nil }()
	staggeredRun(t, 8, shm.PageWords/2, 3) // two sections per page
}

func TestStaggeredTraced(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("tracing run; use -v")
	}
	failf = t.Errorf
	defer func() { failf = nil }()
	debugHook = func(ev string, args ...any) {
		pgIdx := 2
		if ev == "flush" || ev == "enablewrite" {
			pgIdx = 1
		}
		if len(args) > pgIdx {
			if pg, ok := args[pgIdx].(int); ok && pg == 1 {
				if args[0].(int) == 3 || ev == "apply" || ev == "notice" {
					t.Logf("%s %v", ev, args)
				}
			}
		}
	}
	defer func() { debugHook = nil }()
	staggeredRun(t, 8, shm.PageWords/2, 3)
}
