package tmk

import (
	"testing"

	"sdsm/internal/shm"
)

// TestFalseSharingStress: 4 writers share one page; every iteration each
// node reads the whole page (checking last iteration's values from all
// writers) and overwrites its own quarter.
func TestFalseSharingStress(t *testing.T) {
	const n = 4
	const iters = 6
	const q = shm.PageWords / n
	s := testSystem(n, shm.PageWords)
	run(t, s, func(nd *Node) {
		for it := 1; it <= iters; it++ {
			// read whole page, check values from iteration it-1
			nd.Mem.EnsureRead(nd.p, shm.Region{Lo: 0, Hi: shm.PageWords})
			d := nd.Mem.Data()
			for w := 0; w < n; w++ {
				want := float64((it-1)*100 + w)
				if it == 1 {
					want = 0
				}
				if got := d[w*q]; got != want {
					t.Errorf("iter %d node %d: word %d = %v, want %v", it, nd.ID, w*q, got, want)
				}
			}
			nd.Barrier(1)
			nd.Mem.EnsureWrite(nd.p, shm.Region{Lo: nd.ID * q, Hi: nd.ID*q + q})
			for t := 0; t < q; t++ {
				d[nd.ID*q+t] = float64(it*100 + nd.ID)
			}
			nd.Barrier(2)
		}
	})
}

// Same stress but with cross-phase reads resembling the FFT transpose:
// phase A writes array X regions, phase B copies X into private places.
func TestFalseSharingTranspose(t *testing.T) {
	const n = 4
	const iters = 4
	const q = shm.PageWords / n
	s := testSystem(n, 2*shm.PageWords) // page 0: X, page 1: Y
	run(t, s, func(nd *Node) {
		for it := 1; it <= iters; it++ {
			// write own region of X
			nd.Mem.EnsureWrite(nd.p, shm.Region{Lo: nd.ID * q, Hi: nd.ID*q + q})
			d := nd.Mem.Data()
			for t := 0; t < q; t++ {
				d[nd.ID*q+t] = float64(it*1000 + nd.ID)
			}
			nd.Barrier(1)
			// read all of X, write own region of Y with the sum
			nd.Mem.EnsureRead(nd.p, shm.Region{Lo: 0, Hi: shm.PageWords})
			sum := 0.0
			for w := 0; w < n; w++ {
				sum += d[w*q]
			}
			want := float64(it*1000*n + 0 + 1 + 2 + 3)
			if sum != want {
				t.Errorf("iter %d node %d: sum %v, want %v", it, nd.ID, sum, want)
			}
			nd.Mem.EnsureWrite(nd.p, shm.Region{Lo: shm.PageWords + nd.ID*q, Hi: shm.PageWords + nd.ID*q + q})
			d[shm.PageWords+nd.ID*q] = sum
			nd.Barrier(2)
		}
	})
}
