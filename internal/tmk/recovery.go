package tmk

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"sdsm/internal/obs"
	"sdsm/internal/vm"
	"sdsm/internal/wire"
)

// Checkpoint/restore (DESIGN.md §10).
//
// With recovery enabled, every node writes a recovery record at each
// barrier arrival — after the epoch's interval is closed, before the
// arrival message is built, so the record is durable before any state
// derived from it can reach a peer (pessimistic logging: log before
// send). A record is the node's wire.Checkpoint: vector clock, last
// departure time, the interval log learned since the previous record
// (own and foreign, per-owner dense, so a restored log is gap-free),
// page frames — content, twin, protection, applied row — for every
// page whose image or bookkeeping moved, the cached diff chains of the
// framed pages, and the adaptive detector's snapshot. Records are
// encoded wire frames (kind FCkpt) handed to a pluggable SnapshotSink
// — in-memory, local disk, or a socket streaming to the mpnet
// coordinator — so a restore exercises the same codec a remote restore
// would.
//
// A restore rebuilds the node's entire DSM state from the newest full
// record plus the incremental records after it. Page content, twin,
// applied timestamps, protections, dirty flag, and diff chain come
// from the newest frame per page; pending write notices are recomputed
// from the restored interval log against the restored applied rows.
// The twin and the diff cache are checkpointed verbatim rather than
// resynthesized from the restored content because both encode word-
// granular history the content alone cannot recover: the twin's delta
// to the content is the undiffed writes the next comparison must still
// find, and the cache's per-creator diffs carry exactly the words each
// writer owns — a whole-page stand-in would overwrite words belonging
// to concurrent writers of a falsely-shared page. Application state
// (locals, loop counters) is not checkpointed: the simulated fault
// hits the DSM layer at a barrier, the one point where app and
// protocol state are already synchronized; full-process crash recovery
// is the mpnet coordinator's job (message-log replay, see
// internal/mpnet).

// SnapshotSink stores recovery records. Put receives one encoded record
// (a complete FCkpt wire frame); a full record makes every older record
// of that node dead, and sinks may discard them. Records returns a
// node's live chain — the newest full record first, then every
// incremental record after it, in write order.
type SnapshotSink interface {
	Put(node int, epoch int32, full bool, rec []byte) error
	Records(node int) ([][]byte, error)
}

// Fault is an injected failure: rank Rank dies at its Epoch-th barrier
// arrival (1-based), immediately after its recovery record is written.
type Fault struct {
	Rank  int
	Epoch int
}

// RecoveryConfig arms checkpointing. Every is the full-record period in
// barriers (≤1: every record is full; k: one full record every k-th).
// Fault, if set, injects one failure and the in-place recovery that
// follows it.
type RecoveryConfig struct {
	Sink  SnapshotSink
	Every int
	Fault *Fault
}

// Recoverer is implemented by transports that can drop and re-establish
// one node's links around a restore (host.Net with recovery enabled).
// In-process transports need neither.
type Recoverer interface {
	Detach(node int) error
	Reattach(node int) error
}

// RecoveryStats counts a node's checkpoint/restore activity. They live
// outside ProtocolStats: recovery is off in every table run, and the
// reported tables must not change shape when it is on.
type RecoveryStats struct {
	Checkpoints     int64
	FullCheckpoints int64
	CheckpointBytes int64
	Failures        int64
	Restores        int64
}

// recoveryPoll is the virtual time a failed node burns per check while
// draining its peers into the barrier before restoring.
const recoveryPoll = time.Microsecond

// EnableRecovery arms barrier-point checkpointing (and, if cfg.Fault is
// set, one injected failure). Must be called after New and before Run.
// With a nil Sink, records go to a fresh in-memory sink.
func (s *System) EnableRecovery(cfg RecoveryConfig) {
	if cfg.Sink == nil {
		cfg.Sink = NewMemSink()
	}
	s.rec = &cfg
	for _, nd := range s.Nodes {
		nd.recTouched = map[int]bool{}
	}
}

// faultsNow reports whether the injected fault fires at this arrival.
func (nd *Node) faultsNow() bool {
	f := nd.sys.rec.Fault
	return f != nil && f.Rank == nd.ID && int64(f.Epoch) == nd.Stats.Barriers
}

// writeRecord serializes one recovery record and hands it to the sink.
// Full records carry the whole interval log and a frame for every page
// with any history; incremental records carry the per-owner interval
// delta since the previous record and frames only for pages whose
// image, diff cache, or bookkeeping could have moved since — pages
// touched by a diff store or push (recTouched), dirty pages, and pages
// in own intervals closed since. A page absent from every frame set is
// provably still zero-filled and untouched, so a restore needs no
// frame for it.
func (nd *Node) writeRecord() {
	s := nd.sys
	r := s.rec
	n := s.N()
	nd.recEpoch++
	full := nd.recLast == nil || r.Every <= 1 || (int(nd.recEpoch)-1)%r.Every == 0
	ck := wire.Checkpoint{
		Node:    int32(nd.ID),
		Epoch:   nd.recEpoch,
		Full:    full,
		VC:      append([]int32(nil), nd.vc...),
		LastBar: append([]int32(nil), nd.lastBar...),
	}
	base := nd.recLast
	if full {
		base = make([]int32, n)
	}
	for o := 0; o < n; o++ {
		for idx := base[o] + 1; idx <= nd.vc[o]; idx++ {
			ck.Intervals = append(ck.Intervals, wire.OwnedInterval{
				Owner: int32(o), Idx: idx, IV: nd.know[o][idx-1].toWire(),
			})
		}
	}
	for _, pg := range nd.recordPages(full, base) {
		fr := wire.PageFrame{
			Page:       int32(pg),
			Prot:       uint8(nd.Mem.Prot(pg)),
			Dirty:      nd.dirty[pg],
			LastDiffed: nd.lastDiffed[pg],
			Applied:    append([]int32(nil), nd.applied[pg]...),
			Words:      append([]float64(nil), nd.Mem.PageData(pg)...),
		}
		if tw := nd.Mem.TwinData(pg); tw != nil {
			fr.Twin = append([]float64(nil), tw...)
		}
		ck.Frames = append(ck.Frames, fr)
		// The framed page's cached diff chain rides along, in cache
		// order: a restore replaces the page's cache with the newest
		// record's copy, so every record must carry the chains of
		// exactly the pages it frames (storeDiff marks recTouched).
		for _, d := range nd.diffs[pg] {
			ck.Diffs = append(ck.Diffs, d.toWire())
		}
	}
	if nd.ad != nil {
		ck.Fetched = nd.fetchedSorted()
		ck.Adapt = nd.ad.det.Snapshot()
	}
	if nd.dirOwner != nil {
		// The complete probable-owner map rides every record (it is small:
		// one pair per hinted page), so a restore takes the newest record's
		// map alone instead of merging increments.
		for pg, o := range nd.dirOwner {
			if o >= 0 {
				ck.Owners = append(ck.Owners, wire.PageOwner{Page: int32(pg), Owner: o})
			}
		}
	}
	blob, err := wire.AppendFrame(nil, &wire.Frame{Kind: wire.FCkpt, From: int32(nd.ID), Payload: ck})
	if err != nil {
		panic(fmt.Sprintf("tmk: encoding checkpoint record: %v", err))
	}
	if err := r.Sink.Put(nd.ID, ck.Epoch, full, blob); err != nil {
		panic(fmt.Sprintf("tmk: storing checkpoint record: %v", err))
	}
	nd.recLast = ck.VC
	clear(nd.recTouched)
	nd.RecStats.Checkpoints++
	if full {
		nd.RecStats.FullCheckpoints++
	}
	nd.RecStats.CheckpointBytes += int64(len(blob))
	if nd.tr != nil {
		var b int32
		if full {
			b = 1
		}
		nd.tr.Emit(obs.Event{
			Kind: obs.EvCkpt, VT: int64(nd.p.Now()), WT: nd.tr.WallNow(),
			A: int32(len(blob)), B: b, C: ck.Epoch,
		})
	}
}

// recordPages returns the sorted page set a record must frame.
func (nd *Node) recordPages(full bool, base []int32) []int {
	var pages []int
	if full {
		for pg := 0; pg < nd.Mem.Pages(); pg++ {
			if nd.dirty[pg] || nd.lastDiffed[pg] > 0 || len(nd.diffs[pg]) > 0 ||
				nd.Mem.Prot(pg) != vm.NoAccess || rowNonZero(nd.applied[pg]) {
				pages = append(pages, pg)
			}
		}
		return pages
	}
	set := map[int]bool{}
	for pg := range nd.recTouched {
		set[pg] = true
	}
	for pg := range nd.dirty {
		set[pg] = true
	}
	for idx := base[nd.ID] + 1; idx <= nd.vc[nd.ID]; idx++ {
		for _, ref := range nd.know[nd.ID][idx-1].pages {
			set[int(ref.Page)] = true
		}
	}
	pages = make([]int, 0, len(set))
	for pg := range set {
		pages = append(pages, pg)
	}
	sort.Ints(pages)
	return pages
}

// rowNonZero reports whether any applied timestamp in the row is set.
func rowNonZero(row []int32) bool {
	for _, x := range row {
		if x != 0 {
			return true
		}
	}
	return false
}

// failAndRecover simulates this node's death at a barrier arrival and
// its in-place recovery. The node first drains every peer into the
// barrier — releasing the protocol token between checks, so peers can
// run, fetch (the "dead" node still answers; a pessimistic logger logs
// those serves, which the final incremental record below captures), and
// arrive — which guarantees machine-wide quiescence: no request is in
// flight when the links drop. It then detaches its transport links (on
// backends with real connections), wipes its memory image and protocol
// state, restores from the sink, and reattaches. Returning, the node
// proceeds into the barrier as the last arriver and so runs the barrier
// itself.
func (nd *Node) failAndRecover(b *barrier) {
	s := nd.sys
	if len(nd.held) > 0 {
		panic("tmk: injected fault while holding a lock")
	}
	nd.RecStats.Failures++
	if nd.tr != nil {
		nd.tr.Emit(obs.Event{
			Kind: obs.EvRecover, VT: int64(nd.p.Now()), WT: nd.tr.WallNow(),
			A: 0, Peer: int32(nd.ID),
		})
	}
	if b != nil {
		for len(b.arrivals) < s.N()-1 {
			nd.p.End()
			nd.p.Advance(recoveryPoll)
			nd.p.Begin()
		}
		// Quiesced: every peer is blocked in this barrier. Capture the
		// serves performed while they drained in.
		nd.writeRecord()
	}
	rec, _ := s.NW.(Recoverer)
	var rvt time.Duration
	var rwt int64
	if nd.tr != nil {
		rvt, rwt = nd.p.Now(), nd.tr.WallNow()
	}
	if rec != nil {
		if err := rec.Detach(nd.ID); err != nil {
			panic(fmt.Sprintf("tmk: detaching node %d: %v", nd.ID, err))
		}
	}
	nd.wipe()
	nd.restore()
	if rec != nil {
		if err := rec.Reattach(nd.ID); err != nil {
			panic(fmt.Sprintf("tmk: reattaching node %d: %v", nd.ID, err))
		}
	}
	nd.RecStats.Restores++
	if nd.tr != nil {
		nd.tr.Emit(obs.Event{
			Kind: obs.EvRecover, VT: int64(rvt), WT: rwt,
			Dur: int64(nd.p.Now() - rvt), WDur: nd.tr.WallNow() - rwt,
			A: 1, Peer: int32(nd.ID),
		})
	}
}

// wipe discards everything a restore rebuilds: the memory image (with
// twins and protections), the interval log, timestamps, the diff cache,
// and the notice bookkeeping. Application-level run-time state survives
// — held locks (none at a fault), Validate registrations (wsync, mode)
// and the adaptNode pointer — as does Stats: the tables report the run,
// not the surviving replica.
func (nd *Node) wipe() {
	for pg, ds := range nd.diffs {
		for _, d := range ds {
			if d.pooled {
				for _, r := range d.runs {
					nd.Mem.RecyclePage(r.Vals)
				}
			}
		}
		delete(nd.diffs, pg)
	}
	nd.Mem.WipeForRestore()
	for i := range nd.vc {
		nd.vc[i] = 0
		nd.lastBar[i] = 0
	}
	for o := range nd.know {
		nd.know[o] = nil
	}
	for pg := range nd.applied {
		row := nd.applied[pg]
		for i := range row {
			row[i] = 0
		}
		nd.lastDiffed[pg] = 0
	}
	clear(nd.pending)
	clear(nd.dirty)
	clear(nd.noTwin)
	nd.inflight = nd.inflight[:0]
	for pg := range nd.dirOwner {
		nd.dirOwner[pg] = -1
		nd.dirNext[pg] = -1
	}
}

// restore replays the node's record chain from the sink. See the file
// comment for what each piece is rebuilt from.
func (nd *Node) restore() {
	s := nd.sys
	recs, err := s.rec.Sink.Records(nd.ID)
	if err != nil {
		panic(fmt.Sprintf("tmk: reading checkpoint records for node %d: %v", nd.ID, err))
	}
	var last wire.Checkpoint
	for i, blob := range recs {
		f, _, err := wire.ParseFrame(blob)
		if err != nil {
			panic(fmt.Sprintf("tmk: decoding checkpoint record %d of node %d: %v", i, nd.ID, err))
		}
		ck, ok := f.Payload.(wire.Checkpoint)
		if !ok || int(ck.Node) != nd.ID {
			panic(fmt.Sprintf("tmk: record %d of node %d is not this node's checkpoint", i, nd.ID))
		}
		if i == 0 && !ck.Full {
			panic(fmt.Sprintf("tmk: record chain of node %d does not start at a full checkpoint", nd.ID))
		}
		for _, oi := range ck.Intervals {
			o := int(oi.Owner)
			if int32(len(nd.know[o]))+1 != oi.Idx {
				panic(fmt.Sprintf("tmk: node %d record gap: owner %d at %d, next record %d",
					nd.ID, o, len(nd.know[o]), oi.Idx))
			}
			nd.know[o] = append(nd.know[o], intervalFromWire(oi.IV))
		}
		for _, fr := range ck.Frames {
			pg := int(fr.Page)
			if fr.Dirty && fr.Twin == nil {
				panic(fmt.Sprintf("tmk: node %d record frames dirty page %d without a twin", nd.ID, pg))
			}
			nd.Mem.RestorePage(pg, fr.Words, vm.Prot(fr.Prot), fr.Twin)
			copy(nd.applied[pg], fr.Applied)
			nd.lastDiffed[pg] = fr.LastDiffed
			if fr.Dirty {
				nd.dirty[pg] = true
			} else {
				delete(nd.dirty, pg)
			}
			// The record's diff chain (appended below) supersedes whatever
			// an earlier record in the chain restored for this page.
			delete(nd.diffs, pg)
		}
		for _, wd := range ck.Diffs {
			pg := int(wd.Page)
			nd.diffs[pg] = append(nd.diffs[pg], diffFromWire(wd))
		}
		last = ck
	}
	copy(nd.vc, last.VC)
	copy(nd.lastBar, last.LastBar)
	for o := 0; o < s.N(); o++ {
		if int32(len(nd.know[o])) != nd.vc[o] {
			panic(fmt.Sprintf("tmk: node %d restored log of owner %d has %d intervals, clock says %d",
				nd.ID, o, len(nd.know[o]), nd.vc[o]))
		}
	}
	// Pending notices: every restored interval not yet reflected in the
	// page's restored applied row is outstanding again, and the page
	// cannot stay mapped (same rule learnInterval enforces live).
	for o := 0; o < s.N(); o++ {
		if o == nd.ID {
			continue
		}
		for idx := int32(1); idx <= nd.vc[o]; idx++ {
			for _, ref := range nd.know[o][idx-1].pages {
				pg := int(ref.Page)
				if nd.applied[pg][o] >= idx {
					continue
				}
				nd.pending[pg] = append(nd.pending[pg], notice{owner: o, idx: idx, whole: ref.Whole})
			}
		}
	}
	for pg := range nd.pending {
		if nd.dirty[pg] {
			panic(fmt.Sprintf("tmk: node %d restored page %d dirty with pending notices", nd.ID, pg))
		}
		nd.Mem.SetProtInit(pg, vm.NoAccess)
	}
	if nd.ad != nil {
		if err := nd.ad.det.RestoreSnapshot(last.Adapt); err != nil {
			panic(fmt.Sprintf("tmk: node %d restoring detector: %v", nd.ID, err))
		}
		nd.ad.fetched = map[int]bool{}
		for _, pg := range last.Fetched {
			nd.ad.fetched[int(pg)] = true
		}
	}
	if nd.dirOwner != nil {
		// wipe reset both directory arrays; the newest record carries the
		// complete probable-owner map, so no merge across the chain. The
		// delegation pointers (dirNext) restart empty — they are routing
		// hints whose loss only costs the first post-restore requester a
		// payload serve from this node instead of a redirect.
		for _, po := range last.Owners {
			nd.dirOwner[po.Page] = po.Owner
		}
	}
	nd.recLast = append([]int32(nil), last.VC...)
	nd.recEpoch = last.Epoch
	clear(nd.recTouched)
}

// MemSink is the in-memory SnapshotSink: one live record chain per
// node, a full record dropping the chain before it.
type MemSink struct {
	mu     sync.Mutex
	chains map[int][][]byte
}

// NewMemSink returns an empty in-memory sink.
func NewMemSink() *MemSink { return &MemSink{chains: map[int][][]byte{}} }

// Put appends a copy of the record, compacting on full records.
func (m *MemSink) Put(node int, epoch int32, full bool, rec []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if full {
		m.chains[node] = m.chains[node][:0]
	}
	m.chains[node] = append(m.chains[node], append([]byte(nil), rec...))
	return nil
}

// Records returns a copy of the node's live chain.
func (m *MemSink) Records(node int) ([][]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.chains[node]
	if len(c) == 0 {
		return nil, fmt.Errorf("tmk: no checkpoint records for node %d", node)
	}
	return append([][]byte(nil), c...), nil
}

// FileSink spills records to Dir, one file per record, named so a
// lexicographic listing is chain order. A full record removes the
// node's older files.
type FileSink struct {
	Dir string
}

func (fs *FileSink) name(node int, epoch int32, full bool) string {
	k := byte('i')
	if full {
		k = 'f'
	}
	return fmt.Sprintf("ckpt-n%04d-e%08d-%c.bin", node, epoch, k)
}

// Put writes the record, dropping the node's dead records first.
func (fs *FileSink) Put(node int, epoch int32, full bool, rec []byte) error {
	if full {
		old, err := fs.files(node)
		if err != nil {
			return err
		}
		for _, f := range old {
			if err := os.Remove(f); err != nil {
				return err
			}
		}
	}
	return os.WriteFile(filepath.Join(fs.Dir, fs.name(node, epoch, full)), rec, 0o644)
}

// Records reads the node's chain from the newest full record on.
func (fs *FileSink) Records(node int) ([][]byte, error) {
	names, err := fs.files(node)
	if err != nil {
		return nil, err
	}
	start := -1
	for i, f := range names {
		if f[len(f)-5] == 'f' {
			start = i
		}
	}
	if start < 0 {
		return nil, fmt.Errorf("tmk: no full checkpoint record for node %d in %s", node, fs.Dir)
	}
	var out [][]byte
	for _, f := range names[start:] {
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// files lists the node's record files in epoch order.
func (fs *FileSink) files(node int) ([]string, error) {
	names, err := filepath.Glob(filepath.Join(fs.Dir, fmt.Sprintf("ckpt-n%04d-e*.bin", node)))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}
