package tmk

import (
	"testing"
	"time"

	"sdsm/internal/cluster"
	"sdsm/internal/model"
	"sdsm/internal/shm"
	"sdsm/internal/sim"
)

// testSystem builds an n-node DSM over `words` words of shared memory.
func testSystem(n, words int) *System {
	e := sim.NewEngine(n)
	nw := cluster.New(e, model.SP2())
	layout := shm.NewLayout()
	layout.Alloc("mem", words)
	return New(e, nw, layout)
}

func run(t *testing.T, s *System, body func(nd *Node)) {
	t.Helper()
	if err := s.Run(body); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func region(lo, hi int) []shm.Region { return []shm.Region{{Lo: lo, Hi: hi}} }

// w writes value v at word addr through the protection machinery.
func w(nd *Node, addr int, v float64) {
	nd.Mem.EnsureWrite(nd.p, shm.Region{Lo: addr, Hi: addr + 1})
	nd.Mem.Data()[addr] = v
}

// r reads word addr through the protection machinery.
func r(nd *Node, addr int) float64 {
	nd.Mem.EnsureRead(nd.p, shm.Region{Lo: addr, Hi: addr + 1})
	return nd.Mem.Data()[addr]
}

func TestBarrierPropagatesWrites(t *testing.T) {
	s := testSystem(2, 2*shm.PageWords)
	run(t, s, func(nd *Node) {
		if nd.ID == 0 {
			w(nd, 10, 42)
		}
		nd.Barrier(1)
		if nd.ID == 1 {
			if got := r(nd, 10); got != 42 {
				t.Errorf("node 1 read %v, want 42", got)
			}
		}
	})
}

func TestInvalidateOnBarrierDeparture(t *testing.T) {
	s := testSystem(2, 2*shm.PageWords)
	run(t, s, func(nd *Node) {
		if nd.ID == 0 {
			w(nd, 10, 1)
		}
		nd.Barrier(1)
	})
	// Node 1 must have the page invalidated (lazy: data not moved yet).
	if len(s.Nodes[1].pending[0]) == 0 {
		t.Fatal("node 1 has no pending notice for page 0")
	}
	vc, _ := s.Stats()
	if vc.ReadFaults+vc.WriteFaults == 0 {
		t.Fatal("expected at least the write fault on node 0")
	}
}

func TestMultipleWriterFalseSharing(t *testing.T) {
	// Two nodes write disjoint words of the same page between barriers;
	// both must end with both updates (multiple-writer protocol).
	s := testSystem(2, shm.PageWords)
	run(t, s, func(nd *Node) {
		if nd.ID == 0 {
			w(nd, 3, 30)
		} else {
			w(nd, 400, 77)
		}
		nd.Barrier(1)
		if got := r(nd, 3); got != 30 {
			t.Errorf("node %d: word 3 = %v, want 30", nd.ID, got)
		}
		if got := r(nd, 400); got != 77 {
			t.Errorf("node %d: word 400 = %v, want 77", nd.ID, got)
		}
	})
}

func TestThreeWritersConverge(t *testing.T) {
	s := testSystem(3, shm.PageWords)
	run(t, s, func(nd *Node) {
		w(nd, 10*(nd.ID+1), float64(nd.ID+1))
		nd.Barrier(1)
		for i := 1; i <= 3; i++ {
			if got := r(nd, 10*i); got != float64(i) {
				t.Errorf("node %d: word %d = %v, want %d", nd.ID, 10*i, got, i)
			}
		}
	})
}

func TestLockMigratoryData(t *testing.T) {
	// A counter incremented under a lock must be seen by each next holder.
	s := testSystem(4, shm.PageWords)
	run(t, s, func(nd *Node) {
		for turn := 0; turn < 4; turn++ {
			nd.Acquire(7)
			v := r(nd, 0)
			w(nd, 0, v+1)
			nd.Release(7)
		}
	})
	// After all 16 increments, re-check on node 0 via a fresh system run is
	// not possible; check each node's applied copy by summing final values.
	var max float64
	for _, nd := range s.Nodes {
		if v := nd.Mem.Data()[0]; v > max {
			max = v
		}
	}
	if max != 16 {
		t.Fatalf("counter = %v, want 16", max)
	}
}

func TestFreeLockAcquireTiming(t *testing.T) {
	// Paper: minimum time to acquire a free lock is 427 µs. Lock 1 on a
	// 2-node system has home node 1; node 0 acquiring it (home == last
	// releaser) is the minimal remote case.
	s := testSystem(2, shm.PageWords)
	var elapsed time.Duration
	run(t, s, func(nd *Node) {
		if nd.ID == 0 {
			start := nd.p.Now()
			nd.Acquire(1)
			elapsed = nd.p.Now() - start
			nd.Release(1)
		}
	})
	if elapsed != 427*time.Microsecond {
		t.Fatalf("free lock acquire = %v, want 427µs", elapsed)
	}
}

func TestBarrierTimingNearPaper(t *testing.T) {
	// Paper: minimum 8-processor barrier is 893 µs.
	s := testSystem(8, shm.PageWords)
	var worst time.Duration
	run(t, s, func(nd *Node) {
		start := nd.p.Now()
		nd.Barrier(1)
		if d := nd.p.Now() - start; d > worst {
			worst = d
		}
	})
	if worst < 800*time.Microsecond || worst > 1000*time.Microsecond {
		t.Fatalf("8-node barrier = %v, want ~893µs", worst)
	}
}

func TestLockQueueing(t *testing.T) {
	// All nodes contend; critical sections must serialize in virtual time.
	s := testSystem(4, shm.PageWords)
	type span struct{ start, end time.Duration }
	spans := make([]span, 4)
	run(t, s, func(nd *Node) {
		nd.Acquire(3)
		start := nd.p.Now()
		nd.p.Advance(100 * time.Microsecond)
		spans[nd.ID] = span{start, nd.p.Now()}
		nd.Release(3)
	})
	for i := range spans {
		for j := range spans {
			if i == j {
				continue
			}
			a, b := spans[i], spans[j]
			if a.start < b.end && b.start < a.end {
				t.Fatalf("critical sections overlap: %v and %v", a, b)
			}
		}
	}
}

func TestValidateAggregatesMessages(t *testing.T) {
	// Node 0 writes 8 pages; node 1 reads them all. With per-fault fetching
	// there are 8 exchanges; with Validate there is 1.
	const pages = 8
	runCase := func(useValidate bool) (msgs int64, faults int64) {
		s := testSystem(2, pages*shm.PageWords)
		if err := s.Run(func(nd *Node) {
			if nd.ID == 0 {
				for pg := 0; pg < pages; pg++ {
					w(nd, pg*shm.PageWords, float64(pg+1))
				}
			}
			nd.Barrier(1)
			if nd.ID == 1 {
				if useValidate {
					nd.Validate(AccRead, region(0, pages*shm.PageWords), false)
				}
				for pg := 0; pg < pages; pg++ {
					if got := r(nd, pg*shm.PageWords); got != float64(pg+1) {
						t.Errorf("page %d = %v", pg, got)
					}
				}
			}
			nd.Barrier(2)
		}); err != nil {
			t.Fatal(err)
		}
		vc, _ := s.Stats()
		return s.NW.Stats().Msgs, vc.ReadFaults
	}
	msgsBase, faultsBase := runCase(false)
	msgsOpt, faultsOpt := runCase(true)
	if msgsOpt >= msgsBase {
		t.Fatalf("validate did not reduce messages: %d vs %d", msgsOpt, msgsBase)
	}
	if faultsOpt >= faultsBase {
		t.Fatalf("validate did not reduce faults: %d vs %d", faultsOpt, faultsBase)
	}
}

func TestWriteAllEliminatesTwinsAndDiffs(t *testing.T) {
	const pages = 4
	runCase := func(writeAll bool) (twins, diffs int64) {
		s := testSystem(2, pages*shm.PageWords)
		if err := s.Run(func(nd *Node) {
			for iter := 0; iter < 3; iter++ {
				if nd.ID == 0 {
					// Whole-section overwrite, as WRITE_ALL promises.
					if writeAll {
						nd.Validate(AccWriteAll, region(0, pages*shm.PageWords), false)
					}
					nd.Mem.EnsureWrite(nd.p, shm.Region{Lo: 0, Hi: pages * shm.PageWords})
					d := nd.Mem.Data()
					for i := 0; i < pages*shm.PageWords; i++ {
						d[i] = float64(iter*1000 + i%shm.PageWords)
					}
				}
				nd.Barrier(1)
				if nd.ID == 1 {
					nd.Validate(AccRead, region(0, pages*shm.PageWords), false)
					for pg := 0; pg < pages; pg++ {
						if got := r(nd, pg*shm.PageWords+5); got != float64(iter*1000+5) {
							t.Errorf("iter %d page %d word 5 = %v", iter, pg, got)
						}
					}
				}
				nd.Barrier(2)
			}
		}); err != nil {
			t.Fatal(err)
		}
		vc, _ := s.Stats()
		return vc.Twins, vc.Diffs
	}
	twinsBase, _ := runCase(false)
	twinsOpt, _ := runCase(true)
	if twinsOpt >= twinsBase {
		t.Fatalf("WRITE_ALL did not reduce twins: %d vs %d", twinsOpt, twinsBase)
	}
	if twinsOpt != 0 {
		t.Fatalf("WRITE_ALL version made %d twins, want 0", twinsOpt)
	}
}

func TestPushDeliversDataAndSkipsInvalidation(t *testing.T) {
	// Node 0 writes page 0; Push sends it to node 1 replacing a barrier.
	// After the next real barrier, node 1 must not re-invalidate the page.
	s := testSystem(2, 2*shm.PageWords)
	run(t, s, func(nd *Node) {
		reads := [][]shm.Region{
			0: {},
			1: {{Lo: 0, Hi: shm.PageWords}},
		}
		writes := [][]shm.Region{
			0: {{Lo: 0, Hi: shm.PageWords}},
			1: {},
		}
		if nd.ID == 0 {
			nd.Validate(AccWriteAll, region(0, shm.PageWords), false)
			d := nd.Mem.Data()
			for i := 0; i < shm.PageWords; i++ {
				d[i] = float64(i) + 0.5
			}
		}
		nd.Push(reads, writes)
		if nd.ID == 1 {
			if got := r(nd, 100); got != 100.5 {
				t.Errorf("pushed word = %v, want 100.5", got)
			}
		}
		faultsBefore := nd.Mem.Counters.ReadFaults
		nd.Barrier(9)
		if nd.ID == 1 {
			if got := r(nd, 200); got != 200.5 {
				t.Errorf("after barrier, word = %v, want 200.5", got)
			}
			if nd.Mem.Counters.ReadFaults != faultsBefore {
				t.Errorf("node 1 re-faulted on pushed page after barrier")
			}
		}
	})
}

func TestDiffAccumulation(t *testing.T) {
	// Migratory page under a lock chain: the last acquirer receives the
	// overlapping diffs of all previous writers (the IS phenomenon).
	const n = 4
	s := testSystem(n, shm.PageWords)
	run(t, s, func(nd *Node) {
		nd.Acquire(1)
		// Every node overwrites the same words.
		nd.Mem.EnsureWrite(nd.p, shm.Region{Lo: 0, Hi: 64})
		d := nd.Mem.Data()
		for i := 0; i < 64; i++ {
			d[i] = float64(nd.ID*1000 + i)
		}
		nd.Release(1)
		nd.Barrier(1)
	})
	_, ps := s.Stats()
	// Nodes 1..3 fault once each; node k applies k overlapping diffs.
	if ps.DiffsApplied < 1+2+3 {
		t.Fatalf("diffs applied = %d, want >= 6 (accumulation)", ps.DiffsApplied)
	}
}

func TestWholePageNoticeSubsumesOlderDiffs(t *testing.T) {
	// When writers use WRITE_ALL (no twins), a reader fetches only from the
	// most recent whole-page writer instead of accumulating diffs.
	const n = 4
	s := testSystem(n, shm.PageWords)
	run(t, s, func(nd *Node) {
		// Stagger so the lock chain order is 0,1,2,3 regardless of the
		// interrupt charges the lock home fields.
		nd.p.Advance(time.Duration(nd.ID) * time.Millisecond)
		nd.Acquire(1)
		nd.Validate(AccReadWriteAll, region(0, shm.PageWords), false)
		d := nd.Mem.Data()
		for i := 0; i < shm.PageWords; i++ {
			d[i] = float64(nd.ID*1000 + i)
		}
		nd.Release(1)
		nd.Barrier(1)
		if nd.ID == 0 {
			nd.Validate(AccRead, region(0, shm.PageWords), false)
			if got := r(nd, 5); got != float64(3*1000+5) {
				t.Errorf("final read = %v, want %v", got, float64(3*1000+5))
			}
		}
		nd.Barrier(2)
	})
	_, ps := s.Stats()
	if ps.DiffsApplied > 6 {
		t.Fatalf("whole-page fetches applied %d diffs; accumulation not avoided", ps.DiffsApplied)
	}
}

func TestAsyncValidateOverlaps(t *testing.T) {
	// With compute between Validate and access, async beats sync.
	runCase := func(async bool) time.Duration {
		s := testSystem(2, 8*shm.PageWords)
		var done time.Duration
		if err := s.Run(func(nd *Node) {
			if nd.ID == 0 {
				nd.Mem.EnsureWrite(nd.p, shm.Region{Lo: 0, Hi: 8 * shm.PageWords})
				d := nd.Mem.Data()
				for i := range d {
					d[i] = float64(i)
				}
			}
			nd.Barrier(1)
			if nd.ID == 1 {
				nd.Validate(AccRead, region(0, 8*shm.PageWords), async)
				nd.p.Advance(2 * time.Millisecond) // independent compute
				if got := r(nd, 77); got != 77 {
					t.Errorf("read %v, want 77", got)
				}
				done = nd.p.Now()
			}
			nd.Barrier(2)
		}); err != nil {
			t.Fatal(err)
		}
		return done
	}
	sync := runCase(false)
	async := runCase(true)
	if async >= sync {
		t.Fatalf("async validate (%v) not faster than sync (%v)", async, sync)
	}
}

func TestValidateWSyncAtBarrier(t *testing.T) {
	// Producer writes; consumers register Validate_w_sync before the
	// barrier; data arrives with the synchronization, with no page faults
	// on the consumers afterwards.
	const n = 4
	s := testSystem(n, shm.PageWords)
	run(t, s, func(nd *Node) {
		if nd.ID == 0 {
			nd.Mem.EnsureWrite(nd.p, shm.Region{Lo: 0, Hi: 64})
			d := nd.Mem.Data()
			for i := 0; i < 64; i++ {
				d[i] = float64(i) * 2
			}
		}
		if nd.ID != 0 {
			nd.ValidateWSync(AccRead, region(0, 64))
		}
		nd.Barrier(1)
		if nd.ID != 0 {
			before := nd.Mem.Counters.ReadFaults
			if got := r(nd, 30); got != 60 {
				t.Errorf("node %d read %v, want 60", nd.ID, got)
			}
			if nd.Mem.Counters.ReadFaults != before {
				t.Errorf("node %d faulted despite Validate_w_sync", nd.ID)
			}
		}
		nd.Barrier(2)
	})
	_, ps := s.Stats()
	if ps.WSyncServes == 0 {
		t.Fatal("no wsync responses recorded")
	}
	if ps.WSyncBcasts == 0 {
		t.Fatal("identical data to all consumers should broadcast")
	}
}

func TestValidateWSyncOnLock(t *testing.T) {
	s := testSystem(2, shm.PageWords)
	run(t, s, func(nd *Node) {
		if nd.ID == 0 {
			nd.Acquire(5)
			nd.Mem.EnsureWrite(nd.p, shm.Region{Lo: 0, Hi: 32})
			d := nd.Mem.Data()
			for i := 0; i < 32; i++ {
				d[i] = 7
			}
			nd.Release(5)
		} else {
			nd.p.Advance(5 * time.Millisecond) // let node 0 go first
			nd.ValidateWSync(AccRead, region(0, 32))
			nd.Acquire(5)
			before := nd.Mem.Counters.ReadFaults
			if got := r(nd, 10); got != 7 {
				t.Errorf("read %v, want 7", got)
			}
			if nd.Mem.Counters.ReadFaults != before {
				t.Error("faulted despite piggybacked fetch")
			}
			nd.Release(5)
		}
	})
}

func TestDeterministicStats(t *testing.T) {
	runOnce := func() (int64, int64, time.Duration) {
		s := testSystem(4, 4*shm.PageWords)
		if err := s.Run(func(nd *Node) {
			for iter := 0; iter < 3; iter++ {
				w(nd, nd.ID*shm.PageWords+iter, float64(nd.ID*10+iter))
				nd.Barrier(1)
				if got := r(nd, ((nd.ID+1)%4)*shm.PageWords+iter); got != float64(((nd.ID+1)%4)*10+iter) {
					t.Errorf("neighbor value wrong: %v", got)
				}
				nd.Barrier(2)
			}
		}); err != nil {
			t.Fatal(err)
		}
		st := s.NW.Stats()
		return st.Msgs, st.Bytes, s.MaxTime()
	}
	m1, b1, t1 := runOnce()
	for i := 0; i < 3; i++ {
		m2, b2, t2 := runOnce()
		if m1 != m2 || b1 != b2 || t1 != t2 {
			t.Fatalf("nondeterministic: (%d,%d,%v) vs (%d,%d,%v)", m1, b1, t1, m2, b2, t2)
		}
	}
}

func TestUniprocessorNoMessages(t *testing.T) {
	s := testSystem(1, 4*shm.PageWords)
	run(t, s, func(nd *Node) {
		for i := 0; i < 100; i++ {
			w(nd, i, float64(i))
		}
		nd.Barrier(1)
		nd.Acquire(2)
		nd.Release(2)
		nd.Push([][]shm.Region{{}}, [][]shm.Region{{}})
		if got := r(nd, 50); got != 50 {
			t.Errorf("read %v", got)
		}
	})
	if s.NW.Stats().Msgs != 0 {
		t.Fatalf("uniprocessor run sent %d messages", s.NW.Stats().Msgs)
	}
}

func TestReacquireOwnLockIsCheap(t *testing.T) {
	s := testSystem(2, shm.PageWords)
	run(t, s, func(nd *Node) {
		if nd.ID == 0 {
			nd.Acquire(0) // home is node 0 itself
			nd.Release(0)
			before := s.NW.Stats().Msgs
			start := nd.p.Now()
			nd.Acquire(0)
			if s.NW.Stats().Msgs != before {
				t.Error("re-acquiring own lock sent messages")
			}
			if nd.p.Now()-start > 100*time.Microsecond {
				t.Errorf("re-acquire took %v", nd.p.Now()-start)
			}
			nd.Release(0)
		}
	})
}
