package tmk

import (
	"time"

	"sdsm/internal/obs"
	"sdsm/internal/vm"
	"sdsm/internal/wire"
)

// Protocol event tracing (DESIGN.md §11). Every emit site in the protocol
// is guarded by a nil check on the node's tracer, issues no cost-model
// charges, and allocates nothing: with tracing off the protocol's virtual
// times, accounted bytes, and allocation counts are byte-identical to an
// untraced build (the PR 6 alloc gate and the golden tables pin this).
//
// Emit sites run inside protocol sections — serialized machine-wide by the
// protocol token — except serves on the real backend, which run on the
// requester's goroutine against the responder's ring; the per-node ring
// mutex covers that.

// EnableTrace attaches an observability machine: one ring tracer per node,
// plus the vm layer's twin/diff hook. Must be called after New and before
// Run. The caller picks the clock domain when building m (obs.NewMachine):
// virtual timeline on sim, wall on real/net.
func (s *System) EnableTrace(m *obs.Machine) {
	s.trace = m
	for i, nd := range s.Nodes {
		nd.tr = m.Nodes[i]
		nd.Mem.Trace = m.Nodes[i]
		if nd.ad != nil {
			nd.ad.det.LogTrans = true
		}
	}
}

// traceFault closes a fault-service span opened at Fault entry (the start
// stamps are the deferred call's arguments, evaluated at entry).
func (nd *Node) traceFault(page int, acc vm.Access, vt time.Duration, wt int64) {
	var a int32
	if acc == vm.Write {
		a = 1
	}
	e := obs.Event{
		Kind: obs.EvFault, VT: int64(vt), WT: wt,
		Dur: int64(nd.p.Now() - vt), WDur: nd.tr.WallNow() - wt,
		Page: int32(page), A: a,
	}
	nd.tr.Emit(e)
	nd.sys.trace.FaultNS.Observe(e.Dur)
}

// traceFetchReq records an outgoing diff request to responder r covering
// npages pages (pg is the first), advancing the pair's flow sequence.
func (nd *Node) traceFetchReq(pg, r, npages int) {
	nd.tr.Emit(obs.Event{
		Kind: obs.EvFetchReq, VT: int64(nd.p.Now()), WT: nd.tr.WallNow(),
		Page: int32(pg), Peer: int32(r), A: int32(npages),
		Seq: nd.tr.NextFetchSeq(r),
	})
}

// traceServe records a served diff exchange on the responder's ring and
// feeds the chain-length histogram (diffs per requested page).
func (nd *Node) traceServe(req int, pages []int32, out []wire.Diff, bytes int, vt time.Duration, wt int64) {
	var pg int32
	if len(pages) > 0 {
		pg = pages[0]
	}
	for _, want := range pages {
		var chain int64
		for i := range out {
			if out[i].Page == want {
				chain++
			}
		}
		if chain > 0 {
			nd.sys.trace.ChainLen.Observe(chain)
		}
	}
	nd.tr.Emit(obs.Event{
		Kind: obs.EvServe, VT: int64(vt), WT: wt,
		Dur: int64(nd.p.Now() - vt), WDur: nd.tr.WallNow() - wt,
		Page: pg, Peer: int32(req), A: int32(len(out)), B: int32(bytes),
		Seq: nd.tr.NextServeSeq(req),
	})
}

// traceNotices records one write-notice event per page of the interval the
// node just closed (extents in words; C is the interval index).
func (nd *Node) traceNotices(iv interval, idx int32) {
	vt, wt := int64(nd.p.Now()), nd.tr.WallNow()
	for _, ref := range iv.pages {
		nd.tr.Emit(obs.Event{
			Kind: obs.EvNotice, VT: vt, WT: wt,
			Page: ref.Page, A: ref.ExtLo, B: ref.ExtHi, C: idx,
		})
	}
}

// traceBarDepart closes the barrier-wait span opened at arrival and feeds
// the barrier-wait histogram.
func (nd *Node) traceBarDepart(id int, epoch int32, avt time.Duration, awt int64) {
	e := obs.Event{
		Kind: obs.EvBarDepart, VT: int64(avt), WT: awt,
		Dur: int64(nd.p.Now() - avt), WDur: nd.tr.WallNow() - awt,
		A: int32(id), B: epoch,
	}
	nd.tr.Emit(e)
	nd.sys.trace.BarrierNS.Observe(e.Dur)
}

// traceGrant records a lock grant on the granter's ring (called with the
// granter node, which may be a peer of the acquirer running this code) and
// feeds the grant-bytes histogram. seq is the grant's flow sequence, read
// back by the acquirer's EvLockAcq.
func (s *System) traceGrant(granter *Node, lockID, to int, g wire.Grant, seq int32) {
	granter.tr.Emit(obs.Event{
		Kind: obs.EvLockGrant, VT: int64(granter.p.Now()), WT: granter.tr.WallNow(),
		Peer: int32(to), A: int32(lockID), B: g.Bytes, C: int32(len(g.Pushed)),
		Seq: seq,
	})
	s.trace.GrantBytes.Observe(int64(g.Bytes))
}

// traceLockAcq closes the lock-wait span opened at Acquire entry. seq links
// the acquisition to the grant that satisfied it (0: no grant crossed
// nodes — single node, or a self-reacquire).
func (nd *Node) traceLockAcq(id int, seq int32, avt time.Duration, awt int64) {
	nd.tr.Emit(obs.Event{
		Kind: obs.EvLockAcq, VT: int64(avt), WT: awt,
		Dur: int64(nd.p.Now() - avt), WDur: nd.tr.WallNow() - awt,
		A: int32(id), Seq: seq,
	})
}
