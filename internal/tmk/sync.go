package tmk

import (
	"fmt"
	"sort"
	"time"
)

// lock is the shared state of one TreadMarks lock: a static home node
// forwards acquire requests to the last releaser.
type lock struct {
	id           int
	home         int
	holder       int // -1 when free
	lastReleaser int
	queue        []*lockWaiter
}

type lockWaiter struct {
	nd *Node
	// tAtHolder is when the forwarded request has been fielded by the
	// holder.
	tAtHolder time.Duration
}

func (s *System) lock(id int) *lock {
	l, ok := s.locks[id]
	if !ok {
		home := id % s.N()
		l = &lock{id: id, home: home, holder: -1, lastReleaser: home}
		s.locks[id] = l
	}
	return l
}

// grant carries what a releaser hands to an acquirer: the write notices
// the acquirer lacks, plus any diffs piggybacked for a pending
// Validate_w_sync.
type grant struct {
	intervals []ownedInterval
	served    []*storedDiff
	bytes     int
}

type ownedInterval struct {
	owner int
	idx   int32
	iv    interval
}

// buildGrant assembles the grant for req, including Validate_w_sync
// piggybacked diffs ("in the case of a lock acquire, the requested data is
// piggy-backed on the response"). Only diffs present locally are sent.
func (nd *Node) buildGrant(req *Node) *grant {
	g := &grant{}
	for o := range nd.vc {
		for idx := req.vc[o] + 1; idx <= nd.vc[o]; idx++ {
			iv := nd.know[o][idx-1]
			g.intervals = append(g.intervals, ownedInterval{owner: o, idx: idx, iv: iv})
			g.bytes += iv.wireBytes()
		}
	}
	for _, ws := range req.wsync {
		for _, pg := range ws.pages {
			nd.p.Charge(nd.sys.Costs.SectionScanPerPage)
			if nd.dirty[pg] {
				nd.flushLocalDiff(pg, false)
			}
			for _, d := range nd.diffs[pg] {
				if d.creator == req.ID {
					continue
				}
				if d.helps(req.applied[pg]) {
					g.served = append(g.served, d)
					g.bytes += d.wireBytes()
				}
			}
		}
	}
	return g
}

// applyGrant merges a grant at the acquirer.
func (nd *Node) applyGrant(g *grant) {
	for _, oi := range g.intervals {
		nd.learnInterval(oi.owner, oi.idx, oi.iv)
	}
	nd.applyDiffs(g.served)
	nd.consumeWSync()
}

// Acquire obtains lock id, receiving the releaser's write notices
// (invalidations happen here, per lazy release consistency).
func (nd *Node) Acquire(id int) {
	nd.p.Begin()
	defer nd.p.End()
	nd.Mem.BeginProtBatch()
	defer nd.Mem.FlushProtBatch(nd.p)
	nd.completeInflight()
	nd.Stats.LockAcquires++
	s := nd.sys
	c := s.Costs
	if s.N() == 1 {
		nd.p.Charge(c.LockMgmt)
		nd.consumeWSync()
		return
	}
	l := s.lock(id)
	t := nd.p.Now()
	if l.home != nd.ID {
		t = s.NW.Message(nd.ID, l.home, t, 0)
	}
	s.H.Proc(l.home).Charge(c.LockMgmt)
	t += c.LockMgmt

	if l.holder != -1 {
		if l.holder != l.home {
			t = s.NW.Message(l.home, l.holder, t, 0)
			s.H.Proc(l.holder).Charge(c.LockMgmt)
			t += c.LockMgmt
		}
		l.queue = append(l.queue, &lockWaiter{nd: nd, tAtHolder: t})
		nd.p.Block(fmt.Sprintf("lock %d", id))
		g := nd.grantInbox
		nd.grantInbox = nil
		nd.applyGrant(g)
		return
	}

	l.holder = nd.ID
	r := l.lastReleaser
	if r == nd.ID {
		// Re-acquiring a lock we released last: nothing new to learn.
		if l.home != nd.ID {
			t = s.NW.Message(l.home, nd.ID, t, 0)
		}
		nd.p.SetClock(t)
		nd.consumeWSync()
		return
	}
	if r != l.home {
		t = s.NW.Message(l.home, r, t, 0)
		s.H.Proc(r).Charge(c.LockMgmt)
		t += c.LockMgmt
	}
	// The last releaser may be mid-computation on the real host; Hold
	// serializes the grant construction (which may flush its diffs)
	// against its compute section.
	var g *grant
	nd.p.Hold(s.Nodes[r].p, func() { g = s.Nodes[r].buildGrant(nd) })
	s.H.Proc(r).Charge(c.LockMgmt)
	t += c.LockMgmt
	t = s.NW.Message(r, nd.ID, t, g.bytes)
	nd.p.SetClock(t)
	nd.applyGrant(g)
}

// Release ends the critical section: the open interval closes (a release
// point) and a queued waiter, if any, is granted the lock directly.
func (nd *Node) Release(id int) {
	nd.p.Begin()
	defer nd.p.End()
	nd.Mem.BeginProtBatch()
	defer nd.Mem.FlushProtBatch(nd.p)
	nd.completeInflight()
	nd.closeInterval()
	s := nd.sys
	if s.N() == 1 {
		return
	}
	l := s.lock(id)
	if l.holder != nd.ID {
		panic(fmt.Sprintf("tmk: node %d releasing lock %d held by %d", nd.ID, id, l.holder))
	}
	l.lastReleaser = nd.ID
	if len(l.queue) == 0 {
		l.holder = -1
		return
	}
	w := l.queue[0]
	l.queue = l.queue[1:]
	l.holder = w.nd.ID
	g := nd.buildGrant(w.nd)
	t := nd.p.Now()
	if w.tAtHolder > t {
		t = w.tAtHolder
	}
	t += s.Costs.LockMgmt
	t = s.NW.Message(nd.ID, w.nd.ID, t, g.bytes)
	w.nd.grantInbox = g
	nd.p.Wake(w.nd.p, t)
}

// barrier is one episode of a named barrier.
type barrier struct {
	arrivals []*barrierArrival
}

type barrierArrival struct {
	nd *Node
	at time.Duration
	vc []int32 // the node's vector time at arrival
}

// departInfo is staged for each node by the barrier master logic.
type departInfo struct {
	at        time.Duration
	intervals []ownedInterval
	remoteWS  []remoteWSync
}

// remoteWSync is one node's Validate_w_sync registration together with the
// diffs the responsible processors contributed; the data rides the barrier
// departure message ("the data can be broadcast to all other processors at
// the time of the barrier").
type remoteWSync struct {
	req    *Node
	pages  []int
	served []*storedDiff
	bytes  int
}

func (s *System) barrier(id int) *barrier {
	b, ok := s.barriers[id]
	if !ok {
		b = &barrier{}
		s.barriers[id] = b
	}
	return b
}

// Barrier synchronizes all nodes. Arrival closes the open interval; the
// master (node 0) gathers vector times and write notices from the arrival
// messages and redistributes the missing notices on the departure
// messages; departure applies the invalidations. Validate_w_sync requests
// ride the arrival and departure messages and are answered right after
// departure (Section 3.2.1), with broadcast when a responder sends the
// same data to everyone.
func (nd *Node) Barrier(id int) {
	nd.p.Begin()
	defer nd.p.End()
	nd.Mem.BeginProtBatch()
	defer nd.Mem.FlushProtBatch(nd.p)
	nd.completeInflight()
	nd.closeInterval()
	nd.Stats.Barriers++
	s := nd.sys
	if s.N() == 1 {
		nd.consumeWSync()
		return
	}
	b := s.barrier(id)
	b.arrivals = append(b.arrivals, &barrierArrival{nd: nd, at: nd.p.Now(), vc: append([]int32(nil), nd.vc...)})
	if len(b.arrivals) < s.N() {
		nd.p.Block(fmt.Sprintf("barrier %d", id))
		nd.postBarrier()
		return
	}
	delete(s.barriers, id)
	s.runBarrier(b, nd)
	nd.postBarrier()
}

// runBarrier executes the master logic in the last arriver's context.
func (s *System) runBarrier(b *barrier, executor *Node) {
	c := s.Costs
	master := s.Nodes[0]
	n := s.N()

	// Arrival messages, processed in arrival order; the master merges all
	// write notices into its own state (charging its own processor for the
	// invalidations it performs on itself).
	var tDep time.Duration
	for _, a := range b.arrivals {
		if a.nd == master {
			if a.at > tDep {
				tDep = a.at
			}
			continue
		}
		bytes := 16
		for o := range master.vc {
			for idx := master.vc[o] + 1; idx <= a.nd.vc[o]; idx++ {
				bytes += a.nd.know[o][idx-1].wireBytes()
			}
		}
		h := s.NW.Message(a.nd.ID, master.ID, a.at, bytes)
		if h > tDep {
			tDep = h
		}
		for o := range master.vc {
			if o == master.ID {
				continue
			}
			for idx := master.vc[o] + 1; idx <= a.nd.vc[o]; idx++ {
				master.learnInterval(o, idx, a.nd.know[o][idx-1])
			}
		}
	}
	// The master fields n-1 arrival interrupts back to back.
	tDep += time.Duration(n-2)*c.RecvOverhead + c.BarrierMgmt

	// With all notices merged, resolve the Validate_w_sync requests: the
	// responsible processors contribute their diffs now (every processor
	// has arrived, so the requested data is final) and the payload rides
	// the departure messages. Identical payloads to every requester count
	// as a broadcast.
	var allWS []remoteWSync
	for _, a := range b.arrivals {
		q := a.nd
		pageSet := map[int]bool{}
		for _, ws := range q.wsync {
			for _, pg := range ws.pages {
				pageSet[pg] = true
			}
		}
		if len(pageSet) == 0 {
			continue
		}
		rw := remoteWSync{req: q}
		for _, pg := range sortedSet(pageSet) {
			rw.pages = append(rw.pages, pg)
			for _, r := range master.wsyncResponder(q, pg) {
				if r == q.ID {
					continue
				}
				resp := s.Nodes[r]
				resp.p.Charge(c.SectionScanPerPage)
				if resp.dirty[pg] {
					resp.flushLocalDiff(pg, false)
				}
				for _, d := range resp.diffs[pg] {
					if d.creator == q.ID || (d.creator != r && !d.whole) {
						continue
					}
					if d.helps(q.applied[pg]) {
						rw.served = append(rw.served, d)
						rw.bytes += d.wireBytes()
						resp.Stats.WSyncServes++
					}
				}
			}
		}
		allWS = append(allWS, rw)
	}
	// Broadcast accounting: a diff delivered to every other processor is a
	// broadcast.
	fanout := map[*storedDiff]int{}
	for _, rw := range allWS {
		for _, d := range rw.served {
			fanout[d]++
		}
	}
	for d, k := range fanout {
		if k == n-1 {
			s.Nodes[d.creator].Stats.WSyncBcasts++
		}
	}

	// Departure messages, serialized at the master; Validate_w_sync
	// payloads ride along.
	dep := tDep
	for _, a := range b.arrivals {
		if a.nd == master {
			continue
		}
		var ivs []ownedInterval
		bytes := 16
		for o := range master.vc {
			for idx := a.vc[o] + 1; idx <= master.vc[o]; idx++ {
				iv := master.know[o][idx-1]
				ivs = append(ivs, ownedInterval{owner: o, idx: idx, iv: iv})
				bytes += iv.wireBytes()
			}
		}
		for i := range allWS {
			if allWS[i].req == a.nd {
				bytes += allWS[i].bytes
			}
		}
		h := s.NW.Message(master.ID, a.nd.ID, dep, bytes)
		dep += c.SendOverhead
		a.nd.depart = &departInfo{at: h, intervals: ivs, remoteWS: allWS}
	}
	master.depart = &departInfo{at: tDep + time.Duration(n-1)*c.SendOverhead, remoteWS: allWS}

	for _, a := range b.arrivals {
		if a.nd == executor {
			continue
		}
		executor.p.Wake(a.nd.p, a.nd.depart.at)
	}
	executor.p.SetClock(executor.depart.at)
}

// depart is staged by runBarrier; postBarrier consumes it.
func (nd *Node) postBarrier() {
	d := nd.depart
	nd.depart = nil
	if d == nil {
		panic(fmt.Sprintf("tmk: node %d woke from barrier without departure info", nd.ID))
	}
	nd.p.SetClock(d.at)
	for _, oi := range d.intervals {
		if oi.owner == nd.ID {
			continue
		}
		nd.learnInterval(oi.owner, oi.idx, oi.iv)
	}
	for i := range d.remoteWS {
		if d.remoteWS[i].req == nd {
			nd.applyDiffs(d.remoteWS[i].served)
		}
	}
	nd.consumeWSync()
}

// wsyncResponder determines, from post-barrier global knowledge, which
// node answers requester q's Validate_w_sync for page pg. Every node
// computes the same assignment independently.
func (nd *Node) wsyncResponder(q *Node, pg int) []int {
	var latest notice
	owners := map[int]bool{}
	for o := range nd.vc {
		if o == q.ID {
			continue
		}
		for idx := q.applied[pg][o] + 1; idx <= nd.vc[o]; idx++ {
			ref, ok := nd.know[o][idx-1].find(pg)
			if !ok {
				continue
			}
			owners[o] = true
			if idx > latest.idx || (idx == latest.idx && o > latest.owner) {
				latest = notice{owner: o, idx: idx, whole: ref.whole}
			}
		}
	}
	if len(owners) == 0 {
		return nil
	}
	if latest.whole {
		return []int{latest.owner}
	}
	out := make([]int, 0, len(owners))
	for o := range owners {
		out = append(out, o)
	}
	sort.Ints(out)
	return out
}

func (iv interval) find(pg int) (pageRef, bool) {
	i := sort.Search(len(iv.pages), func(i int) bool { return int(iv.pages[i].page) >= pg })
	if i < len(iv.pages) && int(iv.pages[i].page) == pg {
		return iv.pages[i], true
	}
	return pageRef{}, false
}

const tagWSync = 100

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func sortedSet(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
