package tmk

import (
	"fmt"
	"sort"
	"time"

	"sdsm/internal/adapt"
	"sdsm/internal/host"
	"sdsm/internal/obs"
	"sdsm/internal/shm"
	"sdsm/internal/wire"
)

// Hand slots for out-of-band protocol payloads (see host.Transport.Hand):
// lock grants and barrier departures are staged for their consumer before
// it is woken, and cross the wire encoded on socket transports.
const (
	slotGrant host.Tag = 1 + iota
	slotDepart
)

// lock is the control state of one TreadMarks lock: a static home node
// forwards acquire requests to the last releaser. The control state lives
// with the machine (under the protocol-section token); the grant payloads
// are wire values. det is the lock-scope adaptive detector (nil unless
// EnableAdapt): it shares the lock's serialization — every hand-off and
// every holder's fetch report reach it in the lock's own total order, so
// its decisions are a pure function of that serialized history and need
// no cross-node negotiation (see internal/adapt's LockDetector).
type lock struct {
	id           int
	home         int
	holder       int // -1 when free
	lastReleaser int
	queue        []*lockWaiter
	det          *adapt.LockDetector

	// grantSeq numbers this lock's grants for trace flow arrows (advanced
	// only when tracing is on). Like the rest of the control state it is
	// machine-shared on every backend, and the acquirer can read the
	// sequence of its own grant after waking: no later grant of this lock
	// can exist until the new holder releases.
	grantSeq int32
}

// adaptDet returns the lock's detector, creating it on first use when the
// machine runs the adaptive protocol.
func (l *lock) adaptDet(s *System) *adapt.LockDetector {
	if !s.adaptOn() {
		return nil
	}
	if l.det == nil {
		l.det = adapt.NewLock(s.adaptCfg)
	}
	return l.det
}

// lockWaiter is a queued acquire: the waiter's identity plus the
// synchronization info it presented (vector time and Validate_w_sync
// needs — a snapshot, valid because the waiter blocks until granted).
type lockWaiter struct {
	id   int
	p    host.Proc
	info wire.SyncInfo
	// tAtHolder is when the forwarded request has been fielded by the
	// holder.
	tAtHolder time.Duration
}

func (s *System) lock(id int) *lock {
	l, ok := s.locks[id]
	if !ok {
		home := id % s.N()
		l = &lock{id: id, home: home, holder: -1, lastReleaser: home}
		s.locks[id] = l
	}
	return l
}

// buildGrant assembles the grant for the acquirer described by info: the
// write notices it lacks, plus Validate_w_sync piggybacked diffs ("in the
// case of a lock acquire, the requested data is piggy-backed on the
// response"). Only diffs present locally are sent. pushPages, when
// non-empty, is the lock-scope adaptive piggyback: the detector predicted
// the acquirer will fault on these pages in its critical section, so the
// releaser flushes them and attaches every diff the acquirer's presented
// vector time proves it cannot have seen — the run-time analogue of the
// compiler's Validate_w_sync data, riding the same message. The result is
// a wire value sharing nothing with this node's cache.
func (nd *Node) buildGrant(reqID int, info wire.SyncInfo, pushPages []int) wire.Grant {
	g := wire.Grant{}
	for o := range nd.vc {
		for idx := info.VC[o] + 1; idx <= nd.vc[o]; idx++ {
			w := nd.know[o][idx-1].toWire()
			g.Intervals = append(g.Intervals, wire.OwnedInterval{Owner: int32(o), Idx: idx, IV: w})
			g.Bytes += int32(w.AccountedBytes(nd.sys.adaptOn(), shm.PageWords))
		}
	}
	for _, need := range info.Needs {
		for i, pg32 := range need.Pages {
			pg := int(pg32)
			nd.p.Charge(nd.sys.Costs.SectionScanPerPage)
			if nd.dirty[pg] {
				nd.flushLocalDiff(pg, false)
			}
			for _, d := range nd.diffs[pg] {
				if d.creator == reqID {
					continue
				}
				if d.helps(need.Applied[i]) {
					g.Served = append(g.Served, d.toWire())
					g.Bytes += int32(d.wireBytes())
				}
			}
		}
	}
	if len(pushPages) > 0 {
		// The acquirer's applied floors for the bound pages ride the
		// acquire request (info.Floors, see acquireFloors), so the chain
		// each page ships is trimmed to the tail the acquirer actually
		// lacks — the same filter a demand fetch against this node would
		// apply. A pushed page the floors missed (the detector re-bound
		// the edge at grant time) falls back to the zero floor: the full
		// cached chain, what a cold requester would get. Either way chains
		// stay gap-free per creator: the receiver prunes write notices by
		// applied coverage, and a chain gap would silently drop the
		// missing intervals' content (see usablePushed). Pages the
		// acquirer registered via Validate_w_sync were already served
		// exactly above — pushing them too would ship (and bill) the same
		// diffs twice.
		needed := map[int]bool{}
		for _, need := range info.Needs {
			for _, pg32 := range need.Pages {
				needed[int(pg32)] = true
			}
		}
		zero := make([]int32, nd.sys.N())
		var pagesPushed int64
		var pushed []wire.Diff
		for _, pg := range pushPages {
			if needed[pg] {
				continue
			}
			nd.p.Charge(nd.sys.Costs.SectionScanPerPage)
			floor := zero
			for _, fn := range info.Floors {
				for j, p32 := range fn.Pages {
					if int(p32) == pg {
						floor = fn.Applied[j]
						break
					}
				}
			}
			ds := nd.collectDiffs(reqID, pg, floor)
			for _, d := range ds {
				pushed = append(pushed, d.toWire())
			}
			if len(ds) > 0 {
				pagesPushed++
			}
		}
		// The chains of a critical section's contiguous pages repeat the
		// same headers page after page; section-coalescing them
		// (wire.CoalesceDiffs) ships each shared header once — the byte
		// economy Table B's IS rows measure.
		g.Pushed = wire.CoalesceDiffs(pushed)
		for _, sp := range g.Pushed {
			g.Bytes += int32(sp.WireBytes())
		}
		// Count only piggybacks that actually shipped diffs: a bound page
		// the releaser has nothing cached for adds no payload and must not
		// inflate the grant/page counters Table B reports.
		if len(g.Pushed) > 0 {
			nd.Stats.AdaptLockGrants++
			nd.Stats.AdaptLockPagesPush += pagesPushed
		}
	}
	return g
}

// applyGrant merges a grant at the acquirer. Served and usable Pushed
// diffs are applied in one pass: applyDiffs globally sorts by coverage,
// and the two sets may overlap the same pages. Pushed diffs thus take the
// identical path a demand fetch would — ordering, applied-timestamp
// advancement, notice pruning, revalidation — which is why adapt-on and
// adapt-off runs produce bit-identical memory images.
func (nd *Node) applyGrant(g wire.Grant) {
	for _, oi := range g.Intervals {
		nd.learnInterval(int(oi.Owner), oi.Idx, intervalFromWire(oi.IV))
	}
	diffs := g.Served
	if len(g.Pushed) > 0 {
		// Expand the piggyback's section spans back to the per-page diffs
		// they encode: the span form is a header economy on the wire, and
		// the apply path — complete-or-nothing filtering included — stays
		// the version-3 per-page path unchanged.
		diffs = append(append([]wire.Diff(nil), g.Served...), nd.usablePushed(g.Served, wire.ExpandSpans(g.Pushed))...)
	}
	nd.applyDiffs(diffs)
	nd.consumeWSync()
}

// usablePushed filters piggybacked diffs down to the pages the grant
// resolves completely: a pushed page is applied only when the grant's
// diffs cover every write notice pending on it here. Overlapping diffs of
// migratory pages are only ordered correctly within one applyDiffs pass —
// applying a partial (newer) set now and fetching an older overlapping
// diff at a later fault would regress the page's content (the exact
// lost-update shape wire.Diff.Covers ordering exists to prevent). An
// incomplete page drops its pushed diffs entirely and takes the normal
// fault path, where all outstanding diffs arrive in one exchange; the
// resulting in-critical-section fetch also tells the detector the
// prediction went stale.
func (nd *Node) usablePushed(served, pushed []wire.Diff) []wire.Diff {
	pages := map[int][]wire.Diff{}
	for _, d := range pushed {
		pages[int(d.Page)] = append(pages[int(d.Page)], d)
	}
	var out []wire.Diff
	for _, pg := range sortedPageKeys(pages) {
		staged := append([]wire.Diff(nil), pages[pg]...)
		for _, d := range served {
			if int(d.Page) == pg {
				staged = append(staged, d)
			}
		}
		// Simulate the coverage the staged diffs establish, requiring
		// per-creator chain contiguity: a run diff only counts once the
		// coverage has reached its From (content below From is not in its
		// runs, even though applyDiffs would advance the timestamp past
		// it). Whole snapshots cover everything up to their Covers.
		applied := append([]int32(nil), nd.applied[pg]...)
		for changed := true; changed; {
			changed = false
			for _, d := range staged {
				if d.Whole {
					for o, c := range d.Covers {
						if c > applied[o] {
							applied[o] = c
							changed = true
						}
					}
				} else if d.From <= applied[d.Creator] && d.To > applied[d.Creator] {
					applied[d.Creator] = d.To
					changed = true
				}
			}
		}
		complete := true
		for _, nt := range nd.pending[pg] {
			if nt.idx > applied[nt.owner] {
				complete = false
				break
			}
		}
		if complete {
			out = append(out, pages[pg]...)
		}
	}
	return out
}

func sortedPageKeys(m map[int][]wire.Diff) []int {
	out := make([]int, 0, len(m))
	for pg := range m {
		out = append(out, pg)
	}
	sort.Ints(out)
	return out
}

// Acquire obtains lock id, receiving the releaser's write notices
// (invalidations happen here, per lazy release consistency).
func (nd *Node) Acquire(id int) {
	nd.p.Begin()
	defer nd.p.End()
	nd.Mem.BeginProtBatch()
	defer nd.Mem.FlushProtBatch(nd.p)
	nd.completeInflight()
	nd.Stats.LockAcquires++
	var avt time.Duration
	var awt int64
	if nd.tr != nil {
		avt, awt = nd.p.Now(), nd.tr.WallNow()
	}
	s := nd.sys
	c := s.Costs
	if s.N() == 1 {
		nd.p.Charge(c.LockMgmt)
		nd.consumeWSync()
		nd.pushHeld(id)
		if nd.tr != nil {
			nd.traceLockAcq(id, 0, avt, awt)
		}
		return
	}
	l := s.lock(id)
	// Chain-trim: when the detector has bound the upcoming hand-off edge,
	// the acquire request carries the acquirer's applied floors for the
	// bound pages, so the granter piggybacks only the chain tails the
	// acquirer actually lacks instead of its full cached chains. The
	// granter is predicted here, and the prediction is exact: everything
	// from this request to the grant runs under the protocol token, the
	// queue is FIFO, and a queued acquirer is granted by the waiter
	// enqueued directly ahead of it (or the current holder).
	floors, floorBytes := nd.acquireFloors(l)
	t := nd.p.Now()
	if l.home != nd.ID {
		t = s.NW.Message(nd.ID, l.home, t, floorBytes)
	}
	s.H.Proc(l.home).Charge(c.LockMgmt)
	t += c.LockMgmt

	if l.holder != -1 {
		if l.holder != l.home {
			t = s.NW.Message(l.home, l.holder, t, floorBytes)
			s.H.Proc(l.holder).Charge(c.LockMgmt)
			t += c.LockMgmt
		}
		info := nd.syncInfo()
		info.Floors = floors
		l.queue = append(l.queue, &lockWaiter{id: nd.ID, p: nd.p, info: info, tAtHolder: t})
		nd.p.Block("lock")
		g := s.NW.TakeHand(nd.p, slotGrant).(wire.Grant)
		nd.applyGrant(g)
		nd.pushHeld(id)
		if nd.tr != nil {
			nd.traceLockAcq(id, l.grantSeq, avt, awt)
		}
		return
	}

	l.holder = nd.ID
	r := l.lastReleaser
	if r == nd.ID {
		// Re-acquiring a lock we released last: nothing new to learn. The
		// detector still records the self hand-off — it is part of the
		// lock's serialized chain (never bound: there is nothing to
		// piggyback to yourself).
		if det := l.adaptDet(s); det != nil {
			det.Grant(nd.ID, nd.ID)
		}
		if l.home != nd.ID {
			t = s.NW.Message(l.home, nd.ID, t, 0)
		}
		nd.p.SetClock(t)
		nd.consumeWSync()
		nd.pushHeld(id)
		if nd.tr != nil {
			nd.traceLockAcq(id, 0, avt, awt)
		}
		return
	}
	if r != l.home {
		t = s.NW.Message(l.home, r, t, floorBytes)
		s.H.Proc(r).Charge(c.LockMgmt)
		t += c.LockMgmt
	}
	// The last releaser may be mid-computation on the real host; Hold
	// serializes the grant construction (which may flush its diffs)
	// against its compute section. The grant itself is a wire value built
	// from the acquirer's presented info. The lock detector's hand-off
	// record and piggyback decision happen here too: both run under the
	// protocol-section token, in the lock's serialized order.
	info := nd.syncInfo()
	info.Floors = floors
	var g wire.Grant
	nd.p.Hold(s.Nodes[r].p, func() {
		var pushPages []int
		if det := l.adaptDet(s); det != nil {
			pushPages = det.Grant(r, nd.ID)
		}
		g = s.Nodes[r].buildGrant(nd.ID, info, pushPages)
	})
	if nd.tr != nil {
		l.grantSeq++
		s.traceGrant(s.Nodes[r], id, nd.ID, g, l.grantSeq)
	}
	s.H.Proc(r).Charge(c.LockMgmt)
	t += c.LockMgmt
	t = s.NW.Message(r, nd.ID, t, int(g.Bytes))
	nd.p.SetClock(t)
	nd.applyGrant(g)
	nd.pushHeld(id)
	if nd.tr != nil {
		nd.traceLockAcq(id, l.grantSeq, avt, awt)
	}
}

// acquireFloors assembles the applied floors an acquire request carries
// for chain trimming: if the lock detector has bound the predicted
// hand-off edge (granter → this node), the floors cover the bound pages
// and their accounted size (wire.FloorBytes) is charged on the request
// legs. Adapt-off machines — and unbound edges — carry nothing, keeping
// the request bytes identical to the base protocol. The read is
// prediction-only: the detector is neither created nor mutated here (the
// hand-off itself is recorded by det.Grant at grant time, which may
// rebind the edge — buildGrant falls back to a zero floor for any pushed
// page the floors missed).
func (nd *Node) acquireFloors(l *lock) ([]wire.WSyncNeed, int) {
	if l.det == nil {
		return nil, 0
	}
	granter := l.lastReleaser
	if l.holder != -1 {
		granter = l.holder
		if n := len(l.queue); n > 0 {
			granter = l.queue[n-1].id
		}
	}
	if granter == nd.ID {
		return nil, 0
	}
	pages, ok := l.det.Bound(granter, nd.ID)
	if !ok || len(pages) == 0 {
		return nil, 0
	}
	need := wire.WSyncNeed{
		Pages:   make([]int32, len(pages)),
		Applied: make([][]int32, len(pages)),
	}
	for i, pg := range pages {
		need.Pages[i] = int32(pg)
		need.Applied[i] = append([]int32(nil), nd.applied[pg]...)
	}
	return []wire.WSyncNeed{need}, wire.FloorBytes(len(pages), nd.sys.N())
}

// Release ends the critical section: the open interval closes (a release
// point) and a queued waiter, if any, is granted the lock directly — the
// grant is staged through the transport and the waiter woken.
func (nd *Node) Release(id int) {
	nd.p.Begin()
	defer nd.p.End()
	nd.Mem.BeginProtBatch()
	defer nd.Mem.FlushProtBatch(nd.p)
	nd.completeInflight()
	nd.closeInterval()
	s := nd.sys
	if nd.tr != nil {
		nd.tr.Emit(obs.Event{
			Kind: obs.EvLockRel, VT: int64(nd.p.Now()), WT: nd.tr.WallNow(),
			A: int32(id),
		})
	}
	if s.N() == 1 {
		nd.popHeld(id)
		return
	}
	l := s.lock(id)
	if l.holder != nd.ID {
		panic(fmt.Sprintf("tmk: node %d releasing lock %d held by %d", nd.ID, id, l.holder))
	}
	// The departing holder's critical-section fetch report closes its
	// observation on the lock's chain before any hand-off is decided.
	fetched := nd.popHeld(id)
	det := l.adaptDet(s)
	if det != nil {
		det.Hold(fetched)
	}
	l.lastReleaser = nd.ID
	if len(l.queue) == 0 {
		l.holder = -1
		return
	}
	w := l.queue[0]
	l.queue = l.queue[1:]
	l.holder = w.id
	var pushPages []int
	if det != nil {
		pushPages = det.Grant(nd.ID, w.id)
	}
	g := nd.buildGrant(w.id, w.info, pushPages)
	if nd.tr != nil {
		l.grantSeq++
		s.traceGrant(nd, id, w.id, g, l.grantSeq)
	}
	t := nd.p.Now()
	if w.tAtHolder > t {
		t = w.tAtHolder
	}
	t += s.Costs.LockMgmt
	t = s.NW.Message(nd.ID, w.id, t, int(g.Bytes))
	s.NW.Hand(nd.p, w.id, slotGrant, g)
	nd.p.Wake(w.p, t)
}

// barrier is one episode of a named barrier: the arrival messages received
// so far. The episode object and its arrivals slice are reused across
// epochs (the executor resets the slice while still holding the protocol
// token, so no arrival for the next episode can interleave).
type barrier struct {
	arrivals []barrierArrival
}

// barrierArrival is one node's arrival: its identity, arrival time, and
// arrival message (vector time, interval delta since its last departure,
// Validate_w_sync needs).
type barrierArrival struct {
	id  int
	p   host.Proc
	at  time.Duration
	arr wire.Arrival
}

// remoteWSync is one node's Validate_w_sync registration together with the
// diffs the responsible processors contributed; the data rides the barrier
// departure message ("the data can be broadcast to all other processors at
// the time of the barrier").
type remoteWSync struct {
	req    int
	pages  []int
	served []wire.Diff
	bytes  int
}

// servedFor returns the Validate_w_sync payload resolved for requester id.
func servedFor(allWS []remoteWSync, id int) ([]wire.Diff, int) {
	for i := range allWS {
		if allWS[i].req == id {
			return allWS[i].served, allWS[i].bytes
		}
	}
	return nil, 0
}

func (s *System) barrier(id int) *barrier {
	b, ok := s.barriers[id]
	if !ok {
		b = &barrier{}
		s.barriers[id] = b
	}
	return b
}

// Barrier synchronizes all nodes. Arrival closes the open interval; the
// master (node 0) merges the write notices from the arrival messages and
// redistributes the missing notices on the departure messages; departure
// applies the invalidations. Validate_w_sync requests ride the arrival and
// departure messages and are answered right after departure (Section
// 3.2.1), with broadcast when a responder sends the same data to everyone.
func (nd *Node) Barrier(id int) {
	nd.p.Begin()
	defer nd.p.End()
	nd.Mem.BeginProtBatch()
	defer nd.Mem.FlushProtBatch(nd.p)
	nd.completeInflight()
	nd.closeInterval()
	nd.Stats.Barriers++
	s := nd.sys
	if s.rec != nil {
		// Log before send: the record is durable before the arrival —
		// the first message derived from this epoch's state — is built.
		nd.writeRecord()
	}
	if s.N() == 1 {
		if s.rec != nil && nd.faultsNow() {
			nd.failAndRecover(nil)
		}
		if nd.tr != nil {
			avt, awt := nd.p.Now(), nd.tr.WallNow()
			nd.tr.Emit(obs.Event{
				Kind: obs.EvBarArrive, VT: int64(avt), WT: awt,
				A: int32(id), B: int32(nd.Stats.Barriers),
			})
			nd.consumeWSync()
			nd.traceBarDepart(id, int32(nd.Stats.Barriers), avt, awt)
			return
		}
		nd.consumeWSync()
		return
	}
	var oldBar []int32
	if nd.ad != nil {
		// Snapshot the shared epoch base before departure overwrites it:
		// the adaptive step attributes the intervals in (oldBar, vc] to the
		// ending epoch.
		oldBar = append([]int32(nil), nd.lastBar...)
	}
	b := s.barrier(id)
	if s.rec != nil && nd.faultsNow() {
		nd.failAndRecover(b)
	}
	info := nd.syncInfo()
	arr := wire.Arrival{VC: info.VC, Intervals: nd.intervalsSince(nd.lastBar), Needs: info.Needs}
	if nd.ad != nil {
		arr.Fetched = nd.fetchedSorted()
	}
	var avt time.Duration
	var awt int64
	if nd.tr != nil {
		avt, awt = nd.p.Now(), nd.tr.WallNow()
		nd.tr.Emit(obs.Event{
			Kind: obs.EvBarArrive, VT: int64(avt), WT: awt,
			A: int32(id), B: int32(nd.Stats.Barriers),
		})
	}
	b.arrivals = append(b.arrivals, barrierArrival{
		id: nd.ID, p: nd.p, at: nd.p.Now(), arr: arr,
	})
	if len(b.arrivals) < s.N() {
		nd.p.Block("barrier")
		dep := nd.postBarrier()
		if nd.tr != nil {
			nd.traceBarDepart(id, int32(nd.Stats.Barriers), avt, awt)
		}
		if nd.ad != nil {
			nd.adaptStep(oldBar, dep.Fetched)
		}
		return
	}
	s.runBarrier(b, nd)
	b.arrivals = b.arrivals[:0]
	dep := nd.postBarrier()
	if nd.tr != nil {
		nd.traceBarDepart(id, int32(nd.Stats.Barriers), avt, awt)
	}
	if nd.ad != nil {
		nd.adaptStep(oldBar, dep.Fetched)
	}
}

// runBarrier executes the master logic in the last arriver's context,
// consuming only the arrival messages (never the arrived nodes' vector
// state): notices the master lacks are learned from the arrival interval
// deltas, departures are staged as wire values through the transport.
func (s *System) runBarrier(b *barrier, executor *Node) {
	c := s.Costs
	master := s.Nodes[0]
	n := s.N()
	adaptOn := s.adaptOn()

	// Arrival messages, processed in arrival order; the master merges the
	// write notices it lacks into its own state (charging its own
	// processor for the invalidations it performs on itself). The arrival
	// carries every interval since the arriver's last departure; the
	// master counts and learns only what lock transfers have not already
	// taught it.
	var tDep time.Duration
	for _, a := range b.arrivals {
		if a.id == master.ID {
			if a.at > tDep {
				tDep = a.at
			}
			continue
		}
		bytes := 16
		for _, oi := range a.arr.Intervals {
			if int(oi.Owner) == master.ID || oi.Idx <= master.vc[oi.Owner] {
				continue
			}
			bytes += oi.IV.AccountedBytes(adaptOn, shm.PageWords)
		}
		if adaptOn {
			fb := s.relayFetchedBytes(a.arr.Fetched)
			bytes += fb
			master.Stats.AdaptRelayBytes += int64(fb)
		}
		h := s.NW.Message(a.id, master.ID, a.at, bytes)
		if h > tDep {
			tDep = h
		}
		for _, oi := range a.arr.Intervals {
			if int(oi.Owner) == master.ID || oi.Idx <= master.vc[oi.Owner] {
				continue
			}
			master.learnInterval(int(oi.Owner), oi.Idx, intervalFromWire(oi.IV))
		}
	}
	// The master fields n-1 arrival interrupts back to back.
	tDep += time.Duration(n-2)*c.RecvOverhead + c.BarrierMgmt

	// With all notices merged, resolve the Validate_w_sync requests: the
	// responsible processors contribute their diffs now (every processor
	// has arrived, so the requested data is final) and the payload rides
	// the departure messages. The requesters are described entirely by
	// their arrival messages. Identical payloads to every requester count
	// as a broadcast.
	var allWS []remoteWSync
	for _, a := range b.arrivals {
		if len(a.arr.Needs) == 0 {
			continue
		}
		applied := map[int][]int32{}
		for _, need := range a.arr.Needs {
			for i, pg := range need.Pages {
				applied[int(pg)] = need.Applied[i]
			}
		}
		if len(applied) == 0 {
			continue
		}
		rw := remoteWSync{req: a.id}
		pages := make([]int, 0, len(applied))
		for pg := range applied {
			pages = append(pages, pg)
		}
		sort.Ints(pages)
		for _, pg := range pages {
			rw.pages = append(rw.pages, pg)
			for _, r := range master.wsyncResponder(a.id, applied[pg], pg) {
				if r == a.id {
					continue
				}
				resp := s.Nodes[r]
				resp.p.Charge(c.SectionScanPerPage)
				if resp.dirty[pg] {
					resp.flushLocalDiff(pg, false)
				}
				var nServed int32
				for _, d := range resp.diffs[pg] {
					if d.creator == a.id || (d.creator != r && !d.whole) {
						continue
					}
					if d.helps(applied[pg]) {
						rw.served = append(rw.served, d.toWire())
						rw.bytes += d.wireBytes()
						resp.Stats.WSyncServes++
						nServed++
					}
				}
				if nServed > 0 && resp.tr != nil {
					resp.tr.Emit(obs.Event{
						Kind: obs.EvWSync, VT: int64(resp.p.Now()), WT: resp.tr.WallNow(),
						Page: int32(pg), Peer: int32(a.id), A: nServed,
					})
				}
			}
		}
		allWS = append(allWS, rw)
	}
	// Broadcast accounting: a diff delivered to every other processor is a
	// broadcast. Diffs are identified by content key now that they cross
	// the transport as values.
	if len(allWS) > 0 {
		fanout := map[diffKey]int{}
		for _, rw := range allWS {
			for _, d := range rw.served {
				fanout[keyOf(d)]++
			}
		}
		for k, cnt := range fanout {
			if cnt == n-1 {
				s.Nodes[k.creator].Stats.WSyncBcasts++
			}
		}
	}

	// The adaptive protocol's global observation: every arriver's fetch
	// list, relayed on the departures sorted by node so all replicas of the
	// pattern detector advance on identical input.
	var fetched []wire.NodePages
	var fetchedBytes int
	if adaptOn {
		for _, a := range b.arrivals {
			if len(a.arr.Fetched) > 0 {
				fetched = append(fetched, wire.NodePages{Node: int32(a.id), Pages: a.arr.Fetched})
				fetchedBytes += s.relayFetchedBytes(a.arr.Fetched)
			}
		}
		sort.Slice(fetched, func(i, j int) bool { return fetched[i].Node < fetched[j].Node })
	}

	// Departure messages, serialized at the master; Validate_w_sync
	// payloads ride along. Each node's departure is staged through the
	// transport before the node is woken. The interval list is built in
	// the recipient's depScratch: the recipient consumed its previous
	// departure (postBarrier) before it could arrive here.
	if cap(s.departScratch) < n {
		s.departScratch = make([]time.Duration, n)
	}
	departAt := s.departScratch[:n]
	dep := tDep
	relayCharged := false
	for _, a := range b.arrivals {
		if a.id == master.ID {
			continue
		}
		ivs := s.Nodes[a.id].depScratch[:0]
		bytes := 16
		if !s.scale || !relayCharged {
			// Off scale every departure re-carries the fetch-list relay —
			// the per-recipient accounting the paper-era goldens pin. Scale
			// mode prices the relay once per barrier: the departure fan-out
			// is a broadcast of identical relay content, so per-node relay
			// cost stays flat as the machine grows.
			bytes += fetchedBytes
			relayCharged = true
			master.Stats.AdaptRelayBytes += int64(fetchedBytes)
		}
		for o := range master.vc {
			for idx := a.arr.VC[o] + 1; idx <= master.vc[o]; idx++ {
				w := master.know[o][idx-1].toWire()
				ivs = append(ivs, wire.OwnedInterval{Owner: int32(o), Idx: idx, IV: w})
				bytes += w.AccountedBytes(adaptOn, shm.PageWords)
			}
		}
		s.Nodes[a.id].depScratch = ivs
		served, wsBytes := servedFor(allWS, a.id)
		bytes += wsBytes
		h := s.NW.Message(master.ID, a.id, dep, bytes)
		dep += c.SendOverhead
		departAt[a.id] = h
		s.NW.Hand(executor.p, a.id, slotDepart, wire.Depart{Time: int64(h), Intervals: ivs, Served: served, Fetched: fetched})
	}
	mServed, _ := servedFor(allWS, master.ID)
	departAt[master.ID] = tDep + time.Duration(n-1)*c.SendOverhead
	s.NW.Hand(executor.p, master.ID, slotDepart, wire.Depart{Time: int64(departAt[master.ID]), Served: mServed, Fetched: fetched})

	for _, a := range b.arrivals {
		if a.id == executor.ID {
			continue
		}
		executor.p.Wake(a.p, departAt[a.id])
	}
	executor.p.SetClock(departAt[executor.ID])
}

// postBarrier consumes the departure message staged by runBarrier:
// departure time, missing write notices, and Validate_w_sync data. It
// returns the departure so the adaptive step can read the relayed fetch
// observations.
func (nd *Node) postBarrier() wire.Depart {
	d := nd.sys.NW.TakeHand(nd.p, slotDepart).(wire.Depart)
	nd.p.SetClock(time.Duration(d.Time))
	for _, oi := range d.Intervals {
		if int(oi.Owner) == nd.ID {
			continue
		}
		nd.learnInterval(int(oi.Owner), oi.Idx, intervalFromWire(oi.IV))
	}
	nd.applyDiffs(d.Served)
	nd.consumeWSync()
	if nd.dirOwner != nil {
		// Rebuild the ownership directory from the merged notice set before
		// the epoch base advances: mid-epoch hints depend on serve order,
		// which the concurrent backends do not reproduce (directory.go).
		nd.resetDirectory()
	}
	// After a departure every node holds the same merged vector time; the
	// snapshot bounds the next arrival's interval delta.
	copy(nd.lastBar, nd.vc)
	return d
}

// wsyncResponder determines, from post-barrier global knowledge, which
// node answers requester req's Validate_w_sync for page pg, given the
// requester's applied timestamps for the page (from its arrival message).
// Every node computes the same assignment independently.
func (nd *Node) wsyncResponder(req int, appliedPg []int32, pg int) []int {
	var latest notice
	owners := map[int]bool{}
	for o := range nd.vc {
		if o == req {
			continue
		}
		for idx := appliedPg[o] + 1; idx <= nd.vc[o]; idx++ {
			ref, ok := nd.know[o][idx-1].find(pg)
			if !ok {
				continue
			}
			owners[o] = true
			if idx > latest.idx || (idx == latest.idx && o > latest.owner) {
				latest = notice{owner: o, idx: idx, whole: ref.Whole}
			}
		}
	}
	if len(owners) == 0 {
		return nil
	}
	if latest.whole {
		return []int{latest.owner}
	}
	out := make([]int, 0, len(owners))
	for o := range owners {
		out = append(out, o)
	}
	sort.Ints(out)
	return out
}

func (iv interval) find(pg int) (wire.PageRef, bool) {
	i := sort.Search(len(iv.pages), func(i int) bool { return int(iv.pages[i].Page) >= pg })
	if i < len(iv.pages) && int(iv.pages[i].Page) == pg {
		return iv.pages[i], true
	}
	return wire.PageRef{}, false
}
