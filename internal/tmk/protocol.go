package tmk

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"sdsm/internal/host"
	"sdsm/internal/shm"
	"sdsm/internal/vm"
	"sdsm/internal/wire"
)

// storedDiff is a unit of modification data held in a node's diff cache:
// either a twin-based diff covering the creator's intervals (from, to], or
// a whole-page snapshot (WRITE_ALL pages have no twins).
//
// covers is the creator's per-owner applied timestamps for the page at
// creation time, with its own entry raised to `to`. It is the diff's
// ordering timestamp: diffs from different creators may overlap (migratory
// data under locks), and if creator B wrote after creator A under the
// synchronization chain, B fetched and applied A's modifications before
// writing (the LRC fault path), so covers(B) >= covers(A) pointwise and
// B's content supersedes A's. Ascending coverage sums are therefore a
// valid linear extension of content supersession — and unlike the closing
// interval's vector time, the coverage is honest even for a diff flushed
// long after its writes (a lazy flush can span epochs, giving it a closing
// time that postdates a fresher concurrent diff).
type storedDiff struct {
	page    int
	creator int
	from    int32 // exclusive
	to      int32 // inclusive
	whole   bool
	covers  []int32
	runs    []vm.Run

	// pooled marks a locally created whole-page snapshot whose run values
	// are vm freelist storage: when the snapshot is pruned from the cache
	// the page is handed back (vm.RecyclePage). Diffs built from wire
	// values are never pooled — their values alias decoded frame storage.
	pooled bool

	coverSum int64      // cached ordering key: sum of covers
	wired    *wire.Diff // cached wire form, built on first serve
}

// orderKey returns the scalar used to linearize coverage order (see the
// type comment).
func (d *storedDiff) orderKey() int64 {
	if d.coverSum == 0 {
		for _, x := range d.covers {
			d.coverSum += int64(x)
		}
	}
	return d.coverSum
}

// helps reports whether applying d would advance the given per-owner
// applied timestamps.
func (d *storedDiff) helps(applied []int32) bool {
	if d.whole {
		for o, c := range d.covers {
			if c > applied[o] {
				return true
			}
		}
		return false
	}
	return d.to > applied[d.creator]
}

// maxCover is used to order diff application (older data first).
func (d *storedDiff) maxCover() int32 {
	if !d.whole {
		return d.to
	}
	var m int32
	for _, c := range d.covers {
		if c > m {
			m = c
		}
	}
	return m
}

// wireBytes is the transfer size of the diff.
func (d *storedDiff) wireBytes() int { return 16 + vm.RunsBytes(d.runs) }

// toWire converts a cached diff to its wire value. The wire form is built
// once and cached — a diff is immutable after creation, so every requester
// can share it. Slices alias the cache where the storage is itself
// immutable (covers, twin-diff run values); only a pooled snapshot's page
// values are copied, because their freelist storage is recycled when the
// snapshot is pruned while the wire form may long outlive it at a
// receiver. (The historical contract copied everything so no receiver
// held a pointer into the creator's cache; it is weakened to "no one
// mutates or recycles what the wire form references" — see the interval
// type comment for the same trade.)
func (d *storedDiff) toWire() wire.Diff {
	if d.wired == nil {
		w := &wire.Diff{
			Page: int32(d.page), Creator: int32(d.creator),
			From: d.from, To: d.to, Whole: d.whole,
			Covers: d.covers,
			Runs:   make([]wire.Run, len(d.runs)),
		}
		for i, r := range d.runs {
			vals := r.Vals
			if d.pooled {
				vals = append([]float64(nil), vals...)
			}
			w.Runs[i] = wire.Run{Off: int32(r.Off), Vals: vals}
		}
		d.wired = w
	}
	return *d.wired
}

// diffFromWire converts a received diff into a fresh cache entry.
func diffFromWire(w wire.Diff) *storedDiff {
	d := &storedDiff{
		page: int(w.Page), creator: int(w.Creator),
		from: w.From, to: w.To, whole: w.Whole,
		covers: w.Covers,
		runs:   make([]vm.Run, len(w.Runs)),
	}
	for i, r := range w.Runs {
		d.runs[i] = vm.Run{Off: int(r.Off), Vals: r.Vals}
	}
	return d
}

// diffKey identifies a diff by content — (creator, page, coverage) is
// unique because a creator diffs each page range exactly once. It replaces
// the pointer identity the protocol historically relied on (the same
// cached diff forwarded to several nodes) now that diffs cross the
// transport as values.
type diffKey struct {
	creator, page int32
	from, to      int32
	whole         bool
}

func keyOf(d wire.Diff) diffKey {
	return diffKey{creator: d.Creator, page: d.Page, from: d.From, to: d.To, whole: d.Whole}
}

// Fault implements vm.FaultHandler: the base TreadMarks access-miss path.
// A fault first drains any asynchronous fetches covering the page, then
// fetches outstanding diffs for this single page (one exchange per
// responder, as TreadMarks does per fault), and finally arms write
// detection for write faults.
func (nd *Node) Fault(p host.Proc, page int, acc vm.Access) {
	if nd.tr != nil {
		// Deferred first, so the span closes after the protection batch
		// below flushes; the start stamps are evaluated here, at entry.
		defer nd.traceFault(page, acc, nd.p.Now(), nd.tr.WallNow())
	}
	nd.Mem.BeginProtBatch()
	defer nd.Mem.FlushProtBatch(nd.p)
	nd.completeInflight()
	if len(nd.pending[page]) > 0 || nd.Mem.Prot(page) == vm.NoAccess {
		nd.fetchPages([]int{page}, false)
	}
	if at, ok := nd.mode[page]; ok {
		// Deferred consistency actions from an asynchronous Validate: one
		// fault resumes the remainder of the Validate for every deferred
		// page (the data arrived with completeInflight above), exactly as
		// the paper's asynchronous variant finishes in the fault handler.
		for pg, m := range nd.mode {
			if pg == page || len(nd.pending[pg]) > 0 {
				continue
			}
			nd.applyAccessType(pg, m)
			delete(nd.mode, pg)
		}
		delete(nd.mode, page)
		nd.applyAccessType(page, at)
		if acc == vm.Write && !at.writes() {
			nd.enableWrite(page, false)
		}
		return
	}
	if acc == vm.Write {
		nd.enableWrite(page, false)
	} else if nd.Mem.Prot(page) == vm.NoAccess {
		nd.Mem.SetProt(p, page, vm.ReadOnly)
	}
}

// enableWrite arms the multiple-writer machinery for a page: twin (unless
// noTwin mode) and write access.
func (nd *Node) enableWrite(page int, noTwin bool) {
	if noTwin && nd.dirty[page] && !nd.noTwin[page] {
		// Transition from twin-based detection to WRITE_ALL mode: capture
		// the outstanding twin-based modifications first so earlier
		// intervals stay servable, then switch modes.
		nd.flushLocalDiff(page, true)
	}
	if nd.dirty[page] && nd.Mem.Prot(page) == vm.ReadWrite {
		return
	}
	if noTwin {
		nd.noTwin[page] = true
	} else if !nd.Mem.HasTwin(page) {
		nd.Mem.MakeTwin(nd.p, page)
	}
	nd.Mem.SetProt(nd.p, page, vm.ReadWrite)
	nd.dirty[page] = true
	if debugHook != nil {
		debugHook("enablewrite", nd.ID, page, int(nd.vc[nd.ID]), noTwin)
	}
}

// closeInterval ends the node's open interval at a release point (lock
// release, barrier arrival, Push), publishing write notices for every
// dirty page.
//
// Twin-based pages stay write-enabled and dirty; later writes fold into
// the same twin and the page is re-noticed at the next release
// (TreadMarks behaviour, the source of diff accumulation). WRITE_ALL
// pages have no twin, so their content is snapshotted now (a memcpy, not
// a diff) and they leave the dirty set; the compiler's exactness contract
// guarantees a new Validate precedes the next write to them.
func (nd *Node) closeInterval() {
	if len(nd.dirty) == 0 {
		return
	}
	idx := nd.vc[nd.ID] + 1
	nd.vc[nd.ID] = idx
	// pgScratch is safe to borrow here: its other user (serve) runs under
	// the protocol token too, so the two can never interleave, and the
	// slice is fully consumed before this function returns.
	pages := nd.pgScratch[:0]
	for pg := range nd.dirty {
		pages = append(pages, pg)
	}
	sort.Ints(pages)
	nd.pgScratch = pages
	iv := interval{pages: make([]wire.PageRef, len(pages)), vc: append([]int32(nil), nd.vc...)}
	for i, pg := range pages {
		iv.pages[i] = nd.pageRefFor(pg, nd.noTwin[pg], true)
	}
	nd.know[nd.ID] = append(nd.know[nd.ID], iv)
	if nd.tr != nil {
		nd.traceNotices(iv, idx)
	}
	for _, pg := range pages {
		nd.noteWritten(pg)
		if nd.noTwin[pg] {
			nd.snapshotWholePage(pg)
		}
	}
}

// snapshotWholePage captures a WRITE_ALL page's full content as a
// whole-page diff, pruning everything it subsumes, and removes the page
// from the dirty set. The page stays write-enabled (no protection cost):
// exact analysis guarantees the next writer re-Validates first.
func (nd *Node) snapshotWholePage(pg int) {
	covers := make([]int32, nd.sys.N())
	copy(covers, nd.applied[pg])
	covers[nd.ID] = nd.vc[nd.ID]
	d := &storedDiff{
		page: pg, creator: nd.ID,
		from: nd.lastDiffed[pg], to: nd.vc[nd.ID],
		whole: true, covers: covers,
		runs:   nd.Mem.WholePageRuns(nd.p, pg),
		pooled: true,
	}
	nd.storeDiff(d)
	nd.lastDiffed[pg] = nd.vc[nd.ID]
	delete(nd.dirty, pg)
	delete(nd.noTwin, pg)
}

// storeDiff adds d to the diff cache, dropping any older diffs a whole
// snapshot subsumes (bounding memory: a page that is repeatedly
// WRITE_ALL-validated keeps only its newest snapshot). A pruned pooled
// snapshot's page storage goes back to the vm freelist — its cached wire
// form, if any, owns separate copies, so receivers are unaffected.
func (nd *Node) storeDiff(d *storedDiff) {
	if nd.recTouched != nil {
		// Recovery is on: the page's diff chain (and, on the apply path,
		// its image) moved, so the next incremental record must frame it
		// (recovery.go).
		nd.recTouched[d.page] = true
	}
	cache := nd.diffs[d.page]
	if d.whole {
		kept := cache[:0]
		for _, old := range cache {
			if subsumes(d, old) {
				if old.pooled {
					for _, r := range old.runs {
						nd.Mem.RecyclePage(r.Vals)
					}
				}
				continue
			}
			kept = append(kept, old)
		}
		cache = kept
	}
	nd.diffs[d.page] = append(cache, d)
}

// subsumes reports whether whole snapshot w makes diff d redundant.
func subsumes(w, d *storedDiff) bool {
	if !w.whole {
		return false
	}
	if d.whole {
		for o := range d.covers {
			if d.covers[o] > w.covers[o] {
				return false
			}
		}
		return true
	}
	return w.covers[d.creator] >= d.to
}

// learnInterval records a remote interval and invalidates the affected
// pages, unless their modifications were already applied (for example via
// Push).
func (nd *Node) learnInterval(owner int, idx int32, iv interval) {
	if owner == nd.ID {
		panic("tmk: node taught its own interval")
	}
	if int32(len(nd.know[owner]))+1 != idx {
		panic(fmt.Sprintf("tmk: node %d learning interval %d of %d out of order (knows %d)",
			nd.ID, idx, owner, len(nd.know[owner])))
	}
	nd.know[owner] = append(nd.know[owner], iv)
	nd.vc[owner] = idx
	for _, ref := range iv.pages {
		pg := int(ref.Page)
		nd.noteRemoteWrite(pg, owner)
		if nd.applied[pg][owner] >= idx {
			continue
		}
		nd.pending[pg] = append(nd.pending[pg], notice{owner: owner, idx: idx, whole: ref.Whole})
		if debugHook != nil {
			debugHook("notice", nd.ID, owner, pg, int(idx))
		}
		nd.invalidate(pg)
	}
}

// invalidate removes access to a page. Local modifications are saved as a
// diff first so they can still be served (diff on invalidate).
func (nd *Node) invalidate(page int) {
	if nd.dirty[page] {
		nd.flushLocalDiff(page, true)
	}
	if nd.Mem.Prot(page) != vm.NoAccess {
		nd.Mem.SetProt(nd.p, page, vm.NoAccess)
		nd.Stats.Invalidations++
	}
}

// flushLocalDiff captures the node's own outstanding modifications to a
// dirty page into the diff cache.
//
// When every closed interval of this page has already been diffed
// (lastDiffed == vc), any captured modifications belong to the still-open
// interval; the interval is split as real TreadMarks does: a fresh
// single-page interval is closed on the spot so the diff carries a
// coverage no earlier diff claims. Without the split, two diffs with
// identical (creator, to) would exist and receivers would drop the newer
// one.
//
// disarm selects what happens to write detection afterwards. On the
// invalidation path the page loses all access, so the next local write
// re-faults and detection re-arms naturally. On the serve path (a remote
// processor requested diffs) the local processor may be mid-computation
// holding established write access — a real MMU would deliver a fault at
// its next store after re-protection, but the software MMU checks
// protections only at Ensure boundaries. Detection therefore stays armed:
// the page keeps write access and the dirty mark, and a fresh twin
// snapshots the served state so later writes diff against it.
func (nd *Node) flushLocalDiff(page int, disarm bool) {
	if !nd.dirty[page] {
		return
	}
	to := nd.vc[nd.ID]
	mustSplit := nd.lastDiffed[page] == to
	if nd.noTwin[page] {
		if mustSplit {
			to = nd.splitInterval(page, true)
		}
		// Snapshot an open WRITE_ALL page so the content stays servable.
		covers := make([]int32, nd.sys.N())
		copy(covers, nd.applied[page])
		covers[nd.ID] = to
		nd.storeDiff(&storedDiff{
			page: page, creator: nd.ID,
			from: nd.lastDiffed[page], to: to,
			whole: true, covers: covers,
			runs:   nd.Mem.WholePageRuns(nd.p, page),
			pooled: true,
		})
		nd.lastDiffed[page] = to
		if disarm {
			delete(nd.noTwin, page)
			delete(nd.dirty, page)
			nd.Mem.TakeWriteExtent(page)
			nd.Mem.SetProt(nd.p, page, vm.ReadOnly)
		}
		return
	}
	if nd.Mem.HasTwin(page) {
		runs := nd.Mem.DiffAgainstTwin(nd.p, page)
		if len(runs) > 0 && mustSplit {
			to = nd.splitInterval(page, false)
		}
		if len(runs) > 0 || nd.lastDiffed[page] < to {
			covers := make([]int32, nd.sys.N())
			copy(covers, nd.applied[page])
			covers[nd.ID] = to
			nd.storeDiff(&storedDiff{
				page: page, creator: nd.ID,
				from: nd.lastDiffed[page], to: to,
				covers: covers,
				runs:   runs,
			})
		}
	}
	nd.lastDiffed[page] = to
	if debugHook != nil {
		debugHook("flush", nd.ID, page, int(to), disarm, nd.Mem.Data()[page*512+88], nd.Mem.HasTwin(page))
	}
	if disarm {
		delete(nd.dirty, page)
		// The page leaves the dirty set outside closeInterval, so the
		// closing walk will never consume its extent accumulator: discard
		// it here. Every notice describing the flushed state has already
		// been recorded (the epoch's close, or the split above, which
		// peeked) — leaving the residue would union a stale range into the
		// *next* epoch's extent and could mask a genuinely disjoint
		// false-sharing pair from the split detector forever.
		nd.Mem.TakeWriteExtent(page)
		nd.Mem.SetProt(nd.p, page, vm.ReadOnly)
		return
	}
	nd.Mem.MakeTwin(nd.p, page) // re-arm detection against the served state
}

// SetDebugHook installs a protocol event observer (test diagnostics).
func SetDebugHook(fn func(event string, args ...any)) { debugHook = fn }

// debugHook, when set by a test, observes protocol events:
// ("flush", node, page, to, disarm), ("apply", node, creator, page, to,
// whole, words), ("notice", node, owner, page, idx), ("skip", node,
// creator, page, to).
var debugHook func(event string, args ...any)

// splitInterval closes a fresh interval containing just the given page
// and returns its index.
func (nd *Node) splitInterval(page int, whole bool) int32 {
	idx := nd.vc[nd.ID] + 1
	nd.vc[nd.ID] = idx
	nd.know[nd.ID] = append(nd.know[nd.ID], interval{
		pages: []wire.PageRef{nd.pageRefFor(page, whole, false)},
		vc:    append([]int32(nil), nd.vc...),
		split: true,
	})
	nd.noteWritten(page)
	return idx
}

// pageRefFor builds a page reference carrying the page's write extent. A
// WRITE_ALL page covers the whole page by definition; a twin-based page
// takes the union of the write regions established since the last closing
// interval. consume clears the vm's accumulator (the epoch's closing
// interval does; a mid-epoch serve-path split peeks, so the closing
// record still carries the union). A dirty page with no fresh extent —
// it stayed write-enabled across an interval with no new write region —
// reports an unknown extent (extHi == 0), which downstream consumers
// must treat as whole-page.
func (nd *Node) pageRefFor(pg int, whole, consume bool) wire.PageRef {
	ref := wire.PageRef{Page: int32(pg), Whole: whole}
	if whole {
		if consume {
			nd.Mem.TakeWriteExtent(pg)
		}
		ref.ExtLo, ref.ExtHi = 0, int32(shm.PageWords)
		return ref
	}
	var lo, hi int
	var ok bool
	if consume {
		lo, hi, ok = nd.Mem.TakeWriteExtent(pg)
	} else {
		lo, hi, ok = nd.Mem.PeekWriteExtent(pg)
	}
	if ok {
		ref.ExtLo, ref.ExtHi = int32(lo), int32(hi)
	}
	return ref
}

// responderFor picks who to ask for a page's outstanding diffs: if the
// most recent notice is a whole-page overwrite, its owner alone suffices;
// otherwise every noticed owner is asked for its own diffs.
func (nd *Node) responderFor(page int) []int {
	pend := nd.pending[page]
	if len(pend) == 0 {
		return nil
	}
	latest := pend[0]
	single := true // all notices share one owner (the steady-state case)
	for _, n := range pend {
		if n.owner != pend[0].owner {
			single = false
		}
		if n.idx > latest.idx || (n.idx == latest.idx && n.owner > latest.owner) {
			latest = n
		}
	}
	if latest.whole || single {
		// One responder; the result is consumed before the next call, so
		// the per-node scratch slot avoids an allocation per fault.
		nd.respScratch[0] = latest.owner
		return nd.respScratch[:1]
	}
	owners := map[int]bool{}
	for _, n := range pend {
		owners[n.owner] = true
	}
	out := make([]int, 0, len(owners))
	for o := range owners {
		out = append(out, o)
	}
	sort.Ints(out)
	return out
}

// inflightFetch is a started but unapplied diff exchange.
type inflightFetch struct {
	pd    *host.Pending
	pg    int   // the requested page when pages is nil (single-page fast path)
	pages []int // nil for a single-page fetch
}

// diffRequest assembles the wire request for a set of pages: the
// requester's applied timestamps travel with the pages, so the responder
// needs nothing from the requester's memory.
func (nd *Node) diffRequest(pages []int) wire.DiffRequest {
	req := wire.DiffRequest{
		Req:     int32(nd.ID),
		Pages:   make([]int32, len(pages)),
		Applied: make([][]int32, len(pages)),
	}
	for i, pg := range pages {
		req.Pages[i] = int32(pg)
		req.Applied[i] = append([]int32(nil), nd.applied[pg]...)
	}
	return req
}

// diffRequest1 is diffRequest for the single-page fast path.
func (nd *Node) diffRequest1(pg int) wire.DiffRequest {
	return wire.DiffRequest{
		Req:     int32(nd.ID),
		Pages:   []int32{int32(pg)},
		Applied: [][]int32{append([]int32(nil), nd.applied[pg]...)},
	}
}

// fetchPages retrieves outstanding modifications for the given pages,
// aggregating all pages per responder into one exchange (the communication
// aggregation optimization; the base fault path passes a single page, so
// aggregation degenerates to TreadMarks behaviour there). With async, the
// exchanges are left in flight and completed at the next fault on an
// affected page or at the next synchronization point.
func (nd *Node) fetchPages(pages []int, async bool) {
	if len(pages) == 1 {
		// Fast path for the base fault case: one page needs no
		// responder-aggregation map, and responders are already sorted
		// (responderFor returns ascending ids).
		pg := pages[0]
		rs := nd.responderFor(pg)
		if len(rs) == 0 {
			return
		}
		nd.noteFetch(pg)
		for _, r := range rs {
			if nd.tr != nil {
				nd.traceFetchReq(pg, r, 1)
			}
			pd := nd.sys.NW.StartRequest(nd.p, r, nd.diffRequest1(pg), 16+8)
			nd.inflight = append(nd.inflight, inflightFetch{pd: pd, pg: pg})
			nd.Stats.DiffFetches++
		}
		if !async {
			nd.completeInflight()
		}
		return
	}
	reqs := map[int][]int{} // responder -> pages
	for _, pg := range pages {
		rs := nd.responderFor(pg)
		if len(rs) > 0 {
			nd.noteFetch(pg) // adaptive profiling: this page cost a demand fetch
		}
		for _, r := range rs {
			reqs[r] = append(reqs[r], pg)
		}
	}
	if len(reqs) == 0 {
		return
	}
	responders := make([]int, 0, len(reqs))
	for r := range reqs {
		responders = append(responders, r)
	}
	sort.Ints(responders)
	for _, r := range responders {
		pgs := reqs[r]
		if nd.tr != nil {
			nd.traceFetchReq(pgs[0], r, len(pgs))
		}
		pd := nd.sys.NW.StartRequest(nd.p, r, nd.diffRequest(pgs), 16+8*len(pgs))
		nd.inflight = append(nd.inflight, inflightFetch{pd: pd, pages: pgs})
		nd.Stats.DiffFetches++
	}
	if !async {
		nd.completeInflight()
	}
}

// completeInflight waits for all in-flight fetches and applies their
// replies. Pages still missing diffs afterwards (a responder lacked some
// other owner's diff) are re-fetched synchronously per owner, mirroring
// the paper's "other diffs cause an access miss and are faulted in".
func (nd *Node) completeInflight() {
	for len(nd.inflight) > 0 {
		fetches := nd.inflight
		// Double-buffer the in-flight list: fetches started while this
		// round applies (none today, but the loop contract allows it) land
		// in the spare array instead of clobbering the round's entries.
		nd.inflight = nd.ifSpare[:0]
		nd.ifSpare = fetches
		pds := nd.pdScratch[:0]
		for i := range fetches {
			pds = append(pds, fetches[i].pd)
		}
		nd.pdScratch = pds
		nd.sys.NW.AwaitAll(nd.p, pds)
		// Apply every reply of the round together: diffs from different
		// responders may overlap (migratory and falsely shared pages), and
		// only a global sort preserves vector-time order. The scratch is
		// consumed by applyDiffs before this node issues another fetch.
		all := nd.dfScratch[:0]
		var redirs []wire.PageOwner // nil off scale: replies never carry redirects
		for _, f := range fetches {
			rep := f.pd.Reply.(wire.DiffReply)
			all = append(all, rep.Diffs...)
			redirs = append(redirs, rep.Redirects...)
		}
		nd.dfScratch = all
		nd.applyDiffs(all)
		if len(redirs) > 0 {
			nd.chaseRedirects(redirs)
		}
		var retry map[int]bool // lazily built: the steady state has no retries
		for _, f := range fetches {
			if f.pages == nil {
				if len(nd.pending[f.pg]) > 0 {
					if retry == nil {
						retry = map[int]bool{}
					}
					retry[f.pg] = true
				}
				continue
			}
			for _, pg := range f.pages {
				if len(nd.pending[pg]) > 0 {
					if retry == nil {
						retry = map[int]bool{}
					}
					retry[pg] = true
				}
			}
		}
		if len(retry) > 0 {
			pages := make([]int, 0, len(retry))
			for pg := range retry {
				pages = append(pages, pg)
			}
			sort.Ints(pages)
			// Ask each remaining owner directly; owners can always serve
			// their own diffs. Direct forbids directory redirects — this is
			// the forwarding chain's backstop, so the owner must answer with
			// payload even when its delegation pointer says otherwise.
			reqs := map[int][]int{}
			for _, pg := range pages {
				for _, n := range nd.pending[pg] {
					reqs[n.owner] = append(reqs[n.owner], pg)
				}
			}
			var round []wire.Diff
			for _, r := range sortedKeys(reqs) {
				pgs := dedupInts(reqs[r])
				if nd.tr != nil {
					nd.traceFetchReq(pgs[0], r, len(pgs))
				}
				dreq := nd.diffRequest(pgs)
				dreq.Direct = true
				pd := nd.sys.NW.StartRequest(nd.p, r, dreq, 16+8*len(pgs))
				nd.sys.NW.Await(nd.p, pd)
				nd.Stats.DiffFetches++
				round = append(round, pd.Reply.(wire.DiffReply).Diffs...)
			}
			nd.applyDiffs(round)
			for _, pg := range pages {
				if len(nd.pending[pg]) > 0 {
					panic(fmt.Sprintf("tmk: node %d cannot resolve notices for page %d: %+v",
						nd.ID, pg, nd.pending[pg]))
				}
			}
		}
		// Drop the round's pointers so the recycled array does not keep
		// replies alive until its next use.
		for i := range fetches {
			fetches[i] = inflightFetch{}
		}
	}
}

// serveDiffs runs at the responder (inside the transport's request
// handler): it flushes its own outstanding modifications for the requested
// pages and returns every cached diff the requester lacks, including diffs
// created by third parties (the source of the diff accumulation the paper
// describes for IS). The requester is described entirely by the request —
// its id and per-page applied timestamps — and the reply is wire values.
// The responder's CPU costs are charged by the vm operations.
//
// In scale mode a page this responder has already delegated (dirNext set
// by an earlier payload serve) is answered with a redirect to the
// delegate instead of a payload, unless the requester set Direct — the
// chain-exhausted fallback that must reach this responder's own diffs.
// The delegation then moves to the requester, so forwarding chains stay
// short (the previous delegate serves at most one redirect-routed
// requester before the pointer moves past it) and consecutive readers of
// a hot page serve each other instead of queueing on the writer.
func (nd *Node) serveDiffs(reqID int, pages []int, reqApplied [][]int32, direct bool) ([]wire.Diff, []wire.PageOwner, int) {
	var out []wire.Diff
	var redir []wire.PageOwner
	bytes := 16
	served := false
	for i, pg := range pages {
		if debugHook != nil {
			debugHook("serve", nd.ID, reqID, pg, nd.dirty[pg], int(nd.Mem.Prot(pg)), int(nd.lastDiffed[pg]), int(nd.vc[nd.ID]), nd.Mem.Data()[pg*512+88])
		}
		if nd.sys.scale && !direct {
			if nxt := nd.dirNext[pg]; nxt >= 0 && int(nxt) != reqID {
				redir = append(redir, wire.PageOwner{Page: int32(pg), Owner: nxt})
				nd.dirNext[pg] = int32(reqID)
				nd.Stats.DirRedirects++
				bytes += 8
				continue
			}
		}
		got := false
		for _, d := range nd.collectDiffs(reqID, pg, reqApplied[i]) {
			out = append(out, d.toWire())
			bytes += d.wireBytes()
			got = true
		}
		if got {
			served = true
			if nd.dirNext != nil {
				nd.dirNext[pg] = int32(reqID)
			}
		}
	}
	if served {
		nd.Stats.DiffServes++
	}
	return out, redir, bytes
}

// collectDiffs flushes page pg if locally dirty and returns every cached
// diff a requester described by (reqID, applied) lacks, replacing the
// accumulated candidates by the newest whole snapshot alone when it
// subsumes them all. It is the per-page core of serveDiffs; the lock-scope
// piggyback path reuses it with the applied floors the acquire request
// carried for bound pages (chain trimming, see acquireFloors), falling
// back to a zero floor — the full cached chain — for pages the floors
// missed. Either floor keeps per-creator chains gap-free: the receiver
// prunes notices by applied coverage, so a chain gap would silently drop
// the missing intervals' content.
func (nd *Node) collectDiffs(reqID, pg int, applied []int32) []*storedDiff {
	if nd.dirty[pg] {
		nd.flushLocalDiff(pg, false)
	}
	// The candidate list is consumed by the caller before the next
	// collectDiffs call on this node, so one scratch buffer suffices (the
	// pointers it holds are cache entries, retained by nd.diffs anyway).
	cand := nd.cdScratch[:0]
	var best *storedDiff // newest whole snapshot, if any
	for _, d := range nd.diffs[pg] {
		if d.creator == reqID || !d.helps(applied) {
			continue
		}
		cand = append(cand, d)
		if d.whole && (best == nil || subsumes(d, best)) {
			best = d
		}
	}
	// A whole snapshot that subsumes every other candidate is sent
	// alone: the requester gets the full page once instead of the
	// accumulated overlapping diffs.
	if best != nil {
		all := true
		for _, d := range cand {
			if d != best && !subsumes(best, d) {
				all = false
				break
			}
		}
		if all {
			cand = append(cand[:0], best)
		}
	}
	nd.cdScratch = cand
	return cand
}

// applyDiffs merges received diffs, oldest coverage first, updating the
// applied timestamps, pruning satisfied notices, caching the diffs for
// later forwarding, and revalidating pages whose notices are all applied.
// The wire values become fresh cache entries at this node: nothing is
// shared with the sender.
func (nd *Node) applyDiffs(in []wire.Diff) {
	reply := nd.sortScratch[:0]
	for i := range in {
		reply = append(reply, diffFromWire(in[i]))
	}
	// slices.SortStableFunc keeps SliceStable's ordering semantics without
	// the reflection machinery (which allocates per call).
	slices.SortStableFunc(reply, func(a, b *storedDiff) int {
		if a.page != b.page {
			return cmp.Compare(a.page, b.page)
		}
		if a.orderKey() != b.orderKey() {
			return cmp.Compare(a.orderKey(), b.orderKey())
		}
		if a.creator != b.creator {
			return cmp.Compare(a.creator, b.creator)
		}
		return cmp.Compare(a.to, b.to)
	})
	// reply is page-sorted, so applied pages can be pruned in order after
	// the pass by watching for page transitions — no set needed.
	lastTouched := -1
	for _, d := range reply {
		pg := d.page
		if !d.helps(nd.applied[pg]) {
			if debugHook != nil {
				debugHook("skip", nd.ID, d.creator, pg, int(d.to))
			}
			continue
		}
		nd.Mem.ApplyRuns(nd.p, pg, d.runs)
		nd.recordApplied(d)
		if pg != lastTouched {
			if lastTouched >= 0 {
				nd.prunePending(lastTouched)
			}
			lastTouched = pg
		}
	}
	if lastTouched >= 0 {
		nd.prunePending(lastTouched)
	}
	// The scratch keeps the slice header only; drop the diff pointers so
	// applied entries are not retained twice.
	for i := range reply {
		reply[i] = nil
	}
	nd.sortScratch = reply[:0]
}

// recordApplied performs the bookkeeping shared by every path that has
// just merged a diff's runs into memory (applyDiffs, and applySpans'
// span fast path): the trace hook, the applied/words statistics, the
// applied-timestamp advancement, and caching the diff for later
// forwarding. Keeping it in one place is what keeps the span fast path
// behaviorally identical to the per-page path — the adapt-on/adapt-off
// bit-equivalence depends on that.
func (nd *Node) recordApplied(d *storedDiff) {
	applied := nd.applied[d.page]
	if debugHook != nil {
		sum := 0.0
		for _, r := range d.runs {
			for i, v := range r.Vals {
				sum += v * float64(r.Off+i+1)
			}
		}
		debugHook("apply", nd.ID, d.creator, d.page, int(d.to), d.whole, vm.RunsWords(d.runs), int(d.from), sum)
	}
	nd.Stats.DiffsApplied++
	nd.Stats.WordsApplied += int64(vm.RunsWords(d.runs))
	if d.whole {
		for o, c := range d.covers {
			if c > applied[o] {
				applied[o] = c
			}
		}
	} else if d.to > applied[d.creator] {
		applied[d.creator] = d.to
	}
	nd.storeDiff(d)
}

// prunePending drops satisfied notices and restores read access when a
// page has no outstanding modifications left.
func (nd *Node) prunePending(page int) {
	pend := nd.pending[page][:0]
	for _, n := range nd.pending[page] {
		if n.idx > nd.applied[page][n.owner] {
			pend = append(pend, n)
		}
	}
	// The emptied slice stays in the map (every reader tests len, never
	// membership) so its capacity is reused by the page's next notices.
	nd.pending[page] = pend
	if len(pend) == 0 && nd.Mem.Prot(page) == vm.NoAccess {
		nd.Mem.SetProt(nd.p, page, vm.ReadOnly)
	}
}

func sortedKeys(m map[int][]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func dedupInts(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
