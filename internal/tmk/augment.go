package tmk

import (
	"time"

	"sdsm/internal/shm"
	"sdsm/internal/vm"
	"sdsm/internal/wire"
)

// wsyncRequest is a registered Validate_w_sync awaiting the next
// synchronization operation.
type wsyncRequest struct {
	at      AccessType
	pages   []int
	regions []shm.Region
}

// Validate informs the run-time that the calling processor is about to
// access the given regions with the declared pattern (Section 3.1.1).
// Outstanding diffs for all named pages are fetched in one exchange per
// responder (communication aggregation); the consistency actions depend on
// the access type (consistency overhead elimination for the *_ALL types).
// With async, the processor continues computing and the fetched data is
// applied at the first access or the next synchronization point.
func (nd *Node) Validate(at AccessType, regions []shm.Region, async bool) {
	nd.p.Begin()
	defer nd.p.End()
	nd.Mem.BeginProtBatch()
	defer nd.Mem.FlushProtBatch(nd.p)
	nd.Stats.Validates++
	pages := pagesOf(regions)
	nd.p.Charge(time.Duration(len(pages)) * nd.sys.Costs.ValidatePerPage)

	// The consistency-disabling treatment (no fetch for WRITE_ALL, no twin
	// for both *_ALL types) is sound only for pages the section covers
	// completely: a page shared with another processor's data keeps
	// twin-based detection so its foreign words are never misattributed.
	fullCover := map[int]bool{}
	if at.noTwin() {
		full, _ := splitCoverage(regions, pages)
		for _, pg := range full {
			fullCover[pg] = true
		}
	}
	effective := func(pg int) AccessType {
		if at.noTwin() && !fullCover[pg] {
			return AccReadWrite
		}
		return at
	}

	if !at.fetches() {
		var partial []int
		for _, pg := range pages {
			if fullCover[pg] {
				nd.discardObligations(pg)
				nd.applyAccessType(pg, at)
			} else {
				partial = append(partial, pg)
			}
		}
		if len(partial) > 0 {
			nd.fetchPages(partial, false)
			for _, pg := range partial {
				nd.applyAccessType(pg, AccReadWrite)
			}
		}
		return
	}

	var need []int
	for _, pg := range pages {
		if len(nd.pending[pg]) > 0 {
			need = append(need, pg)
		}
	}
	if async {
		for _, pg := range need {
			nd.mode[pg] = effective(pg)
		}
		nd.fetchPages(need, true)
		for _, pg := range pages {
			if _, deferred := nd.mode[pg]; !deferred {
				nd.applyAccessType(pg, effective(pg))
			}
		}
		return
	}
	nd.fetchPages(need, false)
	for _, pg := range pages {
		nd.applyAccessType(pg, effective(pg))
	}
}

// ValidateWSync registers a Validate whose data fetch is piggybacked on
// the next synchronization operation (lock acquire or barrier).
func (nd *Node) ValidateWSync(at AccessType, regions []shm.Region) {
	nd.p.Begin()
	defer nd.p.End()
	pages := pagesOf(regions)
	nd.p.Charge(time.Duration(len(pages)) * nd.sys.Costs.ValidatePerPage)
	nd.Stats.Validates++
	nd.wsync = append(nd.wsync, wsyncRequest{at: at, pages: pages, regions: regions})
}

// splitCoverage partitions pages into those fully covered by the
// normalized region set and those only partially covered.
func splitCoverage(regions []shm.Region, pages []int) (full, partial []int) {
	for _, pg := range pages {
		page := shm.Region{Lo: pg * shm.PageWords, Hi: (pg + 1) * shm.PageWords}
		covered := 0
		for _, r := range regions {
			covered += r.Intersect(page).Words()
		}
		if covered >= shm.PageWords {
			full = append(full, pg)
		} else {
			partial = append(partial, pg)
		}
	}
	return full, partial
}

// discardObligations marks every known remote interval as applied for a
// page that is about to be entirely overwritten. Correct only under exact
// compiler analysis, as the paper requires.
func (nd *Node) discardObligations(pg int) {
	for o := range nd.vc {
		if nd.vc[o] > nd.applied[pg][o] {
			nd.applied[pg][o] = nd.vc[o]
		}
	}
	delete(nd.pending, pg)
}

// applyAccessType performs the per-page consistency action of a Validate
// once the page's data is current.
func (nd *Node) applyAccessType(pg int, at AccessType) {
	switch {
	case at == AccRead:
		if nd.Mem.Prot(pg) == vm.NoAccess {
			nd.Mem.SetProt(nd.p, pg, vm.ReadOnly)
		}
	case at.noTwin():
		nd.enableWrite(pg, true)
	default:
		nd.enableWrite(pg, false)
	}
}

// consumeWSync applies the consistency actions of registered
// Validate_w_sync requests after a synchronization operation has delivered
// (some of) their data. Pages with still-outstanding notices are left
// invalid; accessing them faults and fetches the remainder, as the paper
// describes. Leftover deferred modes from asynchronous Validates are
// dropped (their pages were never accessed in the phase).
func (nd *Node) consumeWSync() {
	for _, ws := range nd.wsync {
		fullCover := map[int]bool{}
		if ws.at.noTwin() {
			full, _ := splitCoverage(ws.regions, ws.pages)
			for _, pg := range full {
				fullCover[pg] = true
			}
		}
		for _, pg := range ws.pages {
			if len(nd.pending[pg]) > 0 {
				continue
			}
			at := ws.at
			if at.noTwin() && !fullCover[pg] {
				at = AccReadWrite
			}
			nd.applyAccessType(pg, at)
		}
	}
	nd.wsync = nil
	for pg := range nd.mode {
		delete(nd.mode, pg)
	}
}

const tagPush = 101

// Push replaces a barrier with a point-to-point exchange (Section 3.1.2):
// reads[i] and writes[i] are the regions processor i reads after,
// respectively wrote before, the replaced barrier. Each processor sends
// the intersections of its writes with the others' reads and receives the
// converse, in place, without twinning or diffing. Only the received
// sections are made consistent; the run-time records them as applied so
// the write notices arriving at the next real barrier do not re-invalidate
// them.
func (nd *Node) Push(reads, writes [][]shm.Region) {
	nd.p.Begin()
	defer nd.p.End()
	nd.Mem.BeginProtBatch()
	defer nd.Mem.FlushProtBatch(nd.p)
	nd.completeInflight()
	nd.closeInterval()
	nd.Stats.Pushes++
	s := nd.sys
	n := s.N()
	if n == 1 {
		nd.consumeWSync()
		return
	}
	myIvl := nd.vc[nd.ID]

	// Send phase.
	for i := 0; i < n; i++ {
		if i == nd.ID {
			continue
		}
		inter := shm.IntersectSets(writes[nd.ID], reads[i])
		if len(inter) == 0 {
			continue
		}
		pl := wire.Push{Ivl: myIvl}
		bytes := 16
		words := 0
		for _, r := range inter {
			vals := append([]float64(nil), nd.Mem.Data()[r.Lo:r.Hi]...)
			pl.Chunks = append(pl.Chunks, wire.Chunk{Lo: int32(r.Lo), Vals: vals})
			bytes += 16 + r.Bytes()
			words += r.Words()
		}
		nd.p.Charge(time.Duration(words) * s.Costs.TwinPerWord) // gather memcpy
		s.NW.Send(nd.p, i, tagPush, pl, bytes)
	}

	// Receive phase, in sender order for determinism.
	for i := 0; i < n; i++ {
		if i == nd.ID {
			continue
		}
		inter := shm.IntersectSets(writes[i], reads[nd.ID])
		if len(inter) == 0 {
			continue
		}
		m := s.NW.Recv(nd.p, i, tagPush)
		pl := m.Payload.(wire.Push)
		for _, ch := range pl.Chunks {
			nd.applyPushChunk(i, pl.Ivl, ch)
		}
	}
	nd.consumeWSync()
}

// applyPushChunk writes received data in place, page by page, marking the
// sender's interval applied so later write notices do not invalidate the
// pushed data.
func (nd *Node) applyPushChunk(sender int, ivl int32, ch wire.Chunk) {
	lo := int(ch.Lo)
	hi := int(ch.Lo) + len(ch.Vals)
	for lo < hi {
		pg := lo / shm.PageWords
		pageEnd := (pg + 1) * shm.PageWords
		end := hi
		if pageEnd < end {
			end = pageEnd
		}
		nd.Mem.ApplyRuns(nd.p, pg, []vm.Run{{Off: lo - pg*shm.PageWords, Vals: ch.Vals[lo-int(ch.Lo) : end-int(ch.Lo)]}})
		if nd.recTouched != nil {
			// Pushed data moves the image without a diff store; the next
			// incremental record must frame the page (recovery.go).
			nd.recTouched[pg] = true
		}
		// A page only counts as applied when the chunk delivers all of it;
		// partially pushed pages keep their obligations (the paper: Push
		// guarantees consistency only for the received sections).
		if ivl > nd.applied[pg][sender] && end-lo == shm.PageWords {
			nd.applied[pg][sender] = ivl
		}
		nd.prunePending(pg)
		if nd.Mem.Prot(pg) == vm.NoAccess {
			nd.Mem.SetProt(nd.p, pg, vm.ReadOnly)
		}
		lo = end
	}
}

// PagesOf exposes section-to-page translation for tests and tools.
func PagesOf(regions []shm.Region) []int { return pagesOf(regions) }
