package tmk

import (
	"fmt"
	"testing"
	"time"

	"sdsm/internal/shm"
)

// xorshift is a tiny deterministic PRNG so the stress runs are seeded and
// reproducible without math/rand.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

func (x *xorshift) intn(n int) int { return int(x.next() % uint64(n)) }

// TestRandomizedBarrierPrograms runs randomly generated barrier-structured
// SPMD programs against a golden shared-memory model. Each round, every
// node writes a random set of regions from a disjoint per-node partition
// of the round (so the program is race-free), with random Validate usage;
// after the barrier every node reads random words and checks them against
// the golden memory.
func TestRandomizedBarrierPrograms(t *testing.T) {
	const (
		n      = 4
		pages  = 8
		rounds = 12
	)
	for seed := 1; seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			words := pages * shm.PageWords
			golden := make([]float64, words)

			// Pre-generate the whole schedule deterministically so every
			// node and the golden model agree.
			rng := xorshift(seed * 2654435761)
			var schedule [rounds][]randWrite
			for rd := 0; rd < rounds; rd++ {
				// Slice the address space into n disjoint chunks this round,
				// rotating so page ownership migrates between rounds.
				chunk := words / n
				rot := rng.intn(n)
				for node := 0; node < n; node++ {
					owner := (node + rot) % n
					base := owner * chunk
					for k := 0; k < 1+rng.intn(3); k++ {
						lo := base + rng.intn(chunk-1)
						hi := lo + 1 + rng.intn(minI(chunk-(lo-base)-1, 700))
						w := randWrite{
							node: node, lo: lo, hi: hi,
							val: float64(rd*1000 + node*100 + k),
							how: rng.intn(4),
						}
						schedule[rd] = append(schedule[rd], w)
					}
				}
				// Apply to the golden model in schedule order (later writes
				// this round only overlap within one node, which executes
				// them in order).
				for _, w := range schedule[rd] {
					for a := w.lo; a < w.hi; a++ {
						golden[a] = w.val
					}
				}
			}

			s := testSystem(n, words)
			run(t, s, func(nd *Node) {
				for rd := 0; rd < rounds; rd++ {
					for _, w := range schedule[rd] {
						if w.node != nd.ID {
							continue
						}
						reg := []shm.Region{{Lo: w.lo, Hi: w.hi}}
						switch w.how {
						case 1:
							nd.Validate(AccWrite, reg, false)
						case 2:
							nd.Validate(AccWriteAll, reg, false)
						case 3:
							nd.Validate(AccReadWrite, reg, true)
						}
						nd.Mem.EnsureWrite(nd.p, reg[0])
						d := nd.Mem.Data()
						for a := w.lo; a < w.hi; a++ {
							d[a] = w.val
						}
					}
					nd.p.Advance(time.Duration(nd.ID+1) * 53 * time.Microsecond)
					nd.Barrier(1)
					// Read back random words written up to this round.
					probe := xorshift(uint64(seed*1_000_003 + rd*7919 + nd.ID))
					goldenAt := goldenAfter(schedule[:rd+1], words)
					for k := 0; k < 32; k++ {
						a := probe.intn(words)
						nd.Mem.EnsureRead(nd.p, shm.Region{Lo: a, Hi: a + 1})
						if got := nd.Mem.Data()[a]; got != goldenAt[a] {
							t.Fatalf("round %d node %d word %d: got %v want %v", rd, nd.ID, a, got, goldenAt[a])
						}
					}
					nd.Barrier(2)
				}
			})
		})
	}
}

// randWrite is one generated write of the stress schedule.
type randWrite struct {
	node   int
	lo, hi int
	val    float64
	how    int // 0 plain, 1 validate WRITE, 2 validate WRITE_ALL, 3 async READ&WRITE
}

// goldenAfter replays the schedule prefix into a fresh memory image.
func goldenAfter(schedule [][]randWrite, words int) []float64 {
	mem := make([]float64, words)
	for _, rd := range schedule {
		for _, w := range rd {
			for a := w.lo; a < w.hi; a++ {
				mem[a] = w.val
			}
		}
	}
	return mem
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
