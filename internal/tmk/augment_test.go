package tmk

import (
	"testing"
	"time"

	"sdsm/internal/shm"
)

// TestAsyncValidateSingleFaultDrainsAllModes: the paper's asynchronous
// Validate finishes in the page fault handler; one fault must complete the
// deferred consistency actions for every page of the Validate, not fault
// once per page.
func TestAsyncValidateSingleFaultDrainsAllModes(t *testing.T) {
	const pages = 6
	s := testSystem(2, pages*shm.PageWords)
	run(t, s, func(nd *Node) {
		if nd.ID == 0 {
			nd.Mem.EnsureWrite(nd.p, shm.Region{Lo: 0, Hi: pages * shm.PageWords})
			d := nd.Mem.Data()
			for i := range d {
				d[i] = float64(i)
			}
		}
		nd.Barrier(1)
		if nd.ID == 1 {
			nd.Validate(AccRead, region(0, pages*shm.PageWords), true)
			before := nd.Mem.Counters.ReadFaults
			// Touch every page; only the first may fault.
			for pg := 0; pg < pages; pg++ {
				if got := r(nd, pg*shm.PageWords+1); got != float64(pg*shm.PageWords+1) {
					t.Errorf("page %d stale: %v", pg, got)
				}
			}
			if faults := nd.Mem.Counters.ReadFaults - before; faults > 1 {
				t.Errorf("async validate caused %d faults, want at most 1", faults)
			}
		}
		nd.Barrier(2)
	})
}

// TestPushPartialPageKeepsObligations: a push chunk covering part of a
// page must not mark the page applied — the unpushed words still carry
// their write notices.
func TestPushPartialPageKeepsObligations(t *testing.T) {
	s := testSystem(2, shm.PageWords)
	run(t, s, func(nd *Node) {
		half := shm.PageWords / 2
		if nd.ID == 0 {
			nd.Mem.EnsureWrite(nd.p, shm.Region{Lo: 0, Hi: shm.PageWords})
			d := nd.Mem.Data()
			for i := 0; i < shm.PageWords; i++ {
				d[i] = float64(i) + 1
			}
		}
		// Push only the first half of the page to node 1.
		reads := [][]shm.Region{0: {}, 1: {{Lo: 0, Hi: half}}}
		writes := [][]shm.Region{0: {{Lo: 0, Hi: half}}, 1: {}}
		nd.Push(reads, writes)
		nd.Barrier(1)
		if nd.ID == 1 {
			// The pushed half is present; reading the other half must fault
			// and fetch (obligation retained).
			before := nd.Mem.Counters.ReadFaults
			if got := r(nd, half+5); got != float64(half+5)+1 {
				t.Errorf("unpushed half stale: %v", got)
			}
			if nd.Mem.Counters.ReadFaults == before {
				t.Error("partial push should have left the page's obligation in place")
			}
		}
		nd.Barrier(2)
	})
}

// TestPushFullPageSkipsRefetch: a fully pushed page must not be
// re-invalidated by the notices arriving at the next barrier. As in the
// compiler's output, the pushed section is written under WRITE_ALL (a
// plain twin-based page stays dirty across the interval close and is
// conservatively re-noticed, which would legitimately re-invalidate).
func TestPushFullPageSkipsRefetch(t *testing.T) {
	s := testSystem(2, shm.PageWords)
	run(t, s, func(nd *Node) {
		if nd.ID == 0 {
			nd.Validate(AccWriteAll, region(0, shm.PageWords), false)
			nd.Mem.EnsureWrite(nd.p, shm.Region{Lo: 0, Hi: shm.PageWords})
			d := nd.Mem.Data()
			for i := 0; i < shm.PageWords; i++ {
				d[i] = 7
			}
		}
		all := shm.Region{Lo: 0, Hi: shm.PageWords}
		nd.Push([][]shm.Region{0: {}, 1: {all}}, [][]shm.Region{0: {all}, 1: {}})
		nd.Barrier(1)
		if nd.ID == 1 {
			before := nd.Mem.Counters.ReadFaults
			if got := r(nd, 9); got != 7 {
				t.Errorf("pushed value = %v", got)
			}
			if nd.Mem.Counters.ReadFaults != before {
				t.Error("fully pushed page re-faulted after the barrier")
			}
		}
		nd.Barrier(2)
	})
}

// TestWriteAllPartialPageFallsBackToTwin: WRITE_ALL on a section that only
// partially covers a page must keep twin-based detection for that page, so
// the other processor's half survives.
func TestWriteAllPartialPageFallsBackToTwin(t *testing.T) {
	s := testSystem(2, shm.PageWords)
	run(t, s, func(nd *Node) {
		half := shm.PageWords / 2
		mine := shm.Region{Lo: nd.ID * half, Hi: (nd.ID + 1) * half}
		for iter := 0; iter < 3; iter++ {
			nd.Validate(AccWriteAll, []shm.Region{mine}, false)
			nd.Mem.EnsureWrite(nd.p, mine)
			d := nd.Mem.Data()
			for w := mine.Lo; w < mine.Hi; w++ {
				d[w] = float64(iter*10 + nd.ID + 1)
			}
			nd.Barrier(1)
			other := shm.Region{Lo: (1 - nd.ID) * half, Hi: (2 - nd.ID) * half}
			nd.Mem.EnsureRead(nd.p, other)
			if got := nd.Mem.Data()[other.Lo]; got != float64(iter*10+(1-nd.ID)+1) {
				t.Errorf("iter %d node %d: other half = %v", iter, nd.ID, got)
			}
			nd.Barrier(2)
		}
	})
}

// TestValidateWSyncOnLockCarriesGrantDiffs: the lock-grant path serves the
// registered sections ("the requested data is piggy-backed on the
// response").
func TestValidateWSyncConsumedOncePerSync(t *testing.T) {
	s := testSystem(2, shm.PageWords)
	run(t, s, func(nd *Node) {
		if nd.ID == 0 {
			nd.Acquire(5)
			w(nd, 0, 42)
			nd.Release(5)
		} else {
			nd.p.Advance(5 * time.Millisecond)
			nd.ValidateWSync(AccRead, region(0, 16))
			nd.Acquire(5)
			if len(nd.wsync) != 0 {
				t.Error("wsync registration not consumed at acquire")
			}
			nd.Release(5)
		}
	})
}

// TestDiffAccumulationAvoidedByWholeNotices compares the bytes fetched by
// a late reader in the migratory pattern: twin-based writers make the
// reader pull every writer's overlapping diff, WRITE_ALL writers let it
// pull one whole page.
func TestDiffAccumulationAvoidedByWholeNotices(t *testing.T) {
	runChain := func(writeAll bool) int64 {
		const n = 4
		s := testSystem(n, shm.PageWords)
		if err := s.Run(func(nd *Node) {
			nd.p.Advance(time.Duration(nd.ID) * time.Millisecond)
			nd.Acquire(1)
			if writeAll {
				nd.Validate(AccReadWriteAll, region(0, shm.PageWords), false)
			}
			nd.Mem.EnsureWrite(nd.p, shm.Region{Lo: 0, Hi: shm.PageWords})
			d := nd.Mem.Data()
			for i := 0; i < shm.PageWords; i++ {
				d[i] = float64(nd.ID*1000 + i)
			}
			nd.Release(1)
			nd.Barrier(1)
			if nd.ID == 0 {
				before := s.NW.Stats().Bytes
				nd.Validate(AccRead, region(0, shm.PageWords), false)
				_ = r(nd, 5)
				_ = before
			}
			nd.Barrier(2)
		}); err != nil {
			t.Fatal(err)
		}
		return s.NW.Stats().Bytes
	}
	accum := runChain(false)
	whole := runChain(true)
	if whole >= accum {
		t.Fatalf("WRITE_ALL chain moved %d bytes, twin chain %d; accumulation not avoided", whole, accum)
	}
}

// TestSixteenProcessors exercises the system beyond the paper's count.
func TestSixteenProcessors(t *testing.T) {
	const n = 16
	s := testSystem(n, n*shm.PageWords)
	run(t, s, func(nd *Node) {
		for iter := 0; iter < 2; iter++ {
			w(nd, nd.ID*shm.PageWords+iter, float64(100*nd.ID+iter))
			nd.Barrier(1)
			peer := (nd.ID + 1) % n
			if got := r(nd, peer*shm.PageWords+iter); got != float64(100*peer+iter) {
				t.Errorf("iter %d: node %d read %v from peer %d", iter, nd.ID, got, peer)
			}
			nd.Barrier(2)
		}
	})
}

// TestProtBatchingAccounting: a Validate over a contiguous section must
// charge one protection run, not one op per page.
func TestProtBatchingAccounting(t *testing.T) {
	const pages = 16
	s := testSystem(2, pages*shm.PageWords)
	run(t, s, func(nd *Node) {
		if nd.ID == 0 {
			before := nd.Mem.Counters.ProtOps
			nd.Validate(AccWriteAll, region(0, pages*shm.PageWords), false)
			ops := nd.Mem.Counters.ProtOps - before
			if ops > 2 {
				t.Errorf("WRITE_ALL over %d contiguous pages charged %d protection ops, want 1-2", pages, ops)
			}
		}
		nd.Barrier(1)
	})
}
