package tmk

import (
	"sort"

	"sdsm/internal/adapt"
	"sdsm/internal/obs"
	"sdsm/internal/vm"
	"sdsm/internal/wire"
)

// tagAdapt is the mailbox tag of adaptive update messages (tagPush + 1).
const tagAdapt = 102

// adaptNode is one node's slice of the adaptive protocol: the replicated
// pattern detector (every node advances an identical copy on identical
// global input, so bindings never need negotiating) and the node's own
// demand-fetch log for the current epoch, which rides its next barrier
// arrival.
type adaptNode struct {
	det     *adapt.Detector
	fetched map[int]bool // pages demand-fetched since the last barrier departure
}

// EnableAdapt switches the machine to the adaptive update protocol: the
// run-time profiles the fault/fetch traffic per barrier epoch, infers
// stable producer→consumer page patterns, and pushes promoted pages'
// diffs at barrier departure instead of letting consumers fault — at
// section granularity: bound pages cluster into contiguous sections, one
// run-length-encoded diff span per (consumer, section), and falsely
// shared two-writer pages carry sub-page split bindings (DESIGN.md §8).
// It also arms the lock-scope detectors: each lock's hand-off history
// drives a per-lock adapt.LockDetector whose bound edges piggyback the
// predicted critical-section working set on the grant (see lockGrant in
// sync.go). Must be called after New and before Run.
func (s *System) EnableAdapt(cfg adapt.Config) {
	s.adaptCfg = cfg
	for _, nd := range s.Nodes {
		nd.ad = &adaptNode{det: adapt.New(cfg), fetched: map[int]bool{}}
		nd.ad.det.LogTrans = s.trace != nil
	}
}

// adaptOn reports whether the machine runs the adaptive protocol.
func (s *System) adaptOn() bool { return s.Nodes[0].ad != nil }

// noteFetch logs a demand fetch: always as a lock fault when a lock is
// held (the Table B metric, maintained with or without adaptation), and —
// under the adaptive protocol — both in the innermost held lock's
// critical-section working set (the lock detector's observation) and in
// the node's barrier-epoch log (the barrier detector's).
func (nd *Node) noteFetch(page int) {
	if n := len(nd.held); n > 0 {
		nd.Stats.LockFetches++
		if f := nd.held[n-1].fetched; f != nil {
			f[page] = true
		}
	}
	if nd.ad != nil {
		nd.ad.fetched[page] = true
	}
}

// fetchedSorted returns the epoch's demand-fetched pages, sorted.
func (nd *Node) fetchedSorted() []int32 {
	if len(nd.ad.fetched) == 0 {
		return nil
	}
	out := make([]int32, 0, len(nd.ad.fetched))
	for pg := range nd.ad.fetched {
		out = append(out, int32(pg))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// adaptFetchedBytes is the accounted wire size of one relayed fetch list.
func adaptFetchedBytes(pages int) int { return 8 + 4*pages }

// adaptStep runs right after a barrier departure: it assembles the epoch's
// observation from globally shared state, advances the detector, and
// performs the update exchange for promoted pages.
//
// The observation is identical at every node: the writers (with their
// write extents) come from the write notices in (oldBar, vc] — after a
// departure all nodes hold the same merged vector time and the same
// interval records — and the readers from the departure's relayed
// per-node fetch lists. Both sides of every exchange therefore derive the
// same send/receive schedule independently, the way Push's send and
// receive phases already pair up on all backends.
func (nd *Node) adaptStep(oldBar []int32, fetched []wire.NodePages) {
	s := nd.sys
	ep := adapt.Epoch{Writers: map[int][]adapt.WriteExt{}, Readers: map[int][]int{}}
	for o := range nd.vc {
		for idx := oldBar[o] + 1; idx <= nd.vc[o]; idx++ {
			for _, ref := range nd.know[o][idx-1].pages {
				pg := int(ref.Page)
				ws := ep.Writers[pg]
				if n := len(ws); n > 0 && ws[n-1].Node == o {
					// The owner closed several intervals covering the page
					// this epoch (a lazy-flush split): union the extents, an
					// unknown extent poisoning the union to unknown.
					if ws[n-1].Hi == 0 || ref.ExtHi == 0 {
						ws[n-1].Lo, ws[n-1].Hi = 0, 0
					} else {
						if int(ref.ExtLo) < ws[n-1].Lo {
							ws[n-1].Lo = int(ref.ExtLo)
						}
						if int(ref.ExtHi) > ws[n-1].Hi {
							ws[n-1].Hi = int(ref.ExtHi)
						}
					}
					continue
				}
				ep.Writers[pg] = append(ws, adapt.WriteExt{Node: o, Lo: int(ref.ExtLo), Hi: int(ref.ExtHi)})
			}
		}
	}
	for _, np := range fetched {
		for _, pg := range np.Pages {
			ep.Readers[int(pg)] = append(ep.Readers[int(pg)], int(np.Node))
		}
	}
	nd.ad.det.Advance(ep)
	if nd.ID == 0 {
		// Detector transitions are machine-global (every replica counts the
		// same ones); node 0 reports them so the aggregate is not N-fold.
		st := nd.ad.det.Stats
		nd.Stats.AdaptPromotions = st.Promotions
		nd.Stats.AdaptSplits = st.Splits
		nd.Stats.AdaptJoins = st.SectionJoins
		nd.Stats.AdaptDecays = st.Decays
		if nd.tr != nil {
			vt, wt := int64(nd.p.Now()), nd.tr.WallNow()
			for _, t := range nd.ad.det.Trans {
				nd.tr.Emit(obs.Event{
					Kind: obs.EvAdapt, VT: vt, WT: wt,
					Page: int32(t.Page), A: int32(t.Kind),
				})
			}
		}
	}

	// The exchange schedule: for every page written this epoch and bound
	// to update, its producer — or, for split-bound pages, each writing
	// pair member — pushes this epoch's own diffs to every bound consumer
	// but itself, one aggregated message per consumer.
	pages := make([]int, 0, len(ep.Writers))
	for pg := range ep.Writers {
		pages = append(pages, pg)
	}
	sort.Ints(pages)
	sends := map[int][]int{} // consumer -> pages this node pushes
	recvs := map[int]bool{}  // producers this node expects a push from
	route := func(producer int, consumers []int, pg int) {
		for _, c := range consumers {
			if c == producer {
				continue
			}
			if producer == nd.ID {
				sends[c] = append(sends[c], pg)
			} else if c == nd.ID {
				recvs[producer] = true
			}
		}
	}
	for _, pg := range pages {
		ws := ep.Writers[pg]
		if pair, _, consumers, ok := nd.ad.det.Split(pg); ok {
			// Sub-page binding: every pair member that wrote this epoch
			// pushes its own diffs — which cover exactly its half — so each
			// consumer's pending notices are satisfied by the paired pushes.
			for _, w := range ws {
				if w.Node == pair[0] || w.Node == pair[1] {
					route(w.Node, consumers, pg)
				}
			}
			continue
		}
		if len(ws) != 1 {
			continue // conflicting writers: the detector just decayed it
		}
		prod, consumers, ok := nd.ad.det.Push(pg)
		if !ok || prod != ws[0].Node {
			continue
		}
		route(prod, consumers, pg)
	}

	// Send phase: flush the pushed pages' outstanding modifications (the
	// same lazy flush a serve would trigger) and ship every own diff the
	// epoch produced, coalesced into one section span per contiguous run
	// of compatible headers (wire.CoalesceDiffs), one message per bound
	// consumer.
	consumers := make([]int, 0, len(sends))
	for c := range sends {
		consumers = append(consumers, c)
	}
	sort.Ints(consumers)
	for _, c := range consumers {
		var ds []wire.Diff
		for _, pg := range sends[c] {
			if nd.dirty[pg] {
				nd.flushLocalDiff(pg, false)
			}
			for _, d := range nd.diffs[pg] {
				if d.creator == nd.ID && d.to > oldBar[nd.ID] {
					ds = append(ds, d.toWire())
				}
			}
			nd.Stats.AdaptPagesPushed++
		}
		u := wire.Update{Epoch: int32(nd.Stats.Barriers), Spans: wire.CoalesceDiffs(ds)}
		bytes := 16
		for _, sp := range u.Spans {
			bytes += sp.WireBytes()
		}
		nd.Stats.AdaptSpans += int64(len(u.Spans))
		s.NW.Send(nd.p, c, tagAdapt, u, bytes)
		nd.Stats.AdaptUpdates++
	}

	// Receive phase, in producer order for determinism. The pushed spans
	// run through the normal application path — ordering, applied-
	// timestamp advancement, notice pruning, and revalidation all behave
	// exactly as if the consumer had fetched the expanded per-page diffs —
	// which is why adapt-on and adapt-off runs produce bit-identical
	// memory images. (Split pages receive one span from each half's
	// producer; their runs are disjoint by the watershed, so the producer
	// application order cannot affect content.)
	producers := make([]int, 0, len(recvs))
	for q := range recvs {
		producers = append(producers, q)
	}
	sort.Ints(producers)
	for _, q := range producers {
		m := s.NW.Recv(nd.p, q, tagAdapt)
		nd.applySpans(m.Payload.(wire.Update).Spans)
	}
	nd.ad.fetched = map[int]bool{}
}

// applySpans applies received update spans. A span whose every page
// applies cleanly — the diff advances the page's applied timestamp and
// its chain is contiguous with the local floor — goes through one
// vm.ApplySpan call for the whole contiguous range, with the per-page
// bookkeeping (applied timestamps, diff caching, notice pruning) done
// exactly as applyDiffs would. Anything else expands to per-page diffs
// and takes the normal applyDiffs path, so content and virtual-time
// charges are identical either way.
func (nd *Node) applySpans(spans []wire.DiffSpan) {
	var rest []wire.Diff
	for _, sp := range spans {
		diffs := sp.Expand()
		stored := make([]*storedDiff, len(diffs))
		clean := len(diffs) > 0
		for i, w := range diffs {
			stored[i] = diffFromWire(w)
			applied := nd.applied[stored[i].page]
			if !stored[i].helps(applied) || (!stored[i].whole && stored[i].from > applied[stored[i].creator]) {
				clean = false
				break
			}
		}
		if !clean {
			rest = append(rest, diffs...)
			continue
		}
		perPage := make([][]vm.Run, len(stored))
		for i, d := range stored {
			perPage[i] = d.runs
		}
		nd.Mem.ApplySpan(nd.p, int(sp.Page), perPage)
		for _, d := range stored {
			nd.recordApplied(d)
			nd.prunePending(d.page)
		}
	}
	nd.applyDiffs(rest)
}
