package tmk

import (
	"sort"

	"sdsm/internal/adapt"
	"sdsm/internal/wire"
)

// tagAdapt is the mailbox tag of adaptive update messages (tagPush + 1).
const tagAdapt = 102

// adaptNode is one node's slice of the adaptive protocol: the replicated
// pattern detector (every node advances an identical copy on identical
// global input, so bindings never need negotiating) and the node's own
// demand-fetch log for the current epoch, which rides its next barrier
// arrival.
type adaptNode struct {
	det     *adapt.Detector
	fetched map[int]bool // pages demand-fetched since the last barrier departure
}

// EnableAdapt switches the machine to the adaptive update protocol: the
// run-time profiles the fault/fetch traffic per barrier epoch, infers
// stable producer→consumer page patterns, and pushes promoted pages'
// diffs at barrier departure instead of letting consumers fault. It also
// arms the lock-scope detectors: each lock's hand-off history drives a
// per-lock adapt.LockDetector whose bound edges piggyback the predicted
// critical-section working set on the grant (see lockGrant in sync.go).
// Must be called after New and before Run.
func (s *System) EnableAdapt(cfg adapt.Config) {
	s.adaptCfg = cfg
	for _, nd := range s.Nodes {
		nd.ad = &adaptNode{det: adapt.New(cfg), fetched: map[int]bool{}}
	}
}

// adaptOn reports whether the machine runs the adaptive protocol.
func (s *System) adaptOn() bool { return s.Nodes[0].ad != nil }

// noteFetch logs a demand fetch: always as a lock fault when a lock is
// held (the Table B metric, maintained with or without adaptation), and —
// under the adaptive protocol — both in the innermost held lock's
// critical-section working set (the lock detector's observation) and in
// the node's barrier-epoch log (the barrier detector's).
func (nd *Node) noteFetch(page int) {
	if n := len(nd.held); n > 0 {
		nd.Stats.LockFetches++
		if f := nd.held[n-1].fetched; f != nil {
			f[page] = true
		}
	}
	if nd.ad != nil {
		nd.ad.fetched[page] = true
	}
}

// fetchedSorted returns the epoch's demand-fetched pages, sorted.
func (nd *Node) fetchedSorted() []int32 {
	if len(nd.ad.fetched) == 0 {
		return nil
	}
	out := make([]int32, 0, len(nd.ad.fetched))
	for pg := range nd.ad.fetched {
		out = append(out, int32(pg))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// adaptFetchedBytes is the accounted wire size of one relayed fetch list.
func adaptFetchedBytes(pages int) int { return 8 + 4*pages }

// adaptStep runs right after a barrier departure: it assembles the epoch's
// observation from globally shared state, advances the detector, and
// performs the update exchange for promoted pages.
//
// The observation is identical at every node: the writers come from the
// write notices in (oldBar, vc] — after a departure all nodes hold the
// same merged vector time and the same interval records — and the readers
// from the departure's relayed per-node fetch lists. Both sides of every
// exchange therefore derive the same send/receive schedule independently,
// the way Push's send and receive phases already pair up on all backends.
func (nd *Node) adaptStep(oldBar []int32, fetched []wire.NodePages) {
	s := nd.sys
	ep := adapt.Epoch{Writers: map[int][]int{}, Readers: map[int][]int{}}
	for o := range nd.vc {
		for idx := oldBar[o] + 1; idx <= nd.vc[o]; idx++ {
			for _, ref := range nd.know[o][idx-1].pages {
				pg := int(ref.page)
				ws := ep.Writers[pg]
				if len(ws) == 0 || ws[len(ws)-1] != o {
					ep.Writers[pg] = append(ws, o)
				}
			}
		}
	}
	for _, np := range fetched {
		for _, pg := range np.Pages {
			ep.Readers[int(pg)] = append(ep.Readers[int(pg)], int(np.Node))
		}
	}
	nd.ad.det.Advance(ep)
	if nd.ID == 0 {
		// Detector transitions are machine-global (every replica counts the
		// same ones); node 0 reports them so the aggregate is not N-fold.
		st := nd.ad.det.Stats
		nd.Stats.AdaptPromotions = st.Promotions
		nd.Stats.AdaptDecays = st.Decays
	}

	// The exchange schedule: for every page written this epoch and bound
	// to update, its producer pushes this epoch's diffs to every bound
	// consumer, one aggregated message per consumer.
	pages := make([]int, 0, len(ep.Writers))
	for pg := range ep.Writers {
		pages = append(pages, pg)
	}
	sort.Ints(pages)
	sends := map[int][]int{} // consumer -> pages this node pushes
	recvs := map[int]bool{}  // producers this node expects a push from
	for _, pg := range pages {
		if len(ep.Writers[pg]) != 1 {
			continue // conflicting writers: the detector just decayed it
		}
		prod, consumers, ok := nd.ad.det.Push(pg)
		if !ok || prod != ep.Writers[pg][0] {
			continue
		}
		for _, c := range consumers {
			if c == prod {
				continue
			}
			if prod == nd.ID {
				sends[c] = append(sends[c], pg)
			} else if c == nd.ID {
				recvs[prod] = true
			}
		}
	}

	// Send phase: flush the pushed pages' outstanding modifications (the
	// same lazy flush a serve would trigger) and ship every own diff the
	// epoch produced, one message per bound consumer.
	consumers := make([]int, 0, len(sends))
	for c := range sends {
		consumers = append(consumers, c)
	}
	sort.Ints(consumers)
	for _, c := range consumers {
		u := wire.Update{Epoch: int32(nd.Stats.Barriers)}
		bytes := 16
		for _, pg := range sends[c] {
			if nd.dirty[pg] {
				nd.flushLocalDiff(pg, false)
			}
			for _, d := range nd.diffs[pg] {
				if d.creator == nd.ID && d.to > oldBar[nd.ID] {
					u.Diffs = append(u.Diffs, d.toWire())
					bytes += d.wireBytes()
				}
			}
			nd.Stats.AdaptPagesPushed++
		}
		s.NW.Send(nd.p, c, tagAdapt, u, bytes)
		nd.Stats.AdaptUpdates++
	}

	// Receive phase, in producer order for determinism. The pushed diffs
	// run through the normal application path: ordering, applied-timestamp
	// advancement, notice pruning, and revalidation all behave exactly as
	// if the consumer had fetched them — which is why adapt-on and
	// adapt-off runs produce bit-identical memory images.
	producers := make([]int, 0, len(recvs))
	for q := range recvs {
		producers = append(producers, q)
	}
	sort.Ints(producers)
	for _, q := range producers {
		m := s.NW.Recv(nd.p, q, tagAdapt)
		u := m.Payload.(wire.Update)
		nd.applyDiffs(u.Diffs)
	}
	nd.ad.fetched = map[int]bool{}
}
