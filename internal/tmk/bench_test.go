package tmk

import (
	"testing"

	"sdsm/internal/shm"
	"sdsm/internal/vm"
	"sdsm/internal/wire"
)

// benchDiff builds a realistic twin-based diff: runs words modified words
// spread over the page in short runs, as the accumulate phases produce.
func benchDiff(creator int, to int32, words int) *storedDiff {
	d := &storedDiff{
		page: 1, creator: creator,
		from: to - 1, to: to,
		covers: []int32{to, 3, 7, 1, 0, 2, 4, 9},
	}
	runLen := 4
	for off := 0; off < shm.PageWords && vm.RunsWords(d.runs) < words; off += 2 * runLen {
		vals := make([]float64, runLen)
		for i := range vals {
			vals[i] = float64(off + i)
		}
		d.runs = append(d.runs, vm.Run{Off: off, Vals: vals})
	}
	return d
}

// BenchmarkDiffEncode measures converting a cached diff to its wire value
// (the serve path's per-requester copy).
func BenchmarkDiffEncode(b *testing.B) {
	d := benchDiff(0, 5, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := d.toWire()
		if len(w.Runs) == 0 {
			b.Fatal("empty encode")
		}
	}
}

// BenchmarkDiffApply measures merging received wire diffs into a node's
// page image (sort, helps filter, run application, cache insert).
func BenchmarkDiffApply(b *testing.B) {
	s := testSystem(8, 4*shm.PageWords)
	nd := s.Nodes[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 {
			// Bound the cache and coverage growth the bench itself causes.
			b.StopTimer()
			nd.diffs = map[int][]*storedDiff{}
			nd.applied[1] = make([]int32, 8)
			b.StartTimer()
		}
		to := int32(i%1024 + 1)
		reply := []wire.Diff{
			benchDiff(1, to, 128).toWire(),
			benchDiff(2, to, 64).toWire(),
		}
		nd.applyDiffs(reply)
	}
}

// BenchmarkServeDiffs measures answering a diff request against a warm
// cache (the hot path of every fault on the receiving side).
func BenchmarkServeDiffs(b *testing.B) {
	s := testSystem(8, 4*shm.PageWords)
	nd := s.Nodes[0]
	for to := int32(1); to <= 16; to++ {
		nd.storeDiff(benchDiff(0, to, 64))
	}
	applied := [][]int32{make([]int32, 8)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, bytes := nd.serveDiffs(3, []int{1}, applied, false)
		if len(out) == 0 || bytes == 0 {
			b.Fatal("nothing served")
		}
	}
}

// BenchmarkWriteNoticeEncode measures converting an interval record (a
// write notice) to its wire value, the per-interval cost of every grant
// and barrier message.
func BenchmarkWriteNoticeEncode(b *testing.B) {
	iv := interval{vc: []int32{5, 3, 7, 1, 0, 2, 4, 9}}
	for pg := 0; pg < 64; pg++ {
		iv.pages = append(iv.pages, wire.PageRef{Page: int32(pg), Whole: pg%7 == 0})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := iv.toWire()
		if len(w.Pages) != 64 {
			b.Fatal("bad encode")
		}
	}
}
