// Package tmk implements a TreadMarks-style software distributed shared
// memory run-time with lazy release consistency, extended with the
// compiler interface the paper introduces (Section 3): Validate,
// Validate_w_sync, and Push, with synchronous and asynchronous data
// fetching.
//
// The base protocol follows the paper's description of TreadMarks:
//
//   - Lazy release consistency with vector timestamps and intervals; write
//     notices propagate at lock acquires and barrier departures and
//     invalidate pages.
//   - An invalidate, multiple-writer protocol: first writes twin the page;
//     diffs (word runs) are created lazily when modifications are
//     requested, and pages are re-protected at diff creation.
//   - Locks have a static home (id mod N) that forwards requests to the
//     last releaser; barriers are master-based.
//
// The augmented interface bypasses (Validate with READ/WRITE/READ&WRITE)
// or disables (WRITE_ALL/READ&WRITE_ALL) the page-based consistency
// machinery, aggregates diff fetches into one exchange per responder,
// piggybacks fetches on synchronization (Validate_w_sync, with broadcast
// detection at barriers), and replaces barriers by point-to-point data
// exchanges (Push).
package tmk

import (
	"fmt"
	"sort"
	"time"

	"sdsm/internal/host"
	"sdsm/internal/model"
	"sdsm/internal/shm"
	"sdsm/internal/vm"
)

// AccessType is the access pattern the compiler declares in a Validate
// call (Section 3.1.1).
type AccessType int

// Access types. The first three preserve consistency; the last two disable
// it and require exact compiler analysis.
const (
	AccRead AccessType = iota
	AccWrite
	AccReadWrite
	AccWriteAll
	AccReadWriteAll
)

func (a AccessType) String() string {
	switch a {
	case AccRead:
		return "READ"
	case AccWrite:
		return "WRITE"
	case AccReadWrite:
		return "READ&WRITE"
	case AccWriteAll:
		return "WRITE_ALL"
	case AccReadWriteAll:
		return "READ&WRITE_ALL"
	}
	return fmt.Sprintf("AccessType(%d)", int(a))
}

// writes reports whether the access type enables writing.
func (a AccessType) writes() bool { return a != AccRead }

// noTwin reports whether the access type disables twinning/diffing.
func (a AccessType) noTwin() bool { return a == AccWriteAll || a == AccReadWriteAll }

// fetches reports whether the access type requires updating page contents.
func (a AccessType) fetches() bool { return a != AccWriteAll }

// ProtocolStats counts run-time events beyond the vm and network counters.
type ProtocolStats struct {
	LockAcquires  int64
	Barriers      int64
	Validates     int64
	Pushes        int64
	WSyncServes   int64 // diff messages sent in response to Validate_w_sync
	WSyncBcasts   int64 // of which broadcast
	DiffFetches   int64 // RPC exchanges performed to fetch diffs
	DiffsApplied  int64
	WordsApplied  int64
	Invalidations int64
}

// System is one DSM machine: N nodes over a network sharing a page-based
// address space. The host backend decides how the nodes execute: the
// deterministic sim engine for the paper's virtual-time numbers, or the
// real-concurrency host for genuine hardware parallelism.
type System struct {
	H      host.Host
	NW     host.Transport
	Costs  model.Costs
	Layout *shm.Layout
	Nodes  []*Node

	locks    map[int]*lock
	barriers map[int]*barrier
}

// New builds a DSM system for every processor of h. All pages start
// unmapped, as after TreadMarks initialization; the first touch of an
// unwritten page faults once and validates it zero-filled locally,
// without communication.
func New(h host.Host, nw host.Transport, layout *shm.Layout) *System {
	s := &System{
		H:        h,
		NW:       nw,
		Costs:    nw.Costs(),
		Layout:   layout,
		locks:    map[int]*lock{},
		barriers: map[int]*barrier{},
	}
	n := h.N()
	for i := 0; i < n; i++ {
		nd := &Node{
			ID:      i,
			sys:     s,
			vc:      make([]int32, n),
			know:    make([][]interval, n),
			dirty:   map[int]bool{},
			noTwin:  map[int]bool{},
			pending: map[int][]notice{},
			diffs:   map[int][]*storedDiff{},
			mode:    map[int]AccessType{},
		}
		nd.Mem = vm.New(i, layout.Words(), s.Costs, nd)
		pages := nd.Mem.Pages()
		nd.applied = make([][]int32, pages)
		for pg := range nd.applied {
			nd.applied[pg] = make([]int32, n)
		}
		nd.lastDiffed = make([]int32, pages)
		s.Nodes = append(s.Nodes, nd)
	}
	return s
}

// N returns the number of nodes.
func (s *System) N() int { return s.H.N() }

// Run executes body once per node, binding each node to its processor.
func (s *System) Run(body func(nd *Node)) error {
	return s.H.Run(func(p host.Proc) {
		nd := s.Nodes[p.ID()]
		nd.p = p
		body(nd)
	})
}

// Stats aggregates protocol statistics across nodes.
func (s *System) Stats() (vm.Counters, ProtocolStats) {
	var vc vm.Counters
	var ps ProtocolStats
	for _, nd := range s.Nodes {
		c := nd.Mem.Counters
		vc.ReadFaults += c.ReadFaults
		vc.WriteFaults += c.WriteFaults
		vc.ProtOps += c.ProtOps
		vc.Twins += c.Twins
		vc.Diffs += c.Diffs
		vc.DiffWords += c.DiffWords
		ps.LockAcquires += nd.Stats.LockAcquires
		ps.Barriers += nd.Stats.Barriers
		ps.Validates += nd.Stats.Validates
		ps.Pushes += nd.Stats.Pushes
		ps.WSyncServes += nd.Stats.WSyncServes
		ps.WSyncBcasts += nd.Stats.WSyncBcasts
		ps.DiffFetches += nd.Stats.DiffFetches
		ps.DiffsApplied += nd.Stats.DiffsApplied
		ps.WordsApplied += nd.Stats.WordsApplied
		ps.Invalidations += nd.Stats.Invalidations
	}
	return vc, ps
}

// MaxTime returns the largest node clock, the parallel execution time.
func (s *System) MaxTime() time.Duration {
	var t time.Duration
	for i := 0; i < s.N(); i++ {
		if c := s.H.Proc(i).Now(); c > t {
			t = c
		}
	}
	return t
}

// notice is a write notice: owner wrote page in its interval idx. whole
// marks intervals that overwrote the entire page without twinning
// (WRITE_ALL), which lets a fetch from the latest such writer subsume
// older modifications.
type notice struct {
	owner int
	idx   int32
	whole bool
}

// pageRef names a page within an interval record.
type pageRef struct {
	page  int32
	whole bool
}

// interval records the pages one owner modified in one interval, plus the
// owner's vector time when the interval closed. Lazily created diffs take
// their ordering timestamp from here: stamping them with the (later)
// flush-time clock would overstate their causal position and invert the
// application order of overlapping diffs.
type interval struct {
	pages []pageRef
	vc    []int32
}

// wireBytes estimates the write-notice payload for an interval record.
func (iv interval) wireBytes() int { return 8 + 4*len(iv.pages) }

// Node is one processor's DSM runtime state.
type Node struct {
	ID  int
	sys *System
	Mem *vm.Mem
	p   host.Proc

	vc         []int32          // vc[o]: latest interval of owner o known here
	know       [][]interval     // know[o][i]: interval i+1 of owner o
	applied    [][]int32        // applied[page][o]: o's latest interval reflected in the local copy
	pending    map[int][]notice // unapplied write notices per page
	dirty      map[int]bool     // pages writable in the current/open interval
	noTwin     map[int]bool     // dirty pages in WRITE_ALL mode
	diffs      map[int][]*storedDiff
	lastDiffed []int32 // per page: own modifications diffed up to this interval

	inflight []inflightFetch    // asynchronous fetches not yet completed
	mode     map[int]AccessType // deferred consistency action for async Validate
	wsync    []wsyncRequest     // Validate_w_sync registrations for the next sync

	grantInbox *grant      // lock grant stashed by a releaser before waking us
	depart     *departInfo // barrier departure staged by the master logic

	Stats ProtocolStats
}

// Proc returns the processor the node runs on.
func (nd *Node) Proc() host.Proc { return nd.p }

// Time returns the node's current virtual time.
func (nd *Node) Time() time.Duration { return nd.p.Now() }

// pagesOf expands regions to the set of overlapped page numbers, sorted.
func pagesOf(regions []shm.Region) []int {
	seen := map[int]bool{}
	var out []int
	for _, r := range regions {
		p0, p1 := r.Pages()
		for pg := p0; pg < p1; pg++ {
			if !seen[pg] {
				seen[pg] = true
				out = append(out, pg)
			}
		}
	}
	sort.Ints(out)
	return out
}
