// Package tmk implements a TreadMarks-style software distributed shared
// memory run-time with lazy release consistency, extended with the
// compiler interface the paper introduces (Section 3): Validate,
// Validate_w_sync, and Push, with synchronous and asynchronous data
// fetching.
//
// The base protocol follows the paper's description of TreadMarks:
//
//   - Lazy release consistency with vector timestamps and intervals; write
//     notices propagate at lock acquires and barrier departures and
//     invalidate pages.
//   - An invalidate, multiple-writer protocol: first writes twin the page;
//     diffs (word runs) are created lazily when modifications are
//     requested, and pages are re-protected at diff creation.
//   - Locks have a static home (id mod N) that forwards requests to the
//     last releaser; barriers are master-based.
//
// The augmented interface bypasses (Validate with READ/WRITE/READ&WRITE)
// or disables (WRITE_ALL/READ&WRITE_ALL) the page-based consistency
// machinery, aggregates diff fetches into one exchange per responder,
// piggybacks fetches on synchronization (Validate_w_sync, with broadcast
// detection at barriers), and replaces barriers by point-to-point data
// exchanges (Push). The adaptive protocol (EnableAdapt, package adapt)
// recovers the push benefit at run time for accesses the compiler cannot
// analyze, at section and sub-page granularity (DESIGN.md §6–§8).
//
// Three invariants are load-bearing for every feature that moves diffs,
// learned from lost updates the cross-backend stress tests found:
//
//   - Coverage ordering. Overlapping diffs of one page are ordered by
//     their creation-time applied coverage (storedDiff.covers /
//     wire.Diff.Covers), never by the closing interval's vector time —
//     a lazy multi-epoch flush closes long after concurrent fresher
//     diffs, so closing-time stamps lie (applyDiffs).
//
//   - Gap-free chains. A per-creator diff chain shipped to a receiver
//     must be contiguous with respect to the receiver's applied floor:
//     receivers prune write notices by applied coverage, so a diff whose
//     From lies beyond the floor advances the timestamp over content its
//     runs do not contain, silently dropping the gap (collectDiffs ships
//     full chains; usablePushed and applySpans check contiguity).
//
//   - One-pass application of overlaps. Overlapping diffs order
//     correctly only within a single applyDiffs pass; applying a partial
//     newer set now and an older overlapping diff later regresses
//     content. Piggybacked pages therefore apply complete-or-nothing
//     (usablePushed), and update spans take the fast path only when each
//     page applies cleanly.
//
// The adaptive layer adds a fourth: no negotiation. Every replicated
// decision (the barrier detector's bindings, the derived update exchange
// schedule) must be a pure function of globally relayed observations,
// identical at every node — a divergent replica deadlocks the
// send/receive pairing of the update exchange (package adapt).
package tmk

import (
	"fmt"
	"sort"
	"time"

	"sdsm/internal/adapt"
	"sdsm/internal/host"
	"sdsm/internal/model"
	"sdsm/internal/obs"
	"sdsm/internal/shm"
	"sdsm/internal/vm"
	"sdsm/internal/wire"
)

// AccessType is the access pattern the compiler declares in a Validate
// call (Section 3.1.1).
type AccessType int

// Access types. The first three preserve consistency; the last two disable
// it and require exact compiler analysis.
const (
	AccRead AccessType = iota
	AccWrite
	AccReadWrite
	AccWriteAll
	AccReadWriteAll
)

func (a AccessType) String() string {
	switch a {
	case AccRead:
		return "READ"
	case AccWrite:
		return "WRITE"
	case AccReadWrite:
		return "READ&WRITE"
	case AccWriteAll:
		return "WRITE_ALL"
	case AccReadWriteAll:
		return "READ&WRITE_ALL"
	}
	return fmt.Sprintf("AccessType(%d)", int(a))
}

// writes reports whether the access type enables writing.
func (a AccessType) writes() bool { return a != AccRead }

// noTwin reports whether the access type disables twinning/diffing.
func (a AccessType) noTwin() bool { return a == AccWriteAll || a == AccReadWriteAll }

// fetches reports whether the access type requires updating page contents.
func (a AccessType) fetches() bool { return a != AccWriteAll }

// ProtocolStats counts run-time events beyond the vm and network counters.
type ProtocolStats struct {
	LockAcquires  int64
	Barriers      int64
	Validates     int64
	Pushes        int64
	WSyncServes   int64 // diff messages sent in response to Validate_w_sync
	WSyncBcasts   int64 // of which broadcast
	DiffFetches   int64 // RPC exchanges performed to fetch diffs
	DiffsApplied  int64
	WordsApplied  int64
	Invalidations int64
	LockFetches   int64 // pages demand-fetched while holding a lock (lock faults)

	// Adaptive protocol counters (EnableAdapt). Promotions, splits, joins
	// and decays are machine-global detector transitions, reported once (at
	// node 0); updates, spans and pushed pages are counted at the producing
	// node.
	AdaptPromotions  int64 // pages switched invalidate → update (whole page)
	AdaptSplits      int64 // pages switched to sub-page split bindings
	AdaptJoins       int64 // of promotions: pages that joined an adjacent section early
	AdaptDecays      int64 // bound pages switched back to invalidate
	AdaptUpdates     int64 // update messages sent at barrier departures
	AdaptSpans       int64 // section spans shipped in update messages
	AdaptPagesPushed int64 // page push deliveries (one per page per consumer)

	// Lock-scope adaptive counters (EnableAdapt). Grants and pages are
	// counted at the releasing node; the detector transition counters are
	// machine-global (the per-lock detectors live with the lock control
	// state) and are folded in by System.Stats.
	AdaptLockGrants     int64 // grants that carried piggybacked diffs
	AdaptLockPagesPush  int64 // pages piggybacked (one per page per grant)
	AdaptLockPromotions int64 // hand-off edges bound to grant piggybacking
	AdaptLockDecays     int64 // bindings dropped on a broken pattern
	AdaptLockProbes     int64 // piggybacks withheld for a staleness re-probe
	AdaptLockStaleDrops int64 // bindings dropped because a re-probe went unread

	// Ownership-directory counters (directory.go). DiffServes is
	// maintained unconditionally — it is the serve-balance numerator the
	// scaling table reports; the Dir* counters and the relay accounting
	// only move in scale mode (EnableScale).
	DiffServes      int64 // diff requests answered with at least one diff payload
	DirRedirects    int64 // diff requests answered with a forwarding hint instead
	DirHops         int64 // forwarding hops followed while chasing redirects
	DirFallbacks    int64 // chases that exhausted and left pages to the Direct retry
	AdaptRelayBytes int64 // accounted bytes of the barrier fetch-list relay (master)
}

// System is one DSM machine: N nodes over a network sharing a page-based
// address space. The host backend decides how the nodes execute: the
// deterministic sim engine for the paper's virtual-time numbers, or the
// real-concurrency host for genuine hardware parallelism.
type System struct {
	H      host.Host
	NW     host.Transport
	Costs  model.Costs
	Layout *shm.Layout
	Nodes  []*Node

	locks    map[int]*lock
	barriers map[int]*barrier
	adaptCfg adapt.Config    // detector tuning; meaningful once EnableAdapt ran
	rec      *RecoveryConfig // checkpoint/restore; nil unless EnableRecovery ran
	trace    *obs.Machine    // observability; nil unless EnableTrace ran
	scale    bool            // ownership directory + relay compression; EnableScale

	// departScratch backs runBarrier's departure-time table. Barriers are
	// serialized by the protocol token, so one machine-wide buffer works.
	departScratch []time.Duration
}

// New builds a DSM system for every processor of h. All pages start
// unmapped, as after TreadMarks initialization; the first touch of an
// unwritten page faults once and validates it zero-filled locally,
// without communication.
func New(h host.Host, nw host.Transport, layout *shm.Layout) *System {
	return NewWarm(h, nw, layout, nil)
}

// NewWarm builds a machine whose node memories borrow storage from warm
// pool arenas — arenas[i] backs rank i; nil entries (or a nil slice, the
// New path) fall back to heap allocation. Arena-backed storage is zeroed
// on loan, so a warm machine's protocol behavior and results are
// bit-identical to a fresh one's; ReleaseWarm hands the storage back
// after the run.
func NewWarm(h host.Host, nw host.Transport, layout *shm.Layout, arenas []*vm.Arena) *System {
	s := &System{
		H:        h,
		NW:       nw,
		Costs:    nw.Costs(),
		Layout:   layout,
		locks:    map[int]*lock{},
		barriers: map[int]*barrier{},
	}
	n := h.N()
	for i := 0; i < n; i++ {
		nd := &Node{
			ID:      i,
			sys:     s,
			vc:      make([]int32, n),
			lastBar: make([]int32, n),
			know:    make([][]interval, n),
			dirty:   map[int]bool{},
			noTwin:  map[int]bool{},
			pending: map[int][]notice{},
			diffs:   map[int][]*storedDiff{},
			mode:    map[int]AccessType{},
		}
		// Bind the processor now, not at Run: protocol code may Hold or
		// Wake a peer whose body has not started yet (a first acquire of a
		// remotely homed lock on the concurrent backends).
		nd.p = h.Proc(i)
		var ar *vm.Arena
		if i < len(arenas) {
			ar = arenas[i]
		}
		nd.Mem = vm.NewWarm(i, layout.Words(), s.Costs, nd, ar)
		pages := nd.Mem.Pages()
		nd.applied = make([][]int32, pages)
		for pg := range nd.applied {
			nd.applied[pg] = make([]int32, n)
		}
		nd.lastDiffed = make([]int32, pages)
		// The serve body is prebuilt per node so the hot request path does
		// not allocate a closure per exchange; arguments and results pass
		// through the srv* fields (safe: serves hold the protocol token,
		// so at most one runs machine-wide).
		nd.srvFn = func() {
			pages := nd.pgScratch[:0]
			for _, pg := range nd.srvReq.Pages {
				pages = append(pages, int(pg))
			}
			nd.pgScratch = pages
			nd.srvOut, nd.srvRedir, nd.srvBytes = nd.serveDiffs(int(nd.srvReq.Req), pages, nd.srvReq.Applied, nd.srvReq.Direct)
		}
		s.Nodes = append(s.Nodes, nd)
	}
	nw.Serve(s.serve)
	return s
}

// serve is the transport's request handler: it runs at (or against, see
// host.Server) the target node and answers diff requests from the
// request's own wire payload — the requester's applied timestamps travel
// in the message, never through shared memory. p provides the compute
// exclusion for the in-process transports; socket transports hold the
// target's compute lock in their service loop.
func (s *System) serve(p host.Proc, at int, req any) (any, int) {
	r, ok := req.(wire.DiffRequest)
	if !ok {
		panic(fmt.Sprintf("tmk: unexpected request payload %T", req))
	}
	nd := s.Nodes[at]
	// Serves are serialized machine-wide (every caller holds the protocol
	// token), so the per-node argument/result slots cannot race; Hold
	// provides the exclusion — and the happens-before edge — against nd's
	// compute sections.
	nd.srvReq = r
	var svt time.Duration
	var swt int64
	if nd.tr != nil {
		svt, swt = nd.p.Now(), nd.tr.WallNow()
	}
	p.Hold(nd.p, nd.srvFn)
	out, redir, bytes := nd.srvOut, nd.srvRedir, nd.srvBytes
	if nd.tr != nil {
		nd.traceServe(int(r.Req), r.Pages, out, bytes, svt, swt)
	}
	nd.srvReq, nd.srvOut, nd.srvRedir = wire.DiffRequest{}, nil, nil
	return wire.DiffReply{Diffs: out, Redirects: redir}, bytes
}

// N returns the number of nodes.
func (s *System) N() int { return s.H.N() }

// Run executes body once per node. Nodes were bound to their processors
// at construction (New), so peers may Hold or Wake a node before its body
// starts.
func (s *System) Run(body func(nd *Node)) error {
	return s.H.Run(func(p host.Proc) {
		body(s.Nodes[p.ID()])
	})
}

// ReleaseWarm hands every node's warm-arena storage back to its pool
// slot: directory arrays first (they are arena loans too), then the
// Mem's data store, twins, and page freelist. Run CheckGuards on the
// arenas BEFORE calling this — release ends the loans the audit needs.
// A machine built without arenas ignores the call. The System must not
// be used afterwards.
func (s *System) ReleaseWarm() {
	for _, nd := range s.Nodes {
		ar := nd.Mem.Arena()
		if ar == nil {
			continue
		}
		if nd.dirOwner != nil {
			ar.RecycleInt32(nd.dirOwner)
			ar.RecycleInt32(nd.dirNext)
			nd.dirOwner, nd.dirNext = nil, nil
		}
		nd.Mem.Release()
		ar.ReleaseData()
	}
}

// Stats aggregates protocol statistics across nodes.
func (s *System) Stats() (vm.Counters, ProtocolStats) {
	var vc vm.Counters
	var ps ProtocolStats
	for _, nd := range s.Nodes {
		c := nd.Mem.Counters
		vc.ReadFaults += c.ReadFaults
		vc.WriteFaults += c.WriteFaults
		vc.ProtOps += c.ProtOps
		vc.Twins += c.Twins
		vc.Diffs += c.Diffs
		vc.DiffWords += c.DiffWords
		ps.LockAcquires += nd.Stats.LockAcquires
		ps.Barriers += nd.Stats.Barriers
		ps.Validates += nd.Stats.Validates
		ps.Pushes += nd.Stats.Pushes
		ps.WSyncServes += nd.Stats.WSyncServes
		ps.WSyncBcasts += nd.Stats.WSyncBcasts
		ps.DiffFetches += nd.Stats.DiffFetches
		ps.DiffsApplied += nd.Stats.DiffsApplied
		ps.WordsApplied += nd.Stats.WordsApplied
		ps.Invalidations += nd.Stats.Invalidations
		ps.LockFetches += nd.Stats.LockFetches
		ps.AdaptPromotions += nd.Stats.AdaptPromotions
		ps.AdaptSplits += nd.Stats.AdaptSplits
		ps.AdaptJoins += nd.Stats.AdaptJoins
		ps.AdaptDecays += nd.Stats.AdaptDecays
		ps.AdaptUpdates += nd.Stats.AdaptUpdates
		ps.AdaptSpans += nd.Stats.AdaptSpans
		ps.AdaptPagesPushed += nd.Stats.AdaptPagesPushed
		ps.AdaptLockGrants += nd.Stats.AdaptLockGrants
		ps.AdaptLockPagesPush += nd.Stats.AdaptLockPagesPush
		ps.DiffServes += nd.Stats.DiffServes
		ps.DirRedirects += nd.Stats.DirRedirects
		ps.DirHops += nd.Stats.DirHops
		ps.DirFallbacks += nd.Stats.DirFallbacks
		ps.AdaptRelayBytes += nd.Stats.AdaptRelayBytes
	}
	// The per-lock detectors are machine state (they live with the lock
	// control blocks, serialized like the holder and queue fields), so
	// their transition counters are summed here, not per node.
	for _, l := range s.locks {
		if l.det == nil {
			continue
		}
		st := l.det.Stats
		ps.AdaptLockPromotions += st.Promotions
		ps.AdaptLockDecays += st.Decays
		ps.AdaptLockProbes += st.Probes
		ps.AdaptLockStaleDrops += st.StaleDrops
	}
	return vc, ps
}

// MaxTime returns the largest node clock, the parallel execution time.
func (s *System) MaxTime() time.Duration {
	var t time.Duration
	for i := 0; i < s.N(); i++ {
		if c := s.H.Proc(i).Now(); c > t {
			t = c
		}
	}
	return t
}

// notice is a write notice: owner wrote page in its interval idx. whole
// marks intervals that overwrote the entire page without twinning
// (WRITE_ALL), which lets a fetch from the latest such writer subsume
// older modifications.
type notice struct {
	owner int
	idx   int32
	whole bool
}

// interval records the pages one owner modified in one interval (as wire
// page references — page number, whole-page overwrite flag, and the
// declared write extent from the vm's EnsureWrite bookkeeping), plus the
// owner's vector time when the interval closed. Lazily created diffs take
// their ordering timestamp from here: stamping them with the (later)
// flush-time clock would overstate their causal position and invert the
// application order of overlapping diffs.
//
// An interval record is immutable once closed. That is what lets the wire
// conversions below alias its slices instead of copying them: every
// holder — the creator, the transport, any number of receivers — reads
// the same frozen arrays. (The historical contract was stronger, "nothing
// handed to the transport aliases protocol state"; it is deliberately
// weakened to "nothing mutates an interval after close" because the copy
// per send dominated the steady-state allocation profile.)
type interval struct {
	pages []wire.PageRef
	vc    []int32
	// split marks a mid-epoch serve-path split (splitInterval): its
	// position in the chain is schedule-dependent, so the ownership
	// directory's replicated reset skips it (resetDirectory).
	split bool
}

// toWire converts an interval record to its wire value, aliasing its
// slices (see the type comment for why that is sound).
func (iv interval) toWire() wire.Interval {
	return wire.Interval{Pages: iv.pages, VC: iv.vc, Split: iv.split}
}

// intervalFromWire converts a received interval record, aliasing the wire
// value's slices: a decoded frame owns its storage, and on the in-process
// backends the shared arrays are immutable.
func intervalFromWire(w wire.Interval) interval {
	return interval{pages: w.Pages, vc: w.VC, split: w.Split}
}

// intervalsSince collects, as write notices, every interval this node
// knows beyond base, sorted by (owner, index) — what a barrier arrival
// message carries (base = the vector time at the last barrier departure,
// which every node shares, so the master deduplicates what lock transfers
// already taught it).
// The result lives in the node's ivScratch: it is valid until this node's
// next arrival (the master consumes it while the arrivers wait).
func (nd *Node) intervalsSince(base []int32) []wire.OwnedInterval {
	out := nd.ivScratch[:0]
	for o := range nd.vc {
		for idx := base[o] + 1; idx <= nd.vc[o]; idx++ {
			out = append(out, wire.OwnedInterval{
				Owner: int32(o), Idx: idx, IV: nd.know[o][idx-1].toWire(),
			})
		}
	}
	nd.ivScratch = out
	return out
}

// syncInfo snapshots what an acquirer presents at a synchronization
// operation: its vector time and its pending Validate_w_sync needs, with
// the per-page applied timestamps the responders filter against. The
// presented vector time lives in the node's vcScratch: every consumer (a
// grant builder, the barrier master) finishes with it before this node
// can reach its next synchronization operation.
func (nd *Node) syncInfo() wire.SyncInfo {
	if nd.vcScratch == nil {
		nd.vcScratch = make([]int32, len(nd.vc))
	}
	copy(nd.vcScratch, nd.vc)
	info := wire.SyncInfo{VC: nd.vcScratch}
	for _, ws := range nd.wsync {
		need := wire.WSyncNeed{
			Pages:   make([]int32, len(ws.pages)),
			Applied: make([][]int32, len(ws.pages)),
		}
		for i, pg := range ws.pages {
			need.Pages[i] = int32(pg)
			need.Applied[i] = append([]int32(nil), nd.applied[pg]...)
		}
		info.Needs = append(info.Needs, need)
	}
	return info
}

// Node is one processor's DSM runtime state.
type Node struct {
	ID  int
	sys *System
	Mem *vm.Mem
	p   host.Proc

	vc         []int32          // vc[o]: latest interval of owner o known here
	lastBar    []int32          // vc at the last barrier departure (arrival deltas)
	know       [][]interval     // know[o][i]: interval i+1 of owner o
	applied    [][]int32        // applied[page][o]: o's latest interval reflected in the local copy
	pending    map[int][]notice // unapplied write notices per page
	dirty      map[int]bool     // pages writable in the current/open interval
	noTwin     map[int]bool     // dirty pages in WRITE_ALL mode
	diffs      map[int][]*storedDiff
	lastDiffed []int32 // per page: own modifications diffed up to this interval

	// Ownership directory (directory.go); nil unless EnableScale ran.
	// dirOwner[pg] is this node's probable-owner hint, dirNext[pg] the
	// node it last delegated pg's chain to (-1 for none in both).
	dirOwner []int32
	dirNext  []int32

	inflight []inflightFetch    // asynchronous fetches not yet completed
	mode     map[int]AccessType // deferred consistency action for async Validate
	wsync    []wsyncRequest     // Validate_w_sync registrations for the next sync
	ad       *adaptNode         // adaptive protocol state; nil unless EnableAdapt
	held     []heldLock         // locks currently held, innermost last
	tr       *obs.NodeTracer    // event ring; nil unless EnableTrace (trace.go)

	// Recovery bookkeeping (recovery.go); recTouched is nil unless
	// EnableRecovery ran. recLast is the vector clock of this node's
	// previous record (nil before the first), recTouched the pages a
	// diff was applied to since, recEpoch the record counter.
	recLast    []int32
	recTouched map[int]bool
	recEpoch   int32
	RecStats   RecoveryStats

	respScratch [1]int        // responderFor's single-responder result slot
	sortScratch []*storedDiff // applyDiffs' reusable sort buffer
	cdScratch   []*storedDiff // collectDiffs' candidate buffer

	// Prebuilt serve body with its argument/result slots; serves hold the
	// protocol token, so the slots cannot race (see System.serve).
	srvFn     func()
	srvReq    wire.DiffRequest
	srvOut    []wire.Diff
	srvRedir  []wire.PageOwner
	srvBytes  int
	ifSpare   []inflightFetch // completeInflight's double buffer
	pdScratch []*host.Pending // completeInflight's await list
	dfScratch []wire.Diff     // completeInflight's merged-reply buffer

	// Epoch-lifetime scratch: each slice is rebuilt at one synchronization
	// operation and fully consumed before this node's next one (the
	// consumer runs while this node is blocked or holding the protocol
	// token), so one buffer per node suffices. vcScratch backs syncInfo's
	// presented vector time, ivScratch the barrier arrival's interval
	// delta, depScratch the departure the master builds for this node,
	// pgScratch the page list of a diff request served at this node.
	vcScratch  []int32
	ivScratch  []wire.OwnedInterval
	depScratch []wire.OwnedInterval
	pgScratch  []int

	Stats ProtocolStats
}

// heldLock is one held lock on a node's stack: its id and, when the
// adaptive protocol is on, the pages demand-fetched while holding it (the
// critical-section working set the per-lock detector observes).
type heldLock struct {
	id      int
	fetched map[int]bool // nil unless EnableAdapt
}

// pushHeld records a lock acquisition on the held stack.
func (nd *Node) pushHeld(id int) {
	h := heldLock{id: id}
	if nd.ad != nil {
		h.fetched = map[int]bool{}
	}
	nd.held = append(nd.held, h)
}

// popHeld removes the topmost held entry for id and returns the sorted
// page set fetched while it was held (nil when adaptation is off or
// nothing was fetched).
func (nd *Node) popHeld(id int) []int {
	for i := len(nd.held) - 1; i >= 0; i-- {
		if nd.held[i].id != id {
			continue
		}
		h := nd.held[i]
		nd.held = append(nd.held[:i], nd.held[i+1:]...)
		if len(h.fetched) == 0 {
			return nil
		}
		out := make([]int, 0, len(h.fetched))
		for pg := range h.fetched {
			out = append(out, pg)
		}
		sort.Ints(out)
		return out
	}
	return nil
}

// Proc returns the processor the node runs on.
func (nd *Node) Proc() host.Proc { return nd.p }

// Time returns the node's current virtual time.
func (nd *Node) Time() time.Duration { return nd.p.Now() }

// pagesOf expands regions to the set of overlapped page numbers, sorted.
func pagesOf(regions []shm.Region) []int {
	seen := map[int]bool{}
	var out []int
	for _, r := range regions {
		p0, p1 := r.Pages()
		for pg := p0; pg < p1; pg++ {
			if !seen[pg] {
				seen[pg] = true
				out = append(out, pg)
			}
		}
	}
	sort.Ints(out)
	return out
}
