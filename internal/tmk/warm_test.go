package tmk

import (
	"testing"

	"sdsm/internal/cluster"
	"sdsm/internal/model"
	"sdsm/internal/shm"
	"sdsm/internal/sim"
	"sdsm/internal/vm"
	"sdsm/internal/wire"
)

// warmScaleSystem builds an n-node scale-mode machine whose node
// memories borrow from the given arenas.
func warmScaleSystem(n int, arenas []*vm.Arena) *System {
	h := sim.NewEngine(n)
	nw := cluster.New(h, model.SP2())
	layout := shm.NewLayout()
	layout.Alloc("a", 4*shm.PageWords)
	sys := NewWarm(h, nw, layout, arenas)
	sys.EnableScale()
	return sys
}

// TestWarmEnableScaleReinit is the rank-subset regression test at the
// protocol layer: a warm pool slot's recycled directory arrays arrive
// with a previous (possibly wider) job's owner hints still in them, and
// EnableScale must re-initialize every entry to -1 — a hint naming a
// rank outside the new job's set would otherwise route the first
// epoch's fetches to a node that does not exist. The arenas here are
// poisoned with rank 113 before the 2-node machine is built; any entry
// that survives is an inherited stale hint.
func TestWarmEnableScaleReinit(t *testing.T) {
	const poisoned = 113
	arenas := []*vm.Arena{vm.NewArena(), vm.NewArena()}
	for _, ar := range arenas {
		for i := 0; i < 2; i++ {
			s := ar.TakeInt32(4)
			for k := range s {
				s[k] = poisoned
			}
			ar.RecycleInt32(s)
		}
	}
	sys := warmScaleSystem(2, arenas)
	for _, nd := range sys.Nodes {
		reused := nd.Mem.Arena() != nil
		if !reused {
			t.Fatalf("node %d: memory is not arena-backed", nd.ID)
		}
		for pg := 0; pg < nd.Mem.Pages(); pg++ {
			if got := nd.OwnerHint(pg); got != -1 {
				t.Errorf("node %d page %d: dirOwner %d after EnableScale, want -1 (stale hint inherited)", nd.ID, pg, got)
			}
			if got := nd.dirNext[pg]; got != -1 {
				t.Errorf("node %d page %d: dirNext %d after EnableScale, want -1 (stale delegation inherited)", nd.ID, pg, got)
			}
		}
	}
	sys.ReleaseWarm()
	for i, ar := range arenas {
		if ar.Loans() != 0 {
			t.Errorf("arena %d: %d loans outstanding after ReleaseWarm", i, ar.Loans())
		}
	}
}

// TestChaseGuardOutOfRange pins the fetch router's defense in depth: a
// forwarding hint naming a rank outside the machine must be dropped to
// the Direct fallback, not turned into a request. The guard is
// exercised directly — redirect lists are wire values, so a corrupt or
// stale hint can arrive regardless of how well EnableScale scrubs local
// state.
func TestChaseGuardOutOfRange(t *testing.T) {
	arenas := []*vm.Arena{vm.NewArena(), vm.NewArena()}
	sys := warmScaleSystem(2, arenas)
	nd := sys.Nodes[0]
	// A pending notice for page 1 makes the chase consider it; the hint
	// names rank 99. The guard must skip it without issuing a request —
	// if it tried, the transport would be asked for a node the host does
	// not have and the test would die rather than fail gracefully.
	nd.pending[1] = []notice{{owner: 1, idx: 1}}
	before := nd.Stats.DirFallbacks
	nd.chaseRedirects([]wire.PageOwner{{Page: 1, Owner: 99}})
	if nd.Stats.DirFallbacks != before+1 {
		t.Errorf("out-of-range redirect: DirFallbacks %d, want %d (hint should fall back, not route)",
			nd.Stats.DirFallbacks, before+1)
	}
	sys.ReleaseWarm()
}
