// Package mp is the hand-coded message-passing programming layer, the
// stand-in for the PVMe versions the paper compares against (and, with a
// per-phase distribution overhead, for the Forge XHPF compiler-generated
// versions). Programs written against it own their data as private slices
// and communicate explicitly over the simulated network, paying the same
// message costs as the DSM runtime but none of its consistency machinery.
package mp

import (
	"fmt"
	"time"

	"sdsm/internal/cluster"
	"sdsm/internal/host"
	"sdsm/internal/model"
	"sdsm/internal/shm"
	"sdsm/internal/sim"
)

// World is one message-passing machine.
type World struct {
	H  host.Host
	NW host.Transport
}

// NewWorld creates an n-rank world over the SP/2 cost model on the
// deterministic sim engine.
func NewWorld(n int, costs model.Costs) *World {
	return NewWorldOn(sim.NewEngine(n), costs)
}

// NewWorldOn creates a world over an existing host backend.
func NewWorldOn(h host.Host, costs model.Costs) *World {
	return &World{H: h, NW: cluster.New(h, costs)}
}

// Run executes body once per rank.
func (w *World) Run(body func(r *Rank)) error {
	return w.H.Run(func(p host.Proc) {
		body(&Rank{w: w, ID: p.ID(), N: w.H.N(), p: p})
	})
}

// MaxTime returns the parallel execution time.
func (w *World) MaxTime() time.Duration {
	var t time.Duration
	for i := 0; i < w.H.N(); i++ {
		if c := w.H.Proc(i).Now(); c > t {
			t = c
		}
	}
	return t
}

// Rank is one message-passing process. Rank data is private to the rank
// (plain Go slices), so only the communication methods — which bracket
// protocol sections themselves — touch shared state; compute between them
// runs in parallel on the real-concurrency host.
type Rank struct {
	w     *World
	ID    int
	N     int
	p     host.Proc
	scale int
}

// SetCostScale sets the compute-cost multiplier (the cscale parameter of
// scaled-down data sets); fixed overheads use AdvanceFixed.
func (r *Rank) SetCostScale(s int) {
	if s < 1 {
		s = 1
	}
	r.scale = s
}

const (
	tagData cluster.Tag = iota + 1
	tagBarrier
	tagReduce
)

// Advance charges compute time, scaled by the cost multiplier.
func (r *Rank) Advance(d time.Duration) {
	if r.scale > 1 {
		d *= time.Duration(r.scale)
	}
	r.p.Advance(d)
}

// AdvanceFixed charges unscaled time (per-phase overheads).
func (r *Rank) AdvanceFixed(d time.Duration) { r.p.Advance(d) }

// Now returns the rank's virtual time.
func (r *Rank) Now() time.Duration { return r.p.Now() }

// Send transmits a copy of data to rank `to`.
func (r *Rank) Send(to int, data []float64) {
	r.p.Begin()
	defer r.p.End()
	r.w.NW.Send(r.p, to, tagData, append([]float64(nil), data...), len(data)*shm.WordBytes)
}

// Recv receives the next data message from rank `from`.
func (r *Rank) Recv(from int) []float64 {
	r.p.Begin()
	defer r.p.End()
	m := r.w.NW.Recv(r.p, from, tagData)
	return m.Payload.([]float64)
}

// Bcast broadcasts data from root; every rank returns the payload.
func (r *Rank) Bcast(root int, data []float64) []float64 {
	if r.N == 1 {
		return data
	}
	r.p.Begin()
	defer r.p.End()
	if r.ID == root {
		tos := make([]int, 0, r.N-1)
		for i := 0; i < r.N; i++ {
			if i != root {
				tos = append(tos, i)
			}
		}
		r.w.NW.SendShared(r.p, tos, tagData, append([]float64(nil), data...), len(data)*shm.WordBytes)
		return data
	}
	m := r.w.NW.Recv(r.p, root, tagData)
	return m.Payload.([]float64)
}

// Barrier synchronizes all ranks (gather/scatter at rank 0).
func (r *Rank) Barrier() {
	if r.N == 1 {
		return
	}
	r.p.Begin()
	defer r.p.End()
	if r.ID == 0 {
		for i := 1; i < r.N; i++ {
			r.w.NW.Recv(r.p, cluster.AnySender, tagBarrier)
		}
		r.w.NW.Broadcast(r.p, tagBarrier, nil, 0)
		return
	}
	r.w.NW.Send(r.p, 0, tagBarrier, nil, 0)
	r.w.NW.Recv(r.p, 0, tagBarrier)
}

// AllReduceSum sums a vector across all ranks (gather at 0, broadcast).
func (r *Rank) AllReduceSum(data []float64) []float64 {
	if r.N == 1 {
		return data
	}
	r.p.Begin()
	defer r.p.End()
	if r.ID == 0 {
		acc := append([]float64(nil), data...)
		for i := 1; i < r.N; i++ {
			m := r.w.NW.Recv(r.p, cluster.AnySender, tagReduce)
			for j, v := range m.Payload.([]float64) {
				acc[j] += v
			}
		}
		tos := make([]int, r.N-1)
		for i := 1; i < r.N; i++ {
			tos[i-1] = i
		}
		r.w.NW.SendShared(r.p, tos, tagReduce, acc, len(acc)*shm.WordBytes)
		return acc
	}
	r.w.NW.Send(r.p, 0, tagReduce, append([]float64(nil), data...), len(data)*shm.WordBytes)
	m := r.w.NW.Recv(r.p, 0, tagReduce)
	return m.Payload.([]float64)
}

// Gather collects per-rank slices at root; root receives them indexed by
// rank (its own entry is data). Non-roots return nil.
func (r *Rank) Gather(root int, data []float64) [][]float64 {
	if r.N == 1 {
		return [][]float64{data}
	}
	r.p.Begin()
	defer r.p.End()
	if r.ID != root {
		r.w.NW.Send(r.p, root, tagData, append([]float64(nil), data...), len(data)*shm.WordBytes)
		return nil
	}
	out := make([][]float64, r.N)
	out[root] = data
	for i := 0; i < r.N; i++ {
		if i == root {
			continue
		}
		m := r.w.NW.Recv(r.p, i, tagData)
		out[i] = m.Payload.([]float64)
	}
	return out
}

func (r *Rank) String() string { return fmt.Sprintf("rank %d/%d", r.ID, r.N) }
