package mp

import (
	"testing"
	"time"

	"sdsm/internal/host"
	"sdsm/internal/model"
)

func TestSendRecvRoundRobin(t *testing.T) {
	w := NewWorld(4, model.SP2())
	err := w.Run(func(r *Rank) {
		next := (r.ID + 1) % r.N
		prev := (r.ID - 1 + r.N) % r.N
		r.Send(next, []float64{float64(r.ID)})
		got := r.Recv(prev)
		if got[0] != float64(prev) {
			t.Errorf("rank %d got %v from %d", r.ID, got[0], prev)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	w := NewWorld(5, model.SP2())
	err := w.Run(func(r *Rank) {
		data := []float64{0}
		if r.ID == 2 {
			data[0] = 42
		}
		out := r.Bcast(2, data)
		if out[0] != 42 {
			t.Errorf("rank %d: bcast value %v", r.ID, out[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdersPhases(t *testing.T) {
	w := NewWorld(4, model.SP2())
	var after [4]time.Duration
	var latest time.Duration
	err := w.Run(func(r *Rank) {
		r.Advance(time.Duration(r.ID+1) * time.Millisecond)
		if t := r.Now(); t > latest {
			latest = t
		}
		r.Barrier()
		after[r.ID] = r.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, at := range after {
		if at < 4*time.Millisecond {
			t.Errorf("rank %d left the barrier at %v, before the slowest arrival", i, at)
		}
	}
}

func TestAllReduceSum(t *testing.T) {
	w := NewWorld(4, model.SP2())
	err := w.Run(func(r *Rank) {
		out := r.AllReduceSum([]float64{float64(r.ID + 1), 1})
		if out[0] != 10 || out[1] != 4 {
			t.Errorf("rank %d: allreduce = %v", r.ID, out)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	w := NewWorld(3, model.SP2())
	err := w.Run(func(r *Rank) {
		parts := r.Gather(0, []float64{float64(r.ID * 10)})
		if r.ID != 0 {
			if parts != nil {
				t.Errorf("non-root got parts")
			}
			return
		}
		for i, p := range parts {
			if p[0] != float64(i*10) {
				t.Errorf("part %d = %v", i, p[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCostScale(t *testing.T) {
	w := NewWorld(1, model.SP2())
	err := w.Run(func(r *Rank) {
		r.SetCostScale(4)
		r.Advance(time.Millisecond)
		r.AdvanceFixed(time.Millisecond)
		if r.Now() != 5*time.Millisecond {
			t.Errorf("scaled time = %v, want 5ms", r.Now())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleRankCollectivesNoMessages(t *testing.T) {
	w := NewWorld(1, model.SP2())
	err := w.Run(func(r *Rank) {
		r.Barrier()
		r.Bcast(0, []float64{1})
		r.AllReduceSum([]float64{1})
		r.Gather(0, []float64{1})
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.NW.Stats().Msgs != 0 {
		t.Fatalf("single rank sent %d messages", w.NW.Stats().Msgs)
	}
}

// TestRealHostWorld runs the message-passing layer on the
// real-concurrency backend: ranks are goroutines, communication methods
// bracket protocol sections themselves, and rank data stays private, so
// the same programs run unmodified.
func TestRealHostWorld(t *testing.T) {
	w := NewWorldOn(host.NewReal(4), model.SP2())
	err := w.Run(func(r *Rank) {
		next := (r.ID + 1) % r.N
		prev := (r.ID - 1 + r.N) % r.N
		r.Send(next, []float64{float64(r.ID)})
		got := r.Recv(prev)
		if got[0] != float64(prev) {
			t.Errorf("rank %d got %v from %d", r.ID, got[0], prev)
		}
		r.Barrier()
		sum := r.AllReduceSum([]float64{1})
		if sum[0] != 4 {
			t.Errorf("rank %d: reduce sum %v, want 4", r.ID, sum[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
