// Package rsd implements regular section descriptors (RSDs) in the style of
// Havlak and Kennedy's bounded regular section analysis, the representation
// the paper's compiler uses to summarize shared-array accesses between
// synchronization points (Section 4.1).
//
// A section bounds each array dimension with affine expressions over
// symbolic parameters (array extents, per-processor partition bounds, the
// processor id) plus a constant stride. Sections support the operations the
// paper's analysis needs: union (dimension-wise bounding box), symbolic
// comparison, evaluation against a concrete environment, intersection of
// concrete sections (used by Push at run time), and conversion to address
// regions for the run-time interface.
package rsd

import (
	"fmt"
	"sort"
	"strings"
)

// Sym is a symbolic variable appearing in affine bounds: array extents
// ("m", "n"), partition bounds ("begin", "end"), the processor id ("p"),
// the processor count ("nprocs"), or loop induction variables.
type Sym string

// Env assigns values to symbols for evaluation.
type Env map[Sym]int

// Lin is an affine expression: C + Σ T[s]·s.
type Lin struct {
	C int
	T map[Sym]int
}

// Const returns a constant expression.
func Const(c int) Lin { return Lin{C: c} }

// Var returns the expression 1·s.
func Var(s Sym) Lin { return Lin{T: map[Sym]int{s: 1}} }

// Term returns the expression k·s.
func Term(k int, s Sym) Lin {
	if k == 0 {
		return Lin{}
	}
	return Lin{T: map[Sym]int{s: k}}
}

// Add returns l + o.
func (l Lin) Add(o Lin) Lin {
	out := Lin{C: l.C + o.C, T: map[Sym]int{}}
	for s, k := range l.T {
		out.T[s] += k
	}
	for s, k := range o.T {
		out.T[s] += k
	}
	for s, k := range out.T {
		if k == 0 {
			delete(out.T, s)
		}
	}
	if len(out.T) == 0 {
		out.T = nil
	}
	return out
}

// Sub returns l - o.
func (l Lin) Sub(o Lin) Lin { return l.Add(o.Scale(-1)) }

// Scale returns k·l.
func (l Lin) Scale(k int) Lin {
	out := Lin{C: l.C * k}
	if k != 0 && len(l.T) > 0 {
		out.T = map[Sym]int{}
		for s, c := range l.T {
			out.T[s] = c * k
		}
	}
	return out
}

// Plus returns l + c.
func (l Lin) Plus(c int) Lin { return l.Add(Const(c)) }

// IsConst reports whether l is constant and returns its value.
func (l Lin) IsConst() (int, bool) {
	if len(l.T) == 0 {
		return l.C, true
	}
	return 0, false
}

// Equal reports structural equality.
func (l Lin) Equal(o Lin) bool {
	d := l.Sub(o)
	c, ok := d.IsConst()
	return ok && c == 0
}

// DiffConst returns l - o when the difference is a known constant.
func (l Lin) DiffConst(o Lin) (int, bool) {
	return l.Sub(o).IsConst()
}

// Eval computes the value of l under env, panicking on unbound symbols.
func (l Lin) Eval(env Env) int {
	v := l.C
	for s, k := range l.T {
		val, ok := env[s]
		if !ok {
			panic(fmt.Sprintf("rsd: unbound symbol %q", s))
		}
		v += k * val
	}
	return v
}

// FreeSyms returns the symbols appearing in l, sorted.
func (l Lin) FreeSyms() []Sym {
	var out []Sym
	for s := range l.T {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Subst replaces symbol s with expression e in l.
func (l Lin) Subst(s Sym, e Lin) Lin {
	k, ok := l.T[s]
	if !ok {
		return l
	}
	rest := Lin{C: l.C, T: map[Sym]int{}}
	for t, c := range l.T {
		if t != s {
			rest.T[t] = c
		}
	}
	return rest.Add(e.Scale(k))
}

func (l Lin) String() string {
	var parts []string
	for _, s := range l.FreeSyms() {
		k := l.T[s]
		switch k {
		case 1:
			parts = append(parts, string(s))
		case -1:
			parts = append(parts, "-"+string(s))
		default:
			parts = append(parts, fmt.Sprintf("%d%s", k, s))
		}
	}
	if l.C != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", l.C))
	}
	out := strings.Join(parts, "+")
	return strings.ReplaceAll(out, "+-", "-")
}
