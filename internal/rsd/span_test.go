package rsd

import (
	"reflect"
	"testing"
)

func TestCoalesceContiguity(t *testing.T) {
	cases := []struct {
		name  string
		pages []int
		want  []Span
	}{
		{"empty", nil, nil},
		{"single", []int{7}, []Span{{7, 8}}},
		{"one run", []int{3, 4, 5}, []Span{{3, 6}}},
		{"gap splits", []int{3, 4, 6, 7}, []Span{{3, 5}, {6, 8}}},
		{"all isolated", []int{1, 3, 5}, []Span{{1, 2}, {3, 4}, {5, 6}}},
	}
	for _, c := range cases {
		if got := Coalesce(c.pages, nil); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: Coalesce(%v) = %v, want %v", c.name, c.pages, got, c.want)
		}
	}
}

// TestCoalesceKeySplits pins the binding rule the adaptive section
// clustering relies on: adjacent pages bound to different consumers (or
// producers) must not merge into one span, even though they are
// contiguous — a span pushed whole would deliver one consumer's pages to
// another.
func TestCoalesceKeySplits(t *testing.T) {
	owner := map[int]string{10: "a", 11: "a", 12: "b", 13: "b", 14: "a"}
	same := func(a, b int) bool { return owner[a] == owner[b] }
	got := Coalesce([]int{10, 11, 12, 13, 14}, same)
	want := []Span{{10, 12}, {12, 14}, {14, 15}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Coalesce with key = %v, want %v", got, want)
	}
}

func TestCoalescePanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Coalesce accepted an unsorted page list")
		}
	}()
	Coalesce([]int{5, 4}, nil)
}

// TestSpanPageListRoundTrip is the lossless-compression property behind
// the wire codec's version-7 relay encoding: for every sorted,
// duplicate-free page list — sparse, dense, or adjacent-run-structured —
// PageList(SpansOfSorted(ps)) == ps. Randomized over a deterministic
// generator so sim/real/net see the same cases.
func TestSpanPageListRoundTrip(t *testing.T) {
	rng := uint64(0x9E3779B97F4A7C15)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	for trial := 0; trial < 500; trial++ {
		// Mix regimes: sparse isolated pages, dense blocks, and mixed
		// adjacent runs, over a small universe so adjacency is common.
		var pages []int32
		p := 0
		for len(pages) < next(40)+1 {
			switch next(3) {
			case 0: // isolated page
				p += 2 + next(10)
				pages = append(pages, int32(p))
			case 1: // short run
				p += 2 + next(5)
				for k := 0; k <= next(4); k++ {
					pages = append(pages, int32(p))
					p++
				}
			case 2: // long dense block
				p += 2
				for k := 0; k <= 8+next(8); k++ {
					pages = append(pages, int32(p))
					p++
				}
			}
		}
		spans := SpansOfSorted(pages)
		for i, s := range spans {
			if s.Hi <= s.Lo {
				t.Fatalf("trial %d: empty span %v", trial, s)
			}
			if i > 0 && s.Lo <= spans[i-1].Hi {
				t.Fatalf("trial %d: spans %v and %v not separated", trial, spans[i-1], s)
			}
		}
		back := PageList(spans)
		if !reflect.DeepEqual(back, pages) {
			t.Fatalf("trial %d: round trip %v -> %v -> %v", trial, pages, spans, back)
		}
	}
	if PageList(SpansOfSorted(nil)) != nil {
		t.Fatal("nil list must round-trip to nil")
	}
}

func TestSpansOfSortedPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SpansOfSorted accepted an unsorted page list")
		}
	}()
	SpansOfSorted([]int32{5, 5})
}

func TestSpanHelpers(t *testing.T) {
	s := Span{Lo: 2, Hi: 5}
	if s.Pages() != 3 {
		t.Errorf("Pages() = %d, want 3", s.Pages())
	}
	if !s.Contains(2) || !s.Contains(4) || s.Contains(5) || s.Contains(1) {
		t.Errorf("Contains misbehaves on %v", s)
	}
	if s.String() != "[2,5)" {
		t.Errorf("String() = %q", s.String())
	}
}
