package rsd

import (
	"reflect"
	"testing"
)

func TestCoalesceContiguity(t *testing.T) {
	cases := []struct {
		name  string
		pages []int
		want  []Span
	}{
		{"empty", nil, nil},
		{"single", []int{7}, []Span{{7, 8}}},
		{"one run", []int{3, 4, 5}, []Span{{3, 6}}},
		{"gap splits", []int{3, 4, 6, 7}, []Span{{3, 5}, {6, 8}}},
		{"all isolated", []int{1, 3, 5}, []Span{{1, 2}, {3, 4}, {5, 6}}},
	}
	for _, c := range cases {
		if got := Coalesce(c.pages, nil); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: Coalesce(%v) = %v, want %v", c.name, c.pages, got, c.want)
		}
	}
}

// TestCoalesceKeySplits pins the binding rule the adaptive section
// clustering relies on: adjacent pages bound to different consumers (or
// producers) must not merge into one span, even though they are
// contiguous — a span pushed whole would deliver one consumer's pages to
// another.
func TestCoalesceKeySplits(t *testing.T) {
	owner := map[int]string{10: "a", 11: "a", 12: "b", 13: "b", 14: "a"}
	same := func(a, b int) bool { return owner[a] == owner[b] }
	got := Coalesce([]int{10, 11, 12, 13, 14}, same)
	want := []Span{{10, 12}, {12, 14}, {14, 15}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Coalesce with key = %v, want %v", got, want)
	}
}

func TestCoalescePanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Coalesce accepted an unsorted page list")
		}
	}()
	Coalesce([]int{5, 4}, nil)
}

func TestSpanHelpers(t *testing.T) {
	s := Span{Lo: 2, Hi: 5}
	if s.Pages() != 3 {
		t.Errorf("Pages() = %d, want 3", s.Pages())
	}
	if !s.Contains(2) || !s.Contains(4) || s.Contains(5) || s.Contains(1) {
		t.Errorf("Contains misbehaves on %v", s)
	}
	if s.String() != "[2,5)" {
		t.Errorf("String() = %q", s.String())
	}
}
