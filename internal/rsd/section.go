package rsd

import (
	"fmt"
	"strings"

	"sdsm/internal/shm"
)

// Tag records how a section is accessed within a region of code
// (Section 4.1 of the paper).
type Tag uint8

// Tag bits.
const (
	Read Tag = 1 << iota
	Write
	// WriteFirst marks sections whose every read is preceded by a write in
	// the same region; {Write, WriteFirst} sections qualify for WRITE_ALL.
	WriteFirst
)

func (t Tag) Has(bit Tag) bool { return t&bit != 0 }

func (t Tag) String() string {
	var parts []string
	if t.Has(Read) {
		parts = append(parts, "read")
	}
	if t.Has(Write) {
		parts = append(parts, "write")
	}
	if t.Has(WriteFirst) {
		parts = append(parts, "write-first")
	}
	if len(parts) == 0 {
		return "{}"
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Bound describes one dimension of a section: lo..hi with a constant
// stride (1 = dense).
type Bound struct {
	Lo, Hi Lin
	Stride int
}

// Dense returns a stride-1 bound.
func Dense(lo, hi Lin) Bound { return Bound{Lo: lo, Hi: hi, Stride: 1} }

func (b Bound) String() string {
	if b.Stride == 1 {
		return fmt.Sprintf("%v:%v", b.Lo, b.Hi)
	}
	return fmt.Sprintf("%v:%v:%d", b.Lo, b.Hi, b.Stride)
}

// Section is a regular section descriptor over a named array.
type Section struct {
	Array string
	Dims  []Bound
}

func (s Section) String() string {
	var ds []string
	for _, d := range s.Dims {
		ds = append(ds, d.String())
	}
	return fmt.Sprintf("%s[%s]", s.Array, strings.Join(ds, ", "))
}

// Equal reports whether two sections are symbolically identical.
func (s Section) Equal(o Section) bool {
	if s.Array != o.Array || len(s.Dims) != len(o.Dims) {
		return false
	}
	for i := range s.Dims {
		if s.Dims[i].Stride != o.Dims[i].Stride ||
			!s.Dims[i].Lo.Equal(o.Dims[i].Lo) || !s.Dims[i].Hi.Equal(o.Dims[i].Hi) {
			return false
		}
	}
	return true
}

// Union returns the dimension-wise bounding box of s and o, which is how
// regular section analysis merges accesses. The second result is false
// when the union cannot be represented (different arrays or strides, or
// bounds whose order cannot be decided symbolically).
func (s Section) Union(o Section) (Section, bool) {
	if s.Array != o.Array || len(s.Dims) != len(o.Dims) {
		return Section{}, false
	}
	out := Section{Array: s.Array, Dims: make([]Bound, len(s.Dims))}
	for i := range s.Dims {
		a, b := s.Dims[i], o.Dims[i]
		if a.Stride != b.Stride {
			return Section{}, false
		}
		lo, ok := symMin(a.Lo, b.Lo)
		if !ok {
			return Section{}, false
		}
		hi, ok := symMax(a.Hi, b.Hi)
		if !ok {
			return Section{}, false
		}
		out.Dims[i] = Bound{Lo: lo, Hi: hi, Stride: a.Stride}
	}
	return out, true
}

// symMin returns the symbolically smaller of a and b when their difference
// is a known constant.
func symMin(a, b Lin) (Lin, bool) {
	d, ok := a.DiffConst(b)
	if !ok {
		return Lin{}, false
	}
	if d <= 0 {
		return a, true
	}
	return b, true
}

func symMax(a, b Lin) (Lin, bool) {
	d, ok := a.DiffConst(b)
	if !ok {
		return Lin{}, false
	}
	if d >= 0 {
		return a, true
	}
	return b, true
}

// Subst substitutes sym := e in every bound.
func (s Section) Subst(sym Sym, e Lin) Section {
	out := Section{Array: s.Array, Dims: make([]Bound, len(s.Dims))}
	for i, d := range s.Dims {
		out.Dims[i] = Bound{Lo: d.Lo.Subst(sym, e), Hi: d.Hi.Subst(sym, e), Stride: d.Stride}
	}
	return out
}

// Eval resolves the section against env.
func (s Section) Eval(env Env) Concrete {
	out := Concrete{Array: s.Array, Dims: make([]CBound, len(s.Dims))}
	for i, d := range s.Dims {
		out.Dims[i] = CBound{Lo: d.Lo.Eval(env), Hi: d.Hi.Eval(env), Stride: d.Stride}
	}
	return out
}

// CBound is a concrete dimension bound.
type CBound struct {
	Lo, Hi, Stride int
}

// Count returns the number of index values in the bound.
func (b CBound) Count() int {
	if b.Hi < b.Lo {
		return 0
	}
	return (b.Hi-b.Lo)/b.Stride + 1
}

// Concrete is a section with all bounds resolved to integers.
type Concrete struct {
	Array string
	Dims  []CBound
}

// Empty reports whether the section selects no elements.
func (c Concrete) Empty() bool {
	for _, d := range c.Dims {
		if d.Count() == 0 {
			return true
		}
	}
	return len(c.Dims) == 0
}

// Elems returns the number of elements selected.
func (c Concrete) Elems() int {
	if len(c.Dims) == 0 {
		return 0
	}
	n := 1
	for _, d := range c.Dims {
		n *= d.Count()
	}
	return n
}

// Intersect computes the element-wise intersection of two concrete
// sections over the same array. Mixed strides fall back to stride-1 over
// the overlapping box only when either side is dense; otherwise the
// intersection is approximated by the denser stride (safe for Push, which
// only uses matching distributions in practice).
func (c Concrete) Intersect(o Concrete) Concrete {
	if c.Array != o.Array || len(c.Dims) != len(o.Dims) {
		return Concrete{}
	}
	out := Concrete{Array: c.Array, Dims: make([]CBound, len(c.Dims))}
	for i := range c.Dims {
		a, b := c.Dims[i], o.Dims[i]
		lo := maxInt(a.Lo, b.Lo)
		hi := minInt(a.Hi, b.Hi)
		stride := maxInt(a.Stride, b.Stride)
		if a.Stride != b.Stride {
			if minInt(a.Stride, b.Stride) != 1 {
				return Concrete{} // incompatible strides: treat as disjoint
			}
			// Align lo to the strided side's phase.
			s := a
			if b.Stride > a.Stride {
				s = b
			}
			if rem := (lo - s.Lo) % s.Stride; rem != 0 {
				lo += s.Stride - rem
			}
		} else if stride > 1 {
			if (a.Lo-b.Lo)%stride != 0 {
				return Concrete{} // same stride, different phase: disjoint
			}
			if rem := (lo - a.Lo) % stride; rem != 0 {
				lo += stride - rem
			}
		}
		if hi < lo {
			return Concrete{}
		}
		out.Dims[i] = CBound{Lo: lo, Hi: hi, Stride: stride}
	}
	return out
}

// Regions converts the section to word-address regions under the layout.
// Column-major: dimension 0 is contiguous when its stride is 1; outer
// dimensions are enumerated. Adjacent or overlapping regions are merged.
func (c Concrete) Regions(l *shm.Layout) []shm.Region {
	if c.Empty() {
		return nil
	}
	arr := l.Array(c.Array)
	if len(c.Dims) != len(arr.Dims) {
		panic(fmt.Sprintf("rsd: section %s has %d dims, array has %d", c.Array, len(c.Dims), len(arr.Dims)))
	}
	var out []shm.Region
	var walk func(dim int, base int)
	walk = func(dim int, base int) {
		d := c.Dims[dim]
		stride := arr.Stride(dim)
		if dim == 0 {
			if d.Stride == 1 {
				out = append(out, shm.Region{Lo: base + (d.Lo - 1), Hi: base + d.Hi})
				return
			}
			for i := d.Lo; i <= d.Hi; i += d.Stride {
				out = append(out, shm.Region{Lo: base + (i - 1), Hi: base + i})
			}
			return
		}
		for i := d.Lo; i <= d.Hi; i += d.Stride {
			walk(dim-1, base+(i-1)*stride)
		}
	}
	walk(len(c.Dims)-1, arr.Base)
	return shm.Normalize(out)
}

// ContiguousIn reports whether the section maps to a single contiguous
// address range under the layout, the condition the transformation rules
// check before WRITE_ALL conversions (Section 4.2).
func (c Concrete) ContiguousIn(l *shm.Layout) bool {
	return len(c.Regions(l)) == 1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
