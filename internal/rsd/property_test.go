package rsd

import (
	"testing"
	"testing/quick"
)

// Property: Lin algebra is a commutative group under Add with Sub as
// inverse, and Eval is a homomorphism.
func TestLinGroupProperties(t *testing.T) {
	mk := func(c int8, ka, kb int8) Lin {
		return Const(int(c)).Add(Term(int(ka), "a")).Add(Term(int(kb), "b"))
	}
	env := Env{"a": 3, "b": -7}
	f := func(c1, ka1, kb1, c2, ka2, kb2 int8) bool {
		x, y := mk(c1, ka1, kb1), mk(c2, ka2, kb2)
		if !x.Add(y).Equal(y.Add(x)) {
			return false
		}
		if !x.Add(y).Sub(y).Equal(x) {
			return false
		}
		return x.Add(y).Eval(env) == x.Eval(env)+y.Eval(env)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Subst then Eval equals Eval with the substituted binding.
func TestSubstEvalCommute(t *testing.T) {
	f := func(c, ka, kb, sub int8) bool {
		l := Const(int(c)).Add(Term(int(ka), "a")).Add(Term(int(kb), "b"))
		replaced := l.Subst("a", Const(int(sub)))
		return replaced.Eval(Env{"b": 5}) == l.Eval(Env{"a": int(sub), "b": 5})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a symbolic union evaluated equals (contains) the union of the
// evaluations.
func TestUnionEvalContainment(t *testing.T) {
	f := func(lo1, hi1, lo2, hi2 uint8) bool {
		a := Section{Array: "x", Dims: []Bound{Dense(Const(int(lo1)), Const(int(lo1)+int(hi1)%50))}}
		b := Section{Array: "x", Dims: []Bound{Dense(Const(int(lo2)), Const(int(lo2)+int(hi2)%50))}}
		u, ok := a.Union(b)
		if !ok {
			return true
		}
		env := Env{}
		ca, cb, cu := a.Eval(env), b.Eval(env), u.Eval(env)
		for _, c := range []Concrete{ca, cb} {
			if c.Dims[0].Lo < cu.Dims[0].Lo || c.Dims[0].Hi > cu.Dims[0].Hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Intersect is commutative and idempotent for dense sections.
func TestIntersectAlgebra(t *testing.T) {
	f := func(alo, ahi, blo, bhi uint8) bool {
		a := Concrete{Array: "z", Dims: []CBound{{int(alo), int(ahi), 1}}}
		b := Concrete{Array: "z", Dims: []CBound{{int(blo), int(bhi), 1}}}
		ab := a.Intersect(b)
		ba := b.Intersect(a)
		if ab.Empty() != ba.Empty() {
			return false
		}
		if !ab.Empty() && (ab.Dims[0] != ba.Dims[0]) {
			return false
		}
		aa := a.Intersect(a)
		if a.Empty() != aa.Empty() {
			return false
		}
		if !a.Empty() && aa.Dims[0] != a.Dims[0] {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
