package rsd

import "fmt"

// Page-granular spans.
//
// The compiler's sections (Section, Concrete) are symbolic: they describe
// array slices before the layout assigns addresses. The adaptive protocol
// works after layout, on page numbers, but wants the same economy the
// compiler gets from sections: one descriptor for a contiguous range
// instead of one per page. Span is that post-layout form — a half-open
// page range — and Coalesce is the clustering rule that builds maximal
// spans out of a page set, splitting wherever adjacent pages may not
// share a descriptor (different producer, different consumer set,
// incompatible diff headers — the caller's predicate decides).

// Span is a contiguous half-open page range [Lo, Hi).
type Span struct {
	Lo, Hi int
}

// Pages returns the number of pages in the span.
func (s Span) Pages() int { return s.Hi - s.Lo }

// Contains reports whether page pg lies in the span.
func (s Span) Contains(pg int) bool { return s.Lo <= pg && pg < s.Hi }

func (s Span) String() string { return fmt.Sprintf("[%d,%d)", s.Lo, s.Hi) }

// SpansOfSorted clusters a sorted, duplicate-free int32 page list into
// maximal contiguous spans — the run-length form the wire codec's
// version-7 page-set encoding and the relay accounting share. It is
// Coalesce for the protocol's native page-list type, with the same
// strictly-increasing input contract (and panic), and PageList is its
// exact inverse: PageList(SpansOfSorted(ps)) == ps for every valid
// input.
func SpansOfSorted(pages []int32) []Span {
	var out []Span
	for i, pg := range pages {
		p := int(pg)
		if i > 0 && pg <= pages[i-1] {
			panic(fmt.Sprintf("rsd: SpansOfSorted input not strictly increasing at %d", p))
		}
		if n := len(out); n > 0 && p == out[n-1].Hi {
			out[n-1].Hi = p + 1
			continue
		}
		out = append(out, Span{Lo: p, Hi: p + 1})
	}
	return out
}

// PageList expands a span list back into the sorted page list it was
// built from (the inverse of SpansOfSorted on valid input).
func PageList(spans []Span) []int32 {
	n := 0
	for _, s := range spans {
		n += s.Pages()
	}
	if n == 0 {
		return nil
	}
	out := make([]int32, 0, n)
	for _, s := range spans {
		for p := s.Lo; p < s.Hi; p++ {
			out = append(out, int32(p))
		}
	}
	return out
}

// Coalesce clusters a sorted page list into maximal contiguous spans. Two
// adjacent pages (pg, pg+1) share a span only when both are present and
// same(pg, pg+1) holds — the caller's compatibility predicate (e.g. "same
// producer and same bound consumer set" for adaptive bindings, or header
// equality for wire diff spans). A nil predicate means plain contiguity.
// The input must be strictly increasing; Coalesce panics otherwise, since
// a duplicate or unsorted page would silently produce wrong spans.
func Coalesce(pages []int, same func(a, b int) bool) []Span {
	var out []Span
	for i, pg := range pages {
		if i > 0 && pg <= pages[i-1] {
			panic(fmt.Sprintf("rsd: Coalesce input not strictly increasing at %d", pg))
		}
		if n := len(out); n > 0 && pg == out[n-1].Hi && (same == nil || same(pg-1, pg)) {
			out[n-1].Hi = pg + 1
			continue
		}
		out = append(out, Span{Lo: pg, Hi: pg + 1})
	}
	return out
}
