package rsd

import (
	"testing"
	"testing/quick"

	"sdsm/internal/shm"
)

func TestLinAlgebra(t *testing.T) {
	b := Var("begin")
	e := Var("end")
	x := b.Plus(-1).Add(e).Sub(b) // begin-1+end-begin = end-1
	if got := x.String(); got != "end-1" {
		t.Fatalf("x = %q", got)
	}
	if v := x.Eval(Env{"end": 10}); v != 9 {
		t.Fatalf("eval = %d", v)
	}
	if _, ok := x.IsConst(); ok {
		t.Fatal("end-1 is not constant")
	}
	if c, ok := x.Sub(e).IsConst(); !ok || c != -1 {
		t.Fatal("x-end must be constant -1")
	}
}

func TestLinSubst(t *testing.T) {
	// 2*i + j + 3 with i := p+1  →  2p + j + 5
	l := Term(2, "i").Add(Var("j")).Plus(3)
	got := l.Subst("i", Var("p").Plus(1))
	want := Term(2, "p").Add(Var("j")).Plus(5)
	if !got.Equal(want) {
		t.Fatalf("subst = %v, want %v", got, want)
	}
}

func TestLinEvalPanicsOnUnbound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unbound symbol")
		}
	}()
	Var("zzz").Eval(Env{})
}

// jacobiReadSections reproduces the paper's Section 4.3 example: the four
// read references to b in the Jacobi first loop nest union to
// b[1:M, begin-1:end+1].
func TestUnionMatchesPaperJacobiExample(t *testing.T) {
	m := Var("m")
	b := Var("begin")
	e := Var("end")
	mk := func(lo1, hi1, lo2, hi2 Lin) Section {
		return Section{Array: "b", Dims: []Bound{Dense(lo1, hi1), Dense(lo2, hi2)}}
	}
	secs := []Section{
		mk(Const(1), m.Plus(-2), b, e),
		mk(Const(3), m, b, e),
		mk(Const(2), m.Plus(-1), b.Plus(-1), e.Plus(-1)),
		mk(Const(2), m.Plus(-1), b.Plus(1), e.Plus(1)),
	}
	u := secs[0]
	for _, s := range secs[1:] {
		var ok bool
		u, ok = u.Union(s)
		if !ok {
			t.Fatalf("union failed at %v", s)
		}
	}
	want := mk(Const(1), m, b.Plus(-1), e.Plus(1))
	if !u.Equal(want) {
		t.Fatalf("union = %v, want %v", u, want)
	}
}

func TestUnionFailsOnIncomparableBounds(t *testing.T) {
	a := Section{Array: "x", Dims: []Bound{Dense(Var("i"), Var("i"))}}
	b := Section{Array: "x", Dims: []Bound{Dense(Var("j"), Var("j"))}}
	if _, ok := a.Union(b); ok {
		t.Fatal("union of incomparable bounds must fail")
	}
}

func TestUnionFailsAcrossArrays(t *testing.T) {
	a := Section{Array: "x", Dims: []Bound{Dense(Const(1), Const(2))}}
	b := Section{Array: "y", Dims: []Bound{Dense(Const(1), Const(2))}}
	if _, ok := a.Union(b); ok {
		t.Fatal("union across arrays must fail")
	}
}

func TestEvalAndElems(t *testing.T) {
	s := Section{Array: "a", Dims: []Bound{
		Dense(Const(1), Var("m")),
		{Lo: Var("p").Plus(1), Hi: Var("n"), Stride: 4},
	}}
	c := s.Eval(Env{"m": 10, "p": 0, "n": 9})
	if c.Dims[0].Count() != 10 || c.Dims[1].Count() != 3 {
		t.Fatalf("counts = %d, %d", c.Dims[0].Count(), c.Dims[1].Count())
	}
	if c.Elems() != 30 {
		t.Fatalf("elems = %d", c.Elems())
	}
	if c.Empty() {
		t.Fatal("not empty")
	}
}

func TestConcreteIntersect(t *testing.T) {
	a := Concrete{Array: "a", Dims: []CBound{{1, 100, 1}, {10, 20, 1}}}
	b := Concrete{Array: "a", Dims: []CBound{{50, 200, 1}, {1, 15, 1}}}
	x := a.Intersect(b)
	if x.Empty() || x.Dims[0] != (CBound{50, 100, 1}) || x.Dims[1] != (CBound{10, 15, 1}) {
		t.Fatalf("intersect = %+v", x)
	}
	// Disjoint in dim 1.
	c := Concrete{Array: "a", Dims: []CBound{{1, 100, 1}, {30, 40, 1}}}
	if got := a.Intersect(c); !got.Empty() {
		t.Fatalf("expected empty, got %+v", got)
	}
}

func TestStridedIntersectPhase(t *testing.T) {
	// Cyclic column distributions: stride nprocs, different phases are
	// disjoint; same phase intersects.
	a := Concrete{Array: "a", Dims: []CBound{{1, 8, 4}}}  // 1,5
	b := Concrete{Array: "a", Dims: []CBound{{3, 8, 4}}}  // 3,7
	c := Concrete{Array: "a", Dims: []CBound{{5, 16, 4}}} // 5,9,13
	if !a.Intersect(b).Empty() {
		t.Fatal("different phase must be disjoint")
	}
	x := a.Intersect(c)
	if x.Empty() || x.Dims[0].Lo != 5 || x.Dims[0].Hi != 8 {
		t.Fatalf("same phase intersect = %+v", x)
	}
}

func TestDenseVsStridedIntersect(t *testing.T) {
	dense := Concrete{Array: "a", Dims: []CBound{{1, 100, 1}}}
	strided := Concrete{Array: "a", Dims: []CBound{{2, 99, 3}}} // 2,5,...,98
	x := dense.Intersect(strided)
	if x.Empty() || x.Dims[0].Stride != 3 || x.Dims[0].Lo != 2 {
		t.Fatalf("intersect = %+v", x)
	}
}

func TestRegionsColumnMajor(t *testing.T) {
	l := shm.NewLayout()
	l.Alloc("b", 100, 50)
	// Full columns 3..4: one contiguous region of 200 words.
	c := Concrete{Array: "b", Dims: []CBound{{1, 100, 1}, {3, 4, 1}}}
	rs := c.Regions(l)
	if len(rs) != 1 || rs[0].Words() != 200 {
		t.Fatalf("regions = %v", rs)
	}
	// Partial columns: one region per column.
	c = Concrete{Array: "b", Dims: []CBound{{2, 99, 1}, {3, 4, 1}}}
	rs = c.Regions(l)
	if len(rs) != 2 || rs[0].Words() != 98 {
		t.Fatalf("regions = %v", rs)
	}
}

func TestContiguity(t *testing.T) {
	l := shm.NewLayout()
	l.Alloc("b", 100, 50)
	full := Concrete{Array: "b", Dims: []CBound{{1, 100, 1}, {10, 20, 1}}}
	if !full.ContiguousIn(l) {
		t.Fatal("full columns must be contiguous (column-major)")
	}
	part := Concrete{Array: "b", Dims: []CBound{{1, 99, 1}, {10, 20, 1}}}
	if part.ContiguousIn(l) {
		t.Fatal("partial columns must not be contiguous")
	}
}

func TestRegionsElemCountProperty(t *testing.T) {
	// Property: the total words of Regions equals Elems for stride-1
	// sections (no overlap double-counting after Normalize).
	l := shm.NewLayout()
	l.Alloc("q", 64, 64)
	f := func(lo1, hi1, lo2, hi2 uint8) bool {
		d1 := CBound{1 + int(lo1)%64, 1 + int(hi1)%64, 1}
		d2 := CBound{1 + int(lo2)%64, 1 + int(hi2)%64, 1}
		c := Concrete{Array: "q", Dims: []CBound{d1, d2}}
		if c.Empty() {
			return true
		}
		return shm.TotalWords(c.Regions(l)) == c.Elems()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectProperty(t *testing.T) {
	// Property: for dense 1-D sections, intersection selects exactly the
	// common indices.
	f := func(alo, ahi, blo, bhi uint8) bool {
		a := Concrete{Array: "z", Dims: []CBound{{int(alo), int(ahi), 1}}}
		b := Concrete{Array: "z", Dims: []CBound{{int(blo), int(bhi), 1}}}
		x := a.Intersect(b)
		for i := 0; i < 256; i++ {
			inA := i >= a.Dims[0].Lo && i <= a.Dims[0].Hi
			inB := i >= b.Dims[0].Lo && i <= b.Dims[0].Hi
			inX := !x.Empty() && i >= x.Dims[0].Lo && i <= x.Dims[0].Hi
			if inX != (inA && inB) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTagString(t *testing.T) {
	tg := Read | Write | WriteFirst
	if !tg.Has(Read) || !tg.Has(Write) || !tg.Has(WriteFirst) {
		t.Fatal("tag bits broken")
	}
	if s := tg.String(); s != "{read,write,write-first}" {
		t.Fatalf("tag = %q", s)
	}
}

func TestSectionString(t *testing.T) {
	s := Section{Array: "b", Dims: []Bound{
		Dense(Const(1), Var("m")),
		{Lo: Var("begin"), Hi: Var("end"), Stride: 2},
	}}
	if got := s.String(); got != "b[1:m, begin:end:2]" {
		t.Fatalf("String = %q", got)
	}
}
