package apps

import (
	"time"

	"sdsm/internal/ir"
	"sdsm/internal/rsd"
)

// TSP is the lock-dominated member of the suite: a branch-and-bound
// search for the cheapest asymmetric travelling-salesman tour, driven by
// a shared work queue and a shared incumbent ("best tour") that both live
// under locks. It is the migratory-data shape the paper's compiler
// abandons entirely — the critical sections are guarded by locks whose
// last holder no compiler can know, the work distribution is decided at
// run time by the queue, and the pruning condition is data-dependent — so
// neither Push, Validate_w_sync placement, nor XHPF apply. The *run-time*
// lock pattern is nevertheless stable: every round each processor takes
// one task (queue lock) and merges one candidate (best lock), so both
// locks migrate around the same rotation with the same one-page working
// set per hand-off — exactly what the lock-scope adaptive detector
// (internal/adapt) learns and converts into grant-piggybacked diffs.
//
// Determinism: the final incumbent is schedule-independent by the classic
// branch-and-bound invariant — a partial tour is pruned only when its
// cost already reaches the current bound, and edge costs are strictly
// positive, so every tour of optimal cost is fully enumerated no matter
// how stale the bound was; ties are broken lexicographically, making the
// final (cost, tour) the unique lex-smallest optimum on every backend and
// at every processor count. The virtual-time model charges a fixed
// per-round expansion budget (the pruning's wall-clock savings are real
// but schedule-dependent, which a deterministic platform model must not
// observe), keeping the rounds symmetric across processors.
const (
	tspTakeCost   = 2 * time.Microsecond
	tspMergeCost  = 4 * time.Microsecond
	tspExpandCost = 20 * time.Microsecond // per city, per round
)

// tspDist is the deterministic strictly-positive cost of travelling i→j
// (asymmetric), in [1, 64].
func tspDist(i, j, n int) int {
	x := uint64(i*n+j)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	x ^= x >> 29
	x *= 0x94D049BB133111EB
	x ^= x >> 32
	return 1 + int(x%64)
}

// tspTask decodes work item t into the fixed second and third tour cities
// (the first is always city 0); the task space enumerates all
// (second, third) pairs, (cities-1)*(cities-2) subtrees in total.
func tspTask(t, cities int) (second, third int) {
	second = 1 + t/(cities-2)
	r := t % (cities - 2)
	third = 1 + r
	if third >= second {
		third++
	}
	return second, third
}

// tspLexLess compares two complete tours lexicographically.
func tspLexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// tspExpand explores one task's subtree by depth-first search with
// bound pruning and returns the best complete tour found (cost 0 when the
// whole subtree pruned). bound 0 means unbounded; pruning keeps any tour
// whose total cost could still equal the bound (strictly positive edges
// make partial >= bound a safe cut), so equal-cost optima survive for the
// lexicographic tie-break.
func tspExpand(cities, second, third, bound int) (int, []int) {
	tour := make([]int, cities)
	tour[0], tour[1], tour[2] = 0, second, third
	visited := make([]bool, cities)
	visited[0], visited[second], visited[third] = true, true, true
	partial := tspDist(0, second, cities) + tspDist(second, third, cities)
	bestCost := 0
	var bestTour []int
	limit := func() int {
		if bestCost != 0 && (bound == 0 || bestCost < bound) {
			return bestCost
		}
		return bound
	}
	var dfs func(depth, cost int)
	dfs = func(depth, cost int) {
		if l := limit(); l != 0 && cost >= l {
			return
		}
		if depth == cities {
			total := cost + tspDist(tour[cities-1], 0, cities)
			if l := limit(); l != 0 && total > l {
				return
			}
			if bestCost == 0 || total < bestCost ||
				(total == bestCost && tspLexLess(tour, bestTour)) {
				bestCost = total
				bestTour = append(bestTour[:0], tour...)
			}
			return
		}
		for c := 1; c < cities; c++ {
			if visited[c] {
				continue
			}
			visited[c] = true
			tour[depth] = c
			dfs(depth+1, cost+tspDist(tour[depth-1], c, cities))
			visited[c] = false
		}
	}
	dfs(3, partial)
	return bestCost, bestTour
}

// TSP builds the branch-and-bound application. Like spmv it has no
// message-passing twin (MP is nil): its entire point is the dynamic,
// lock-mediated sharing no static analysis or hand partitioning captures.
func TSP() *App {
	return &App{
		Name:  "tsp",
		Build: tspProg,
		Sets: map[DataSet]rsd.Env{
			Large: {"cities": 11},
			Small: {"cities": 9},
		},
		CheckArray:      "best",
		WSyncApplicable: false,
		WSyncProfitable: false,
		PushApplicable:  false, // locks in the cycle, data-dependent control
		XHPF:            false, // run-time work distribution
	}
}

func tspProg(nprocs int) *ir.Program {
	prog := &ir.Program{
		Name: "tsp",
		Arrays: []ir.ArrayDecl{
			{Name: "queue", Dims: []rsd.Lin{c(1)}},
			{Name: "best", Dims: []rsd.Lin{v("cities").Plus(1)}},
		},
		Params: []rsd.Sym{"cities"},
		Derived: []ir.DerivedParam{
			{Name: "tasks", Fn: func(e rsd.Env) int { return (e["cities"] - 1) * (e["cities"] - 2) }},
			{Name: "rounds", Fn: func(e rsd.Env) int {
				tasks := (e["cities"] - 1) * (e["cities"] - 2)
				return (tasks + e["nprocs"] - 1) / e["nprocs"]
			}},
		},
	}

	// Per-processor private state carried between the kernels of a round.
	// The program value is shared by every node's interpreter, so the
	// state is indexed by the processor id; distinct indices make this
	// race-free on the concurrent backends.
	candCost := make([]int, nprocs)
	candTour := make([][]int, nprocs)
	view := make([]int, nprocs) // incumbent cost as of the last merge; 0 = none

	takeKernel := ir.Kernel{
		Name: "take",
		Accesses: []ir.TaggedSection{{
			Sec:   rsd.Section{Array: "queue", Dims: []rsd.Bound{rsd.Dense(c(1), c(1))}},
			Tag:   rsd.Read | rsd.Write,
			Exact: false, // guarded by a lock: the compiler cannot place data
		}},
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			q := ctx.Addr("queue", 1)
			data := ctx.ReadRegion(q, q+1)
			data = ctx.WriteRegion(q, q+1)
			t := int(data[q])
			data[q] = float64(t + 1)
			e["mytask"] = t
			ctx.Charge(tspTakeCost)
		},
	}

	expandKernel := ir.Kernel{
		Name: "expand",
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			p, cities, tasks := e["p"], e["cities"], e["tasks"]
			t := e["mytask"]
			candCost[p] = 0
			candTour[p] = nil
			if t < tasks {
				second, third := tspTask(t, cities)
				candCost[p], candTour[p] = tspExpand(cities, second, third, view[p])
			}
			ctx.Charge(time.Duration(cities) * tspExpandCost)
		},
	}

	mergeKernel := ir.Kernel{
		Name: "merge",
		Accesses: []ir.TaggedSection{{
			Sec:   rsd.Section{Array: "best", Dims: []rsd.Bound{rsd.Dense(c(1), v("cities").Plus(1))}},
			Tag:   rsd.Read | rsd.Write,
			Exact: false,
		}},
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			p, cities := e["p"], e["cities"]
			base := ctx.Addr("best", 1)
			data := ctx.ReadRegion(base, base+1+cities)
			data = ctx.WriteRegion(base, base+1+cities)
			cur := int(data[base])
			better := candCost[p] != 0 && (cur == 0 || candCost[p] < cur)
			if !better && candCost[p] != 0 && candCost[p] == cur {
				curTour := make([]int, cities)
				for i := range curTour {
					curTour[i] = int(data[base+1+i])
				}
				better = tspLexLess(candTour[p], curTour)
			}
			if better {
				data[base] = float64(candCost[p])
				for i, city := range candTour[p] {
					data[base+1+i] = float64(city)
				}
				cur = candCost[p]
			}
			view[p] = cur
			ctx.Charge(tspMergeCost)
		},
	}

	prog.Body = []ir.Stmt{
		ir.Barrier{ID: 0},
		ir.Loop{Var: "r", Lo: c(1), Hi: v("rounds"), Body: []ir.Stmt{
			ir.LockAcquire{ID: c(0)},
			takeKernel,
			ir.LockRelease{ID: c(0)},
			expandKernel,
			ir.LockAcquire{ID: c(1)},
			mergeKernel,
			ir.LockRelease{ID: c(1)},
		}},
		ir.Barrier{ID: 1},
	}
	return prog
}
