package apps

import (
	"time"

	"sdsm/internal/ir"
	"sdsm/internal/mp"
	"sdsm/internal/rsd"
)

// Per-element compute costs calibrated against Table 1: at 4096² and 100
// iterations, (m-2)²·stencil + m(m-2)·copy per iteration gives 288 s
// (paper: 288.3 s); at 1024² it gives 18.0 s (paper: 17.7 s).
const (
	jacStencilCost = 120 * time.Nanosecond
	jacCopyCost    = 52 * time.Nanosecond
)

// jacInit is the shared deterministic initializer for b. As in the paper,
// the internal elements are initially zero and only the domain boundary
// carries values, which keeps base TreadMarks diffs small relative to the
// page size (the source of the "data increases under WRITE_ALL" effect in
// Table 2).
func jacInit(i, j, m int) float64 {
	if i == 1 || i == m || j == 1 || j == m {
		return float64((i*31+j*17)%97) / 97
	}
	return 0
}

// Jacobi builds the paper's Figure 1 program: nearest-neighbour averaging
// over a shared array b, columns block-partitioned, two barriers per
// iteration. The compiler transforms it into Figure 2: a WRITE_ALL
// Validate for the copy phase and a Push replacing Barrier 2.
func Jacobi() *App {
	return &App{
		Name:  "jacobi",
		Build: func(int) *ir.Program { return jacobiProg() },
		Sets: map[DataSet]rsd.Env{
			Large: {"m": 512, "iters": 24, "cscale": 8},
			Small: {"m": 256, "iters": 24, "cscale": 4},
			// The boundary set: m = 264 makes each 8-processor block 33
			// columns of 264 words — 8712 words, 17.02 pages — so every
			// block boundary lands mid-page and the boundary page has two
			// writers with disjoint sub-page extents, each reading the
			// other's half (its halo column). The paper sets are page-
			// aligned (m = 256: two columns per 512-word page; m = 512: one)
			// and never exhibit this; the adaptive experiments (Table A) use
			// it to measure the sub-page split bindings against the fault
			// loop whole-page adaptation cannot break.
			Bound: {"m": 264, "iters": 24, "cscale": 4},
		},
		PaperSets: map[DataSet]rsd.Env{
			Large: {"m": 4096, "iters": 100},
			Small: {"m": 1024, "iters": 100},
		},
		CheckArray:      "b",
		WSyncApplicable: true,
		WSyncProfitable: false, // "no gain from merging data with synchronization"
		PushApplicable:  true,
		PushProfitable:  true, // gains for the small set (barrier cost proportionally higher)
		XHPF:            true,
		XHPFOverhead:    200 * time.Microsecond,
		MP:              jacobiMP,
	}
}

// jacobiProg builds the Figure 1 program.
func jacobiProg() *ir.Program {
	m := v("m")
	// Interior columns 2..m-1 are block-partitioned as begin..end; the
	// full range 1..m (for initialization) as ibegin..iend.
	prog := &ir.Program{
		Name: "jacobi",
		Arrays: []ir.ArrayDecl{
			{Name: "a", Dims: []rsd.Lin{m, m}},
			{Name: "b", Dims: []rsd.Lin{m, m}},
		},
		Params: []rsd.Sym{"m", "iters"},
		Derived: []ir.DerivedParam{
			// Interior work range: the owned full-partition columns clamped
			// to 2..m-1, so the work and ownership partitions agree.
			{Name: "begin", Fn: func(e rsd.Env) int { return maxInt(2, blockLow(e["m"], e["p"], e["nprocs"])) }},
			{Name: "end", Fn: func(e rsd.Env) int { return minInt(e["m"]-1, blockHigh(e["m"], e["p"], e["nprocs"])) }},
			{Name: "ibegin", Fn: func(e rsd.Env) int { return blockLow(e["m"], e["p"], e["nprocs"]) }},
			{Name: "iend", Fn: func(e rsd.Env) int { return blockHigh(e["m"], e["p"], e["nprocs"]) }},
		},
	}

	initKernel := ir.Kernel{
		Name: "init-b",
		Accesses: []ir.TaggedSection{{
			Sec: rsd.Section{Array: "b", Dims: []rsd.Bound{
				rsd.Dense(c(1), m),
				rsd.Dense(v("ibegin"), v("iend")),
			}},
			Tag:   rsd.Write | rsd.WriteFirst,
			Exact: true,
		}},
		Run: func(ctx ir.KernelCtx) {
			env := ctx.Env()
			mm, lo, hi := env["m"], env["ibegin"], env["iend"]
			data := ctx.WriteRegion(ctx.Addr("b", 1, lo), ctx.Addr("b", mm, hi)+1)
			for j := lo; j <= hi; j++ {
				for i := 1; i <= mm; i++ {
					data[ctx.Addr("b", i, j)] = jacInit(i, j, mm)
				}
			}
			ctx.Charge(time.Duration(mm*(hi-lo+1)) * jacCopyCost)
		},
	}

	avg4 := func(s []float64) float64 { return 0.25 * (s[0] + s[1] + s[2] + s[3]) }
	copy1 := func(s []float64) float64 { return s[0] }

	i, j := v("i"), v("j")
	stencil := ir.Loop{Var: "j", Lo: v("begin"), Hi: v("end"), Body: []ir.Stmt{
		ir.Loop{Var: "i", Lo: c(2), Hi: m.Plus(-1), Body: []ir.Stmt{
			ir.Assign{
				LHS: ir.At("a", i, j),
				RHS: []ir.Ref{
					ir.At("b", i.Plus(-1), j),
					ir.At("b", i.Plus(1), j),
					ir.At("b", i, j.Plus(-1)),
					ir.At("b", i, j.Plus(1)),
				},
				Fn:   avg4,
				Cost: jacStencilCost,
			},
		}},
	}}
	copyBack := ir.Loop{Var: "j", Lo: v("begin"), Hi: v("end"), Body: []ir.Stmt{
		ir.Loop{Var: "i", Lo: c(1), Hi: m, Body: []ir.Stmt{
			ir.Assign{
				LHS:  ir.At("b", i, j),
				RHS:  []ir.Ref{ir.At("a", i, j)},
				Fn:   copy1,
				Cost: jacCopyCost,
			},
		}},
	}}

	prog.Body = []ir.Stmt{
		initKernel,
		ir.Barrier{ID: 0},
		ir.Loop{Var: "k", Lo: c(1), Hi: v("iters"), Body: []ir.Stmt{
			stencil,
			ir.Barrier{ID: 1},
			copyBack,
			ir.Barrier{ID: 2},
		}},
	}
	return prog
}

// jacobiMP is the hand-coded message-passing Jacobi: two messages per
// processor per iteration carrying boundary columns, as the paper's
// Section 2 describes.
func jacobiMP(r *mp.Rank, params rsd.Env, perIter time.Duration, verify bool) float64 {
	m, iters := params["m"], params["iters"]
	ibegin := blockLow(m, r.ID, r.N)
	iend := blockHigh(m, r.ID, r.N)
	begin := maxInt(2, ibegin)
	end := minInt(m-1, iend)

	// Local storage: columns ibegin-1 .. iend+1 (ghosts).
	lo := ibegin - 1
	if lo < 1 {
		lo = 1
	}
	hi := iend + 1
	if hi > m {
		hi = m
	}
	cols := hi - lo + 1
	col := func(j int) int { return (j - lo) * m }
	b := make([]float64, cols*m)
	a := make([]float64, cols*m)
	for j := ibegin; j <= iend; j++ {
		for i := 1; i <= m; i++ {
			b[col(j)+i-1] = jacInit(i, j, m)
		}
	}
	r.Advance(time.Duration(m*(iend-ibegin+1)) * jacCopyCost)

	exchange := func() {
		if r.ID > 0 {
			r.Send(r.ID-1, b[col(ibegin):col(ibegin)+m])
		}
		if r.ID < r.N-1 {
			r.Send(r.ID+1, b[col(iend):col(iend)+m])
		}
		if r.ID > 0 {
			copy(b[col(ibegin-1):col(ibegin-1)+m], r.Recv(r.ID-1))
		}
		if r.ID < r.N-1 {
			copy(b[col(iend+1):col(iend+1)+m], r.Recv(r.ID+1))
		}
	}
	exchange() // initial ghost fill

	for it := 0; it < iters; it++ {
		if perIter > 0 {
			r.AdvanceFixed(perIter)
		}
		for j := begin; j <= end; j++ {
			bj, bl, br := b[col(j):], b[col(j-1):], b[col(j+1):]
			aj := a[col(j):]
			for i := 2; i <= m-1; i++ {
				aj[i-1] = 0.25 * (bj[i-2] + bj[i] + bl[i-1] + br[i-1])
			}
		}
		r.Advance(time.Duration((end-begin+1)*(m-2)) * jacStencilCost)
		for j := begin; j <= end; j++ {
			copy(b[col(j):col(j)+m], a[col(j):col(j)+m])
		}
		r.Advance(time.Duration((end-begin+1)*m) * jacCopyCost)
		exchange()
	}

	if !verify {
		return 0
	}
	// Weighted checksum of the owned part of b against the shared layout
	// offsets: array b starts at word 0 of its own base; the harness
	// compares against Checksum over the sequential image.
	sum := 0.0
	for j := ibegin; j <= iend; j++ {
		sum += ChecksumSlice(b[col(j):col(j)+m], (j-1)*m)
	}
	parts := r.Gather(0, []float64{sum})
	if parts == nil {
		return 0
	}
	total := 0.0
	for _, p := range parts {
		total += p[0]
	}
	return total
}
