package apps

import (
	"time"

	"sdsm/internal/ir"
	"sdsm/internal/mp"
	"sdsm/internal/rsd"
)

// Cost calibrated against Table 1: Shallow 1024² at 100 iterations with
// ten per-element assignments per iteration gives ~75 s (paper: 74.8 s);
// the 1024×512 set gives ~37 s (paper: 36.9 s).
const shallowCost = 72 * time.Nanosecond

func shInitU(i, j int) float64 { return float64((i*3+j*11)%53) / 53 }
func shInitV(i, j int) float64 { return float64((i*17+j*5)%47) / 47 }
func shInitP(i, j int) float64 { return 2 + float64((i*7+j*3)%41)/41 }

// Shallow builds the shallow-water benchmark: nine shared grids updated
// in three phases per iteration, each phase inside a subroutine. The call
// boundaries model the paper's interprocedural limitation: the compiler
// can aggregate communication and eliminate consistency overhead for each
// phase, but cannot merge data movement with the barriers nor replace
// them with Push.
func Shallow() *App {
	return &App{
		Name:  "shallow",
		Build: func(int) *ir.Program { return shallowProg() },
		Sets: map[DataSet]rsd.Env{
			Large: {"m": 512, "mc": 128, "iters": 16, "cscale": 8},
			Small: {"m": 512, "mc": 64, "iters": 16, "cscale": 8},
		},
		PaperSets: map[DataSet]rsd.Env{
			Large: {"m": 1024, "mc": 1024, "iters": 100},
			Small: {"m": 1024, "mc": 512, "iters": 100},
		},
		CheckArray:      "p",
		WSyncApplicable: false, // would require interprocedural analysis
		PushApplicable:  false, // likewise
		XHPF:            true,
		XHPFOverhead:    250 * time.Microsecond,
		MP:              shallowMP,
	}
}

func shallowProg() *ir.Program {
	m, mc := v("m"), v("mc")
	i, j := v("i"), v("j")

	arrays := []string{"u", "v", "p", "cu", "cv", "z", "h", "unew", "vnew", "pnew"}
	prog := &ir.Program{
		Name:   "shallow",
		Params: []rsd.Sym{"m", "mc", "iters"},
		Derived: []ir.DerivedParam{
			{Name: "begin", Fn: func(e rsd.Env) int { return maxInt(2, blockLow(e["mc"], e["p"], e["nprocs"])) }},
			{Name: "end", Fn: func(e rsd.Env) int { return minInt(e["mc"]-1, blockHigh(e["mc"], e["p"], e["nprocs"])) }},
			{Name: "ibegin", Fn: func(e rsd.Env) int { return blockLow(e["mc"], e["p"], e["nprocs"]) }},
			{Name: "iend", Fn: func(e rsd.Env) int { return blockHigh(e["mc"], e["p"], e["nprocs"]) }},
		},
	}
	for _, a := range arrays {
		prog.Arrays = append(prog.Arrays, ir.ArrayDecl{Name: a, Dims: []rsd.Lin{m, mc}})
	}

	initKernel := ir.Kernel{
		Name: "init",
		Accesses: []ir.TaggedSection{
			{Sec: colSection("u", m, "ibegin", "iend"), Tag: rsd.Write | rsd.WriteFirst, Exact: true},
			{Sec: colSection("v", m, "ibegin", "iend"), Tag: rsd.Write | rsd.WriteFirst, Exact: true},
			{Sec: colSection("p", m, "ibegin", "iend"), Tag: rsd.Write | rsd.WriteFirst, Exact: true},
		},
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			mm, lo, hi := e["m"], e["ibegin"], e["iend"]
			for _, arr := range []string{"u", "v", "p"} {
				data := ctx.WriteRegion(ctx.Addr(arr, 1, lo), ctx.Addr(arr, mm, hi)+1)
				for j := lo; j <= hi; j++ {
					for i := 1; i <= mm; i++ {
						switch arr {
						case "u":
							data[ctx.Addr(arr, i, j)] = shInitU(i, j)
						case "v":
							data[ctx.Addr(arr, i, j)] = shInitV(i, j)
						case "p":
							data[ctx.Addr(arr, i, j)] = shInitP(i, j)
						}
					}
				}
			}
			ctx.Charge(time.Duration(3*mm*(hi-lo+1)) * shallowCost)
		},
	}

	// own-column loop nest over one assignment
	nest := func(a ir.Assign) ir.Stmt {
		return ir.Loop{Var: "j", Lo: v("begin"), Hi: v("end"), Body: []ir.Stmt{
			ir.Loop{Var: "i", Lo: c(2), Hi: m.Plus(-1), Body: []ir.Stmt{a}},
		}}
	}

	// Phase 1: fluxes and vorticity from u, v, p (reads column j-1).
	phase1 := []ir.Stmt{
		nest(ir.Assign{LHS: ir.At("cu", i, j),
			RHS: []ir.Ref{ir.At("p", i, j), ir.At("p", i.Plus(-1), j), ir.At("u", i, j)},
			Fn:  func(s []float64) float64 { return 0.5 * (s[0] + s[1]) * s[2] }, Cost: shallowCost}),
		nest(ir.Assign{LHS: ir.At("cv", i, j),
			RHS: []ir.Ref{ir.At("p", i, j), ir.At("p", i, j.Plus(-1)), ir.At("v", i, j)},
			Fn:  func(s []float64) float64 { return 0.5 * (s[0] + s[1]) * s[2] }, Cost: shallowCost}),
		nest(ir.Assign{LHS: ir.At("z", i, j),
			RHS: []ir.Ref{ir.At("v", i, j), ir.At("v", i.Plus(-1), j), ir.At("u", i, j), ir.At("u", i, j.Plus(-1)), ir.At("p", i, j)},
			Fn:  func(s []float64) float64 { return (s[0] - s[1] + s[2] - s[3]) / (4 + s[4]) }, Cost: shallowCost}),
		nest(ir.Assign{LHS: ir.At("h", i, j),
			RHS: []ir.Ref{ir.At("p", i, j), ir.At("u", i, j), ir.At("v", i, j)},
			Fn:  func(s []float64) float64 { return s[0] + 0.25*(s[1]*s[1]+s[2]*s[2]) }, Cost: shallowCost}),
	}

	// Phase 2: new fields from the fluxes (reads column j+1).
	phase2 := []ir.Stmt{
		nest(ir.Assign{LHS: ir.At("unew", i, j),
			RHS: []ir.Ref{ir.At("u", i, j), ir.At("z", i, j.Plus(1)), ir.At("cv", i, j), ir.At("h", i, j), ir.At("h", i.Plus(-1), j)},
			Fn:  func(s []float64) float64 { return 0.99*s[0] + 0.01*(s[1]*s[2]-(s[3]-s[4])) }, Cost: shallowCost}),
		nest(ir.Assign{LHS: ir.At("vnew", i, j),
			RHS: []ir.Ref{ir.At("v", i, j), ir.At("z", i.Plus(1), j), ir.At("cu", i, j), ir.At("h", i, j), ir.At("h", i, j.Plus(1))},
			Fn:  func(s []float64) float64 { return 0.99*s[0] - 0.01*(s[1]*s[2]+(s[3]-s[4])) }, Cost: shallowCost}),
		nest(ir.Assign{LHS: ir.At("pnew", i, j),
			RHS: []ir.Ref{ir.At("p", i, j), ir.At("cu", i, j), ir.At("cu", i.Plus(-1), j), ir.At("cv", i, j), ir.At("cv", i, j.Plus(1))},
			Fn:  func(s []float64) float64 { return s[0] - 0.01*(s[1]-s[2]+s[3]-s[4]) }, Cost: shallowCost}),
	}

	// Phase 3: copy back.
	cp := func(dst, src string) ir.Stmt {
		return nest(ir.Assign{LHS: ir.At(dst, i, j), RHS: []ir.Ref{ir.At(src, i, j)},
			Fn: func(s []float64) float64 { return s[0] }, Cost: shallowCost})
	}
	phase3 := []ir.Stmt{cp("u", "unew"), cp("v", "vnew"), cp("p", "pnew")}

	var iter []ir.Stmt
	iter = append(iter, ir.CallBoundary{Name: "calc1"})
	iter = append(iter, phase1...)
	iter = append(iter, ir.Barrier{ID: 1}, ir.CallBoundary{Name: "calc2"})
	iter = append(iter, phase2...)
	iter = append(iter, ir.Barrier{ID: 2}, ir.CallBoundary{Name: "calc3"})
	iter = append(iter, phase3...)
	iter = append(iter, ir.Barrier{ID: 3})

	prog.Body = []ir.Stmt{
		initKernel,
		ir.Barrier{ID: 0},
		ir.Loop{Var: "it", Lo: c(1), Hi: v("iters"), Body: iter},
	}
	return prog
}

// colSection builds the full-column section arr[1:m, lo:hi].
func colSection(arr string, m rsd.Lin, lo, hi rsd.Sym) rsd.Section {
	return rsd.Section{Array: arr, Dims: []rsd.Bound{
		rsd.Dense(c(1), m), rsd.Dense(rsd.Var(lo), rsd.Var(hi)),
	}}
}

// shallowMP is the hand-coded message-passing Shallow: per iteration two
// ghost-column exchanges, each combining all needed arrays in a single
// message per neighbour.
func shallowMP(r *mp.Rank, params rsd.Env, perIter time.Duration, verify bool) float64 {
	m, mc, iters := params["m"], params["mc"], params["iters"]
	ibegin, iend := blockLow(mc, r.ID, r.N), blockHigh(mc, r.ID, r.N)
	begin, end := maxInt(2, ibegin), minInt(mc-1, iend)
	lo, hi := maxInt(1, ibegin-1), minInt(mc, iend+1)
	cols := hi - lo + 1
	col := func(j int) int { return (j - lo) * m }

	names := []string{"u", "v", "p", "cu", "cv", "z", "h", "unew", "vnew", "pnew"}
	g := map[string][]float64{}
	for _, nm := range names {
		g[nm] = make([]float64, cols*m)
	}
	for j := ibegin; j <= iend; j++ {
		for i := 1; i <= m; i++ {
			g["u"][col(j)+i-1] = shInitU(i, j)
			g["v"][col(j)+i-1] = shInitV(i, j)
			g["p"][col(j)+i-1] = shInitP(i, j)
		}
	}
	r.Advance(time.Duration(3*m*(iend-ibegin+1)) * shallowCost)

	// exchangeLeft ships our first owned column of the named arrays to the
	// left neighbour's right ghost... direction conventions:
	//   phase1 reads column j-1 of u, v, p: each rank needs its LEFT ghost
	//   (ibegin-1), provided by the left neighbour's iend column.
	//   phase2 reads column j+1 of cu, cv, z, h: each rank needs its RIGHT
	//   ghost (iend+1), provided by the right neighbour's ibegin column.
	pack := func(arrs []string, j int) []float64 {
		out := make([]float64, 0, len(arrs)*m)
		for _, nm := range arrs {
			out = append(out, g[nm][col(j):col(j)+m]...)
		}
		return out
	}
	unpack := func(arrs []string, j int, blk []float64) {
		for t, nm := range arrs {
			copy(g[nm][col(j):col(j)+m], blk[t*m:(t+1)*m])
		}
	}
	leftArrs := []string{"u", "v", "p"}
	rightArrs := []string{"cu", "cv", "z", "h"}
	exchangeUVP := func() {
		if r.ID < r.N-1 {
			r.Send(r.ID+1, pack(leftArrs, iend))
		}
		if r.ID > 0 {
			unpack(leftArrs, ibegin-1, r.Recv(r.ID-1))
		}
	}
	exchangeFlux := func() {
		if r.ID > 0 {
			r.Send(r.ID-1, pack(rightArrs, ibegin))
		}
		if r.ID < r.N-1 {
			unpack(rightArrs, iend+1, r.Recv(r.ID+1))
		}
	}
	exchangeUVP()

	for it := 0; it < iters; it++ {
		if perIter > 0 {
			r.AdvanceFixed(perIter)
		}
		for j := begin; j <= end; j++ {
			for i := 2; i <= m-1; i++ {
				pj, pl := g["p"][col(j):], g["p"][col(j-1):]
				uj, ul := g["u"][col(j):], g["u"][col(j-1):]
				vj := g["v"][col(j):]
				g["cu"][col(j)+i-1] = 0.5 * (pj[i-1] + pj[i-2]) * uj[i-1]
				g["cv"][col(j)+i-1] = 0.5 * (pj[i-1] + pl[i-1]) * vj[i-1]
				g["z"][col(j)+i-1] = (vj[i-1] - vj[i-2] + uj[i-1] - ul[i-1]) / (4 + pj[i-1])
				g["h"][col(j)+i-1] = pj[i-1] + 0.25*(uj[i-1]*uj[i-1]+vj[i-1]*vj[i-1])
			}
		}
		r.Advance(time.Duration(4*(end-begin+1)*(m-2)) * shallowCost)
		exchangeFlux()
		for j := begin; j <= end; j++ {
			for i := 2; i <= m-1; i++ {
				uj, vj, pj := g["u"][col(j):], g["v"][col(j):], g["p"][col(j):]
				zj, zr := g["z"][col(j):], g["z"][col(j+1):]
				cuj := g["cu"][col(j):]
				cvj, cvr := g["cv"][col(j):], g["cv"][col(j+1):]
				hj, hr := g["h"][col(j):], g["h"][col(j+1):]
				g["unew"][col(j)+i-1] = 0.99*uj[i-1] + 0.01*(zr[i-1]*cvj[i-1]-(hj[i-1]-hj[i-2]))
				g["vnew"][col(j)+i-1] = 0.99*vj[i-1] - 0.01*(zj[i]*cuj[i-1]+(hj[i-1]-hr[i-1]))
				g["pnew"][col(j)+i-1] = pj[i-1] - 0.01*(cuj[i-1]-cuj[i-2]+cvj[i-1]-cvr[i-1])
			}
		}
		r.Advance(time.Duration(3*(end-begin+1)*(m-2)) * shallowCost)
		for j := begin; j <= end; j++ {
			// Interior rows only, matching the shared-memory loop nests.
			copy(g["u"][col(j)+1:col(j)+m-1], g["unew"][col(j)+1:col(j)+m-1])
			copy(g["v"][col(j)+1:col(j)+m-1], g["vnew"][col(j)+1:col(j)+m-1])
			copy(g["p"][col(j)+1:col(j)+m-1], g["pnew"][col(j)+1:col(j)+m-1])
		}
		r.Advance(time.Duration(3*(end-begin+1)*m) * shallowCost)
		exchangeUVP()
	}

	if !verify {
		return 0
	}
	sum := 0.0
	for j := ibegin; j <= iend; j++ {
		sum += ChecksumSlice(g["p"][col(j):col(j)+m], (j-1)*m)
	}
	parts := r.Gather(0, []float64{sum})
	if parts == nil {
		return 0
	}
	total := 0.0
	for _, p := range parts {
		total += p[0]
	}
	return total
}
