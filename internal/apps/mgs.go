package apps

import (
	"math"
	"time"

	"sdsm/internal/ir"
	"sdsm/internal/mp"
	"sdsm/internal/rsd"
)

// Cost calibrated against Table 1: MGS 2048 vectors of dimension 2048 at
// ~nvec²/2·m element operations (dot + axpy each count one op per
// element) gives 449 s with 52 ns/op (paper: 449.3 s); the 1024 set gives
// 56 s (paper: 56.4 s).
const mgsOpCost = 52 * time.Nanosecond

func mgsInit(i, j int) float64 { return 1 + float64((i*13+j*29)%61)/61 }

// MGS builds Modified Gram-Schmidt: vectors are the columns of V,
// distributed cyclically. At step i the owner normalizes vector i; after
// a barrier every processor orthogonalizes its own vectors j > i against
// it. Like Gauss, the owner conditional blocks Push, the broadcast at the
// barrier makes sync+data merging profitable, and the cyclic (strided)
// sections cost extra at run time — all three paper observations.
func MGS() *App {
	return &App{
		Name:  "mgs",
		Build: mgsProg,
		Sets: map[DataSet]rsd.Env{
			Large: {"m": 512, "nvec": 192, "mpad": 512, "cscale": 11},
			Small: {"m": 512, "nvec": 96, "mpad": 512, "cscale": 11},
		},
		PaperSets: map[DataSet]rsd.Env{
			Large: {"m": 2048, "nvec": 2048, "mpad": 2048},
			Small: {"m": 1024, "nvec": 1024, "mpad": 1024},
		},
		CheckArray:      "V",
		WSyncApplicable: true,
		WSyncProfitable: true, // broadcast of the normalized vector
		PushApplicable:  false,
		XHPF:            true,
		XHPFOverhead:    150 * time.Microsecond,
		MP:              mgsMP,
	}
}

func mgsProg(nprocs int) *ir.Program {
	m, nvec, mpad := v("m"), v("nvec"), v("mpad")

	prog := &ir.Program{
		Name: "mgs",
		Arrays: []ir.ArrayDecl{
			{Name: "V", Dims: []rsd.Lin{mpad, nvec}},
		},
		Params: []rsd.Sym{"m", "nvec", "mpad"},
	}

	owner := func(e rsd.Env) bool { return (e["i"]-1)%e["nprocs"] == e["p"] }

	colSec := func(lo, hi rsd.Lin, stride int) rsd.Section {
		return rsd.Section{Array: "V", Dims: []rsd.Bound{
			rsd.Dense(c(1), m),
			{Lo: lo, Hi: hi, Stride: stride},
		}}
	}

	initKernel := ir.Kernel{
		Name: "init-V",
		Accesses: []ir.TaggedSection{{
			Sec:   colSec(v("p").Plus(1), nvec, nprocs),
			Tag:   rsd.Write | rsd.WriteFirst,
			Exact: true,
		}},
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			mm, nv, n, p := e["m"], e["nvec"], e["nprocs"], e["p"]
			for j := p + 1; j <= nv; j += n {
				data := ctx.WriteRegion(ctx.Addr("V", 1, j), ctx.Addr("V", mm, j)+1)
				for i := 1; i <= mm; i++ {
					data[ctx.Addr("V", i, j)] = mgsInit(i, j)
				}
			}
			ctx.Charge(time.Duration(mm*(nv/n+1)) * (10 * time.Nanosecond))
		},
	}

	normalize := ir.If{
		Cond: owner,
		Then: []ir.Stmt{
			ir.Kernel{
				Name: "normalize",
				Accesses: []ir.TaggedSection{{
					Sec:   colSec(v("i"), v("i"), 1),
					Tag:   rsd.Read | rsd.Write,
					Exact: true,
				}},
				Run: func(ctx ir.KernelCtx) {
					e := ctx.Env()
					mm, i := e["m"], e["i"]
					lo := ctx.Addr("V", 1, i)
					data := ctx.ReadRegion(lo, lo+mm)
					data = ctx.WriteRegion(lo, lo+mm)
					norm := 0.0
					for t := lo; t < lo+mm; t++ {
						norm += data[t] * data[t]
					}
					norm = math.Sqrt(norm)
					for t := lo; t < lo+mm; t++ {
						data[t] /= norm
					}
					ctx.Charge(time.Duration(2*mm) * mgsOpCost)
				},
			},
		},
	}

	orth := ir.Kernel{
		Name: "orthogonalize",
		Accesses: []ir.TaggedSection{
			{Sec: colSec(v("i"), v("i"), 1), Tag: rsd.Read, Exact: true},
			{Sec: colSec(v("jfirst"), nvec, nprocs), Tag: rsd.Read | rsd.Write, Exact: true},
		},
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			mm, nv, n, i := e["m"], e["nvec"], e["nprocs"], e["i"]
			jf := e["jfirst"]
			if jf > nv {
				return
			}
			vlo := ctx.Addr("V", 1, i)
			vi := ctx.ReadRegion(vlo, vlo+mm)
			ops := 0
			for j := jf; j <= nv; j += n {
				lo := ctx.Addr("V", 1, j)
				col := ctx.ReadRegion(lo, lo+mm)
				col = ctx.WriteRegion(lo, lo+mm)
				dot := 0.0
				for t := 0; t < mm; t++ {
					dot += vi[vlo+t] * col[lo+t]
				}
				for t := 0; t < mm; t++ {
					col[lo+t] -= dot * vi[vlo+t]
				}
				ops += 2 * mm
			}
			ctx.Charge(time.Duration(ops) * mgsOpCost)
		},
	}

	prog.Body = []ir.Stmt{
		initKernel,
		ir.Barrier{ID: 0},
		ir.Loop{Var: "i", Lo: c(1), Hi: nvec, Body: []ir.Stmt{
			normalize,
			ir.Compute{Sym: "jfirst", Fn: func(e rsd.Env) int {
				return cyclicFirst(e["i"]+1, e["p"], e["nprocs"])
			}},
			ir.Barrier{ID: 1},
			orth,
		}},
		ir.Barrier{ID: 2},
	}
	return prog
}

// mgsMP is the hand-coded message-passing MGS: the owner normalizes and
// broadcasts vector i; every rank orthogonalizes its own cyclic columns.
func mgsMP(r *mp.Rank, params rsd.Env, perIter time.Duration, verify bool) float64 {
	m, nvec := params["m"], params["nvec"]
	var mine []int
	colOf := map[int]int{}
	for j := r.ID + 1; j <= nvec; j += r.N {
		colOf[j] = len(mine)
		mine = append(mine, j)
	}
	local := make([]float64, len(mine)*m)
	for li, j := range mine {
		for i := 1; i <= m; i++ {
			local[li*m+i-1] = mgsInit(i, j)
		}
	}
	r.Advance(time.Duration(m*len(mine)) * (10 * time.Nanosecond))

	vi := make([]float64, m)
	for i := 1; i <= nvec; i++ {
		if perIter > 0 {
			r.AdvanceFixed(perIter)
		}
		owner := (i - 1) % r.N
		if owner == r.ID {
			col := local[colOf[i]*m : colOf[i]*m+m]
			norm := 0.0
			for t := 0; t < m; t++ {
				norm += col[t] * col[t]
			}
			norm = math.Sqrt(norm)
			for t := 0; t < m; t++ {
				col[t] /= norm
			}
			r.Advance(time.Duration(2*m) * mgsOpCost)
			copy(vi, col)
		}
		got := r.Bcast(owner, vi)
		copy(vi, got)
		ops := 0
		for _, j := range mine {
			if j <= i {
				continue
			}
			col := local[colOf[j]*m : colOf[j]*m+m]
			dot := 0.0
			for t := 0; t < m; t++ {
				dot += vi[t] * col[t]
			}
			for t := 0; t < m; t++ {
				col[t] -= dot * vi[t]
			}
			ops += 2 * m
		}
		r.Advance(time.Duration(ops) * mgsOpCost)
	}

	if !verify {
		return 0
	}
	mpad := params["mpad"]
	sum := 0.0
	for li, j := range mine {
		colVals := make([]float64, mpad)
		copy(colVals, local[li*m:li*m+m])
		sum += ChecksumSlice(colVals, (j-1)*mpad)
	}
	parts := r.Gather(0, []float64{sum})
	if parts == nil {
		return 0
	}
	total := 0.0
	for _, p := range parts {
		total += p[0]
	}
	return total
}
