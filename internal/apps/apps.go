// Package apps contains the six applications of the paper's evaluation —
// Jacobi, 3D-FFT, Integer Sort (IS), Shallow, Gauss, and Modified
// Gramm-Schmidt (MGS) — each as:
//
//   - an explicitly parallel ir program (run unmodified for the Base
//     TreadMarks numbers, or through the compiler for the optimized ones),
//   - a hand-coded message-passing version (the PVMe stand-in), which with
//     a per-phase distribution overhead also stands in for the XHPF
//     compiler-generated code, and
//   - a sequential reference with checksum-based verification.
//
// Per-element compute costs are calibrated so the uniprocessor virtual
// times at the paper's data-set sizes approximate Table 1; see each
// application's comments. The default data sets are scaled down so the
// whole suite runs in seconds; EXPERIMENTS.md records paper-vs-measured.
package apps

import (
	"fmt"
	"math"
	"time"

	"sdsm/internal/compiler"
	"sdsm/internal/ir"
	"sdsm/internal/mp"
	"sdsm/internal/rsd"
	"sdsm/internal/shm"
)

// DataSet names one of the problem sizes of an application.
type DataSet string

// The two data sets used throughout the paper's evaluation, plus the
// boundary set some applications add for the adaptive-protocol
// experiments: a problem size chosen so the block partition lands
// mid-page, creating the falsely shared two-writer boundary pages the
// sub-page split bindings exist for (only jacobi defines it; the paper
// tables never use it).
const (
	Large DataSet = "large"
	Small DataSet = "small"
	Bound DataSet = "bound"
)

// App bundles everything the harness needs for one application.
type App struct {
	Name string
	// Build constructs the explicitly parallel program for a given
	// processor count (cyclic distributions need the count for loop steps
	// and section strides; the sequential reference uses Build(1)).
	Build func(nprocs int) *ir.Program

	// Sets maps data-set name to problem parameters (scaled defaults).
	Sets map[DataSet]rsd.Env
	// PaperSets documents the paper's original sizes for reference.
	PaperSets map[DataSet]rsd.Env

	// CheckArray is the array whose contents verify the run.
	CheckArray string

	// WSyncProfitable records whether merging synchronization and data
	// transfer helped in the paper (Gauss, MGS: broadcast); the harness
	// uses it to pick the best optimization configuration.
	WSyncProfitable bool
	// WSyncApplicable is false when interprocedural limits block the
	// transformation entirely (Shallow).
	WSyncApplicable bool
	// PushApplicable is false when the Section 4.2 conditions cannot hold
	// (locks in the cycle, conditionals, call boundaries).
	PushApplicable bool
	// PushProfitable records whether Push was part of the paper's best
	// configuration (Jacobi small set, 3D-FFT small set).
	PushProfitable bool

	// XHPF is false when the stand-in parallelizing compiler rejects the
	// program (IS: indirect access to the main array).
	XHPF bool
	// XHPFOverhead is the per-outer-iteration distribution overhead that
	// separates the XHPF stand-in from the hand-coded version.
	XHPFOverhead time.Duration

	// MP runs the hand-coded message-passing version on one rank and
	// returns the local contribution to the checksum (only when verify).
	MP func(r *mp.Rank, params rsd.Env, perIter time.Duration, verify bool) float64
}

// Registry returns the paper's six applications in the paper's order (the
// suite every paper table and figure iterates).
func Registry() []*App {
	return []*App{
		Jacobi(),
		FFT3D(),
		IS(),
		Shallow(),
		Gauss(),
		MGS(),
	}
}

// Irregular returns the applications beyond the paper's evaluation:
// workloads whose access patterns defeat compile-time regular-section
// analysis, added for the run-time adaptive protocol. SpMV is the
// barrier-synchronized irregular case (data-dependent neighbor reads);
// TSP is the lock-dominated migratory case (work queue and incumbent
// under locks); TSPS shards tsp's queue into per-node deques with
// lock-striped stealing, the workload the scaling experiments use.
func Irregular() []*App {
	return []*App{SpMV(), TSP(), TSPS()}
}

// All returns every application: the paper suite plus the irregular
// additions.
func All() []*App {
	return append(Registry(), Irregular()...)
}

// ByName finds an application.
func ByName(name string) (*App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// BestOptions returns the compiler configuration the paper found best for
// this application (communication aggregation + consistency elimination
// always; sync+data merge and Push only where profitable; asynchronous
// fetching).
func (a *App) BestOptions(n int, params rsd.Env) compiler.Options {
	return compiler.Options{
		NProcs:    n,
		Params:    params,
		Aggregate: true,
		ConsElim:  true,
		SyncMerge: a.WSyncApplicable && a.WSyncProfitable,
		Push:      a.PushApplicable && a.PushProfitable,
		Async:     true,
	}
}

// Checksum computes a position-weighted checksum of the app's result
// array in a memory image.
func Checksum(layout *shm.Layout, mem []float64, array string) float64 {
	arr := layout.Array(array)
	sum := 0.0
	for i := 0; i < arr.Words(); i++ {
		sum += mem[arr.Base+i] * float64(1+i%97)
	}
	return sum
}

// ChecksumSlice computes the same weighted checksum over a local slice
// holding the logical array elements starting at logical offset off.
func ChecksumSlice(vals []float64, off int) float64 {
	sum := 0.0
	for i, v := range vals {
		sum += v * float64(1+(off+i)%97)
	}
	return sum
}

// Close reports approximate float equality for checksum comparison.
func Close(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// common affine helpers

func c(v int) rsd.Lin    { return rsd.Const(v) }
func v(s string) rsd.Lin { return rsd.Var(rsd.Sym(s)) }

// blockLow returns 1-based lower bound of a block partition of m items
// over n processors for processor p (0-based), expressed as a derived
// parameter function.
func blockLow(m, p, n int) int  { return p*m/n + 1 }
func blockHigh(m, p, n int) int { return (p + 1) * m / n }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
