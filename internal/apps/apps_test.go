package apps_test

import (
	"testing"

	"sdsm/internal/apps"
	"sdsm/internal/harness"
	"sdsm/internal/rsd"
)

// small test-sized parameter overrides to keep the suite fast
func testApp(t *testing.T, name string) *apps.App {
	t.Helper()
	a, err := apps.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	switch name {
	case "jacobi":
		a.Sets[apps.Small] = rsd.Env{"m": 128, "iters": 4}
	case "fft":
		a.Sets[apps.Small] = rsd.Env{"nx": 8, "ny": 16, "nz": 8, "iters": 2}
	case "is":
		a.Sets[apps.Small] = rsd.Env{"keys": 1 << 12, "buckets": 1 << 11, "iters": 2}
	case "shallow":
		a.Sets[apps.Small] = rsd.Env{"m": 128, "mc": 32, "iters": 3}
	case "gauss":
		a.Sets[apps.Small] = rsd.Env{"m": 96, "mpad": 128}
	case "mgs":
		a.Sets[apps.Small] = rsd.Env{"m": 128, "nvec": 48, "mpad": 128}
	case "spmv":
		a.Sets[apps.Small] = rsd.Env{"n": 4096, "iters": 4}
	}
	return a
}

// allApps are the paper's six applications (every system variant exists);
// dsmApps additionally includes the irregular workloads, which run on the
// DSM systems only.
var (
	allApps = []string{"jacobi", "fft", "is", "shallow", "gauss", "mgs"}
	dsmApps = []string{"jacobi", "fft", "is", "shallow", "gauss", "mgs", "spmv"}
)

func TestSeqDeterministic(t *testing.T) {
	for _, name := range dsmApps {
		a := testApp(t, name)
		c1 := harness.SeqChecksum(a, apps.Small)
		c2 := harness.SeqChecksum(a, apps.Small)
		if c1 != c2 || c1 == 0 {
			t.Errorf("%s: sequential checksum unstable or zero: %v vs %v", name, c1, c2)
		}
	}
}

// TestBaseDSMMatchesSeq checks that the unmodified programs on the base
// TreadMarks runtime compute the same results as the sequential reference
// at several processor counts.
func TestBaseDSMMatchesSeq(t *testing.T) {
	for _, name := range dsmApps {
		for _, n := range []int{1, 2, 4, 8} {
			a := testApp(t, name)
			want := harness.SeqChecksum(a, apps.Small)
			res, err := harness.Run(harness.Config{
				App: a, Set: apps.Small, System: harness.Base, Procs: n, Verify: true,
			})
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			if !apps.Close(res.Checksum, want) {
				t.Errorf("%s n=%d: base checksum %v, want %v", name, n, res.Checksum, want)
			}
		}
	}
}

// TestOptDSMMatchesSeq checks the compiler-transformed programs.
func TestOptDSMMatchesSeq(t *testing.T) {
	for _, name := range allApps {
		for _, n := range []int{1, 2, 4, 8} {
			a := testApp(t, name)
			want := harness.SeqChecksum(a, apps.Small)
			res, err := harness.Run(harness.Config{
				App: a, Set: apps.Small, System: harness.Opt, Procs: n, Verify: true,
			})
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			if !apps.Close(res.Checksum, want) {
				t.Errorf("%s n=%d: opt checksum %v, want %v", name, n, res.Checksum, want)
			}
		}
	}
}

// TestMPMatchesSeq checks the hand-coded message-passing versions.
func TestMPMatchesSeq(t *testing.T) {
	for _, name := range allApps {
		for _, n := range []int{1, 2, 4, 8} {
			a := testApp(t, name)
			want := harness.SeqChecksum(a, apps.Small)
			res, err := harness.Run(harness.Config{
				App: a, Set: apps.Small, System: harness.PVMe, Procs: n, Verify: true,
			})
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			if !apps.Close(res.Checksum, want) {
				t.Errorf("%s n=%d: pvme checksum %v, want %v", name, n, res.Checksum, want)
			}
		}
	}
}

// TestAllLevelsMatchSeq checks every Figure 6 optimization level for
// correctness.
func TestAllLevelsMatchSeq(t *testing.T) {
	for _, name := range allApps {
		a := testApp(t, name)
		want := harness.SeqChecksum(a, apps.Small)
		prog := a.Build(4)
		params := prog.Prepare(a.Sets[apps.Small], 4)
		for li, lvl := range harness.Levels(a, 4, params) {
			if lvl == nil {
				continue
			}
			res, err := harness.Run(harness.Config{
				App: a, Set: apps.Small, System: harness.Opt, Procs: 4,
				Verify: true, Level: lvl,
			})
			if err != nil {
				t.Fatalf("%s level %d: %v", name, li, err)
			}
			if !apps.Close(res.Checksum, want) {
				t.Errorf("%s level %s: checksum %v, want %v", name, harness.LevelNames[li], res.Checksum, want)
			}
		}
	}
}

// TestXHPFMatchesSeqOrRejects checks the XHPF stand-in, including its
// rejection of IS.
func TestXHPFMatchesSeqOrRejects(t *testing.T) {
	for _, name := range allApps {
		a := testApp(t, name)
		res, err := harness.Run(harness.Config{
			App: a, Set: apps.Small, System: harness.XHPF, Procs: 4, Verify: true,
		})
		if name == "is" {
			if err == nil {
				t.Error("is: XHPF stand-in should reject IS")
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := harness.SeqChecksum(a, apps.Small)
		if !apps.Close(res.Checksum, want) {
			t.Errorf("%s: xhpf checksum %v, want %v", name, res.Checksum, want)
		}
	}
}

// TestSyncFetchMatchesSeq checks the synchronous-fetch variant (Figure 7).
func TestSyncFetchMatchesSeq(t *testing.T) {
	for _, name := range allApps {
		a := testApp(t, name)
		want := harness.SeqChecksum(a, apps.Small)
		res, err := harness.Run(harness.Config{
			App: a, Set: apps.Small, System: harness.Opt, Procs: 4,
			Verify: true, SyncFetch: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !apps.Close(res.Checksum, want) {
			t.Errorf("%s: sync-fetch checksum %v, want %v", name, res.Checksum, want)
		}
	}
}
