package apps

import (
	"time"

	"sdsm/internal/ir"
	"sdsm/internal/mp"
	"sdsm/internal/rsd"
)

// Costs roughly calibrated against Table 1 (Gauss 1024²: 271.5 s at
// m³/3 ≈ 0.36 G updates gives ~760 ns/update; the 2048² point in the
// paper is super-linear, presumably cache effects our linear model does
// not capture — see EXPERIMENTS.md).
const (
	gaussElimCost = 900 * time.Nanosecond
	gaussNormCost = 300 * time.Nanosecond
)

// gaussInit produces a diagonally dominant matrix so elimination without
// actual pivot swaps stays stable.
func gaussInit(i, j, m int) float64 {
	if i == j {
		return float64(m)
	}
	return float64((i*7+j*13)%23) / 23
}

// Gauss builds Gaussian elimination with columns distributed cyclically.
// At iteration k the owner of column k normalizes the multipliers below
// the diagonal and, logically, broadcasts them: all processors read the
// pivot column after the barrier. The owner-test conditional is opaque to
// the compiler, which (as in the paper) blocks Push but leaves the pivot
// column read analyzable — the case where merging data with
// synchronization pays off via broadcast.
func Gauss() *App {
	return &App{
		Name:            "gauss",
		Build:           gaussProg,
		Sets:            map[DataSet]rsd.Env{Large: {"m": 384, "mpad": 512, "cscale": 5}, Small: {"m": 256, "mpad": 512, "cscale": 4}},
		PaperSets:       map[DataSet]rsd.Env{Large: {"m": 2048, "mpad": 2048}, Small: {"m": 1024, "mpad": 1024}},
		CheckArray:      "A",
		WSyncApplicable: true,
		WSyncProfitable: true, // broadcast of the pivot column at the barrier
		PushApplicable:  false,
		XHPF:            true,
		XHPFOverhead:    150 * time.Microsecond,
		MP:              gaussMP,
	}
}

// gaussProg builds the cyclic-column elimination program for n processors.
func gaussProg(nprocs int) *ir.Program {
	m := v("m")       // logical dimension (rows used)
	mpad := v("mpad") // padded column length, a page multiple
	k, i, j := v("k"), v("i"), v("j")

	prog := &ir.Program{
		Name: "gauss",
		Arrays: []ir.ArrayDecl{
			{Name: "A", Dims: []rsd.Lin{mpad, m}},
		},
		Params: []rsd.Sym{"m", "mpad"},
	}

	owner := func(e rsd.Env) bool { return (e["k"]-1)%e["nprocs"] == e["p"] }

	initKernel := ir.Kernel{
		Name: "init-A",
		Accesses: []ir.TaggedSection{{
			Sec: rsd.Section{Array: "A", Dims: []rsd.Bound{
				rsd.Dense(c(1), m),
				{Lo: v("p").Plus(1), Hi: m, Stride: nprocs},
			}},
			Tag:   rsd.Write | rsd.WriteFirst,
			Exact: true,
		}},
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			mm, n, p := e["m"], e["nprocs"], e["p"]
			for j := p + 1; j <= mm; j += n {
				data := ctx.WriteRegion(ctx.Addr("A", 1, j), ctx.Addr("A", mm, j)+1)
				for i := 1; i <= mm; i++ {
					data[ctx.Addr("A", i, j)] = gaussInit(i, j, mm)
				}
			}
			ctx.Charge(time.Duration(mm*(mm/n+1)) * (10 * time.Nanosecond))
		},
	}

	normalize := ir.If{
		Cond: owner,
		Then: []ir.Stmt{
			ir.Loop{Var: "i", Lo: k.Plus(1), Hi: m, Body: []ir.Stmt{
				ir.Assign{
					LHS:  ir.At("A", i, k),
					RHS:  []ir.Ref{ir.At("A", i, k), ir.At("A", k, k)},
					Fn:   func(s []float64) float64 { return s[0] / s[1] },
					Cost: gaussNormCost,
				},
			}},
		},
	}

	update := ir.Loop{Var: "j", Lo: v("jfirst"), Hi: m, Step: nprocs, Body: []ir.Stmt{
		ir.Loop{Var: "i", Lo: k.Plus(1), Hi: m, Body: []ir.Stmt{
			ir.Assign{
				LHS:  ir.At("A", i, j),
				RHS:  []ir.Ref{ir.At("A", i, j), ir.At("A", i, k), ir.At("A", k, j)},
				Fn:   func(s []float64) float64 { return s[0] - s[1]*s[2] },
				Cost: gaussElimCost,
			},
		}},
	}}

	prog.Body = []ir.Stmt{
		initKernel,
		ir.Barrier{ID: 0},
		ir.Loop{Var: "k", Lo: c(1), Hi: m.Plus(-1), Body: []ir.Stmt{
			normalize,
			ir.Compute{Sym: "jfirst", Fn: func(e rsd.Env) int {
				return cyclicFirst(e["k"]+1, e["p"], e["nprocs"])
			}},
			ir.Barrier{ID: 1},
			update,
		}},
		ir.Barrier{ID: 2},
	}
	return prog
}

// cyclicFirst returns the smallest j >= lo owned by p under a cyclic
// distribution (column j belongs to (j-1) mod n).
func cyclicFirst(lo, p, n int) int {
	r := (p + 1 - lo) % n
	if r < 0 {
		r += n
	}
	return lo + r
}

// gaussMP is the hand-coded message-passing Gauss: the pivot-column owner
// normalizes and broadcasts the multipliers; everyone updates their own
// cyclic columns.
func gaussMP(r *mp.Rank, params rsd.Env, perIter time.Duration, verify bool) float64 {
	m := params["m"]
	// Local columns p+1, p+1+n, ... stored contiguously.
	var mine []int
	for j := r.ID + 1; j <= m; j += r.N {
		mine = append(mine, j)
	}
	colOf := map[int]int{}
	local := make([]float64, len(mine)*m)
	for li, j := range mine {
		colOf[j] = li
		for i := 1; i <= m; i++ {
			local[li*m+i-1] = gaussInit(i, j, m)
		}
	}
	r.Advance(time.Duration(m*(len(mine))) * (10 * time.Nanosecond))

	piv := make([]float64, m) // pivot column multipliers, rows k+1..m at k..m-1
	for k := 1; k <= m-1; k++ {
		if perIter > 0 {
			r.AdvanceFixed(perIter)
		}
		owner := (k - 1) % r.N
		if owner == r.ID {
			col := local[colOf[k]*m:]
			akk := col[k-1]
			for i := k + 1; i <= m; i++ {
				col[i-1] /= akk
			}
			r.Advance(time.Duration(m-k) * gaussNormCost)
			copy(piv, col[:m])
		}
		got := r.Bcast(owner, piv[:m])
		copy(piv, got)
		for _, j := range mine {
			if j <= k {
				continue
			}
			col := local[colOf[j]*m:]
			akj := col[k-1]
			for i := k + 1; i <= m; i++ {
				col[i-1] -= piv[i-1] * akj
			}
		}
		cnt := 0
		for _, j := range mine {
			if j > k {
				cnt += m - k
			}
		}
		r.Advance(time.Duration(cnt) * gaussElimCost)
	}

	if !verify {
		return 0
	}
	mpadSum := 0.0
	mpad := params["mpad"]
	for li, j := range mine {
		colVals := make([]float64, mpad)
		copy(colVals, local[li*m:li*m+m])
		mpadSum += ChecksumSlice(colVals, (j-1)*mpad)
	}
	parts := r.Gather(0, []float64{mpadSum})
	if parts == nil {
		return 0
	}
	total := 0.0
	for _, p := range parts {
		total += p[0]
	}
	return total
}
