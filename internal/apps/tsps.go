package apps

import (
	"time"

	"sdsm/internal/ir"
	"sdsm/internal/rsd"
	"sdsm/internal/shm"
)

// TSPS is tsp with the single shared work queue sharded into per-node
// deques under striped locks — the scaling companion to the lock-dominated
// member of the suite. One global queue serializes every take on one lock
// and one page: at 64 or 128 nodes the queue page's diff chain migrates
// through every processor each round, and the lock home becomes the
// machine's hot spot. Here each processor owns a page-aligned deque (one
// page per node, so deques never share a page) guarded by its own stripe
// lock; a processor that finds its own deque empty steals from the tail of
// a deterministically rotating victim's deque under that victim's stripe.
// The initial partition is deliberately uneven (row p's share grows
// linearly with p, tspsRowStart), so low-numbered processors drain early
// and the steal path genuinely runs.
//
// Determinism: a task leaves a deque exactly once — takes and steals both
// move a cursor under the row's stripe lock — and rounds equals the
// largest initial deque, so an owner alone drains its row even if every
// steal misses; every task is therefore expanded exactly once, though by
// a schedule-dependent processor. The checksum covers only "best", and
// the branch-and-bound argument from tsp (strictly positive edges, prune
// only at the bound, lexicographic tie-break) makes the final incumbent
// the unique lex-smallest optimal tour on every backend and at every
// processor count, whatever the steal pattern was. The deque cursors'
// final positions are schedule-dependent and deliberately outside the
// checksum. Virtual time stays symmetric: every round charges the same
// take, expand, and merge budget whether or not work was found.
const tspsSeedCostPerTask = time.Microsecond

// tspsRowStart returns the first task of deque row p under the triangular
// partition: row p's share is proportional to p+1, with cumulative cuts
// tasks*T(p)/T(n) (T(k)=k(k+1)/2) so the rows tile [0, tasks) exactly.
func tspsRowStart(tasks, nprocs, p int) int {
	return tasks * (p * (p + 1) / 2) / (nprocs * (nprocs + 1) / 2)
}

// tspsRowLen returns deque row p's initial task count.
func tspsRowLen(tasks, nprocs, p int) int {
	return tspsRowStart(tasks, nprocs, p+1) - tspsRowStart(tasks, nprocs, p)
}

// tspsRounds is the round count: the largest initial deque, so owners
// alone guarantee every task is taken (see the type comment above).
func tspsRounds(tasks, nprocs int) int {
	max := 1
	for p := 0; p < nprocs; p++ {
		if l := tspsRowLen(tasks, nprocs, p); l > max {
			max = l
		}
	}
	return max
}

// TSPS builds the sharded-queue variant of tsp. Like tsp it has no
// message-passing twin and defeats every static optimization; it exists
// for the scaling experiments, where the single-queue tsp stops being a
// meaningful workload.
func TSPS() *App {
	return &App{
		Name:  "tsps",
		Build: tspsProg,
		Sets: map[DataSet]rsd.Env{
			Large: {"cities": 12},
			Small: {"cities": 10},
		},
		CheckArray:      "best",
		WSyncApplicable: false,
		WSyncProfitable: false,
		PushApplicable:  false, // locks in the cycle, data-dependent control
		XHPF:            false, // run-time work distribution
	}
}

func tspsProg(nprocs int) *ir.Program {
	prog := &ir.Program{
		Name: "tsps",
		Arrays: []ir.ArrayDecl{
			// One page per deque row: word 0 the head cursor, word 1 the
			// tail cursor (0-based slot indices), slots from word 2. Rows
			// are page-aligned (layout arrays always are), so two deques
			// never share a page.
			{Name: "deq", Dims: []rsd.Lin{c(shm.PageWords), c(nprocs)}},
			{Name: "best", Dims: []rsd.Lin{v("cities").Plus(1)}},
		},
		Params: []rsd.Sym{"cities"},
		Derived: []ir.DerivedParam{
			{Name: "tasks", Fn: func(e rsd.Env) int { return (e["cities"] - 1) * (e["cities"] - 2) }},
			{Name: "rounds", Fn: func(e rsd.Env) int {
				return tspsRounds((e["cities"]-1)*(e["cities"]-2), e["nprocs"])
			}},
		},
	}

	// Per-processor private state carried between the kernels of a round,
	// indexed by processor id (see tsp.go for why this is race-free).
	candCost := make([]int, nprocs)
	candTour := make([][]int, nprocs)
	view := make([]int, nprocs) // incumbent cost as of the last merge; 0 = none

	wholeDeq := rsd.Section{Array: "deq", Dims: []rsd.Bound{
		rsd.Dense(c(1), c(shm.PageWords)),
		rsd.Dense(c(1), c(nprocs)),
	}}

	seedKernel := ir.Kernel{
		Name: "seed",
		Accesses: []ir.TaggedSection{{
			Sec:   wholeDeq,
			Tag:   rsd.Write,
			Exact: false, // runs under a data-dependent If (p == 0)
		}},
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			n, tasks := e["nprocs"], e["tasks"]
			lo := ctx.Addr("deq", 1, 1)
			hi := ctx.Addr("deq", shm.PageWords, n) + 1
			data := ctx.WriteRegion(lo, hi)
			for row := 0; row < n; row++ {
				start, cnt := tspsRowStart(tasks, n, row), tspsRowLen(tasks, n, row)
				base := ctx.Addr("deq", 1, row+1)
				data[base] = 0              // head
				data[base+1] = float64(cnt) // tail
				for i := 0; i < cnt; i++ {
					data[base+2+i] = float64(start + i)
				}
			}
			ctx.Charge(time.Duration(tasks) * tspsSeedCostPerTask)
		},
	}

	takeKernel := ir.Kernel{
		Name: "take",
		Accesses: []ir.TaggedSection{{
			Sec: rsd.Section{Array: "deq", Dims: []rsd.Bound{
				rsd.Dense(c(1), c(shm.PageWords)),
				rsd.Dense(v("p").Plus(1), v("p").Plus(1)),
			}},
			Tag:   rsd.Read | rsd.Write,
			Exact: false, // guarded by the row's stripe lock
		}},
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			base := ctx.Addr("deq", 1, e["p"]+1)
			data := ctx.ReadRegion(base, base+shm.PageWords)
			head, tail := int(data[base]), int(data[base+1])
			e["mytask"], e["got"] = 0, 0
			if head < tail {
				e["mytask"] = int(data[base+2+head])
				e["got"] = 1
				w := ctx.WriteRegion(base, base+1)
				w[base] = float64(head + 1)
			}
			ctx.Charge(tspTakeCost)
		},
	}

	stealKernel := ir.Kernel{
		Name: "steal",
		Accesses: []ir.TaggedSection{{
			Sec: rsd.Section{Array: "deq", Dims: []rsd.Bound{
				rsd.Dense(c(1), c(shm.PageWords)),
				rsd.Dense(v("victim").Plus(1), v("victim").Plus(1)),
			}},
			Tag:   rsd.Read | rsd.Write,
			Exact: false, // guarded by the victim's stripe lock
		}},
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			base := ctx.Addr("deq", 1, e["victim"]+1)
			data := ctx.ReadRegion(base, base+shm.PageWords)
			head, tail := int(data[base]), int(data[base+1])
			if head < tail {
				e["mytask"] = int(data[base+2+tail-1])
				e["got"] = 1
				w := ctx.WriteRegion(base+1, base+2)
				w[base+1] = float64(tail - 1)
			}
			ctx.Charge(tspTakeCost)
		},
	}

	expandKernel := ir.Kernel{
		Name: "expand",
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			p, cities := e["p"], e["cities"]
			candCost[p] = 0
			candTour[p] = nil
			if e["got"] == 1 {
				second, third := tspTask(e["mytask"], cities)
				candCost[p], candTour[p] = tspExpand(cities, second, third, view[p])
			}
			ctx.Charge(time.Duration(cities) * tspExpandCost)
		},
	}

	mergeKernel := ir.Kernel{
		Name: "merge",
		Accesses: []ir.TaggedSection{{
			Sec:   rsd.Section{Array: "best", Dims: []rsd.Bound{rsd.Dense(c(1), v("cities").Plus(1))}},
			Tag:   rsd.Read | rsd.Write,
			Exact: false,
		}},
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			p, cities := e["p"], e["cities"]
			base := ctx.Addr("best", 1)
			data := ctx.ReadRegion(base, base+1+cities)
			data = ctx.WriteRegion(base, base+1+cities)
			cur := int(data[base])
			better := candCost[p] != 0 && (cur == 0 || candCost[p] < cur)
			if !better && candCost[p] != 0 && candCost[p] == cur {
				curTour := make([]int, cities)
				for i := range curTour {
					curTour[i] = int(data[base+1+i])
				}
				better = tspLexLess(candTour[p], curTour)
			}
			if better {
				data[base] = float64(candCost[p])
				for i, city := range candTour[p] {
					data[base+1+i] = float64(city)
				}
				cur = candCost[p]
			}
			view[p] = cur
			ctx.Charge(tspMergeCost)
		},
	}

	// Lock map: 1 guards "best"; 2+row is row's deque stripe. The steal
	// victim rotates deterministically through the other rows, so over
	// successive empty rounds a processor probes the whole machine.
	prog.Body = []ir.Stmt{
		ir.If{
			Cond: func(e rsd.Env) bool { return e["p"] == 0 },
			Then: []ir.Stmt{seedKernel},
		},
		ir.Barrier{ID: 0},
		ir.Loop{Var: "r", Lo: c(1), Hi: v("rounds"), Body: []ir.Stmt{
			ir.LockAcquire{ID: v("p").Plus(2)},
			takeKernel,
			ir.LockRelease{ID: v("p").Plus(2)},
			ir.Compute{Sym: "victim", Fn: func(e rsd.Env) int {
				n := e["nprocs"]
				if n == 1 {
					return 0
				}
				return (e["p"] + 1 + (e["r"]-1)%(n-1)) % n
			}},
			ir.If{
				Cond: func(e rsd.Env) bool { return e["got"] == 0 && e["nprocs"] > 1 },
				Then: []ir.Stmt{
					ir.LockAcquire{ID: v("victim").Plus(2)},
					stealKernel,
					ir.LockRelease{ID: v("victim").Plus(2)},
				},
			},
			expandKernel,
			ir.LockAcquire{ID: c(1)},
			mergeKernel,
			ir.LockRelease{ID: c(1)},
		}},
		ir.Barrier{ID: 1},
	}
	return prog
}
