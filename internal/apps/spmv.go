package apps

import (
	"sort"
	"time"

	"sdsm/internal/ir"
	"sdsm/internal/rsd"
	"sdsm/internal/shm"
)

// SpMV is the deliberately irregular member of the suite: a sparse
// neighbor relaxation whose access pattern is data-dependent (hash-derived
// neighbor indices), so the compiler's regular-section analysis cannot
// summarize the reads — the case the paper's pipeline abandons to plain
// invalidate TreadMarks. The *run-time* pattern is nevertheless perfectly
// stable: the neighbor graph is fixed, so every iteration each processor
// faults on the same remote pages of val, written by the same owners —
// exactly what the adaptive update protocol (internal/adapt) learns and
// converts to barrier-departure pushes.
//
// Structure per iteration: a relax kernel reads val at the 4 hash-derived
// neighbors of every owned element and writes nval over the owned block; a
// barrier; a copy kernel folds nval back into val with a positional
// forcing term (keeping the values from diffusing to a constant); a
// barrier. val's pages thus alternate a read phase and a write phase — the
// alternation the detector's production-cycle tracking is built for.
const (
	spmvRelaxCost = 180 * time.Nanosecond
	spmvCopyCost  = 60 * time.Nanosecond
)

// spmvNbr returns the j-th neighbor (0..3) of 0-based element g in a ring
// of n elements: the two adjacent elements plus two hash-derived jumps of
// up to one and two pages. Deterministic and fixed across iterations; no
// affine summary exists.
func spmvNbr(g, j, n int) int {
	switch j {
	case 0:
		return (g - 1 + n) % n
	case 1:
		return (g + 1) % n
	}
	x := uint64(g)*0x9E3779B97F4A7C15 + uint64(j)*0xBF58476D1CE4E5B9
	x ^= x >> 29
	x *= 0x94D049BB133111EB
	x ^= x >> 32
	reach := shm.PageWords // ±1 page
	if j == 3 {
		reach = 2 * shm.PageWords // ±2 pages
	}
	d := int(x%uint64(2*reach)) - reach
	return ((g+d)%n + n) % n
}

// spmvInit seeds element g with a varied deterministic value.
func spmvInit(g int) float64 { return float64((g*131+17)%251) / 251 }

// spmvForce is the positional forcing folded in by the copy phase.
func spmvForce(g int) float64 { return float64((g*37+5)%101) / 101 }

// SpMV builds the irregular-neighbor relaxation application. It has no
// message-passing twin (MP is nil): the point of the app is precisely the
// access pattern no compiler — including the hand-parallelizer — can
// enumerate cheaply, so it runs on the DSM systems only.
func SpMV() *App {
	return &App{
		Name:  "spmv",
		Build: spmvProg,
		Sets: map[DataSet]rsd.Env{
			Large: {"n": 32768, "iters": 20, "cscale": 8},
			Small: {"n": 8192, "iters": 20, "cscale": 4},
		},
		CheckArray:      "val",
		WSyncApplicable: false,
		WSyncProfitable: false,
		PushApplicable:  false, // no static section to exchange
		XHPF:            false, // data-dependent neighbor indices
	}
}

func spmvProg(nprocs int) *ir.Program {
	prog := &ir.Program{
		Name: "spmv",
		Arrays: []ir.ArrayDecl{
			{Name: "val", Dims: []rsd.Lin{v("n")}},
			{Name: "nval", Dims: []rsd.Lin{v("n")}},
		},
		Params: []rsd.Sym{"n", "iters"},
		Derived: []ir.DerivedParam{
			{Name: "lo", Fn: func(e rsd.Env) int { return blockLow(e["n"], e["p"], e["nprocs"]) }},
			{Name: "hi", Fn: func(e rsd.Env) int { return blockHigh(e["n"], e["p"], e["nprocs"]) }},
		},
	}

	initKernel := ir.Kernel{
		Name: "init-val",
		Accesses: []ir.TaggedSection{{
			Sec: rsd.Section{Array: "val", Dims: []rsd.Bound{
				rsd.Dense(v("lo"), v("hi")),
			}},
			Tag:   rsd.Write | rsd.WriteFirst,
			Exact: true,
		}},
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			lo, hi := e["lo"], e["hi"]
			base := ctx.Addr("val", 1)
			data := ctx.WriteRegion(base+lo-1, base+hi)
			for g := lo - 1; g <= hi-1; g++ {
				data[base+g] = spmvInit(g)
			}
			ctx.Charge(time.Duration(hi-lo+1) * spmvCopyCost)
		},
	}

	relaxKernel := ir.Kernel{
		Name: "relax",
		Accesses: []ir.TaggedSection{
			{
				// The neighbor reads are data-dependent; the honest summary
				// is "anywhere in val", inexact — which is what blocks every
				// compile-time optimization for this loop.
				Sec:   rsd.Section{Array: "val", Dims: []rsd.Bound{rsd.Dense(c(1), v("n"))}},
				Tag:   rsd.Read,
				Exact: false,
			},
			{
				Sec: rsd.Section{Array: "nval", Dims: []rsd.Bound{
					rsd.Dense(v("lo"), v("hi")),
				}},
				Tag:   rsd.Write | rsd.WriteFirst,
				Exact: true,
			},
		},
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			n, lo, hi := e["n"], e["lo"], e["hi"]
			vbase := ctx.Addr("val", 1)
			// Establish read access over exactly the pages the owned
			// elements' neighbors touch, one Ensure per contiguous page run
			// (the irregular analogue of a regular app's section validate).
			touched := map[int]bool{}
			for g := lo - 1; g <= hi-1; g++ {
				for j := 0; j < 4; j++ {
					touched[(vbase+spmvNbr(g, j, n))/shm.PageWords] = true
				}
			}
			var data []float64
			for _, run := range pageRuns(touched) {
				rlo := maxInt(run[0]*shm.PageWords, vbase)
				rhi := minInt(run[1]*shm.PageWords, vbase+n)
				data = ctx.ReadRegion(rlo, rhi)
			}
			wbase := ctx.Addr("nval", 1)
			out := ctx.WriteRegion(wbase+lo-1, wbase+hi)
			for g := lo - 1; g <= hi-1; g++ {
				s := 0.0
				for j := 0; j < 4; j++ {
					s += data[vbase+spmvNbr(g, j, n)]
				}
				out[wbase+g] = 0.25 * s
			}
			ctx.Charge(time.Duration(hi-lo+1) * spmvRelaxCost)
		},
	}

	copyKernel := ir.Kernel{
		Name: "fold",
		Accesses: []ir.TaggedSection{
			{
				Sec:   rsd.Section{Array: "nval", Dims: []rsd.Bound{rsd.Dense(v("lo"), v("hi"))}},
				Tag:   rsd.Read,
				Exact: true,
			},
			{
				Sec: rsd.Section{Array: "val", Dims: []rsd.Bound{
					rsd.Dense(v("lo"), v("hi")),
				}},
				Tag:   rsd.Write | rsd.WriteFirst,
				Exact: true,
			},
		},
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			lo, hi := e["lo"], e["hi"]
			nbase := ctx.Addr("nval", 1)
			vbase := ctx.Addr("val", 1)
			in := ctx.ReadRegion(nbase+lo-1, nbase+hi)
			out := ctx.WriteRegion(vbase+lo-1, vbase+hi)
			for g := lo - 1; g <= hi-1; g++ {
				out[vbase+g] = 0.3*spmvForce(g) + 0.7*in[nbase+g]
			}
			ctx.Charge(time.Duration(hi-lo+1) * spmvCopyCost)
		},
	}

	prog.Body = []ir.Stmt{
		initKernel,
		ir.Barrier{ID: 0},
		ir.Loop{Var: "it", Lo: c(1), Hi: v("iters"), Body: []ir.Stmt{
			relaxKernel,
			ir.Barrier{ID: 1},
			copyKernel,
			ir.Barrier{ID: 2},
		}},
	}
	return prog
}

// pageRuns converts a touched-page set into sorted [first, last+1) page
// runs.
func pageRuns(pages map[int]bool) [][2]int {
	ps := make([]int, 0, len(pages))
	for pg := range pages {
		ps = append(ps, pg)
	}
	if len(ps) == 0 {
		return nil
	}
	sort.Ints(ps)
	var out [][2]int
	start, prev := ps[0], ps[0]
	for _, pg := range ps[1:] {
		if pg != prev+1 {
			out = append(out, [2]int{start, prev + 1})
			start = pg
		}
		prev = pg
	}
	return append(out, [2]int{start, prev + 1})
}
