package apps_test

import (
	"testing"

	"sdsm/internal/apps"
	"sdsm/internal/harness"
	"sdsm/internal/rsd"
)

// TestMessageOrdering: for every application, hand-coded message passing
// sends the fewest messages, the optimized DSM fewer than base — the core
// of the paper's motivation (Section 2).
func TestMessageOrdering(t *testing.T) {
	for _, name := range allApps {
		a := testApp(t, name)
		base, err := harness.Run(harness.Config{App: a, Set: apps.Small, System: harness.Base, Procs: 4})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := harness.Run(harness.Config{App: a, Set: apps.Small, System: harness.Opt, Procs: 4})
		if err != nil {
			t.Fatal(err)
		}
		pvme, err := harness.Run(harness.Config{App: a, Set: apps.Small, System: harness.PVMe, Procs: 4})
		if err != nil {
			t.Fatal(err)
		}
		if opt.Msgs >= base.Msgs {
			t.Errorf("%s: opt msgs %d >= base %d", name, opt.Msgs, base.Msgs)
		}
		if pvme.Msgs > opt.Msgs {
			t.Errorf("%s: pvme msgs %d > opt %d", name, pvme.Msgs, opt.Msgs)
		}
	}
}

// TestDeterministicRuns: identical configurations produce identical
// times and traffic (the simulator's core guarantee).
func TestDeterministicRuns(t *testing.T) {
	a := testApp(t, "fft")
	run := func() (int64, int64, int64) {
		res, err := harness.Run(harness.Config{App: a, Set: apps.Small, System: harness.Opt, Procs: 8})
		if err != nil {
			t.Fatal(err)
		}
		return int64(res.Time), res.Msgs, res.Bytes
	}
	t1, m1, b1 := run()
	for i := 0; i < 3; i++ {
		t2, m2, b2 := run()
		if t1 != t2 || m1 != m2 || b1 != b2 {
			t.Fatalf("nondeterministic run: (%d,%d,%d) vs (%d,%d,%d)", t1, m1, b1, t2, m2, b2)
		}
	}
}

// TestOddProcessorCounts: partitions that do not divide the problem size
// evenly must still verify. IS is included since the exact block
// partitioning of keys and buckets (PR 3); spmv and tsp run on the base
// system (the compiler cannot analyze either).
func TestOddProcessorCounts(t *testing.T) {
	for _, name := range []string{"jacobi", "gauss", "mgs", "shallow", "is", "spmv", "tsp"} {
		sys := harness.Opt
		if name == "spmv" || name == "tsp" {
			sys = harness.Base
		}
		for _, n := range []int{3, 5, 7} {
			a := testApp(t, name)
			want := harness.SeqChecksum(a, apps.Small)
			res, err := harness.Run(harness.Config{App: a, Set: apps.Small, System: sys, Procs: n, Verify: true})
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			if !apps.Close(res.Checksum, want) {
				t.Errorf("%s n=%d: checksum %v, want %v", name, n, res.Checksum, want)
			}
		}
	}
}

// TestPaperSetsDeclared: every application documents the paper's original
// parameters alongside its scaled defaults.
func TestPaperSetsDeclared(t *testing.T) {
	for _, a := range apps.Registry() {
		for _, set := range []apps.DataSet{apps.Large, apps.Small} {
			if len(a.PaperSets[set]) == 0 {
				t.Errorf("%s/%s: no paper parameters declared", a.Name, set)
			}
			if len(a.Sets[set]) == 0 {
				t.Errorf("%s/%s: no scaled parameters declared", a.Name, set)
			}
		}
	}
}

// TestRegistryComplete: the six applications of the evaluation.
func TestRegistryComplete(t *testing.T) {
	want := map[string]bool{"jacobi": true, "fft": true, "is": true, "shallow": true, "gauss": true, "mgs": true}
	for _, a := range apps.Registry() {
		if !want[a.Name] {
			t.Errorf("unexpected app %s", a.Name)
		}
		delete(want, a.Name)
	}
	for name := range want {
		t.Errorf("missing app %s", name)
	}
	if _, err := apps.ByName("nope"); err == nil {
		t.Error("ByName should reject unknown names")
	}
	// The irregular additions resolve by name and appear in All but stay
	// out of the paper registry.
	if _, err := apps.ByName("spmv"); err != nil {
		t.Errorf("ByName(spmv): %v", err)
	}
	if got, want := len(apps.All()), len(apps.Registry())+len(apps.Irregular()); got != want {
		t.Errorf("All() has %d apps, want %d", got, want)
	}
}

// TestChecksumHelpers: the distributed checksum matches the layout-based
// one on identical data.
func TestChecksumHelpers(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	if got, want := apps.ChecksumSlice(vals, 0), float64(1*1+2*2+3*3+4*4+5*5); got != want {
		t.Fatalf("ChecksumSlice = %v, want %v", got, want)
	}
	if !apps.Close(1.0, 1.0+1e-12) {
		t.Error("Close too strict")
	}
	if apps.Close(1.0, 1.1) {
		t.Error("Close too lax")
	}
	_ = rsd.Env{}
}
