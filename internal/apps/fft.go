package apps

import (
	"math"
	"time"

	"sdsm/internal/ir"
	"sdsm/internal/mp"
	"sdsm/internal/rsd"
)

// Costs calibrated against Table 1: at 2^6·2^6·2^6 with 6 iterations the
// virtual time is ~9.8 s (paper: 9.5 s); at 2^5·2^6·2^5 it is ~2.2 s
// (paper: 2.3 s).
const (
	fftButterflyCost = 110 * time.Nanosecond // per element per FFT stage
	fftPointCost     = 80 * time.Nanosecond  // evolve/transpose per element
)

func fftInitRe(i, j, k int) float64 { return float64((i*5+j*3+k*7)%31) / 31 }
func fftInitIm(i, j, k int) float64 { return float64((i*11+j*13+k*2)%29) / 29 }

// fft1d is an in-place iterative radix-2 complex FFT over re/im slices
// (stride-1 pencils). n must be a power of two.
func fft1d(re, im []float64) {
	n := len(re)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wr, wi := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += length {
			cwr, cwi := 1.0, 0.0
			for k := 0; k < length/2; k++ {
				a, b := start+k, start+k+length/2
				ur, ui := re[a], im[a]
				vr := re[b]*cwr - im[b]*cwi
				vi := re[b]*cwi + im[b]*cwr
				re[a], im[a] = ur+vr, ui+vi
				re[b], im[b] = ur-vr, ui-vi
				cwr, cwi = cwr*wr-cwi*wi, cwr*wi+cwi*wr
			}
		}
	}
}

// log2 of a power of two.
func ilog2(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

// FFT3D builds the NAS-style 3-D FFT: a z-slab decomposition with local
// FFTs along x and y, a transpose (the producer-consumer communication at
// the barrier the paper describes), an FFT along z in the transposed
// array, a transpose back, and a point-wise evolve. The two transpose
// barriers qualify for Push; for the small data set each contiguous piece
// spans less than a page, so Push also removes false sharing — both paper
// observations.
func FFT3D() *App {
	return &App{
		Name:            "fft",
		Build:           fftProg,
		Sets:            map[DataSet]rsd.Env{Large: {"nx": 32, "ny": 32, "nz": 32, "iters": 3, "cscale": 6}, Small: {"nx": 16, "ny": 32, "nz": 16, "iters": 3, "cscale": 4}},
		PaperSets:       map[DataSet]rsd.Env{Large: {"nx": 64, "ny": 64, "nz": 64, "iters": 6}, Small: {"nx": 32, "ny": 64, "nz": 32, "iters": 6}},
		CheckArray:      "re",
		WSyncApplicable: true,
		WSyncProfitable: false, // "no additional gains: the bottleneck is data volume"
		PushApplicable:  true,
		PushProfitable:  true, // eliminates false sharing on the small set
		XHPF:            true,
		XHPFOverhead:    300 * time.Microsecond,
		MP:              fftMP,
	}
}

func fftProg(nprocs int) *ir.Program {
	nx, ny, nz := v("nx"), v("ny"), v("nz")
	i, j, k := v("i"), v("j"), v("k")

	prog := &ir.Program{
		Name: "fft",
		Arrays: []ir.ArrayDecl{
			{Name: "re", Dims: []rsd.Lin{nx, ny, nz}},
			{Name: "im", Dims: []rsd.Lin{nx, ny, nz}},
			{Name: "re2", Dims: []rsd.Lin{nz, ny, nx}},
			{Name: "im2", Dims: []rsd.Lin{nz, ny, nx}},
		},
		Params: []rsd.Sym{"nx", "ny", "nz", "iters"},
		Derived: []ir.DerivedParam{
			{Name: "zb", Fn: func(e rsd.Env) int { return blockLow(e["nz"], e["p"], e["nprocs"]) }},
			{Name: "ze", Fn: func(e rsd.Env) int { return blockHigh(e["nz"], e["p"], e["nprocs"]) }},
			{Name: "xb", Fn: func(e rsd.Env) int { return blockLow(e["nx"], e["p"], e["nprocs"]) }},
			{Name: "xe", Fn: func(e rsd.Env) int { return blockHigh(e["nx"], e["p"], e["nprocs"]) }},
		},
	}

	zSlab := func(arr string) rsd.Section {
		return rsd.Section{Array: arr, Dims: []rsd.Bound{
			rsd.Dense(c(1), nx), rsd.Dense(c(1), ny), rsd.Dense(v("zb"), v("ze")),
		}}
	}
	xSlab := func(arr string) rsd.Section {
		return rsd.Section{Array: arr, Dims: []rsd.Bound{
			rsd.Dense(c(1), nz), rsd.Dense(c(1), ny), rsd.Dense(v("xb"), v("xe")),
		}}
	}

	initKernel := ir.Kernel{
		Name: "init",
		Accesses: []ir.TaggedSection{
			{Sec: zSlab("re"), Tag: rsd.Write | rsd.WriteFirst, Exact: true},
			{Sec: zSlab("im"), Tag: rsd.Write | rsd.WriteFirst, Exact: true},
		},
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			nxv, nyv := e["nx"], e["ny"]
			zb, ze := e["zb"], e["ze"]
			re := ctx.WriteRegion(ctx.Addr("re", 1, 1, zb), ctx.Addr("re", nxv, nyv, ze)+1)
			im := ctx.WriteRegion(ctx.Addr("im", 1, 1, zb), ctx.Addr("im", nxv, nyv, ze)+1)
			for kk := zb; kk <= ze; kk++ {
				for jj := 1; jj <= nyv; jj++ {
					for ii := 1; ii <= nxv; ii++ {
						re[ctx.Addr("re", ii, jj, kk)] = fftInitRe(ii, jj, kk)
						im[ctx.Addr("im", ii, jj, kk)] = fftInitIm(ii, jj, kk)
					}
				}
			}
			ctx.Charge(time.Duration(nxv*nyv*(ze-zb+1)) * fftPointCost)
		},
	}

	// Evolve (point-wise damping) plus local FFTs along x and y within the
	// owned z-slab.
	localFFT := ir.Kernel{
		Name: "evolve+fft-xy",
		Accesses: []ir.TaggedSection{
			{Sec: zSlab("re"), Tag: rsd.Read | rsd.Write, Exact: true},
			{Sec: zSlab("im"), Tag: rsd.Read | rsd.Write, Exact: true},
		},
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			nxv, nyv := e["nx"], e["ny"]
			zb, ze := e["zb"], e["ze"]
			lo := ctx.Addr("re", 1, 1, zb)
			hi := ctx.Addr("re", nxv, nyv, ze) + 1
			re := ctx.ReadRegion(lo, hi)
			re = ctx.WriteRegion(lo, hi)
			ilo := ctx.Addr("im", 1, 1, zb)
			ihi := ctx.Addr("im", nxv, nyv, ze) + 1
			im := ctx.ReadRegion(ilo, ihi)
			im = ctx.WriteRegion(ilo, ihi)
			elems := nxv * nyv * (ze - zb + 1)
			// Evolve: damp towards zero so values stay bounded.
			for kk := zb; kk <= ze; kk++ {
				base := ctx.Addr("re", 1, 1, kk)
				ibase := ctx.Addr("im", 1, 1, kk)
				for t := 0; t < nxv*nyv; t++ {
					re[base+t] *= 0.5
					im[ibase+t] *= 0.5
				}
			}
			ctx.Charge(time.Duration(elems) * fftPointCost)
			// FFT along x: contiguous pencils.
			for kk := zb; kk <= ze; kk++ {
				for jj := 1; jj <= nyv; jj++ {
					a := ctx.Addr("re", 1, jj, kk)
					b := ctx.Addr("im", 1, jj, kk)
					fft1d(re[a:a+nxv], im[b:b+nxv])
				}
			}
			ctx.Charge(time.Duration(elems*ilog2(nxv)) * fftButterflyCost)
			// FFT along y: gather strided pencils into scratch.
			sr := make([]float64, nyv)
			si := make([]float64, nyv)
			for kk := zb; kk <= ze; kk++ {
				for ii := 1; ii <= nxv; ii++ {
					for jj := 1; jj <= nyv; jj++ {
						sr[jj-1] = re[ctx.Addr("re", ii, jj, kk)]
						si[jj-1] = im[ctx.Addr("im", ii, jj, kk)]
					}
					fft1d(sr, si)
					for jj := 1; jj <= nyv; jj++ {
						re[ctx.Addr("re", ii, jj, kk)] = sr[jj-1]
						im[ctx.Addr("im", ii, jj, kk)] = si[jj-1]
					}
				}
			}
			ctx.Charge(time.Duration(elems*ilog2(nyv)) * fftButterflyCost)
		},
	}

	fftZ := ir.Kernel{
		Name: "fft-z",
		Accesses: []ir.TaggedSection{
			{Sec: xSlab("re2"), Tag: rsd.Read | rsd.Write, Exact: true},
			{Sec: xSlab("im2"), Tag: rsd.Read | rsd.Write, Exact: true},
		},
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			nyv, nzv := e["ny"], e["nz"]
			xb, xe := e["xb"], e["xe"]
			lo := ctx.Addr("re2", 1, 1, xb)
			hi := ctx.Addr("re2", nzv, nyv, xe) + 1
			re2 := ctx.ReadRegion(lo, hi)
			re2 = ctx.WriteRegion(lo, hi)
			ilo := ctx.Addr("im2", 1, 1, xb)
			ihi := ctx.Addr("im2", nzv, nyv, xe) + 1
			im2 := ctx.ReadRegion(ilo, ihi)
			im2 = ctx.WriteRegion(ilo, ihi)
			for ii := xb; ii <= xe; ii++ {
				for jj := 1; jj <= nyv; jj++ {
					a := ctx.Addr("re2", 1, jj, ii)
					b := ctx.Addr("im2", 1, jj, ii)
					fft1d(re2[a:a+nzv], im2[b:b+nzv])
				}
			}
			ctx.Charge(time.Duration((xe-xb+1)*nyv*nzv*ilog2(nzv)) * fftButterflyCost)
		},
	}

	copyFn := func(s []float64) float64 { return s[0] }
	// Transpose: each processor builds its x-slab of re2/im2 by reading
	// everyone's z-slabs of re/im.
	transpose := []ir.Stmt{
		ir.Loop{Var: "i", Lo: v("xb"), Hi: v("xe"), Body: []ir.Stmt{
			ir.Loop{Var: "j", Lo: c(1), Hi: ny, Body: []ir.Stmt{
				ir.Loop{Var: "k", Lo: c(1), Hi: nz, Body: []ir.Stmt{
					ir.Assign{LHS: ir.At("re2", k, j, i), RHS: []ir.Ref{ir.At("re", i, j, k)}, Fn: copyFn, Cost: fftPointCost},
				}},
			}},
		}},
		ir.Loop{Var: "i", Lo: v("xb"), Hi: v("xe"), Body: []ir.Stmt{
			ir.Loop{Var: "j", Lo: c(1), Hi: ny, Body: []ir.Stmt{
				ir.Loop{Var: "k", Lo: c(1), Hi: nz, Body: []ir.Stmt{
					ir.Assign{LHS: ir.At("im2", k, j, i), RHS: []ir.Ref{ir.At("im", i, j, k)}, Fn: copyFn, Cost: fftPointCost},
				}},
			}},
		}},
	}
	// Transpose back into the owned z-slab of re/im.
	transposeBack := []ir.Stmt{
		ir.Loop{Var: "k", Lo: v("zb"), Hi: v("ze"), Body: []ir.Stmt{
			ir.Loop{Var: "j", Lo: c(1), Hi: ny, Body: []ir.Stmt{
				ir.Loop{Var: "i", Lo: c(1), Hi: nx, Body: []ir.Stmt{
					ir.Assign{LHS: ir.At("re", i, j, k), RHS: []ir.Ref{ir.At("re2", k, j, i)}, Fn: copyFn, Cost: fftPointCost},
				}},
			}},
		}},
		ir.Loop{Var: "k", Lo: v("zb"), Hi: v("ze"), Body: []ir.Stmt{
			ir.Loop{Var: "j", Lo: c(1), Hi: ny, Body: []ir.Stmt{
				ir.Loop{Var: "i", Lo: c(1), Hi: nx, Body: []ir.Stmt{
					ir.Assign{LHS: ir.At("im", i, j, k), RHS: []ir.Ref{ir.At("im2", k, j, i)}, Fn: copyFn, Cost: fftPointCost},
				}},
			}},
		}},
	}

	var loop []ir.Stmt
	loop = append(loop, localFFT, ir.Barrier{ID: 1})
	loop = append(loop, transpose...)
	loop = append(loop, ir.Barrier{ID: 2}, fftZ, ir.Barrier{ID: 3})
	loop = append(loop, transposeBack...)
	loop = append(loop, ir.Barrier{ID: 4})

	prog.Body = []ir.Stmt{
		initKernel,
		ir.Barrier{ID: 0},
		ir.Loop{Var: "it", Lo: c(1), Hi: v("iters"), Body: loop},
	}
	return prog
}

// fftMP is the hand-coded message-passing 3-D FFT: local FFTs plus an
// all-to-all block exchange for each transpose.
func fftMP(r *mp.Rank, params rsd.Env, perIter time.Duration, verify bool) float64 {
	nx, ny, nz, iters := params["nx"], params["ny"], params["nz"], params["iters"]
	zb, ze := blockLow(nz, r.ID, r.N), blockHigh(nz, r.ID, r.N)
	xb, xe := blockLow(nx, r.ID, r.N), blockHigh(nx, r.ID, r.N)
	zw, xw := ze-zb+1, xe-xb+1

	// Local z-slab of re/im: index (i, j, kk) kk local 0..zw-1.
	at := func(i, j, kk int) int { return (i - 1) + (j-1)*nx + kk*nx*ny }
	// Local x-slab of re2/im2: (k, j, ii).
	at2 := func(k, j, ii int) int { return (k - 1) + (j-1)*nz + ii*nz*ny }
	re := make([]float64, nx*ny*zw)
	im := make([]float64, nx*ny*zw)
	re2 := make([]float64, nz*ny*xw)
	im2 := make([]float64, nz*ny*xw)
	for kk := 0; kk < zw; kk++ {
		for j := 1; j <= ny; j++ {
			for i := 1; i <= nx; i++ {
				re[at(i, j, kk)] = fftInitRe(i, j, zb+kk)
				im[at(i, j, kk)] = fftInitIm(i, j, zb+kk)
			}
		}
	}
	r.Advance(time.Duration(nx*ny*zw) * fftPointCost)

	sr := make([]float64, ny)
	si := make([]float64, ny)
	for it := 0; it < iters; it++ {
		if perIter > 0 {
			r.AdvanceFixed(perIter)
		}
		elems := nx * ny * zw
		for t := range re {
			re[t] *= 0.5
			im[t] *= 0.5
		}
		r.Advance(time.Duration(elems) * fftPointCost)
		for kk := 0; kk < zw; kk++ {
			for j := 1; j <= ny; j++ {
				a := at(1, j, kk)
				fft1d(re[a:a+nx], im[a:a+nx])
			}
		}
		r.Advance(time.Duration(elems*ilog2(nx)) * fftButterflyCost)
		for kk := 0; kk < zw; kk++ {
			for i := 1; i <= nx; i++ {
				for j := 1; j <= ny; j++ {
					sr[j-1] = re[at(i, j, kk)]
					si[j-1] = im[at(i, j, kk)]
				}
				fft1d(sr, si)
				for j := 1; j <= ny; j++ {
					re[at(i, j, kk)] = sr[j-1]
					im[at(i, j, kk)] = si[j-1]
				}
			}
		}
		r.Advance(time.Duration(elems*ilog2(ny)) * fftButterflyCost)

		// Transpose: all-to-all. Block for peer q: i in q's x-range, all j,
		// k in my z-range.
		for q := 0; q < r.N; q++ {
			qxb, qxe := blockLow(nx, q, r.N), blockHigh(nx, q, r.N)
			blk := make([]float64, 0, 2*(qxe-qxb+1)*ny*zw)
			for kk := 0; kk < zw; kk++ {
				for j := 1; j <= ny; j++ {
					for i := qxb; i <= qxe; i++ {
						blk = append(blk, re[at(i, j, kk)], im[at(i, j, kk)])
					}
				}
			}
			if q == r.ID {
				unpackTranspose(blk, re2, im2, at2, qxb, qxe, ny, zb, zw)
				continue
			}
			r.Send(q, blk)
		}
		for q := 0; q < r.N; q++ {
			if q == r.ID {
				continue
			}
			blk := r.Recv(q)
			qzb := blockLow(nz, q, r.N)
			qzw := blockHigh(nz, q, r.N) - qzb + 1
			unpackTranspose(blk, re2, im2, at2, xb, xe, ny, qzb, qzw)
		}
		r.Advance(time.Duration(nz*ny*xw) * fftPointCost)

		for ii := 0; ii < xw; ii++ {
			for j := 1; j <= ny; j++ {
				a := at2(1, j, ii)
				fft1d(re2[a:a+nz], im2[a:a+nz])
			}
		}
		r.Advance(time.Duration(nz*ny*xw*ilog2(nz)) * fftButterflyCost)

		// Transpose back.
		for q := 0; q < r.N; q++ {
			qzb, qze := blockLow(nz, q, r.N), blockHigh(nz, q, r.N)
			blk := make([]float64, 0, 2*(qze-qzb+1)*ny*xw)
			for ii := 0; ii < xw; ii++ {
				for j := 1; j <= ny; j++ {
					for k := qzb; k <= qze; k++ {
						blk = append(blk, re2[at2(k, j, ii)], im2[at2(k, j, ii)])
					}
				}
			}
			if q == r.ID {
				unpackBack(blk, re, im, at, xb, xe, ny, zb, qzb, qze)
				continue
			}
			r.Send(q, blk)
		}
		for q := 0; q < r.N; q++ {
			if q == r.ID {
				continue
			}
			blk := r.Recv(q)
			qxb, qxe := blockLow(nx, q, r.N), blockHigh(nx, q, r.N)
			unpackBack(blk, re, im, at, qxb, qxe, ny, zb, zb, ze)
		}
		r.Advance(time.Duration(nx*ny*zw) * fftPointCost)
	}

	if !verify {
		return 0
	}
	sum := 0.0
	for kk := 0; kk < zw; kk++ {
		for j := 1; j <= ny; j++ {
			row := make([]float64, nx)
			for i := 1; i <= nx; i++ {
				row[i-1] = re[at(i, j, kk)]
			}
			sum += ChecksumSlice(row, (zb+kk-1)*nx*ny+(j-1)*nx)
		}
	}
	parts := r.Gather(0, []float64{sum})
	if parts == nil {
		return 0
	}
	total := 0.0
	for _, p := range parts {
		total += p[0]
	}
	return total
}

// unpackTranspose scatters a transpose block (i-range, all j, k-range of
// the sender) into the local x-slab arrays.
func unpackTranspose(blk, re2, im2 []float64, at2 func(k, j, ii int) int, ixb, ixe, ny, kzb, kzw int) {
	t := 0
	for kk := 0; kk < kzw; kk++ {
		for j := 1; j <= ny; j++ {
			for i := ixb; i <= ixe; i++ {
				re2[at2(kzb+kk, j, i-ixb)] = blk[t]
				im2[at2(kzb+kk, j, i-ixb)] = blk[t+1]
				t += 2
			}
		}
	}
}

// unpackBack scatters a transpose-back block into the local z-slab arrays.
func unpackBack(blk, re, im []float64, at func(i, j, kk int) int, ixb, ixe, ny, zb, kzb, kze int) {
	t := 0
	for ii := ixb; ii <= ixe; ii++ {
		for j := 1; j <= ny; j++ {
			for k := kzb; k <= kze; k++ {
				re[at(ii, j, k-zb)] = blk[t]
				im[at(ii, j, k-zb)] = blk[t+1]
				t += 2
			}
		}
	}
}
