package apps

import (
	"time"

	"sdsm/internal/ir"
	"sdsm/internal/mp"
	"sdsm/internal/rsd"
)

// Costs calibrated against Table 1's large set (IS 2^23/2^19: 91.2 s over
// 10 repetitions with ~2N key operations per repetition gives ~540 ns per
// key operation; the paper's small set is super-linearly faster, which a
// linear model does not capture — see EXPERIMENTS.md).
const (
	isKeyCost    = 540 * time.Nanosecond
	isBucketCost = 100 * time.Nanosecond
)

// isKey generates the deterministic key for global slot g (keys are in
// [0, buckets)); slot g of the sequence belongs to processor g/keysPer.
func isKey(g, buckets int) int {
	x := uint64(g)*2654435761 + 12345
	x ^= x >> 13
	x *= 1099511628211
	x ^= x >> 7
	return int(x % uint64(buckets))
}

// IS builds the NAS Integer Sort: processors count keys into private
// buckets, merge them into shared buckets section by section under
// staggered locks (the data is migratory), and rank their keys from the
// summed buckets after a barrier. The indirect access to the key array
// keeps XHPF from parallelizing it; the compiler still optimizes the lock
// phases (READ&WRITE_ALL on the bucket sections) and the ranking read —
// the paper's example of partial analysis being beneficial.
func IS() *App {
	return &App{
		Name:  "is",
		Build: isProg,
		Sets: map[DataSet]rsd.Env{
			Large: {"keys": 1 << 16, "buckets": 1 << 15, "iters": 4, "cscale": 8},
			Small: {"keys": 1 << 14, "buckets": 1 << 13, "iters": 4, "cscale": 16},
		},
		PaperSets: map[DataSet]rsd.Env{
			Large: {"keys": 1 << 23, "buckets": 1 << 19, "iters": 10},
			Small: {"keys": 1 << 20, "buckets": 1 << 15, "iters": 10},
		},
		CheckArray:      "ranks",
		WSyncApplicable: true,
		WSyncProfitable: false, // merging made IS worse (page-list scan overhead)
		PushApplicable:  false, // the compiler cannot know who held the lock last
		XHPF:            false, // indirect access to the main array
		MP:              isMP,
	}
}

func isProg(nprocs int) *ir.Program {
	b := v("b")
	prog := &ir.Program{
		Name: "is",
		Arrays: []ir.ArrayDecl{
			{Name: "buckets", Dims: []rsd.Lin{v("buckets")}},
			{Name: "priv", Dims: []rsd.Lin{v("buckets"), c(nprocs)}},
			{Name: "ranks", Dims: []rsd.Lin{v("keysPer"), c(nprocs)}},
		},
		Params: []rsd.Sym{"keys", "buckets", "iters"},
		Setup: func(params rsd.Env, n int) {
			params["keysPer"] = params["keys"] / n
		},
		Derived: []ir.DerivedParam{
			{Name: "pcol", Fn: func(e rsd.Env) int { return e["p"] + 1 }},
		},
	}

	countKernel := ir.Kernel{
		Name: "count",
		Accesses: []ir.TaggedSection{{
			Sec: rsd.Section{Array: "priv", Dims: []rsd.Bound{
				rsd.Dense(c(1), v("buckets")),
				rsd.Dense(v("pcol"), v("pcol")),
			}},
			Tag:   rsd.Write | rsd.WriteFirst,
			Exact: true,
		}},
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			nb, kp, p := e["buckets"], e["keysPer"], e["p"]
			lo := ctx.Addr("priv", 1, p+1)
			data := ctx.WriteRegion(lo, lo+nb)
			for t := lo; t < lo+nb; t++ {
				data[t] = 0
			}
			for t := 0; t < kp; t++ {
				data[lo+isKey(p*kp+t, nb)]++
			}
			ctx.Charge(time.Duration(kp)*isKeyCost + time.Duration(nb)*isBucketCost/4)
		},
	}

	addFn := func(s []float64) float64 { return s[0] + s[1] }
	zeroFn := func([]float64) float64 { return 0 }

	// Each processor clears its own section of the shared buckets; the
	// barrier that follows makes the staggered accumulation order-free.
	zeroOwn := []ir.Stmt{
		ir.Compute{Sym: "blo0", Fn: func(e rsd.Env) int { return e["p"]*(e["buckets"]/e["nprocs"]) + 1 }},
		ir.Compute{Sym: "bhi0", Fn: func(e rsd.Env) int { return (e["p"] + 1) * (e["buckets"] / e["nprocs"]) }},
		ir.LockAcquire{ID: v("p")},
		ir.Loop{Var: "b", Lo: v("blo0"), Hi: v("bhi0"), Body: []ir.Stmt{
			ir.Assign{LHS: ir.At("buckets", b), Fn: zeroFn, Cost: isBucketCost / 4},
		}},
		ir.LockRelease{ID: v("p")},
		ir.Barrier{ID: 3},
	}

	// Staggered visits to the sections (own first): accumulate under locks;
	// the bucket data is migratory.
	stagger := ir.Loop{Var: "s", Lo: c(0), Hi: v("nprocs").Plus(-1), Body: []ir.Stmt{
		ir.Compute{Sym: "sec", Fn: func(e rsd.Env) int { return (e["p"] + e["s"]) % e["nprocs"] }},
		ir.Compute{Sym: "blo", Fn: func(e rsd.Env) int { return e["sec"]*(e["buckets"]/e["nprocs"]) + 1 }},
		ir.Compute{Sym: "bhi", Fn: func(e rsd.Env) int { return (e["sec"] + 1) * (e["buckets"] / e["nprocs"]) }},
		ir.LockAcquire{ID: v("sec")},
		ir.Loop{Var: "b", Lo: v("blo"), Hi: v("bhi"), Body: []ir.Stmt{
			ir.Assign{LHS: ir.At("buckets", b), RHS: []ir.Ref{ir.At("buckets", b), ir.At("priv", b, v("pcol"))}, Fn: addFn, Cost: isBucketCost},
		}},
		ir.LockRelease{ID: v("sec")},
	}}

	rankKernel := ir.Kernel{
		Name: "rank",
		Accesses: []ir.TaggedSection{
			{
				Sec:   rsd.Section{Array: "buckets", Dims: []rsd.Bound{rsd.Dense(c(1), v("buckets"))}},
				Tag:   rsd.Read,
				Exact: true,
			},
			{
				Sec: rsd.Section{Array: "ranks", Dims: []rsd.Bound{
					rsd.Dense(c(1), v("keysPer")),
					rsd.Dense(v("pcol"), v("pcol")),
				}},
				Tag:   rsd.Write | rsd.WriteFirst,
				Exact: true,
			},
		},
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			nb, kp, p := e["buckets"], e["keysPer"], e["p"]
			blo := ctx.Addr("buckets", 1)
			bdata := ctx.ReadRegion(blo, blo+nb)
			// Prefix sums: rank of a key k is the number of keys < k.
			prefix := make([]float64, nb)
			run := 0.0
			for t := 0; t < nb; t++ {
				prefix[t] = run
				run += bdata[blo+t]
			}
			rlo := ctx.Addr("ranks", 1, p+1)
			rdata := ctx.WriteRegion(rlo, rlo+kp)
			for t := 0; t < kp; t++ {
				rdata[rlo+t] = prefix[isKey(p*kp+t, nb)]
			}
			ctx.Charge(time.Duration(kp)*isKeyCost + time.Duration(nb)*isBucketCost)
		},
	}

	var iter []ir.Stmt
	iter = append(iter, countKernel)
	iter = append(iter, zeroOwn...)
	iter = append(iter, stagger, ir.Barrier{ID: 1}, rankKernel, ir.Barrier{ID: 2})

	prog.Body = []ir.Stmt{
		ir.Barrier{ID: 0},
		ir.Loop{Var: "it", Lo: c(1), Hi: v("iters"), Body: iter},
	}
	return prog
}

// isMP is the hand-coded message-passing IS. It reproduces the pipelined
// structure the paper credits for PVMe's edge: partial section sums flow
// around a ring (each processor adds its private counts and forwards), so
// the transfer to the next processor is pipelined; afterwards each final
// section is broadcast for ranking.
func isMP(r *mp.Rank, params rsd.Env, perIter time.Duration, verify bool) float64 {
	nb, keys, iters := params["buckets"], params["keys"], params["iters"]
	kp := keys / r.N
	secw := nb / r.N
	priv := make([]float64, nb)
	all := make([]float64, nb)
	ranks := make([]float64, kp)

	for it := 0; it < iters; it++ {
		if perIter > 0 {
			r.AdvanceFixed(perIter)
		}
		for t := range priv {
			priv[t] = 0
		}
		for t := 0; t < kp; t++ {
			priv[isKey(r.ID*kp+t, nb)]++
		}
		r.Advance(time.Duration(kp)*isKeyCost + time.Duration(nb)*isBucketCost/4)

		// Ring pipeline: section s is completed at rank (s+N-1) mod N after
		// passing through all ranks starting at rank s.
		next := (r.ID + 1) % r.N
		prev := (r.ID - 1 + r.N) % r.N
		// Start own section.
		sec := r.ID
		cur := append([]float64(nil), priv[sec*secw:(sec+1)*secw]...)
		for hop := 0; hop < r.N-1; hop++ {
			r.Send(next, cur)
			in := r.Recv(prev)
			sec = (sec - 1 + r.N) % r.N
			cur = in
			for t := 0; t < secw; t++ {
				cur[t] += priv[sec*secw+t]
			}
			r.Advance(time.Duration(secw) * isBucketCost)
		}
		// cur now holds the completed section `sec`; share all sections.
		copy(all[sec*secw:(sec+1)*secw], cur)
		for q := 0; q < r.N; q++ {
			owner := (q + r.N - 1) % r.N // rank holding completed section q
			if owner == r.ID {
				blk := r.Bcast(owner, all[q*secw:(q+1)*secw])
				copy(all[q*secw:(q+1)*secw], blk)
			} else {
				blk := r.Bcast(owner, nil)
				copy(all[q*secw:(q+1)*secw], blk)
			}
		}

		prefix := make([]float64, nb)
		run := 0.0
		for t := 0; t < nb; t++ {
			prefix[t] = run
			run += all[t]
		}
		for t := 0; t < kp; t++ {
			ranks[t] = prefix[isKey(r.ID*kp+t, nb)]
		}
		r.Advance(time.Duration(kp)*isKeyCost + time.Duration(nb)*isBucketCost)
	}

	if !verify {
		return 0
	}
	sum := ChecksumSlice(ranks, r.ID*kp)
	parts := r.Gather(0, []float64{sum})
	if parts == nil {
		return 0
	}
	total := 0.0
	for _, p := range parts {
		total += p[0]
	}
	return total
}
