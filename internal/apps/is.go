package apps

import (
	"time"

	"sdsm/internal/ir"
	"sdsm/internal/mp"
	"sdsm/internal/rsd"
)

// Costs calibrated against Table 1's large set (IS 2^23/2^19: 91.2 s over
// 10 repetitions with ~2N key operations per repetition gives ~540 ns per
// key operation; the paper's small set is super-linearly faster, which a
// linear model does not capture — see EXPERIMENTS.md).
const (
	isKeyCost    = 540 * time.Nanosecond
	isBucketCost = 100 * time.Nanosecond
)

// isKey generates the deterministic key for global slot g (keys are in
// [0, buckets)); slots are block-partitioned, so slot g belongs to the
// processor whose [p·keys/n, (p+1)·keys/n) block contains it.
func isKey(g, buckets int) int {
	x := uint64(g)*2654435761 + 12345
	x ^= x >> 13
	x *= 1099511628211
	x ^= x >> 7
	return int(x % uint64(buckets))
}

// IS builds the NAS Integer Sort: processors count keys into private
// buckets, merge them into shared buckets section by section under
// staggered locks (the data is migratory), and rank their keys from the
// summed buckets after a barrier. The indirect access to the key array
// keeps XHPF from parallelizing it; the compiler still optimizes the lock
// phases (READ&WRITE_ALL on the bucket sections) and the ranking read —
// the paper's example of partial analysis being beneficial.
//
// Keys and bucket sections are block-partitioned with exact bounds
// (p·m/n .. (p+1)·m/n), so processor counts that do not divide the key or
// bucket count distribute the remainders instead of truncating them: the
// parallel program computes the sequential problem at every processor
// count, and results are comparable to the sequential reference — and
// identical across backends — everywhere. At dividing counts the bounds
// reduce to the historical m/n blocks, leaving the paper tables unchanged.
func IS() *App {
	return &App{
		Name:  "is",
		Build: isProg,
		Sets: map[DataSet]rsd.Env{
			Large: {"keys": 1 << 16, "buckets": 1 << 15, "iters": 4, "cscale": 8},
			Small: {"keys": 1 << 14, "buckets": 1 << 13, "iters": 4, "cscale": 16},
		},
		PaperSets: map[DataSet]rsd.Env{
			Large: {"keys": 1 << 23, "buckets": 1 << 19, "iters": 10},
			Small: {"keys": 1 << 20, "buckets": 1 << 15, "iters": 10},
		},
		CheckArray:      "ranks",
		WSyncApplicable: true,
		WSyncProfitable: false, // merging made IS worse (page-list scan overhead)
		PushApplicable:  false, // the compiler cannot know who held the lock last
		XHPF:            false, // indirect access to the main array
		MP:              isMP,
	}
}

func isProg(nprocs int) *ir.Program {
	b := v("b")
	prog := &ir.Program{
		Name: "is",
		Arrays: []ir.ArrayDecl{
			{Name: "buckets", Dims: []rsd.Lin{v("buckets")}},
			{Name: "priv", Dims: []rsd.Lin{v("buckets"), c(nprocs)}},
			{Name: "ranks", Dims: []rsd.Lin{v("keys")}},
		},
		Params: []rsd.Sym{"keys", "buckets", "iters"},
		Derived: []ir.DerivedParam{
			{Name: "pcol", Fn: func(e rsd.Env) int { return e["p"] + 1 }},
			// Exact block bounds of the owned keys (1-based, inclusive).
			{Name: "klo", Fn: func(e rsd.Env) int { return blockLow(e["keys"], e["p"], e["nprocs"]) }},
			{Name: "khi", Fn: func(e rsd.Env) int { return blockHigh(e["keys"], e["p"], e["nprocs"]) }},
		},
	}

	countKernel := ir.Kernel{
		Name: "count",
		Accesses: []ir.TaggedSection{{
			Sec: rsd.Section{Array: "priv", Dims: []rsd.Bound{
				rsd.Dense(c(1), v("buckets")),
				rsd.Dense(v("pcol"), v("pcol")),
			}},
			Tag:   rsd.Write | rsd.WriteFirst,
			Exact: true,
		}},
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			nb, klo, khi, p := e["buckets"], e["klo"], e["khi"], e["p"]
			lo := ctx.Addr("priv", 1, p+1)
			data := ctx.WriteRegion(lo, lo+nb)
			for t := lo; t < lo+nb; t++ {
				data[t] = 0
			}
			for g := klo - 1; g <= khi-1; g++ {
				data[lo+isKey(g, nb)]++
			}
			ctx.Charge(time.Duration(khi-klo+1)*isKeyCost + time.Duration(nb)*isBucketCost/4)
		},
	}

	addFn := func(s []float64) float64 { return s[0] + s[1] }
	zeroFn := func([]float64) float64 { return 0 }

	// Each processor clears its own section of the shared buckets; the
	// barrier that follows makes the staggered accumulation order-free.
	zeroOwn := []ir.Stmt{
		ir.Compute{Sym: "blo0", Fn: func(e rsd.Env) int { return blockLow(e["buckets"], e["p"], e["nprocs"]) }},
		ir.Compute{Sym: "bhi0", Fn: func(e rsd.Env) int { return blockHigh(e["buckets"], e["p"], e["nprocs"]) }},
		ir.LockAcquire{ID: v("p")},
		ir.Loop{Var: "b", Lo: v("blo0"), Hi: v("bhi0"), Body: []ir.Stmt{
			ir.Assign{LHS: ir.At("buckets", b), Fn: zeroFn, Cost: isBucketCost / 4},
		}},
		ir.LockRelease{ID: v("p")},
		ir.Barrier{ID: 3},
	}

	// Staggered visits to the sections (own first): accumulate under locks;
	// the bucket data is migratory.
	stagger := ir.Loop{Var: "s", Lo: c(0), Hi: v("nprocs").Plus(-1), Body: []ir.Stmt{
		ir.Compute{Sym: "sec", Fn: func(e rsd.Env) int { return (e["p"] + e["s"]) % e["nprocs"] }},
		ir.Compute{Sym: "blo", Fn: func(e rsd.Env) int { return blockLow(e["buckets"], e["sec"], e["nprocs"]) }},
		ir.Compute{Sym: "bhi", Fn: func(e rsd.Env) int { return blockHigh(e["buckets"], e["sec"], e["nprocs"]) }},
		ir.LockAcquire{ID: v("sec")},
		ir.Loop{Var: "b", Lo: v("blo"), Hi: v("bhi"), Body: []ir.Stmt{
			ir.Assign{LHS: ir.At("buckets", b), RHS: []ir.Ref{ir.At("buckets", b), ir.At("priv", b, v("pcol"))}, Fn: addFn, Cost: isBucketCost},
		}},
		ir.LockRelease{ID: v("sec")},
	}}

	rankKernel := ir.Kernel{
		Name: "rank",
		Accesses: []ir.TaggedSection{
			{
				Sec:   rsd.Section{Array: "buckets", Dims: []rsd.Bound{rsd.Dense(c(1), v("buckets"))}},
				Tag:   rsd.Read,
				Exact: true,
			},
			{
				Sec: rsd.Section{Array: "ranks", Dims: []rsd.Bound{
					rsd.Dense(v("klo"), v("khi")),
				}},
				Tag:   rsd.Write | rsd.WriteFirst,
				Exact: true,
			},
		},
		Run: func(ctx ir.KernelCtx) {
			e := ctx.Env()
			nb, klo, khi := e["buckets"], e["klo"], e["khi"]
			blo := ctx.Addr("buckets", 1)
			bdata := ctx.ReadRegion(blo, blo+nb)
			// Prefix sums: rank of a key k is the number of keys < k.
			prefix := make([]float64, nb)
			run := 0.0
			for t := 0; t < nb; t++ {
				prefix[t] = run
				run += bdata[blo+t]
			}
			rlo := ctx.Addr("ranks", klo)
			rdata := ctx.WriteRegion(rlo, rlo+khi-klo+1)
			for g := klo - 1; g <= khi-1; g++ {
				rdata[rlo+g-(klo-1)] = prefix[isKey(g, nb)]
			}
			ctx.Charge(time.Duration(khi-klo+1)*isKeyCost + time.Duration(nb)*isBucketCost)
		},
	}

	var iter []ir.Stmt
	iter = append(iter, countKernel)
	iter = append(iter, zeroOwn...)
	iter = append(iter, stagger, ir.Barrier{ID: 1}, rankKernel, ir.Barrier{ID: 2})

	prog.Body = []ir.Stmt{
		ir.Barrier{ID: 0},
		ir.Loop{Var: "it", Lo: c(1), Hi: v("iters"), Body: iter},
	}
	return prog
}

// isMP is the hand-coded message-passing IS. It reproduces the pipelined
// structure the paper credits for PVMe's edge: partial section sums flow
// around a ring (each processor adds its private counts and forwards), so
// the transfer to the next processor is pipelined; afterwards each final
// section is broadcast for ranking.
func isMP(r *mp.Rank, params rsd.Env, perIter time.Duration, verify bool) float64 {
	nb, keys, iters := params["buckets"], params["keys"], params["iters"]
	// Exact block partitions (0-based, half-open) of keys and bucket
	// sections; at dividing counts they reduce to the historical keys/N and
	// buckets/N blocks.
	klo := r.ID * keys / r.N
	khi := (r.ID + 1) * keys / r.N
	kp := khi - klo
	secLo := func(s int) int { return s * nb / r.N }
	secHi := func(s int) int { return (s + 1) * nb / r.N }
	priv := make([]float64, nb)
	all := make([]float64, nb)
	ranks := make([]float64, kp)

	for it := 0; it < iters; it++ {
		if perIter > 0 {
			r.AdvanceFixed(perIter)
		}
		for t := range priv {
			priv[t] = 0
		}
		for g := klo; g < khi; g++ {
			priv[isKey(g, nb)]++
		}
		r.Advance(time.Duration(kp)*isKeyCost + time.Duration(nb)*isBucketCost/4)

		// Ring pipeline: section s is completed at rank (s+N-1) mod N after
		// passing through all ranks starting at rank s.
		next := (r.ID + 1) % r.N
		prev := (r.ID - 1 + r.N) % r.N
		// Start own section.
		sec := r.ID
		cur := append([]float64(nil), priv[secLo(sec):secHi(sec)]...)
		for hop := 0; hop < r.N-1; hop++ {
			r.Send(next, cur)
			in := r.Recv(prev)
			sec = (sec - 1 + r.N) % r.N
			cur = in
			for t := secLo(sec); t < secHi(sec); t++ {
				cur[t-secLo(sec)] += priv[t]
			}
			r.Advance(time.Duration(secHi(sec)-secLo(sec)) * isBucketCost)
		}
		// cur now holds the completed section `sec`; share all sections.
		copy(all[secLo(sec):secHi(sec)], cur)
		for q := 0; q < r.N; q++ {
			owner := (q + r.N - 1) % r.N // rank holding completed section q
			if owner == r.ID {
				blk := r.Bcast(owner, all[secLo(q):secHi(q)])
				copy(all[secLo(q):secHi(q)], blk)
			} else {
				blk := r.Bcast(owner, nil)
				copy(all[secLo(q):secHi(q)], blk)
			}
		}

		prefix := make([]float64, nb)
		run := 0.0
		for t := 0; t < nb; t++ {
			prefix[t] = run
			run += all[t]
		}
		for g := klo; g < khi; g++ {
			ranks[g-klo] = prefix[isKey(g, nb)]
		}
		r.Advance(time.Duration(kp)*isKeyCost + time.Duration(nb)*isBucketCost)
	}

	if !verify {
		return 0
	}
	sum := ChecksumSlice(ranks, klo)
	parts := r.Gather(0, []float64{sum})
	if parts == nil {
		return 0
	}
	total := 0.0
	for _, p := range parts {
		total += p[0]
	}
	return total
}
