package compiler

import (
	"fmt"

	"sdsm/internal/ir"
	"sdsm/internal/rsd"
	"sdsm/internal/shm"
)

// Options selects which transformations are enabled, matching the
// optimization levels of the paper's Figure 6, plus the fetch mode of
// Figure 7.
type Options struct {
	NProcs int
	Params rsd.Env

	// Aggregate inserts Validate calls (communication aggregation).
	Aggregate bool
	// ConsElim enables the consistency-disabling access types WRITE_ALL
	// and READ&WRITE_ALL where analysis is exact.
	ConsElim bool
	// SyncMerge converts Validates at synchronization statements into
	// Validate_w_sync (merging data movement with synchronization).
	SyncMerge bool
	// Push replaces qualifying barriers with point-to-point exchanges.
	Push bool
	// Async requests asynchronous data fetching for inserted Validates.
	Async bool
}

// Levels returns the cumulative option sets used for the Figure 6 sweep.
func Levels(n int, params rsd.Env, async bool) []Options {
	base := Options{NProcs: n, Params: params, Async: async}
	l1 := base
	l1.Aggregate = true
	l2 := l1
	l2.ConsElim = true
	l3 := l2
	l3.SyncMerge = true
	l4 := l3
	l4.Push = true
	return []Options{base, l1, l2, l3, l4}
}

// Report records what the transformation did, for tests and the
// sdsm-compile tool.
type Report struct {
	Validates []string
	WSyncs    []string
	Pushes    []string
	Skipped   []string
}

func (r *Report) String() string {
	out := ""
	for _, v := range r.Validates {
		out += "validate  " + v + "\n"
	}
	for _, v := range r.WSyncs {
		out += "w_sync    " + v + "\n"
	}
	for _, v := range r.Pushes {
		out += "push      " + v + "\n"
	}
	for _, v := range r.Skipped {
		out += "skipped   " + v + "\n"
	}
	return out
}

// Compile applies the Section 4.2 transformation rules and returns the
// transformed program (the input is not modified) plus a report.
func Compile(prog *ir.Program, opts Options) (*ir.Program, *Report) {
	c := &compilation{prog: prog, opts: opts, layout: BuildLayout(prog, opts.Params), rep: &Report{}}
	c.computes = collectComputes(prog.Body)
	out := *prog
	out.Body = c.transformBody(prog.Body, false)
	return &out, c.rep
}

// collectComputes gathers Compute statements in program order so section
// evaluation during contiguity checks can bind their symbols.
func collectComputes(stmts []ir.Stmt) []ir.Compute {
	var out []ir.Compute
	var walk func([]ir.Stmt)
	walk = func(body []ir.Stmt) {
		for _, st := range body {
			switch st := st.(type) {
			case ir.Compute:
				out = append(out, st)
			case ir.Loop:
				walk(st.Body)
			case ir.If:
				walk(st.Then)
				walk(st.Else)
			}
		}
	}
	walk(stmts)
	return out
}

// BuildLayout allocates the program's arrays for the given parameters.
func BuildLayout(prog *ir.Program, params rsd.Env) *shm.Layout {
	l := shm.NewLayout()
	env := rsd.Env{}
	for k, v := range params {
		env[k] = v
	}
	for _, a := range prog.Arrays {
		dims := make([]int, len(a.Dims))
		for i, d := range a.Dims {
			dims[i] = d.Eval(env)
		}
		l.Alloc(a.Name, dims...)
	}
	return l
}

type compilation struct {
	prog   *ir.Program
	opts   Options
	layout *shm.Layout
	rep    *Report
	// enclosing tracks induction variables of sync-carrying loops the
	// transformation has descended into; sections may reference them.
	enclosing []loopVar
	// computes are the program's Compute bindings in program order, needed
	// to evaluate sections that reference runtime-computed symbols.
	computes []ir.Compute
}

type loopVar struct {
	name   rsd.Sym
	lo, hi rsd.Lin
}

// element is one entry of a segmented statement list: either a fetch
// point or a maximal fetch-point-free segment.
type element struct {
	fetch ir.Stmt   // non-nil for fetch points
	seg   []ir.Stmt // non-nil for segments
}

// isFetchPoint reports whether st delimits analysis regions.
func isFetchPoint(st ir.Stmt) bool {
	switch st := st.(type) {
	case ir.Barrier, ir.LockAcquire, ir.LockRelease, ir.CallBoundary, ir.If, ir.PushStmt:
		return true
	case ir.Loop:
		return containsFetch(st.Body)
	}
	return false
}

func containsFetch(stmts []ir.Stmt) bool {
	for _, st := range stmts {
		if isFetchPoint(st) {
			return true
		}
	}
	return false
}

// segment splits a body into alternating fetch points and segments.
func segment(body []ir.Stmt) []element {
	var out []element
	var cur []ir.Stmt
	flush := func() {
		if len(cur) > 0 {
			out = append(out, element{seg: cur})
			cur = nil
		}
	}
	for _, st := range body {
		if isFetchPoint(st) {
			flush()
			out = append(out, element{fetch: st})
		} else {
			cur = append(cur, st)
		}
	}
	flush()
	return out
}

// transformBody segments and rewrites one statement list. cyclic is true
// for the bodies of loops (regions wrap around the back edge).
func (c *compilation) transformBody(body []ir.Stmt, cyclic bool) []ir.Stmt {
	els := segment(body)
	if len(els) == 0 {
		return nil
	}

	// Recurse into compound fetch points first.
	for i, el := range els {
		switch st := el.fetch.(type) {
		case ir.Loop:
			c.enclosing = append(c.enclosing, loopVar{name: st.Var, lo: st.Lo, hi: st.Hi})
			st.Body = c.transformBody(st.Body, true)
			c.enclosing = c.enclosing[:len(c.enclosing)-1]
			els[i].fetch = st
		case ir.If:
			st.Then = c.branchWithValidates(st.Then)
			st.Else = c.branchWithValidates(st.Else)
			els[i].fetch = st
		}
	}

	type insertion struct {
		before []ir.Stmt // Validate_w_sync registrations
		after  []ir.Stmt // Validates
		push   *ir.PushStmt
	}
	ins := make([]insertion, len(els))

	next := func(i int) (int, bool) {
		if i+1 < len(els) {
			return i + 1, true
		}
		if cyclic {
			return 0, true
		}
		return -1, false
	}
	prev := func(i int) (int, bool) {
		if i > 0 {
			return i - 1, true
		}
		if cyclic {
			return len(els) - 1, true
		}
		return -1, false
	}

	totalBars := 0
	for _, el := range els {
		if _, isBar := el.fetch.(ir.Barrier); isBar {
			totalBars++
		}
	}
	replacedBars := 0
	for i, el := range els {
		if el.fetch == nil {
			continue
		}
		if _, isLoop := el.fetch.(ir.Loop); isLoop {
			continue // handled recursively
		}
		// The region this fetch point covers: the following segment.
		var after Summary
		if j, ok := next(i); ok && els[j].seg != nil {
			after = Summarize(c.prog, els[j].seg)
		}
		// Push rule: only barriers, preceded by a segment whose preceding
		// fetch point is a barrier, succeeded (after the region) by a
		// barrier distinct from this one. A global synchronization must
		// survive in the cycle ("a barrier is needed later to restore
		// release consistency"), and the exchange must actually move data
		// between processors.
		if bar, isBar := el.fetch.(ir.Barrier); isBar && c.opts.Push && cyclic {
			switch push, desc := c.tryPush(els, i, bar, after, prev, next); {
			case push == nil:
				if desc != "" {
					c.rep.Skipped = append(c.rep.Skipped, desc)
				}
			case replacedBars >= totalBars-1:
				c.rep.Skipped = append(c.rep.Skipped,
					fmt.Sprintf("push at barrier %d: must keep one barrier for release consistency", bar.ID))
			case !c.pushUseful(push):
				c.rep.Skipped = append(c.rep.Skipped,
					fmt.Sprintf("push at barrier %d: no cross-processor data to exchange", bar.ID))
			default:
				ins[i].push = push
				replacedBars++
				c.rep.Pushes = append(c.rep.Pushes, desc)
				// Reads of the following region are delivered by the Push;
				// only its write-side Validates remain useful.
				after = writesOnly(after)
			}
		}
		before, afterStmts := c.validatesFor(el.fetch, after, ins[i].push != nil)
		ins[i].before = before
		ins[i].after = afterStmts
	}

	// Reassemble.
	var out []ir.Stmt
	for i, el := range els {
		if el.seg != nil {
			out = append(out, el.seg...)
			continue
		}
		out = append(out, ins[i].before...)
		if ins[i].push != nil {
			out = append(out, *ins[i].push)
		} else {
			out = append(out, el.fetch)
		}
		out = append(out, ins[i].after...)
	}
	return out
}

// branchWithValidates rewrites a conditional branch, inserting region
// Validates at its start (the paper: when a conditional limits the
// region, the Validate is inserted at the beginning of that region).
func (c *compilation) branchWithValidates(body []ir.Stmt) []ir.Stmt {
	if len(body) == 0 || !c.opts.Aggregate {
		return body
	}
	if containsFetch(body) {
		return c.transformBody(body, false)
	}
	sum := Summarize(c.prog, body)
	var vs []ir.Stmt
	for _, a := range sum.Accesses {
		if v, desc := c.plainValidate(a); v != nil {
			vs = append(vs, *v)
			c.rep.Validates = append(c.rep.Validates, desc+" (in branch)")
		}
	}
	return append(vs, body...)
}

// writesOnly strips read-only accesses from a summary.
func writesOnly(s Summary) Summary {
	var out []Access
	for _, a := range s.Accesses {
		if a.Tag.Has(rsd.Write) {
			out = append(out, a)
		}
	}
	return Summary{Accesses: out}
}

// validatesFor applies rules 2-4 of Section 4.2 for the region following
// fetch point f.
func (c *compilation) validatesFor(f ir.Stmt, after Summary, pushed bool) (before, afterStmts []ir.Stmt) {
	if !c.opts.Aggregate {
		return nil, nil
	}
	_, isBarrier := f.(ir.Barrier)
	_, isAcquire := f.(ir.LockAcquire)
	syncStmt := isBarrier || isAcquire

	// Accesses resolving to the same access type combine into a single
	// Validate call, so the run-time fetches all their sections in one
	// exchange per responder (communication aggregation across arrays).
	combined := map[ir.AccessType]*ir.ValidateStmt{}
	combinedW := map[ir.AccessType]*ir.ValidateStmt{}
	var beforeV, afterV []*ir.ValidateStmt
	emit := func(at ir.AccessType, wsync bool, sec rsd.Section) {
		m := combined
		if wsync {
			m = combinedW
		}
		v, ok := m[at]
		if !ok {
			v = &ir.ValidateStmt{At: at, WSync: wsync, Async: !wsync && c.opts.Async && at != ir.WriteAll}
			m[at] = v
			if wsync {
				beforeV = append(beforeV, v)
			} else {
				afterV = append(afterV, v)
			}
		}
		v.Secs = append(v.Secs, sec)
	}

	for _, a := range after.Accesses {
		// Rule 2: exact, contiguous, fully written sections disable
		// consistency maintenance.
		if c.opts.ConsElim && a.Exact && a.Tag.Has(rsd.Write) && c.contiguousForAll(a.Sec) {
			at := ir.ReadWriteAll
			if a.Tag.Has(rsd.WriteFirst) {
				at = ir.WriteAll
			}
			emit(at, false, a.Sec)
			c.rep.Validates = append(c.rep.Validates, fmt.Sprintf("%v %v after %s", a.Sec, at, stmtName(f)))
			continue
		}
		at := baseAccessType(a.Tag)
		// Rule 3: merge the fetch with the synchronization operation. The
		// paper notes it is sometimes better to insert a Validate after f
		// instead (Section 4.2); merging pays off for read-only sections
		// (broadcastable data), while write-containing sections would make
		// every processor scan large address ranges it never modified
		// (Section 3.3), so those keep the plain Validate.
		if c.opts.SyncMerge && syncStmt && !pushed && at == ir.Read {
			emit(at, true, a.Sec)
			c.rep.WSyncs = append(c.rep.WSyncs, fmt.Sprintf("%v %v before %s", a.Sec, at, stmtName(f)))
			continue
		}
		// Rule 4: plain Validate at the beginning of the region.
		emit(at, false, a.Sec)
		c.rep.Validates = append(c.rep.Validates, fmt.Sprintf("%v %v after %s", a.Sec, at, stmtName(f)))
	}
	for _, v := range beforeV {
		before = append(before, *v)
	}
	for _, v := range afterV {
		afterStmts = append(afterStmts, *v)
	}
	return before, afterStmts
}

// plainValidate builds a rule-4 Validate for one access (used inside
// conditional branches, where neither *_ALL nor wsync apply).
func (c *compilation) plainValidate(a Access) (*ir.ValidateStmt, string) {
	at := baseAccessType(a.Tag)
	v := &ir.ValidateStmt{At: at, Secs: []rsd.Section{a.Sec}, Async: c.opts.Async}
	return v, fmt.Sprintf("%v %v", a.Sec, at)
}

// baseAccessType maps tags onto the consistency-preserving access types.
func baseAccessType(t rsd.Tag) ir.AccessType {
	switch {
	case t.Has(rsd.Read) && t.Has(rsd.Write):
		return ir.ReadWrite
	case t.Has(rsd.Write):
		return ir.Write
	default:
		return ir.Read
	}
}

// tryPush checks the Section 4.2 Push conditions for barrier element i
// and builds the PushStmt.
func (c *compilation) tryPush(els []element, i int, bar ir.Barrier, after Summary,
	prev, next func(int) (int, bool)) (*ir.PushStmt, string) {

	fetchBefore := func(i int) (ir.Stmt, bool) {
		j, ok := prev(i)
		if !ok {
			return nil, false
		}
		if els[j].seg != nil {
			j2, ok := prev(j)
			if !ok {
				return nil, false
			}
			j = j2
		}
		if els[j].fetch == nil || j == i {
			return nil, false
		}
		return els[j].fetch, true
	}
	fetchAfter := func(i int) (ir.Stmt, bool) {
		j, ok := next(i)
		if !ok {
			return nil, false
		}
		if els[j].seg != nil {
			j2, ok := next(j)
			if !ok {
				return nil, false
			}
			j = j2
		}
		if els[j].fetch == nil || j == i {
			return nil, false
		}
		return els[j].fetch, true
	}

	pf, ok1 := fetchBefore(i)
	sf, ok2 := fetchAfter(i)
	if !ok1 || !ok2 {
		return nil, fmt.Sprintf("push at barrier %d: no surrounding fetch points", bar.ID)
	}
	if _, isBar := pf.(ir.Barrier); !isBar {
		return nil, fmt.Sprintf("push at barrier %d: preceding fetch point is not a barrier", bar.ID)
	}
	if _, isBar := sf.(ir.Barrier); !isBar {
		return nil, fmt.Sprintf("push at barrier %d: succeeding fetch point is not a barrier", bar.ID)
	}

	// Writes of the preceding region.
	var beforeSum Summary
	if j, ok := prev(i); ok && els[j].seg != nil {
		beforeSum = Summarize(c.prog, els[j].seg)
	}
	var writes, reads []rsd.Section
	for _, a := range beforeSum.Accesses {
		if !a.Tag.Has(rsd.Write) {
			continue
		}
		if !a.Exact {
			return nil, fmt.Sprintf("push at barrier %d: write section %v inexact", bar.ID, a.Sec)
		}
		writes = append(writes, a.Sec)
	}
	if len(writes) == 0 {
		return nil, fmt.Sprintf("push at barrier %d: preceding region writes nothing", bar.ID)
	}
	for _, a := range after.Accesses {
		if !a.Tag.Has(rsd.Read) {
			continue
		}
		if !a.Exact && !a.Tag.Has(rsd.Write) {
			// Reads may be over-approximated only by analyzable sections.
			return nil, fmt.Sprintf("push at barrier %d: read section %v unknown", bar.ID, a.Sec)
		}
		reads = append(reads, a.Sec)
	}
	push := &ir.PushStmt{ReplacedBarrier: bar.ID, Reads: reads, Writes: writes}
	return push, fmt.Sprintf("barrier %d replaced: writes %v, reads %v", bar.ID, writes, reads)
}

// pushUseful evaluates a candidate Push numerically and reports whether
// any processor would send data to another.
func (c *compilation) pushUseful(push *ir.PushStmt) bool {
	n := c.opts.NProcs
	reads := make([][]shm.Region, n)
	writes := make([][]shm.Region, n)
	for p := 0; p < n; p++ {
		env := c.prog.Env(c.opts.Params, p, n)
		for _, cp := range c.computes {
			env[cp.Sym] = cp.Fn(env)
		}
		for _, sec := range push.Reads {
			reads[p] = append(reads[p], sec.Eval(env).Regions(c.layout)...)
		}
		for _, sec := range push.Writes {
			writes[p] = append(writes[p], sec.Eval(env).Regions(c.layout)...)
		}
		reads[p] = shm.Normalize(reads[p])
		writes[p] = shm.Normalize(writes[p])
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && len(shm.IntersectSets(writes[i], reads[j])) > 0 {
				return true
			}
		}
	}
	return false
}

// contiguousForAll reports whether a section maps to one contiguous
// address range for every processor, sampling the end points of any
// enclosing sync-loop induction variables the section references.
func (c *compilation) contiguousForAll(sec rsd.Section) bool {
	for p := 0; p < c.opts.NProcs; p++ {
		env := c.prog.Env(c.opts.Params, p, c.opts.NProcs)
		if !c.contiguousSampled(sec, env, 0) {
			return false
		}
	}
	return true
}

func (c *compilation) contiguousSampled(sec rsd.Section, env rsd.Env, depth int) bool {
	if depth < len(c.enclosing) {
		lv := c.enclosing[depth]
		lo, hi := lv.lo.Eval(env), lv.hi.Eval(env)
		samples := []int{lo, (lo + hi) / 2, hi}
		for _, v := range samples {
			if v < lo || v > hi {
				continue
			}
			env[lv.name] = v
			if !c.contiguousSampled(sec, env, depth+1) {
				delete(env, lv.name)
				return false
			}
			delete(env, lv.name)
		}
		return true
	}
	for _, cp := range c.computes {
		env[cp.Sym] = cp.Fn(env)
	}
	cc := sec.Eval(env)
	for _, cp := range c.computes {
		delete(env, cp.Sym)
	}
	if cc.Empty() {
		return true
	}
	return cc.ContiguousIn(c.layout)
}

func stmtName(st ir.Stmt) string {
	switch st := st.(type) {
	case ir.Barrier:
		return fmt.Sprintf("barrier %d", st.ID)
	case ir.LockAcquire:
		return fmt.Sprintf("acquire %v", st.ID)
	case ir.LockRelease:
		return fmt.Sprintf("release %v", st.ID)
	case ir.CallBoundary:
		return "call " + st.Name
	case ir.If:
		return "if"
	}
	return fmt.Sprintf("%T", st)
}
