// Package compiler implements the paper's compile-time side: regular
// section access analysis over explicitly parallel programs (Section 4.1)
// and the source-to-source transformation that inserts augmented run-time
// calls — Validate, Validate_w_sync, Push — per the rules of Section 4.2.
//
// Like the paper's implementation, the analysis handles subscripts that
// depend on at most one induction variable, does not see through opaque
// conditionals or unanalyzed calls (which become fetch points), and
// summarizes accesses as bounded regular sections with read / write /
// write-first tags.
package compiler

import (
	"fmt"

	"sdsm/internal/ir"
	"sdsm/internal/rsd"
)

// Access is one summarized section with its tags.
type Access struct {
	Sec rsd.Section
	Tag rsd.Tag
	// Exact is true when the section is a faithful representation of the
	// accessed data: affine subscripts, no conditionals, and (for writes)
	// no holes introduced by bounding-box unions.
	Exact bool
}

func (a Access) String() string {
	ex := ""
	if !a.Exact {
		ex = " (inexact)"
	}
	return fmt.Sprintf("%v %v%s", a.Sec, a.Tag, ex)
}

// Summary is the access summary of one analysis region (the code between
// two consecutive fetch points).
type Summary struct {
	Accesses []Access
}

// varBound records the range of an induction variable enclosing a
// statement, relative to the region being summarized.
type varBound struct {
	lo, hi rsd.Lin
	step   int
}

// summarizer accumulates accesses while walking a region.
type summarizer struct {
	prog   *ir.Program
	bounds map[rsd.Sym]varBound // loop variables opened inside the region
	order  []rsd.Sym
	writes []Access // write sections seen so far, for write-first analysis
	out    []Access
}

// Summarize computes the access summary of a region (a fetch-point-free
// statement list). Loop variables bound outside the region (for example
// the induction variable of a lock-carrying loop) stay symbolic in the
// resulting sections.
func Summarize(prog *ir.Program, region []ir.Stmt) Summary {
	s := &summarizer{prog: prog, bounds: map[rsd.Sym]varBound{}}
	s.walk(region, true)
	// A section that is written but never read (reads covered by earlier
	// writes in the region were dropped) acquires write-first.
	for i := range s.out {
		a := &s.out[i]
		if a.Tag.Has(rsd.Write) && !a.Tag.Has(rsd.Read) {
			a.Tag |= rsd.WriteFirst
		}
	}
	return Summary{Accesses: s.out}
}

func (s *summarizer) walk(stmts []ir.Stmt, exact bool) {
	for _, st := range stmts {
		switch st := st.(type) {
		case ir.Loop:
			s.bounds[st.Var] = varBound{lo: st.Lo, hi: st.Hi, step: st.StepOr1()}
			s.order = append(s.order, st.Var)
			s.walk(st.Body, exact)
			delete(s.bounds, st.Var)
			s.order = s.order[:len(s.order)-1]
		case ir.Compute:
			// Binds an opaque symbol; contributes no accesses. Sections
			// referencing it stay symbolic.
		case ir.Assign:
			for _, ref := range st.RHS {
				s.addRef(ref, rsd.Read, exact)
			}
			s.addRef(st.LHS, rsd.Write, exact)
		case ir.Kernel:
			for _, ts := range st.Accesses {
				s.add(Access{Sec: ts.Sec, Tag: ts.Tag, Exact: ts.Exact && exact})
			}
		case ir.If:
			// Everything under an opaque conditional is inexact.
			s.walk(st.Then, false)
			s.walk(st.Else, false)
		case ir.ValidateStmt, ir.PushStmt:
			// Already-inserted run-time calls contribute no accesses.
		default:
			panic(fmt.Sprintf("compiler: fetch point %T inside region", st))
		}
	}
}

// addRef converts an array reference under the current loop bounds into a
// section and records it.
func (s *summarizer) addRef(ref ir.Ref, tag rsd.Tag, exact bool) {
	sec, ok := s.refSection(ref)
	if !ok {
		// Unanalyzable subscript: conservative whole-array section.
		sec = s.wholeArray(ref.Array)
		exact = false
	}
	if tag == rsd.Read {
		// Reaching-writes check: a read covered by an earlier write in the
		// same region does not read stale data (Section 4.1 step 2d).
		for _, w := range s.writes {
			if covers(w.Sec, sec) {
				return
			}
		}
	}
	acc := Access{Sec: sec, Tag: tag, Exact: exact}
	if tag == rsd.Write {
		s.writes = append(s.writes, acc)
	}
	s.add(acc)
}

// refSection builds the regular section a reference touches across the
// region's loop bounds. Subscripts may depend on at most one region-bound
// induction variable (the paper's limitation).
func (s *summarizer) refSection(ref ir.Ref) (rsd.Section, bool) {
	sec := rsd.Section{Array: ref.Array, Dims: make([]rsd.Bound, len(ref.Idx))}
	for d, idx := range ref.Idx {
		var ivs []rsd.Sym
		for _, sym := range idx.FreeSyms() {
			if _, ok := s.bounds[sym]; ok {
				ivs = append(ivs, sym)
			}
		}
		switch len(ivs) {
		case 0:
			sec.Dims[d] = rsd.Bound{Lo: idx, Hi: idx, Stride: 1}
		case 1:
			v := ivs[0]
			c := idx.T[v]
			b := s.bounds[v]
			lo := idx.Subst(v, b.lo)
			hi := idx.Subst(v, b.hi)
			stride := c * b.step
			if stride < 0 {
				stride = -stride
				lo, hi = hi, lo
			}
			sec.Dims[d] = rsd.Bound{Lo: lo, Hi: hi, Stride: stride}
		default:
			return rsd.Section{}, false
		}
	}
	return sec, true
}

func (s *summarizer) wholeArray(name string) rsd.Section {
	for _, a := range s.prog.Arrays {
		if a.Name == name {
			sec := rsd.Section{Array: name, Dims: make([]rsd.Bound, len(a.Dims))}
			for d, dim := range a.Dims {
				sec.Dims[d] = rsd.Bound{Lo: rsd.Const(1), Hi: dim, Stride: 1}
			}
			return sec
		}
	}
	panic("compiler: unknown array " + name)
}

// add merges the access into the summary: identical sections merge tags;
// same-array sections merge by bounding box (regular section union). A
// box that over-approximates is harmless for reads (an upper bound on the
// data to fetch) but disqualifies writes from exactness.
func (s *summarizer) add(a Access) {
	for i := range s.out {
		o := &s.out[i]
		if o.Sec.Array != a.Sec.Array {
			continue
		}
		if o.Sec.Equal(a.Sec) {
			o.Tag = mergeTags(o.Tag, a.Tag)
			o.Exact = o.Exact && a.Exact
			return
		}
		if u, ok := o.Sec.Union(a.Sec); ok {
			lossy := !covers(o.Sec, a.Sec) && !covers(a.Sec, o.Sec) && !adjacentOneDim(o.Sec, a.Sec)
			tag := mergeTags(o.Tag, a.Tag)
			exact := o.Exact && a.Exact
			if lossy && tag.Has(rsd.Write) {
				exact = false
			}
			o.Sec = u
			o.Tag = tag
			o.Exact = exact
			return
		}
	}
	s.out = append(s.out, a)
}

// mergeTags combines tags; write-first survives only if every write-tagged
// constituent had it.
func mergeTags(a, b rsd.Tag) rsd.Tag {
	t := (a | b) &^ rsd.WriteFirst
	aw, bw := a.Has(rsd.Write), b.Has(rsd.Write)
	awf, bwf := a.Has(rsd.WriteFirst), b.Has(rsd.WriteFirst)
	switch {
	case aw && bw:
		if awf && bwf {
			t |= rsd.WriteFirst
		}
	case aw:
		if awf {
			t |= rsd.WriteFirst
		}
	case bw:
		if bwf {
			t |= rsd.WriteFirst
		}
	}
	return t
}

// covers reports whether symbolically w contains r (dimension-wise, with
// compatible strides).
func covers(w, r rsd.Section) bool {
	if w.Array != r.Array || len(w.Dims) != len(r.Dims) {
		return false
	}
	for d := range w.Dims {
		wd, rd := w.Dims[d], r.Dims[d]
		if wd.Stride != 1 && (wd.Stride != rd.Stride || !wd.Lo.Equal(rd.Lo)) {
			return false
		}
		if dlo, ok := wd.Lo.DiffConst(rd.Lo); !ok || dlo > 0 {
			return false
		}
		if dhi, ok := rd.Hi.DiffConst(wd.Hi); !ok || dhi > 0 {
			return false
		}
	}
	return true
}

// adjacentOneDim reports whether two sections differ in exactly one
// dimension and overlap or touch there, so their bounding box is exact.
func adjacentOneDim(a, b rsd.Section) bool {
	if a.Array != b.Array || len(a.Dims) != len(b.Dims) {
		return false
	}
	diff := -1
	for d := range a.Dims {
		if a.Dims[d].Stride != b.Dims[d].Stride {
			return false
		}
		if a.Dims[d].Lo.Equal(b.Dims[d].Lo) && a.Dims[d].Hi.Equal(b.Dims[d].Hi) {
			continue
		}
		if diff != -1 {
			return false
		}
		diff = d
	}
	if diff == -1 {
		return true
	}
	ad, bd := a.Dims[diff], b.Dims[diff]
	if ad.Stride != 1 {
		return false
	}
	// Overlap or adjacency: lo2 <= hi1+1 and lo1 <= hi2+1, decided
	// symbolically.
	d1, ok1 := bd.Lo.Sub(ad.Hi).IsConst()
	d2, ok2 := ad.Lo.Sub(bd.Hi).IsConst()
	if !ok1 || !ok2 {
		return false
	}
	return d1 <= 1 && d2 <= 1
}
