package compiler_test

import (
	"strings"
	"testing"

	"sdsm/internal/apps"
	"sdsm/internal/compiler"
	"sdsm/internal/ir"
	"sdsm/internal/rsd"
)

func opts(n int, params rsd.Env) compiler.Options {
	return compiler.Options{NProcs: n, Params: params, Aggregate: true, ConsElim: true, SyncMerge: true, Push: true, Async: true}
}

// TestJacobiTransformMatchesFigure2 checks the paper's worked example: the
// compiler must insert a WRITE_ALL Validate for b's copy-phase section and
// replace Barrier 2 with a Push exchanging boundary columns.
func TestJacobiTransformMatchesFigure2(t *testing.T) {
	a, _ := apps.ByName("jacobi")
	prog := a.Build(8)
	params := prog.Prepare(rsd.Env{"m": 512, "iters": 4}, 8)
	_, rep := compiler.Compile(prog, opts(8, params))
	text := rep.String()

	if !strings.Contains(text, "b[1:m, begin:end] WRITE_ALL after barrier 1") {
		t.Errorf("missing WRITE_ALL validate for b; report:\n%s", text)
	}
	if !strings.Contains(text, "barrier 2 replaced") {
		t.Errorf("Barrier 2 not replaced by Push; report:\n%s", text)
	}
	if !strings.Contains(text, "reads [b[1:m, begin-1:end+1]]") {
		t.Errorf("Push read section should be b[1:m, begin-1:end+1]; report:\n%s", text)
	}
	if !strings.Contains(text, "writes [b[1:m, begin:end]]") {
		t.Errorf("Push write section should be b[1:m, begin:end]; report:\n%s", text)
	}
	// Barrier 1 must survive: a global synchronization is needed to
	// restore release consistency.
	if strings.Contains(text, "barrier 1 replaced") {
		t.Errorf("Barrier 1 must not be replaced; report:\n%s", text)
	}
}

// TestJacobiSummary checks the Section 4.3 access analysis result for the
// first Jacobi loop nest.
func TestJacobiSummary(t *testing.T) {
	a, _ := apps.ByName("jacobi")
	prog := a.Build(8)
	// Find the time loop and its first segment (the stencil nest).
	loop := prog.Body[2].(ir.Loop)
	sum := compiler.Summarize(prog, loop.Body[:1])
	var readB, writeA *compiler.Access
	for i := range sum.Accesses {
		acc := &sum.Accesses[i]
		switch acc.Sec.Array {
		case "b":
			readB = acc
		case "a":
			writeA = acc
		}
	}
	if readB == nil || !readB.Tag.Has(rsd.Read) || readB.Tag.Has(rsd.Write) {
		t.Fatalf("b access wrong: %+v", readB)
	}
	if got := readB.Sec.String(); got != "b[1:m, begin-1:end+1]" {
		t.Errorf("b section = %s, want b[1:m, begin-1:end+1] (paper Section 4.3)", got)
	}
	if writeA == nil || !writeA.Tag.Has(rsd.Write) || !writeA.Tag.Has(rsd.WriteFirst) {
		t.Fatalf("a must be {write, write-first}: %+v", writeA)
	}
}

// TestCopyPhaseWriteFirst: the copy loop writes b without reading it, so
// the summary must be {write, write-first} over full columns.
func TestCopyPhaseWriteFirst(t *testing.T) {
	a, _ := apps.ByName("jacobi")
	prog := a.Build(8)
	loop := prog.Body[2].(ir.Loop)
	sum := compiler.Summarize(prog, loop.Body[2:3])
	for _, acc := range sum.Accesses {
		if acc.Sec.Array == "b" {
			if !acc.Tag.Has(rsd.WriteFirst) {
				t.Fatalf("b copy section lacks write-first: %v", acc)
			}
			if !acc.Exact {
				t.Fatalf("b copy section must be exact: %v", acc)
			}
			return
		}
	}
	t.Fatal("no b access found")
}

// TestGaussBlockedFromPush: the opaque owner conditional must keep Gauss
// from qualifying for Push while leaving the pivot-column read analyzable
// for Validate_w_sync.
func TestGaussBlockedFromPush(t *testing.T) {
	a, _ := apps.ByName("gauss")
	prog := a.Build(8)
	params := prog.Prepare(rsd.Env{"m": 128, "mpad": 512}, 8)
	_, rep := compiler.Compile(prog, opts(8, params))
	if len(rep.Pushes) != 0 {
		t.Errorf("Gauss must not get Push: %v", rep.Pushes)
	}
	found := false
	for _, w := range rep.WSyncs {
		if strings.Contains(w, "A[k+1:m, k:k] READ") {
			found = true
		}
	}
	if !found {
		t.Errorf("pivot column read should be merged with the barrier; report:\n%s", rep)
	}
}

// TestShallowBlockedByCallBoundaries: only aggregation and consistency
// elimination apply; no wsync, no push.
func TestShallowBlockedByCallBoundaries(t *testing.T) {
	a, _ := apps.ByName("shallow")
	prog := a.Build(8)
	params := prog.Prepare(rsd.Env{"m": 512, "mc": 64, "iters": 2}, 8)
	_, rep := compiler.Compile(prog, opts(8, params))
	if len(rep.Pushes) != 0 {
		t.Errorf("Shallow must not get Push: %v", rep.Pushes)
	}
	if len(rep.WSyncs) != 0 {
		t.Errorf("Shallow must not get Validate_w_sync (call boundaries): %v", rep.WSyncs)
	}
	if len(rep.Validates) == 0 {
		t.Error("Shallow should still get plain Validates per phase")
	}
}

// TestISGetsReadWriteAll: the bucket sections under locks must become
// READ&WRITE_ALL (and WRITE_ALL for the zero phase), the paper's example
// of partial analysis.
func TestISGetsReadWriteAll(t *testing.T) {
	a, _ := apps.ByName("is")
	prog := a.Build(8)
	params := prog.Prepare(rsd.Env{"keys": 1 << 14, "buckets": 1 << 13, "iters": 1}, 8)
	_, rep := compiler.Compile(prog, opts(8, params))
	text := rep.String()
	if !strings.Contains(text, "READ&WRITE_ALL") {
		t.Errorf("IS bucket accumulation should get READ&WRITE_ALL:\n%s", text)
	}
	if !strings.Contains(text, "buckets[blo0:bhi0] WRITE_ALL") {
		t.Errorf("IS zero phase should get WRITE_ALL:\n%s", text)
	}
	if len(rep.Pushes) != 0 {
		t.Errorf("IS must not get Push: %v", rep.Pushes)
	}
}

// TestFFTPushOnTransposeBarriers: exactly the two transpose barriers are
// replaced; the others survive (no data crosses processors there).
func TestFFTPushOnTransposeBarriers(t *testing.T) {
	a, _ := apps.ByName("fft")
	prog := a.Build(8)
	params := prog.Prepare(rsd.Env{"nx": 16, "ny": 32, "nz": 16, "iters": 2}, 8)
	_, rep := compiler.Compile(prog, opts(8, params))
	if len(rep.Pushes) != 2 {
		t.Fatalf("FFT should push exactly the two transpose barriers, got %d:\n%s", len(rep.Pushes), rep)
	}
	skipped := strings.Join(rep.Skipped, "\n")
	if !strings.Contains(skipped, "no cross-processor data") {
		t.Errorf("the local barriers should be skipped as useless pushes:\n%s", skipped)
	}
}

// TestLevelGating: disabling options removes the corresponding calls.
func TestLevelGating(t *testing.T) {
	a, _ := apps.ByName("jacobi")
	prog := a.Build(4)
	params := prog.Prepare(rsd.Env{"m": 256, "iters": 2}, 4)

	o := compiler.Options{NProcs: 4, Params: params, Aggregate: true}
	_, rep := compiler.Compile(prog, o)
	if len(rep.Pushes) != 0 || len(rep.WSyncs) != 0 {
		t.Error("aggregation-only level must not push or merge")
	}
	if strings.Contains(rep.String(), "WRITE_ALL") {
		t.Error("aggregation-only level must not use WRITE_ALL")
	}

	o.ConsElim = true
	_, rep = compiler.Compile(prog, o)
	if !strings.Contains(rep.String(), "WRITE_ALL") {
		t.Error("ConsElim level should produce WRITE_ALL")
	}

	base := compiler.Options{NProcs: 4, Params: params}
	out, rep := compiler.Compile(prog, base)
	if len(rep.Validates)+len(rep.WSyncs)+len(rep.Pushes) != 0 {
		t.Error("no-op options must not transform")
	}
	if countStmts(out.Body) != countStmts(prog.Body) {
		t.Error("no-op compile changed the program size")
	}
}

func countStmts(body []ir.Stmt) int {
	n := 0
	for _, st := range body {
		n++
		if l, ok := st.(ir.Loop); ok {
			n += countStmts(l.Body)
		}
	}
	return n
}

// TestContiguityGate: a section covering partial columns must not qualify
// for WRITE_ALL (rule 2 requires a contiguous address range).
func TestContiguityGate(t *testing.T) {
	a, _ := apps.ByName("jacobi")
	prog := a.Build(4)
	params := prog.Prepare(rsd.Env{"m": 256, "iters": 2}, 4)
	_, rep := compiler.Compile(prog, opts(4, params))
	for _, v := range rep.Validates {
		if strings.Contains(v, "a[2:m-1") && strings.Contains(v, "_ALL") {
			t.Errorf("partial-column section of a must not get *_ALL: %s", v)
		}
	}
}

// TestMGSBroadcastSection: the normalized vector read is merged with the
// barrier.
func TestMGSBroadcastSection(t *testing.T) {
	a, _ := apps.ByName("mgs")
	prog := a.Build(8)
	params := prog.Prepare(rsd.Env{"m": 512, "nvec": 64, "mpad": 512}, 8)
	_, rep := compiler.Compile(prog, opts(8, params))
	found := false
	for _, w := range rep.WSyncs {
		if strings.Contains(w, "V[1:m, i:i] READ") {
			found = true
		}
	}
	if !found {
		t.Errorf("vector i read should be merged with the barrier:\n%s", rep)
	}
	if len(rep.Pushes) != 0 {
		t.Errorf("MGS must not get Push: %v", rep.Pushes)
	}
}
