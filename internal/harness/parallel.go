package harness

import (
	"sync"
)

// The experiment scheduler: every Config run is a self-contained machine
// (its own host, network, and DSM state), so independent runs parallelize
// trivially across OS threads even when each run uses the deterministic
// sim backend internally. Virtual-time results are identical to a
// sequential sweep; only wall-clock time changes.

// parallelDo runs jobs 0..n-1 on a pool of workers goroutines and returns
// the first error. workers <= 1 runs the jobs inline, in order.
func parallelDo(n, workers int, job func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg     sync.WaitGroup
		errMu  sync.Mutex
		first  error
		failed = make(chan struct{})
	)
	fail := func(err error) {
		errMu.Lock()
		defer errMu.Unlock()
		if first == nil {
			first = err
			close(failed)
		}
	}
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := job(i); err != nil {
					fail(err)
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		// Stop feeding new jobs once one has failed; in-flight jobs
		// (self-contained simulations) drain on their own.
		select {
		case <-failed:
			break dispatch
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	return first
}

// RunMany executes independent configurations across a worker pool,
// returning results in input order. workers <= 1 degenerates to a
// sequential sweep.
func RunMany(cfgs []Config, workers int) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	err := parallelDo(len(cfgs), workers, func(i int) error {
		r, err := Run(cfgs[i])
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
