package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Bench trajectory gate. The BENCH artifact records, per tracked
// configuration, the deterministic virtual time plus the wall-clock time
// and heap allocation count of producing it. A fresh report compared
// against a checked-in baseline turns the artifact into an actual perf
// gate, with one tolerance per metric:
//
//   - Virtual time is deterministic on the sim backend, so its tolerance
//     is tight (the default 10% only absorbs intentional protocol-cost
//     changes between recalibrations).
//   - Allocation counts are near-deterministic (GC bookkeeping and map
//     growth introduce small run-to-run wiggle), so their tolerance is
//     moderately tight — a real regression on the hot paths (wire codec,
//     diff path, frame delivery) moves the count by far more than 15%.
//   - Wall times depend on the hardware and on CI-runner noise, so their
//     tolerance is generous (300% by default): the wall gate only
//     catches catastrophic slowdowns, never honest machine variance.
//
// A metric is compared only when both reports carry it (> 0), so old
// baselines without alloc counts, or reports generated with -parallel
// (which suppresses alloc recording), degrade gracefully to the metrics
// they do have.

// Default per-metric regression tolerances for -bench-compare.
const (
	// DefaultBenchTolerancePct is the default allowed virtual-time
	// regression per tracked entry.
	DefaultBenchTolerancePct = 10
	// DefaultBenchWallTolerancePct is the default allowed wall-clock
	// regression — generous, because wall times are hardware-dependent.
	DefaultBenchWallTolerancePct = 300
	// DefaultBenchAllocTolerancePct is the default allowed allocation
	// count regression — tight, because allocs are near-deterministic.
	DefaultBenchAllocTolerancePct = 15
)

// BenchTolerances bundles the per-metric regression tolerances, in
// percent. A metric with tolerance <= 0 is not compared.
type BenchTolerances struct {
	VirtualPct float64
	WallPct    float64
	AllocPct   float64
}

// DefaultBenchTolerances returns the standard gate settings.
func DefaultBenchTolerances() BenchTolerances {
	return BenchTolerances{
		VirtualPct: DefaultBenchTolerancePct,
		WallPct:    DefaultBenchWallTolerancePct,
		AllocPct:   DefaultBenchAllocTolerancePct,
	}
}

// LoadBenchReport reads a BENCH json artifact.
func LoadBenchReport(path string) (*BenchReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep BenchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("harness: parsing %s: %w", path, err)
	}
	return &rep, nil
}

// benchKey identifies one tracked configuration across reports.
type benchKey struct {
	App, Set, System string
	Procs            int
	Adapt            bool
}

func (k benchKey) String() string {
	ad := ""
	if k.Adapt {
		ad = "+adapt"
	}
	return fmt.Sprintf("%s/%s/%s%s/p%d", k.App, k.Set, k.System, ad, k.Procs)
}

// CompareBench checks new against old: every entry present in both
// reports (keyed by app/set/system/procs/adapt) is gated per metric —
// virtual time, wall time, and allocation count must not exceed the old
// value by more than the corresponding tolerance, each metric compared
// only when present (> 0) in both reports and its tolerance is positive.
// Entries only in one report are ignored (configurations come and go
// across PRs; the golden tables pin exact values for the stable set).
// The returned regressions are sorted and human-readable; empty means
// the gate passes. compared is the number of entries with at least one
// metric checked, so callers can report honestly when the baseline lags
// the tracked set.
func CompareBench(old, new *BenchReport, tol BenchTolerances) (regressions []string, compared int) {
	base := map[benchKey]BenchEntry{}
	for _, e := range old.Entries {
		base[benchKey{e.App, e.Set, e.System, e.Procs, e.Adapt}] = e
	}
	for _, e := range new.Entries {
		k := benchKey{e.App, e.Set, e.System, e.Procs, e.Adapt}
		was, ok := base[k]
		if !ok {
			continue
		}
		checked := false
		gate := func(metric, unit string, oldV, newV, tolPct float64) {
			if tolPct <= 0 || oldV <= 0 || newV <= 0 {
				return
			}
			checked = true
			if newV > oldV*(1+tolPct/100) {
				regressions = append(regressions,
					fmt.Sprintf("%s: %s %.3f%s exceeds baseline %.3f%s by %.1f%% (tolerance %.0f%%)",
						k, metric, newV, unit, oldV, unit, 100*(newV-oldV)/oldV, tolPct))
			}
		}
		gate("virtual time", "ms", was.VirtualMS, e.VirtualMS, tol.VirtualPct)
		gate("wall time", "ms", was.WallMS, e.WallMS, tol.WallPct)
		gate("allocs", "", float64(was.Allocs), float64(e.Allocs), tol.AllocPct)
		if checked {
			compared++
		}
	}
	sort.Strings(regressions)
	return regressions, compared
}
