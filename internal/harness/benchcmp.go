package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Bench trajectory gate. The BENCH artifact records one VirtualMS per
// tracked configuration; virtual times are deterministic on the sim
// backend, so a fresh report compared against a checked-in baseline turns
// the artifact into an actual perf gate: CompareBench fails any entry
// whose virtual time regressed beyond the tolerance. Wall times are
// hardware-dependent and are never compared.

// DefaultBenchTolerancePct is the default allowed virtual-time regression
// per tracked entry.
const DefaultBenchTolerancePct = 10

// LoadBenchReport reads a BENCH json artifact.
func LoadBenchReport(path string) (*BenchReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep BenchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("harness: parsing %s: %w", path, err)
	}
	return &rep, nil
}

// benchKey identifies one tracked configuration across reports.
type benchKey struct {
	App, Set, System string
	Procs            int
	Adapt            bool
}

func (k benchKey) String() string {
	ad := ""
	if k.Adapt {
		ad = "+adapt"
	}
	return fmt.Sprintf("%s/%s/%s%s/p%d", k.App, k.Set, k.System, ad, k.Procs)
}

// CompareBench checks new against old: every entry present in both
// reports (keyed by app/set/system/procs/adapt) must not exceed the old
// virtual time by more than tolPct percent. Entries only in one report
// are ignored (configurations come and go across PRs; the golden tables
// pin exact values for the stable set). The returned regressions are
// sorted and human-readable; empty means the gate passes. compared is
// the number of entries actually checked, so callers can report honestly
// when the baseline lags the tracked set.
func CompareBench(old, new *BenchReport, tolPct float64) (regressions []string, compared int) {
	base := map[benchKey]float64{}
	for _, e := range old.Entries {
		base[benchKey{e.App, e.Set, e.System, e.Procs, e.Adapt}] = e.VirtualMS
	}
	for _, e := range new.Entries {
		k := benchKey{e.App, e.Set, e.System, e.Procs, e.Adapt}
		was, ok := base[k]
		if !ok || was <= 0 {
			continue
		}
		compared++
		if e.VirtualMS > was*(1+tolPct/100) {
			regressions = append(regressions,
				fmt.Sprintf("%s: virtual time %.3fms exceeds baseline %.3fms by %.1f%% (tolerance %.0f%%)",
					k, e.VirtualMS, was, 100*(e.VirtualMS-was)/was, tolPct))
		}
	}
	sort.Strings(regressions)
	return regressions, compared
}
