package harness

import (
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"time"

	"sdsm/internal/apps"
	"sdsm/internal/tmk"
)

// Machine-readable benchmark output. From PR 3 on, CI writes one
// BENCH_pr3.json per run and uploads it as an artifact, so the perf
// trajectory of the experiment suite — virtual (deterministic) and
// wall-clock (hardware-dependent) — is tracked across PRs without diffing
// formatted tables.

// BenchEntry is one configuration's measurement. VirtualMS is the
// deterministic simulated execution time (comparable across machines and
// runs); WallMS is the host wall-clock cost of producing it (comparable
// only across runs on similar hardware); Allocs is the machine-wide heap
// allocation count of the run (near-deterministic on the sim backend,
// recorded only when runs are not fanned out — the counter is global, so
// concurrent runs would pollute each other's deltas).
type BenchEntry struct {
	App       string            `json:"app"`
	Set       string            `json:"set"`
	System    string            `json:"system"`
	Procs     int               `json:"procs"`
	Adapt     bool              `json:"adapt,omitempty"`
	VirtualMS float64           `json:"virtual_ms"`
	WallMS    float64           `json:"wall_ms"`
	Allocs    int64             `json:"allocs,omitempty"`
	Msgs      int64             `json:"msgs"`
	Bytes     int64             `json:"bytes"`
	Segv      int64             `json:"segv"`
	Protocol  tmk.ProtocolStats `json:"protocol"`
}

// BenchReport is the artifact schema.
type BenchReport struct {
	Schema     string       `json:"schema"`
	GoVersion  string       `json:"go_version"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Procs      int          `json:"procs"`
	Entries    []BenchEntry `json:"entries"`
}

// benchConfigs is the tracked configuration set: the adaptive-protocol
// grid (baseline / adaptive / compiler) plus every paper application at
// Base and Opt on the small sets — the protocol-stat surface the
// experiment tables are built from.
func benchConfigs(procs int) []Config {
	var cfgs []Config
	for _, c := range adaptGrid() {
		cfgs = append(cfgs,
			Config{App: c.app, Set: c.set, System: Base, Procs: procs},
			Config{App: c.app, Set: c.set, System: Base, Procs: procs, Adapt: true},
		)
		if c.app.XHPF || c.app.WSyncApplicable || c.app.PushApplicable {
			cfgs = append(cfgs, Config{App: c.app, Set: c.set, System: Opt, Procs: procs})
		}
	}
	for _, a := range apps.Registry() {
		cfgs = append(cfgs,
			Config{App: a, Set: Small, System: Base, Procs: procs},
			Config{App: a, Set: Small, System: Opt, Procs: procs},
		)
	}
	// Checkpoint-overhead pin (DESIGN.md §10): jacobi/large with recovery
	// armed and the default full-record cadence. Reported under the
	// "tmk-ckpt" system label so the gate tracks barrier-checkpoint cost —
	// virtual time must stay identical to the plain run (checkpointing is
	// outside the cost model), so the pinned signal is allocations and
	// wall time.
	if a, err := apps.ByName("jacobi"); err == nil {
		cfgs = append(cfgs, Config{App: a, Set: Large, System: Base, Procs: procs, Recover: true})
	}
	// Tracing-overhead pin (DESIGN.md §11): jacobi/large with the protocol
	// event trace armed, under the "tmk-trace" label. Like checkpointing,
	// tracing is outside the cost model — virtual time must stay identical
	// to the plain run — so the gate pins its allocation and wall cost.
	if a, err := apps.ByName("jacobi"); err == nil {
		cfgs = append(cfgs, Config{App: a, Set: Large, System: Base, Procs: procs, Trace: true})
	}
	// Scaling pin (DESIGN.md §12): tsps at 32 nodes with the ownership
	// directory and span-compressed relay on, under the "tmk-scale32"
	// label. The directory rebuilds from the full notice log at every
	// barrier departure (resetDirectory), so this entry tracks that
	// bookkeeping's allocation and wall cost along with the virtual time
	// of directory-routed fetching at a size the 8-node grid never sees.
	if a, err := apps.ByName("tsps"); err == nil {
		cfgs = append(cfgs, Config{App: a, Set: Small, System: Base, Procs: 32, Adapt: true, Scale: true})
	}
	return cfgs
}

// Bench measures the tracked configurations, fanning independent runs
// across workers (wall times are per-run and unaffected by the fan-out).
// Allocation counts are recorded only at workers == 1: runtime.MemStats
// is process-global, so a delta taken around a run is meaningful only
// when nothing else allocates concurrently.
func Bench(procs, workers int) (*BenchReport, error) {
	cfgs := benchConfigs(procs)
	entries := make([]BenchEntry, len(cfgs))
	err := parallelDo(len(cfgs), workers, func(i int) error {
		cfg := cfgs[i]
		var before runtime.MemStats
		if workers == 1 {
			runtime.ReadMemStats(&before)
		}
		start := time.Now()
		res, err := Run(cfg)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		var allocs int64
		if workers == 1 {
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			allocs = int64(after.Mallocs - before.Mallocs)
		}
		sys := string(cfg.System)
		if cfg.Recover {
			// Distinct label: the gate must compare the recovery-armed run
			// against its own baseline, not the plain one.
			sys += "-ckpt"
		}
		if cfg.Trace {
			sys += "-trace"
		}
		if cfg.Scale {
			sys += "-scale" + strconv.Itoa(cfg.Procs)
		}
		entries[i] = BenchEntry{
			App: cfg.App.Name, Set: string(cfg.Set), System: sys,
			Procs: cfg.Procs, Adapt: cfg.Adapt,
			VirtualMS: float64(res.Time) / 1e6,
			WallMS:    float64(wall) / 1e6,
			Allocs:    allocs,
			Msgs:      res.Msgs, Bytes: res.Bytes, Segv: res.Segv,
			Protocol: res.Protocol,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &BenchReport{
		Schema:     "sdsm-bench/1",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Procs:      procs,
		Entries:    entries,
	}, nil
}

// WriteBenchJSON runs Bench and writes the report to path.
func WriteBenchJSON(path string, procs, workers int) error {
	rep, err := Bench(procs, workers)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
