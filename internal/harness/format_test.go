package harness

import (
	"strings"
	"testing"
	"time"

	"sdsm/internal/apps"
)

func TestFormatters(t *testing.T) {
	t1 := FormatTable1([]Table1Row{{App: "jacobi", Set: Large, Params: "m=512", Measured: time.Second, Paper: 288 * time.Second}})
	if !strings.Contains(t1, "jacobi") || !strings.Contains(t1, "288.00s") {
		t.Errorf("Table1 formatting:\n%s", t1)
	}
	t2 := FormatTable2([]Table2Row{{App: "is", Set: Small, SegvPct: 90, MsgPct: 60, DataPct: 66, PaperSegv: 90.1, PaperMsg: 60.7, PaperData: 66.3}})
	if !strings.Contains(t2, "is") || !strings.Contains(t2, "66.3") {
		t.Errorf("Table2 formatting:\n%s", t2)
	}
	f5 := FormatFig5([]Fig5Row{{App: "is", Set: Large, Base: 1.8, Opt: 3.9, PVMe: 4.5}}, 8)
	if !strings.Contains(f5, "is") || !strings.Contains(f5, "-") {
		t.Errorf("Fig5 must blank XHPF for IS:\n%s", f5)
	}
	f6 := FormatFig6([]Fig6Row{{App: "shallow", Set: Large, Levels: [5]float64{5, 6, 6, 6, 6}, Applies: [5]bool{true, true, true, false, false}}}, 8)
	if !strings.Contains(f6, "n/a") {
		t.Errorf("Fig6 must mark inapplicable levels:\n%s", f6)
	}
	f7 := FormatFig7([]Fig7Row{{App: "mgs", Base: 6, Sync: 6.3, Async: 6.3}}, 8)
	if !strings.Contains(f7, "mgs") {
		t.Errorf("Fig7 formatting:\n%s", f7)
	}
	m := FormatMicro(&MicroResult{RoundTrip: 365 * time.Microsecond, LockAcquire: 427 * time.Microsecond,
		Barrier8: 893 * time.Microsecond, ProtMin: 18 * time.Microsecond, ProtMax: 800 * time.Microsecond})
	for _, want := range []string{"365.0µs", "427.0µs", "893.0µs"} {
		if !strings.Contains(m, want) {
			t.Errorf("micro formatting missing %s:\n%s", want, m)
		}
	}
}

func TestRunRejectsUnknownSystem(t *testing.T) {
	a, _ := apps.ByName("jacobi")
	if _, err := Run(Config{App: a, Set: Small, System: "bogus", Procs: 2}); err == nil {
		t.Fatal("unknown system must error")
	}
}

func TestSpeedupGuards(t *testing.T) {
	if Speedup(time.Second, 0) != 0 {
		t.Error("zero parallel time must not divide by zero")
	}
	if got := Speedup(8*time.Second, time.Second); got != 8 {
		t.Errorf("Speedup = %v", got)
	}
}

func TestRunRejectsUnknownBackend(t *testing.T) {
	a, _ := apps.ByName("jacobi")
	for _, sys := range []SystemKind{Base, PVMe} { // MP systems must validate too
		if _, err := Run(Config{App: a, Set: Small, System: sys, Procs: 2, Backend: "reall"}); err == nil {
			t.Errorf("%s: unknown backend must error", sys)
		}
	}
}
