package harness

import (
	"runtime"
	"testing"
	"time"

	"sdsm/internal/apps"
	"sdsm/internal/model"
)

// sweepWorkers sizes the experiment scheduler's pool for the full-size
// sweeps: every run is self-contained, so the sweeps parallelize across
// cores without changing any virtual-time result.
func sweepWorkers() int { return runtime.GOMAXPROCS(0) }

// The shape tests assert the paper's qualitative claims (see DESIGN.md):
// who wins, in which direction the optimizations act, and where the
// applicability boundaries fall. Absolute values are platform-model
// dependent and are reported by cmd/sdsm-experiments instead.

func fig5Rows(t *testing.T) []Fig5Row {
	t.Helper()
	rows, err := Fig5(8, sweepWorkers())
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func row(t *testing.T, rows []Fig5Row, app string, set apps.DataSet) Fig5Row {
	t.Helper()
	for _, r := range rows {
		if r.App == app && r.Set == set {
			return r
		}
	}
	t.Fatalf("no row for %s/%s", app, set)
	return Fig5Row{}
}

func TestPaperShapeFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	rows := fig5Rows(t)

	for _, r := range rows {
		// Claim 1: the compiler-optimized system improves on base
		// TreadMarks everywhere (4-59% in the paper; allow measurement
		// noise of 1%).
		if r.Opt < r.Base*0.99 {
			t.Errorf("%s/%s: opt (%.2f) worse than base (%.2f)", r.App, r.Set, r.Opt, r.Base)
		}
		// Claim 2: message passing is the upper bound; opt narrows the gap.
		if r.Opt > r.PVMe*1.02 {
			t.Errorf("%s/%s: opt (%.2f) beats PVMe (%.2f); message passing must win", r.App, r.Set, r.Opt, r.PVMe)
		}
		if r.Base > r.Opt*1.02 {
			t.Errorf("%s/%s: base (%.2f) above opt (%.2f)", r.App, r.Set, r.Base, r.Opt)
		}
		// XHPF sits between opt and PVMe (within a whisker) where it runs.
		if r.XHPF > 0 && r.XHPF > r.PVMe*1.02 {
			t.Errorf("%s/%s: XHPF (%.2f) beats PVMe (%.2f)", r.App, r.Set, r.XHPF, r.PVMe)
		}
	}

	// Claim: the biggest gains are for IS and 3D-FFT, the programs where
	// base TreadMarks performs poorly (48-59% in the paper).
	for _, name := range []string{"fft", "is"} {
		for _, set := range []apps.DataSet{Large, Small} {
			r := row(t, rows, name, set)
			if impr := 1 - r.Base/r.Opt; impr < 0.25 {
				t.Errorf("%s/%s: improvement only %.0f%%, expected large (paper: 48-59%%)", name, set, impr*100)
			}
		}
	}
	// Claim: for programs with good base speedups the improvements are
	// moderate but present.
	for _, name := range []string{"jacobi", "shallow", "gauss", "mgs"} {
		r := row(t, rows, name, Large)
		if r.Base < 4 {
			t.Errorf("%s/large: base speedup %.2f; paper has these codes performing well", name, r.Base)
		}
	}
	// Claim: IS stays noticeably behind PVMe even optimized (17-29% in the
	// paper, because PVMe pipelines the transfer).
	r := row(t, rows, "is", Large)
	if r.Opt > r.PVMe*0.95 {
		t.Errorf("is/large: opt (%.2f) too close to PVMe (%.2f); the pipelined MP version must win clearly", r.Opt, r.PVMe)
	}
}

func TestPaperShapeXHPFRejectsIS(t *testing.T) {
	a, _ := apps.ByName("is")
	if _, err := Run(Config{App: a, Set: Small, System: XHPF, Procs: 4}); err == nil {
		t.Fatal("XHPF must reject IS (indirect access to the main array)")
	}
}

func TestPaperShapeTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	rows, err := Table2(8, sweepWorkers())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Messages always drop (25-96% in the paper).
		if r.MsgPct <= 0 {
			t.Errorf("%s/%s: no message reduction (%.1f%%)", r.App, r.Set, r.MsgPct)
		}
		// Page faults always drop.
		if r.SegvPct <= 0 {
			t.Errorf("%s/%s: no fault reduction (%.1f%%)", r.App, r.Set, r.SegvPct)
		}
		// Jacobi's data volume increases (whole pages replace small diffs).
		if r.App == "jacobi" && r.DataPct >= 0 {
			t.Errorf("jacobi/%s: data should increase under WRITE_ALL (got %.1f%% reduction)", r.Set, r.DataPct)
		}
		// IS data drops substantially (diff accumulation avoided).
		if r.App == "is" && r.DataPct < 30 {
			t.Errorf("is/%s: data reduction %.1f%%, expected large", r.Set, r.DataPct)
		}
	}
}

func TestPaperShapeFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	rows, err := Fig6(8, sweepWorkers())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Communication aggregation and consistency elimination never hurt
		// materially (claim 1 of Section 6.4; for Jacobi the paper notes
		// the gain is partly offset by increased data volume, so allow a
		// small dip).
		if r.Levels[1] < r.Levels[0]*0.97 {
			t.Errorf("%s/%s: aggregation hurt (%.2f -> %.2f)", r.App, r.Set, r.Levels[0], r.Levels[1])
		}
		if r.Levels[2] < r.Levels[1]*0.97 {
			t.Errorf("%s/%s: consistency elimination hurt (%.2f -> %.2f)", r.App, r.Set, r.Levels[1], r.Levels[2])
		}
		// Applicability matrix (paper Figure 6 captions).
		switch r.App {
		case "shallow":
			if r.Applies[3] || r.Applies[4] {
				t.Errorf("shallow: wsync/push must be inapplicable")
			}
		case "is", "gauss", "mgs":
			if r.Applies[4] {
				t.Errorf("%s: push must be inapplicable", r.App)
			}
		case "jacobi", "fft":
			if !r.Applies[4] {
				t.Errorf("%s: push must be applicable", r.App)
			}
		}
	}
	// Sync+data merging helps Gauss and MGS (broadcast of the pivot data).
	for _, name := range []string{"gauss", "mgs"} {
		for _, r := range rows {
			if r.App == name && r.Levels[3] < r.Levels[2] {
				t.Errorf("%s/%s: merging should help via broadcast (%.2f -> %.2f)", name, r.Set, r.Levels[2], r.Levels[3])
			}
		}
	}
	// Push helps Jacobi's small set (barrier cost proportionally higher).
	for _, r := range rows {
		if r.App == "jacobi" && r.Set == Small && r.Levels[4] <= r.Levels[3] {
			t.Errorf("jacobi/small: push should help (%.2f -> %.2f)", r.Levels[3], r.Levels[4])
		}
		if r.App == "fft" && r.Levels[4] < r.Levels[2]*0.99 {
			t.Errorf("fft/%s: push should not hurt vs cons-elim (%.2f -> %.2f)", r.Set, r.Levels[2], r.Levels[4])
		}
	}
}

func TestPaperShapeMicro(t *testing.T) {
	m, err := Micro()
	if err != nil {
		t.Fatal(err)
	}
	if m.RoundTrip != 365*time.Microsecond {
		t.Errorf("roundtrip = %v, want 365µs", m.RoundTrip)
	}
	if m.LockAcquire != 427*time.Microsecond {
		t.Errorf("lock acquire = %v, want 427µs", m.LockAcquire)
	}
	if m.Barrier8 < 800*time.Microsecond || m.Barrier8 > 1000*time.Microsecond {
		t.Errorf("barrier = %v, want ~893µs", m.Barrier8)
	}
}

func TestSpeedupScalesWithProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	// Extension: speedups grow with processor count for the well-behaved
	// codes (the paper's evaluation stops at 8; this guards monotonicity).
	a, _ := apps.ByName("jacobi")
	uni, err := UniTime(a, Large, model.SP2())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, n := range []int{2, 4, 8} {
		res, err := Run(Config{App: a, Set: Large, System: Opt, Procs: n})
		if err != nil {
			t.Fatal(err)
		}
		sp := Speedup(uni, res.Time)
		if sp <= prev {
			t.Errorf("speedup not increasing at n=%d: %.2f <= %.2f", n, sp, prev)
		}
		prev = sp
	}
}
