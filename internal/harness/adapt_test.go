package harness

import (
	"fmt"
	"testing"

	"sdsm/internal/apps"
)

// TestAdaptEquivalence asserts that the adaptive update protocol is purely
// a traffic optimization: with -adapt on, every application computes a
// checksum bit-identical to the adapt-off run and to the sequential
// reference, on all three backends. The pushed diffs travel the normal
// diff-application path (ordering, applied timestamps, notice pruning),
// so the final memory image cannot differ; this test is the executable
// form of that claim.
//
// spmv is the barrier detector's target workload (irregular accesses,
// stable run-time pattern, heavy promotion); jacobi/small exercises
// adaptation next to page-aligned partitions, and jacobi/bound the
// sub-page split bindings (two-owner boundary pages with disjoint write
// extents — at 3 and 5 processors the m = 264 partition also misaligns
// differently than at 8, churning the watershed positions); tsp is the
// lock-scope detector's target (migratory queue and incumbent pages,
// grant-piggybacked diffs at every processor count); is exercises both
// detectors at once — barrier-epoch decay on its multi-writer pages and
// lock-scope piggybacks on its staggered bucket sections.
func TestAdaptEquivalence(t *testing.T) {
	cases := []struct {
		app   string
		set   apps.DataSet
		procs []int
	}{
		{"spmv", apps.Small, []int{2, 3, 5, 8}},
		{"jacobi", apps.Small, []int{3, 4}},
		{"jacobi", apps.Bound, []int{3, 5, 8}},
		{"tsp", apps.Small, []int{2, 3, 5, 8}},
		{"is", apps.Small, []int{3, 4, 8}},
	}
	for _, c := range cases {
		a, err := apps.ByName(c.app)
		if err != nil {
			t.Fatal(err)
		}
		seq := SeqChecksum(a, c.set)
		for _, procs := range c.procs {
			off, err := Run(Config{App: a, Set: c.set, System: Base, Procs: procs, Verify: true})
			if err != nil {
				t.Fatalf("%s/%s/p%d: adapt off: %v", c.app, c.set, procs, err)
			}
			on, err := Run(Config{App: a, Set: c.set, System: Base, Procs: procs, Verify: true, Adapt: true})
			if err != nil {
				t.Fatalf("%s/%s/p%d: adapt on: %v", c.app, c.set, procs, err)
			}
			if on.Checksum != off.Checksum {
				t.Fatalf("%s/%s/p%d: adapt-on checksum %v != adapt-off %v", c.app, c.set, procs, on.Checksum, off.Checksum)
			}
			if !apps.Close(on.Checksum, seq) {
				t.Fatalf("%s/%s/p%d: adapt-on checksum %v differs from sequential %v", c.app, c.set, procs, on.Checksum, seq)
			}
			for _, backend := range backendMatrix.backends {
				backend, app, set, procs, want := backend, c.app, c.set, procs, on.Checksum
				t.Run(fmt.Sprintf("%s/%s/p%d/%s", app, set, procs, backend), func(t *testing.T) {
					t.Parallel()
					a, err := apps.ByName(app)
					if err != nil {
						t.Fatal(err)
					}
					res, err := Run(Config{App: a, Set: set, System: Base, Procs: procs, Verify: true, Adapt: true, Backend: backend})
					if err != nil {
						t.Fatalf("%s backend: %v", backend, err)
					}
					if res.Checksum != want {
						t.Errorf("%s backend adapt-on checksum %v != sim %v", backend, res.Checksum, want)
					}
				})
			}
		}
	}
}

// TestAdaptReducesTraffic pins the point of the subsystem: for the
// irregular app the compiler cannot analyze, adaptive mode must cut both
// remote page faults and message count against the invalidate baseline
// (the acceptance criterion of the adaptive-protocol experiment table).
func TestAdaptReducesTraffic(t *testing.T) {
	a, err := apps.ByName("spmv")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(Config{App: a, Set: apps.Small, System: Base, Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	ad, err := Run(Config{App: a, Set: apps.Small, System: Base, Procs: 8, Adapt: true})
	if err != nil {
		t.Fatal(err)
	}
	if ad.Protocol.AdaptPromotions == 0 {
		t.Fatal("no pages were promoted to update mode")
	}
	if ad.Segv >= base.Segv {
		t.Errorf("adaptive page faults %d not below baseline %d", ad.Segv, base.Segv)
	}
	if ad.Msgs >= base.Msgs {
		t.Errorf("adaptive messages %d not below baseline %d", ad.Msgs, base.Msgs)
	}
	if ad.Time >= base.Time {
		t.Errorf("adaptive virtual time %v not below baseline %v", ad.Time, base.Time)
	}
}

// TestAdaptSplitReducesBoundaryFaults pins the sub-page acceptance
// criterion on jacobi's bound set (block boundaries mid-page): the
// detector must form split bindings for the two-writer boundary pages,
// the bindings must hold (no decays — the watershed is stable), and the
// boundary fault loop must break: page faults, demand-fetch exchanges,
// and messages all drop against the invalidate baseline, which whole-page
// adaptation structurally cannot achieve for these pages.
func TestAdaptSplitReducesBoundaryFaults(t *testing.T) {
	a, err := apps.ByName("jacobi")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(Config{App: a, Set: apps.Bound, System: Base, Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	ad, err := Run(Config{App: a, Set: apps.Bound, System: Base, Procs: 8, Adapt: true})
	if err != nil {
		t.Fatal(err)
	}
	// 7 interior block boundaries, each splitting one page of b and one of
	// a: 14 sub-page bindings.
	if ad.Protocol.AdaptSplits != 14 {
		t.Errorf("split bindings = %d, want 14", ad.Protocol.AdaptSplits)
	}
	if ad.Protocol.AdaptDecays != 0 {
		t.Errorf("decays = %d, want 0 (the watershed is stable)", ad.Protocol.AdaptDecays)
	}
	if ad.Segv >= base.Segv {
		t.Errorf("adaptive page faults %d not below baseline %d", ad.Segv, base.Segv)
	}
	// The fault loop breaks: the steady state needs no demand fetches at
	// all, so the residue is warm-up only — well under a quarter of the
	// baseline's per-iteration fetching.
	if ad.Protocol.DiffFetches > base.Protocol.DiffFetches/4 {
		t.Errorf("adaptive demand fetches %d not under a quarter of baseline %d",
			ad.Protocol.DiffFetches, base.Protocol.DiffFetches)
	}
	if ad.Msgs >= base.Msgs {
		t.Errorf("adaptive messages %d not below baseline %d", ad.Msgs, base.Msgs)
	}
	if ad.Time >= base.Time {
		t.Errorf("adaptive virtual time %v not below baseline %v", ad.Time, base.Time)
	}
}

// TestAdaptLockReducesTraffic pins the lock-scope acceptance criterion:
// for the lock-dominated workloads the compiler cannot serve — tsp
// entirely, IS's migratory bucket phases — the per-lock detector must
// bind hand-off edges and the grant piggybacks must cut both the
// in-critical-section demand fetches (lock faults) and the message count
// against the invalidate baseline. For tsp the overall time must drop
// too (the app is nothing but lock traffic).
func TestAdaptLockReducesTraffic(t *testing.T) {
	for _, name := range []string{"tsp", "is"} {
		a, err := apps.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		base, err := Run(Config{App: a, Set: apps.Small, System: Base, Procs: 8})
		if err != nil {
			t.Fatal(err)
		}
		ad, err := Run(Config{App: a, Set: apps.Small, System: Base, Procs: 8, Adapt: true})
		if err != nil {
			t.Fatal(err)
		}
		if ad.Protocol.AdaptLockPromotions == 0 {
			t.Errorf("%s: no hand-off edges were bound", name)
		}
		if ad.Protocol.AdaptLockGrants == 0 {
			t.Errorf("%s: no grants carried piggybacked diffs", name)
		}
		if ad.Protocol.LockFetches >= base.Protocol.LockFetches {
			t.Errorf("%s: adaptive lock faults %d not below baseline %d",
				name, ad.Protocol.LockFetches, base.Protocol.LockFetches)
		}
		if ad.Msgs >= base.Msgs {
			t.Errorf("%s: adaptive messages %d not below baseline %d", name, ad.Msgs, base.Msgs)
		}
		if name == "tsp" && ad.Time >= base.Time {
			t.Errorf("tsp: adaptive virtual time %v not below baseline %v", ad.Time, base.Time)
		}
	}
}
