package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"sdsm/internal/apps"
	"sdsm/internal/obs"
)

// traceConfig is the pinned tracing configuration: small jacobi with a
// deliberately tiny ring so the export exercises the wraparound path
// (oldest events dropped) and the golden file stays reviewable.
func traceConfig(t *testing.T) Config {
	t.Helper()
	a, err := apps.ByName("jacobi")
	if err != nil {
		t.Fatal(err)
	}
	return Config{App: a, Set: Small, System: Base, Procs: 4, Trace: true, TraceCap: 160}
}

func traceJSON(t *testing.T, cfg Config) (*Result, []byte) {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, res.Trace); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestTraceDeterministic runs the same traced sim configuration twice and
// requires byte-identical Perfetto JSON — the trace inherits the sim
// backend's determinism (virtual clocks, FIFO serve order, per-pair flow
// sequence counters), so any divergence means nondeterminism leaked into
// the event stream or the export. The output is additionally pinned
// against a checked-in golden; regenerate with
//
//	go test ./internal/harness -run TestTraceDeterministic -update
func TestTraceDeterministic(t *testing.T) {
	cfg := traceConfig(t)
	_, first := traceJSON(t, cfg)
	_, second := traceJSON(t, cfg)
	if !bytes.Equal(first, second) {
		t.Fatalf("two traced runs produced different JSON (%d vs %d bytes)", len(first), len(second))
	}
	path := filepath.Join("testdata", "trace_jacobi_small.golden")
	if *updateGolden {
		if err := os.WriteFile(path, first, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing trace golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(first, want) {
		t.Errorf("trace JSON differs from %s byte-for-byte (%d vs %d bytes)", path, len(first), len(want))
	}
}

// TestTraceInvisible pins the zero-cost-when-on half of the observability
// contract on the sim backend: arming the tracer must not move a single
// protocol-visible number. Every deterministic Result field — virtual
// time, traffic, vm counters, the full protocol stat block — must be
// identical between a traced and an untraced run of the same
// configuration.
func TestTraceInvisible(t *testing.T) {
	cfg := traceConfig(t)
	plainCfg := cfg
	plainCfg.Trace, plainCfg.TraceCap = false, 0
	plain, err := Run(plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Time != traced.Time {
		t.Errorf("virtual time perturbed: untraced %v, traced %v", plain.Time, traced.Time)
	}
	if plain.Msgs != traced.Msgs || plain.Bytes != traced.Bytes {
		t.Errorf("traffic perturbed: untraced %d msgs/%d bytes, traced %d/%d",
			plain.Msgs, plain.Bytes, traced.Msgs, traced.Bytes)
	}
	if plain.VM != traced.VM {
		t.Errorf("vm counters perturbed:\nuntraced %+v\ntraced   %+v", plain.VM, traced.VM)
	}
	if plain.Protocol != traced.Protocol {
		t.Errorf("protocol stats perturbed:\nuntraced %+v\ntraced   %+v", plain.Protocol, traced.Protocol)
	}
	if plain.Checksum != traced.Checksum {
		t.Errorf("checksum perturbed: untraced %v, traced %v", plain.Checksum, traced.Checksum)
	}
	if traced.Trace == nil {
		t.Fatal("traced run returned no trace machine")
	}
	events := 0
	for _, nt := range traced.Trace.Nodes {
		events += nt.Len()
	}
	if events == 0 {
		t.Error("traced run recorded no events")
	}
}
