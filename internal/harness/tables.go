package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sdsm/internal/apps"
	"sdsm/internal/cluster"
	"sdsm/internal/host"
	"sdsm/internal/model"
	"sdsm/internal/rsd"
	"sdsm/internal/shm"
	"sdsm/internal/sim"
	"sdsm/internal/tmk"
)

// DefaultProcs is the paper's processor count.
const DefaultProcs = 8

// Table1Row is one application/data-set uniprocessor time.
type Table1Row struct {
	App      string
	Set      apps.DataSet
	Params   string
	Measured time.Duration
	Paper    time.Duration
}

// Table1Paper holds the paper's uniprocessor times (Table 1), in seconds.
var Table1Paper = map[string]float64{
	"jacobi/large": 288.3, "jacobi/small": 17.7,
	"fft/large": 9.5, "fft/small": 2.3,
	"shallow/large": 74.8, "shallow/small": 36.9,
	"is/large": 91.2, "is/small": 3.9,
	"gauss/large": 3344.8, "gauss/small": 271.5,
	"mgs/large": 449.3, "mgs/small": 56.4,
}

// appSet is one cell of the (application, data set) grid, the unit of
// work the experiment scheduler fans out.
type appSet struct {
	app *apps.App
	set apps.DataSet
}

// appSets enumerates the grid in the paper's order.
func appSets() []appSet {
	var out []appSet
	for _, a := range apps.Registry() {
		for _, set := range []apps.DataSet{Large, Small} {
			out = append(out, appSet{a, set})
		}
	}
	return out
}

// Table1 measures uniprocessor virtual times for every application and
// data set, fanning the measurements across workers. Note the measured
// values use the scaled default sizes; the paper column is at the
// original sizes (see EXPERIMENTS.md).
func Table1(workers int) ([]Table1Row, error) {
	cases := appSets()
	rows := make([]Table1Row, len(cases))
	err := parallelDo(len(cases), workers, func(i int) error {
		a, set := cases[i].app, cases[i].set
		t, err := UniTime(a, set, model.SP2())
		if err != nil {
			return err
		}
		rows[i] = Table1Row{
			App: a.Name, Set: set,
			Params:   paramString(a, set),
			Measured: t,
			Paper:    time.Duration(Table1Paper[a.Name+"/"+string(set)] * float64(time.Second)),
		}
		return nil
	})
	return rows, err
}

// Large/Small/Bound aliases re-exported for callers of the harness.
const (
	Large = apps.Large
	Small = apps.Small
	Bound = apps.Bound
)

func paramString(a *apps.App, set apps.DataSet) string {
	env := a.Sets[set]
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, env[rsd.Sym(k)]))
	}
	return strings.Join(parts, " ")
}

// Table2Row reports the percentage reduction of the optimized system over
// base TreadMarks, as in the paper's Table 2 ("segv", "msg", "data").
type Table2Row struct {
	App                 string
	Set                 apps.DataSet
	SegvPct, MsgPct     float64
	DataPct             float64
	PaperSegv, PaperMsg float64
	PaperData           float64
}

// Table2Paper holds the paper's Table 2 percentages.
var Table2Paper = map[string][3]float64{
	"jacobi/large": {100.0, 79.9, -2312}, "jacobi/small": {100.0, 49.7, -614},
	"fft/large": {100.0, 70.6, 0.8}, "fft/small": {99.2, 44.0, 46.3},
	"shallow/large": {86.9, 56.4, 3.5}, "shallow/small": {85.0, 47.6, 3.2},
	"is/large": {99.5, 96.5, 58.9}, "is/small": {90.1, 60.7, 66.3},
	"gauss/large": {100.0, 40.0, 0.1}, "gauss/small": {100.0, 25.0, 0.4},
	"mgs/large": {100.0, 53.5, 0.2}, "mgs/small": {100.0, 29.0, 40.5},
}

func pctReduction(base, opt int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(base-opt) / float64(base)
}

// Table2 runs base and optimized TreadMarks and reports the reductions in
// page faults, messages, and data, one (app, set) pair per worker job.
func Table2(procs, workers int) ([]Table2Row, error) {
	cases := appSets()
	rows := make([]Table2Row, len(cases))
	err := parallelDo(len(cases), workers, func(i int) error {
		a, set := cases[i].app, cases[i].set
		base, err := Run(Config{App: a, Set: set, System: Base, Procs: procs})
		if err != nil {
			return err
		}
		opt, err := Run(Config{App: a, Set: set, System: Opt, Procs: procs})
		if err != nil {
			return err
		}
		paper := Table2Paper[a.Name+"/"+string(set)]
		rows[i] = Table2Row{
			App: a.Name, Set: set,
			SegvPct:   pctReduction(base.Segv, opt.Segv),
			MsgPct:    pctReduction(base.Msgs, opt.Msgs),
			DataPct:   pctReduction(base.Bytes, opt.Bytes),
			PaperSegv: paper[0], PaperMsg: paper[1], PaperData: paper[2],
		}
		return nil
	})
	return rows, err
}

// Fig5Row is one application/data-set speedup comparison across the four
// systems (XHPF absent for IS).
type Fig5Row struct {
	App                   string
	Set                   apps.DataSet
	Base, Opt, XHPF, PVMe float64 // speedups; XHPF = 0 when inapplicable
}

// Fig5 computes the Figure 5 speedups at the given processor count, one
// (app, set) pair per worker job.
func Fig5(procs, workers int) ([]Fig5Row, error) {
	cases := appSets()
	rows := make([]Fig5Row, len(cases))
	err := parallelDo(len(cases), workers, func(i int) error {
		a, set := cases[i].app, cases[i].set
		uni, err := UniTime(a, set, model.SP2())
		if err != nil {
			return err
		}
		row := Fig5Row{App: a.Name, Set: set}
		for _, sys := range []SystemKind{Base, Opt, XHPF, PVMe} {
			if sys == XHPF && !a.XHPF {
				continue
			}
			res, err := Run(Config{App: a, Set: set, System: sys, Procs: procs})
			if err != nil {
				return err
			}
			sp := Speedup(uni, res.Time)
			switch sys {
			case Base:
				row.Base = sp
			case Opt:
				row.Opt = sp
			case XHPF:
				row.XHPF = sp
			case PVMe:
				row.PVMe = sp
			}
		}
		rows[i] = row
		return nil
	})
	return rows, err
}

// Fig6Row is one application/data-set speedup sweep over the optimization
// levels (0 is base; inapplicable levels repeat the applicable maximum, as
// the paper's bars omit them).
type Fig6Row struct {
	App     string
	Set     apps.DataSet
	Levels  [5]float64
	Applies [5]bool
}

// Fig6 sweeps the cumulative optimization levels of Figure 6, one
// (app, set) pair per worker job (the levels within a row stay
// sequential: inapplicable levels repeat the previous one).
func Fig6(procs, workers int) ([]Fig6Row, error) {
	cases := appSets()
	rows := make([]Fig6Row, len(cases))
	err := parallelDo(len(cases), workers, func(i int) error {
		a, set := cases[i].app, cases[i].set
		uni, err := UniTime(a, set, model.SP2())
		if err != nil {
			return err
		}
		prog := a.Build(procs)
		params := prog.Prepare(a.Sets[set], procs)
		row := Fig6Row{App: a.Name, Set: set}
		for li, lvl := range Levels(a, procs, params) {
			applies := true
			switch li {
			case 3:
				applies = a.WSyncApplicable
			case 4:
				applies = a.PushApplicable
			}
			row.Applies[li] = applies
			if !applies {
				row.Levels[li] = row.Levels[li-1]
				continue
			}
			cfg := Config{App: a, Set: set, System: Opt, Procs: procs, Level: lvl}
			if lvl == nil {
				cfg.System = Base
			}
			res, err := Run(cfg)
			if err != nil {
				return err
			}
			row.Levels[li] = Speedup(uni, res.Time)
		}
		rows[i] = row
		return nil
	})
	return rows, err
}

// Fig7Row compares synchronous and asynchronous data fetching (large data
// sets, as in the paper).
type Fig7Row struct {
	App               string
	Base, Sync, Async float64
}

// Fig7 computes the Figure 7 comparison, one application per worker job.
func Fig7(procs, workers int) ([]Fig7Row, error) {
	registry := apps.Registry()
	rows := make([]Fig7Row, len(registry))
	err := parallelDo(len(registry), workers, func(i int) error {
		a := registry[i]
		uni, err := UniTime(a, Large, model.SP2())
		if err != nil {
			return err
		}
		base, err := Run(Config{App: a, Set: Large, System: Base, Procs: procs})
		if err != nil {
			return err
		}
		syncRes, err := Run(Config{App: a, Set: Large, System: Opt, Procs: procs, SyncFetch: true})
		if err != nil {
			return err
		}
		asyncRes, err := Run(Config{App: a, Set: Large, System: Opt, Procs: procs})
		if err != nil {
			return err
		}
		rows[i] = Fig7Row{
			App:   a.Name,
			Base:  Speedup(uni, base.Time),
			Sync:  Speedup(uni, syncRes.Time),
			Async: Speedup(uni, asyncRes.Time),
		}
		return nil
	})
	return rows, err
}

// AdaptRow is one system variant of the adaptive-protocol comparison: the
// same application and data set under baseline invalidate ("tmk"), the
// run-time adaptive update protocol ("adapt-tmk"), and — where the
// compiler's regular-section analysis applies — the compiler-optimized
// configuration with static pushes ("opt-tmk").
type AdaptRow struct {
	App     string
	Set     apps.DataSet
	System  string
	Applies bool // false: the compiler cannot analyze this application
	Time    time.Duration
	Segv    int64
	Msgs    int64
	Bytes   int64
	Promos  int64
	Splits  int64 // pages bound sub-page (two-writer false sharing)
	Decays  int64
	Updates int64
	Spans   int64 // section spans shipped in the update messages
}

// adaptGrid is the application/data-set grid of the adaptive comparison:
// the irregular workloads the compiler cannot serve, next to Jacobi — the
// paper's canonical producer→consumer app — where the run-time detector
// competes directly with the compiler's static Push. Jacobi's bound set
// (a block partition landing mid-page) adds the false-sharing case: the
// paper sets are page-aligned, so only the bound rows exercise the
// sub-page split bindings.
func adaptGrid() []appSet {
	var out []appSet
	for _, a := range apps.Irregular() {
		if a.Name == "tsps" {
			// tsps is tsp restructured for the scaling experiments — its
			// rows belong to Table C (scaleGrid); Table A stays pinned to
			// the app set the adapt golden has carried since PR 4.
			continue
		}
		out = append(out, appSet{a, Small}, appSet{a, Large})
	}
	j, _ := apps.ByName("jacobi")
	out = append(out, appSet{j, Small}, appSet{j, Large}, appSet{j, Bound})
	return out
}

// AdaptTable runs the adaptive-protocol comparison at the given processor
// count, one (app, set) pair per worker job: for each, baseline invalidate
// TreadMarks, the same system with the run-time adaptive update protocol,
// and the per-app best compiler configuration where the compiler applies.
func AdaptTable(procs, workers int) ([]AdaptRow, error) {
	cases := adaptGrid()
	rows := make([][]AdaptRow, len(cases))
	err := parallelDo(len(cases), workers, func(i int) error {
		a, set := cases[i].app, cases[i].set
		out := make([]AdaptRow, 0, 3)
		base, err := Run(Config{App: a, Set: set, System: Base, Procs: procs})
		if err != nil {
			return err
		}
		out = append(out, AdaptRow{
			App: a.Name, Set: set, System: "tmk", Applies: true,
			Time: base.Time, Segv: base.Segv, Msgs: base.Msgs, Bytes: base.Bytes,
		})
		ad, err := Run(Config{App: a, Set: set, System: Base, Procs: procs, Adapt: true})
		if err != nil {
			return err
		}
		out = append(out, AdaptRow{
			App: a.Name, Set: set, System: "adapt-tmk", Applies: true,
			Time: ad.Time, Segv: ad.Segv, Msgs: ad.Msgs, Bytes: ad.Bytes,
			Promos: ad.Protocol.AdaptPromotions, Splits: ad.Protocol.AdaptSplits,
			Decays:  ad.Protocol.AdaptDecays,
			Updates: ad.Protocol.AdaptUpdates, Spans: ad.Protocol.AdaptSpans,
		})
		opt := AdaptRow{App: a.Name, Set: set, System: "opt-tmk"}
		if a.XHPF || a.WSyncApplicable || a.PushApplicable {
			res, err := Run(Config{App: a, Set: set, System: Opt, Procs: procs})
			if err != nil {
				return err
			}
			opt.Applies = true
			opt.Time, opt.Segv, opt.Msgs, opt.Bytes = res.Time, res.Segv, res.Msgs, res.Bytes
		}
		rows[i] = append(out, opt)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var flat []AdaptRow
	for _, rs := range rows {
		flat = append(flat, rs...)
	}
	return flat, nil
}

// AdaptLockRow is one system variant of the lock-scope adaptive
// comparison (Table B): the same application and data set under baseline
// invalidate ("tmk") and under the adaptive protocol ("adapt-tmk"), with
// the lock-scope counters. LockFaults counts pages demand-fetched while
// holding a lock — the traffic the grant piggyback exists to remove.
type AdaptLockRow struct {
	App        string
	Set        apps.DataSet
	System     string
	Time       time.Duration
	LockFaults int64
	Segv       int64
	Msgs       int64
	Bytes      int64
	Promos     int64 // hand-off edges bound to grant piggybacking
	Decays     int64
	Grants     int64 // grants that carried piggybacked diffs
	Probes     int64 // staleness re-probes
}

// lockGrid is the application/data-set grid of Table B: the two
// lock-dominated workloads — tsp, whose sharing is entirely dynamic, and
// IS, the paper's migratory-data example, where the run-time lock
// detector works on the phases the compiler's static analysis handles
// only under Opt.
func lockGrid() []appSet {
	var out []appSet
	for _, name := range []string{"tsp", "is"} {
		a, _ := apps.ByName(name)
		out = append(out, appSet{a, Small}, appSet{a, Large})
	}
	return out
}

// AdaptLockTable runs the lock-scope adaptive comparison at the given
// processor count, one (app, set) pair per worker job: baseline
// invalidate TreadMarks against the same system with the adaptive
// protocol, reporting lock faults, messages, and the lock detector's
// transitions.
func AdaptLockTable(procs, workers int) ([]AdaptLockRow, error) {
	cases := lockGrid()
	rows := make([][]AdaptLockRow, len(cases))
	err := parallelDo(len(cases), workers, func(i int) error {
		a, set := cases[i].app, cases[i].set
		base, err := Run(Config{App: a, Set: set, System: Base, Procs: procs})
		if err != nil {
			return err
		}
		ad, err := Run(Config{App: a, Set: set, System: Base, Procs: procs, Adapt: true})
		if err != nil {
			return err
		}
		rows[i] = []AdaptLockRow{
			{
				App: a.Name, Set: set, System: "tmk",
				Time: base.Time, LockFaults: base.Protocol.LockFetches,
				Segv: base.Segv, Msgs: base.Msgs, Bytes: base.Bytes,
			},
			{
				App: a.Name, Set: set, System: "adapt-tmk",
				Time: ad.Time, LockFaults: ad.Protocol.LockFetches,
				Segv: ad.Segv, Msgs: ad.Msgs, Bytes: ad.Bytes,
				Promos: ad.Protocol.AdaptLockPromotions,
				Decays: ad.Protocol.AdaptLockDecays,
				Grants: ad.Protocol.AdaptLockGrants,
				Probes: ad.Protocol.AdaptLockProbes,
			},
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var flat []AdaptLockRow
	for _, rs := range rows {
		flat = append(flat, rs...)
	}
	return flat, nil
}

// ScaleProcs is the node-count axis of the scaling matrix. The paper's
// machine stops at 8; the scaling experiments ask what the protocol does
// at cluster sizes where a static per-page manager and a re-carried
// barrier relay stop being harmless.
var ScaleProcs = []int{8, 16, 32, 64, 128}

// ScaleRow is one (application, node count) cell of the scaling matrix,
// run in scale mode (distributed ownership directory + span-compressed,
// broadcast-once barrier relay) with the adaptive protocol armed so the
// fetch-list relay traffic it compresses actually flows.
type ScaleRow struct {
	App       string
	Set       apps.DataSet
	Procs     int
	Time      time.Duration
	Segv      int64
	Msgs      int64
	Bytes     int64
	Relay     int64 // barrier fetch-list relay bytes (span-compressed)
	Redirects int64 // directory redirects issued by probable owners
	Hops      int64 // forwarding-chain hops walked by requesters
	Fallbacks int64 // chases abandoned to a Direct re-request
	ServeMax  int64 // busiest node's diff-serve count
	ServeMean float64
}

// scaleGrid is the workload pair of the scaling matrix: tsps, the
// sharded-queue lock workload built for large machines (hot incumbent
// page, migrating deque pages), and jacobi, the canonical
// producer→consumer barrier workload, whose small set partitions to
// exactly one page per node at 128 processors.
func scaleGrid() []appSet {
	ts, _ := apps.ByName("tsps")
	j, _ := apps.ByName("jacobi")
	return []appSet{{ts, Small}, {j, Small}}
}

// ScaleTable runs the scaling matrix on the deterministic sim backend,
// one (app, node count) cell per worker job. Every run verifies its
// checksum against the sequential reference, so the table doubles as a
// correctness matrix for the directory at sizes the equivalence tests'
// concurrent backends cannot reach.
func ScaleTable(workers int) ([]ScaleRow, error) {
	grid := scaleGrid()
	type cell struct {
		as appSet
		n  int
	}
	var cases []cell
	for _, as := range grid {
		for _, n := range ScaleProcs {
			cases = append(cases, cell{as, n})
		}
	}
	rows := make([]ScaleRow, len(cases))
	err := parallelDo(len(cases), workers, func(i int) error {
		a, set, n := cases[i].as.app, cases[i].as.set, cases[i].n
		res, err := Run(Config{
			App: a, Set: set, System: Base, Procs: n,
			Adapt: true, Scale: true, Verify: true,
		})
		if err != nil {
			return err
		}
		if want := SeqChecksum(a, set); !apps.Close(res.Checksum, want) {
			return fmt.Errorf("scale %s/%s at %d nodes: checksum %v differs from sequential %v",
				a.Name, set, n, res.Checksum, want)
		}
		rows[i] = ScaleRow{
			App: a.Name, Set: set, Procs: n,
			Time: res.Time, Segv: res.Segv, Msgs: res.Msgs, Bytes: res.Bytes,
			Relay:     res.Protocol.AdaptRelayBytes,
			Redirects: res.Protocol.DirRedirects,
			Hops:      res.Protocol.DirHops,
			Fallbacks: res.Protocol.DirFallbacks,
			ServeMax:  res.ServeMax,
			ServeMean: res.ServeMean,
		}
		return nil
	})
	return rows, err
}

// Micro reports the Section 5 primitive costs measured on the simulated
// platform next to the paper's numbers.
type MicroResult struct {
	RoundTrip   time.Duration // paper: 365 µs
	LockAcquire time.Duration // paper: 427 µs
	Barrier8    time.Duration // paper: 893 µs
	ProtMin     time.Duration // paper: 18 µs
	ProtMax     time.Duration // paper: ~800 µs at 2000 pages
}

// Micro measures the primitives.
func Micro() (*MicroResult, error) {
	costs := model.SP2()
	out := &MicroResult{
		ProtMin: costs.ProtOp(0),
		ProtMax: costs.ProtOp(costs.ProtCap),
	}

	// Roundtrip.
	{
		e := sim.NewEngine(2)
		nw := cluster.New(e, costs)
		err := e.Run(func(p host.Proc) {
			const tag = 1
			if p.ID() == 0 {
				start := p.Now()
				nw.Send(p, 1, tag, nil, 0)
				nw.Recv(p, 1, tag)
				out.RoundTrip = p.Now() - start
			} else {
				nw.Recv(p, 0, tag)
				nw.Send(p, 0, tag, nil, 0)
			}
		})
		if err != nil {
			return nil, err
		}
	}
	// Free lock acquire.
	{
		e := sim.NewEngine(2)
		nw := cluster.New(e, costs)
		layout := shm.NewLayout()
		layout.Alloc("x", shm.PageWords)
		sys := tmk.New(e, nw, layout)
		err := sys.Run(func(nd *tmk.Node) {
			if nd.ID == 0 {
				start := nd.Proc().Now()
				nd.Acquire(1)
				out.LockAcquire = nd.Proc().Now() - start
				nd.Release(1)
			}
		})
		if err != nil {
			return nil, err
		}
	}
	// 8-processor barrier.
	{
		e := sim.NewEngine(8)
		nw := cluster.New(e, costs)
		layout := shm.NewLayout()
		layout.Alloc("x", shm.PageWords)
		sys := tmk.New(e, nw, layout)
		err := sys.Run(func(nd *tmk.Node) {
			start := nd.Proc().Now()
			nd.Barrier(1)
			if d := nd.Proc().Now() - start; d > out.Barrier8 {
				out.Barrier8 = d
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ---- formatting ----

// FormatTable1 renders Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: applications, data set sizes, and uniprocessor execution times\n")
	fmt.Fprintf(&b, "%-10s %-6s %-40s %12s %12s\n", "app", "set", "parameters (scaled)", "measured", "paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-6s %-40s %12s %12s\n",
			r.App, r.Set, r.Params, fmtDur(r.Measured), fmtDur(r.Paper))
	}
	return b.String()
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: %% reduction in page faults (segv), messages (msg), and data, Opt vs Base\n")
	fmt.Fprintf(&b, "%-10s %-6s | %8s %8s %8s | %8s %8s %8s\n",
		"app", "set", "segv", "msg", "data", "p.segv", "p.msg", "p.data")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-6s | %8.1f %8.1f %8.1f | %8.1f %8.1f %8.1f\n",
			r.App, r.Set, r.SegvPct, r.MsgPct, r.DataPct, r.PaperSegv, r.PaperMsg, r.PaperData)
	}
	return b.String()
}

// FormatFig5 renders Figure 5.
func FormatFig5(rows []Fig5Row, procs int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: speedups at %d processors (XHPF blank for IS)\n", procs)
	fmt.Fprintf(&b, "%-10s %-6s %8s %8s %8s %8s\n", "app", "set", "Tmk", "Opt-Tmk", "XHPF", "PVMe")
	for _, r := range rows {
		x := "-"
		if r.XHPF > 0 {
			x = fmt.Sprintf("%.2f", r.XHPF)
		}
		fmt.Fprintf(&b, "%-10s %-6s %8.2f %8.2f %8s %8.2f\n", r.App, r.Set, r.Base, r.Opt, x, r.PVMe)
	}
	return b.String()
}

// FormatFig6 renders Figure 6.
func FormatFig6(rows []Fig6Row, procs int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: speedups at %d processors under cumulative optimization levels\n", procs)
	fmt.Fprintf(&b, "%-10s %-6s", "app", "set")
	for _, n := range LevelNames {
		fmt.Fprintf(&b, " %11s", n)
	}
	fmt.Fprintln(&b)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-6s", r.App, r.Set)
		for i, v := range r.Levels {
			if !r.Applies[i] {
				fmt.Fprintf(&b, " %11s", "n/a")
			} else {
				fmt.Fprintf(&b, " %11.2f", v)
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatFig7 renders Figure 7.
func FormatFig7(rows []Fig7Row, procs int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: synchronous vs asynchronous data fetching, large data sets, %d processors\n", procs)
	fmt.Fprintf(&b, "%-10s %8s %8s %8s\n", "app", "Tmk", "Sync", "Async")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8.2f %8.2f %8.2f\n", r.App, r.Base, r.Sync, r.Async)
	}
	return b.String()
}

// FormatAdaptTable renders the adaptive-protocol comparison.
func FormatAdaptTable(rows []AdaptRow, procs int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table A: run-time adaptive update protocol at %d processors\n", procs)
	fmt.Fprintf(&b, "(tmk = invalidate baseline, adapt-tmk = run-time detection + update push,\n")
	fmt.Fprintf(&b, " opt-tmk = compiler-optimized; n/a where no regular sections exist;\n")
	fmt.Fprintf(&b, " split = pages bound sub-page, spans = section spans shipped)\n")
	fmt.Fprintf(&b, "%-8s %-6s %-10s %10s %8s %8s %8s %6s %6s %6s %8s %6s\n",
		"app", "set", "system", "time", "segv", "msg", "MB", "promo", "split", "decay", "updates", "spans")
	for _, r := range rows {
		if !r.Applies {
			fmt.Fprintf(&b, "%-8s %-6s %-10s %10s\n", r.App, r.Set, r.System, "n/a")
			continue
		}
		ad := []string{"-", "-", "-", "-", "-"}
		if r.System == "adapt-tmk" {
			ad = []string{
				fmt.Sprintf("%d", r.Promos),
				fmt.Sprintf("%d", r.Splits),
				fmt.Sprintf("%d", r.Decays),
				fmt.Sprintf("%d", r.Updates),
				fmt.Sprintf("%d", r.Spans),
			}
		}
		fmt.Fprintf(&b, "%-8s %-6s %-10s %10s %8d %8d %8.2f %6s %6s %6s %8s %6s\n",
			r.App, r.Set, r.System, fmtDur(r.Time), r.Segv, r.Msgs,
			float64(r.Bytes)/1e6, ad[0], ad[1], ad[2], ad[3], ad[4])
	}
	return b.String()
}

// FormatAdaptLockTable renders the lock-scope adaptive comparison.
func FormatAdaptLockTable(rows []AdaptLockRow, procs int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table B: lock-scope adaptive updates at %d processors\n", procs)
	fmt.Fprintf(&b, "(tmk = invalidate baseline, adapt-tmk = per-lock migratory detection with\n")
	fmt.Fprintf(&b, " grant-piggybacked diffs; lockf = pages demand-fetched inside critical sections)\n")
	fmt.Fprintf(&b, "%-8s %-6s %-10s %10s %8s %8s %8s %8s %6s %6s %7s %6s\n",
		"app", "set", "system", "time", "lockf", "segv", "msg", "MB", "promo", "decay", "grants", "probe")
	for _, r := range rows {
		ad := []string{"-", "-", "-", "-"}
		if r.System == "adapt-tmk" {
			ad = []string{
				fmt.Sprintf("%d", r.Promos),
				fmt.Sprintf("%d", r.Decays),
				fmt.Sprintf("%d", r.Grants),
				fmt.Sprintf("%d", r.Probes),
			}
		}
		fmt.Fprintf(&b, "%-8s %-6s %-10s %10s %8d %8d %8d %8.2f %6s %6s %7s %6s\n",
			r.App, r.Set, r.System, fmtDur(r.Time), r.LockFaults, r.Segv, r.Msgs,
			float64(r.Bytes)/1e6, ad[0], ad[1], ad[2], ad[3])
	}
	return b.String()
}

// FormatScaleTable renders the scaling matrix.
func FormatScaleTable(rows []ScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table C: large-machine scaling, sim backend, adapt + scale mode\n")
	fmt.Fprintf(&b, "(relay = barrier fetch-list relay bytes, span-compressed and broadcast-once;\n")
	fmt.Fprintf(&b, " redir/hops/fallbk = ownership-directory traffic; srv = per-node diff serves,\n")
	fmt.Fprintf(&b, " bal = busiest node over machine mean)\n")
	fmt.Fprintf(&b, "%-8s %-6s %4s %10s %8s %8s %8s %9s %7s %7s %7s %7s %8s %6s\n",
		"app", "set", "n", "time", "segv", "msg", "MB", "relayKB", "redir", "hops", "fallbk", "srvmax", "srvmean", "bal")
	for _, r := range rows {
		bal := 0.0
		if r.ServeMean > 0 {
			bal = float64(r.ServeMax) / r.ServeMean
		}
		fmt.Fprintf(&b, "%-8s %-6s %4d %10s %8d %8d %8.2f %9.1f %7d %7d %7d %7d %8.1f %6.2f\n",
			r.App, r.Set, r.Procs, fmtDur(r.Time), r.Segv, r.Msgs,
			float64(r.Bytes)/1e6, float64(r.Relay)/1e3,
			r.Redirects, r.Hops, r.Fallbacks, r.ServeMax, r.ServeMean, bal)
	}
	return b.String()
}

// FormatMicro renders the Section 5 microbenchmarks.
func FormatMicro(m *MicroResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 5 primitives: measured vs paper\n")
	fmt.Fprintf(&b, "%-30s %12s %12s\n", "primitive", "measured", "paper")
	fmt.Fprintf(&b, "%-30s %12s %12s\n", "min roundtrip", fmtDur(m.RoundTrip), "365µs")
	fmt.Fprintf(&b, "%-30s %12s %12s\n", "free lock acquire", fmtDur(m.LockAcquire), "427µs")
	fmt.Fprintf(&b, "%-30s %12s %12s\n", "8-processor barrier", fmtDur(m.Barrier8), "893µs")
	fmt.Fprintf(&b, "%-30s %12s %12s\n", "protection op (min)", fmtDur(m.ProtMin), "18µs")
	fmt.Fprintf(&b, "%-30s %12s %12s\n", "protection op (2000 pages)", fmtDur(m.ProtMax), "~800µs")
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/1e3)
	}
}
