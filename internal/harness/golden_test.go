package harness

import (
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden experiment tables")

// goldenTables are the sdsm-experiments outputs, one golden file per
// generator. The fast ones run in -short mode; the full evaluation runs
// otherwise. slow marks the generators skipped under -short.
var goldenTables = []struct {
	name string
	slow bool
	gen  func(workers int) (string, error)
}{
	{"micro", false, func(int) (string, error) {
		m, err := Micro()
		if err != nil {
			return "", err
		}
		return FormatMicro(m), nil
	}},
	{"table1", false, func(workers int) (string, error) {
		rows, err := Table1(workers)
		if err != nil {
			return "", err
		}
		return FormatTable1(rows), nil
	}},
	{"table2", true, func(workers int) (string, error) {
		rows, err := Table2(DefaultProcs, workers)
		if err != nil {
			return "", err
		}
		return FormatTable2(rows), nil
	}},
	{"fig5", true, func(workers int) (string, error) {
		rows, err := Fig5(DefaultProcs, workers)
		if err != nil {
			return "", err
		}
		return FormatFig5(rows, DefaultProcs), nil
	}},
	{"fig6", true, func(workers int) (string, error) {
		rows, err := Fig6(DefaultProcs, workers)
		if err != nil {
			return "", err
		}
		return FormatFig6(rows, DefaultProcs), nil
	}},
	{"fig7", true, func(workers int) (string, error) {
		rows, err := Fig7(DefaultProcs, workers)
		if err != nil {
			return "", err
		}
		return FormatFig7(rows, DefaultProcs), nil
	}},
	{"adapt", true, func(workers int) (string, error) {
		rows, err := AdaptTable(DefaultProcs, workers)
		if err != nil {
			return "", err
		}
		return FormatAdaptTable(rows, DefaultProcs), nil
	}},
	{"scale", true, func(workers int) (string, error) {
		rows, err := ScaleTable(workers)
		if err != nil {
			return "", err
		}
		return FormatScaleTable(rows), nil
	}},
	{"adaptlock", true, func(workers int) (string, error) {
		rows, err := AdaptLockTable(DefaultProcs, workers)
		if err != nil {
			return "", err
		}
		return FormatAdaptLockTable(rows, DefaultProcs), nil
	}},
}

// TestGoldenTables pins the deterministic sim-backend experiment output —
// the paper's virtual-time numbers — byte for byte against checked-in
// snapshots. Any refactor of the engine, protocol, transport, or cost
// model that moves a number fails here; an intentional recalibration
// regenerates the snapshots with
//
//	go test ./internal/harness -run TestGoldenTables -update
//
// This replaces the manual "diff sdsm-experiments output before and after"
// ritual the repo used through PR 1.
func TestGoldenTables(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	for _, g := range goldenTables {
		g := g
		t.Run(g.name, func(t *testing.T) {
			if g.slow && testing.Short() {
				t.Skip("full evaluation table; run without -short")
			}
			got, err := g.gen(workers)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", g.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s output differs from %s byte-for-byte.\n--- got ---\n%s\n--- want ---\n%s",
					g.name, path, got, want)
			}
		})
	}
}
