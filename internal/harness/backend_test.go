package harness

import (
	"fmt"
	"testing"

	"sdsm/internal/apps"
)

// TestBackendEquivalence asserts that every paper application computes
// bit-identical results on the deterministic sim backend and on the
// real-concurrency backend, across node counts. The applications are
// data-race-free, so the DSM protocol delivers the same final memory
// image regardless of scheduling; virtual times differ (the real backend
// makes no determinism promise for them), checksums must not.
//
// The real-backend runs execute in parallel (t.Parallel), which doubles as
// the suite's race-detector workout for the host layer.
func TestBackendEquivalence(t *testing.T) {
	for _, a := range apps.Registry() {
		a := a
		seq := SeqChecksum(a, apps.Small)
		for _, procs := range []int{1, 2, 8} {
			procs := procs
			simRes, err := Run(Config{App: a, Set: apps.Small, System: Base, Procs: procs, Verify: true})
			if err != nil {
				t.Fatalf("%s/p%d: sim backend: %v", a.Name, procs, err)
			}
			if !apps.Close(simRes.Checksum, seq) {
				t.Fatalf("%s/p%d: sim checksum %v differs from sequential %v", a.Name, procs, simRes.Checksum, seq)
			}
			t.Run(fmt.Sprintf("%s/p%d/real", a.Name, procs), func(t *testing.T) {
				t.Parallel()
				realRes, err := Run(Config{App: a, Set: apps.Small, System: Base, Procs: procs, Verify: true, Backend: BackendReal})
				if err != nil {
					t.Fatalf("real backend: %v", err)
				}
				if realRes.Checksum != simRes.Checksum {
					t.Errorf("real backend checksum %v != sim backend checksum %v", realRes.Checksum, simRes.Checksum)
				}
			})
		}
	}
}

// TestBackendEquivalenceOpt runs the compiler-optimized system on both
// backends for the applications exercising each augmented-interface
// feature (WRITE_ALL for jacobi, Validate_w_sync broadcast for gauss,
// lock-phase optimization for is).
func TestBackendEquivalenceOpt(t *testing.T) {
	for _, name := range []string{"jacobi", "gauss", "is"} {
		name := name
		a, err := apps.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		simRes, err := Run(Config{App: a, Set: apps.Small, System: Opt, Procs: 4, Verify: true})
		if err != nil {
			t.Fatalf("%s: sim backend: %v", name, err)
		}
		t.Run(name+"/real", func(t *testing.T) {
			t.Parallel()
			realRes, err := Run(Config{App: a, Set: apps.Small, System: Opt, Procs: 4, Verify: true, Backend: BackendReal})
			if err != nil {
				t.Fatalf("real backend: %v", err)
			}
			if realRes.Checksum != simRes.Checksum {
				t.Errorf("real backend checksum %v != sim backend checksum %v", realRes.Checksum, simRes.Checksum)
			}
		})
	}
}
