package harness

import (
	"fmt"
	"testing"

	"sdsm/internal/apps"
)

// backendMatrix is the cross-backend equivalence grid: every application
// at even and odd node counts, on every backend.
var backendMatrix = struct {
	procs    []int
	backends []Backend
}{
	procs:    []int{1, 2, 3, 5, 8},
	backends: []Backend{BackendReal, BackendNet},
}

// TestBackendEquivalence asserts that every application — the paper's six
// plus the irregular additions — computes bit-identical results on the
// deterministic sim backend, the real-concurrency backend, and the wire
// (net) backend, across even and odd node counts, and matches the
// sequential reference everywhere (IS's historical keys/procs truncation
// at non-dividing counts is fixed: the partitions now distribute the
// remainders). The applications are data-race-free, so the DSM protocol
// delivers the same final memory image regardless of scheduling and of
// whether payloads travel by reference or over a socket; virtual times
// differ (only the sim backend promises those), checksums must not.
//
// The real- and net-backend runs execute in parallel (t.Parallel), which
// doubles as the suite's race-detector workout for the host and wire
// layers.
func TestBackendEquivalence(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		seq := SeqChecksum(a, apps.Small)
		for _, procs := range backendMatrix.procs {
			procs := procs
			simRes, err := Run(Config{App: a, Set: apps.Small, System: Base, Procs: procs, Verify: true})
			if err != nil {
				t.Fatalf("%s/p%d: sim backend: %v", a.Name, procs, err)
			}
			if !apps.Close(simRes.Checksum, seq) {
				t.Fatalf("%s/p%d: sim checksum %v differs from sequential %v", a.Name, procs, simRes.Checksum, seq)
			}
			for _, backend := range backendMatrix.backends {
				backend := backend
				t.Run(fmt.Sprintf("%s/p%d/%s", a.Name, procs, backend), func(t *testing.T) {
					t.Parallel()
					res, err := Run(Config{App: a, Set: apps.Small, System: Base, Procs: procs, Verify: true, Backend: backend})
					if err != nil {
						t.Fatalf("%s backend: %v", backend, err)
					}
					if res.Checksum != simRes.Checksum {
						t.Errorf("%s backend checksum %v != sim backend checksum %v", backend, res.Checksum, simRes.Checksum)
					}
				})
			}
		}
	}
}

// TestBackendEquivalenceOpt runs the compiler-optimized system on every
// backend for the applications exercising each augmented-interface
// feature over the wire: WRITE_ALL whole-page snapshots (jacobi),
// Validate_w_sync broadcast (gauss), the lock-phase optimization (is),
// and Push section exchanges (fft).
func TestBackendEquivalenceOpt(t *testing.T) {
	for _, name := range []string{"jacobi", "gauss", "is", "fft"} {
		name := name
		a, err := apps.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		simRes, err := Run(Config{App: a, Set: apps.Small, System: Opt, Procs: 4, Verify: true})
		if err != nil {
			t.Fatalf("%s: sim backend: %v", name, err)
		}
		for _, backend := range backendMatrix.backends {
			backend := backend
			t.Run(fmt.Sprintf("%s/%s", name, backend), func(t *testing.T) {
				t.Parallel()
				res, err := Run(Config{App: a, Set: apps.Small, System: Opt, Procs: 4, Verify: true, Backend: backend})
				if err != nil {
					t.Fatalf("%s backend: %v", backend, err)
				}
				if res.Checksum != simRes.Checksum {
					t.Errorf("%s backend checksum %v != sim backend checksum %v", backend, res.Checksum, simRes.Checksum)
				}
			})
		}
	}
}
