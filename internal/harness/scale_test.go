package harness

import (
	"fmt"
	"testing"

	"sdsm/internal/apps"
)

// scaleEquivApps are the applications the scaling matrix (Table C)
// reports: tsps migrates ownership constantly through work stealing,
// jacobi holds a regular single-writer partition — together they hit the
// directory's churn path and its steady-state path.
var scaleEquivApps = []string{"tsps", "jacobi"}

// TestBackendEquivalenceScale asserts that scale mode — the per-page
// ownership directory plus span-compressed relay — preserves the
// protocol's cross-backend bit-identity at machine sizes where the
// directory actually routes traffic: 16 and 32 nodes on the
// real-concurrency and wire backends against the deterministic sim, all
// checked against the sequential reference. The directory only picks who
// serves an identical diff chain, so scheduling may reorder forwarding
// chases and redirects but must never change memory content.
func TestBackendEquivalenceScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale equivalence is the slow tier")
	}
	for _, name := range scaleEquivApps {
		a, err := apps.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		seq := SeqChecksum(a, apps.Small)
		for _, procs := range []int{16, 32} {
			procs := procs
			simRes, err := Run(Config{App: a, Set: apps.Small, System: Base, Procs: procs, Scale: true, Verify: true})
			if err != nil {
				t.Fatalf("%s/p%d: sim backend: %v", a.Name, procs, err)
			}
			if !apps.Close(simRes.Checksum, seq) {
				t.Fatalf("%s/p%d: sim checksum %v differs from sequential %v", a.Name, procs, simRes.Checksum, seq)
			}
			for _, backend := range []Backend{BackendReal, BackendNet} {
				backend := backend
				t.Run(fmt.Sprintf("%s/p%d/%s", a.Name, procs, backend), func(t *testing.T) {
					t.Parallel()
					res, err := Run(Config{App: a, Set: apps.Small, System: Base, Procs: procs, Scale: true, Verify: true, Backend: backend})
					if err != nil {
						t.Fatalf("%s backend: %v", backend, err)
					}
					if res.Checksum != simRes.Checksum {
						t.Errorf("%s backend checksum %v != sim backend checksum %v", backend, res.Checksum, simRes.Checksum)
					}
				})
			}
		}
	}
}

// TestScaleSimSmoke drives the 64- and 128-node corners of the scaling
// matrix on the sim backend: the directory must keep forwarding chains
// inside the hop cap (fallbacks stay rare, never the common path) and
// the result must still match the sequential reference. The full matrix
// with per-cell accounting lives in the scale golden; this is the fast
// guard that large machines keep computing the right answer at all.
func TestScaleSimSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("128-node sim runs are the slow tier")
	}
	for _, name := range scaleEquivApps {
		a, err := apps.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		seq := SeqChecksum(a, apps.Small)
		for _, procs := range []int{64, 128} {
			res, err := Run(Config{App: a, Set: apps.Small, System: Base, Procs: procs, Scale: true, Verify: true})
			if err != nil {
				t.Fatalf("%s/p%d: %v", a.Name, procs, err)
			}
			if !apps.Close(res.Checksum, seq) {
				t.Fatalf("%s/p%d: checksum %v differs from sequential %v", a.Name, procs, res.Checksum, seq)
			}
			ps := res.Protocol
			if ps.DirFallbacks > ps.DirRedirects {
				t.Errorf("%s/p%d: %d directory fallbacks exceed %d redirects — forwarding chains are not resolving",
					a.Name, procs, ps.DirFallbacks, ps.DirRedirects)
			}
		}
	}
}
