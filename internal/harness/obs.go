package harness

import (
	"sdsm/internal/obs"
)

// Snapshot folds one Result into the unified metrics snapshot: the
// formerly scattered reporting paths (network traffic, vm counters,
// tmk.ProtocolStats, the adaptive counters, tmk.RecoveryStats) become
// namespaced counters in one obs.Snapshot, merged over the trace
// registry's own counters and histograms when the run was traced. Zero
// counters are omitted, so a plain run's snapshot reads exactly like the
// old conditional stat lines: adaptive counters only appear on adaptive
// runs, recovery counters only on recovery runs.
func Snapshot(res *Result) *obs.Snapshot {
	s := obs.NewSnapshot()
	if res.Trace != nil {
		s = res.Trace.Reg.Snapshot()
	}
	s.Set("time.ns", int64(res.Time))

	s.Set("net.msgs", res.Msgs)
	s.Set("net.bytes", res.Bytes)

	s.Set("vm.faults.read", res.VM.ReadFaults)
	s.Set("vm.faults.write", res.VM.WriteFaults)
	s.Set("vm.prot.ops", res.VM.ProtOps)
	s.Set("vm.twins", res.VM.Twins)
	s.Set("vm.diffs", res.VM.Diffs)
	s.Set("vm.diff.words", res.VM.DiffWords)

	p := &res.Protocol
	s.Set("protocol.lock.acquires", p.LockAcquires)
	s.Set("protocol.barriers", p.Barriers)
	s.Set("protocol.validates", p.Validates)
	s.Set("protocol.pushes", p.Pushes)
	s.Set("protocol.wsync.serves", p.WSyncServes)
	s.Set("protocol.wsync.bcasts", p.WSyncBcasts)
	s.Set("protocol.diff.fetches", p.DiffFetches)
	s.Set("protocol.diffs.applied", p.DiffsApplied)
	s.Set("protocol.words.applied", p.WordsApplied)
	s.Set("protocol.invalidations", p.Invalidations)
	s.Set("protocol.lock.fetches", p.LockFetches)

	s.Set("protocol.diff.serves", p.DiffServes)
	s.Set("scale.dir.redirects", p.DirRedirects)
	s.Set("scale.dir.hops", p.DirHops)
	s.Set("scale.dir.fallbacks", p.DirFallbacks)
	s.Set("scale.relay.bytes", p.AdaptRelayBytes)

	s.Set("adapt.promotions", p.AdaptPromotions)
	s.Set("adapt.splits", p.AdaptSplits)
	s.Set("adapt.joins", p.AdaptJoins)
	s.Set("adapt.decays", p.AdaptDecays)
	s.Set("adapt.updates", p.AdaptUpdates)
	s.Set("adapt.spans", p.AdaptSpans)
	s.Set("adapt.pages.pushed", p.AdaptPagesPushed)
	s.Set("adapt.lock.grants", p.AdaptLockGrants)
	s.Set("adapt.lock.pages", p.AdaptLockPagesPush)
	s.Set("adapt.lock.promotions", p.AdaptLockPromotions)
	s.Set("adapt.lock.decays", p.AdaptLockDecays)
	s.Set("adapt.lock.probes", p.AdaptLockProbes)
	s.Set("adapt.lock.stale.drops", p.AdaptLockStaleDrops)

	s.Set("recovery.checkpoints", res.Recovery.Checkpoints)
	s.Set("recovery.full", res.Recovery.FullCheckpoints)
	s.Set("recovery.bytes", res.Recovery.CheckpointBytes)
	s.Set("recovery.failures", res.Recovery.Failures)
	s.Set("recovery.restores", res.Recovery.Restores)
	return s
}
