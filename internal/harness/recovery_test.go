package harness

import (
	"fmt"
	"testing"

	"sdsm/internal/apps"
)

// runRecovery executes one configuration with recovery armed and an
// injected fault, and checks a restore actually happened.
func runRecovery(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("recovery run: %v", err)
	}
	if cfg.Fault != nil && res.Recovery.Restores != 1 {
		t.Fatalf("fault at rank %d epoch %d never fired (restores=%d, checkpoints=%d)",
			cfg.Fault.Rank, cfg.Fault.Epoch, res.Recovery.Restores, res.Recovery.Checkpoints)
	}
	return res
}

// TestRecoveryEquivalence is the recovery contract's acceptance test
// (DESIGN.md §10): for every application, a run in which one node dies
// at a barrier and restores from its checkpoint records produces a
// checksum bit-identical to the uninterrupted run — on the sim backend
// and over the wire (net backend, where the victim's links really drop
// and re-pair). It also pins the zero-perturbation half of the
// contract: arming checkpoints without a fault changes neither the
// checksum nor a single virtual-time or protocol number.
func TestRecoveryEquivalence(t *testing.T) {
	const procs = 3
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			ref, err := Run(Config{App: a, Set: apps.Small, System: Base, Procs: procs, Verify: true})
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}

			quiet, err := Run(Config{App: a, Set: apps.Small, System: Base, Procs: procs, Verify: true,
				Recover: true})
			if err != nil {
				t.Fatalf("checkpointing run: %v", err)
			}
			if quiet.Checksum != ref.Checksum {
				t.Errorf("checkpointing (no fault) checksum %v != reference %v", quiet.Checksum, ref.Checksum)
			}
			if quiet.Time != ref.Time || quiet.Protocol != ref.Protocol {
				t.Errorf("checkpointing (no fault) perturbed the run: time %v vs %v, protocol %+v vs %+v",
					quiet.Time, ref.Time, quiet.Protocol, ref.Protocol)
			}
			if quiet.Recovery.Checkpoints == 0 {
				t.Error("checkpointing run wrote no records")
			}

			fault := &FaultPlan{Rank: 1, Epoch: 2}
			sim := runRecovery(t, Config{App: a, Set: apps.Small, System: Base, Procs: procs, Verify: true,
				Fault: fault})
			if sim.Checksum != ref.Checksum {
				t.Errorf("sim recovery checksum %v != reference %v", sim.Checksum, ref.Checksum)
			}
			net := runRecovery(t, Config{App: a, Set: apps.Small, System: Base, Procs: procs, Verify: true,
				Backend: BackendNet, Fault: fault})
			if net.Checksum != ref.Checksum {
				t.Errorf("net recovery checksum %v != reference %v", net.Checksum, ref.Checksum)
			}
		})
	}
}

// TestRecoveryAdapt kills a node mid-run with the adaptive update
// protocol on: the restored replica's detector must resume from its
// snapshot in lockstep with the survivors' (the no-negotiation
// invariant tolerates no divergence), and the checksum must match the
// uninterrupted adaptive run.
func TestRecoveryAdapt(t *testing.T) {
	for _, name := range []string{"jacobi", "shallow"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			a, err := apps.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := Run(Config{App: a, Set: apps.Small, System: Base, Procs: 4, Verify: true, Adapt: true})
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			for _, backend := range []Backend{BackendSim, BackendNet} {
				res := runRecovery(t, Config{App: a, Set: apps.Small, System: Base, Procs: 4, Verify: true,
					Adapt: true, Backend: backend, Fault: &FaultPlan{Rank: 2, Epoch: 3}})
				if res.Checksum != ref.Checksum {
					t.Errorf("%s adaptive recovery checksum %v != reference %v", backend, res.Checksum, ref.Checksum)
				}
			}
		})
	}
}

// TestRecoveryMatrix sweeps the fault space: first and last killable
// rank, at each of the first barrier epochs, across node counts, with
// both always-full and periodic-incremental record cadences. Checksums
// must match the uninterrupted run everywhere. The full sweep runs one
// app; -short samples it.
func TestRecoveryMatrix(t *testing.T) {
	a, err := apps.ByName("jacobi")
	if err != nil {
		t.Fatal(err)
	}
	procsList := []int{2, 3, 5, 8}
	epochs := []int{1, 2, 3, 5}
	everies := []int{1, 3}
	if testing.Short() {
		procsList = []int{3, 5}
		epochs = []int{2, 3}
		everies = []int{3}
	}
	for _, procs := range procsList {
		procs := procs
		ref, err := Run(Config{App: a, Set: apps.Small, System: Base, Procs: procs, Verify: true})
		if err != nil {
			t.Fatalf("p%d: reference run: %v", procs, err)
		}
		for _, rank := range []int{1, procs - 1} {
			for _, epoch := range epochs {
				for _, every := range everies {
					rank, epoch, every := rank, epoch, every
					t.Run(fmt.Sprintf("p%d/r%d/e%d/k%d", procs, rank, epoch, every), func(t *testing.T) {
						t.Parallel()
						res := runRecovery(t, Config{App: a, Set: apps.Small, System: Base, Procs: procs,
							Verify: true, CheckpointEvery: every,
							Fault: &FaultPlan{Rank: rank, Epoch: epoch}})
						if res.Checksum != ref.Checksum {
							t.Errorf("recovery checksum %v != reference %v", res.Checksum, ref.Checksum)
						}
					})
				}
			}
		}
	}
}

// TestRecoveryScale kills a node on a 16-rank scale-mode machine: the
// restored replica's ownership directory comes back from the checkpoint
// record's owner map (wire.Checkpoint.Owners), so its post-restore
// hints agree with the survivors' and the forwarding chains keep
// resolving — a replica that rebooted with a cold directory would route
// every fault through the Direct fallback and, worse, answer other
// nodes' chases with stale hints. Checksums must match the uninterrupted
// scale run on both the sim and the wire backend.
func TestRecoveryScale(t *testing.T) {
	for _, name := range []string{"tsps", "jacobi"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			a, err := apps.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			const procs = 16
			ref, err := Run(Config{App: a, Set: apps.Small, System: Base, Procs: procs, Verify: true, Scale: true})
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			for _, backend := range []Backend{BackendSim, BackendNet} {
				res := runRecovery(t, Config{App: a, Set: apps.Small, System: Base, Procs: procs, Verify: true,
					Scale: true, CheckpointEvery: 2, Backend: backend, Fault: &FaultPlan{Rank: 5, Epoch: 3}})
				if res.Checksum != ref.Checksum {
					t.Errorf("%s scale recovery checksum %v != reference %v", backend, res.Checksum, ref.Checksum)
				}
			}
		})
	}
}

// TestRecoveryFileSink spills records to disk and restores from them:
// the FileSink path must behave exactly like the in-memory sink.
func TestRecoveryFileSink(t *testing.T) {
	a, err := apps.ByName("gauss")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(Config{App: a, Set: apps.Small, System: Base, Procs: 3, Verify: true})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	res := runRecovery(t, Config{App: a, Set: apps.Small, System: Base, Procs: 3, Verify: true,
		CheckpointEvery: 4, CheckpointDir: t.TempDir(),
		Fault: &FaultPlan{Rank: 2, Epoch: 6}})
	if res.Checksum != ref.Checksum {
		t.Errorf("file-sink recovery checksum %v != reference %v", res.Checksum, ref.Checksum)
	}
}
