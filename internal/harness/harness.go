// Package harness runs the paper's experiments: it configures an
// application, system (Base TreadMarks, compiler-optimized TreadMarks at
// any optimization level, XHPF stand-in, PVMe stand-in), data set, and
// processor count; executes the run on the simulated cluster; and returns
// execution time, speedup, and protocol statistics. The table and figure
// formatters live in tables.go.
package harness

import (
	"fmt"
	"time"

	"sdsm/internal/adapt"
	"sdsm/internal/apps"
	"sdsm/internal/cluster"
	"sdsm/internal/compiler"
	"sdsm/internal/host"
	"sdsm/internal/interp"
	"sdsm/internal/model"
	"sdsm/internal/mp"
	"sdsm/internal/mpnet"
	"sdsm/internal/obs"
	"sdsm/internal/rsd"
	"sdsm/internal/shm"
	"sdsm/internal/sim"
	"sdsm/internal/tmk"
	"sdsm/internal/vm"
	"sdsm/internal/xhpf"
)

// SystemKind selects one of the four systems the paper compares.
type SystemKind string

// The four systems of Figure 5 plus the explicit optimization levels of
// Figure 6.
const (
	Base SystemKind = "tmk"     // unmodified TreadMarks
	Opt  SystemKind = "opt-tmk" // compiler-optimized, per-app best config
	XHPF SystemKind = "xhpf"    // parallelizing-compiler stand-in
	PVMe SystemKind = "pvme"    // hand-coded message passing
)

// Backend selects the execution backend for DSM runs.
type Backend string

// The three host backends (see internal/host). The sim backend reproduces
// the paper's virtual-time numbers deterministically; the real backend
// runs the nodes as goroutines genuinely in parallel; the net backend
// additionally carries every protocol payload over loopback sockets in
// the wire format (and, for message-passing systems, runs one OS process
// per rank). Application results are identical on all three; virtual
// times are scheduling-dependent off the sim backend.
const (
	BackendSim  Backend = "sim"
	BackendReal Backend = "real"
	BackendNet  Backend = "net"
)

// DefaultBackend is the backend Run uses when Config.Backend is empty
// (cmd/sdsm-experiments sets it from its -backend flag; the table
// generators inherit it).
var DefaultBackend = BackendSim

// Config selects one run.
type Config struct {
	App    *apps.App
	Set    apps.DataSet
	System SystemKind
	Procs  int
	Costs  model.Costs
	Verify bool
	// Backend picks the host backend; empty means DefaultBackend.
	// Message-passing systems run on the sim backend (their receive-any
	// and reduction orders are only deterministic there) except under
	// BackendNet, which runs them as one OS process per rank via
	// internal/mpnet (approximate verification: real arrival order makes
	// reduction order, and therefore the last float ulps, scheduling-
	// dependent).
	Backend Backend
	// Level overrides the per-app best compiler options (for the Figure 6
	// sweep); nil means BestOptions for Opt.
	Level *compiler.Options
	// SyncFetch forces synchronous data fetching (Figure 7).
	SyncFetch bool
	// Adapt enables the run-time adaptive update protocol (internal/adapt):
	// the machine profiles fault/fetch traffic per barrier epoch and
	// switches stable producer→consumer pages from invalidate to update;
	// it also arms the lock-scope detectors that piggyback migratory
	// pages' diffs on lock grants.
	Adapt bool
	// AdaptK overrides the promotion hysteresis (0 = adapt.DefaultK).
	AdaptK int
	// AdaptM overrides the lock-binding re-probe period (0 =
	// adapt.DefaultReprobeM): after M consecutive piggybacked grants on a
	// hand-off edge, one grant withholds the piggyback to detect
	// consumers that stopped reading.
	AdaptM int
	// Scale enables the large-machine protocol mode (tmk.EnableScale):
	// the distributed per-page ownership directory spreads diff serving
	// across readers instead of queueing on the last writer, and the
	// barrier fetch-list relay is priced span-compressed and
	// broadcast-once. Off by default — the paper's 8-node tables pin the
	// unscaled protocol bit for bit.
	Scale bool
	// Recover arms checkpoint/restore (DESIGN.md §10): every node writes
	// a recovery record at each barrier arrival, and — on the net backend
	// — peer death becomes a recoverable event instead of a run abort.
	// Off by default: the paper's tables run with no recovery machinery.
	Recover bool
	// CheckpointEvery is the full-record period in barriers (≤1: every
	// record is full). Meaningful with Recover.
	CheckpointEvery int
	// CheckpointDir spills records to disk (tmk.FileSink) instead of the
	// default in-memory sink. Meaningful with Recover.
	CheckpointDir string
	// Fault injects one failure; implies Recover for DSM runs. For DSM
	// systems, rank Rank dies at its Epoch-th barrier arrival and
	// restores from its records. For message-passing systems on the net
	// backend, rank Rank's process is killed after AfterFrames frames and
	// the coordinator respawns and replays it (internal/mpnet).
	Fault *FaultPlan
	// Trace arms the observability layer (internal/obs) for DSM runs:
	// every node records protocol events into a fixed ring, the unified
	// metrics registry collects counters and histograms, and the backend
	// hosts register their own counters. The machine is returned in
	// Result.Trace for export (obs.WriteTrace) and snapshotting. On the
	// sim backend the trace carries the virtual timeline and is
	// deterministic; on real/net it carries wall clocks. Off by default:
	// with Trace unset, no tracer exists and every emit site is a nil
	// check (the golden tables and the alloc gate pin this).
	Trace bool
	// TraceCap overrides the per-node event ring capacity (0 =
	// obs.DefaultRingCap). Older events beyond the capacity are dropped
	// oldest-first and counted.
	TraceCap int
	// Arenas, when non-nil, backs rank i's node memory with warm pool
	// storage Arenas[i] (the DSM-as-a-service path, internal/svc). The
	// run borrows the storage, audits the arena guard words after the
	// program finishes — a violation is a hard error, it means the job
	// scribbled outside its address space — and releases everything back
	// for the slot's next job. Arena-backed runs are bit-identical to
	// fresh ones (vm.NewWarm). DSM systems only; ignored for
	// message-passing systems, whose ranks are separate processes.
	Arenas []*vm.Arena
}

// FaultPlan describes one injected failure (see Config.Fault).
type FaultPlan struct {
	Rank        int
	Epoch       int
	AfterFrames int
}

// Result is the outcome of one run.
type Result struct {
	Time     time.Duration
	Checksum float64
	Msgs     int64
	Bytes    int64
	Segv     int64
	Protocol tmk.ProtocolStats
	VM       vm.Counters
	Report   *compiler.Report
	// Recovery sums every node's checkpoint/restore counters; zero value
	// unless the run had Recover set.
	Recovery tmk.RecoveryStats
	// Trace is the observability machine of a Config.Trace run (nil
	// otherwise): per-node event rings plus the unified metrics registry.
	Trace *obs.Machine
	// ServeMax and ServeMean describe the per-node diff-serve balance
	// (tmk.System.ServeBalance): the busiest node's payload-serve count
	// and the machine mean. The scaling table reports their ratio.
	ServeMax  int64
	ServeMean float64
}

// Run executes one configuration.
func Run(cfg Config) (*Result, error) {
	if cfg.Costs == (model.Costs{}) {
		cfg.Costs = model.SP2()
	}
	if cfg.Backend == "" {
		cfg.Backend = DefaultBackend
	}
	switch cfg.Backend {
	case BackendSim, BackendReal, BackendNet:
	default:
		return nil, fmt.Errorf("harness: unknown backend %q", cfg.Backend)
	}
	switch cfg.System {
	case Base, Opt:
		return runDSM(cfg)
	case PVMe:
		return runMP(cfg, 0)
	case XHPF:
		if !cfg.App.XHPF {
			return nil, fmt.Errorf("harness: %s cannot be parallelized by the XHPF stand-in: %s",
				cfg.App.Name, xhpf.RejectionReason(cfg.App.Name))
		}
		return runMP(cfg, cfg.App.XHPFOverhead)
	}
	return nil, fmt.Errorf("harness: unknown system %q", cfg.System)
}

func runDSM(cfg Config) (*Result, error) {
	prog := cfg.App.Build(cfg.Procs)
	params := prog.Prepare(cfg.App.Sets[cfg.Set], cfg.Procs)

	var rep *compiler.Report
	if cfg.System == Opt {
		opts := cfg.App.BestOptions(cfg.Procs, params)
		if cfg.Level != nil {
			opts = *cfg.Level
			opts.NProcs = cfg.Procs
			opts.Params = params
		}
		if cfg.SyncFetch {
			opts.Async = false
		}
		prog, rep = compiler.Compile(prog, opts)
	}

	layout := compiler.BuildLayout(prog, params)
	var m *obs.Machine
	if cfg.Trace {
		// Virtual timeline on sim (deterministic, WT pinned to zero), wall
		// clocks on the concurrent backends.
		m = obs.NewMachine(cfg.Procs, cfg.TraceCap, cfg.Backend != BackendSim)
	}
	var h host.Host
	var nw host.Transport
	switch cfg.Backend {
	case BackendReal:
		r := host.NewReal(cfg.Procs)
		if m != nil {
			r.EnableObs(m.Reg)
		}
		h = r
		nw = cluster.New(h, cfg.Costs)
	case BackendNet:
		n, err := host.NewNet(cfg.Procs, cfg.Costs)
		if err != nil {
			return nil, fmt.Errorf("harness: net backend: %w", err)
		}
		defer n.Close()
		if m != nil {
			n.EnableObs(m.Reg)
		}
		h, nw = n, n
	default:
		e := sim.NewEngine(cfg.Procs)
		if m != nil {
			e.EnableObs(m.Reg)
		}
		h = e
		nw = cluster.New(h, cfg.Costs)
	}
	sys := tmk.NewWarm(h, nw, layout, cfg.Arenas)
	if cfg.Adapt {
		sys.EnableAdapt(adapt.Config{K: cfg.AdaptK, ReprobeM: cfg.AdaptM})
	}
	if cfg.Scale {
		sys.EnableScale()
	}
	if cfg.Recover || cfg.Fault != nil {
		rc := tmk.RecoveryConfig{Every: cfg.CheckpointEvery}
		if cfg.CheckpointDir != "" {
			rc.Sink = &tmk.FileSink{Dir: cfg.CheckpointDir}
		}
		if f := cfg.Fault; f != nil {
			rc.Fault = &tmk.Fault{Rank: f.Rank, Epoch: f.Epoch}
		}
		sys.EnableRecovery(rc)
		if n, ok := nw.(*host.Net); ok {
			n.EnableRecovery()
		}
	}
	if m != nil {
		sys.EnableTrace(m)
	}

	var checksum float64
	var epilogue []func(nd *tmk.Node)
	if cfg.Verify {
		arr := layout.Array(cfg.App.CheckArray)
		epilogue = append(epilogue, func(nd *tmk.Node) {
			// A program whose last synchronization was replaced by a Push
			// guarantees consistency only for the pushed sections; restore
			// global consistency with a barrier before reading everything,
			// as the paper's run-time contract requires.
			nd.Barrier(1 << 20)
			if nd.ID != 0 {
				return
			}
			nd.Validate(tmk.AccRead, []shm.Region{arr.Whole()}, false)
			nd.Mem.EnsureRead(nd.Proc(), arr.Whole())
			checksum = apps.Checksum(layout, nd.Mem.Data(), cfg.App.CheckArray)
		})
	}
	if err := interp.RunDSM(prog, sys, params, epilogue...); err != nil {
		return nil, fmt.Errorf("harness: %s/%s/%s: %w", cfg.App.Name, cfg.Set, cfg.System, err)
	}

	st := nw.Stats()
	vmc, ps := sys.Stats()
	smax, smean := sys.ServeBalance()
	if cfg.Arenas != nil {
		// Guard audit before release: release ends the loans the audit
		// inspects. A violation means this job overran its own address
		// space — in a shared pool that is a cross-job hazard, so it fails
		// the job loudly instead of poisoning the next tenant.
		for i, ar := range cfg.Arenas {
			if ar == nil {
				continue
			}
			if err := ar.CheckGuards(); err != nil {
				return nil, fmt.Errorf("harness: %s/%s rank %d: %w", cfg.App.Name, cfg.Set, i, err)
			}
		}
		sys.ReleaseWarm()
	}
	var rs tmk.RecoveryStats
	for _, nd := range sys.Nodes {
		rs.Checkpoints += nd.RecStats.Checkpoints
		rs.FullCheckpoints += nd.RecStats.FullCheckpoints
		rs.CheckpointBytes += nd.RecStats.CheckpointBytes
		rs.Failures += nd.RecStats.Failures
		rs.Restores += nd.RecStats.Restores
	}
	return &Result{
		Time:      sys.MaxTime(),
		Checksum:  checksum,
		Msgs:      st.Msgs,
		Bytes:     st.Bytes,
		Segv:      vmc.ReadFaults + vmc.WriteFaults,
		Protocol:  ps,
		VM:        vmc,
		Report:    rep,
		Recovery:  rs,
		Trace:     m,
		ServeMax:  smax,
		ServeMean: smean,
	}, nil
}

// NodeBin names the worker binary used for the process-per-rank
// message-passing deployment (Backend net on PVMe/XHPF systems); empty
// re-executes the current binary, which must call mpnet.MaybeWorker first
// thing in main (the sdsm commands do).
var NodeBin = ""

func runMP(cfg Config, overhead time.Duration) (*Result, error) {
	if cfg.App.MP == nil {
		return nil, fmt.Errorf("harness: %s has no message-passing implementation", cfg.App.Name)
	}
	if cfg.Trace {
		return nil, fmt.Errorf("harness: tracing instruments the DSM protocol; %s has no event trace (worker processes expose a metrics endpoint via %s instead)",
			cfg.System, mpnet.MetricsEnv)
	}
	if cfg.Backend == BackendNet {
		opts := mpnet.Options{
			Overhead: overhead, Verify: cfg.Verify,
			NodeBin: NodeBin, Costs: cfg.Costs,
			Recover: cfg.Recover || cfg.Fault != nil,
		}
		if f := cfg.Fault; f != nil {
			// The DSM fault plan names a barrier epoch; a process-per-rank
			// kill is placed by routed-frame count instead.
			opts.Fault = &mpnet.FaultSpec{Rank: f.Rank, AfterFrames: f.AfterFrames}
		}
		res, err := mpnet.RunOpts(cfg.App, cfg.Set, cfg.Procs, opts)
		if err != nil {
			return nil, fmt.Errorf("harness: %s/%s/%s: %w", cfg.App.Name, cfg.Set, cfg.System, err)
		}
		out := &Result{
			Time:     res.Time,
			Checksum: res.Checksum,
			Msgs:     res.Stats.Msgs,
			Bytes:    res.Stats.Bytes,
		}
		// Map process respawns onto the recovery counters so callers see
		// one shape for both fault models (DESIGN.md §10).
		out.Recovery.Failures = int64(res.Restarts)
		out.Recovery.Restores = int64(res.Restarts)
		return out, nil
	}
	w := mp.NewWorld(cfg.Procs, cfg.Costs)
	var checksum float64
	err := w.Run(func(r *mp.Rank) {
		prog := cfg.App.Build(cfg.Procs)
		params := prog.Prepare(cfg.App.Sets[cfg.Set], cfg.Procs)
		if cs, ok := params["cscale"]; ok {
			r.SetCostScale(cs)
		}
		if sum := cfg.App.MP(r, params, overhead, cfg.Verify); r.ID == 0 && cfg.Verify {
			checksum = sum
		}
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %s/%s/%s: %w", cfg.App.Name, cfg.Set, cfg.System, err)
	}
	st := w.NW.Stats()
	return &Result{
		Time:     w.MaxTime(),
		Checksum: checksum,
		Msgs:     st.Msgs,
		Bytes:    st.Bytes,
	}, nil
}

// SeqChecksum computes the sequential reference checksum for a
// configuration's application and data set.
func SeqChecksum(app *apps.App, set apps.DataSet) float64 {
	prog := app.Build(1)
	params := prog.Prepare(app.Sets[set], 1)
	layout, mem := interp.RunSeq(prog, params)
	return apps.Checksum(layout, mem, app.CheckArray)
}

// UniTime measures the uniprocessor execution time, the basis for
// speedups. As in the paper, it is the program with all synchronization
// (and DSM machinery) removed: pure compute.
func UniTime(app *apps.App, set apps.DataSet, costs model.Costs) (time.Duration, error) {
	prog := app.Build(1)
	params := prog.Prepare(app.Sets[set], 1)
	return interp.SeqTime(prog, params), nil
}

// Speedup is uniprocessor time over parallel time.
func Speedup(uni, par time.Duration) float64 {
	if par == 0 {
		return 0
	}
	return float64(uni) / float64(par)
}

// LevelName names the Figure 6 optimization levels.
var LevelNames = []string{"Base", "Comm.Aggr", "+Cons.Elim", "+Sync+Data", "+Push"}

// Levels returns Figure 6's cumulative option sets for an app (nil for
// level 0 = base).
func Levels(app *apps.App, n int, params rsd.Env) []*compiler.Options {
	ls := compiler.Levels(n, params, true)
	out := make([]*compiler.Options, len(ls))
	for i := range ls {
		if i == 0 {
			continue // base: no compilation
		}
		l := ls[i]
		out[i] = &l
	}
	return out
}
