package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func benchRep(entries ...BenchEntry) *BenchReport {
	return &BenchReport{Schema: "sdsm-bench/1", Procs: 8, Entries: entries}
}

func entry(app string, adapt bool, virtualMS float64) BenchEntry {
	return BenchEntry{App: app, Set: "small", System: "tmk", Procs: 8, Adapt: adapt, VirtualMS: virtualMS}
}

func virtualOnly(pct float64) BenchTolerances { return BenchTolerances{VirtualPct: pct} }

// TestCompareBench pins the trajectory gate's semantics: regressions
// beyond the tolerance fail, improvements and in-tolerance noise pass,
// and entries present in only one report are ignored.
func TestCompareBench(t *testing.T) {
	old := benchRep(
		entry("jacobi", false, 100),
		entry("spmv", true, 50),
		entry("retired-app", false, 10),
	)
	fresh := benchRep(
		entry("jacobi", false, 109),  // +9%: within tolerance
		entry("spmv", true, 60),      // +20%: regression
		entry("brand-new", false, 5), // no baseline: ignored
	)
	regs, compared := CompareBench(old, fresh, virtualOnly(10))
	if compared != 2 {
		t.Fatalf("compared = %d, want 2 (retired and brand-new entries skipped)", compared)
	}
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want exactly the spmv entry", regs)
	}
	if !strings.Contains(regs[0], "spmv/small/tmk+adapt/p8") {
		t.Fatalf("regression does not name the config: %s", regs[0])
	}
	if regs, _ := CompareBench(old, fresh, virtualOnly(25)); len(regs) != 0 {
		t.Fatalf("wider tolerance must pass, got %v", regs)
	}
	improved := benchRep(entry("jacobi", false, 80), entry("spmv", true, 50))
	if regs, _ := CompareBench(old, improved, virtualOnly(10)); len(regs) != 0 {
		t.Fatalf("improvements must pass, got %v", regs)
	}
}

// TestCompareBenchDistinguishesAdapt: the same app/system at the same
// count with and without -adapt are separate tracked entries.
func TestCompareBenchDistinguishesAdapt(t *testing.T) {
	old := benchRep(entry("is", false, 100), entry("is", true, 40))
	fresh := benchRep(entry("is", false, 100), entry("is", true, 90))
	regs, _ := CompareBench(old, fresh, virtualOnly(10))
	if len(regs) != 1 || !strings.Contains(regs[0], "+adapt") {
		t.Fatalf("regressions = %v, want only the adapt entry", regs)
	}
}

// TestCompareBenchWallAndAllocs pins the per-metric gates: wall time and
// allocation count each have their own tolerance, a metric is skipped
// when it is absent (zero) in either report or its tolerance is <= 0,
// and an entry with any metric checked counts as compared.
func TestCompareBenchWallAndAllocs(t *testing.T) {
	mk := func(wallMS float64, allocs int64) BenchEntry {
		e := entry("jacobi", false, 100)
		e.WallMS = wallMS
		e.Allocs = allocs
		return e
	}
	old := benchRep(mk(100, 1000))
	tols := BenchTolerances{VirtualPct: 10, WallPct: 300, AllocPct: 15}

	// Wall time may swing a lot before tripping the generous gate.
	if regs, _ := CompareBench(old, benchRep(mk(350, 1000)), tols); len(regs) != 0 {
		t.Fatalf("wall +250%% within 300%% tolerance must pass, got %v", regs)
	}
	regs, _ := CompareBench(old, benchRep(mk(450, 1000)), tols)
	if len(regs) != 1 || !strings.Contains(regs[0], "wall time") {
		t.Fatalf("wall +350%% must fail the wall gate, got %v", regs)
	}

	// Allocation counts are tight: +20% fails, +10% passes.
	regs, _ = CompareBench(old, benchRep(mk(100, 1200)), tols)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs") {
		t.Fatalf("alloc +20%% must fail the alloc gate, got %v", regs)
	}
	if regs, _ := CompareBench(old, benchRep(mk(100, 1100)), tols); len(regs) != 0 {
		t.Fatalf("alloc +10%% within 15%% tolerance must pass, got %v", regs)
	}

	// Zero allocs (report generated with -parallel) skips the alloc gate.
	if regs, _ := CompareBench(old, benchRep(mk(100, 0)), tols); len(regs) != 0 {
		t.Fatalf("absent alloc count must be skipped, got %v", regs)
	}
	// A disabled tolerance skips the metric even when both sides have it.
	off := BenchTolerances{VirtualPct: 10}
	if regs, _ := CompareBench(old, benchRep(mk(450, 1200)), off); len(regs) != 0 {
		t.Fatalf("disabled wall/alloc gates must skip, got %v", regs)
	}
	// An entry whose only shared metric is allocs still counts as compared.
	vzero := mk(0, 1000)
	vzero.VirtualMS = 0
	oldA := benchRep(vzero)
	freshA := benchRep(vzero)
	if _, compared := CompareBench(oldA, freshA, tols); compared != 1 {
		t.Fatalf("alloc-only entry must count as compared, got %d", compared)
	}
}

// TestLoadBenchReportRoundTrip: a written report loads back with the
// fields the comparator keys on.
func TestLoadBenchReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(path, []byte(`{
		"schema": "sdsm-bench/1", "procs": 8,
		"entries": [{"app":"tsp","set":"small","system":"tmk","procs":8,"adapt":true,"virtual_ms":12.5}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := LoadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 1 || rep.Entries[0].App != "tsp" || !rep.Entries[0].Adapt {
		t.Fatalf("loaded report = %+v", rep)
	}
	if _, err := LoadBenchReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := LoadBenchReport(bad); err == nil {
		t.Fatal("malformed json must error")
	}
}
