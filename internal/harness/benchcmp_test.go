package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func benchRep(entries ...BenchEntry) *BenchReport {
	return &BenchReport{Schema: "sdsm-bench/1", Procs: 8, Entries: entries}
}

func entry(app string, adapt bool, virtualMS float64) BenchEntry {
	return BenchEntry{App: app, Set: "small", System: "tmk", Procs: 8, Adapt: adapt, VirtualMS: virtualMS}
}

// TestCompareBench pins the trajectory gate's semantics: regressions
// beyond the tolerance fail, improvements and in-tolerance noise pass,
// and entries present in only one report are ignored.
func TestCompareBench(t *testing.T) {
	old := benchRep(
		entry("jacobi", false, 100),
		entry("spmv", true, 50),
		entry("retired-app", false, 10),
	)
	fresh := benchRep(
		entry("jacobi", false, 109),  // +9%: within tolerance
		entry("spmv", true, 60),      // +20%: regression
		entry("brand-new", false, 5), // no baseline: ignored
	)
	regs, compared := CompareBench(old, fresh, 10)
	if compared != 2 {
		t.Fatalf("compared = %d, want 2 (retired and brand-new entries skipped)", compared)
	}
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want exactly the spmv entry", regs)
	}
	if !strings.Contains(regs[0], "spmv/small/tmk+adapt/p8") {
		t.Fatalf("regression does not name the config: %s", regs[0])
	}
	if regs, _ := CompareBench(old, fresh, 25); len(regs) != 0 {
		t.Fatalf("wider tolerance must pass, got %v", regs)
	}
	improved := benchRep(entry("jacobi", false, 80), entry("spmv", true, 50))
	if regs, _ := CompareBench(old, improved, 10); len(regs) != 0 {
		t.Fatalf("improvements must pass, got %v", regs)
	}
}

// TestCompareBenchDistinguishesAdapt: the same app/system at the same
// count with and without -adapt are separate tracked entries.
func TestCompareBenchDistinguishesAdapt(t *testing.T) {
	old := benchRep(entry("is", false, 100), entry("is", true, 40))
	fresh := benchRep(entry("is", false, 100), entry("is", true, 90))
	regs, _ := CompareBench(old, fresh, 10)
	if len(regs) != 1 || !strings.Contains(regs[0], "+adapt") {
		t.Fatalf("regressions = %v, want only the adapt entry", regs)
	}
}

// TestLoadBenchReportRoundTrip: a written report loads back with the
// fields the comparator keys on.
func TestLoadBenchReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(path, []byte(`{
		"schema": "sdsm-bench/1", "procs": 8,
		"entries": [{"app":"tsp","set":"small","system":"tmk","procs":8,"adapt":true,"virtual_ms":12.5}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := LoadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 1 || rep.Entries[0].App != "tsp" || !rep.Entries[0].Adapt {
		t.Fatalf("loaded report = %+v", rep)
	}
	if _, err := LoadBenchReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := LoadBenchReport(bad); err == nil {
		t.Fatal("malformed json must error")
	}
}
