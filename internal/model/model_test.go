package model

import (
	"testing"
	"time"
)

func TestSP2MatchesPaperPrimitives(t *testing.T) {
	c := SP2()
	// One-way small message = 182.5µs, so send/receive roundtrip is the
	// paper's 365µs including the interrupt.
	oneWay := c.SendOverhead + c.WireLatency + c.RecvOverhead
	if 2*oneWay != 365*time.Microsecond {
		t.Errorf("minimal roundtrip = %v, want 365µs", 2*oneWay)
	}
	// A free lock acquire adds two lock-management charges: 427µs.
	if 2*oneWay+2*c.LockMgmt != 427*time.Microsecond {
		t.Errorf("free lock acquire = %v, want 427µs", 2*oneWay+2*c.LockMgmt)
	}
}

func TestOneWayBandwidth(t *testing.T) {
	c := SP2()
	small := c.OneWay(0)
	big := c.OneWay(1 << 20)
	if big-small != (1<<20)*c.PerByte {
		t.Errorf("bandwidth term wrong: %v", big-small)
	}
	// ~40 MB/s: a megabyte takes roughly 26ms on the wire.
	if d := big - small; d < 20*time.Millisecond || d > 35*time.Millisecond {
		t.Errorf("1MB transfer = %v, expected ~26ms at ~40MB/s", d)
	}
}

func TestProtOpRange(t *testing.T) {
	c := SP2()
	if c.ProtOp(0) != 18*time.Microsecond {
		t.Errorf("min protection op = %v, paper says 18µs", c.ProtOp(0))
	}
	at2000 := c.ProtOp(2000)
	if at2000 < 750*time.Microsecond || at2000 > 850*time.Microsecond {
		t.Errorf("protection op at 2000 pages = %v, paper says ~800µs", at2000)
	}
	if c.ProtOp(100000) != at2000 {
		t.Error("protection cost must saturate at ProtCap")
	}
	if c.ProtOp(100) >= c.ProtOp(1000) {
		t.Error("protection cost must grow with pages in use")
	}
}
