// Package model defines the virtual-time cost model for the simulated
// cluster. The default model is calibrated against the IBM SP/2 numbers the
// paper reports in Section 5:
//
//   - minimum user-space roundtrip (send/receive + interrupt): 365 µs
//   - minimum free lock acquire in TreadMarks: 427 µs
//   - minimum 8-processor barrier: 893 µs
//   - page fault / memory protection operation: 18–800 µs, growing with
//     the number of pages in use (AIX 3.2.5 behaviour)
//
// All results in this repository are ratios of these costs plus per-element
// compute costs, so matching these primitives is what makes the reproduced
// tables and figures keep the paper's shape.
package model

import "time"

// Costs parameterizes the simulated cluster and DSM runtime.
type Costs struct {
	// SendOverhead is CPU time spent by the sender to inject one message.
	SendOverhead time.Duration
	// WireLatency is the network transit time of a message.
	WireLatency time.Duration
	// RecvOverhead is CPU time (interrupt + dispatch) charged to the
	// receiver of a message.
	RecvOverhead time.Duration
	// PerByte is the transfer cost per payload byte (inverse bandwidth).
	PerByte time.Duration

	// LockMgmt is protocol bookkeeping charged per lock-request hop.
	LockMgmt time.Duration
	// BarrierMgmt is bookkeeping charged to the barrier master per episode.
	BarrierMgmt time.Duration

	// PageFault is the base cost of fielding an access fault (trap entry,
	// handler dispatch), excluding any protection changes or communication.
	PageFault time.Duration
	// ProtBase and ProtSlope model AIX mprotect: changing the protection of
	// one page costs ProtBase + ProtSlope × min(pagesInUse, ProtCap).
	ProtBase  time.Duration
	ProtSlope time.Duration // per page in use
	ProtCap   int           // pages-in-use count beyond which cost saturates

	// TwinPerWord is the cost per word of copying a page to make a twin.
	TwinPerWord time.Duration
	// DiffScanPerWord is the cost per word of comparing a page to its twin.
	DiffScanPerWord time.Duration
	// ApplyPerWord is the cost per word of applying received diff data.
	ApplyPerWord time.Duration
	// SectionScanPerPage is charged to a processor that must examine a page
	// on behalf of a Validate_w_sync request (Section 3.3 overhead).
	SectionScanPerPage time.Duration

	// RequestService is fixed CPU time to service a diff/page request,
	// excluding diff creation.
	RequestService time.Duration
	// ValidatePerPage is run-time bookkeeping charged per page named in a
	// Validate or Push call (section-to-page translation, notice lookup).
	ValidatePerPage time.Duration
}

// SP2 returns the cost model calibrated to the paper's platform.
//
// Derivation: one-way message = SendOverhead + WireLatency + RecvOverhead
// = 50 + 100 + 32.5 = 182.5 µs, so the minimal roundtrip is 365 µs. A free
// lock acquire is one roundtrip plus two LockMgmt charges = 427 µs. An
// 8-node barrier (7 serialized arrival interrupts at the master, 7
// serialized departure sends, plus BarrierMgmt) lands at ~893 µs; the
// micro-benchmark harness prints the measured value next to the paper's.
func SP2() Costs {
	return Costs{
		SendOverhead:       50 * time.Microsecond,
		WireLatency:        100 * time.Microsecond,
		RecvOverhead:       32500 * time.Nanosecond,
		PerByte:            25 * time.Nanosecond, // ~40 MB/s user-space MPL
		LockMgmt:           31 * time.Microsecond,
		BarrierMgmt:        60 * time.Microsecond,
		PageFault:          30 * time.Microsecond,
		ProtBase:           18 * time.Microsecond,
		ProtSlope:          391 * time.Nanosecond, // 18 µs → ~800 µs at 2000 pages
		ProtCap:            2000,
		TwinPerWord:        8 * time.Nanosecond,
		DiffScanPerWord:    12 * time.Nanosecond,
		ApplyPerWord:       10 * time.Nanosecond,
		SectionScanPerPage: 2 * time.Microsecond,
		RequestService:     25 * time.Microsecond,
		ValidatePerPage:    800 * time.Nanosecond,
	}
}

// OneWay returns the end-to-end latency of a message with n payload bytes,
// excluding sender/receiver CPU charges.
func (c Costs) OneWay(n int) time.Duration {
	return c.WireLatency + time.Duration(n)*c.PerByte
}

// ProtOp returns the cost of one page-protection change when pagesInUse
// pages are mapped.
func (c Costs) ProtOp(pagesInUse int) time.Duration {
	if pagesInUse > c.ProtCap {
		pagesInUse = c.ProtCap
	}
	return c.ProtBase + time.Duration(pagesInUse)*c.ProtSlope
}
