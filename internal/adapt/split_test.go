package adapt

import (
	"reflect"
	"testing"

	"sdsm/internal/rsd"
)

// pairWrite returns an epoch in which page pg is written by two nodes
// with the given disjoint extents — the false-sharing shape of a block
// boundary landing mid-page.
func pairWrite(pg, loNode, loHi, hiNode, hiLo int) Epoch {
	return Epoch{
		Writers: map[int][]WriteExt{pg: {
			{Node: loNode, Lo: 0, Hi: loHi},
			{Node: hiNode, Lo: hiLo, Hi: 512},
		}},
		Readers: map[int][]int{},
	}
}

// TestSplitPromotion drives the jacobi boundary-page shape: two writers
// own disjoint halves of one page, each reads the other's half every
// cycle. After K stable cycles the page must carry a sub-page split
// binding at the watershed, with both writers as consumers.
func TestSplitPromotion(t *testing.T) {
	d := New(Config{K: 3})
	for cycle := 1; cycle <= 3; cycle++ {
		d.Advance(read(map[int][]int{17: {0, 1}}))
		d.Advance(pairWrite(17, 0, 256, 1, 256))
		_, _, _, ok := d.Split(17)
		if want := cycle == 3; ok != want {
			t.Fatalf("cycle %d: Split ok = %v, want %v", cycle, ok, want)
		}
	}
	pair, cut, cons, ok := d.Split(17)
	if !ok || pair != [2]int{0, 1} || cut != 256 || !reflect.DeepEqual(cons, []int{0, 1}) {
		t.Fatalf("Split = (%v, %d, %v, %v), want ([0 1], 256, [0 1], true)", pair, cut, cons, ok)
	}
	if d.Stats.Splits != 1 || d.Stats.Promotions != 0 {
		t.Fatalf("stats = %+v, want one split, no whole-page promotion", d.Stats)
	}
	// Push (the whole-page binding query) must stay false for split pages:
	// there is no single producer to aggregate under.
	if _, _, ok := d.Push(17); ok {
		t.Fatal("split page also reports a whole-page binding")
	}
	// Satisfied cycles (no reads — the pushes cover both halves) keep the
	// binding; a read by a third node extends it.
	d.Advance(pairWrite(17, 0, 256, 1, 256))
	if _, _, _, ok := d.Split(17); !ok {
		t.Fatal("binding decayed on a satisfied cycle")
	}
	d.Advance(read(map[int][]int{17: {5}}))
	d.Advance(pairWrite(17, 0, 256, 1, 256))
	if _, _, cons, _ := d.Split(17); !reflect.DeepEqual(cons, []int{0, 1, 5}) {
		t.Fatalf("binding after extension = %v, want [0 1 5]", cons)
	}
}

// TestPairDiscardsSingleCycleReads: reads accumulated under a
// single-producer pattern must not seed the pair hysteresis when a
// second writer appears — the transition discards them, exactly as a
// producer change does, so a split binding still takes K *pair* cycles.
func TestPairDiscardsSingleCycleReads(t *testing.T) {
	d := New(Config{K: 2})
	d.Advance(read(map[int][]int{6: {0, 1}}))
	d.Advance(write(map[int]int{6: 0})) // single-producer cycle with readers {0,1}
	// The pair appears. The in-flight reads belonged to the broken single
	// pattern; this epoch contributes no pair cycle with consumers.
	d.Advance(read(map[int][]int{6: {0, 1}}))
	d.Advance(pairWrite(6, 0, 256, 1, 256))
	d.Advance(read(map[int][]int{6: {0, 1}}))
	d.Advance(pairWrite(6, 0, 256, 1, 256))
	if _, _, _, ok := d.Split(6); ok {
		t.Fatal("split binding formed with a cycle inherited from the single pattern")
	}
	d.Advance(read(map[int][]int{6: {0, 1}}))
	d.Advance(pairWrite(6, 0, 256, 1, 256))
	if _, _, _, ok := d.Split(6); !ok {
		t.Fatal("split binding missing after K genuine pair cycles")
	}
}

// TestSingleDiscardsPairCycleReads is the mirror of the previous test:
// reads accumulated while pair hysteresis was in progress must not seed
// the single-producer streak when the pair breaks to one writer.
func TestSingleDiscardsPairCycleReads(t *testing.T) {
	d := New(Config{K: 2})
	d.Advance(read(map[int][]int{6: {2, 3}}))
	d.Advance(pairWrite(6, 0, 256, 1, 256)) // pair cycle with readers {2,3}
	d.Advance(read(map[int][]int{6: {2, 3}}))
	d.Advance(write(map[int]int{6: 0})) // pair breaks to a single writer
	// The reads of epoch 3 consumed the pair's production; they must not
	// count as a single-producer cycle.
	d.Advance(read(map[int][]int{6: {2, 3}}))
	d.Advance(write(map[int]int{6: 0}))
	if _, _, ok := d.Push(6); ok {
		t.Fatal("promoted with a cycle inherited from the pair pattern")
	}
	d.Advance(read(map[int][]int{6: {2, 3}}))
	d.Advance(write(map[int]int{6: 0}))
	if _, _, ok := d.Push(6); !ok {
		t.Fatal("not promoted after K genuine single-producer cycles")
	}
}

// TestSplitRequiresDisjointExtents: two writers whose extents overlap are
// a write conflict, not false sharing — no split binding may form, and
// hysteresis restarts each conflicting epoch.
func TestSplitRequiresDisjointExtents(t *testing.T) {
	d := New(Config{K: 2})
	for cycle := 0; cycle < 4; cycle++ {
		d.Advance(read(map[int][]int{9: {0, 1}}))
		d.Advance(Epoch{Writers: map[int][]WriteExt{9: {
			{Node: 0, Lo: 0, Hi: 300},
			{Node: 1, Lo: 200, Hi: 512},
		}}, Readers: map[int][]int{}})
	}
	if _, _, _, ok := d.Split(9); ok {
		t.Fatal("split binding formed over overlapping extents")
	}
	// Unknown extents (Hi == 0) are equally disqualifying.
	d2 := New(Config{K: 2})
	for cycle := 0; cycle < 4; cycle++ {
		d2.Advance(read(map[int][]int{9: {0, 1}}))
		d2.Advance(Epoch{Writers: map[int][]WriteExt{9: {
			{Node: 0}, {Node: 1, Lo: 256, Hi: 512},
		}}, Readers: map[int][]int{}})
	}
	if _, _, _, ok := d2.Split(9); ok {
		t.Fatal("split binding formed over unknown extents")
	}
}

// TestSplitDecay: a split binding decays when the pair changes, when a
// third writer appears, or when a write crosses the watershed.
func TestSplitDecay(t *testing.T) {
	bind := func() *Detector {
		d := New(Config{K: 2})
		for cycle := 0; cycle < 2; cycle++ {
			d.Advance(read(map[int][]int{3: {0, 1}}))
			d.Advance(pairWrite(3, 0, 128, 1, 384))
		}
		if _, _, _, ok := d.Split(3); !ok {
			t.Fatal("setup: no split binding")
		}
		return d
	}

	d := bind()
	d.Advance(pairWrite(3, 2, 128, 1, 384)) // different pair
	if _, _, _, ok := d.Split(3); ok {
		t.Fatal("no decay on a pair change")
	}
	if d.Stats.Decays != 1 {
		t.Fatalf("decays = %d, want 1", d.Stats.Decays)
	}

	d = bind()
	d.Advance(Epoch{Writers: map[int][]WriteExt{3: {
		{Node: 0, Lo: 0, Hi: 128}, {Node: 1, Lo: 384, Hi: 512}, {Node: 2, Lo: 200, Hi: 210},
	}}, Readers: map[int][]int{}})
	if _, _, _, ok := d.Split(3); ok {
		t.Fatal("no decay on a third writer")
	}

	d = bind()
	// The low writer's extent crosses the watershed (cut = 256).
	d.Advance(pairWrite(3, 0, 400, 1, 400))
	if _, _, _, ok := d.Split(3); ok {
		t.Fatal("no decay on a write across the watershed")
	}

	// A single writer from the pair, by contrast, is a satisfied producer
	// epoch — the binding must hold.
	d = bind()
	d.Advance(write(map[int]int{3: 0}))
	if _, _, _, ok := d.Split(3); !ok {
		t.Fatal("binding decayed when one pair member produced alone")
	}
	// But a single outside writer takes the page.
	d.Advance(write(map[int]int{3: 7}))
	if _, _, _, ok := d.Split(3); ok {
		t.Fatal("no decay on an outside single writer")
	}
}

// TestSectionJoin: a page whose pattern matches an adjacent whole-page
// bound section (same producer, same consumers) joins it after one stable
// cycle instead of re-serving the full K-cycle hysteresis.
func TestSectionJoin(t *testing.T) {
	d := New(Config{K: 3})
	for cycle := 0; cycle < 3; cycle++ {
		d.Advance(read(map[int][]int{10: {1, 2}}))
		d.Advance(write(map[int]int{10: 0}))
	}
	if _, _, ok := d.Push(10); !ok {
		t.Fatal("setup: page 10 not bound")
	}
	// Page 11: same producer and consumers, adjacent to the bound page —
	// one cycle suffices.
	d.Advance(read(map[int][]int{11: {1, 2}}))
	d.Advance(write(map[int]int{11: 0}))
	if _, cons, ok := d.Push(11); !ok || !reflect.DeepEqual(cons, []int{1, 2}) {
		t.Fatalf("Push(11) = (%v, %v), want join with [1 2]", cons, ok)
	}
	if d.Stats.SectionJoins != 1 {
		t.Fatalf("section joins = %d, want 1", d.Stats.SectionJoins)
	}
	// Page 12: adjacent but a different consumer set — no join, full
	// hysteresis applies.
	d.Advance(read(map[int][]int{12: {5}}))
	d.Advance(write(map[int]int{12: 0}))
	if _, _, ok := d.Push(12); ok {
		t.Fatal("page with a different consumer set joined the section")
	}
	// Page 13 written by a different producer — no join either.
	d.Advance(read(map[int][]int{13: {1, 2}}))
	d.Advance(write(map[int]int{13: 4}))
	if _, _, ok := d.Push(13); ok {
		t.Fatal("page with a different producer joined the section")
	}
}

// TestSectionsClustering pins the section shape of the binding state:
// contiguous pages with identical bindings form one section; adjacent
// pages bound to a different consumer set or producer split; split-bound
// pages form their own sections.
func TestSectionsClustering(t *testing.T) {
	d := New(Config{K: 2})
	drive := func(pg int, prod int, readers []int) {
		for cycle := 0; cycle < 2; cycle++ {
			d.Advance(read(map[int][]int{pg: readers}))
			d.Advance(write(map[int]int{pg: prod}))
		}
	}
	drive(4, 0, []int{1})
	drive(5, 0, []int{1})
	drive(6, 0, []int{2}) // same producer, different consumer: must split
	drive(7, 3, []int{2}) // same consumer, different producer: must split
	for cycle := 0; cycle < 2; cycle++ {
		d.Advance(read(map[int][]int{9: {0, 1}}))
		d.Advance(pairWrite(9, 0, 256, 1, 256))
	}
	got := d.Sections()
	want := []Section{
		{Span: rsd.Span{Lo: 4, Hi: 6}, Producer: 0, Consumers: []int{1}},
		{Span: rsd.Span{Lo: 6, Hi: 7}, Producer: 0, Consumers: []int{2}},
		{Span: rsd.Span{Lo: 7, Hi: 8}, Producer: 3, Consumers: []int{2}},
		{Span: rsd.Span{Lo: 9, Hi: 10}, Split: true, Producer: -1, Pair: [2]int{0, 1}, Consumers: []int{0, 1}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Sections() = %+v,\nwant %+v", got, want)
	}
	// A pattern break on the middle page of a section shrinks it; the
	// neighbor keeps its binding (the decay asymmetry).
	drive(5, 7, []int{1}) // outside writer takes page 5
	if _, _, ok := d.Push(4); !ok {
		t.Fatal("neighbor page lost its binding to an unrelated break")
	}
	if _, _, ok := d.Push(5); ok {
		t.Fatal("broken page kept its binding")
	}
	secs := d.Sections()
	if len(secs) == 0 || secs[0].Span != (rsd.Span{Lo: 4, Hi: 5}) {
		t.Fatalf("section did not shrink around the break: %+v", secs)
	}
}
