// Package adapt is the run-time access-pattern detector behind the DSM's
// adaptive update protocol.
//
// The paper's compiler replaces invalidate-and-fault traffic with
// aggregated pushes wherever regular-section analysis can prove who will
// read what. When the compiler cannot summarize an access — irregular
// indexing, data-dependent neighbors — the system falls back to the plain
// invalidate protocol and loses the entire benefit. This package recovers
// it at run time, in the spirit of Munin's multi-protocol runtime: the
// run-time observes, per barrier epoch, which node writes each page and
// which nodes demand-fetch it, infers stable producer→consumer relations,
// and — once a pattern has held for K production cycles — switches those
// pages from invalidate to update. The protocol layer (package tmk) then
// piggybacks the producer's diffs to the bound consumers at barrier
// departure instead of leaving them to fault, and decays straight back to
// invalidate when the pattern breaks.
//
// The binding unit is a section, not a page: bound pages with the same
// producer and consumer set cluster into maximal contiguous spans
// (Sections, rsd.Coalesce), the producer ships one run-length-encoded
// diff span per (consumer, section), and hysteresis acts section-shaped —
// a page whose pattern matches an adjacent bound page joins its section
// without re-serving the full K-cycle warm-up, and a pattern break on one
// page splits or shrinks the section it sits in instead of decaying the
// neighbors (the decay asymmetry: whole sections never fall as a unit,
// they erode page by page, while every page's own promotion remains
// individually hysteresis-guarded).
//
// Two-writer pages get a second chance the page-granular protocol cannot
// offer: when exactly two nodes write disjoint extents of one page, cycle
// after cycle — spatial false sharing, a block boundary landing mid-page —
// the detector learns a sub-page split binding at the observed
// write-extent watershed. Each writer then pushes only its own diffs
// (which cover exactly its half) to the consumers on the far side, every
// pending notice is satisfied by the paired pushes, and the page leaves
// the invalidate fault loop that whole-page adaptation structurally
// cannot win (the paper's false-sharing case; see DESIGN.md §8).
//
// The detector is deterministic and runs replicated: every node feeds the
// same globally-relayed observations (write notices with write extents
// already travel with barriers; fetch observations ride the
// Arrival.Fetched / Depart.Fetched wire fields) through the same
// transition function — iterating pages in sorted order, so even the
// section-join rule, which reads neighbor state mid-transition, is a pure
// function of the observation stream — and all nodes agree on the
// bindings without any extra coordination, the same idiom the barrier's
// Validate_w_sync responder assignment uses.
//
// A pattern is tracked per page as a production cycle: a cycle starts when
// the page's producer (or, for split tracking, its writer pair) publishes
// a write and ends at the next write, with every demand fetch observed in
// between attributed to the cycle. This makes the detector phase-tolerant:
// the common "write phase, then read phase" shape of barrier programs
// (Jacobi's copy/stencil, an irregular stencil's update/relax) alternates
// writers and readers across epochs, and per-epoch matching would never
// see them together.
package adapt

import (
	"fmt"
	"sort"
	"strings"

	"sdsm/internal/rsd"
)

// DefaultK is the default number of consecutive stable production cycles
// before a page switches to update mode. Two cycles is the minimum that
// distinguishes a repeating pattern from a one-shot handoff; the first
// cycle of any run is further skewed by cold-start faults.
const DefaultK = 3

// Config tunes the detectors (the barrier-epoch Detector and the
// per-lock LockDetector share it).
type Config struct {
	// K is the hysteresis: a page switches to update mode after its
	// producer→consumer pattern has held for K consecutive production
	// cycles (0 means DefaultK). The lock detector uses the same K for
	// its edge hysteresis.
	K int
	// ReprobeM bounds binding staleness for lock-scope bindings: after M
	// consecutive piggybacked grants on one edge, one grant withholds the
	// piggyback ("re-probe") so an acquirer that stopped reading the
	// pages is detected within M wasted piggybacks (0 means
	// DefaultReprobeM).
	ReprobeM int
}

func (c Config) k() int {
	if c.K <= 0 {
		return DefaultK
	}
	return c.K
}

// WriteExt is one writer's observation for one page in one epoch: the
// writing node and the union of its declared write extents within the
// page, as a [Lo, Hi) word range. Hi == 0 means the extent is unknown
// (the page was republished without a fresh write region) and the whole
// page must be assumed.
type WriteExt struct {
	Node   int
	Lo, Hi int
}

// known reports whether the extent is usable for sub-page reasoning.
func (w WriteExt) known() bool { return w.Hi > 0 }

// Epoch is the globally shared observation for one barrier epoch: for each
// page, the nodes that closed write intervals covering it (with their
// write extents), and the nodes that demand-fetched remote data for it.
// Writers come from the write notices every node learns at the barrier;
// Readers from the relayed arrival fetch lists.
type Epoch struct {
	Writers map[int][]WriteExt
	Readers map[int][]int
}

// Mode is a page's current protocol.
type Mode uint8

const (
	// Invalidate is the base protocol: write notices invalidate the page
	// and consumers fault and fetch.
	Invalidate Mode = iota
	// Update is the adaptive protocol: the producer pushes its diffs to
	// the bound consumers at barrier departure.
	Update
	// Split is the sub-page adaptive protocol for falsely shared pages:
	// two writers own disjoint halves at a stable watershed, and each
	// pushes its own diffs to the bound consumers on the far side.
	Split
)

// pattern is the per-page detector state. Single-producer and writer-pair
// hysteresis are mutually exclusive: a single-writer cycle resets the
// pair tracking and vice versa, so at most one promotion path is armed.
type pattern struct {
	producer  int   // last single writer; -1 before any write
	consumers []int // sorted consumer set of the last completed cycle
	cur       map[int]bool
	streak    int // consecutive cycles with a stable producer+consumer set
	mode      Mode
	bound     []int // sorted consumer set pushed to while bound

	// Writer-pair (sub-page split) hysteresis.
	pairLo, pairHi int   // the two writers, ordered by extent position; -1 unset
	cut            int   // watershed: pairLo writes [0,cut), pairHi [cut,PageWords)
	pairCons       []int // sorted consumer set of the last completed pair cycle
	pairStreak     int   // consecutive pair cycles with stable pair+consumers
}

// clearPair resets the writer-pair hysteresis.
func (p *pattern) clearPair() {
	p.pairLo, p.pairHi = -1, -1
	p.cut = 0
	p.pairCons = nil
	p.pairStreak = 0
}

// clearSingle resets the single-producer hysteresis.
func (p *pattern) clearSingle() {
	p.producer = -1
	p.consumers = nil
	p.streak = 0
}

// Stats counts detector transitions.
type Stats struct {
	Promotions   int64 // pages switched invalidate → update (whole page)
	Splits       int64 // pages switched to sub-page split bindings
	SectionJoins int64 // of Promotions: pages that joined an adjacent bound section early
	Decays       int64 // bound pages switched back to invalidate
}

// TransKind identifies one detector transition in the per-epoch log.
type TransKind uint8

const (
	// TransPromote: invalidate → update after the full K-cycle warm-up.
	TransPromote TransKind = iota
	// TransSplit: invalidate → sub-page split binding.
	TransSplit
	// TransJoin: invalidate → update by joining an adjacent bound section.
	TransJoin
	// TransDecay: any binding → invalidate.
	TransDecay
)

// Transition is one entry of the per-epoch transition log.
type Transition struct {
	Page int
	Kind TransKind
}

// Detector is the replicated pattern detector for one DSM machine. All
// nodes construct it with the same Config and feed it the same Epochs, so
// its bindings are identical everywhere.
type Detector struct {
	cfg   Config
	pages map[int]*pattern
	Stats Stats

	// LogTrans enables the per-epoch transition log (observability only —
	// off by default so an untraced run performs no extra work). When set,
	// Trans holds the transitions of the most recent Advance, in the
	// deterministic page-visit order.
	LogTrans bool
	Trans    []Transition
}

// New creates a detector.
func New(cfg Config) *Detector {
	return &Detector{cfg: cfg, pages: map[int]*pattern{}}
}

// Advance feeds one epoch's observation through the detector. Reads are
// attributed before writes: a fetch observed in the same epoch as the next
// write belongs to the cycle that write closes (the fetch happened while
// the previous production was current). Pages are visited in sorted order
// — required for replica determinism, because the section-join rule reads
// neighbor pages' states mid-transition.
func (d *Detector) Advance(ep Epoch) {
	d.Trans = d.Trans[:0]
	for _, pg := range sortedKeys(ep.Readers) {
		p := d.page(pg)
		for _, r := range ep.Readers[pg] {
			p.cur[r] = true
		}
	}
	for _, pg := range sortedKeys(ep.Writers) {
		writers := ep.Writers[pg]
		p := d.page(pg)
		switch {
		case len(writers) == 1:
			d.single(pg, p, writers[0])
		case len(writers) == 2 && disjoint(writers[0], writers[1]):
			d.pair(pg, p, writers)
		default:
			// Three or more writers, or two with overlapping or unknown
			// extents: a genuine conflict no binding shape can serve.
			d.reset(pg, p)
		}
	}
}

// single advances a page on a one-writer epoch.
func (d *Detector) single(pg int, p *pattern, w WriteExt) {
	if p.mode == Split {
		if w.Node == p.pairLo || w.Node == p.pairHi {
			// One side of the pair produced alone this epoch: the binding
			// holds (the idle side simply has nothing to push). Reads that
			// appear are consumers the pushes missed — extend the binding.
			d.extend(p)
			return
		}
		d.reset(pg, p) // an outside writer took the page
		p.producer = w.Node
		return
	}
	if p.pairLo >= 0 {
		// Pair hysteresis in progress, but this cycle had a single writer:
		// the pair pattern broke before promoting. Its in-flight reads were
		// observed under that broken pattern and must not seed the single-
		// producer streak — the mirror of pair()'s transition discard.
		p.cur = map[int]bool{}
		p.clearPair()
	}
	if p.producer >= 0 && w.Node != p.producer {
		// The producer changed hands: the pattern is broken. Restart
		// tracking from this epoch's writer, discarding the in-flight
		// cycle's reads.
		d.reset(pg, p)
		p.producer = w.Node
		return
	}
	p.producer = w.Node
	// A write with reads gathered since the previous write closes a
	// production cycle with those reads as its consumers. A write with
	// none merely extends the current production — the protocol layer
	// closes write intervals for bookkeeping reasons too (a lazy diff
	// flush while serving splits an interval), and a producer may write
	// across several epochs before anyone reads.
	cycle := setToSorted(p.cur)
	p.cur = map[int]bool{}
	if p.mode == Update {
		// Pushed pages no longer fault, so an empty cycle means the
		// pushes kept the consumers satisfied. Any reads that do appear
		// are consumers the pushes missed — extend the binding.
		if grown := union(p.bound, cycle); len(grown) != len(p.bound) {
			p.bound = grown
		}
		return
	}
	if len(cycle) == 0 {
		return
	}
	if !equalInts(cycle, p.consumers) {
		p.consumers = cycle
		p.streak = 1
	} else {
		p.streak++
	}
	if p.streak >= d.cfg.k() {
		p.mode = Update
		p.bound = append([]int(nil), p.consumers...)
		d.Stats.Promotions++
		d.logTrans(pg, TransPromote)
		return
	}
	// Section join: the page's pattern matches an adjacent page that is
	// already whole-page bound to the same producer and consumers, so it
	// extends that section now instead of re-serving the full K-cycle
	// warm-up — the section-granular analogue of rsd's bounding-box union.
	// (Pages are visited in ascending order, so the neighbor states read
	// here are identical at every replica.)
	for _, nb := range [2]int{pg - 1, pg + 1} {
		q, ok := d.pages[nb]
		if ok && q.mode == Update && q.producer == p.producer && equalInts(q.bound, cycle) {
			p.mode = Update
			p.bound = append([]int(nil), cycle...)
			d.Stats.Promotions++
			d.Stats.SectionJoins++
			d.logTrans(pg, TransJoin)
			return
		}
	}
}

// pair advances a page on a two-writer epoch with disjoint extents — the
// spatial false-sharing shape. writers arrive sorted by node; ordering by
// extent decides which owns the low half.
func (d *Detector) pair(pg int, p *pattern, writers []WriteExt) {
	lo, hi := writers[0], writers[1]
	if hi.Lo < lo.Lo {
		lo, hi = hi, lo
	}
	// samePair: the established pair reproduced within its halves (the
	// watershed still separates the extents) — the one stability predicate
	// both the bound hold-check and the pre-promotion hysteresis use.
	samePair := lo.Node == p.pairLo && hi.Node == p.pairHi && lo.Hi <= p.cut && p.cut <= hi.Lo
	if p.mode == Update {
		// A second writer broke a whole-page binding. Decay it, then give
		// the pair shape its chance below.
		d.Stats.Decays++
		d.logTrans(pg, TransDecay)
		p.mode = Invalidate
		p.bound = nil
	}
	if p.mode == Split {
		if samePair {
			// The pair reproduced within its halves: the binding holds.
			d.extend(p)
			return
		}
		d.reset(pg, p) // different pair, or the watershed moved across a write
	}
	if p.producer >= 0 {
		// A single-producer pattern was in progress: its in-flight reads
		// were observed under that broken pattern and must not seed the
		// pair hysteresis — the same discard single() performs on a
		// producer change, keeping the K-cycle guard symmetric.
		p.cur = map[int]bool{}
	}
	p.clearSingle()
	cycle := setToSorted(p.cur)
	p.cur = map[int]bool{}
	if !samePair {
		p.pairLo, p.pairHi = lo.Node, hi.Node
		p.cut = (lo.Hi + hi.Lo + 1) / 2
		p.pairCons = nil
		p.pairStreak = 0
	}
	if len(cycle) == 0 {
		return // production extension, as in the single-writer path
	}
	if !equalInts(cycle, p.pairCons) {
		p.pairCons = cycle
		p.pairStreak = 1
	} else {
		p.pairStreak++
	}
	if p.pairStreak >= d.cfg.k() {
		p.mode = Split
		p.bound = append([]int(nil), p.pairCons...)
		d.Stats.Splits++
		d.logTrans(pg, TransSplit)
	}
}

// extend folds the in-flight reads of a bound page into its binding
// (consumers the pushes missed fault once and join).
func (d *Detector) extend(p *pattern) {
	cycle := setToSorted(p.cur)
	p.cur = map[int]bool{}
	if grown := union(p.bound, cycle); len(grown) != len(p.bound) {
		p.bound = grown
	}
}

// logTrans appends to the per-epoch transition log when it is enabled.
func (d *Detector) logTrans(pg int, k TransKind) {
	if d.LogTrans {
		d.Trans = append(d.Trans, Transition{Page: pg, Kind: k})
	}
}

// reset decays any binding and restarts all hysteresis for a page.
func (d *Detector) reset(pg int, p *pattern) {
	if p.mode != Invalidate {
		d.Stats.Decays++
		d.logTrans(pg, TransDecay)
	}
	p.mode = Invalidate
	p.bound = nil
	p.clearSingle()
	p.clearPair()
	p.cur = map[int]bool{}
}

// Push reports whether page is whole-page bound to the update protocol,
// and if so to which consumers (sorted; never including the producer).
// The caller pushes only when it is the producer and actually wrote the
// page this epoch.
func (d *Detector) Push(page int) (producer int, consumers []int, ok bool) {
	p, present := d.pages[page]
	if !present || p.mode != Update {
		return 0, nil, false
	}
	return p.producer, p.bound, true
}

// Split reports whether page carries a sub-page split binding, and if so
// the writer pair (low half first), the watershed word offset, and the
// bound consumers. Each pair member pushes its own diffs — which cover
// exactly its half — to every bound consumer but itself.
func (d *Detector) Split(page int) (pair [2]int, cut int, consumers []int, ok bool) {
	p, present := d.pages[page]
	if !present || p.mode != Split {
		return [2]int{}, 0, nil, false
	}
	return [2]int{p.pairLo, p.pairHi}, p.cut, p.bound, true
}

// Mode returns the page's current protocol.
func (d *Detector) Mode(page int) Mode {
	if p, ok := d.pages[page]; ok {
		return p.mode
	}
	return Invalidate
}

// Section is a maximal contiguous span of pages bound to the same
// producer (or writer pair) and consumer set — the adaptive protocol's
// binding unit, and the granularity the producer's update spans ship at.
type Section struct {
	Span      rsd.Span
	Split     bool
	Producer  int    // single producer; -1 for split sections
	Pair      [2]int // split sections only
	Consumers []int
}

// Sections clusters the currently bound pages into sections. Adjacent
// bound pages merge only when mode, producer (or pair), and consumer set
// all agree — adjacent spans bound to different consumers stay separate
// sections.
func (d *Detector) Sections() []Section {
	var pages []int
	for pg, p := range d.pages {
		if p.mode != Invalidate {
			pages = append(pages, pg)
		}
	}
	sort.Ints(pages)
	same := func(a, b int) bool {
		pa, pb := d.pages[a], d.pages[b]
		if pa.mode != pb.mode || !equalInts(pa.bound, pb.bound) {
			return false
		}
		if pa.mode == Split {
			return pa.pairLo == pb.pairLo && pa.pairHi == pb.pairHi
		}
		return pa.producer == pb.producer
	}
	var out []Section
	for _, sp := range rsd.Coalesce(pages, same) {
		p := d.pages[sp.Lo]
		sec := Section{Span: sp, Consumers: p.bound, Producer: p.producer}
		if p.mode == Split {
			sec.Split = true
			sec.Producer = -1
			sec.Pair = [2]int{p.pairLo, p.pairHi}
		}
		out = append(out, sec)
	}
	return out
}

// Fingerprint returns a canonical rendering of the full detector state,
// used by the determinism tests: two replicas that consumed the same
// global observation stream — regardless of how each epoch's maps and
// reader lists were assembled — must return byte-identical fingerprints.
func (d *Detector) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "k=%d stats=%+v\n", d.cfg.k(), d.Stats)
	pages := make([]int, 0, len(d.pages))
	for pg := range d.pages {
		pages = append(pages, pg)
	}
	sort.Ints(pages)
	for _, pg := range pages {
		p := d.pages[pg]
		fmt.Fprintf(&b, "%d prod=%d cons=%v cur=%v streak=%d mode=%d bound=%v pair=%d/%d@%d cons=%v/%d\n",
			pg, p.producer, p.consumers, setToSorted(p.cur), p.streak, p.mode, p.bound,
			p.pairLo, p.pairHi, p.cut, p.pairCons, p.pairStreak)
	}
	for _, s := range d.Sections() {
		fmt.Fprintf(&b, "section %v split=%v prod=%d pair=%v cons=%v\n",
			s.Span, s.Split, s.Producer, s.Pair, s.Consumers)
	}
	return b.String()
}

func (d *Detector) page(pg int) *pattern {
	p, ok := d.pages[pg]
	if !ok {
		p = &pattern{producer: -1, pairLo: -1, pairHi: -1, cur: map[int]bool{}}
		d.pages[pg] = p
	}
	return p
}

// disjoint reports whether two known write extents do not overlap — the
// condition that makes a two-writer page spatial false sharing rather
// than a write conflict.
func disjoint(a, b WriteExt) bool {
	if !a.known() || !b.known() {
		return false
	}
	return a.Hi <= b.Lo || b.Hi <= a.Lo
}

// sortedKeys returns a map's keys in ascending order — map iteration
// order must never reach a replicated decision.
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func setToSorted(s map[int]bool) []int {
	if len(s) == 0 {
		return nil
	}
	out := make([]int, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func union(a, b []int) []int {
	seen := map[int]bool{}
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		seen[v] = true
	}
	return setToSorted(seen)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
