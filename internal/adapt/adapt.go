// Package adapt is the run-time access-pattern detector behind the DSM's
// adaptive update protocol.
//
// The paper's compiler replaces invalidate-and-fault traffic with
// aggregated pushes wherever regular-section analysis can prove who will
// read what. When the compiler cannot summarize an access — irregular
// indexing, data-dependent neighbors — the system falls back to the plain
// invalidate protocol and loses the entire benefit. This package recovers
// it at run time, in the spirit of Munin's multi-protocol runtime: the
// run-time observes, per barrier epoch, which node writes each page and
// which nodes demand-fetch it, infers stable producer→consumer relations,
// and — once a pattern has held for K production cycles — switches those
// pages from invalidate to update. The protocol layer (package tmk) then
// piggybacks the producer's diffs to the bound consumers at barrier
// departure instead of leaving them to fault, and decays straight back to
// invalidate when the pattern breaks.
//
// The detector is deterministic and runs replicated: every node feeds the
// same globally-relayed observations (write notices already travel with
// barriers; fetch observations ride the new Arrival.Fetched /
// Depart.Fetched wire fields) through the same transition function, so all
// nodes agree on the bindings without any extra coordination — the same
// idiom the barrier's Validate_w_sync responder assignment uses.
//
// A pattern is tracked per page as a production cycle: a cycle starts when
// the page's single producer publishes a write and ends at its next write,
// with every demand fetch observed in between attributed to the cycle.
// This makes the detector phase-tolerant: the common "write phase, then
// read phase" shape of barrier programs (Jacobi's copy/stencil, an
// irregular stencil's update/relax) alternates writers and readers across
// epochs, and per-epoch matching would never see them together.
package adapt

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultK is the default number of consecutive stable production cycles
// before a page switches to update mode. Two cycles is the minimum that
// distinguishes a repeating pattern from a one-shot handoff; the first
// cycle of any run is further skewed by cold-start faults.
const DefaultK = 3

// Config tunes the detectors (the barrier-epoch Detector and the
// per-lock LockDetector share it).
type Config struct {
	// K is the hysteresis: a page switches to update mode after its
	// producer→consumer pattern has held for K consecutive production
	// cycles (0 means DefaultK). The lock detector uses the same K for
	// its edge hysteresis.
	K int
	// ReprobeM bounds binding staleness for lock-scope bindings: after M
	// consecutive piggybacked grants on one edge, one grant withholds the
	// piggyback ("re-probe") so an acquirer that stopped reading the
	// pages is detected within M wasted piggybacks (0 means
	// DefaultReprobeM).
	ReprobeM int
}

func (c Config) k() int {
	if c.K <= 0 {
		return DefaultK
	}
	return c.K
}

// Epoch is the globally shared observation for one barrier epoch: for each
// page, the nodes that closed write intervals covering it, and the nodes
// that demand-fetched remote data for it. Writers come from the write
// notices every node learns at the barrier; Readers from the relayed
// arrival fetch lists.
type Epoch struct {
	Writers map[int][]int
	Readers map[int][]int
}

// Mode is a page's current protocol.
type Mode uint8

const (
	// Invalidate is the base protocol: write notices invalidate the page
	// and consumers fault and fetch.
	Invalidate Mode = iota
	// Update is the adaptive protocol: the producer pushes its diffs to
	// the bound consumers at barrier departure.
	Update
)

// pattern is the per-page detector state.
type pattern struct {
	producer  int   // last single writer; -1 before any write
	consumers []int // sorted consumer set of the last completed cycle
	cur       map[int]bool
	streak    int // consecutive cycles with a stable producer+consumer set
	mode      Mode
	bound     []int // sorted consumer set pushed to while in Update mode
}

// Stats counts detector transitions.
type Stats struct {
	Promotions int64 // pages switched invalidate → update
	Decays     int64 // pages switched update → invalidate
}

// Detector is the replicated pattern detector for one DSM machine. All
// nodes construct it with the same Config and feed it the same Epochs, so
// its bindings are identical everywhere.
type Detector struct {
	cfg   Config
	pages map[int]*pattern
	Stats Stats
}

// New creates a detector.
func New(cfg Config) *Detector {
	return &Detector{cfg: cfg, pages: map[int]*pattern{}}
}

// Advance feeds one epoch's observation through the detector. Reads are
// attributed before writes: a fetch observed in the same epoch as the next
// write belongs to the cycle that write closes (the fetch happened while
// the previous production was current).
func (d *Detector) Advance(ep Epoch) {
	for pg, readers := range ep.Readers {
		p := d.page(pg)
		for _, r := range readers {
			p.cur[r] = true
		}
	}
	for pg, writers := range ep.Writers {
		p := d.page(pg)
		if len(writers) != 1 || (p.producer >= 0 && writers[0] != p.producer) {
			// Multiple writers, or the producer changed hands: the pattern
			// is broken. Restart tracking from this epoch's writer (if
			// single), discarding the in-flight cycle's reads.
			if p.mode == Update {
				d.Stats.Decays++
			}
			p.mode = Invalidate
			p.bound = nil
			p.streak = 0
			p.consumers = nil
			p.producer = -1
			if len(writers) == 1 {
				p.producer = writers[0]
			}
			p.cur = map[int]bool{}
			continue
		}
		p.producer = writers[0]
		// A write with reads gathered since the previous write closes a
		// production cycle with those reads as its consumers. A write with
		// none merely extends the current production — the protocol layer
		// closes write intervals for bookkeeping reasons too (a lazy diff
		// flush while serving splits an interval), and a producer may write
		// across several epochs before anyone reads.
		cycle := setToSorted(p.cur)
		p.cur = map[int]bool{}
		if p.mode == Update {
			// Pushed pages no longer fault, so an empty cycle means the
			// pushes kept the consumers satisfied. Any reads that do appear
			// are consumers the pushes missed — extend the binding.
			if grown := union(p.bound, cycle); len(grown) != len(p.bound) {
				p.bound = grown
			}
			continue
		}
		if len(cycle) == 0 {
			continue
		}
		if !equalInts(cycle, p.consumers) {
			p.consumers = cycle
			p.streak = 1
			continue
		}
		p.streak++
		if p.streak >= d.cfg.k() {
			p.mode = Update
			p.bound = append([]int(nil), p.consumers...)
			d.Stats.Promotions++
		}
	}
}

// Push reports whether page is bound to the update protocol, and if so to
// which consumers (sorted; never including the producer). The caller pushes
// only when it is the producer and actually wrote the page this epoch.
func (d *Detector) Push(page int) (producer int, consumers []int, ok bool) {
	p, present := d.pages[page]
	if !present || p.mode != Update {
		return 0, nil, false
	}
	return p.producer, p.bound, true
}

// Mode returns the page's current protocol.
func (d *Detector) Mode(page int) Mode {
	if p, ok := d.pages[page]; ok {
		return p.mode
	}
	return Invalidate
}

// Fingerprint returns a canonical rendering of the full detector state,
// used by the determinism tests: two replicas that consumed the same
// global observation stream — regardless of how each epoch's maps and
// reader lists were assembled — must return byte-identical fingerprints.
func (d *Detector) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "k=%d stats=%+v\n", d.cfg.k(), d.Stats)
	pages := make([]int, 0, len(d.pages))
	for pg := range d.pages {
		pages = append(pages, pg)
	}
	sort.Ints(pages)
	for _, pg := range pages {
		p := d.pages[pg]
		fmt.Fprintf(&b, "%d prod=%d cons=%v cur=%v streak=%d mode=%d bound=%v\n",
			pg, p.producer, p.consumers, setToSorted(p.cur), p.streak, p.mode, p.bound)
	}
	return b.String()
}

func (d *Detector) page(pg int) *pattern {
	p, ok := d.pages[pg]
	if !ok {
		p = &pattern{producer: -1, cur: map[int]bool{}}
		d.pages[pg] = p
	}
	return p
}

func setToSorted(s map[int]bool) []int {
	if len(s) == 0 {
		return nil
	}
	out := make([]int, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func union(a, b []int) []int {
	seen := map[int]bool{}
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		seen[v] = true
	}
	return setToSorted(seen)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
