package adapt

import (
	"reflect"
	"testing"
)

// step performs one hand-off and its critical section: the lock moves
// from → to, and `to` demand-fetches its working set minus whatever the
// grant piggybacked (pushed pages are applied with the grant and do not
// fault — exactly the protocol's behaviour).
func step(ld *LockDetector, from, to int, want []int) (pushed []int) {
	pushed = ld.Grant(from, to)
	ld.Hold(subtract(want, pushed))
	return pushed
}

func subtract(want, pushed []int) []int {
	if len(pushed) == 0 {
		return append([]int(nil), want...)
	}
	drop := map[int]bool{}
	for _, pg := range pushed {
		drop[pg] = true
	}
	var out []int
	for _, pg := range want {
		if !drop[pg] {
			out = append(out, pg)
		}
	}
	return out
}

// rotate drives one full cycle of a 3-node rotation (…→2→0→1→2) on ld,
// with each holder fetching its fixed working set. Returns the pages
// piggybacked on each grant, keyed by the receiving holder.
func rotate(ld *LockDetector, want map[int][]int) map[int][]int {
	pushed := map[int][]int{}
	order := []int{0, 1, 2}
	for i, to := range order {
		from := order[(i+2)%3]
		if pgs := step(ld, from, to, want[to]); pgs != nil {
			pushed[to] = append([]int(nil), pgs...)
		}
	}
	return pushed
}

// TestLockPromoteAfterK drives a stable 3-node rotation and checks the
// edge hysteresis: piggybacks start exactly after K stable cycles of both
// the working set and the successor, not before.
func TestLockPromoteAfterK(t *testing.T) {
	ld := NewLock(Config{K: 3})
	want := map[int][]int{0: {10, 11}, 1: {10, 11}, 2: {10, 11}}
	for cycle := 1; cycle <= 3; cycle++ {
		if pushed := rotate(ld, want); len(pushed) != 0 {
			t.Fatalf("cycle %d: piggybacked %v before hysteresis", cycle, pushed)
		}
	}
	pushed := rotate(ld, want)
	if len(pushed) != 3 {
		t.Fatalf("cycle 4: pushed to %v, want all three holders", pushed)
	}
	for to, pgs := range pushed {
		if !reflect.DeepEqual(pgs, []int{10, 11}) {
			t.Fatalf("holder %d pushed %v, want [10 11]", to, pgs)
		}
	}
	if ld.Stats.Promotions != 3 {
		t.Fatalf("promotions = %d, want 3 (one per edge)", ld.Stats.Promotions)
	}
	if ld.Stats.Decays != 0 {
		t.Fatalf("decays = %d, want 0 on a stable rotation", ld.Stats.Decays)
	}
}

// TestLockSelfEdgeNeverBinds: re-acquiring a lock you released last (IS's
// own-section zero followed by its accumulate visit) is tracked for chain
// continuity but never piggybacks — and it must not break the other
// edges' promotion.
func TestLockSelfEdgeNeverBinds(t *testing.T) {
	ld := NewLock(Config{K: 2})
	// Chain per cycle: 1→0, 0→0 (self), 0→1.
	for cycle := 0; cycle < 4; cycle++ {
		if pgs := step(ld, 1, 0, []int{5}); (pgs != nil) != (cycle >= 2) {
			t.Fatalf("cycle %d: edge 1→0 pushed %v", cycle, pgs)
		}
		if pgs := step(ld, 0, 0, []int{6}); pgs != nil {
			t.Fatalf("cycle %d: self edge piggybacked %v", cycle, pgs)
		}
		if pgs := step(ld, 0, 1, []int{7}); (pgs != nil) != (cycle >= 2) {
			t.Fatalf("cycle %d: edge 0→1 pushed %v", cycle, pgs)
		}
	}
}

// TestLockDecayOnMispredictedNextHolder: a broken rotation decays the
// edge whose turn was usurped, and re-promotion requires the full
// hysteresis again.
func TestLockDecayOnMispredictedNextHolder(t *testing.T) {
	ld := NewLock(Config{K: 2})
	want := map[int][]int{0: {1}, 1: {2}, 2: {3}}
	rotate(ld, want)
	rotate(ld, want)
	if pushed := rotate(ld, want); len(pushed) != 3 {
		t.Fatalf("rotation did not promote: %v", pushed)
	}
	step(ld, 2, 0, want[0])
	step(ld, 0, 1, want[1])
	step(ld, 1, 0, want[0]) // usurps 2's turn: edge 1→2 must decay
	if _, ok := ld.Bound(1, 2); ok {
		t.Fatal("edge 1→2 still bound after its turn was usurped")
	}
	if ld.Stats.Decays != 1 {
		t.Fatalf("decays = %d, want 1", ld.Stats.Decays)
	}
	// The unaffected edge keeps pushing (its own pattern held).
	if pgs := ld.Grant(0, 1); pgs == nil {
		t.Fatal("unaffected edge 0→1 lost its binding")
	}
	ld.Hold(nil)
}

// TestLockDecayOnConflict: a piggybacked page that the acquirer fetches
// anyway (someone outside the lock chain wrote it, so the piggybacked
// diffs could not satisfy its notices) decays the edge immediately.
func TestLockDecayOnConflict(t *testing.T) {
	ld := NewLock(Config{K: 2})
	want := map[int][]int{0: {1}, 1: {2}, 2: {3}}
	rotate(ld, want)
	rotate(ld, want)
	rotate(ld, want) // pushing now
	if pgs := ld.Grant(2, 0); !reflect.DeepEqual(pgs, []int{1}) {
		t.Fatalf("pushed %v, want [1]", pgs)
	}
	ld.Hold([]int{1}) // fetched the pushed page anyway: outside writer
	if _, ok := ld.Bound(2, 0); ok {
		t.Fatal("edge still bound after a pushed page was fetched anyway")
	}
	if ld.Stats.Decays != 1 {
		t.Fatalf("decays = %d, want 1", ld.Stats.Decays)
	}
	// One stable cycle is not enough to re-promote with K=2.
	step(ld, 0, 1, want[1])
	step(ld, 1, 2, want[2])
	rotate(ld, want)
	if _, ok := ld.Bound(2, 0); ok {
		t.Fatal("re-promoted without full hysteresis")
	}
	rotate(ld, want)
	if _, ok := ld.Bound(2, 0); !ok {
		t.Fatal("did not re-promote after the pattern re-stabilized")
	}
}

// TestLockBindingExtension: fetches outside the binding while bound grow
// the working set instead of breaking it.
func TestLockBindingExtension(t *testing.T) {
	ld := NewLock(Config{K: 2})
	want := map[int][]int{0: {1}, 1: {2}, 2: {3}}
	rotate(ld, want)
	rotate(ld, want)
	rotate(ld, want)
	ld.Grant(2, 0) // pushes [1]
	ld.Hold([]int{4})
	if pgs, ok := ld.Bound(2, 0); !ok || !reflect.DeepEqual(pgs, []int{1, 4}) {
		t.Fatalf("binding = (%v, %v), want ([1 4], true)", pgs, ok)
	}
	if ld.Stats.Decays != 0 {
		t.Fatalf("decays = %d, want 0", ld.Stats.Decays)
	}
}

// TestLockReprobeBoundsWaste pins the binding-staleness fix: once a
// consumer stops reading the bound pages (pushed pages never fault, so
// the stop is otherwise invisible), at most M more grants carry wasted
// piggybacks before a re-probe detects it and drops the binding.
func TestLockReprobeBoundsWaste(t *testing.T) {
	const m = 4
	ld := NewLock(Config{K: 2, ReprobeM: m})
	want := map[int][]int{0: {1}, 1: {2}, 2: {3}}
	rotate(ld, want)
	rotate(ld, want)
	rotate(ld, want) // pushing now
	// Holder 0 stops reading page 1: with nothing read, its fetch reports
	// are empty from now on, pushed or probed.
	wasted := 0
	for cycle := 0; cycle < 3*m; cycle++ {
		if pgs := ld.Grant(2, 0); pgs != nil {
			wasted++
		}
		ld.Hold(nil)
		step(ld, 0, 1, want[1])
		step(ld, 1, 2, want[2])
		if _, ok := ld.Bound(2, 0); !ok {
			break
		}
	}
	if _, ok := ld.Bound(2, 0); ok {
		t.Fatal("stale binding never dropped")
	}
	if wasted > m {
		t.Fatalf("%d wasted piggybacks before the stale binding dropped, want <= %d", wasted, m)
	}
	if ld.Stats.Probes == 0 || ld.Stats.StaleDrops != 1 {
		t.Fatalf("probes = %d, staleDrops = %d, want probes > 0 and one stale drop",
			ld.Stats.Probes, ld.Stats.StaleDrops)
	}
}

// TestLockReprobeConfirmsLiveBinding: a consumer that still reads the
// pages survives the re-probe (it faults during the probe cycle, which
// re-confirms the binding) and piggybacks resume.
func TestLockReprobeConfirmsLiveBinding(t *testing.T) {
	const m = 3
	ld := NewLock(Config{K: 2, ReprobeM: m})
	want := map[int][]int{0: {1}, 1: {2}, 2: {3}}
	rotate(ld, want)
	rotate(ld, want)
	rotate(ld, want)
	probes, pushes := 0, 0
	for cycle := 0; cycle < 4*m; cycle++ {
		if pgs := step(ld, 2, 0, want[0]); pgs == nil {
			probes++ // probe cycle: the live consumer faulted and re-confirmed
		} else {
			pushes++
		}
		step(ld, 0, 1, want[1])
		step(ld, 1, 2, want[2])
	}
	if _, ok := ld.Bound(2, 0); !ok {
		t.Fatal("live binding dropped by re-probe")
	}
	if probes < 2 {
		t.Fatalf("probes = %d, want periodic re-probes", probes)
	}
	if pushes < 2*probes {
		t.Fatalf("pushes = %d vs probes = %d: piggybacks did not resume between probes", pushes, probes)
	}
	if ld.Stats.StaleDrops != 0 {
		t.Fatalf("staleDrops = %d, want 0 for a live consumer", ld.Stats.StaleDrops)
	}
}

// TestLockReprobeNarrowsBinding: a probe whose report covers only part of
// the bound set narrows the binding to the still-read pages.
func TestLockReprobeNarrowsBinding(t *testing.T) {
	const m = 2
	ld := NewLock(Config{K: 2, ReprobeM: m})
	want := map[int][]int{0: {1, 5}, 1: {2}, 2: {3}}
	rotate(ld, want)
	rotate(ld, want)
	rotate(ld, want)
	// Push until the probe; holder 0 by then reads only page 5.
	for {
		pgs := ld.Grant(2, 0)
		if pgs == nil {
			ld.Hold([]int{5}) // probe cycle: faults only on the live page
			break
		}
		ld.Hold(nil)
		step(ld, 0, 1, want[1])
		step(ld, 1, 2, want[2])
	}
	if pgs, ok := ld.Bound(2, 0); !ok || !reflect.DeepEqual(pgs, []int{5}) {
		t.Fatalf("binding = (%v, %v) after partial probe, want ([5], true)", pgs, ok)
	}
}

// TestLockUnreadPagesNeverBind: a holder that fetches nothing under the
// lock (private data, or a lock protecting nothing shared) never earns a
// binding.
func TestLockUnreadPagesNeverBind(t *testing.T) {
	ld := NewLock(Config{K: 1})
	for i := 0; i < 5; i++ {
		step(ld, 0, 1, nil)
		step(ld, 1, 0, nil)
	}
	if _, ok := ld.Bound(0, 1); ok {
		t.Fatal("bound an edge with an empty working set")
	}
	if ld.Stats.Promotions != 0 {
		t.Fatalf("promotions = %d, want 0", ld.Stats.Promotions)
	}
}
