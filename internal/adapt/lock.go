package adapt

import (
	"fmt"
	"sort"
	"strings"
)

// Lock-scope pattern detection.
//
// The barrier detector (adapt.go) observes barrier epochs, so migratory
// data under locks — IS's bucket sections, a branch-and-bound's shared
// best bound — never promotes there: the pages have a different writer
// every epoch, which is exactly the multi-writer shape the barrier
// detector must decay on. The migratory pattern is only visible in the
// lock's own serialized history: the same hand-off chain repeats every
// iteration, and each holder faults on the same pages inside its critical
// section.
//
// LockDetector tracks that history for one lock. Its observation stream
// is inherently serialized (every hand-off goes through the lock's home
// and the grant chain), so unlike the barrier detector there is nothing to
// relay: both ends of every grant observe the hand-off, and the detector
// state lives with the lock's control state, moving under the same
// protocol-section serialization as the holder and queue fields. The
// piggybacked data itself is self-describing — the acquirer applies
// whatever diffs ride the grant through the normal diff path — so no
// negotiation is needed and a stale or wrong prediction costs bytes, never
// correctness.
//
// The pattern model is keyed by hand-off *edges* (from → to), not by
// holders: in a staggered rotation the same node acquires the same lock
// from different predecessors at different positions of the cycle (IS's
// own-section zeroing versus its accumulate visit), with different
// working sets at each position. An edge recurs once per iteration, which
// makes "this edge's working set held for K cycles" the lock-scope
// analogue of the barrier detector's K stable production cycles.
//
// A bound edge's working set is a page set here; its section shape
// appears at the wire. Critical sections touch contiguous spans (a
// holder's bucket rows, a queue block), so the grant builder coalesces
// the piggybacked chains into run-length section spans
// (wire.CoalesceDiffs → wire.Grant.Pushed): adjacent pages' chain links
// share one header each instead of paying the per-page diff header — the
// same economy the barrier detector gets from clustering its bindings
// into rsd spans.
const (
	// DefaultReprobeM is the default number of consecutive piggybacked
	// grants on one edge before the binding is re-probed (see Grant).
	DefaultReprobeM = 8
)

func (c Config) m() int {
	if c.ReprobeM <= 0 {
		return DefaultReprobeM
	}
	return c.ReprobeM
}

// lockEdge is one hand-off shape: the lock moved from holder From to
// holder To. Self-edges (From == To) occur when a node re-acquires a lock
// it released last; they are tracked for chain continuity but never bound
// (there is nothing to piggyback to yourself).
type lockEdge struct {
	From, To int
}

// edgeState is the detector state of one hand-off edge.
type edgeState struct {
	next    int   // holder observed to acquire after this edge; -1 unknown
	nextRun int   // consecutive confirmations of next
	want    []int // sorted pages To fetched in its critical section via this edge
	wantRun int   // consecutive occurrences with the same want set
	bound   bool  // piggyback want on this edge's grants
	pushes  int   // consecutive piggybacks since the last re-probe
	probing bool  // the current occurrence withheld the piggyback
}

// LockStats counts one lock detector's transitions.
type LockStats struct {
	Promotions int64 // edges switched to grant-piggybacked updates
	Decays     int64 // bindings dropped on a broken pattern
	Probes     int64 // piggybacks withheld for a staleness re-probe
	StaleDrops int64 // bindings dropped because a re-probe went unread
}

// LockDetector is the migratory-pattern detector for a single lock. It is
// driven by two events in the lock's serialized order: Grant, at every
// hand-off (the releaser's side decides the piggyback there), and Hold,
// at every release (the departing holder reports the pages it
// demand-fetched inside the critical section). The caller guarantees the
// events alternate per holder: every Hold belongs to the most recent
// Grant.
type LockDetector struct {
	k, m    int
	cur     lockEdge
	started bool
	edges   map[lockEdge]*edgeState
	Stats   LockStats
}

// NewLock creates a detector for one lock.
func NewLock(cfg Config) *LockDetector {
	return &LockDetector{k: cfg.k(), m: cfg.m(), edges: map[lockEdge]*edgeState{}}
}

// Grant records the hand-off from → to and returns the pages whose diffs
// the releaser should piggyback on this grant (nil when the edge is not
// bound, or when this occurrence is a staleness re-probe — the probe
// deliberately lets the acquirer fault so its fetch report reveals
// whether it still reads the bound pages).
func (ld *LockDetector) Grant(from, to int) (pages []int) {
	e := lockEdge{From: from, To: to}
	if ld.started {
		pe := ld.edge(ld.cur)
		if pe.next == to {
			pe.nextRun++
		} else {
			if pe.next >= 0 {
				// Mispredicted next holder: the rotation broke. The edge we
				// expected to follow decays immediately — its piggybacks
				// would land at the wrong node's turn.
				ld.decay(lockEdge{From: ld.cur.To, To: pe.next})
			}
			pe.next = to
			pe.nextRun = 1
		}
	}
	es := ld.edge(e)
	ld.cur = e
	ld.started = true
	if from == to || !es.bound {
		return nil
	}
	if es.pushes >= ld.m {
		es.probing = true
		es.pushes = 0
		ld.Stats.Probes++
		return nil
	}
	es.pushes++
	return es.want
}

// Hold records the departing holder's critical-section demand fetches for
// the current edge (the one its acquire was granted through). fetched may
// arrive in any order; it is canonicalized here.
func (ld *LockDetector) Hold(fetched []int) {
	if !ld.started {
		return
	}
	f := append([]int(nil), fetched...)
	sort.Ints(f)
	es := ld.edge(ld.cur)
	if es.bound {
		if es.probing {
			// Re-probe verdict: pages the holder still fetched are still
			// read (the piggyback was withheld, so live pages fault); pages
			// absent from the report went unread and leave the binding.
			es.probing = false
			kept := intersect(es.want, f)
			if len(kept) == 0 {
				es.bound = false
				es.wantRun = 0
				es.want = nil
				ld.Stats.StaleDrops++
				return
			}
			es.want = kept
			return
		}
		if len(intersect(es.want, f)) > 0 {
			// A piggybacked page was fetched anyway: someone outside the
			// lock chain wrote it (the piggybacked diffs could not satisfy
			// its notices). The pattern no longer owns the page — decay.
			ld.decay(ld.cur)
			return
		}
		if len(f) > 0 {
			// Extra fetches outside the binding: pages the piggyback
			// missed. Extend the binding, as the barrier detector does.
			es.want = union(es.want, f)
		}
		return
	}
	if equalInts(f, es.want) {
		es.wantRun++
	} else {
		es.want = f
		es.wantRun = 1
	}
	// Promote when the edge's working set held for K occurrences and its
	// successor held for the K-1 hand-offs in between: the hysteresis pins
	// both halves of the pattern ("who comes next" and "what they touch").
	if ld.cur.From != ld.cur.To && len(es.want) > 0 &&
		es.wantRun >= ld.k && es.nextRun >= ld.k-1 {
		es.bound = true
		es.pushes = 0
		ld.Stats.Promotions++
	}
}

// Bound reports whether the edge from → to currently piggybacks, and the
// pages it would push.
func (ld *LockDetector) Bound(from, to int) ([]int, bool) {
	es, ok := ld.edges[lockEdge{From: from, To: to}]
	if !ok || !es.bound {
		return nil, false
	}
	return es.want, true
}

// decay drops an edge's binding and resets its hysteresis.
func (ld *LockDetector) decay(e lockEdge) {
	es, ok := ld.edges[e]
	if !ok {
		return
	}
	if es.bound {
		ld.Stats.Decays++
	}
	es.bound = false
	es.probing = false
	es.wantRun = 0
	es.pushes = 0
}

func (ld *LockDetector) edge(e lockEdge) *edgeState {
	es, ok := ld.edges[e]
	if !ok {
		es = &edgeState{next: -1}
		ld.edges[e] = es
	}
	return es
}

// Fingerprint returns a canonical rendering of the full detector state,
// used by the determinism tests: two replicas that consumed the same
// serialized observation stream must return byte-identical fingerprints.
func (ld *LockDetector) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "k=%d m=%d started=%v cur=%d>%d\n", ld.k, ld.m, ld.started, ld.cur.From, ld.cur.To)
	keys := make([]lockEdge, 0, len(ld.edges))
	for e := range ld.edges {
		keys = append(keys, e)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].From != keys[j].From {
			return keys[i].From < keys[j].From
		}
		return keys[i].To < keys[j].To
	})
	for _, e := range keys {
		es := ld.edges[e]
		fmt.Fprintf(&b, "%d>%d next=%d/%d want=%v/%d bound=%v pushes=%d probing=%v\n",
			e.From, e.To, es.next, es.nextRun, es.want, es.wantRun, es.bound, es.pushes, es.probing)
	}
	fmt.Fprintf(&b, "stats=%+v\n", ld.Stats)
	return b.String()
}

// intersect returns the sorted intersection of two sorted sets.
func intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
