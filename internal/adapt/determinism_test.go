package adapt

import (
	"fmt"
	"math/rand"
	"testing"
)

// These property tests pin the no-negotiation invariant the protocol
// layer relies on implicitly: detector state is a pure function of the
// observation stream's content, not of how the stream was assembled or
// relayed. Every replica that consumes the same global observations —
// with maps built in different insertion orders, reader lists in
// different permutations, and independent per-lock streams interleaved
// differently — must hold byte-identical state, because the protocol's
// send/receive schedules are derived from that state independently at
// each node.

// barrierObs is one epoch's raw observation in canonical form: ordered
// (page, writers) and (page, readers) lists the test permutes per replica
// before handing them to a Detector.
type barrierObs struct {
	writers map[int][]WriteExt
	readers map[int][]int
}

// buildEpoch assembles an Epoch from the observation with rng-driven
// insertion order and reader permutations. Writer lists keep their global
// order (they are relayed identically to every node); reader lists have
// no order contract.
func buildEpoch(rng *rand.Rand, obs barrierObs) Epoch {
	ep := Epoch{Writers: map[int][]WriteExt{}, Readers: map[int][]int{}}
	wpages := shuffledKeys(rng, obs.writers)
	for _, pg := range wpages {
		ep.Writers[pg] = append([]WriteExt(nil), obs.writers[pg]...)
	}
	rpages := shuffledKeys(rng, obs.readers)
	for _, pg := range rpages {
		rs := append([]int(nil), obs.readers[pg]...)
		rng.Shuffle(len(rs), func(i, j int) { rs[i], rs[j] = rs[j], rs[i] })
		ep.Readers[pg] = rs
	}
	return ep
}

func shuffledKeys[V any](rng *rand.Rand, m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	return keys
}

// TestBarrierDetectorDeterminism feeds the same random epoch stream to
// replicated detectors whose inputs are assembled in different orders and
// asserts byte-identical state after every epoch.
func TestBarrierDetectorDeterminism(t *testing.T) {
	const replicas = 5
	const nodes = 6
	const pages = 24
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		dets := make([]*Detector, replicas)
		rngs := make([]*rand.Rand, replicas)
		for i := range dets {
			dets[i] = New(Config{K: 1 + trial%4})
			rngs[i] = rand.New(rand.NewSource(int64(1000*trial + i)))
		}
		for epoch := 0; epoch < 30; epoch++ {
			obs := barrierObs{writers: map[int][]WriteExt{}, readers: map[int][]int{}}
			for pg := 0; pg < pages; pg++ {
				if rng.Intn(3) == 0 {
					nw := 1 + rng.Intn(2)
					var ws []WriteExt
					for len(ws) < nw {
						w := rng.Intn(nodes)
						if len(ws) > 0 && ws[len(ws)-1].Node == w {
							continue
						}
						ws = append(ws, WriteExt{Node: w, Lo: 0, Hi: 512})
					}
					if len(ws) == 2 && rng.Intn(2) == 0 {
						// Half the two-writer pages carry the disjoint
						// false-sharing shape so the split path is under the
						// same shuffling pressure as the whole-page paths.
						cut := 64 * (1 + rng.Intn(7))
						ws[0].Hi = cut
						ws[1].Lo = cut
					}
					obs.writers[pg] = ws
				}
				if rng.Intn(3) == 0 {
					seen := map[int]bool{}
					for n := rng.Intn(3); n >= 0; n-- {
						seen[rng.Intn(nodes)] = true
					}
					for r := range seen {
						obs.readers[pg] = append(obs.readers[pg], r)
					}
				}
			}
			for i, d := range dets {
				d.Advance(buildEpoch(rngs[i], obs))
			}
			want := dets[0].Fingerprint()
			for i := 1; i < replicas; i++ {
				if got := dets[i].Fingerprint(); got != want {
					t.Fatalf("trial %d epoch %d: replica %d state diverged:\n--- replica 0 ---\n%s\n--- replica %d ---\n%s",
						trial, epoch, i, want, i, got)
				}
			}
		}
	}
}

// lockEvent is one serialized event on one lock's stream.
type lockEvent struct {
	lock     int
	grant    bool
	from, to int
	fetched  []int
}

// TestLockDetectorDeterminism generates independent serialized streams
// for several locks and feeds them to replicas under different
// interleavings (lock-major, round-robin, random) with the fetch lists
// permuted per replica. Each lock's detector state must be byte-identical
// everywhere: the per-lock stream alone determines it.
func TestLockDetectorDeterminism(t *testing.T) {
	const locks = 4
	const nodes = 5
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		streams := make([][]lockEvent, locks)
		for l := range streams {
			holder := rng.Intn(nodes)
			for cyc := 0; cyc < 25; cyc++ {
				var next int
				if rng.Intn(4) == 0 {
					next = rng.Intn(nodes) // occasional rotation break
				} else {
					next = (holder + 1) % nodes
				}
				streams[l] = append(streams[l], lockEvent{lock: l, grant: true, from: holder, to: next})
				var fetched []int
				for pg := 0; pg < 4; pg++ {
					if rng.Intn(2) == 0 {
						fetched = append(fetched, 100*l+pg)
					}
				}
				streams[l] = append(streams[l], lockEvent{lock: l, fetched: fetched})
				holder = next
			}
		}
		interleave := func(mode int, rng *rand.Rand) []lockEvent {
			idx := make([]int, locks)
			var out []lockEvent
			switch mode {
			case 0: // lock-major
				for l := 0; l < locks; l++ {
					out = append(out, streams[l]...)
				}
			case 1: // round-robin pairs
				for {
					done := true
					for l := 0; l < locks; l++ {
						if idx[l] < len(streams[l]) {
							out = append(out, streams[l][idx[l]], streams[l][idx[l]+1])
							idx[l] += 2
							done = false
						}
					}
					if done {
						break
					}
				}
			default: // random pairs
				for {
					var live []int
					for l := 0; l < locks; l++ {
						if idx[l] < len(streams[l]) {
							live = append(live, l)
						}
					}
					if len(live) == 0 {
						break
					}
					l := live[rng.Intn(len(live))]
					out = append(out, streams[l][idx[l]], streams[l][idx[l]+1])
					idx[l] += 2
				}
			}
			return out
		}
		var fingerprints []string
		for replica := 0; replica < 4; replica++ {
			rrng := rand.New(rand.NewSource(int64(2000*trial + replica)))
			dets := make([]*LockDetector, locks)
			for l := range dets {
				dets[l] = NewLock(Config{K: 2, ReprobeM: 3})
			}
			mode := replica
			if mode > 2 {
				mode = 2
			}
			for _, ev := range interleave(mode, rrng) {
				if ev.grant {
					dets[ev.lock].Grant(ev.from, ev.to)
					continue
				}
				f := append([]int(nil), ev.fetched...)
				rrng.Shuffle(len(f), func(i, j int) { f[i], f[j] = f[j], f[i] })
				dets[ev.lock].Hold(f)
			}
			var fp string
			for l := 0; l < locks; l++ {
				fp += fmt.Sprintf("lock %d:\n%s", l, dets[l].Fingerprint())
			}
			fingerprints = append(fingerprints, fp)
		}
		for i := 1; i < len(fingerprints); i++ {
			if fingerprints[i] != fingerprints[0] {
				t.Fatalf("trial %d: replica %d lock-detector state diverged:\n--- replica 0 ---\n%s\n--- replica %d ---\n%s",
					trial, i, fingerprints[0], i, fingerprints[i])
			}
		}
	}
}
