package adapt

import (
	"encoding/binary"
	"fmt"
)

// snapshotVersion guards the detector snapshot blob format. The blob
// rides inside wire.Checkpoint.Adapt, so it carries its own version:
// the wire codec treats it as opaque bytes.
const snapshotVersion = 1

// Snapshot serializes the detector's full mutable state — per-page
// patterns and transition stats — as a deterministic byte blob: pages
// and sets are emitted in sorted order, so two replicas with equal
// Fingerprints produce identical blobs. The Config is not serialized;
// a restored replica is constructed with the same Config by the same
// harness configuration that built the original.
func (d *Detector) Snapshot() []byte {
	b := []byte{snapshotVersion}
	v := func(x int64) { b = binary.AppendVarint(b, x) }
	ints := func(xs []int) {
		v(int64(len(xs)))
		for _, x := range xs {
			v(int64(x))
		}
	}
	v(d.Stats.Promotions)
	v(d.Stats.Splits)
	v(d.Stats.SectionJoins)
	v(d.Stats.Decays)
	pages := sortedKeys(d.pages)
	v(int64(len(pages)))
	for _, pg := range pages {
		p := d.pages[pg]
		v(int64(pg))
		v(int64(p.producer))
		ints(p.consumers)
		ints(setToSorted(p.cur))
		v(int64(p.streak))
		v(int64(p.mode))
		ints(p.bound)
		v(int64(p.pairLo))
		v(int64(p.pairHi))
		v(int64(p.cut))
		ints(p.pairCons)
		v(int64(p.pairStreak))
	}
	return b
}

// RestoreSnapshot replaces the detector's mutable state with the state
// a Snapshot captured, keeping the Config it was constructed with.
func (d *Detector) RestoreSnapshot(b []byte) error {
	if len(b) == 0 || b[0] != snapshotVersion {
		return fmt.Errorf("adapt: bad snapshot version")
	}
	b = b[1:]
	var err error
	v := func() int64 {
		x, n := binary.Varint(b)
		if n <= 0 {
			if err == nil {
				err = fmt.Errorf("adapt: truncated snapshot")
			}
			return 0
		}
		b = b[n:]
		return x
	}
	ints := func() []int {
		n := v()
		if n == 0 || err != nil {
			return nil
		}
		out := make([]int, 0, n)
		for i := int64(0); i < n && err == nil; i++ {
			out = append(out, int(v()))
		}
		return out
	}
	d.Stats = Stats{Promotions: v(), Splits: v(), SectionJoins: v(), Decays: v()}
	d.pages = map[int]*pattern{}
	npages := v()
	for i := int64(0); i < npages && err == nil; i++ {
		pg := int(v())
		p := &pattern{producer: int(v()), consumers: ints(), cur: map[int]bool{}}
		for _, r := range ints() {
			p.cur[r] = true
		}
		p.streak = int(v())
		p.mode = Mode(v())
		p.bound = ints()
		p.pairLo = int(v())
		p.pairHi = int(v())
		p.cut = int(v())
		p.pairCons = ints()
		p.pairStreak = int(v())
		d.pages[pg] = p
	}
	return err
}
