package adapt

import "testing"

// TestSnapshotRoundTrip drives a detector through promotion, split, and
// decay transitions, snapshots it mid-stream, restores the blob into a
// fresh detector, and requires the fingerprints to match — then feeds
// both detectors one more epoch to check the restored replica keeps
// advancing identically.
func TestSnapshotRoundTrip(t *testing.T) {
	ep := func(d *Detector, writers map[int][]WriteExt, readers map[int][]int) {
		d.Advance(Epoch{Writers: writers, Readers: readers})
	}
	d := New(Config{K: 2})
	for i := 0; i < 3; i++ {
		ep(d, map[int][]WriteExt{4: {{Node: 0, Lo: 0, Hi: 512}}}, map[int][]int{4: {1, 2}})
		ep(d, map[int][]WriteExt{7: {{Node: 1, Lo: 0, Hi: 256}, {Node: 2, Lo: 256, Hi: 512}}},
			map[int][]int{7: {0}})
	}
	ep(d, map[int][]WriteExt{4: {{Node: 3, Lo: 0, Hi: 512}}}, nil) // decay page 4

	blob := d.Snapshot()
	r := New(Config{K: 2})
	if err := r.RestoreSnapshot(blob); err != nil {
		t.Fatal(err)
	}
	if d.Fingerprint() != r.Fingerprint() {
		t.Fatalf("restored fingerprint differs:\n%s\nvs\n%s", r.Fingerprint(), d.Fingerprint())
	}
	for _, det := range []*Detector{d, r} {
		ep(det, map[int][]WriteExt{4: {{Node: 3, Lo: 0, Hi: 512}}}, map[int][]int{4: {1}, 7: {0}})
	}
	if d.Fingerprint() != r.Fingerprint() {
		t.Fatal("restored detector diverged on the next epoch")
	}
	if err := r.RestoreSnapshot([]byte{99}); err == nil {
		t.Fatal("bad version accepted")
	}
	if err := r.RestoreSnapshot(blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}
