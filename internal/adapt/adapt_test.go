package adapt

import (
	"reflect"
	"testing"
)

// write returns an epoch in which each listed page is written whole by one
// node.
func write(pages map[int]int) Epoch {
	ep := Epoch{Writers: map[int][]WriteExt{}, Readers: map[int][]int{}}
	for pg, w := range pages {
		ep.Writers[pg] = []WriteExt{{Node: w, Lo: 0, Hi: 512}}
	}
	return ep
}

// read returns an epoch in which each listed page is fetched by readers.
func read(pages map[int][]int) Epoch {
	ep := Epoch{Writers: map[int][]WriteExt{}, Readers: map[int][]int{}}
	for pg, rs := range pages {
		ep.Readers[pg] = rs
	}
	return ep
}

// TestPromoteAfterK drives the canonical alternating write-phase /
// read-phase shape and checks the K-cycle hysteresis: the binding appears
// exactly at the K-th stable cycle, not before.
func TestPromoteAfterK(t *testing.T) {
	d := New(Config{K: 3})
	for cycle := 1; cycle <= 3; cycle++ {
		d.Advance(read(map[int][]int{7: {1, 2}}))
		d.Advance(write(map[int]int{7: 0}))
		_, _, ok := d.Push(7)
		if want := cycle == 3; ok != want {
			t.Fatalf("cycle %d: Push ok = %v, want %v", cycle, ok, want)
		}
	}
	prod, cons, ok := d.Push(7)
	if !ok || prod != 0 || !reflect.DeepEqual(cons, []int{1, 2}) {
		t.Fatalf("Push = (%d, %v, %v), want (0, [1 2], true)", prod, cons, ok)
	}
	if d.Stats.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", d.Stats.Promotions)
	}
}

// TestDefaultK checks that the zero config promotes after DefaultK cycles.
func TestDefaultK(t *testing.T) {
	d := New(Config{})
	for cycle := 1; cycle <= DefaultK; cycle++ {
		if _, _, ok := d.Push(3); ok {
			t.Fatalf("promoted before cycle %d with default K", cycle)
		}
		d.Advance(read(map[int][]int{3: {4}}))
		d.Advance(write(map[int]int{3: 2}))
	}
	if _, _, ok := d.Push(3); !ok {
		t.Fatalf("not promoted after %d cycles", DefaultK)
	}
}

// TestSameEpochReadWrite covers the single-barrier shape where the fetch
// and the next write land in the same epoch: reads are attributed before
// writes, so the cycle still closes with its consumers.
func TestSameEpochReadWrite(t *testing.T) {
	d := New(Config{K: 2})
	for i := 0; i < 2; i++ {
		ep := write(map[int]int{5: 1})
		ep.Readers[5] = []int{0}
		d.Advance(ep)
	}
	prod, cons, ok := d.Push(5)
	if !ok || prod != 1 || !reflect.DeepEqual(cons, []int{0}) {
		t.Fatalf("Push = (%d, %v, %v), want (1, [0], true)", prod, cons, ok)
	}
}

// TestBookkeepingWriteKeepsStreak checks that a write with no reads since
// the previous write (a lazy-flush interval split, or a multi-epoch
// production) extends the production instead of resetting the streak.
func TestBookkeepingWriteKeepsStreak(t *testing.T) {
	d := New(Config{K: 2})
	for cycle := 0; cycle < 2; cycle++ {
		d.Advance(read(map[int][]int{9: {3}}))
		d.Advance(write(map[int]int{9: 0})) // closes the cycle
		d.Advance(write(map[int]int{9: 0})) // empty: production continues
	}
	if _, _, ok := d.Push(9); !ok {
		t.Fatal("empty production cycles reset the streak")
	}
}

// TestDecayOnWriterConflict checks the immediate decay: one epoch with a
// conflicting writer drops the page back to invalidate and resets the
// hysteresis from scratch.
func TestDecayOnWriterConflict(t *testing.T) {
	d := New(Config{K: 2})
	for cycle := 0; cycle < 2; cycle++ {
		d.Advance(read(map[int][]int{4: {2}}))
		d.Advance(write(map[int]int{4: 1}))
	}
	if _, _, ok := d.Push(4); !ok {
		t.Fatal("not promoted")
	}
	d.Advance(write(map[int]int{4: 2})) // different writer
	if _, _, ok := d.Push(4); ok {
		t.Fatal("no decay on producer change")
	}
	if d.Stats.Decays != 1 {
		t.Fatalf("decays = %d, want 1", d.Stats.Decays)
	}
	// One stable cycle under the new producer must not re-promote (K=2).
	d.Advance(read(map[int][]int{4: {1}}))
	d.Advance(write(map[int]int{4: 2}))
	if _, _, ok := d.Push(4); ok {
		t.Fatal("re-promoted without full hysteresis")
	}
	d.Advance(read(map[int][]int{4: {1}}))
	d.Advance(write(map[int]int{4: 2}))
	if prod, cons, ok := d.Push(4); !ok || prod != 2 || !reflect.DeepEqual(cons, []int{1}) {
		t.Fatalf("Push = (%d, %v, %v) after re-stabilizing, want (2, [1], true)", prod, cons, ok)
	}
}

// TestDecayOnMultiWriter: concurrent writers in one epoch break the
// pattern even when the old producer is among them.
func TestDecayOnMultiWriter(t *testing.T) {
	d := New(Config{K: 2})
	for cycle := 0; cycle < 2; cycle++ {
		d.Advance(read(map[int][]int{4: {2}}))
		d.Advance(write(map[int]int{4: 1}))
	}
	// Both write the whole page: overlapping extents, a genuine conflict
	// (the disjoint-extent pair shape is TestSplitPromotion's subject).
	ep := Epoch{Writers: map[int][]WriteExt{4: {{Node: 1, Lo: 0, Hi: 512}, {Node: 3, Lo: 0, Hi: 512}}}, Readers: map[int][]int{}}
	d.Advance(ep)
	if _, _, ok := d.Push(4); ok {
		t.Fatal("no decay on multi-writer epoch")
	}
	if d.Stats.Decays != 1 {
		t.Fatalf("decays = %d, want 1", d.Stats.Decays)
	}
}

// TestConsumerChurnBlocksPromotion: the consumer set must repeat; churn
// restarts the streak.
func TestConsumerChurnBlocksPromotion(t *testing.T) {
	d := New(Config{K: 2})
	sets := [][]int{{1}, {2}, {1, 2}}
	for _, rs := range sets {
		d.Advance(read(map[int][]int{6: rs}))
		d.Advance(write(map[int]int{6: 0}))
		if _, _, ok := d.Push(6); ok {
			t.Fatalf("promoted on churning consumer sets")
		}
	}
	// Now hold the set stable for K cycles.
	for i := 0; i < 2; i++ {
		d.Advance(read(map[int][]int{6: {1, 2}}))
		d.Advance(write(map[int]int{6: 0}))
	}
	if _, cons, ok := d.Push(6); !ok || !reflect.DeepEqual(cons, []int{1, 2}) {
		t.Fatalf("Push = (%v, %v) after stabilizing, want ([1 2], true)", cons, ok)
	}
}

// TestBindingExtension: a consumer that still faults while the page is in
// update mode (a reader the pushes missed) joins the binding instead of
// breaking it.
func TestBindingExtension(t *testing.T) {
	d := New(Config{K: 2})
	for cycle := 0; cycle < 2; cycle++ {
		d.Advance(read(map[int][]int{8: {1}}))
		d.Advance(write(map[int]int{8: 0}))
	}
	if _, cons, ok := d.Push(8); !ok || !reflect.DeepEqual(cons, []int{1}) {
		t.Fatalf("Push = (%v, %v), want ([1], true)", cons, ok)
	}
	d.Advance(read(map[int][]int{8: {3}}))
	d.Advance(write(map[int]int{8: 0}))
	if _, cons, ok := d.Push(8); !ok || !reflect.DeepEqual(cons, []int{1, 3}) {
		t.Fatalf("Push = (%v, %v) after extension, want ([1 3], true)", cons, ok)
	}
	if d.Stats.Decays != 0 {
		t.Fatalf("decays = %d, want 0", d.Stats.Decays)
	}
}

// TestReadOnlyAndPrivatePages: pages that are only read (one cold fetch)
// or only written (private) never promote.
func TestReadOnlyAndPrivatePages(t *testing.T) {
	d := New(Config{K: 1})
	for i := 0; i < 5; i++ {
		d.Advance(read(map[int][]int{1: {2}})) // read-only page 1
		d.Advance(write(map[int]int{2: 0}))    // private page 2
	}
	if _, _, ok := d.Push(1); ok {
		t.Fatal("promoted a never-written page")
	}
	if _, _, ok := d.Push(2); ok {
		t.Fatal("promoted a never-read page")
	}
	if d.Mode(1) != Invalidate || d.Mode(2) != Invalidate {
		t.Fatal("modes drifted from invalidate")
	}
}
