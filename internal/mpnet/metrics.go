package mpnet

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"strings"

	"sdsm/internal/obs"
)

// MetricsEnv names the environment variable that, when set on a worker
// process, makes it serve metrics snapshots while it runs: a TCP listen
// address ("127.0.0.1:0" picks an ephemeral port, logged to stderr) or a
// unix socket spec ("unix;/path/to.sock"). Each connection receives one
// JSON-encoded snapshot and is closed; the counters are atomics, so a
// snapshot can be taken at any point of the run. Workers spawned by the
// coordinator inherit the variable from its environment.
const MetricsEnv = "SDSM_METRICS_ADDR"

// workerSnapshot is the wire shape of one worker metrics snapshot.
type workerSnapshot struct {
	Rank int `json:"rank"`
	obs.Snapshot
}

// serveMetrics starts the snapshot endpoint for one worker rank. The
// returned closer stops the listener.
func serveMetrics(spec string, rank int, reg *obs.Registry) (io.Closer, error) {
	network, addr := "tcp", spec
	if rest, ok := strings.CutPrefix(spec, "unix;"); ok {
		network, addr = "unix", rest
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	fmt.Fprintf(os.Stderr, "sdsm worker rank %d: metrics on %s\n", rank, ln.Addr())
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return // listener closed at run end
			}
			snap := reg.Snapshot()
			enc, err := json.Marshal(workerSnapshot{Rank: rank, Snapshot: *snap})
			if err == nil {
				c.Write(append(enc, '\n'))
			}
			c.Close()
		}
	}()
	return ln, nil
}

// EnableObs attaches traffic counters to the worker transport: frames and
// wire bytes in each direction, plus coalesced writer flushes. Nil-gated
// at every touch point, so an untraced worker does no extra work.
func (t *workerTransport) EnableObs(reg *obs.Registry) {
	t.obsSent = reg.Counter("mp.frames.sent")
	t.obsSentBytes = reg.Counter("mp.bytes.sent")
	t.obsRecv = reg.Counter("mp.frames.recv")
	t.obsRecvBytes = reg.Counter("mp.bytes.recv")
	t.obsFlushes = reg.Counter("mp.flushes")
}
