package mpnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"sdsm/internal/host"
	"sdsm/internal/model"
	"sdsm/internal/mp"
	"sdsm/internal/obs"
	"sdsm/internal/wire"
)

// workerWorld is the worker-process side of the distributed mp machine: a
// single-processor Host whose processor carries the rank's virtual clock,
// and a Transport whose communication methods speak wire frames over the
// coordinator connection. Everything else a Transport can do (requests,
// hands, multi-hop accounting) belongs to the DSM layer and panics here:
// the mp layer is share-nothing by construction and uses only mailboxes.
type workerWorld struct {
	world *mp.World
	proc  *workerProc
	tr    *workerTransport
}

func newWorkerWorld(conn net.Conn, rank, n int, costs model.Costs) *workerWorld {
	w := &workerWorld{proc: &workerProc{id: rank}}
	h := &workerHost{proc: w.proc, n: n}
	w.tr = newWorkerTransport(conn, costs, rank, n)
	w.world = &mp.World{H: h, NW: w.tr}
	return w
}

// workerProc is the rank's processor: a local virtual clock. The blocking
// primitives are never reached — the transport blocks on socket reads.
type workerProc struct {
	id    int
	clock time.Duration
}

func (p *workerProc) ID() int             { return p.id }
func (p *workerProc) Now() time.Duration  { return p.clock }
func (p *workerProc) Yield()              {}
func (p *workerProc) Begin()              {}
func (p *workerProc) End()                {}
func (p *workerProc) BeginCompute()       {}
func (p *workerProc) EndCompute()         {}
func (p *workerProc) Block(reason string) { panic("mpnet: worker proc cannot block: " + reason) }
func (p *workerProc) Wake(q host.Proc, at time.Duration) {
	panic("mpnet: worker proc cannot wake peers")
}
func (p *workerProc) Hold(q host.Proc, fn func()) { panic("mpnet: worker proc cannot hold peers") }

func (p *workerProc) Advance(d time.Duration) {
	if d < 0 {
		panic("mpnet: negative advance")
	}
	p.clock += d
}

func (p *workerProc) Charge(d time.Duration) {
	if d < 0 {
		panic("mpnet: negative charge")
	}
	p.clock += d
}

func (p *workerProc) SetClock(at time.Duration) {
	if at > p.clock {
		p.clock = at
	}
}

// workerHost is a single-processor view of an n-rank machine.
type workerHost struct {
	proc *workerProc
	n    int
}

func (h *workerHost) N() int { return h.n }

func (h *workerHost) Proc(i int) host.Proc {
	if i != h.proc.id {
		panic(fmt.Sprintf("mpnet: rank %d has no local processor %d", h.proc.id, i))
	}
	return h.proc
}

func (h *workerHost) Run(body func(p host.Proc)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("mpnet: rank %d panicked: %v", h.proc.id, r)
		}
	}()
	body(h.proc)
	return nil
}

// workerTransport speaks frames over the coordinator connection. Inbound
// frames are buffered in a local mailbox so selective receives (by sender
// and tag) work exactly as in-process. Outbound frames go through an
// unbounded queue drained by a writer goroutine: the rank's goroutine
// never blocks on a full socket buffer, so a pairwise exchange of large
// payloads cannot wedge two workers (and their coordinator routers) in
// simultaneous writes — the worker always progresses to its Recv, which
// drains its connection and unblocks the routers.
type workerTransport struct {
	conn  net.Conn
	fr    *wire.FrameReader // inbound reader, rank goroutine only
	costs model.Costs
	rank  int
	n     int
	box   []host.Msg

	wmu     sync.Mutex
	wcond   *sync.Cond
	wqueue  [][]byte
	pending int
	werr    error

	// Observability counters (EnableObs in metrics.go); all nil on
	// untraced workers.
	obsSent      *obs.Counter
	obsSentBytes *obs.Counter
	obsRecv      *obs.Counter
	obsRecvBytes *obs.Counter
	obsFlushes   *obs.Counter
}

func newWorkerTransport(conn net.Conn, costs model.Costs, rank, n int) *workerTransport {
	t := &workerTransport{conn: conn, fr: wire.NewFrameReader(conn), costs: costs, rank: rank, n: n}
	t.wcond = sync.NewCond(&t.wmu)
	go t.writerLoop()
	return t
}

// writerLoop drains the outbound queue to the socket, coalescing
// everything queued at wakeup into one vectored write (net.Buffers) and
// recycling each frame's pooled buffer afterwards. The queue and batch
// slices are double-buffered, so a steady-state flush allocates nothing.
func (t *workerTransport) writerLoop() {
	var batch [][]byte
	var scratch [][]byte
	// bufs lives outside the loop: WriteTo takes its address, which would
	// heap-allocate the slice header on every flush if it were loop-local.
	var bufs net.Buffers
	t.wmu.Lock()
	for {
		for len(t.wqueue) == 0 {
			t.wcond.Wait()
		}
		batch, t.wqueue = t.wqueue, batch[:0]
		if t.obsFlushes != nil {
			t.obsFlushes.Inc()
		}
		t.wmu.Unlock()

		// WriteTo consumes its receiver in place on partial writes, so it
		// runs on a scratch copy of the slice headers; batch keeps the
		// originals for recycling.
		scratch = append(scratch[:0], batch...)
		bufs = net.Buffers(scratch)
		_, err := bufs.WriteTo(t.conn)
		for i, b := range batch {
			wire.PutBuf(b)
			batch[i] = nil
		}

		t.wmu.Lock()
		t.pending -= len(batch)
		if err != nil && t.werr == nil {
			t.werr = err
		}
		t.wcond.Broadcast()
		if t.werr != nil {
			t.wmu.Unlock()
			return
		}
	}
}

// enqueue hands an encoded frame to the writer goroutine.
func (t *workerTransport) enqueue(raw []byte) {
	if t.obsSent != nil {
		t.obsSent.Inc()
		t.obsSentBytes.Add(int64(len(raw)))
	}
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if t.werr != nil {
		panic(fmt.Sprintf("mpnet: rank %d link lost: %v", t.rank, t.werr))
	}
	t.wqueue = append(t.wqueue, raw)
	t.pending++
	t.wcond.Signal()
}

// flush waits until every enqueued frame has reached the socket.
func (t *workerTransport) flush() error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	for t.pending > 0 && t.werr == nil {
		t.wcond.Wait()
	}
	return t.werr
}

func (t *workerTransport) Costs() model.Costs { return t.costs }

// Stats are accounted at the coordinator, which sees every frame.
func (t *workerTransport) Stats() host.Stats { return host.Stats{Node: make([]host.NodeStats, t.n)} }
func (t *workerTransport) ResetStats()       {}

func (t *workerTransport) send(p host.Proc, to int, tag host.Tag, payload any, bytes int, arrival time.Duration) {
	if to == t.rank {
		panic("mpnet: send to self")
	}
	raw, err := wire.AppendFrame(wire.GetBuf(), &wire.Frame{
		Kind: wire.FMsg, From: int32(t.rank), To: int32(to), Tag: int32(tag),
		Bytes: int32(bytes), Time: int64(arrival), Payload: payload,
	})
	if err != nil {
		panic(fmt.Sprintf("mpnet: rank %d unencodable payload: %v", t.rank, err))
	}
	t.enqueue(raw)
}

// Send transmits payload to rank to over the coordinator switch.
func (t *workerTransport) Send(p host.Proc, to int, tag host.Tag, payload any, bytes int) {
	p.Charge(t.costs.SendOverhead)
	t.send(p, to, tag, payload, bytes, p.Now()+t.costs.OneWay(bytes))
}

// SendShared transmits one payload to several recipients, charging the
// sender's injection overhead once. The payload is encoded once; each
// recipient gets a copy of the shared encoding with the destination
// header field patched (the async writer forbids reusing one buffer).
func (t *workerTransport) SendShared(p host.Proc, tos []int, tag host.Tag, payload any, bytes int) {
	p.Charge(t.costs.SendOverhead)
	arrival := p.Now() + t.costs.OneWay(bytes)
	raw, err := wire.AppendFrame(wire.GetBuf(), &wire.Frame{
		Kind: wire.FMsg, From: int32(t.rank), Tag: int32(tag),
		Bytes: int32(bytes), Time: int64(arrival), Payload: payload,
	})
	if err != nil {
		panic(fmt.Sprintf("mpnet: rank %d unencodable payload: %v", t.rank, err))
	}
	for _, to := range tos {
		if to == t.rank {
			panic("mpnet: send to self")
		}
		cp := append(wire.GetBuf(), raw...)
		wire.PatchRawTo(cp, int32(to))
		t.enqueue(cp)
	}
	wire.PutBuf(raw)
}

// Broadcast sends payload to every other rank. The per-message send
// overheads accumulate (arrival times differ per recipient), but the
// payload is encoded only once: each recipient's copy gets its
// destination and arrival stamp patched into the shared encoding.
func (t *workerTransport) Broadcast(p host.Proc, tag host.Tag, payload any, bytes int) {
	raw, err := wire.AppendFrame(wire.GetBuf(), &wire.Frame{
		Kind: wire.FMsg, From: int32(t.rank), Tag: int32(tag),
		Bytes: int32(bytes), Payload: payload,
	})
	if err != nil {
		panic(fmt.Sprintf("mpnet: rank %d unencodable payload: %v", t.rank, err))
	}
	for to := 0; to < t.n; to++ {
		if to == t.rank {
			continue
		}
		p.Charge(t.costs.SendOverhead)
		cp := append(wire.GetBuf(), raw...)
		wire.PatchRawTo(cp, int32(to))
		wire.PatchRawTime(cp, int64(p.Now()+t.costs.OneWay(bytes)))
		t.enqueue(cp)
	}
	wire.PutBuf(raw)
}

// Recv blocks until a matching message is available, reading frames off
// the socket and buffering non-matching ones.
func (t *workerTransport) Recv(p host.Proc, from int, tag host.Tag) host.Msg {
	for {
		if m, ok := t.take(from, tag); ok {
			p.SetClock(m.Arrival)
			p.Charge(t.costs.RecvOverhead)
			return m
		}
		f, err := t.fr.Read()
		if err != nil {
			panic(fmt.Sprintf("mpnet: rank %d link lost: %v", t.rank, err))
		}
		if f.Kind != wire.FMsg {
			panic(fmt.Sprintf("mpnet: rank %d received unexpected frame kind %d", t.rank, f.Kind))
		}
		if t.obsRecv != nil {
			t.obsRecv.Inc()
			t.obsRecvBytes.Add(int64(f.Bytes))
		}
		payload := f.Payload
		if fs, ok := payload.(wire.Float64s); ok {
			payload = []float64(fs)
		}
		t.box = append(t.box, host.Msg{
			From: int(f.From), To: t.rank, Tag: host.Tag(f.Tag),
			Payload: payload, Bytes: int(f.Bytes), Arrival: time.Duration(f.Time),
		})
	}
}

// take removes the earliest-arriving matching message from the mailbox.
func (t *workerTransport) take(from int, tag host.Tag) (host.Msg, bool) {
	m, rest, ok := host.TakeMatch(t.box, from, tag)
	t.box = rest
	return m, ok
}

// The DSM-layer transport surface is unreachable from the mp layer.

func (t *workerTransport) Message(from, to int, depart time.Duration, bytes int) time.Duration {
	panic("mpnet: Message unsupported on the worker transport")
}
func (t *workerTransport) Serve(fn host.Server) {
	panic("mpnet: Serve unsupported on the worker transport")
}
func (t *workerTransport) StartRequest(p host.Proc, to int, req any, reqBytes int) *host.Pending {
	panic("mpnet: StartRequest unsupported on the worker transport")
}
func (t *workerTransport) Await(p host.Proc, pd *host.Pending) {
	panic("mpnet: Await unsupported on the worker transport")
}
func (t *workerTransport) AwaitAll(p host.Proc, pds []*host.Pending) {
	panic("mpnet: AwaitAll unsupported on the worker transport")
}
func (t *workerTransport) Hand(p host.Proc, to int, slot host.Tag, payload any) {
	panic("mpnet: Hand unsupported on the worker transport")
}
func (t *workerTransport) TakeHand(p host.Proc, slot host.Tag) any {
	panic("mpnet: TakeHand unsupported on the worker transport")
}
