// Package mpnet runs the message-passing layer (package mp) as a real
// distributed system: one OS process per rank, spawned by a coordinator
// and connected to its switch over loopback sockets, exchanging frames in
// the wire format (package wire).
//
// This is the deployment shape of the paper's PVMe programs — genuinely
// share-nothing processes communicating only by messages — and the proof
// that the mp programming layer has no hidden in-memory couplings: the
// same application code runs unmodified against a socket-backed transport
// in another process.
//
// The coordinator listens, spawns workers (the sdsm-node binary, or a
// re-exec of the current executable), routes frames between them by
// destination rank, accounts traffic, and collects each worker's final
// virtual clock and checksum contribution. A worker process dials in,
// identifies itself (hello), receives its run configuration (start),
// re-derives the problem parameters deterministically from it, runs the
// application's MP function against a proxy Host/Transport whose
// communication methods speak frames, and reports its result (done).
//
// With Options.Recover set, the coordinator is also a pessimistic
// message logger: every frame delivered to a worker — the start frame
// included — is copied into that worker's inbound log before it is
// enqueued, and the number of frames routed from each worker is
// counted. When a worker process dies mid-run, the coordinator reaps
// it, respawns the rank, replays its whole inbound log, and suppresses
// the first sent-count outbound frames the replayed process re-emits.
// This works because a worker is deterministic given its inbound frame
// sequence: its parameters are re-derived from the start frame, its
// receives are selective by (sender, tag) over per-pair FIFO channels,
// and its clock advances only by cost charges and received arrival
// stamps — so re-execution reproduces the lost process exactly,
// including the frames it had already sent (DESIGN.md §10).
//
// Timing note: virtual clocks are maintained per worker with the same
// cost model as in-process runs, but receive-any matching follows real
// frame arrival order, so reported times (and floating-point reduction
// orders) are scheduling-dependent. Verification therefore uses the
// approximate checksum comparison, and the deterministic tables always
// use the sim backend.
package mpnet

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdsm/internal/apps"
	"sdsm/internal/host"
	"sdsm/internal/model"
	"sdsm/internal/mp"
	"sdsm/internal/obs"
	"sdsm/internal/wire"
)

// WorkerEnv is the environment variable carrying a spawned worker's
// connection target and rank: "network;address;rank".
const WorkerEnv = "SDSM_MP_WORKER"

// handshakeTimeout bounds both sides of the worker handshake: the
// coordinator's wait for a spawned worker to dial in and say hello, and
// the worker's wait for its start frame. A var so tests can shorten it.
var handshakeTimeout = 30 * time.Second

// maxRestarts caps worker respawns per run: a worker that dies
// deterministically on replay would otherwise crash-loop forever.
const maxRestarts = 8

// MaybeWorker turns the current process into a worker when WorkerEnv is
// set, never returning in that case. Binaries that spawn workers by
// re-executing themselves must call it first thing in main.
func MaybeWorker() {
	spec := os.Getenv(WorkerEnv)
	if spec == "" {
		return
	}
	parts := strings.SplitN(spec, ";", 3)
	if len(parts) != 3 {
		fmt.Fprintf(os.Stderr, "sdsm worker: malformed %s=%q\n", WorkerEnv, spec)
		os.Exit(2)
	}
	rank, err := strconv.Atoi(parts[2])
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdsm worker: bad rank in %s=%q\n", WorkerEnv, spec)
		os.Exit(2)
	}
	if err := RunWorker(parts[0], parts[1], rank); err != nil {
		fmt.Fprintf(os.Stderr, "sdsm worker rank %d: %v\n", rank, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// Result is the outcome of a distributed mp run.
type Result struct {
	Time     time.Duration
	Checksum float64
	Stats    host.Stats
	// Restarts counts worker processes that died and were respawned and
	// replayed (zero unless Options.Recover was set and a death occurred).
	Restarts int
}

// FaultSpec injects one worker death: rank Rank's process is killed
// after the coordinator has routed AfterFrames frames from it (zero:
// before its first frame). Requires Options.Recover.
type FaultSpec struct {
	Rank        int
	AfterFrames int
}

// Options configures a distributed run beyond the application triple.
type Options struct {
	// Overhead is the per-iteration distribution overhead of the XHPF
	// stand-in, zero for PVMe.
	Overhead time.Duration
	Verify   bool
	// NodeBin names the worker binary; empty means re-exec the current
	// executable (which must call MaybeWorker).
	NodeBin string
	Costs   model.Costs
	// Recover arms coordinator-side crash recovery: inbound message
	// logging, and respawn-with-replay when a worker process dies.
	Recover bool
	// Fault, if set, kills one worker mid-run (requires Recover).
	Fault *FaultSpec
}

// Run executes one mp application with one OS process per rank, with the
// historical positional configuration. See RunOpts.
func Run(app *apps.App, set apps.DataSet, procs int, overhead time.Duration, verify bool, nodeBin string, costs model.Costs) (*Result, error) {
	return RunOpts(app, set, procs, Options{Overhead: overhead, Verify: verify, NodeBin: nodeBin, Costs: costs})
}

// link is the coordinator's per-worker outbound state. Its mutex makes
// (log, enqueue) atomic per destination and guards the queue swap during
// a respawn: a frame routed concurrently with the destination's
// recovery lands either in the dead queue (and is redelivered from the
// log) or in the new queue after the replay — never between replayed
// frames.
type link struct {
	mu   sync.Mutex
	conn net.Conn
	q    *host.FrameQueue
	log  [][]byte // inbound replay log (start frame first); Recover only
}

// coordinator is the state shared by the router goroutines.
type coordinator struct {
	procs   int
	nodeBin string
	network string
	addr    string
	ln      net.Listener
	opts    Options

	links []*link
	sent  []int // frames routed from each rank; rank r's router only

	cmdMu sync.Mutex
	cmds  []*exec.Cmd

	respawnMu sync.Mutex // serializes respawns: accept must pair by rank
	restarts  int        // under respawnMu
	closed    atomic.Bool

	res     *Result
	statsMu sync.Mutex
}

// RunOpts executes one mp application with one OS process per rank.
//
// Workers derive their entire configuration — cost model included — from
// the start frame; the frame does not carry cost constants, so only the
// SP/2 model the workers assume is accepted (a non-SP2 model would
// silently misprice every worker clock otherwise).
func RunOpts(app *apps.App, set apps.DataSet, procs int, opts Options) (*Result, error) {
	if opts.Costs != model.SP2() {
		return nil, fmt.Errorf("mpnet: the process-per-rank deployment supports the SP2 cost model only")
	}
	if opts.Fault != nil && !opts.Recover {
		return nil, fmt.Errorf("mpnet: fault injection requires Recover")
	}
	if opts.Fault != nil && (opts.Fault.Rank < 0 || opts.Fault.Rank >= procs) {
		return nil, fmt.Errorf("mpnet: fault rank %d out of range", opts.Fault.Rank)
	}
	nodeBin := opts.NodeBin
	if nodeBin == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("mpnet: cannot locate own executable: %w", err)
		}
		nodeBin = exe
	}

	ln, dir, err := host.ListenLoopback()
	if err != nil {
		return nil, fmt.Errorf("mpnet: cannot listen: %w", err)
	}
	defer ln.Close()
	if dir != "" {
		defer os.RemoveAll(dir)
	}

	co := &coordinator{
		procs: procs, nodeBin: nodeBin,
		network: ln.Addr().Network(), addr: ln.Addr().String(),
		ln: ln, opts: opts,
		links: make([]*link, procs),
		sent:  make([]int, procs),
		cmds:  make([]*exec.Cmd, procs),
		res:   &Result{Stats: host.Stats{Node: make([]host.NodeStats, procs)}},
	}
	for r := 0; r < procs; r++ {
		co.links[r] = &link{}
	}
	// Reap every worker on exit — normally-exited children are waited,
	// stragglers killed first. Registered before the queue-close defer
	// below runs (defers run in reverse), so sockets and queues are
	// already torn down and no writer can block the reaping.
	defer co.killAll()

	// Spawn the workers.
	for r := 0; r < procs; r++ {
		if err := co.spawn(r); err != nil {
			return nil, err
		}
	}

	// Accept and pair connections by hello. A worker binary that does not
	// call MaybeWorker never dials in; the deadline turns that into a
	// diagnosable error instead of a hang.
	deadline := time.Now().Add(handshakeTimeout)
	for i := 0; i < procs; i++ {
		c, r, err := acceptHello(ln, deadline, procs)
		if err != nil {
			return nil, fmt.Errorf("mpnet: worker handshake (does the worker binary call mpnet.MaybeWorker?): %w", err)
		}
		if co.links[r].conn != nil {
			c.Close()
			return nil, fmt.Errorf("mpnet: duplicate hello from rank %d", r)
		}
		co.links[r].conn = c
	}
	// The join defer is registered after the killAll defer so it runs
	// before it: closing the sockets first guarantees a wedged writer
	// errors out instead of blocking the join — any frames dropped that
	// way are addressed to workers that already reported done (or are
	// being torn down).
	defer func() {
		for _, lk := range co.links {
			if lk.conn != nil {
				lk.conn.Close()
			}
			if lk.q != nil {
				lk.q.Close()
			}
		}
	}()

	// Configure every worker. The start frame heads each inbound log: a
	// replayed worker re-derives its configuration from it like a fresh
	// one.
	start := wire.Start{App: app.Name, Set: string(set), N: int32(procs), Overhead: int64(opts.Overhead), Verify: opts.Verify}
	for r := 0; r < procs; r++ {
		blob, err := wire.AppendFrame(nil, &wire.Frame{Kind: wire.FStart, To: int32(r), Payload: start})
		if err != nil {
			return nil, fmt.Errorf("mpnet: encoding start frame: %w", err)
		}
		lk := co.links[r]
		lk.q = host.NewFrameQueue(lk.conn, nil)
		if opts.Recover {
			lk.log = append(lk.log, blob)
		}
		if err := lk.q.Enqueue(append(wire.GetBuf(), blob...)); err != nil {
			return nil, fmt.Errorf("mpnet: configuring worker %d: %w", r, err)
		}
	}

	// Once Run returns, the teardown defers close every socket; the
	// routers' read errors must then unwind them, never respawn workers
	// for a machine that no longer exists. Registered last so it runs
	// before the socket-closing defers.
	defer co.closed.Store(true)

	// Route frames until every worker reports done. The first error
	// returns immediately: the deferred teardown closes the sockets,
	// which errors out any router still blocked on a read.
	doneCh := make(chan doneMsg, procs)
	for r := 0; r < procs; r++ {
		r := r
		go func() { doneCh <- co.route(r) }()
	}
	for i := 0; i < procs; i++ {
		d := <-doneCh
		if d.err != nil {
			return nil, d.err
		}
		if d.clock > co.res.Time {
			co.res.Time = d.clock
		}
		if d.rank == 0 {
			co.res.Checksum = d.sum
		}
	}
	co.respawnMu.Lock()
	co.res.Restarts = co.restarts
	co.respawnMu.Unlock()
	return co.res, nil
}

type doneMsg struct {
	rank  int
	clock time.Duration
	sum   float64
	err   error
}

// spawn starts (or restarts) rank r's worker process.
func (co *coordinator) spawn(r int) error {
	cmd := exec.Command(co.nodeBin)
	cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%s;%s;%d", WorkerEnv, co.network, co.addr, r))
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("mpnet: spawning worker %d: %w", r, err)
	}
	co.cmdMu.Lock()
	co.cmds[r] = cmd
	co.cmdMu.Unlock()
	return nil
}

// killAll kills any worker still running and reaps every child: no
// coordinator path leaves a zombie behind.
func (co *coordinator) killAll() {
	co.cmdMu.Lock()
	defer co.cmdMu.Unlock()
	for _, c := range co.cmds {
		if c != nil && c.Process != nil {
			c.Process.Kill()
		}
	}
	for _, c := range co.cmds {
		if c != nil {
			c.Wait()
		}
	}
}

// acceptHello accepts one worker connection and reads its hello,
// returning the rank it claims.
func acceptHello(ln net.Listener, deadline time.Time, procs int) (net.Conn, int, error) {
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := ln.(deadliner); ok {
		d.SetDeadline(deadline)
	}
	c, err := ln.Accept()
	if err != nil {
		return nil, 0, err
	}
	c.SetReadDeadline(deadline)
	f, err := wire.ReadFrame(c)
	if err != nil || f.Kind != wire.FHello || int(f.From) < 0 || int(f.From) >= procs {
		c.Close()
		return nil, 0, fmt.Errorf("bad hello: %v", err)
	}
	c.SetReadDeadline(time.Time{})
	return c, int(f.From), nil
}

// route is rank r's router: it reads frames off r's connection and
// forwards them by destination until r reports done. With recovery on,
// a read failure before done means the worker died: the router respawns
// it, replays its inbound log, and continues on the new connection,
// suppressing the re-emitted frames it has already routed.
func (co *coordinator) route(r int) doneMsg {
	conn := co.links[r].conn
	skip := 0
	faultArmed := co.opts.Fault != nil && co.opts.Fault.Rank == r
	for {
		if faultArmed && co.sent[r] >= co.opts.Fault.AfterFrames {
			faultArmed = false
			co.cmdMu.Lock()
			if c := co.cmds[r]; c != nil && c.Process != nil {
				c.Process.Kill()
			}
			co.cmdMu.Unlock()
		}
		raw, err := wire.ReadRawFrameInto(conn, wire.GetBuf())
		if err != nil {
			if co.opts.Recover && !co.closed.Load() {
				nc, rerr := co.respawn(r)
				if rerr != nil {
					return doneMsg{rank: r, err: rerr}
				}
				// Everything routed from r so far will be re-emitted by
				// the replayed process, byte-identical; swallow it.
				conn, skip = nc, co.sent[r]
				continue
			}
			return doneMsg{rank: r, err: fmt.Errorf("mpnet: rank %d link lost: %w", r, err)}
		}
		kind, _, to, bytes, err := wire.RawFields(raw)
		if err != nil {
			return doneMsg{rank: r, err: err}
		}
		if skip > 0 {
			skip--
			wire.PutBuf(raw)
			continue
		}
		if kind == wire.FDone {
			f, _, err := wire.ParseFrame(raw)
			wire.PutBuf(raw)
			if err != nil {
				return doneMsg{rank: r, err: err}
			}
			d := f.Payload.(wire.Done)
			if d.Err != "" {
				return doneMsg{rank: r, err: fmt.Errorf("mpnet: rank %d failed: %s", r, d.Err)}
			}
			return doneMsg{rank: r, clock: time.Duration(f.Time), sum: d.Checksum}
		}
		if int(to) < 0 || int(to) >= co.procs {
			return doneMsg{rank: r, err: fmt.Errorf("mpnet: rank %d sent unroutable frame", r)}
		}
		if kind == wire.FMsg {
			// Accounted from the raw header — the payload is forwarded
			// verbatim, never decoded here. One router goroutine runs per
			// sending rank, so the shared counters need the lock.
			co.statsMu.Lock()
			co.res.Stats.Account(r, int(to), int(bytes))
			co.statsMu.Unlock()
		}
		if err := co.deliver(int(to), raw); err != nil {
			return doneMsg{rank: r, err: fmt.Errorf("mpnet: routing to rank %d: %w", to, err)}
		}
		co.sent[r]++
	}
}

// deliver hands one frame to a destination's outbound queue, logging it
// first when recovery is on (log before enqueue: the log must cover
// every frame the worker could ever have observed). In recovery mode an
// enqueue failure is swallowed — the destination's connection is dying
// or mid-respawn, and its replay redelivers the frame from the log.
func (co *coordinator) deliver(to int, raw []byte) error {
	lk := co.links[to]
	lk.mu.Lock()
	defer lk.mu.Unlock()
	if co.opts.Recover {
		lk.log = append(lk.log, append([]byte(nil), raw...))
		lk.q.Enqueue(raw)
		return nil
	}
	return lk.q.Enqueue(raw)
}

// respawn replaces rank r's dead worker process: reap, spawn, accept the
// new connection, swap it in, and replay the inbound log. Serialized so
// concurrent respawns cannot steal each other's accepted connections.
func (co *coordinator) respawn(r int) (net.Conn, error) {
	co.respawnMu.Lock()
	defer co.respawnMu.Unlock()
	if co.closed.Load() {
		return nil, fmt.Errorf("mpnet: rank %d died during shutdown", r)
	}
	if co.restarts++; co.restarts > maxRestarts {
		return nil, fmt.Errorf("mpnet: rank %d died after %d restarts; giving up", r, maxRestarts)
	}
	// Reap the dead child before its replacement exists: the pid slot
	// must never hold a zombie.
	co.cmdMu.Lock()
	old := co.cmds[r]
	co.cmdMu.Unlock()
	if old != nil {
		old.Wait()
	}
	if err := co.spawn(r); err != nil {
		return nil, err
	}
	c, hr, err := acceptHello(co.ln, time.Now().Add(handshakeTimeout), co.procs)
	if err != nil {
		return nil, fmt.Errorf("mpnet: respawned rank %d handshake: %w", r, err)
	}
	if hr != r {
		c.Close()
		return nil, fmt.Errorf("mpnet: respawned rank %d answered hello as rank %d", r, hr)
	}
	lk := co.links[r]
	lk.mu.Lock()
	defer lk.mu.Unlock()
	// Tear down the dead connection's queue (its unwritten frames are all
	// in the log), swap in the new one, and queue the full replay before
	// any concurrently routed frame can slip in: the per-link lock makes
	// replay-then-new-traffic the only observable order.
	if lk.conn != nil {
		lk.conn.Close()
	}
	if lk.q != nil {
		lk.q.Close()
	}
	lk.conn, lk.q = c, host.NewFrameQueue(c, nil)
	for _, e := range lk.log {
		if err := lk.q.Enqueue(append(wire.GetBuf(), e...)); err != nil {
			return nil, fmt.Errorf("mpnet: replaying to respawned rank %d: %w", r, err)
		}
	}
	return c, nil
}

// RunWorker dials the coordinator and runs one rank to completion: the
// body of a worker process.
func RunWorker(network, addr string, rank int) error {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return fmt.Errorf("dialing coordinator: %w", err)
	}
	defer conn.Close()
	// The handshake — hello out, start frame back — runs under a
	// deadline: a coordinator that accepted but never configures this
	// rank must surface as a clear timeout error, not a silent hang.
	if err := conn.SetDeadline(time.Now().Add(handshakeTimeout)); err != nil {
		return err
	}
	if err := wire.WriteFrame(conn, &wire.Frame{Kind: wire.FHello, From: int32(rank)}); err != nil {
		return fmt.Errorf("sending hello: %w", err)
	}
	f, err := wire.ReadFrame(conn)
	if err != nil {
		return fmt.Errorf("reading start frame (handshake deadline %v): %w", handshakeTimeout, err)
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return err
	}
	start, ok := f.Payload.(wire.Start)
	if !ok || f.Kind != wire.FStart {
		return fmt.Errorf("expected start frame, got kind %d", f.Kind)
	}
	app, err := apps.ByName(start.App)
	if err != nil {
		return err
	}
	set := apps.DataSet(start.Set)
	if _, ok := app.Sets[set]; !ok {
		return fmt.Errorf("unknown data set %q", start.Set)
	}

	// Re-derive the problem parameters exactly as the in-process harness
	// does; they are a pure function of (app, set, n).
	n := int(start.N)
	prog := app.Build(n)
	params := prog.Prepare(app.Sets[set], n)

	w := newWorkerWorld(conn, rank, n, model.SP2())
	if spec := os.Getenv(MetricsEnv); spec != "" {
		reg := obs.NewRegistry()
		w.tr.EnableObs(reg)
		closer, err := serveMetrics(spec, rank, reg)
		if err != nil {
			return fmt.Errorf("rank %d: %w", rank, err)
		}
		defer closer.Close()
	}
	var sum float64
	var runErr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				runErr = fmt.Errorf("rank %d panicked: %v", rank, r)
			}
		}()
		runErr = w.world.Run(func(r *mp.Rank) {
			if cs, ok := params["cscale"]; ok {
				r.SetCostScale(cs)
			}
			sum = app.MP(r, params, time.Duration(start.Overhead), start.Verify)
		})
	}()
	done := wire.Done{Checksum: sum}
	if runErr != nil {
		done.Err = runErr.Error()
	}
	// The done report rides the same outbound queue as the data frames so
	// it cannot overtake them, then the queue is drained to the socket.
	raw, err := wire.AppendFrame(wire.GetBuf(), &wire.Frame{
		Kind: wire.FDone, From: int32(rank), Time: int64(w.proc.clock), Payload: done,
	})
	if err != nil {
		return err
	}
	w.tr.enqueue(raw)
	return w.tr.flush()
}
