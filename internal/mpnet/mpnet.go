// Package mpnet runs the message-passing layer (package mp) as a real
// distributed system: one OS process per rank, spawned by a coordinator
// and connected to its switch over loopback sockets, exchanging frames in
// the wire format (package wire).
//
// This is the deployment shape of the paper's PVMe programs — genuinely
// share-nothing processes communicating only by messages — and the proof
// that the mp programming layer has no hidden in-memory couplings: the
// same application code runs unmodified against a socket-backed transport
// in another process.
//
// The coordinator listens, spawns workers (the sdsm-node binary, or a
// re-exec of the current executable), routes frames between them by
// destination rank, accounts traffic, and collects each worker's final
// virtual clock and checksum contribution. A worker process dials in,
// identifies itself (hello), receives its run configuration (start),
// re-derives the problem parameters deterministically from it, runs the
// application's MP function against a proxy Host/Transport whose
// communication methods speak frames, and reports its result (done).
//
// Timing note: virtual clocks are maintained per worker with the same
// cost model as in-process runs, but receive-any matching follows real
// frame arrival order, so reported times (and floating-point reduction
// orders) are scheduling-dependent. Verification therefore uses the
// approximate checksum comparison, and the deterministic tables always
// use the sim backend.
package mpnet

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"sdsm/internal/apps"
	"sdsm/internal/host"
	"sdsm/internal/model"
	"sdsm/internal/mp"
	"sdsm/internal/wire"
)

// WorkerEnv is the environment variable carrying a spawned worker's
// connection target and rank: "network;address;rank".
const WorkerEnv = "SDSM_MP_WORKER"

// MaybeWorker turns the current process into a worker when WorkerEnv is
// set, never returning in that case. Binaries that spawn workers by
// re-executing themselves must call it first thing in main.
func MaybeWorker() {
	spec := os.Getenv(WorkerEnv)
	if spec == "" {
		return
	}
	parts := strings.SplitN(spec, ";", 3)
	if len(parts) != 3 {
		fmt.Fprintf(os.Stderr, "sdsm worker: malformed %s=%q\n", WorkerEnv, spec)
		os.Exit(2)
	}
	rank, err := strconv.Atoi(parts[2])
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdsm worker: bad rank in %s=%q\n", WorkerEnv, spec)
		os.Exit(2)
	}
	if err := RunWorker(parts[0], parts[1], rank); err != nil {
		fmt.Fprintf(os.Stderr, "sdsm worker rank %d: %v\n", rank, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// Result is the outcome of a distributed mp run.
type Result struct {
	Time     time.Duration
	Checksum float64
	Stats    host.Stats
}

// Run executes one mp application with one OS process per rank. nodeBin
// names the worker binary; empty means re-exec the current executable
// (which must call MaybeWorker). overhead is the per-iteration
// distribution overhead of the XHPF stand-in, zero for PVMe.
//
// Workers derive their entire configuration — cost model included — from
// the start frame; the frame does not carry cost constants, so only the
// SP/2 model the workers assume is accepted (a non-SP2 model would
// silently misprice every worker clock otherwise).
func Run(app *apps.App, set apps.DataSet, procs int, overhead time.Duration, verify bool, nodeBin string, costs model.Costs) (*Result, error) {
	if costs != model.SP2() {
		return nil, fmt.Errorf("mpnet: the process-per-rank deployment supports the SP2 cost model only")
	}
	if nodeBin == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("mpnet: cannot locate own executable: %w", err)
		}
		nodeBin = exe
	}

	ln, dir, err := host.ListenLoopback()
	if err != nil {
		return nil, fmt.Errorf("mpnet: cannot listen: %w", err)
	}
	defer ln.Close()
	if dir != "" {
		defer os.RemoveAll(dir)
	}

	// Spawn the workers.
	var procsRunning []*exec.Cmd
	killAll := func() {
		for _, c := range procsRunning {
			if c.Process != nil {
				c.Process.Kill()
			}
		}
		for _, c := range procsRunning {
			c.Wait()
		}
	}
	for r := 0; r < procs; r++ {
		cmd := exec.Command(nodeBin)
		cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%s;%s;%d", WorkerEnv, ln.Addr().Network(), ln.Addr().String(), r))
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			killAll()
			return nil, fmt.Errorf("mpnet: spawning worker %d: %w", r, err)
		}
		procsRunning = append(procsRunning, cmd)
	}

	// Accept and pair connections by hello. A worker binary that does not
	// call MaybeWorker never dials in; the deadline turns that into a
	// diagnosable error instead of a hang.
	conns := make([]net.Conn, procs)
	// Per-destination outbound queues (created after the handshake). The
	// join defer is registered before the conns-close defer so it runs
	// after it: closing the sockets first guarantees a wedged writer
	// errors out instead of blocking the join — any frames dropped that
	// way are addressed to workers that already reported done.
	var outq []*host.FrameQueue
	defer func() {
		for _, q := range outq {
			if q != nil {
				q.Close()
			}
		}
	}()
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; i < procs; i++ {
		type deadliner interface{ SetDeadline(time.Time) error }
		if d, ok := ln.(deadliner); ok {
			d.SetDeadline(deadline)
		}
		c, err := ln.Accept()
		if err != nil {
			killAll()
			return nil, fmt.Errorf("mpnet: worker handshake (does the worker binary call mpnet.MaybeWorker?): %w", err)
		}
		f, err := wire.ReadFrame(c)
		if err != nil || f.Kind != wire.FHello || int(f.From) < 0 || int(f.From) >= procs || conns[f.From] != nil {
			c.Close()
			killAll()
			return nil, fmt.Errorf("mpnet: bad hello: %v", err)
		}
		conns[f.From] = c
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
		killAll()
	}()

	// Configure every worker.
	start := wire.Start{App: app.Name, Set: string(set), N: int32(procs), Overhead: int64(overhead), Verify: verify}
	for r := 0; r < procs; r++ {
		if err := wire.WriteFrame(conns[r], &wire.Frame{Kind: wire.FStart, To: int32(r), Payload: start}); err != nil {
			return nil, fmt.Errorf("mpnet: configuring worker %d: %w", r, err)
		}
	}

	// Route frames until every worker reports done. Writes to one
	// destination are serialized by its FrameQueue, which also coalesces
	// the frames a flurry of routers deposit into one vectored write and
	// recycles each frame's pooled read buffer afterwards.
	res := &Result{Stats: host.Stats{Node: make([]host.NodeStats, procs)}}
	var statsMu sync.Mutex
	outq = make([]*host.FrameQueue, procs)
	for r := 0; r < procs; r++ {
		outq[r] = host.NewFrameQueue(conns[r], nil)
	}
	type doneMsg struct {
		rank  int
		clock time.Duration
		sum   float64
		err   error
	}
	doneCh := make(chan doneMsg, procs)
	for r := 0; r < procs; r++ {
		r := r
		go func() {
			for {
				raw, err := wire.ReadRawFrameInto(conns[r], wire.GetBuf())
				if err != nil {
					doneCh <- doneMsg{rank: r, err: fmt.Errorf("mpnet: rank %d link lost: %w", r, err)}
					return
				}
				kind, _, to, bytes, err := wire.RawFields(raw)
				if err != nil {
					doneCh <- doneMsg{rank: r, err: err}
					return
				}
				if kind == wire.FDone {
					f, _, err := wire.ParseFrame(raw)
					wire.PutBuf(raw)
					if err != nil {
						doneCh <- doneMsg{rank: r, err: err}
						return
					}
					d := f.Payload.(wire.Done)
					if d.Err != "" {
						doneCh <- doneMsg{rank: r, err: fmt.Errorf("mpnet: rank %d failed: %s", r, d.Err)}
						return
					}
					doneCh <- doneMsg{rank: r, clock: time.Duration(f.Time), sum: d.Checksum}
					return
				}
				if int(to) < 0 || int(to) >= procs {
					doneCh <- doneMsg{rank: r, err: fmt.Errorf("mpnet: rank %d sent unroutable frame", r)}
					return
				}
				if kind == wire.FMsg {
					// Accounted from the raw header — the payload is
					// forwarded verbatim, never decoded here. One router
					// goroutine runs per sending rank, so the shared
					// counters need the lock.
					statsMu.Lock()
					res.Stats.Account(r, int(to), int(bytes))
					statsMu.Unlock()
				}
				if err := outq[to].Enqueue(raw); err != nil {
					doneCh <- doneMsg{rank: r, err: fmt.Errorf("mpnet: routing to rank %d: %w", to, err)}
					return
				}
			}
		}()
	}
	for i := 0; i < procs; i++ {
		d := <-doneCh
		if d.err != nil {
			return nil, d.err
		}
		if d.clock > res.Time {
			res.Time = d.clock
		}
		if d.rank == 0 {
			res.Checksum = d.sum
		}
	}
	return res, nil
}

// RunWorker dials the coordinator and runs one rank to completion: the
// body of a worker process.
func RunWorker(network, addr string, rank int) error {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return fmt.Errorf("dialing coordinator: %w", err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, &wire.Frame{Kind: wire.FHello, From: int32(rank)}); err != nil {
		return err
	}
	f, err := wire.ReadFrame(conn)
	if err != nil {
		return fmt.Errorf("reading start frame: %w", err)
	}
	start, ok := f.Payload.(wire.Start)
	if !ok || f.Kind != wire.FStart {
		return fmt.Errorf("expected start frame, got kind %d", f.Kind)
	}
	app, err := apps.ByName(start.App)
	if err != nil {
		return err
	}
	set := apps.DataSet(start.Set)
	if _, ok := app.Sets[set]; !ok {
		return fmt.Errorf("unknown data set %q", start.Set)
	}

	// Re-derive the problem parameters exactly as the in-process harness
	// does; they are a pure function of (app, set, n).
	n := int(start.N)
	prog := app.Build(n)
	params := prog.Prepare(app.Sets[set], n)

	w := newWorkerWorld(conn, rank, n, model.SP2())
	var sum float64
	var runErr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				runErr = fmt.Errorf("rank %d panicked: %v", rank, r)
			}
		}()
		runErr = w.world.Run(func(r *mp.Rank) {
			if cs, ok := params["cscale"]; ok {
				r.SetCostScale(cs)
			}
			sum = app.MP(r, params, time.Duration(start.Overhead), start.Verify)
		})
	}()
	done := wire.Done{Checksum: sum}
	if runErr != nil {
		done.Err = runErr.Error()
	}
	// The done report rides the same outbound queue as the data frames so
	// it cannot overtake them, then the queue is drained to the socket.
	raw, err := wire.AppendFrame(wire.GetBuf(), &wire.Frame{
		Kind: wire.FDone, From: int32(rank), Time: int64(w.proc.clock), Payload: done,
	})
	if err != nil {
		return err
	}
	w.tr.enqueue(raw)
	return w.tr.flush()
}
