package mpnet_test

import (
	"os"
	"testing"

	"sdsm/internal/apps"
	"sdsm/internal/harness"
	"sdsm/internal/model"
	"sdsm/internal/mpnet"
)

// TestMain installs the worker hook: the coordinator spawns THIS test
// binary as its rank processes.
func TestMain(m *testing.M) {
	mpnet.MaybeWorker()
	os.Exit(m.Run())
}

// TestDistributedMP runs message-passing applications with one OS process
// per rank and verifies the checksum against the sequential reference.
// Reduction order follows real frame arrival, so comparison is the
// approximate one (apps.Close), as documented.
func TestDistributedMP(t *testing.T) {
	cases := []struct {
		app   string
		procs int
	}{
		{"is", 2},
		{"jacobi", 3},
		{"mgs", 5},
	}
	if testing.Short() {
		cases = cases[:2]
	}
	for _, c := range cases {
		c := c
		t.Run(c.app, func(t *testing.T) {
			a, err := apps.ByName(c.app)
			if err != nil {
				t.Fatal(err)
			}
			res, err := mpnet.Run(a, apps.Small, c.procs, 0, true, "", model.SP2())
			if err != nil {
				t.Fatal(err)
			}
			seq := harness.SeqChecksum(a, apps.Small)
			if !apps.Close(res.Checksum, seq) {
				t.Errorf("%s/p%d: distributed checksum %v != sequential %v", c.app, c.procs, res.Checksum, seq)
			}
			if res.Stats.Msgs == 0 || res.Time == 0 {
				t.Errorf("%s/p%d: missing accounting: %d msgs, time %v", c.app, c.procs, res.Stats.Msgs, res.Time)
			}
		})
	}
}

// TestHarnessNetMP exercises the harness plumbing: a PVMe run on the net
// backend spawns worker processes through harness.Run.
func TestHarnessNetMP(t *testing.T) {
	a, err := apps.ByName("shallow")
	if err != nil {
		t.Fatal(err)
	}
	res, err := harness.Run(harness.Config{
		App: a, Set: apps.Small, System: harness.PVMe, Procs: 2,
		Verify: true, Backend: harness.BackendNet,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq := harness.SeqChecksum(a, apps.Small)
	if !apps.Close(res.Checksum, seq) {
		t.Errorf("checksum %v != sequential %v", res.Checksum, seq)
	}
}
