package mpnet_test

import (
	"fmt"
	"os"
	"testing"

	"sdsm/internal/apps"
	"sdsm/internal/harness"
	"sdsm/internal/model"
	"sdsm/internal/mpnet"
)

// TestMain installs the worker hook: the coordinator spawns THIS test
// binary as its rank processes.
func TestMain(m *testing.M) {
	mpnet.MaybeWorker()
	os.Exit(m.Run())
}

// TestDistributedMP runs message-passing applications with one OS process
// per rank and verifies the checksum against the sequential reference.
// Reduction order follows real frame arrival, so comparison is the
// approximate one (apps.Close), as documented.
func TestDistributedMP(t *testing.T) {
	cases := []struct {
		app   string
		procs int
	}{
		{"is", 2},
		{"jacobi", 3},
		{"mgs", 5},
	}
	if testing.Short() {
		cases = cases[:2]
	}
	for _, c := range cases {
		c := c
		t.Run(c.app, func(t *testing.T) {
			a, err := apps.ByName(c.app)
			if err != nil {
				t.Fatal(err)
			}
			res, err := mpnet.Run(a, apps.Small, c.procs, 0, true, "", model.SP2())
			if err != nil {
				t.Fatal(err)
			}
			seq := harness.SeqChecksum(a, apps.Small)
			if !apps.Close(res.Checksum, seq) {
				t.Errorf("%s/p%d: distributed checksum %v != sequential %v", c.app, c.procs, res.Checksum, seq)
			}
			if res.Stats.Msgs == 0 || res.Time == 0 {
				t.Errorf("%s/p%d: missing accounting: %d msgs, time %v", c.app, c.procs, res.Stats.Msgs, res.Time)
			}
		})
	}
}

// TestDistributedRecovery kills one worker process mid-run and checks
// the coordinator's respawn-and-replay recovery: the replayed rank must
// rejoin the computation and the final checksum must still match the
// sequential reference (approximately, per the package's reduction-order
// caveat). AfterFrames values probe a kill before the rank's first frame
// and one in the middle of the exchange pattern.
func TestDistributedRecovery(t *testing.T) {
	a, err := apps.ByName("jacobi")
	if err != nil {
		t.Fatal(err)
	}
	seq := harness.SeqChecksum(a, apps.Small)
	for _, after := range []int{0, 7} {
		after := after
		t.Run(fmt.Sprintf("after%d", after), func(t *testing.T) {
			res, err := mpnet.RunOpts(a, apps.Small, 3, mpnet.Options{
				Verify: true, Costs: model.SP2(),
				Recover: true, Fault: &mpnet.FaultSpec{Rank: 1, AfterFrames: after},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Restarts != 1 {
				t.Errorf("restarts = %d, want 1 (did the injected kill fire?)", res.Restarts)
			}
			if !apps.Close(res.Checksum, seq) {
				t.Errorf("recovered checksum %v != sequential %v", res.Checksum, seq)
			}
		})
	}
}

// TestRecoverNoFault checks the logging path is invisible when no worker
// dies: recovery armed, nothing killed, result as usual.
func TestRecoverNoFault(t *testing.T) {
	a, err := apps.ByName("is")
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpnet.RunOpts(a, apps.Small, 2, mpnet.Options{
		Verify: true, Costs: model.SP2(), Recover: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 0 {
		t.Errorf("restarts = %d, want 0", res.Restarts)
	}
	if seq := harness.SeqChecksum(a, apps.Small); !apps.Close(res.Checksum, seq) {
		t.Errorf("checksum %v != sequential %v", res.Checksum, seq)
	}
}

// TestHarnessNetMP exercises the harness plumbing: a PVMe run on the net
// backend spawns worker processes through harness.Run.
func TestHarnessNetMP(t *testing.T) {
	a, err := apps.ByName("shallow")
	if err != nil {
		t.Fatal(err)
	}
	res, err := harness.Run(harness.Config{
		App: a, Set: apps.Small, System: harness.PVMe, Procs: 2,
		Verify: true, Backend: harness.BackendNet,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq := harness.SeqChecksum(a, apps.Small)
	if !apps.Close(res.Checksum, seq) {
		t.Errorf("checksum %v != sequential %v", res.Checksum, seq)
	}
}

// TestHarnessMPFault drives the process-kill fault through the harness
// config surface (FaultPlan.AfterFrames on a PVMe net run) and checks
// the respawn is reported through the unified recovery counters.
func TestHarnessMPFault(t *testing.T) {
	a, err := apps.ByName("jacobi")
	if err != nil {
		t.Fatal(err)
	}
	res, err := harness.Run(harness.Config{
		App: a, Set: apps.Small, System: harness.PVMe, Procs: 3,
		Verify: true, Backend: harness.BackendNet,
		Fault: &harness.FaultPlan{Rank: 2, AfterFrames: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery.Restores != 1 {
		t.Errorf("recovery restores = %d, want 1", res.Recovery.Restores)
	}
	if seq := harness.SeqChecksum(a, apps.Small); !apps.Close(res.Checksum, seq) {
		t.Errorf("recovered checksum %v != sequential %v", res.Checksum, seq)
	}
}
