package vm

import (
	"testing"
	"testing/quick"
	"time"

	"sdsm/internal/host"
	"sdsm/internal/model"
	"sdsm/internal/shm"
	"sdsm/internal/sim"
)

// grantAll upgrades any faulting page to the access requested.
type grantAll struct{ m *Mem }

func (h *grantAll) Fault(p host.Proc, page int, acc Access) {
	if acc == Read {
		h.m.SetProt(p, page, ReadOnly)
	} else {
		h.m.SetProt(p, page, ReadWrite)
	}
}

// runOne executes body on a single simulated processor.
func runOne(t *testing.T, body func(p host.Proc)) {
	t.Helper()
	e := sim.NewEngine(1)
	if err := e.Run(body); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func newMem(words int) *Mem {
	m := New(0, words, model.SP2(), nil)
	m.handler = &grantAll{m}
	return m
}

func TestEnsureReadFaultsOncePerPage(t *testing.T) {
	m := newMem(4 * shm.PageWords)
	runOne(t, func(p host.Proc) {
		m.EnsureRead(p, shm.Region{Lo: 0, Hi: 3 * shm.PageWords})
		if m.Counters.ReadFaults != 3 {
			t.Errorf("read faults = %d, want 3", m.Counters.ReadFaults)
		}
		m.EnsureRead(p, shm.Region{Lo: 0, Hi: 3 * shm.PageWords})
		if m.Counters.ReadFaults != 3 {
			t.Errorf("second EnsureRead re-faulted: %d", m.Counters.ReadFaults)
		}
	})
}

func TestWriteFaultOnReadOnly(t *testing.T) {
	m := newMem(2 * shm.PageWords)
	runOne(t, func(p host.Proc) {
		m.EnsureRead(p, shm.Region{Lo: 0, Hi: 10})
		m.EnsureWrite(p, shm.Region{Lo: 0, Hi: 10})
		if m.Counters.WriteFaults != 1 {
			t.Errorf("write faults = %d, want 1", m.Counters.WriteFaults)
		}
		if m.Prot(0) != ReadWrite {
			t.Errorf("prot = %v", m.Prot(0))
		}
	})
}

func TestProtOpChargesTime(t *testing.T) {
	m := newMem(2 * shm.PageWords)
	costs := model.SP2()
	runOne(t, func(p host.Proc) {
		before := p.Now()
		m.SetProt(p, 0, ReadWrite)
		elapsed := p.Now() - before
		want := costs.ProtOp(2)
		if elapsed != want {
			t.Errorf("prot op charged %v, want %v", elapsed, want)
		}
		before = p.Now()
		m.SetProt(p, 0, ReadWrite) // no change: free
		if p.Now() != before {
			t.Error("idempotent SetProt should be free")
		}
	})
}

func TestProtOpCostSaturates(t *testing.T) {
	costs := model.SP2()
	atCap := costs.ProtOp(costs.ProtCap)
	if costs.ProtOp(costs.ProtCap*10) != atCap {
		t.Fatal("protection cost must saturate at ProtCap")
	}
	if atCap < 700*time.Microsecond || atCap > 900*time.Microsecond {
		t.Fatalf("cost at 2000 pages = %v, paper says ~800µs", atCap)
	}
	if costs.ProtOp(0) != 18*time.Microsecond {
		t.Fatalf("minimum cost = %v, paper says 18µs", costs.ProtOp(0))
	}
}

func TestTwinAndDiff(t *testing.T) {
	m := newMem(shm.PageWords)
	runOne(t, func(p host.Proc) {
		d := m.Data()
		d[3], d[4], d[10] = 1, 2, 3
		m.MakeTwin(p, 0)
		d[4] = 99           // modify one twinned word
		d[20], d[21] = 5, 6 // and a fresh run
		runs := m.DiffAgainstTwin(p, 0)
		if len(runs) != 2 {
			t.Fatalf("runs = %+v, want 2 runs", runs)
		}
		if runs[0].Off != 4 || len(runs[0].Vals) != 1 || runs[0].Vals[0] != 99 {
			t.Fatalf("run0 = %+v", runs[0])
		}
		if runs[1].Off != 20 || len(runs[1].Vals) != 2 {
			t.Fatalf("run1 = %+v", runs[1])
		}
		if m.HasTwin(0) {
			t.Fatal("diff must consume the twin")
		}
	})
}

func TestApplyRunsUpdatesTwin(t *testing.T) {
	// Applying a remote diff to a page we are also writing must update the
	// twin too, so our own later diff does not re-ship the remote's words.
	m := newMem(shm.PageWords)
	runOne(t, func(p host.Proc) {
		m.MakeTwin(p, 0)
		m.ApplyRuns(p, 0, []Run{{Off: 7, Vals: []float64{42}}})
		m.Data()[100] = 1 // our own write
		runs := m.DiffAgainstTwin(p, 0)
		if len(runs) != 1 || runs[0].Off != 100 {
			t.Fatalf("diff re-shipped applied words: %+v", runs)
		}
	})
}

func TestDiffRoundTripProperty(t *testing.T) {
	// Property: for random modifications, diff(twin, page) applied to the
	// twin reconstructs the page exactly.
	f := func(mods []struct {
		Off uint16
		Val float64
	}) bool {
		m := newMem(shm.PageWords)
		ok := true
		e := sim.NewEngine(1)
		err := e.Run(func(p host.Proc) {
			orig := make([]float64, shm.PageWords)
			for i := range orig {
				orig[i] = float64(i)
			}
			copy(m.Data(), orig)
			m.MakeTwin(p, 0)
			for _, mod := range mods {
				m.Data()[int(mod.Off)%shm.PageWords] = mod.Val
			}
			want := append([]float64(nil), m.PageData(0)...)
			runs := m.DiffAgainstTwin(p, 0)

			// Reconstruct from the original plus runs.
			m2 := newMem(shm.PageWords)
			copy(m2.Data(), orig)
			m2.ApplyRuns(p, 0, runs)
			for i := range want {
				if m2.Data()[i] != want[i] {
					ok = false
					return
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRunsBytes(t *testing.T) {
	runs := []Run{{Off: 0, Vals: make([]float64, 3)}, {Off: 9, Vals: make([]float64, 1)}}
	if RunsBytes(runs) != 8*(1+3)+8*(1+1) {
		t.Fatalf("RunsBytes = %d", RunsBytes(runs))
	}
	if RunsWords(runs) != 4 {
		t.Fatalf("RunsWords = %d", RunsWords(runs))
	}
}

func TestWholePageRuns(t *testing.T) {
	m := newMem(shm.PageWords)
	runOne(t, func(p host.Proc) {
		m.Data()[0] = 7
		runs := m.WholePageRuns(p, 0)
		if len(runs) != 1 || len(runs[0].Vals) != shm.PageWords || runs[0].Vals[0] != 7 {
			t.Fatalf("whole page runs wrong: %d runs", len(runs))
		}
	})
}

func TestFaultChargesBaseCost(t *testing.T) {
	m := newMem(shm.PageWords)
	costs := model.SP2()
	runOne(t, func(p host.Proc) {
		before := p.Now()
		m.EnsureRead(p, shm.Region{Lo: 0, Hi: 1})
		got := p.Now() - before
		want := costs.PageFault + costs.ProtOp(1)
		if got != want {
			t.Errorf("fault charged %v, want %v", got, want)
		}
	})
}
