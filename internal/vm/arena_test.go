package vm

import (
	"testing"

	"sdsm/internal/model"
	"sdsm/internal/shm"
)

// TestArenaDataLoan pins the data-store contract: loans come back
// zeroed regardless of what the previous tenant left, reuse actually
// recycles storage, and append cannot reach the guard region.
func TestArenaDataLoan(t *testing.T) {
	a := NewArena()
	a.SetCanary(1.5)
	d1 := a.TakeData(64)
	for i := range d1 {
		d1[i] = float64(i + 1)
	}
	if err := a.CheckGuards(); err != nil {
		t.Fatalf("guards after in-bounds writes: %v", err)
	}
	a.ReleaseData()
	if n, _, _ := a.Idle(); n != 1 {
		t.Fatalf("idle data stores after release: %d, want 1", n)
	}

	a.SetCanary(2.5)
	d2 := a.TakeData(32) // fits in the recycled 64-word store
	if n, _, _ := a.Idle(); n != 0 {
		t.Fatal("second take did not reuse the idle store")
	}
	for i, v := range d2 {
		if v != 0 {
			t.Fatalf("reused store word %d = %v, want 0 (previous tenant visible)", i, v)
		}
	}
	if cap(d2) != len(d2) {
		t.Fatalf("loan capacity %d > length %d: append could reach the guards", cap(d2), len(d2))
	}
}

// TestArenaGuardCatchesOverrun pins the bleed detector: a write past
// the loaned length lands in the guard words and CheckGuards reports
// it. The loan itself is capacity-capped, so the overrun is simulated
// through the backing store the arena retains — the view a buggy
// aliasing bug would reach.
func TestArenaGuardCatchesOverrun(t *testing.T) {
	a := NewArena()
	a.SetCanary(7.25)
	_ = a.TakeData(16)
	if err := a.CheckGuards(); err != nil {
		t.Fatalf("clean loan failed audit: %v", err)
	}
	a.loans[0].store[16] = 0 // first guard word, via the backing array
	if err := a.CheckGuards(); err == nil {
		t.Fatal("corrupted guard word passed the audit")
	}
}

// TestArenaInt32Raw pins that int32 loans are deliberately raw: stale
// contents survive recycling (the directory layer owns initialization —
// tmk's warm EnableScale test covers that side).
func TestArenaInt32Raw(t *testing.T) {
	a := NewArena()
	s := a.TakeInt32(8)
	for i := range s {
		s[i] = 42
	}
	a.RecycleInt32(s)
	s2 := a.TakeInt32(8)
	if s2[0] != 42 {
		t.Fatal("int32 loan was scrubbed; the warm-reuse contract hands it back raw")
	}
}

// TestWarmMemBitIdentical pins NewWarm's observable equality with New:
// same zeroed data, same page count, and Release hands storage back.
func TestWarmMemBitIdentical(t *testing.T) {
	a := NewArena()
	m := NewWarm(3, 3*shm.PageWords, model.SP2(), nil, a)
	if m.Arena() != a {
		t.Fatal("warm Mem lost its arena")
	}
	for i, v := range m.Data() {
		if v != 0 {
			t.Fatalf("warm data word %d = %v, want 0", i, v)
		}
	}
	if m.Pages() != 3 {
		t.Fatalf("pages %d, want 3", m.Pages())
	}
	m.Release()
	a.ReleaseData()
	data, _, _ := a.Idle()
	if data != 1 {
		t.Fatalf("idle data stores after release: %d, want 1", data)
	}
}
