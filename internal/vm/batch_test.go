package vm

import (
	"testing"

	"sdsm/internal/host"
	"sdsm/internal/model"
	"sdsm/internal/shm"
)

func TestProtBatchCoalescesRuns(t *testing.T) {
	m := newMem(16 * shm.PageWords)
	costs := model.SP2()
	runOne(t, func(p host.Proc) {
		m.BeginProtBatch()
		for pg := 0; pg < 8; pg++ {
			m.SetProt(p, pg, ReadWrite) // one contiguous run
		}
		m.SetProt(p, 12, ReadOnly) // separate run
		before := p.Now()
		m.FlushProtBatch(p)
		if got := p.Now() - before; got != 2*costs.ProtOp(16) {
			t.Errorf("flush charged %v, want 2 ops", got)
		}
		if m.Counters.ProtOps != 2 {
			t.Errorf("ops = %d, want 2", m.Counters.ProtOps)
		}
	})
}

func TestProtBatchSplitsOnProtChange(t *testing.T) {
	m := newMem(8 * shm.PageWords)
	runOne(t, func(p host.Proc) {
		m.BeginProtBatch()
		m.SetProt(p, 0, ReadWrite)
		m.SetProt(p, 1, ReadOnly) // adjacent but different protection
		m.SetProt(p, 2, ReadOnly)
		m.FlushProtBatch(p)
		if m.Counters.ProtOps != 2 {
			t.Errorf("ops = %d, want 2 (rw run + ro run)", m.Counters.ProtOps)
		}
	})
}

func TestProtBatchCancelsChangeBack(t *testing.T) {
	m := newMem(4 * shm.PageWords)
	runOne(t, func(p host.Proc) {
		m.BeginProtBatch()
		m.SetProt(p, 0, ReadWrite)
		m.SetProt(p, 0, NoAccess) // back to the original: no syscall needed
		before := p.Now()
		m.FlushProtBatch(p)
		if p.Now() != before || m.Counters.ProtOps != 0 {
			t.Errorf("change-back should be free: %d ops", m.Counters.ProtOps)
		}
	})
}

func TestProtBatchReentrant(t *testing.T) {
	m := newMem(4 * shm.PageWords)
	runOne(t, func(p host.Proc) {
		m.BeginProtBatch()
		m.BeginProtBatch()
		m.SetProt(p, 0, ReadWrite)
		m.FlushProtBatch(p) // inner flush: still batching
		if m.Counters.ProtOps != 0 {
			t.Error("inner flush must not charge")
		}
		m.SetProt(p, 1, ReadWrite)
		m.FlushProtBatch(p)
		if m.Counters.ProtOps != 1 {
			t.Errorf("outer flush charged %d ops, want 1 (contiguous run)", m.Counters.ProtOps)
		}
	})
}

func TestProtBitsVisibleDuringBatch(t *testing.T) {
	m := newMem(2 * shm.PageWords)
	runOne(t, func(p host.Proc) {
		m.BeginProtBatch()
		m.SetProt(p, 0, ReadWrite)
		if m.Prot(0) != ReadWrite {
			t.Error("protection bit must apply immediately inside a batch")
		}
		m.FlushProtBatch(p)
	})
}
