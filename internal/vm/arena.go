package vm

import "fmt"

// GuardWords is the number of canary words an Arena keeps beyond each
// loaned data store. The guards are invisible to the borrower (the loan
// is capacity-capped before them) and are audited by CheckGuards after
// the job releases its memory: a job that scribbles past its address
// space — the cross-job bleed a warm pool must fear — lands in the
// guards before it lands in a neighbor's storage.
const GuardWords = 16

// loan records one data store currently lent to a running job: the full
// backing array, the borrowed prefix length, and the canary value the
// guard words held when the loan was made.
type loan struct {
	store  []float64
	words  int
	canary float64
}

// Arena is warm storage for one pool rank slot. A long-lived node daemon
// keeps one Arena per slot and threads it through every job that runs on
// the slot, so steady-state jobs reuse page frames, address-space
// backing stores, and directory arrays instead of growing the heap per
// job. An Arena is owned by exactly one job at a time (the pool's slot
// discipline); it needs no locking.
//
// Reuse rules, chosen so warm results stay bit-identical to fresh runs:
//
//   - Data stores (TakeData) are zeroed on every take, exactly like
//     make: application memory starts blank.
//   - Page buffers (TakePage) are NOT zeroed: every consumer in package
//     vm fully overwrites the buffer before reading it (twin snapshots,
//     whole-page runs), so stale content is unobservable. This mirrors
//     the intra-run freelist Mem.free already trusts.
//   - Int32 arrays (TakeInt32) are NOT zeroed: the directory layer must
//     reinitialize every entry itself. Handing back stale owner hints
//     uninitialized is deliberate — it is exactly the surface the
//     per-job rank-subset regression test poisons.
type Arena struct {
	canary float64
	data   [][]float64 // idle data stores, guard capacity included
	pages  [][]float64 // idle page-sized buffers
	ints   [][]int32   // idle int32 arrays
	loans  []loan
}

// NewArena returns an empty warm arena.
func NewArena() *Arena { return &Arena{} }

// SetCanary installs the canary value for subsequent loans. The pool
// gives each job a distinct canary so a guard violation names which
// job's storage was overrun.
func (a *Arena) SetCanary(c float64) { a.canary = c }

// TakeData lends a zeroed data store of the given word count, backed by
// recycled storage when a large-enough idle store exists. The returned
// slice is capacity-capped at words: an append cannot silently grow into
// the guard region.
func (a *Arena) TakeData(words int) []float64 {
	var store []float64
	for i, s := range a.data {
		if cap(s) >= words+GuardWords {
			store = s[:cap(s)]
			a.data[i] = a.data[len(a.data)-1]
			a.data[len(a.data)-1] = nil
			a.data = a.data[:len(a.data)-1]
			break
		}
	}
	if store == nil {
		store = make([]float64, words+GuardWords)
	}
	clear(store[:words])
	for i := words; i < words+GuardWords; i++ {
		store[i] = a.canary
	}
	a.loans = append(a.loans, loan{store: store, words: words, canary: a.canary})
	return store[:words:words]
}

// TakePage lends a page-sized buffer without zeroing it; the caller must
// fully overwrite it before reading (see the Arena reuse rules).
func (a *Arena) TakePage(n int) []float64 {
	if l := len(a.pages); l > 0 {
		pg := a.pages[l-1]
		a.pages[l-1] = nil
		a.pages = a.pages[:l-1]
		if cap(pg) >= n {
			return pg[:n]
		}
	}
	return make([]float64, n)
}

// RecyclePages accepts a batch of idle page buffers back into the arena.
func (a *Arena) RecyclePages(bufs [][]float64) {
	for _, b := range bufs {
		if b != nil {
			a.pages = append(a.pages, b)
		}
	}
}

// TakeInt32 lends an int32 array of length n with UNSPECIFIED contents —
// possibly a previous job's values. Callers own initialization.
func (a *Arena) TakeInt32(n int) []int32 {
	for i, s := range a.ints {
		if cap(s) >= n {
			a.ints[i] = a.ints[len(a.ints)-1]
			a.ints[len(a.ints)-1] = nil
			a.ints = a.ints[:len(a.ints)-1]
			return s[:n]
		}
	}
	return make([]int32, n)
}

// RecycleInt32 accepts an int32 array back into the arena.
func (a *Arena) RecycleInt32(s []int32) {
	if s != nil {
		a.ints = append(a.ints, s)
	}
}

// CheckGuards audits every outstanding loan's guard words against the
// canary recorded at take time. It must run before ReleaseData returns
// the stores to the idle list. A mismatch is cross-job bleed (or an
// in-job overrun) and the pool treats it as fatal for the offending job.
func (a *Arena) CheckGuards() error {
	for _, l := range a.loans {
		g := l.store[l.words : l.words+GuardWords]
		for i, v := range g {
			if v != l.canary {
				return fmt.Errorf("vm: arena guard word %d of %d-word store corrupted: got %v, want canary %v",
					i, l.words, v, l.canary)
			}
		}
	}
	return nil
}

// ReleaseData ends every outstanding data loan, returning the stores to
// the idle list for the next job. Call CheckGuards first; release does
// not audit.
func (a *Arena) ReleaseData() {
	for i := range a.loans {
		a.data = append(a.data, a.loans[i].store)
		a.loans[i] = loan{}
	}
	a.loans = a.loans[:0]
}

// Idle reports the arena's idle inventory (data stores, page buffers,
// int32 arrays), for tests that pin warm reuse actually happening.
func (a *Arena) Idle() (data, pages, ints int) {
	return len(a.data), len(a.pages), len(a.ints)
}

// Loans reports the number of outstanding data loans.
func (a *Arena) Loans() int { return len(a.loans) }
