// Package vm is the software MMU of the simulated DSM node.
//
// A real TreadMarks implementation relies on mprotect and SIGSEGV to detect
// shared accesses; a Go process cannot own either (the Go runtime does), so
// this package substitutes a paged memory with explicit protection bits.
// Application code accesses shared memory through EnsureRead/EnsureWrite
// region calls; a protection mismatch delivers a fault to the DSM protocol
// exactly as a hardware trap would, with the fault, protection-change,
// twinning and diffing costs of the paper's platform charged to virtual
// time. The protocol layer (package tmk) is the fault handler.
package vm

import (
	"fmt"
	"sort"
	"time"

	"sdsm/internal/host"
	"sdsm/internal/model"
	"sdsm/internal/obs"
	"sdsm/internal/shm"
)

// Prot is a page protection state.
type Prot uint8

const (
	// NoAccess pages fault on any access (invalid pages).
	NoAccess Prot = iota
	// ReadOnly pages fault on writes (write detection armed).
	ReadOnly
	// ReadWrite pages never fault.
	ReadWrite
)

func (p Prot) String() string {
	switch p {
	case NoAccess:
		return "none"
	case ReadOnly:
		return "ro"
	case ReadWrite:
		return "rw"
	}
	return fmt.Sprintf("prot(%d)", uint8(p))
}

// Access is the kind of memory access that faulted.
type Access uint8

const (
	// Read access.
	Read Access = iota
	// Write access.
	Write
)

// FaultHandler receives protection faults. The handler must leave the page
// with sufficient protection for the faulting access, or the access panics.
type FaultHandler interface {
	Fault(p host.Proc, page int, acc Access)
}

// Run is a contiguous span of modified words within a page, the unit a
// diff is made of.
type Run struct {
	Off  int // word offset within the page
	Vals []float64
}

// RunsBytes returns the wire size of a set of runs: one word of header per
// run plus the data words.
func RunsBytes(runs []Run) int {
	n := 0
	for _, r := range runs {
		n += shm.WordBytes * (1 + len(r.Vals))
	}
	return n
}

// RunsWords returns the number of data words covered by runs.
func RunsWords(runs []Run) int {
	n := 0
	for _, r := range runs {
		n += len(r.Vals)
	}
	return n
}

// Counters tallies MMU events for one node; the paper's "segv" column in
// Table 2 is ReadFaults+WriteFaults.
type Counters struct {
	ReadFaults  int64
	WriteFaults int64
	ProtOps     int64
	Twins       int64
	Diffs       int64
	DiffWords   int64
}

// Mem is one node's view of the shared address space.
type Mem struct {
	Node  int
	costs model.Costs

	data    []float64
	prot    []Prot
	twins   map[int][]float64
	handler FaultHandler

	// extLo/extHi accumulate, per page, the union of the write regions
	// the application has established since the extent was last consumed
	// (TakeWriteExtent). They are bookkeeping only — no virtual-time cost —
	// and feed the write-extent field of write notices, which the adaptive
	// protocol's sub-page split detection reads. extHi[pg] == 0 means no
	// write region touched the page.
	extLo, extHi []int16

	batchDepth   int
	batched      map[int]Prot // page -> protection before the batch
	batchScratch []int

	// free recycles page-sized []float64 storage between twins, whole-page
	// snapshots, and the protocol's pruned diff chains (RecyclePage): a
	// steady-state epoch's twin/diff cycle allocates no page storage. The
	// Mem is driven under the node's protocol exclusion, so the freelist
	// needs no synchronization.
	free [][]float64

	// arena, when non-nil, is the warm pool slot this Mem borrowed its
	// storage from (NewWarm). Page buffers the freelist misses come from
	// the arena, and Release hands everything back for the next job.
	arena *Arena

	// Counters is exported for the statistics harness.
	Counters Counters

	// Trace, when non-nil, receives twin/diff events (EvTwin, EvDiff). Set
	// by the protocol layer's EnableTrace; nil means tracing is off and the
	// MMU's behavior (charges, counters, allocations) is byte-identical.
	Trace *obs.NodeTracer
}

// New creates a node memory of the given size with all pages NoAccess.
func New(node int, words int, costs model.Costs, handler FaultHandler) *Mem {
	return NewWarm(node, words, costs, handler, nil)
}

// NewWarm creates a node memory backed by a warm arena's recycled
// storage. The data store comes zeroed from the arena (observably
// identical to make), so a warm run's memory contents are bit-identical
// to a fresh run's. A nil arena gives a plain heap-backed Mem — New is
// exactly NewWarm with nil.
func NewWarm(node int, words int, costs model.Costs, handler FaultHandler, arena *Arena) *Mem {
	pages := (words + shm.PageWords - 1) / shm.PageWords
	data := make([]float64, pages*shm.PageWords)
	if arena != nil {
		data = arena.TakeData(pages * shm.PageWords)
	}
	return &Mem{
		Node:    node,
		costs:   costs,
		data:    data,
		prot:    make([]Prot, pages),
		twins:   map[int][]float64{},
		extLo:   make([]int16, pages),
		extHi:   make([]int16, pages),
		handler: handler,
		arena:   arena,
	}
}

// Arena returns the warm arena backing this Mem, or nil for a
// heap-backed one.
func (m *Mem) Arena() *Arena { return m.arena }

// Release hands the Mem's reusable storage — live twins and the page
// freelist — back to its arena and drops the references, ending the
// job's loan of the data store. A heap-backed Mem ignores Release. The
// Mem must not be used afterwards.
func (m *Mem) Release() {
	if m.arena == nil {
		return
	}
	for pg, tw := range m.twins {
		delete(m.twins, pg)
		m.free = append(m.free, tw)
	}
	m.arena.RecyclePages(m.free)
	m.free = nil
	m.data = nil
}

// Pages returns the number of pages in the address space.
func (m *Mem) Pages() int { return len(m.prot) }

// Data exposes the node's memory image. Callers must have established
// access rights with EnsureRead/EnsureWrite first.
func (m *Mem) Data() []float64 { return m.data }

// PageData returns the words of one page.
func (m *Mem) PageData(page int) []float64 {
	return m.data[page*shm.PageWords : (page+1)*shm.PageWords]
}

// PageRegion returns the region covered by page.
func PageRegion(page int) shm.Region {
	return shm.Region{Lo: page * shm.PageWords, Hi: (page + 1) * shm.PageWords}
}

// Prot returns the protection of page.
func (m *Mem) Prot(page int) Prot { return m.prot[page] }

// SetProt changes the protection of page, charging the platform's
// protection-operation cost and counting it. Setting the same protection
// is free (no system call would be issued). Inside a protection batch
// (BeginProtBatch/FlushProtBatch) the bit changes immediately but the cost
// is coalesced per contiguous same-protection run, the way the augmented
// run-time's section primitives (Write_enable(Section) and friends,
// Figure 4 of the paper) issue one mprotect per address range.
func (m *Mem) SetProt(p host.Proc, page int, prot Prot) {
	if m.prot[page] == prot {
		return
	}
	if m.batchDepth > 0 {
		if _, seen := m.batched[page]; !seen {
			m.batched[page] = m.prot[page] // remember the pre-batch state
		}
		m.prot[page] = prot
		return
	}
	m.prot[page] = prot
	m.Counters.ProtOps++
	p.Charge(m.costs.ProtOp(m.Pages()))
}

// BeginProtBatch opens a (reentrant) protection batch. The batch map is
// retained (emptied, not dropped) across batches.
func (m *Mem) BeginProtBatch() {
	if m.batchDepth == 0 {
		if m.batched == nil {
			m.batched = map[int]Prot{}
		} else {
			clear(m.batched)
		}
	}
	m.batchDepth++
}

// FlushProtBatch closes the batch, charging one protection operation per
// contiguous run of pages with the same final protection.
func (m *Mem) FlushProtBatch(p host.Proc) {
	m.batchDepth--
	if m.batchDepth > 0 {
		return
	}
	if len(m.batched) == 0 {
		return
	}
	pages := m.batchScratch[:0]
	for pg, orig := range m.batched {
		if m.prot[pg] != orig { // changed-back pages need no syscall
			pages = append(pages, pg)
		}
	}
	sort.Ints(pages)
	runs := 0
	for i, pg := range pages {
		if i == 0 || pg != pages[i-1]+1 || m.prot[pg] != m.prot[pages[i-1]] {
			runs++
		}
	}
	m.Counters.ProtOps += int64(runs)
	p.Charge(time.Duration(runs) * m.costs.ProtOp(m.Pages()))
	m.batchScratch = pages[:0]
	clear(m.batched)
}

// SetProtInit changes protection without cost, for pre-run initialization.
func (m *Mem) SetProtInit(page int, prot Prot) { m.prot[page] = prot }

// WipeForRestore resets the arena to its initial state — all pages
// zeroed and NoAccess, twins recycled, write extents cleared — without
// cost or counting, for checkpoint restore. Any protection changes
// batched but not yet flushed are discarded: the restore supersedes
// them, and no syscalls were issued for them.
func (m *Mem) WipeForRestore() {
	clear(m.data)
	for pg := range m.prot {
		m.prot[pg] = NoAccess
	}
	for pg, tw := range m.twins {
		delete(m.twins, pg)
		m.RecyclePage(tw)
	}
	clear(m.extLo)
	clear(m.extHi)
	if m.batchDepth > 0 {
		clear(m.batched)
	}
}

// RestorePage installs a checkpointed page image: contents, protection,
// and — when twin is non-nil — an armed write-detection twin with the
// given image (the checkpointed twin, not a copy of the contents: the
// difference between the two is exactly the undiffed writes the next
// twin comparison must still find). Cost-free and counter-free, like
// SetProtInit: a restore is recovery work, not protocol work.
func (m *Mem) RestorePage(page int, vals []float64, prot Prot, twin []float64) {
	dst := m.PageData(page)
	copy(dst, vals)
	m.prot[page] = prot
	m.DropTwin(page)
	if twin != nil {
		tw := m.getPage()
		copy(tw, twin)
		m.twins[page] = tw
	}
}

// TwinData returns the twin image of page, or nil if the page has none.
// The slice aliases live twin storage: callers must copy what they keep.
func (m *Mem) TwinData(page int) []float64 { return m.twins[page] }

// EnsureRead establishes read access to every page overlapping r,
// delivering faults to the handler as needed. Ensure calls are run-time
// entry points: they bracket a protocol section for the fault path, so
// application code may call them directly on any host backend.
func (m *Mem) EnsureRead(p host.Proc, r shm.Region) {
	p.Begin()
	defer p.End()
	p0, p1 := r.Pages()
	for pg := p0; pg < p1; pg++ {
		if m.prot[pg] == NoAccess {
			m.fault(p, pg, Read)
		}
	}
}

// EnsureWrite establishes write access to every page overlapping r. The
// per-page overlap of r is folded into the page's write extent (see
// TakeWriteExtent): the declared write region is the software MMU's view
// of which words the application may store to, the same information a
// hardware MMU cannot give below page granularity.
func (m *Mem) EnsureWrite(p host.Proc, r shm.Region) {
	p.Begin()
	defer p.End()
	p0, p1 := r.Pages()
	for pg := p0; pg < p1; pg++ {
		lo, hi := 0, shm.PageWords
		if w := pg * shm.PageWords; r.Lo > w {
			lo = r.Lo - w
		}
		if w := (pg + 1) * shm.PageWords; r.Hi < w {
			hi = r.Hi - pg*shm.PageWords
		}
		if m.extHi[pg] == 0 {
			m.extLo[pg], m.extHi[pg] = int16(lo), int16(hi)
		} else {
			if int16(lo) < m.extLo[pg] {
				m.extLo[pg] = int16(lo)
			}
			if int16(hi) > m.extHi[pg] {
				m.extHi[pg] = int16(hi)
			}
		}
		if m.prot[pg] != ReadWrite {
			m.fault(p, pg, Write)
		}
	}
}

// PeekWriteExtent returns the page's accumulated write extent without
// clearing it, for interval records created mid-epoch (a serve-path
// interval split): the epoch's closing interval consumes the extent, and
// both records carry the same conservative union.
func (m *Mem) PeekWriteExtent(page int) (lo, hi int, ok bool) {
	if m.extHi[page] == 0 {
		return 0, 0, false
	}
	return int(m.extLo[page]), int(m.extHi[page]), true
}

// TakeWriteExtent returns and clears the page's accumulated write extent:
// the [lo, hi) word range within the page covered by the write regions
// established since the previous call. ok is false when no write region
// touched the page (a page can be dirty with no fresh extent — it stayed
// write-enabled across an interval with no new EnsureWrite — in which
// case callers must assume the whole page).
func (m *Mem) TakeWriteExtent(page int) (lo, hi int, ok bool) {
	if m.extHi[page] == 0 {
		return 0, 0, false
	}
	lo, hi = int(m.extLo[page]), int(m.extHi[page])
	m.extLo[page], m.extHi[page] = 0, 0
	return lo, hi, true
}

func (m *Mem) fault(p host.Proc, page int, acc Access) {
	if acc == Read {
		m.Counters.ReadFaults++
	} else {
		m.Counters.WriteFaults++
	}
	p.Charge(m.costs.PageFault)
	m.handler.Fault(p, page, acc)
	if acc == Read && m.prot[page] == NoAccess || acc == Write && m.prot[page] != ReadWrite {
		panic(fmt.Sprintf("vm: handler left page %d at %v after %d fault", page, m.prot[page], acc))
	}
}

// HasTwin reports whether page currently has a twin.
func (m *Mem) HasTwin(page int) bool {
	_, ok := m.twins[page]
	return ok
}

// getPage returns a page-sized buffer from the freelist, the warm arena,
// or a fresh allocation. Arena buffers are not zeroed; every consumer
// fully overwrites the buffer before reading it, same as the intra-run
// freelist.
func (m *Mem) getPage() []float64 {
	if n := len(m.free); n > 0 {
		pg := m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
		return pg
	}
	if m.arena != nil {
		return m.arena.TakePage(shm.PageWords)
	}
	return make([]float64, shm.PageWords)
}

// RecyclePage returns a page-sized value buffer (a consumed twin, a
// whole-page snapshot pruned from a diff chain) to the freelist. Buffers
// of any other size — diff run values are exact-size — are left to the
// garbage collector.
func (m *Mem) RecyclePage(vals []float64) {
	if cap(vals) != shm.PageWords {
		return
	}
	m.free = append(m.free, vals[:shm.PageWords])
}

// MakeTwin snapshots page for later diffing, charging the copy cost.
func (m *Mem) MakeTwin(p host.Proc, page int) {
	if _, ok := m.twins[page]; ok {
		panic(fmt.Sprintf("vm: page %d already has a twin", page))
	}
	tw := m.getPage()
	copy(tw, m.PageData(page))
	m.twins[page] = tw
	m.Counters.Twins++
	p.Charge(time.Duration(shm.PageWords) * m.costs.TwinPerWord)
	if m.Trace != nil {
		m.Trace.Emit(obs.Event{
			Kind: obs.EvTwin, VT: int64(p.Now()), WT: m.Trace.WallNow(),
			Page: int32(page),
		})
	}
}

// DropTwin discards the twin of page, if any, recycling its storage.
func (m *Mem) DropTwin(page int) {
	if tw, ok := m.twins[page]; ok {
		delete(m.twins, page)
		m.RecyclePage(tw)
	}
}

// DiffAgainstTwin compares page to its twin and returns the modified word
// runs, charging the scan cost. The twin is consumed.
func (m *Mem) DiffAgainstTwin(p host.Proc, page int) []Run {
	tw, ok := m.twins[page]
	if !ok {
		panic(fmt.Sprintf("vm: page %d has no twin to diff against", page))
	}
	delete(m.twins, page)
	cur := m.PageData(page)
	var runs []Run
	i := 0
	for i < shm.PageWords {
		if cur[i] == tw[i] {
			i++
			continue
		}
		j := i
		for j < shm.PageWords && cur[j] != tw[j] {
			j++
		}
		runs = append(runs, Run{Off: i, Vals: append([]float64(nil), cur[i:j]...)})
		i = j
	}
	m.Counters.Diffs++
	m.Counters.DiffWords += int64(RunsWords(runs))
	p.Charge(time.Duration(shm.PageWords) * m.costs.DiffScanPerWord)
	m.RecyclePage(tw)
	if m.Trace != nil {
		m.Trace.Emit(obs.Event{
			Kind: obs.EvDiff, VT: int64(p.Now()), WT: m.Trace.WallNow(),
			Page: int32(page), A: int32(RunsWords(runs)),
		})
	}
	return runs
}

// WholePageRuns returns the full contents of page as a single run, used
// when modifications must be shipped but no twin exists (WRITE_ALL pages).
// It is a memcpy, not a compare, so it costs the twin rate per word. The
// run's values are freelist storage: when the snapshot is pruned from
// its diff chain the protocol hands them back via RecyclePage.
func (m *Mem) WholePageRuns(p host.Proc, page int) []Run {
	vals := m.getPage()
	copy(vals, m.PageData(page))
	p.Charge(time.Duration(shm.PageWords) * m.costs.TwinPerWord)
	return []Run{{Off: 0, Vals: vals}}
}

// ApplySpan merges received modification runs for a contiguous span of
// pages starting at page0 — perPage[i] holds page0+i's runs — in one
// call, the receive-side counterpart of a section-granular update push.
// It is ApplyRuns applied per page: the per-word apply cost is linear,
// so the span form charges exactly what page-by-page calls would — span
// application is a header economy on the wire, never a timing change.
func (m *Mem) ApplySpan(p host.Proc, page0 int, perPage [][]Run) {
	for i, runs := range perPage {
		m.ApplyRuns(p, page0+i, runs)
	}
}

// ApplyRuns merges received modification runs into page, charging the
// apply cost.
func (m *Mem) ApplyRuns(p host.Proc, page int, runs []Run) {
	dst := m.PageData(page)
	words := 0
	for _, r := range runs {
		copy(dst[r.Off:r.Off+len(r.Vals)], r.Vals)
		words += len(r.Vals)
	}
	// Applying must not corrupt an armed twin: if the page has a twin, the
	// twin receives the same data so local modifications remain detectable.
	if tw, ok := m.twins[page]; ok {
		for _, r := range runs {
			copy(tw[r.Off:r.Off+len(r.Vals)], r.Vals)
		}
	}
	p.Charge(time.Duration(words) * m.costs.ApplyPerWord)
}
