// Package xhpf models the Forge XHPF parallelizing compiler the paper
// compares against. A real data-parallel compiler generates owner-computes
// message passing; this stand-in reuses the hand-coded message-passing
// schedules with a per-phase distribution-bookkeeping overhead (XHPF
// tracks distributions and inserts ownership guards at run time), and it
// refuses the programs a data-parallel compiler cannot handle: IS's
// indirect access to the main array.
package xhpf

// Applicable reports whether the stand-in can parallelize the named
// application.
func Applicable(app string) bool { return app != "is" }

// RejectionReason explains a refusal, mirroring the paper's discussion.
func RejectionReason(app string) string {
	if app == "is" {
		return "indirect access to the main array in the computation"
	}
	return ""
}
