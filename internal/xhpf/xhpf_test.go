package xhpf

import "testing"

func TestApplicability(t *testing.T) {
	for _, app := range []string{"jacobi", "fft", "shallow", "gauss", "mgs"} {
		if !Applicable(app) {
			t.Errorf("%s should be parallelizable", app)
		}
		if RejectionReason(app) != "" {
			t.Errorf("%s should have no rejection reason", app)
		}
	}
	if Applicable("is") {
		t.Error("IS must be rejected (indirect access to the main array)")
	}
	if RejectionReason("is") == "" {
		t.Error("IS rejection must be explained")
	}
}
