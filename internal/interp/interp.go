// Package interp executes ir programs, either on the simulated DSM
// (every node runs the SPMD program against its tmk runtime, with shared
// accesses going through the software MMU and compute charged to virtual
// time) or sequentially against a flat array (the reference used for
// correctness verification).
//
// Accesses are established at region granularity: for an innermost loop,
// the interpreter resolves each array reference to an address span, calls
// EnsureRead/EnsureWrite once (delivering any protection faults to the
// DSM protocol, exactly as hardware would on first touch), and then runs
// a tight loop over the floats.
package interp

import (
	"fmt"
	"time"

	"sdsm/internal/ir"
	"sdsm/internal/rsd"
	"sdsm/internal/shm"
	"sdsm/internal/tmk"
)

// target abstracts where a program executes.
//
// beginCompute/endCompute bracket stretches that write shared memory
// directly through data() without entering the run-time; on the
// real-concurrency backend they serialize those writes against remote
// diff creation (see internal/host). A compute section must be ended
// before calling any other target method that can enter the run-time.
type target interface {
	ensureRead(lo, hi int)
	ensureWrite(lo, hi int)
	data() []float64
	beginCompute()
	endCompute()
	advance(d time.Duration)
	barrier(id int)
	acquire(id int)
	release(id int)
	validate(at ir.AccessType, regions []shm.Region, wsync, async bool)
	push(reads, writes [][]shm.Region)
}

// RunDSM executes prog on every node of sys with the given problem
// parameters (already passed through Program.Prepare). The layout of sys
// must have been built from prog (see compiler.BuildLayout). Optional
// epilogues run on every node after the program finishes, for gathering
// results.
func RunDSM(prog *ir.Program, sys *tmk.System, params rsd.Env, epilogue ...func(nd *tmk.Node)) error {
	return sys.Run(func(nd *tmk.Node) {
		x := &executor{
			prog:   prog,
			layout: sys.Layout,
			params: params,
			nprocs: sys.N(),
			env:    prog.Env(params, nd.ID, sys.N()),
			tgt:    &dsmTarget{nd: nd},
			scale:  costScale(params),
		}
		x.exec(prog.Body)
		for _, ep := range epilogue {
			ep(nd)
		}
	})
}

// SeqTime returns the pure-compute execution time of prog: the sum of all
// compute charges with no DSM or communication overheads. This is the
// paper's uniprocessor baseline ("obtained by removing all
// synchronization from the TreadMarks programs").
func SeqTime(prog *ir.Program, params rsd.Env) time.Duration {
	layout := buildLayout(prog, params)
	t := &seqTarget{mem: make([]float64, layout.Words())}
	x := &executor{
		prog:   prog,
		layout: layout,
		params: params,
		nprocs: 1,
		env:    prog.Env(params, 0, 1),
		tgt:    t,
		scale:  costScale(params),
	}
	x.exec(prog.Body)
	return t.elapsed
}

// costScale reads the optional compute-scale parameter (see the apps
// package: scaled-down data sets multiply per-element compute so the
// computation-to-communication balance stays in the paper's regime).
func costScale(params rsd.Env) int {
	if v, ok := params["cscale"]; ok && v > 1 {
		return v
	}
	return 1
}

// RunSeq executes prog sequentially (one logical processor, no DSM, no
// costs) and returns the layout and final memory image, the reference for
// verification.
func RunSeq(prog *ir.Program, params rsd.Env) (*shm.Layout, []float64) {
	layout := buildLayout(prog, params)
	t := &seqTarget{mem: make([]float64, layout.Words())}
	x := &executor{
		prog:   prog,
		layout: layout,
		params: params,
		nprocs: 1,
		env:    prog.Env(params, 0, 1),
		tgt:    t,
		scale:  costScale(params),
	}
	x.exec(prog.Body)
	return layout, t.mem
}

func buildLayout(prog *ir.Program, params rsd.Env) *shm.Layout {
	l := shm.NewLayout()
	env := rsd.Env{}
	for k, v := range params {
		env[k] = v
	}
	for _, a := range prog.Arrays {
		dims := make([]int, len(a.Dims))
		for i, d := range a.Dims {
			dims[i] = d.Eval(env)
		}
		l.Alloc(a.Name, dims...)
	}
	return l
}

// dsmTarget runs on a DSM node.
type dsmTarget struct{ nd *tmk.Node }

func (t *dsmTarget) ensureRead(lo, hi int) {
	t.nd.Mem.EnsureRead(t.nd.Proc(), shm.Region{Lo: lo, Hi: hi})
}
func (t *dsmTarget) ensureWrite(lo, hi int) {
	t.nd.Mem.EnsureWrite(t.nd.Proc(), shm.Region{Lo: lo, Hi: hi})
}
func (t *dsmTarget) data() []float64         { return t.nd.Mem.Data() }
func (t *dsmTarget) beginCompute()           { t.nd.Proc().BeginCompute() }
func (t *dsmTarget) endCompute()             { t.nd.Proc().EndCompute() }
func (t *dsmTarget) advance(d time.Duration) { t.nd.Proc().Advance(d) }
func (t *dsmTarget) barrier(id int)          { t.nd.Barrier(id) }
func (t *dsmTarget) acquire(id int)          { t.nd.Acquire(id) }
func (t *dsmTarget) release(id int)          { t.nd.Release(id) }

func (t *dsmTarget) validate(at ir.AccessType, regions []shm.Region, wsync, async bool) {
	acc := map[ir.AccessType]tmk.AccessType{
		ir.Read:         tmk.AccRead,
		ir.Write:        tmk.AccWrite,
		ir.ReadWrite:    tmk.AccReadWrite,
		ir.WriteAll:     tmk.AccWriteAll,
		ir.ReadWriteAll: tmk.AccReadWriteAll,
	}[at]
	if wsync {
		t.nd.ValidateWSync(acc, regions)
		return
	}
	t.nd.Validate(acc, regions, async)
}

func (t *dsmTarget) push(reads, writes [][]shm.Region) { t.nd.Push(reads, writes) }

// seqTarget is the cost-free sequential reference; it accumulates compute
// charges for SeqTime.
type seqTarget struct {
	mem     []float64
	elapsed time.Duration
}

func (t *seqTarget) ensureRead(int, int)                              {}
func (t *seqTarget) ensureWrite(int, int)                             {}
func (t *seqTarget) beginCompute()                                    {}
func (t *seqTarget) endCompute()                                      {}
func (t *seqTarget) data() []float64                                  { return t.mem }
func (t *seqTarget) advance(d time.Duration)                          { t.elapsed += d }
func (t *seqTarget) barrier(int)                                      {}
func (t *seqTarget) acquire(int)                                      {}
func (t *seqTarget) release(int)                                      {}
func (t *seqTarget) validate(ir.AccessType, []shm.Region, bool, bool) {}
func (t *seqTarget) push(reads, writes [][]shm.Region)                {}

// executor walks the statement tree for one processor.
type executor struct {
	prog   *ir.Program
	layout *shm.Layout
	params rsd.Env
	nprocs int
	env    rsd.Env
	tgt    target
	scale  int // compute cost multiplier (cscale parameter)
	srcs   []float64
}

// advance charges scaled compute time.
func (x *executor) advance(d time.Duration) {
	if x.scale > 1 {
		d *= time.Duration(x.scale)
	}
	x.tgt.advance(d)
}

func (x *executor) exec(stmts []ir.Stmt) {
	for _, st := range stmts {
		switch st := st.(type) {
		case ir.Loop:
			x.execLoop(st)
		case ir.Compute:
			x.env[st.Sym] = st.Fn(x.env)
		case ir.Assign:
			x.execAssignScalar(st)
		case ir.Barrier:
			x.tgt.barrier(st.ID)
		case ir.LockAcquire:
			x.tgt.acquire(st.ID.Eval(x.env))
		case ir.LockRelease:
			x.tgt.release(st.ID.Eval(x.env))
		case ir.If:
			if st.Cond(x.env) {
				x.exec(st.Then)
			} else {
				x.exec(st.Else)
			}
		case ir.Kernel:
			// Kernels run inside a compute section; the context suspends
			// it around region faults (see kernelCtx).
			x.tgt.beginCompute()
			st.Run(&kernelCtx{x: x})
			x.tgt.endCompute()
		case ir.CallBoundary:
			// Analysis boundary only; nothing happens at run time.
		case ir.ValidateStmt:
			var regions []shm.Region
			for _, sec := range st.Secs {
				cc := sec.Eval(x.env)
				regions = append(regions, cc.Regions(x.layout)...)
			}
			regions = shm.Normalize(regions)
			if len(regions) == 0 {
				continue
			}
			x.tgt.validate(st.At, regions, st.WSync, st.Async)
		case ir.PushStmt:
			x.execPush(st)
		default:
			panic(fmt.Sprintf("interp: unknown statement %T", st))
		}
	}
}

// execPush evaluates the per-processor sections and invokes the runtime.
func (x *executor) execPush(st ir.PushStmt) {
	reads := make([][]shm.Region, x.nprocs)
	writes := make([][]shm.Region, x.nprocs)
	for i := 0; i < x.nprocs; i++ {
		env := x.prog.Env(x.params, i, x.nprocs)
		for k, v := range x.env {
			if _, ok := env[k]; !ok {
				env[k] = v // enclosing loop variables, identical on all procs
			}
		}
		for _, sec := range st.Reads {
			reads[i] = append(reads[i], sec.Eval(env).Regions(x.layout)...)
		}
		for _, sec := range st.Writes {
			writes[i] = append(writes[i], sec.Eval(env).Regions(x.layout)...)
		}
		reads[i] = shm.Normalize(reads[i])
		writes[i] = shm.Normalize(writes[i])
	}
	x.tgt.push(reads, writes)
}

// execLoop runs a counted loop; a loop whose body is a single assignment
// is vectorized over contiguous address spans.
func (x *executor) execLoop(st ir.Loop) {
	lo, hi := st.Lo.Eval(x.env), st.Hi.Eval(x.env)
	if hi < lo {
		return
	}
	step := st.StepOr1()
	if step == 1 && len(st.Body) == 1 {
		if a, ok := st.Body[0].(ir.Assign); ok && x.execAssignVector(st.Var, lo, hi, a) {
			return
		}
	}
	for v := lo; v <= hi; v += step {
		x.env[st.Var] = v
		x.exec(st.Body)
	}
	delete(x.env, st.Var)
}

// addrAndStep resolves a reference to (address at v=at, address step per
// unit of v).
func (x *executor) addrAndStep(ref ir.Ref, v rsd.Sym, at int) (addr, step int) {
	arr := x.layout.Array(ref.Array)
	x.env[v] = at
	idx := make([]int, len(ref.Idx))
	for d, e := range ref.Idx {
		idx[d] = e.Eval(x.env)
		step += e.T[v] * arr.Stride(d)
	}
	delete(x.env, v)
	return arr.Index(idx...), step
}

// execAssignVector runs `for v = lo..hi: lhs = Fn(rhs...)` as one ensured
// span plus a tight loop. Unit- and zero-stride references are ensured as
// single spans; larger constant strides are ensured page by page along
// the traversal (exactly the pages a strided access touches). Returns
// false when a reference moves backwards.
func (x *executor) execAssignVector(v rsd.Sym, lo, hi int, a ir.Assign) bool {
	type mov struct{ addr, step int }
	refs := make([]mov, 0, len(a.RHS)+1)
	la, ls := x.addrAndStep(a.LHS, v, lo)
	if ls < 0 {
		return false
	}
	refs = append(refs, mov{la, ls})
	for _, r := range a.RHS {
		ra, rs := x.addrAndStep(r, v, lo)
		if rs < 0 {
			return false
		}
		refs = append(refs, mov{ra, rs})
	}
	n := hi - lo + 1
	ensure := func(m mov, write bool) {
		lo, hi := m.addr, m.addr+1
		switch m.step {
		case 0:
		case 1:
			hi = m.addr + n
		default:
			// Strided traversal: ensure each touched page once.
			last := -1
			for t := 0; t < n; t++ {
				addr := m.addr + m.step*t
				if pg := addr / shm.PageWords; pg != last {
					last = pg
					if write {
						x.tgt.ensureWrite(addr, addr+1)
					} else {
						x.tgt.ensureRead(addr, addr+1)
					}
				}
			}
			return
		}
		if write {
			x.tgt.ensureWrite(lo, hi)
		} else {
			x.tgt.ensureRead(lo, hi)
		}
	}
	ensure(refs[0], true)
	for _, m := range refs[1:] {
		ensure(m, false)
	}
	data := x.tgt.data()
	if cap(x.srcs) < len(a.RHS) {
		x.srcs = make([]float64, len(a.RHS))
	}
	srcs := x.srcs[:len(a.RHS)]
	x.tgt.beginCompute()
	for t := 0; t < n; t++ {
		for j, m := range refs[1:] {
			srcs[j] = data[m.addr+m.step*t]
		}
		data[refs[0].addr+refs[0].step*t] = a.Fn(srcs)
	}
	x.tgt.endCompute()
	x.advance(time.Duration(n) * a.Cost)
	return true
}

// execAssignScalar runs one instance of an assignment with the current
// environment.
func (x *executor) execAssignScalar(a ir.Assign) {
	arr := x.layout.Array(a.LHS.Array)
	idx := make([]int, len(a.LHS.Idx))
	for d, e := range a.LHS.Idx {
		idx[d] = e.Eval(x.env)
	}
	lhs := arr.Index(idx...)
	if cap(x.srcs) < len(a.RHS) {
		x.srcs = make([]float64, len(a.RHS))
	}
	srcs := x.srcs[:len(a.RHS)]
	for j, r := range a.RHS {
		ra := x.layout.Array(r.Array)
		ridx := make([]int, len(r.Idx))
		for d, e := range r.Idx {
			ridx[d] = e.Eval(x.env)
		}
		addr := ra.Index(ridx...)
		x.tgt.ensureRead(addr, addr+1)
		srcs[j] = x.tgt.data()[addr]
	}
	x.tgt.ensureWrite(lhs, lhs+1)
	x.tgt.beginCompute()
	x.tgt.data()[lhs] = a.Fn(srcs)
	x.tgt.endCompute()
	x.advance(a.Cost)
}

// kernelCtx adapts the executor for opaque kernels.
type kernelCtx struct{ x *executor }

func (k *kernelCtx) Env() rsd.Env { return k.x.env }

// ReadRegion and WriteRegion suspend the kernel's compute section while
// the fault path runs (protocol sections and compute sections must not
// nest, see internal/host), then resume it.

func (k *kernelCtx) ReadRegion(lo, hi int) []float64 {
	k.x.tgt.endCompute()
	k.x.tgt.ensureRead(lo, hi)
	k.x.tgt.beginCompute()
	return k.x.tgt.data()
}

func (k *kernelCtx) WriteRegion(lo, hi int) []float64 {
	k.x.tgt.endCompute()
	k.x.tgt.ensureWrite(lo, hi)
	k.x.tgt.beginCompute()
	return k.x.tgt.data()
}

func (k *kernelCtx) Addr(array string, idx ...int) int {
	return k.x.layout.Array(array).Index(idx...)
}

func (k *kernelCtx) Charge(d time.Duration) { k.x.advance(d) }
