package interp

import (
	"testing"
	"time"

	"sdsm/internal/cluster"
	"sdsm/internal/compiler"
	"sdsm/internal/ir"
	"sdsm/internal/model"
	"sdsm/internal/rsd"
	"sdsm/internal/shm"
	"sdsm/internal/sim"
	"sdsm/internal/tmk"
)

// prog1d builds a tiny SPMD program over a 1-D array for testing.
func prog1d(body ...ir.Stmt) *ir.Program {
	return &ir.Program{
		Name:   "t",
		Arrays: []ir.ArrayDecl{{Name: "x", Dims: []rsd.Lin{rsd.Var("n")}}},
		Params: []rsd.Sym{"n"},
		Derived: []ir.DerivedParam{
			{Name: "lo", Fn: func(e rsd.Env) int { return e["p"]*e["n"]/e["nprocs"] + 1 }},
			{Name: "hi", Fn: func(e rsd.Env) int { return (e["p"] + 1) * e["n"] / e["nprocs"] }},
		},
		Body: body,
	}
}

func TestSeqLoopAndAssign(t *testing.T) {
	i := rsd.Var("i")
	p := prog1d(
		ir.Loop{Var: "i", Lo: rsd.Const(1), Hi: rsd.Var("n"), Body: []ir.Stmt{
			ir.Assign{LHS: ir.At("x", i), Fn: func([]float64) float64 { return 7 }, Cost: time.Nanosecond},
		}},
		ir.Loop{Var: "i", Lo: rsd.Const(2), Hi: rsd.Var("n"), Body: []ir.Stmt{
			ir.Assign{LHS: ir.At("x", i), RHS: []ir.Ref{ir.At("x", i.Plus(-1)), ir.At("x", i)},
				Fn: func(s []float64) float64 { return s[0] + s[1] }, Cost: time.Nanosecond},
		}},
	)
	_, mem := RunSeq(p, rsd.Env{"n": 16})
	// Prefix-sum-like recurrence starting from 7s: x[i] = 7(i).
	for i := 1; i <= 16; i++ {
		if mem[i-1] != float64(7*i) {
			t.Fatalf("x[%d] = %v, want %d", i, mem[i-1], 7*i)
		}
	}
}

func TestSeqTimeCountsCosts(t *testing.T) {
	i := rsd.Var("i")
	p := prog1d(
		ir.Loop{Var: "i", Lo: rsd.Const(1), Hi: rsd.Var("n"), Body: []ir.Stmt{
			ir.Assign{LHS: ir.At("x", i), Fn: func([]float64) float64 { return 1 }, Cost: 10 * time.Nanosecond},
		}},
	)
	if got := SeqTime(p, rsd.Env{"n": 100}); got != 1000*time.Nanosecond {
		t.Fatalf("SeqTime = %v, want 1µs", got)
	}
	if got := SeqTime(p, rsd.Env{"n": 100, "cscale": 5}); got != 5000*time.Nanosecond {
		t.Fatalf("scaled SeqTime = %v, want 5µs", got)
	}
}

func TestComputeBindsSymbols(t *testing.T) {
	i := rsd.Var("i")
	p := prog1d(
		ir.Compute{Sym: "start", Fn: func(e rsd.Env) int { return e["n"] / 2 }},
		ir.Loop{Var: "i", Lo: rsd.Var("start"), Hi: rsd.Var("n"), Body: []ir.Stmt{
			ir.Assign{LHS: ir.At("x", i), Fn: func([]float64) float64 { return 3 }, Cost: time.Nanosecond},
		}},
	)
	_, mem := RunSeq(p, rsd.Env{"n": 10})
	for i := 1; i <= 10; i++ {
		want := 0.0
		if i >= 5 {
			want = 3
		}
		if mem[i-1] != want {
			t.Fatalf("x[%d] = %v, want %v", i, mem[i-1], want)
		}
	}
}

func TestIfBranches(t *testing.T) {
	i := rsd.Var("i")
	p := prog1d(
		ir.If{
			Cond: func(e rsd.Env) bool { return e["n"] > 5 },
			Then: []ir.Stmt{ir.Loop{Var: "i", Lo: rsd.Const(1), Hi: rsd.Const(1), Body: []ir.Stmt{
				ir.Assign{LHS: ir.At("x", i), Fn: func([]float64) float64 { return 1 }, Cost: 0}}}},
			Else: []ir.Stmt{ir.Loop{Var: "i", Lo: rsd.Const(1), Hi: rsd.Const(1), Body: []ir.Stmt{
				ir.Assign{LHS: ir.At("x", i), Fn: func([]float64) float64 { return 2 }, Cost: 0}}}},
		},
	)
	_, mem := RunSeq(p, rsd.Env{"n": 10})
	if mem[0] != 1 {
		t.Fatalf("then branch not taken: %v", mem[0])
	}
	_, mem = RunSeq(p, rsd.Env{"n": 4})
	if mem[0] != 2 {
		t.Fatalf("else branch not taken: %v", mem[0])
	}
}

func TestStridedLoop(t *testing.T) {
	i := rsd.Var("i")
	p := prog1d(
		ir.Loop{Var: "i", Lo: rsd.Const(1), Hi: rsd.Var("n"), Step: 3, Body: []ir.Stmt{
			ir.Assign{LHS: ir.At("x", i), Fn: func([]float64) float64 { return 1 }, Cost: 0},
		}},
	)
	_, mem := RunSeq(p, rsd.Env{"n": 10})
	for i := 1; i <= 10; i++ {
		want := 0.0
		if (i-1)%3 == 0 {
			want = 1
		}
		if mem[i-1] != want {
			t.Fatalf("x[%d] = %v, want %v", i, mem[i-1], want)
		}
	}
}

func TestDSMMatchesSeqForSPMDSum(t *testing.T) {
	// Each processor fills its block; after a barrier, processor blocks are
	// combined by reading the neighbours' data.
	i := rsd.Var("i")
	mk := func() *ir.Program {
		return prog1d(
			ir.Loop{Var: "i", Lo: rsd.Var("lo"), Hi: rsd.Var("hi"), Body: []ir.Stmt{
				ir.Assign{LHS: ir.At("x", i), Fn: func([]float64) float64 { return 2 }, Cost: time.Nanosecond},
			}},
			ir.Barrier{ID: 1},
			ir.Loop{Var: "i", Lo: rsd.Var("lo"), Hi: rsd.Var("hi"), Body: []ir.Stmt{
				ir.Assign{LHS: ir.At("x", i), RHS: []ir.Ref{ir.At("x", i)},
					Fn: func(s []float64) float64 { return s[0] * 3 }, Cost: time.Nanosecond},
			}},
			ir.Barrier{ID: 2},
		)
	}
	params := rsd.Env{"n": 4096}
	_, want := RunSeq(mk(), params)

	prog := mk()
	layout := compiler.BuildLayout(prog, params)
	e := sim.NewEngine(4)
	nw := cluster.New(e, model.SP2())
	sys := tmk.New(e, nw, layout)
	var got []float64
	err := RunDSM(prog, sys, params, func(nd *tmk.Node) {
		if nd.ID != 0 {
			return
		}
		arr := layout.Array("x")
		nd.Validate(tmk.AccRead, []shm.Region{arr.Whole()}, false)
		nd.Mem.EnsureRead(nd.Proc(), arr.Whole())
		got = append([]float64(nil), nd.Mem.Data()[arr.Base:arr.Base+arr.Words()]...)
	})
	if err != nil {
		t.Fatal(err)
	}
	for w := range got {
		if got[w] != want[w] {
			t.Fatalf("word %d: got %v want %v", w, got[w], want[w])
		}
	}
}

func TestKernelCtx(t *testing.T) {
	p := prog1d(
		ir.Kernel{
			Name: "fill",
			Accesses: []ir.TaggedSection{{
				Sec: rsd.Section{Array: "x", Dims: []rsd.Bound{
					rsd.Dense(rsd.Var("lo"), rsd.Var("hi")),
				}},
				Tag: rsd.Write | rsd.WriteFirst, Exact: true,
			}},
			Run: func(ctx ir.KernelCtx) {
				e := ctx.Env()
				lo, hi := e["lo"], e["hi"]
				a := ctx.Addr("x", lo)
				d := ctx.WriteRegion(a, ctx.Addr("x", hi)+1)
				for w := a; w <= ctx.Addr("x", hi); w++ {
					d[w] = 9
				}
				ctx.Charge(time.Microsecond)
			},
		},
	)
	_, mem := RunSeq(p, rsd.Env{"n": 8})
	for i := 0; i < 8; i++ {
		if mem[i] != 9 {
			t.Fatalf("x[%d] = %v", i+1, mem[i])
		}
	}
	if got := SeqTime(p, rsd.Env{"n": 8}); got != time.Microsecond {
		t.Fatalf("kernel charge = %v", got)
	}
}
