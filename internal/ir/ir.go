// Package ir defines the explicitly parallel SPMD program representation
// the compiler analyzes and the interpreter executes — the stand-in for
// the Fortran programs the paper's Parascope-based infrastructure handles.
//
// A Program is run by every processor (explicit parallelism). Work is
// partitioned through per-processor derived parameters such as begin/end,
// exactly like the Jacobi pseudo-code in the paper's Figure 1. Statements
// are loops with affine bounds, array assignments with affine subscripts,
// barriers, locks, opaque conditionals, kernels carrying declared access
// summaries (standing in for idiom analysis of non-affine code such as FFT
// butterflies), and call boundaries that model the interprocedural
// analysis limits the paper reports for Shallow.
//
// The compiler (package compiler) inserts ValidateStmt and PushStmt nodes;
// the interpreter (package interp) maps them onto the augmented run-time.
package ir

import (
	"time"

	"sdsm/internal/rsd"
)

// AccessType mirrors the augmented run-time's access patterns without
// importing it.
type AccessType int

// Access types for ValidateStmt.
const (
	Read AccessType = iota
	Write
	ReadWrite
	WriteAll
	ReadWriteAll
)

func (a AccessType) String() string {
	switch a {
	case Read:
		return "READ"
	case Write:
		return "WRITE"
	case ReadWrite:
		return "READ&WRITE"
	case WriteAll:
		return "WRITE_ALL"
	case ReadWriteAll:
		return "READ&WRITE_ALL"
	}
	return "?"
}

// ArrayDecl declares a shared array; dimensions may reference size
// parameters.
type ArrayDecl struct {
	Name string
	Dims []rsd.Lin
}

// DerivedParam is a per-processor parameter (e.g. begin/end) computed from
// the problem parameters, the processor id "p", and "nprocs".
type DerivedParam struct {
	Name rsd.Sym
	Fn   func(env rsd.Env) int
}

// Program is an SPMD program over a shared address space.
type Program struct {
	Name    string
	Arrays  []ArrayDecl
	Params  []rsd.Sym // problem-size parameters, bound at run configuration
	Derived []DerivedParam
	// Setup, if set, augments the parameter environment with values that
	// depend on the processor count (for example per-processor key counts).
	Setup func(params rsd.Env, nprocs int)
	Body  []Stmt
}

// Prepare returns a copy of params augmented by Setup for nprocs. The
// result is what layout construction, compilation and execution must use.
func (pr *Program) Prepare(params rsd.Env, nprocs int) rsd.Env {
	out := rsd.Env{}
	for k, v := range params {
		out[k] = v
	}
	if pr.Setup != nil {
		pr.Setup(out, nprocs)
	}
	return out
}

// Env builds the evaluation environment for processor p of nprocs given
// problem parameter bindings.
func (pr *Program) Env(params rsd.Env, p, nprocs int) rsd.Env {
	env := rsd.Env{"p": p, "nprocs": nprocs}
	for k, v := range params {
		env[k] = v
	}
	for _, d := range pr.Derived {
		env[d.Name] = d.Fn(env)
	}
	return env
}

// Stmt is a program statement.
type Stmt interface{ isStmt() }

// Loop is a sequential counted loop with affine inclusive bounds and a
// constant positive step (1 when zero). Cyclic distributions use Step ==
// nprocs.
type Loop struct {
	Var    rsd.Sym
	Lo, Hi rsd.Lin
	Step   int
	Body   []Stmt
}

// StepOr1 returns the loop step, defaulting to 1.
func (l Loop) StepOr1() int {
	if l.Step == 0 {
		return 1
	}
	return l.Step
}

// Compute binds a symbol to a runtime-computed value (for example the
// first cyclically owned column greater than the current pivot). The
// analysis treats the symbol as opaque but affine-usable, matching the
// paper's "loop bounds can themselves be linear functions of variables".
type Compute struct {
	Sym rsd.Sym
	Fn  func(env rsd.Env) int
}

// Ref is an array reference with affine subscripts (one per dimension).
type Ref struct {
	Array string
	Idx   []rsd.Lin
}

// At builds a Ref.
func At(array string, idx ...rsd.Lin) Ref { return Ref{Array: array, Idx: idx} }

// Assign writes LHS elementwise from the RHS references combined by Fn.
// Cost is the virtual compute time charged per element (the knob that
// calibrates uniprocessor times against the paper's Table 1).
type Assign struct {
	LHS  Ref
	RHS  []Ref
	Fn   func(srcs []float64) float64
	Cost time.Duration
}

// Barrier is a global synchronization point.
type Barrier struct{ ID int }

// LockAcquire/LockRelease guard a critical section; the lock id may depend
// on enclosing loop variables (IS accesses bucket sections in a staggered
// manner).
type LockAcquire struct{ ID rsd.Lin }

// LockRelease releases the lock.
type LockRelease struct{ ID rsd.Lin }

// If is an opaque conditional: the compiler cannot see through Cond, so an
// If is a fetch point and everything it touches is inexact (this is what
// keeps Gauss from qualifying for Push, as in the paper).
type If struct {
	Cond func(env rsd.Env) bool
	Then []Stmt
	Else []Stmt
}

// TaggedSection is a declared access of a Kernel.
type TaggedSection struct {
	Sec   rsd.Section
	Tag   rsd.Tag
	Exact bool
}

// KernelCtx gives a kernel body access to shared memory.
type KernelCtx interface {
	// Env returns the processor's evaluation environment.
	Env() rsd.Env
	// ReadRegion establishes read access and returns the memory image.
	ReadRegion(lo, hi int) []float64
	// WriteRegion establishes write access and returns the memory image.
	WriteRegion(lo, hi int) []float64
	// Addr resolves a 1-based array index to a word address.
	Addr(array string, idx ...int) int
	// Charge adds virtual compute time.
	Charge(d time.Duration)
}

// Kernel is opaque code with a declared access summary, standing in for
// the idiom/interprocedural analysis a production compiler would apply to
// non-affine code (FFT butterflies, private scatter phases).
type Kernel struct {
	Name     string
	Accesses []TaggedSection
	Run      func(ctx KernelCtx)
}

// CallBoundary models a call to an unanalyzed procedure: a fetch point
// that terminates analysis regions (the paper's Shallow limitation).
type CallBoundary struct{ Name string }

// ValidateStmt is a compiler-inserted run-time call.
type ValidateStmt struct {
	At    AccessType
	Secs  []rsd.Section
	WSync bool // piggyback on the next synchronization operation
	Async bool // asynchronous data fetching
}

// PushStmt replaces a barrier by a point-to-point exchange. Reads and
// Writes are the per-processor sections in terms of the symbols "p",
// "nprocs", and the derived parameters; the interpreter evaluates them for
// every processor id.
type PushStmt struct {
	ReplacedBarrier int
	Reads           []rsd.Section
	Writes          []rsd.Section
}

func (Loop) isStmt()         {}
func (Compute) isStmt()      {}
func (Assign) isStmt()       {}
func (Barrier) isStmt()      {}
func (LockAcquire) isStmt()  {}
func (LockRelease) isStmt()  {}
func (If) isStmt()           {}
func (Kernel) isStmt()       {}
func (CallBoundary) isStmt() {}
func (ValidateStmt) isStmt() {}
func (PushStmt) isStmt()     {}
