package ir

import (
	"testing"

	"sdsm/internal/rsd"
)

func TestProgramEnvBindsDerived(t *testing.T) {
	p := &Program{
		Params: []rsd.Sym{"n"},
		Derived: []DerivedParam{
			{Name: "lo", Fn: func(e rsd.Env) int { return e["p"]*e["n"]/e["nprocs"] + 1 }},
			{Name: "hi", Fn: func(e rsd.Env) int { return (e["p"] + 1) * e["n"] / e["nprocs"] }},
		},
	}
	env := p.Env(rsd.Env{"n": 100}, 2, 4)
	if env["p"] != 2 || env["nprocs"] != 4 {
		t.Fatalf("p/nprocs not bound: %v", env)
	}
	if env["lo"] != 51 || env["hi"] != 75 {
		t.Fatalf("derived block bounds wrong: lo=%d hi=%d", env["lo"], env["hi"])
	}
}

func TestPrepareAppliesSetupWithoutMutatingInput(t *testing.T) {
	p := &Program{
		Setup: func(params rsd.Env, nprocs int) {
			params["per"] = params["total"] / nprocs
		},
	}
	in := rsd.Env{"total": 80}
	out := p.Prepare(in, 8)
	if out["per"] != 10 {
		t.Fatalf("Setup not applied: %v", out)
	}
	if _, leaked := in["per"]; leaked {
		t.Fatal("Prepare mutated the caller's parameters")
	}
}

func TestPrepareNilSetup(t *testing.T) {
	p := &Program{}
	out := p.Prepare(rsd.Env{"x": 1}, 2)
	if out["x"] != 1 {
		t.Fatalf("params not copied: %v", out)
	}
}

func TestLoopStepOr1(t *testing.T) {
	if (Loop{}).StepOr1() != 1 {
		t.Fatal("zero step must default to 1")
	}
	if (Loop{Step: 4}).StepOr1() != 4 {
		t.Fatal("explicit step lost")
	}
}

func TestAccessTypeStrings(t *testing.T) {
	want := map[AccessType]string{
		Read: "READ", Write: "WRITE", ReadWrite: "READ&WRITE",
		WriteAll: "WRITE_ALL", ReadWriteAll: "READ&WRITE_ALL",
	}
	for at, s := range want {
		if at.String() != s {
			t.Errorf("%d.String() = %q, want %q", at, at.String(), s)
		}
	}
}

func TestAtBuildsRef(t *testing.T) {
	r := At("a", rsd.Var("i"), rsd.Const(3))
	if r.Array != "a" || len(r.Idx) != 2 {
		t.Fatalf("At = %+v", r)
	}
}
