package host

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sdsm/internal/obs"
)

// Real is the real-concurrency host: each processor is a goroutine, and
// nothing serializes execution by virtual time. Compute sections on
// different processors run genuinely in parallel on multicore; protocol
// sections are mutually excluded by a host-wide token (see the package
// comment for the contract). Virtual time is still accounted — clocks are
// atomics because protocol code charges remote processors — but the
// resulting virtual times depend on scheduling (lock grant order, barrier
// arrival order) and are NOT the paper's deterministic numbers; use the
// sim host for those. Application results are unaffected for data-race-free
// programs: the protocol state machine sees the same serialized protocol
// sections either way.
type Real struct {
	mu    sync.Mutex // the protocol-section token
	procs []*RealProc

	// sections, when non-nil, counts protocol-section token acquisitions
	// (Begin plus every Block reacquire) for the observability layer. Nil
	// means tracing is off and the fast path is a single pointer test.
	sections *obs.Counter

	abort     chan struct{} // closed on first panic, unwinds blocked procs
	abortOnce sync.Once
	errMu     sync.Mutex
	err       error
}

// EnableObs registers the host's contention counter with the unified
// metrics registry. Observability only; never called on untraced runs.
func (h *Real) EnableObs(reg *obs.Registry) {
	h.sections = reg.Counter("host.token.acquires")
}

// errAborted unwinds processors blocked after another processor failed.
var errAborted = errors.New("host: aborted by peer failure")

// NewReal creates a real-concurrency host with n processors.
func NewReal(n int) *Real {
	if n <= 0 {
		panic("host: real host needs at least one processor")
	}
	h := &Real{abort: make(chan struct{})}
	for i := 0; i < n; i++ {
		h.procs = append(h.procs, &RealProc{id: i, h: h, wake: make(chan time.Duration, 1)})
	}
	return h
}

// N returns the number of processors.
func (h *Real) N() int { return len(h.procs) }

// Proc returns processor i.
func (h *Real) Proc(i int) Proc { return h.procs[i] }

// Run executes body once per processor, each on its own goroutine, and
// returns when all have finished. A panic in one body aborts the others
// (they unwind at their next blocking point) and is returned as an error.
func (h *Real) Run(body func(p Proc)) error {
	var wg sync.WaitGroup
	for _, p := range h.procs {
		p := p
		p.clock.Store(0)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				// Release whatever the failing processor held so its
				// peers can drain to their own abort checks.
				if p.inCompute {
					p.inCompute = false
					p.compMu.Unlock()
				}
				if p.inSection {
					p.inSection = false
					h.mu.Unlock()
				}
				if r != errAborted {
					h.fail(fmt.Errorf("host: processor %d panicked: %v", p.id, r))
				}
			}()
			body(p)
		}()
	}
	wg.Wait()
	h.errMu.Lock()
	defer h.errMu.Unlock()
	return h.err
}

func (h *Real) fail(err error) {
	h.errMu.Lock()
	if h.err == nil {
		h.err = err
	}
	h.errMu.Unlock()
	h.abortOnce.Do(func() { close(h.abort) })
}

// RealProc is one processor of a Real host.
type RealProc struct {
	id    int
	h     *Real
	clock atomic.Int64 // virtual time in nanoseconds

	// compMu excludes compute sections against Hold; inCompute/inSection
	// are only touched by the owning goroutine (panic cleanup included).
	compMu    sync.Mutex
	inCompute bool
	inSection bool
	wake      chan time.Duration
}

// ID returns the processor number.
func (p *RealProc) ID() int { return p.id }

// Now returns the processor's current virtual time.
func (p *RealProc) Now() time.Duration { return time.Duration(p.clock.Load()) }

// Advance charges d of virtual time. The real host never yields on
// advance: real time, not virtual time, schedules execution.
func (p *RealProc) Advance(d time.Duration) {
	if d < 0 {
		panic("host: negative advance")
	}
	p.clock.Add(int64(d))
}

// Charge adds d to the processor's clock; callable from any processor.
func (p *RealProc) Charge(d time.Duration) {
	if d < 0 {
		panic("host: negative charge")
	}
	p.clock.Add(int64(d))
}

// Yield is a no-op: the Go scheduler is already in charge.
func (p *RealProc) Yield() {}

// SetClock forces the clock to at if at is later.
func (p *RealProc) SetClock(at time.Duration) {
	for {
		cur := p.clock.Load()
		if int64(at) <= cur {
			return
		}
		if p.clock.CompareAndSwap(cur, int64(at)) {
			return
		}
	}
}

// Block suspends the processor until a Wake, releasing the protocol token
// while suspended. Must be called inside a protocol section.
func (p *RealProc) Block(reason string) {
	if !p.inSection {
		panic(fmt.Sprintf("host: processor %d blocking (%s) outside a protocol section", p.id, reason))
	}
	p.inSection = false
	p.h.mu.Unlock()
	select {
	case at := <-p.wake:
		p.SetClock(at)
	case <-p.h.abort:
		// Reacquire before unwinding so the caller's deferred End finds
		// the section in the state it expects.
		p.h.mu.Lock()
		p.inSection = true
		panic(errAborted)
	}
	p.h.mu.Lock()
	p.inSection = true
	if p.h.sections != nil {
		p.h.sections.Inc()
	}
}

// Wake makes a blocked processor runnable. The protocol only wakes
// processors it has observed blocked (queue entries, barrier arrivals made
// under the token), so a full wake buffer means a double wake: a bug.
func (p *RealProc) Wake(q Proc, at time.Duration) {
	rq := q.(*RealProc)
	select {
	case rq.wake <- at:
	default:
		panic(fmt.Sprintf("host: double wake on processor %d", rq.id))
	}
}

// Begin enters the host-wide protocol section.
func (p *RealProc) Begin() {
	p.h.mu.Lock()
	p.inSection = true
	if p.h.sections != nil {
		p.h.sections.Inc()
	}
	select {
	case <-p.h.abort:
		p.inSection = false
		p.h.mu.Unlock()
		panic(errAborted)
	default:
	}
}

// End leaves the protocol section.
func (p *RealProc) End() {
	p.inSection = false
	p.h.mu.Unlock()
}

// BeginCompute enters a local compute section.
func (p *RealProc) BeginCompute() {
	p.compMu.Lock()
	p.inCompute = true
}

// EndCompute leaves a local compute section.
func (p *RealProc) EndCompute() {
	p.inCompute = false
	p.compMu.Unlock()
}

// Hold runs fn with q excluded from compute sections, waiting for q's
// current compute section (if any) to end. This is what makes servicing a
// request against a remote node's memory image safe while that node is
// crunching: the access is serialized against the target's compute and
// publishes with a proper happens-before edge.
func (p *RealProc) Hold(q Proc, fn func()) {
	rq := q.(*RealProc)
	if rq == p {
		fn()
		return
	}
	rq.compMu.Lock()
	defer rq.compMu.Unlock()
	fn()
}
