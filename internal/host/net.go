package host

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sdsm/internal/model"
	"sdsm/internal/obs"
	"sdsm/internal/wire"
)

// Net is the wire backend: a Real host whose Transport carries every
// payload over OS sockets on loopback in the versioned wire format
// (package wire). Each node owns one connection to a central switch; a
// mailbox send, a diff request/reply, a lock grant, or a barrier
// departure is encoded, written to the node's socket, routed by the
// switch, and decoded by the destination's delivery loop before the
// protocol sees it — the deployment shape of a process-per-node DSM,
// with the node bodies still hosted in-process (see DESIGN.md §3 for the
// contract and cmd/sdsm-node for the genuinely multi-process
// message-passing deployment).
//
// Concurrency structure, per node i:
//
//   - The app/protocol goroutine (a Real processor) encodes outbound
//     frames into pooled buffers and enqueues them on the node's
//     FrameQueue (whose writer goroutine coalesces a flurry into one
//     vectored write), and blocks — releasing the protocol token — when
//     it needs an inbound frame (Recv, TakeHand, Await).
//   - A delivery goroutine reads node i's connection, decodes frames, and
//     files them (mailbox, hand slots, reply table) under the transport
//     mutex, waking the blocked processor when a frame matches its wait.
//     It never takes the protocol token, so delivery cannot deadlock
//     against a section in progress.
//   - A service goroutine fields incoming requests (diff fetches): it
//     enters the protocol token, holds node i's compute lock (the Hold
//     exclusion of the in-process backends), runs the registered server,
//     and writes the reply frame. Requests queue unboundedly so delivery
//     never stalls.
//
// Failure contract: if any link drops before Close (a peer vanishing), the
// host aborts — every blocked processor unwinds and Run returns the link
// error, mirroring a process-per-node machine losing a member. With
// EnableRecovery, one node's links can instead be dropped and re-paired
// deliberately (Detach/Reattach) while the machine is quiescent — the
// transport half of the checkpoint/restore path (DESIGN.md §10); links
// lost any other way still abort.
//
// Virtual times are scheduling-dependent exactly as on the Real host;
// application results are bit-identical to the sim backend for the
// data-race-free programs the protocol serves (TestBackendEquivalence).
type Net struct {
	*Real
	costs model.Costs

	ln  net.Listener
	dir string // temp dir holding the unix socket, "" for TCP

	conns  []net.Conn    // client side, per node
	outq   []*FrameQueue // batched writer per client conn
	sconns []net.Conn    // switch side, per node
	swq    []*FrameQueue // batched writer per switch conn

	nmu    sync.Mutex // guards boxes, hands, waits, reqs, stats
	boxes  [][]Msg
	hands  []map[Tag]any
	waits  []*netWait
	wslots []netWait             // per node: reusable wait record (one receiver per node)
	reqs   []map[int32]*reqState // per requester node: id -> state
	nextID []int32
	server Server
	stats  Stats

	svcMu   sync.Mutex
	svcCond []*sync.Cond
	svcQ    [][]*wire.Frame
	svcHead []int // per-node index of the next unserviced svcQ entry

	// Recovery state (EnableRecovery): detaching marks a node whose
	// links are being dropped on purpose (linkDown tolerates them), and
	// reacc carries re-handshaked switch-side connections from the
	// persistent accept loop to Reattach.
	recMu     sync.Mutex
	detaching []bool
	reacc     chan reConn

	// Observability counters (EnableObs); all nil on untraced runs.
	obsFrames   *obs.Counter
	obsFlushes  *obs.Counter
	obsPeerDown *obs.Counter
	obsReattach *obs.Counter

	closed  chan struct{}
	closeMu sync.Mutex
	wg      sync.WaitGroup
}

// reConn is one re-handshaked connection: the node that said hello and
// its switch-side socket.
type reConn struct {
	node int
	c    net.Conn
}

// handshakeTimeout bounds every hello/start handshake read and write: a
// peer that connects and then never speaks (or never drains) fails the
// handshake with a clear error instead of hanging the machine. A
// variable so tests can shorten it.
var handshakeTimeout = 10 * time.Second

// readHello reads one hello frame from a fresh connection under the
// handshake deadline and returns the sender's node id.
func readHello(c net.Conn, n int) (int, error) {
	c.SetReadDeadline(time.Now().Add(handshakeTimeout))
	f, err := wire.ReadFrame(c)
	c.SetReadDeadline(time.Time{})
	if err != nil {
		return 0, fmt.Errorf("host: handshake: reading hello: %w", err)
	}
	if f.Kind != wire.FHello || int(f.From) < 0 || int(f.From) >= n {
		return 0, fmt.Errorf("host: handshake: bad hello (kind %d from %d)", f.Kind, f.From)
	}
	return int(f.From), nil
}

// writeHello sends the hello frame under the handshake deadline.
func writeHello(c net.Conn, id int) error {
	c.SetWriteDeadline(time.Now().Add(handshakeTimeout))
	err := wire.WriteFrame(c, &wire.Frame{Kind: wire.FHello, From: int32(id)})
	c.SetWriteDeadline(time.Time{})
	if err != nil {
		return fmt.Errorf("host: handshake: writing hello: %w", err)
	}
	return nil
}

// netWait is what a node's blocked protocol goroutine is waiting for.
// Waits are filed through the node's reusable wslots entry: a node has at
// most one outstanding wait (enforced by the two-receivers panic), and
// the delivery loop drops its pointer under nmu before the waiter can
// file the next one, so recycling the record never aliases a live wait.
type netWait struct {
	p    Proc
	kind byte // 'm' mailbox, 'h' hand, 'r' reply
	from int
	tag  Tag
	slot Tag
	rs   *reqState
}

// fileWait records what node id's protocol goroutine is about to block
// on. Caller holds nmu.
func (nw *Net) fileWait(id int, w netWait) {
	if nw.waits[id] != nil {
		panic(fmt.Sprintf("host: node %d has two concurrent receivers", id))
	}
	nw.wslots[id] = w
	nw.waits[id] = &nw.wslots[id]
}

// reqState tracks one in-flight request at the requester. The Pending
// handed to the caller is embedded and reqState itself is the Pending's
// Resolver, so one allocation covers the exchange's whole bookkeeping.
type reqState struct {
	pd         Pending
	nw         *Net
	reqArrival time.Duration
	done       bool
	reply      any
	respBytes  int
	service    time.Duration
}

// ResolveReply blocks until the reply frame has been filed, then fills
// the embedded Pending (Pending's Resolver hook).
func (rs *reqState) ResolveReply(p Proc) {
	nw := rs.nw
	nw.nmu.Lock()
	for !rs.done {
		nw.fileWait(p.ID(), netWait{p: p, kind: 'r', rs: rs})
		nw.nmu.Unlock()
		p.Block("net rpc reply")
		nw.nmu.Lock()
	}
	nw.nmu.Unlock()
	rs.pd.Reply = rs.reply
	rs.pd.Bytes = rs.respBytes
	rs.pd.Arrival = rs.reqArrival + rs.service + nw.costs.OneWay(rs.respBytes)
}

// ListenLoopback opens the loopback listener the socket deployments
// share: a Unix socket in a private temp directory, falling back to TCP
// on 127.0.0.1. The returned dir (when non-empty) holds the socket file
// and is the caller's to remove.
func ListenLoopback() (net.Listener, string, error) {
	if dir, err := os.MkdirTemp("", "sdsm"); err == nil {
		if ln, err := net.Listen("unix", filepath.Join(dir, "switch.sock")); err == nil {
			return ln, dir, nil
		}
		os.RemoveAll(dir)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	return ln, "", nil
}

// NewNet creates a wire-backend machine of n nodes: a loopback switch (a
// Unix socket, falling back to TCP on 127.0.0.1) with every node
// connected. Close must be called when done.
func NewNet(n int, costs model.Costs) (*Net, error) {
	nw := &Net{
		Real:    NewReal(n),
		costs:   costs,
		boxes:   make([][]Msg, n),
		hands:   make([]map[Tag]any, n),
		waits:   make([]*netWait, n),
		wslots:  make([]netWait, n),
		reqs:    make([]map[int32]*reqState, n),
		nextID:  make([]int32, n),
		conns:   make([]net.Conn, n),
		outq:    make([]*FrameQueue, n),
		sconns:  make([]net.Conn, n),
		swq:     make([]*FrameQueue, n),
		svcQ:    make([][]*wire.Frame, n),
		svcHead: make([]int, n),
		stats:   Stats{Node: make([]NodeStats, n)},
		closed:  make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		nw.hands[i] = map[Tag]any{}
		nw.reqs[i] = map[int32]*reqState{}
		nw.svcCond = append(nw.svcCond, sync.NewCond(&nw.svcMu))
	}

	ln, dir, err := ListenLoopback()
	if err != nil {
		return nil, fmt.Errorf("host: net backend cannot listen: %w", err)
	}
	nw.ln, nw.dir = ln, dir

	// Dial every node and pair the accepted connections by hello frame.
	// The hello read runs under the handshake deadline: a connection
	// that never identifies itself fails the construction with a clear
	// timeout instead of hanging it.
	accepted := make(chan error, 1)
	go func() {
		for range nw.conns {
			c, err := nw.ln.Accept()
			if err != nil {
				accepted <- err
				return
			}
			id, err := readHello(c, n)
			if err != nil {
				c.Close()
				accepted <- err
				return
			}
			nw.sconns[id] = c
		}
		accepted <- nil
	}()
	// On failure the accept goroutine must be joined (via the accepted
	// channel) before Close touches sconns, which it writes.
	abort := func(err error) (*Net, error) {
		nw.ln.Close()
		<-accepted
		nw.Close()
		return nil, err
	}
	for i := range nw.conns {
		c, err := net.Dial(nw.ln.Addr().Network(), nw.ln.Addr().String())
		if err != nil {
			return abort(fmt.Errorf("host: net backend dial: %w", err))
		}
		nw.conns[i] = c
		if err := writeHello(c, i); err != nil {
			return abort(err)
		}
	}
	if err := <-accepted; err != nil {
		nw.Close()
		return nil, err
	}

	// Every queue must exist before any switch loop runs (a loop routes
	// to arbitrary destinations' queues).
	for i := range nw.conns {
		i := i
		nw.outq[i] = NewFrameQueue(nw.conns[i], func(err error) { nw.linkDown(i, err) })
		nw.swq[i] = NewFrameQueue(nw.sconns[i], func(err error) { nw.linkDown(i, err) })
	}
	for i := range nw.conns {
		nw.wg.Add(3)
		go nw.switchLoop(i, nw.sconns[i])
		go nw.deliveryLoop(i, nw.conns[i])
		go nw.serviceLoop(i)
	}
	return nw, nil
}

// Close shuts the switch down: sockets close, loops exit, the socket file
// is removed. Safe to call more than once. On a clean shutdown the writer
// queues are drained before their sockets close (the reader loops are
// still alive to consume the flush) and Close returns nil; after an abort
// the sockets close first — a drain could block forever on a dead reader
// — and Close returns the first queue error, including how many frames
// each lossy queue dropped.
func (nw *Net) Close() error {
	nw.closeMu.Lock()
	select {
	case <-nw.closed:
	default:
		close(nw.closed)
	}
	nw.closeMu.Unlock()
	nw.ln.Close()
	closeConns := func() {
		for _, c := range nw.conns {
			if c != nil {
				c.Close()
			}
		}
		for _, c := range nw.sconns {
			if c != nil {
				c.Close()
			}
		}
	}
	if nw.aborted() {
		closeConns()
	}
	var firstErr error
	closeQueue := func(q *FrameQueue, side string, i int) {
		if q == nil {
			return
		}
		if err := q.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("host: node %d %s queue: %w", i, side, err)
		}
	}
	for i, q := range nw.outq {
		closeQueue(q, "outbound", i)
	}
	for i, q := range nw.swq {
		closeQueue(q, "switch", i)
	}
	closeConns()
	nw.svcMu.Lock()
	for _, cond := range nw.svcCond {
		cond.Broadcast()
	}
	nw.svcMu.Unlock()
	nw.wg.Wait()
	if nw.dir != "" {
		os.RemoveAll(nw.dir)
	}
	return firstErr
}

// aborted reports whether the Real host has failed (a panic or link
// loss began unwinding the machine).
func (nw *Net) aborted() bool {
	select {
	case <-nw.Real.abort:
		return true
	default:
		return false
	}
}

// closing reports whether Close has begun (link errors after that are
// expected teardown, not peer failures).
func (nw *Net) closing() bool {
	select {
	case <-nw.closed:
		return true
	default:
		return false
	}
}

// linkDown handles a link error: expected during Close and while the
// node is deliberately detached for recovery, a peer failure otherwise —
// the host aborts so every blocked processor unwinds and Run reports
// the loss.
func (nw *Net) linkDown(node int, err error) {
	if nw.closing() || nw.isDetaching(node) {
		return
	}
	if nw.obsPeerDown != nil {
		nw.obsPeerDown.Inc()
	}
	nw.fail(fmt.Errorf("host: node %d link lost: %v", node, err))
}

// EnableObs registers the wire path's counters — frames written, coalesced
// flushes, unexpected link losses, recovery reattaches — plus the embedded
// Real host's contention counter. Observability only; never called on
// untraced runs, so the wire path stays allocation- and work-identical
// with tracing off.
func (nw *Net) EnableObs(reg *obs.Registry) {
	nw.Real.EnableObs(reg)
	nw.obsFrames = reg.Counter("net.frames")
	nw.obsFlushes = reg.Counter("net.flushes")
	nw.obsPeerDown = reg.Counter("net.peer.down")
	nw.obsReattach = reg.Counter("net.peer.reattach")
	for i := range nw.outq {
		nw.outq[i].SetObs(nw.obsFrames, nw.obsFlushes)
		nw.swq[i].SetObs(nw.obsFrames, nw.obsFlushes)
	}
}

// isDetaching reports whether node's links are being dropped on purpose.
func (nw *Net) isDetaching(node int) bool {
	nw.recMu.Lock()
	defer nw.recMu.Unlock()
	return nw.detaching != nil && nw.detaching[node]
}

// switchLoop routes raw frames arriving from node i to their destination
// queue without decoding payloads. Each frame is read into pooled
// storage it owns (the destination queue recycles it after the write),
// so routing a frame allocates nothing in steady state. The connection
// is captured at launch: a loop outliving its node's Detach must keep
// reading the dead socket, never the replacement one.
func (nw *Net) switchLoop(i int, c net.Conn) {
	defer nw.wg.Done()
	for {
		raw, err := wire.ReadRawFrameInto(c, wire.GetBuf())
		if err != nil {
			nw.linkDown(i, err)
			return
		}
		_, _, to, _, err := wire.RawFields(raw)
		if err != nil || int(to) < 0 || int(to) >= nw.N() {
			nw.linkDown(i, fmt.Errorf("unroutable frame: to=%d err=%v", to, err))
			return
		}
		if err := nw.swq[to].Enqueue(raw); err != nil {
			nw.linkDown(int(to), err)
			return
		}
	}
}

// deliveryLoop decodes frames arriving at node i and files them, waking
// the node's blocked processor when a frame matches its wait. It never
// enters a protocol section.
func (nw *Net) deliveryLoop(i int, c net.Conn) {
	defer nw.wg.Done()
	fr := wire.NewFrameReader(c)
	// One Frame struct serves every delivery: the decoded payloads own
	// their storage, so filing them does not retain f. Only the FReq path
	// queues the whole frame and clones it first.
	var f wire.Frame
	for {
		if err := fr.ReadInto(&f); err != nil {
			nw.linkDown(i, err)
			return
		}
		switch f.Kind {
		case wire.FMsg:
			payload := f.Payload
			if fs, ok := payload.(wire.Float64s); ok {
				payload = []float64(fs) // mp's native payload type
			}
			m := Msg{
				From: int(f.From), To: i, Tag: Tag(f.Tag),
				Payload: payload, Bytes: int(f.Bytes), Arrival: time.Duration(f.Time),
			}
			nw.nmu.Lock()
			nw.boxes[i] = append(nw.boxes[i], m)
			if w := nw.waits[i]; w != nil && w.kind == 'm' && (w.from == AnySender || w.from == m.From) && w.tag == m.Tag {
				nw.waits[i] = nil
				nw.wake(w.p, m.Arrival)
			}
			nw.nmu.Unlock()
		case wire.FHand:
			nw.nmu.Lock()
			nw.hands[i][Tag(f.Tag)] = f.Payload
			if w := nw.waits[i]; w != nil && w.kind == 'h' && w.slot == Tag(f.Tag) {
				nw.waits[i] = nil
				nw.wake(w.p, 0)
			}
			nw.nmu.Unlock()
		case wire.FReq:
			fc := new(wire.Frame)
			*fc = f
			nw.svcMu.Lock()
			nw.svcQ[i] = append(nw.svcQ[i], fc)
			nw.svcCond[i].Signal()
			nw.svcMu.Unlock()
		case wire.FReply:
			nw.nmu.Lock()
			rs := nw.reqs[i][f.Tag]
			if rs == nil {
				nw.nmu.Unlock()
				nw.linkDown(i, fmt.Errorf("reply for unknown request %d", f.Tag))
				return
			}
			delete(nw.reqs[i], f.Tag)
			rs.done = true
			rs.reply = f.Payload
			rs.respBytes = int(f.Bytes)
			rs.service = time.Duration(f.Time)
			nw.account(int(f.From), i, rs.respBytes)
			if w := nw.waits[i]; w != nil && w.kind == 'r' && w.rs == rs {
				nw.waits[i] = nil
				nw.wake(w.p, 0)
			}
			nw.nmu.Unlock()
		default:
			nw.linkDown(i, fmt.Errorf("unexpected frame kind %d", f.Kind))
			return
		}
	}
}

// serviceLoop fields requests addressed to node i: it takes the protocol
// token and node i's compute lock (re-establishing exactly the exclusion
// the in-process backends get from Begin + Hold), runs the registered
// server, and ships the reply back through the switch.
func (nw *Net) serviceLoop(i int) {
	defer nw.wg.Done()
	rp := nw.Real.procs[i]
	for {
		nw.svcMu.Lock()
		for nw.svcHead[i] == len(nw.svcQ[i]) && !nw.closing() {
			nw.svcCond[i].Wait()
		}
		if nw.closing() && nw.svcHead[i] == len(nw.svcQ[i]) {
			nw.svcMu.Unlock()
			return
		}
		// Pop by head index so the queue keeps its capacity: slicing off
		// the front would leave append growing a fresh array per request.
		f := nw.svcQ[i][nw.svcHead[i]]
		nw.svcQ[i][nw.svcHead[i]] = nil
		nw.svcHead[i]++
		if nw.svcHead[i] == len(nw.svcQ[i]) {
			nw.svcQ[i] = nw.svcQ[i][:0]
			nw.svcHead[i] = 0
		}
		nw.svcMu.Unlock()

		nw.Real.mu.Lock() // the protocol-section token
		rp.compMu.Lock()  // the Hold exclusion against i's compute
		before := rp.Now()
		resp, respBytes := nw.server(rp, i, f.Payload)
		rp.Charge(nw.costs.RecvOverhead + nw.costs.RequestService + nw.costs.SendOverhead)
		service := rp.Now() - before
		rp.compMu.Unlock()
		nw.Real.mu.Unlock()

		err := nw.write(i, &wire.Frame{
			Kind: wire.FReply, From: int32(i), To: f.From, Tag: f.Tag,
			Bytes: int32(respBytes), Time: int64(service), Payload: resp,
		})
		if err != nil {
			nw.linkDown(i, err)
			return
		}
	}
}

// wake makes a blocked processor runnable (delivery-side; any Real proc
// handle works as the Wake receiver).
func (nw *Net) wake(p Proc, at time.Duration) {
	rp := p.(*RealProc)
	rp.Wake(rp, at)
}

// write encodes f into pooled storage and hands it to node i's outbound
// queue (which recycles the buffer after the coalesced write).
func (nw *Net) write(i int, f *wire.Frame) error {
	raw, err := wire.AppendFrame(wire.GetBuf(), f)
	if err != nil {
		wire.PutBuf(raw)
		return err
	}
	return nw.outq[i].Enqueue(raw)
}

// mustWrite is write for protocol-goroutine callers: a link failure
// panics (unwinding the processor), matching the failure contract.
func (nw *Net) mustWrite(i int, f *wire.Frame) {
	if err := nw.write(i, f); err != nil {
		nw.linkDown(i, err)
		panic(errAborted)
	}
}

// account tallies one message (caller holds nmu).
func (nw *Net) account(from, to, bytes int) { nw.stats.Account(from, to, bytes) }

// ---- Transport implementation ----

// Costs returns the cost model in force.
func (nw *Net) Costs() model.Costs { return nw.costs }

// Stats returns a snapshot of the traffic counters.
func (nw *Net) Stats() Stats {
	nw.nmu.Lock()
	defer nw.nmu.Unlock()
	s := nw.stats
	s.Node = append([]NodeStats(nil), nw.stats.Node...)
	return s
}

// ResetStats zeroes all counters.
func (nw *Net) ResetStats() {
	nw.nmu.Lock()
	defer nw.nmu.Unlock()
	nw.stats = Stats{Node: make([]NodeStats, nw.N())}
}

// Serve registers the request handler run by the service loops.
func (nw *Net) Serve(fn Server) {
	if nw.server != nil {
		panic("host: net server already registered")
	}
	nw.server = fn
}

// Send transmits payload to node to over the wire; the sender pays send
// overhead and the message arrives after wire latency plus bandwidth time.
func (nw *Net) Send(p Proc, to int, tag Tag, payload any, bytes int) {
	if to == p.ID() {
		panic("host: net send to self")
	}
	p.Charge(nw.costs.SendOverhead)
	arrival := p.Now() + nw.costs.OneWay(bytes)
	nw.nmu.Lock()
	nw.account(p.ID(), to, bytes)
	nw.nmu.Unlock()
	nw.mustWrite(p.ID(), &wire.Frame{
		Kind: wire.FMsg, From: int32(p.ID()), To: int32(to), Tag: int32(tag),
		Bytes: int32(bytes), Time: int64(arrival), Payload: payload,
	})
}

// SendShared transmits one payload to several recipients charging the
// sender's injection overhead once (switch-assisted broadcast). The
// payload is encoded once; each recipient's frame is a copy of the
// shared encoding with only the destination header field patched — the
// copies are needed because the outbound queue writes asynchronously,
// so a single patched buffer could be restamped before it drains.
func (nw *Net) SendShared(p Proc, tos []int, tag Tag, payload any, bytes int) {
	p.Charge(nw.costs.SendOverhead)
	arrival := p.Now() + nw.costs.OneWay(bytes)
	raw, err := wire.AppendFrame(wire.GetBuf(), &wire.Frame{
		Kind: wire.FMsg, From: int32(p.ID()), Tag: int32(tag),
		Bytes: int32(bytes), Time: int64(arrival), Payload: payload,
	})
	if err != nil {
		panic(fmt.Sprintf("host: net send shared: %v", err))
	}
	nw.nmu.Lock()
	for _, to := range tos {
		if to == p.ID() {
			nw.nmu.Unlock()
			panic("host: net send to self")
		}
		nw.account(p.ID(), to, bytes)
	}
	nw.nmu.Unlock()
	for _, to := range tos {
		cp := append(wire.GetBuf(), raw...)
		wire.PatchRawTo(cp, int32(to))
		if err := nw.outq[p.ID()].Enqueue(cp); err != nil {
			nw.linkDown(p.ID(), err)
			panic(errAborted)
		}
	}
	wire.PutBuf(raw)
}

// Broadcast sends payload to every other node, serializing the
// per-message send overhead at the sender. Unlike SendShared the
// overheads accumulate, so arrival times differ per recipient: the
// payload is still encoded only once, and each recipient's copy of the
// shared encoding gets its destination and arrival stamp patched in —
// charges and accounting are identical to a loop of Send calls.
func (nw *Net) Broadcast(p Proc, tag Tag, payload any, bytes int) {
	raw, err := wire.AppendFrame(wire.GetBuf(), &wire.Frame{
		Kind: wire.FMsg, From: int32(p.ID()), Tag: int32(tag),
		Bytes: int32(bytes), Payload: payload,
	})
	if err != nil {
		panic(fmt.Sprintf("host: net broadcast: %v", err))
	}
	for to := 0; to < nw.N(); to++ {
		if to == p.ID() {
			continue
		}
		p.Charge(nw.costs.SendOverhead)
		arrival := p.Now() + nw.costs.OneWay(bytes)
		nw.nmu.Lock()
		nw.account(p.ID(), to, bytes)
		nw.nmu.Unlock()
		cp := append(wire.GetBuf(), raw...)
		wire.PatchRawTo(cp, int32(to))
		wire.PatchRawTime(cp, int64(arrival))
		if err := nw.outq[p.ID()].Enqueue(cp); err != nil {
			nw.linkDown(p.ID(), err)
			panic(errAborted)
		}
	}
	wire.PutBuf(raw)
}

// Recv blocks until a matching message has been delivered off the wire,
// then delivers the earliest-arriving match.
func (nw *Net) Recv(p Proc, from int, tag Tag) Msg {
	for {
		nw.nmu.Lock()
		if m, ok := nw.take(p.ID(), from, tag); ok {
			nw.nmu.Unlock()
			p.SetClock(m.Arrival)
			p.Charge(nw.costs.RecvOverhead)
			return m
		}
		nw.fileWait(p.ID(), netWait{p: p, kind: 'm', from: from, tag: tag})
		nw.nmu.Unlock()
		p.Block("net recv")
	}
}

// take removes the earliest matching message from to's mailbox (caller
// holds nmu).
func (nw *Net) take(to, from int, tag Tag) (Msg, bool) {
	m, rest, ok := TakeMatch(nw.boxes[to], from, tag)
	nw.boxes[to] = rest
	return m, ok
}

// Message accounts for a protocol control message between two nodes (lock
// forwarding legs); nothing crosses the wire — the exchanges that carry
// data do so via Send, Hand, and StartRequest.
func (nw *Net) Message(from, to int, depart time.Duration, bytes int) time.Duration {
	if from == to {
		panic("host: net message to self")
	}
	nw.Proc(from).Charge(nw.costs.SendOverhead)
	nw.Proc(to).Charge(nw.costs.RecvOverhead)
	nw.nmu.Lock()
	nw.account(from, to, bytes)
	nw.nmu.Unlock()
	return depart + nw.costs.SendOverhead + nw.costs.OneWay(bytes) + nw.costs.RecvOverhead
}

// StartRequest ships the encoded request to the target's service loop and
// returns a Pending whose resolver waits for the reply frame.
func (nw *Net) StartRequest(p Proc, to int, req any, reqBytes int) *Pending {
	if to == p.ID() {
		panic("host: net request to self")
	}
	p.Charge(nw.costs.SendOverhead)
	reqArrival := p.Now() + nw.costs.OneWay(reqBytes)

	rs := &reqState{nw: nw, reqArrival: reqArrival}
	nw.nmu.Lock()
	nw.account(p.ID(), to, reqBytes)
	nw.nextID[p.ID()]++
	id := nw.nextID[p.ID()]
	nw.reqs[p.ID()][id] = rs
	nw.nmu.Unlock()
	nw.mustWrite(p.ID(), &wire.Frame{
		Kind: wire.FReq, From: int32(p.ID()), To: int32(to), Tag: id,
		Bytes: int32(reqBytes), Payload: req,
	})

	rs.pd.SetResolver(rs)
	return &rs.pd
}

// Await resolves one exchange and advances p to the reply's arrival.
func (nw *Net) Await(p Proc, pd *Pending) {
	pd.Resolve(p)
	p.SetClock(pd.Arrival)
	p.Charge(nw.costs.RecvOverhead)
}

// AwaitAll resolves a set of exchanges and charges their receive
// overheads in (virtual) arrival order.
func (nw *Net) AwaitAll(p Proc, pds []*Pending) {
	for _, pd := range pds {
		pd.Resolve(p)
	}
	AwaitInArrivalOrder(p, pds, nw.Await)
}

// Hand ships a staged protocol payload (lock grant, barrier departure) to
// node to over the wire.
func (nw *Net) Hand(p Proc, to int, slot Tag, payload any) {
	nw.mustWrite(p.ID(), &wire.Frame{
		Kind: wire.FHand, From: int32(p.ID()), To: int32(to), Tag: int32(slot),
		Payload: payload,
	})
}

// TakeHand retrieves the payload staged for the caller in slot, waiting
// for the frame if it is still in flight.
func (nw *Net) TakeHand(p Proc, slot Tag) any {
	for {
		nw.nmu.Lock()
		if payload, ok := nw.hands[p.ID()][slot]; ok {
			delete(nw.hands[p.ID()], slot)
			nw.nmu.Unlock()
			return payload
		}
		nw.fileWait(p.ID(), netWait{p: p, kind: 'h', slot: slot})
		nw.nmu.Unlock()
		p.Block("net hand")
	}
}

// ---- Recovery (tmk.Recoverer) ----

// EnableRecovery arms Detach/Reattach: the listener stays open for
// re-handshakes (a persistent accept loop replaces the construction-time
// one) and a deliberately detached node's link errors stop counting as
// peer death. Off by default — without it the abort-on-link-loss
// contract is exactly as before. Idempotent.
func (nw *Net) EnableRecovery() {
	nw.recMu.Lock()
	defer nw.recMu.Unlock()
	if nw.reacc != nil {
		return
	}
	nw.detaching = make([]bool, nw.N())
	nw.reacc = make(chan reConn)
	nw.wg.Add(1)
	go nw.acceptLoop()
}

// acceptLoop accepts and identifies re-handshaking nodes until the
// listener closes (Net.Close). Connections that fail the handshake are
// dropped; Reattach collects the good ones.
func (nw *Net) acceptLoop() {
	defer nw.wg.Done()
	for {
		c, err := nw.ln.Accept()
		if err != nil {
			return
		}
		id, err := readHello(c, nw.N())
		if err != nil {
			c.Close()
			continue
		}
		select {
		case nw.reacc <- reConn{node: id, c: c}:
		case <-nw.closed:
			c.Close()
			return
		}
	}
}

// Detach drops node i's links. The caller (the recovering node's own
// protocol goroutine, see tmk's failAndRecover) guarantees the machine
// is quiescent: nothing is in flight to or from i, so the node's writer
// queues are empty and its reader loops are idle. The loops exit on the
// socket close; the service loop stays — it is blocked on its empty
// queue and picks up the replacement sockets through nw.outq at its
// next request.
func (nw *Net) Detach(i int) error {
	nw.recMu.Lock()
	if nw.reacc == nil {
		nw.recMu.Unlock()
		return fmt.Errorf("host: net recovery not enabled")
	}
	nw.detaching[i] = true
	nw.recMu.Unlock()
	if err := nw.outq[i].Close(); err != nil {
		return fmt.Errorf("host: detaching node %d: %w", i, err)
	}
	if err := nw.swq[i].Close(); err != nil {
		return fmt.Errorf("host: detaching node %d: %w", i, err)
	}
	nw.conns[i].Close()
	nw.sconns[i].Close()
	return nil
}

// Reattach re-pairs node i: a fresh dial and hello, matched with the
// switch-side connection from the accept loop, fresh writer queues, and
// relaunched reader loops.
func (nw *Net) Reattach(i int) error {
	c, err := net.Dial(nw.ln.Addr().Network(), nw.ln.Addr().String())
	if err != nil {
		return fmt.Errorf("host: reattaching node %d: %w", i, err)
	}
	if err := writeHello(c, i); err != nil {
		c.Close()
		return fmt.Errorf("host: reattaching node %d: %w", i, err)
	}
	var sc net.Conn
	select {
	case rc := <-nw.reacc:
		if rc.node != i {
			rc.c.Close()
			c.Close()
			return fmt.Errorf("host: reattaching node %d: unexpected hello from node %d", i, rc.node)
		}
		sc = rc.c
	case <-time.After(handshakeTimeout):
		c.Close()
		return fmt.Errorf("host: reattaching node %d: handshake timeout", i)
	case <-nw.closed:
		c.Close()
		return fmt.Errorf("host: reattaching node %d: transport closed", i)
	}
	nw.conns[i], nw.sconns[i] = c, sc
	nw.outq[i] = NewFrameQueue(c, func(err error) { nw.linkDown(i, err) })
	nw.swq[i] = NewFrameQueue(sc, func(err error) { nw.linkDown(i, err) })
	if nw.obsFrames != nil {
		nw.outq[i].SetObs(nw.obsFrames, nw.obsFlushes)
		nw.swq[i].SetObs(nw.obsFrames, nw.obsFlushes)
		nw.obsReattach.Inc()
	}
	nw.recMu.Lock()
	nw.detaching[i] = false
	nw.recMu.Unlock()
	nw.wg.Add(2)
	go nw.switchLoop(i, sc)
	go nw.deliveryLoop(i, c)
	return nil
}
